file(REMOVE_RECURSE
  "CMakeFiles/across_inspector.dir/across_inspector.cpp.o"
  "CMakeFiles/across_inspector.dir/across_inspector.cpp.o.d"
  "across_inspector"
  "across_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/across_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

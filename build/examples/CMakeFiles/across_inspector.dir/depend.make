# Empty dependencies file for across_inspector.
# This may be replaced when dependencies are built.

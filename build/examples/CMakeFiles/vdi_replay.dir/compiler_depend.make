# Empty compiler generated dependencies file for vdi_replay.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vdi_replay.dir/vdi_replay.cpp.o"
  "CMakeFiles/vdi_replay.dir/vdi_replay.cpp.o.d"
  "vdi_replay"
  "vdi_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdi_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

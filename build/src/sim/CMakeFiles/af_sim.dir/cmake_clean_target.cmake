file(REMOVE_RECURSE
  "libaf_sim.a"
)

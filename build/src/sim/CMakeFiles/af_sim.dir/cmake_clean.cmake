file(REMOVE_RECURSE
  "CMakeFiles/af_sim.dir/ssd.cpp.o"
  "CMakeFiles/af_sim.dir/ssd.cpp.o.d"
  "CMakeFiles/af_sim.dir/write_buffer.cpp.o"
  "CMakeFiles/af_sim.dir/write_buffer.cpp.o.d"
  "libaf_sim.a"
  "libaf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/af_ftl.dir/across_ftl.cpp.o"
  "CMakeFiles/af_ftl.dir/across_ftl.cpp.o.d"
  "CMakeFiles/af_ftl.dir/mrsm_ftl.cpp.o"
  "CMakeFiles/af_ftl.dir/mrsm_ftl.cpp.o.d"
  "CMakeFiles/af_ftl.dir/page_ftl.cpp.o"
  "CMakeFiles/af_ftl.dir/page_ftl.cpp.o.d"
  "CMakeFiles/af_ftl.dir/scheme.cpp.o"
  "CMakeFiles/af_ftl.dir/scheme.cpp.o.d"
  "libaf_ftl.a"
  "libaf_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for af_ftl.
# This may be replaced when dependencies are built.

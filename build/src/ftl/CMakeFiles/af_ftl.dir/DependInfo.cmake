
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/across_ftl.cpp" "src/ftl/CMakeFiles/af_ftl.dir/across_ftl.cpp.o" "gcc" "src/ftl/CMakeFiles/af_ftl.dir/across_ftl.cpp.o.d"
  "/root/repo/src/ftl/mrsm_ftl.cpp" "src/ftl/CMakeFiles/af_ftl.dir/mrsm_ftl.cpp.o" "gcc" "src/ftl/CMakeFiles/af_ftl.dir/mrsm_ftl.cpp.o.d"
  "/root/repo/src/ftl/page_ftl.cpp" "src/ftl/CMakeFiles/af_ftl.dir/page_ftl.cpp.o" "gcc" "src/ftl/CMakeFiles/af_ftl.dir/page_ftl.cpp.o.d"
  "/root/repo/src/ftl/scheme.cpp" "src/ftl/CMakeFiles/af_ftl.dir/scheme.cpp.o" "gcc" "src/ftl/CMakeFiles/af_ftl.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ssd/CMakeFiles/af_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/af_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

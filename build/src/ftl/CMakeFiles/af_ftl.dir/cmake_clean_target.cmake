file(REMOVE_RECURSE
  "libaf_ftl.a"
)

file(REMOVE_RECURSE
  "libaf_nand.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/af_nand.dir/flash_array.cpp.o"
  "CMakeFiles/af_nand.dir/flash_array.cpp.o.d"
  "CMakeFiles/af_nand.dir/timing.cpp.o"
  "CMakeFiles/af_nand.dir/timing.cpp.o.d"
  "libaf_nand.a"
  "libaf_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

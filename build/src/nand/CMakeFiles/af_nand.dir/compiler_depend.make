# Empty compiler generated dependencies file for af_nand.
# This may be replaced when dependencies are built.

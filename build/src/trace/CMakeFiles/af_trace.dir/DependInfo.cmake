
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/characterize.cpp" "src/trace/CMakeFiles/af_trace.dir/characterize.cpp.o" "gcc" "src/trace/CMakeFiles/af_trace.dir/characterize.cpp.o.d"
  "/root/repo/src/trace/profiles.cpp" "src/trace/CMakeFiles/af_trace.dir/profiles.cpp.o" "gcc" "src/trace/CMakeFiles/af_trace.dir/profiles.cpp.o.d"
  "/root/repo/src/trace/reader.cpp" "src/trace/CMakeFiles/af_trace.dir/reader.cpp.o" "gcc" "src/trace/CMakeFiles/af_trace.dir/reader.cpp.o.d"
  "/root/repo/src/trace/replayer.cpp" "src/trace/CMakeFiles/af_trace.dir/replayer.cpp.o" "gcc" "src/trace/CMakeFiles/af_trace.dir/replayer.cpp.o.d"
  "/root/repo/src/trace/synth.cpp" "src/trace/CMakeFiles/af_trace.dir/synth.cpp.o" "gcc" "src/trace/CMakeFiles/af_trace.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/af_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/af_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/af_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/af_nand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

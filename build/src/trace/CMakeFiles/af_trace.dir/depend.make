# Empty dependencies file for af_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libaf_trace.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/af_trace.dir/characterize.cpp.o"
  "CMakeFiles/af_trace.dir/characterize.cpp.o.d"
  "CMakeFiles/af_trace.dir/profiles.cpp.o"
  "CMakeFiles/af_trace.dir/profiles.cpp.o.d"
  "CMakeFiles/af_trace.dir/reader.cpp.o"
  "CMakeFiles/af_trace.dir/reader.cpp.o.d"
  "CMakeFiles/af_trace.dir/replayer.cpp.o"
  "CMakeFiles/af_trace.dir/replayer.cpp.o.d"
  "CMakeFiles/af_trace.dir/synth.cpp.o"
  "CMakeFiles/af_trace.dir/synth.cpp.o.d"
  "libaf_trace.a"
  "libaf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

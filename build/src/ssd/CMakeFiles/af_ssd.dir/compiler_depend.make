# Empty compiler generated dependencies file for af_ssd.
# This may be replaced when dependencies are built.

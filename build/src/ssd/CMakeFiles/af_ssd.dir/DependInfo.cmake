
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/config.cpp" "src/ssd/CMakeFiles/af_ssd.dir/config.cpp.o" "gcc" "src/ssd/CMakeFiles/af_ssd.dir/config.cpp.o.d"
  "/root/repo/src/ssd/engine.cpp" "src/ssd/CMakeFiles/af_ssd.dir/engine.cpp.o" "gcc" "src/ssd/CMakeFiles/af_ssd.dir/engine.cpp.o.d"
  "/root/repo/src/ssd/map_directory.cpp" "src/ssd/CMakeFiles/af_ssd.dir/map_directory.cpp.o" "gcc" "src/ssd/CMakeFiles/af_ssd.dir/map_directory.cpp.o.d"
  "/root/repo/src/ssd/oracle.cpp" "src/ssd/CMakeFiles/af_ssd.dir/oracle.cpp.o" "gcc" "src/ssd/CMakeFiles/af_ssd.dir/oracle.cpp.o.d"
  "/root/repo/src/ssd/stats.cpp" "src/ssd/CMakeFiles/af_ssd.dir/stats.cpp.o" "gcc" "src/ssd/CMakeFiles/af_ssd.dir/stats.cpp.o.d"
  "/root/repo/src/ssd/timeline.cpp" "src/ssd/CMakeFiles/af_ssd.dir/timeline.cpp.o" "gcc" "src/ssd/CMakeFiles/af_ssd.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nand/CMakeFiles/af_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/af_ssd.dir/config.cpp.o"
  "CMakeFiles/af_ssd.dir/config.cpp.o.d"
  "CMakeFiles/af_ssd.dir/engine.cpp.o"
  "CMakeFiles/af_ssd.dir/engine.cpp.o.d"
  "CMakeFiles/af_ssd.dir/map_directory.cpp.o"
  "CMakeFiles/af_ssd.dir/map_directory.cpp.o.d"
  "CMakeFiles/af_ssd.dir/oracle.cpp.o"
  "CMakeFiles/af_ssd.dir/oracle.cpp.o.d"
  "CMakeFiles/af_ssd.dir/stats.cpp.o"
  "CMakeFiles/af_ssd.dir/stats.cpp.o.d"
  "CMakeFiles/af_ssd.dir/timeline.cpp.o"
  "CMakeFiles/af_ssd.dir/timeline.cpp.o.d"
  "libaf_ssd.a"
  "libaf_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libaf_ssd.a"
)

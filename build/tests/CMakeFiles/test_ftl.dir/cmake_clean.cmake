file(REMOVE_RECURSE
  "CMakeFiles/test_ftl.dir/ftl/across_ftl_test.cpp.o"
  "CMakeFiles/test_ftl.dir/ftl/across_ftl_test.cpp.o.d"
  "CMakeFiles/test_ftl.dir/ftl/across_policy_test.cpp.o"
  "CMakeFiles/test_ftl.dir/ftl/across_policy_test.cpp.o.d"
  "CMakeFiles/test_ftl.dir/ftl/across_valve_test.cpp.o"
  "CMakeFiles/test_ftl.dir/ftl/across_valve_test.cpp.o.d"
  "CMakeFiles/test_ftl.dir/ftl/mrsm_ftl_test.cpp.o"
  "CMakeFiles/test_ftl.dir/ftl/mrsm_ftl_test.cpp.o.d"
  "CMakeFiles/test_ftl.dir/ftl/page_ftl_test.cpp.o"
  "CMakeFiles/test_ftl.dir/ftl/page_ftl_test.cpp.o.d"
  "CMakeFiles/test_ftl.dir/ftl/request_test.cpp.o"
  "CMakeFiles/test_ftl.dir/ftl/request_test.cpp.o.d"
  "test_ftl"
  "test_ftl.pdb"
  "test_ftl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_ssd.dir/ssd/engine_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/engine_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/gc_partial_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/gc_partial_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/map_directory_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/map_directory_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/map_gc_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/map_gc_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/map_reentrancy_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/map_reentrancy_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/oracle_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/oracle_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/stats_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/stats_test.cpp.o.d"
  "CMakeFiles/test_ssd.dir/ssd/timeline_test.cpp.o"
  "CMakeFiles/test_ssd.dir/ssd/timeline_test.cpp.o.d"
  "test_ssd"
  "test_ssd.pdb"
  "test_ssd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ssd/engine_test.cpp" "tests/CMakeFiles/test_ssd.dir/ssd/engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/engine_test.cpp.o.d"
  "/root/repo/tests/ssd/gc_partial_test.cpp" "tests/CMakeFiles/test_ssd.dir/ssd/gc_partial_test.cpp.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/gc_partial_test.cpp.o.d"
  "/root/repo/tests/ssd/map_directory_test.cpp" "tests/CMakeFiles/test_ssd.dir/ssd/map_directory_test.cpp.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/map_directory_test.cpp.o.d"
  "/root/repo/tests/ssd/map_gc_test.cpp" "tests/CMakeFiles/test_ssd.dir/ssd/map_gc_test.cpp.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/map_gc_test.cpp.o.d"
  "/root/repo/tests/ssd/map_reentrancy_test.cpp" "tests/CMakeFiles/test_ssd.dir/ssd/map_reentrancy_test.cpp.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/map_reentrancy_test.cpp.o.d"
  "/root/repo/tests/ssd/oracle_test.cpp" "tests/CMakeFiles/test_ssd.dir/ssd/oracle_test.cpp.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/oracle_test.cpp.o.d"
  "/root/repo/tests/ssd/stats_test.cpp" "tests/CMakeFiles/test_ssd.dir/ssd/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/stats_test.cpp.o.d"
  "/root/repo/tests/ssd/timeline_test.cpp" "tests/CMakeFiles/test_ssd.dir/ssd/timeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/timeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/af_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/af_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/af_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/af_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/af_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for fig08_across_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_across_stats.dir/fig08_across_stats.cpp.o"
  "CMakeFiles/fig08_across_stats.dir/fig08_across_stats.cpp.o.d"
  "fig08_across_stats"
  "fig08_across_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_across_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig02_across_ratio.
# This may be replaced when dependencies are built.

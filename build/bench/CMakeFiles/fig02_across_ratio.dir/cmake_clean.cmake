file(REMOVE_RECURSE
  "CMakeFiles/fig02_across_ratio.dir/fig02_across_ratio.cpp.o"
  "CMakeFiles/fig02_across_ratio.dir/fig02_across_ratio.cpp.o.d"
  "fig02_across_ratio"
  "fig02_across_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_across_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig10_flash_ops.
# This may be replaced when dependencies are built.

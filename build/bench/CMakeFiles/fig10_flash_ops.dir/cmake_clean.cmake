file(REMOVE_RECURSE
  "CMakeFiles/fig10_flash_ops.dir/fig10_flash_ops.cpp.o"
  "CMakeFiles/fig10_flash_ops.dir/fig10_flash_ops.cpp.o.d"
  "fig10_flash_ops"
  "fig10_flash_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_flash_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablate_gc_budget.
# This may be replaced when dependencies are built.

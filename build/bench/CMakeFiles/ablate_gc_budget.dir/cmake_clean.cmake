file(REMOVE_RECURSE
  "CMakeFiles/ablate_gc_budget.dir/ablate_gc_budget.cpp.o"
  "CMakeFiles/ablate_gc_budget.dir/ablate_gc_budget.cpp.o.d"
  "ablate_gc_budget"
  "ablate_gc_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_gc_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablate_across_policy.dir/ablate_across_policy.cpp.o"
  "CMakeFiles/ablate_across_policy.dir/ablate_across_policy.cpp.o.d"
  "ablate_across_policy"
  "ablate_across_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_across_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_across_policy.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig09_io_time.
# This may be replaced when dependencies are built.

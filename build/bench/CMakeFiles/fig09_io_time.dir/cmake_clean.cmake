file(REMOVE_RECURSE
  "CMakeFiles/fig09_io_time.dir/fig09_io_time.cpp.o"
  "CMakeFiles/fig09_io_time.dir/fig09_io_time.cpp.o.d"
  "fig09_io_time"
  "fig09_io_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_io_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

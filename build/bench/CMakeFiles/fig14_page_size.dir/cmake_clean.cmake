file(REMOVE_RECURSE
  "CMakeFiles/fig14_page_size.dir/fig14_page_size.cpp.o"
  "CMakeFiles/fig14_page_size.dir/fig14_page_size.cpp.o.d"
  "fig14_page_size"
  "fig14_page_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig14_page_size.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig04_motivation.
# This may be replaced when dependencies are built.

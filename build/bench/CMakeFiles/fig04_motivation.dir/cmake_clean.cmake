file(REMOVE_RECURSE
  "CMakeFiles/fig04_motivation.dir/fig04_motivation.cpp.o"
  "CMakeFiles/fig04_motivation.dir/fig04_motivation.cpp.o.d"
  "fig04_motivation"
  "fig04_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_map_cache.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablate_map_cache.dir/ablate_map_cache.cpp.o"
  "CMakeFiles/ablate_map_cache.dir/ablate_map_cache.cpp.o.d"
  "ablate_map_cache"
  "ablate_map_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_map_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

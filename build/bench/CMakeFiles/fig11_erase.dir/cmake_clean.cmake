file(REMOVE_RECURSE
  "CMakeFiles/fig11_erase.dir/fig11_erase.cpp.o"
  "CMakeFiles/fig11_erase.dir/fig11_erase.cpp.o.d"
  "fig11_erase"
  "fig11_erase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_erase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig11_erase.
# This may be replaced when dependencies are built.

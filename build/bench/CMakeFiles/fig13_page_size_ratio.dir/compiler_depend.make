# Empty compiler generated dependencies file for fig13_page_size_ratio.
# This may be replaced when dependencies are built.

// Trace utility: generate synthetic VDI traces to a file, or characterise an
// existing trace (Table-2-style metrics at 4/8/16 KiB pages).
//
//   $ ./trace_tool gen lun3 50000 out.trace    # synthesize a lun3-like trace
//   $ ./trace_tool stat out.trace              # characterise any trace file
//   $ ./trace_tool mix 1 mixed.trace a.trace b.trace   # interleave tenants
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/table.h"
#include "trace/characterize.h"
#include "trace/mixer.h"
#include "trace/profiles.h"
#include "trace/reader.h"
#include "trace/synth.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool gen <lun1..lun6> <requests> <out-file> [trim%%]"
               " [tenant]\n"
               "    trim%% (0..50, default 0): fraction of requests emitted as\n"
               "    TRIM records ('T' lines in the native format)\n"
               "    tenant (0..65535, default 0): tag every record with this\n"
               "    tenant id (emits the optional 5th trace column)\n"
               "  trace_tool stat <trace-file>\n"
               "  trace_tool mix <seed> <out-file> <in1> <in2> [in3...]\n"
               "    deterministic timestamp-merge of the inputs; records from\n"
               "    input k are re-tagged tenant=k\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace af;
  if (argc < 3) return usage();
  const std::string mode = argv[1];

  if (mode == "gen") {
    if (argc < 5) return usage();
    const std::string lun = argv[2];
    if (lun.size() != 4 || lun.rfind("lun", 0) != 0 || lun[3] < '1' ||
        lun[3] > '6') {
      return usage();
    }
    const auto idx = static_cast<std::size_t>(lun[3] - '1');
    const auto requests = std::strtoull(argv[3], nullptr, 10);
    auto profile = trace::lun_profile(idx, requests);
    if (argc >= 6) {
      const double trim_pct = std::strtod(argv[5], nullptr);
      if (trim_pct < 0.0 || trim_pct > 50.0) return usage();
      profile.trim_fraction = trim_pct / 100.0;
    }
    // A 16 GiB addressable span, page-aligned.
    auto tr = trace::generate(profile, 16ull << 21);
    if (argc >= 7) {
      const auto tenant = std::strtoull(argv[6], nullptr, 10);
      if (tenant > 0xffffull) return usage();
      for (auto& rec : tr) rec.tenant = static_cast<std::uint16_t>(tenant);
    }
    std::ofstream out(argv[4]);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[4]);
      return 1;
    }
    trace::write_native(out, tr);
    std::uint64_t trims = 0;
    for (const auto& rec : tr) trims += rec.trim ? 1 : 0;
    std::printf("wrote %zu records (%llu trims) to %s\n", tr.size(),
                static_cast<unsigned long long>(trims), argv[4]);
    return 0;
  }

  if (mode == "stat") {
    std::uint64_t skipped = 0;
    const auto tr = trace::read_file(argv[2], &skipped);
    if (skipped > 0) {
      std::fprintf(stderr, "skipped %llu malformed line%s in %s\n",
                   static_cast<unsigned long long>(skipped),
                   skipped == 1 ? "" : "s", argv[2]);
    }
    if (tr.empty()) {
      if (skipped > 0) {
        std::fprintf(stderr,
                     "every line of %s was malformed — wrong trace format?\n",
                     argv[2]);
      } else {
        std::fprintf(stderr, "no records in %s\n", argv[2]);
      }
      return 1;
    }
    Table table({"page size", "# of Req.", "Write R", "Write SZ (KB)",
                 "Across R", "Unaligned R", "Trim R"});
    for (std::uint32_t page_kb : {4u, 8u, 16u}) {
      const auto stats = trace::characterize(tr, page_kb * 2);
      table.add_row({std::to_string(page_kb) + " KB",
                     Table::num(stats.requests),
                     Table::percent(stats.write_ratio),
                     Table::num(stats.avg_write_kb, 1),
                     Table::percent(stats.across_ratio),
                     Table::percent(
                         static_cast<double>(stats.unaligned_requests) /
                         static_cast<double>(stats.requests)),
                     Table::percent(stats.trim_ratio)});
      // Same hardening style as the malformed-line warnings: a trim too
      // small or misaligned to cover one full page unmaps nothing at this
      // page size — almost always a generator or unit-conversion bug.
      if (stats.empty_trims > 0) {
        std::fprintf(stderr,
                     "warning: %llu of %llu trim extents cover no full "
                     "%u KiB page (malformed?)\n",
                     static_cast<unsigned long long>(stats.empty_trims),
                     static_cast<unsigned long long>(stats.trims), page_kb);
      }
    }
    // Out-of-range trims: extents past the furthest sector any read or
    // write touches discard space the workload never used — harmless to a
    // device, but a strong sign of a truncated or mis-scaled trace.
    const auto bounds = trace::characterize(tr, 16);
    if (bounds.trims > 0 && bounds.max_sector > bounds.max_data_sector) {
      std::uint64_t beyond = 0;
      for (const auto& rec : tr) {
        if (rec.trim && rec.range().end > bounds.max_data_sector) ++beyond;
      }
      std::fprintf(stderr,
                   "warning: %llu trim extent%s beyond the data footprint "
                   "(last data sector %llu, last trimmed sector %llu)\n",
                   static_cast<unsigned long long>(beyond),
                   beyond == 1 ? " reaches" : "s reach",
                   static_cast<unsigned long long>(bounds.max_data_sector),
                   static_cast<unsigned long long>(bounds.max_sector));
    }
    // Per-tenant breakdown, printed only for tenant-tagged traces so the
    // legacy single-tenant output stays untouched.
    std::map<std::uint16_t, std::array<std::uint64_t, 3>> tenants;
    for (const auto& rec : tr) {
      auto& row = tenants[rec.tenant];
      ++row[0];
      if (rec.write && !rec.trim) ++row[1];
      row[2] += rec.sectors;
    }
    const bool tagged = tenants.size() > 1 || tenants.begin()->first != 0;
    if (tagged) {
      Table per_tenant({"tenant", "# of Req.", "Write R", "Sectors"});
      for (const auto& [tenant, row] : tenants) {
        per_tenant.add_row(
            {std::to_string(tenant), Table::num(row[0]),
             Table::percent(static_cast<double>(row[1]) /
                            static_cast<double>(row[0])),
             Table::num(row[2])});
      }
      // Tenant ids are small dense slot indices everywhere else in the tree
      // (mixer slots, qos.tenants); a huge id almost always means a column
      // slipped (e.g. a timestamp parsed as the tenant field).
      if (tenants.rbegin()->first > 255) {
        std::fprintf(stderr,
                     "warning: tenant id %u looks out of range for a slot "
                     "index — malformed tenant column?\n",
                     tenants.rbegin()->first);
      }
      table.print(std::cout);
      per_tenant.print(std::cout);
      return 0;
    }
    table.print(std::cout);
    return 0;
  }

  if (mode == "mix") {
    if (argc < 6) return usage();
    const std::uint64_t seed = std::strtoull(argv[2], nullptr, 10);
    std::vector<trace::Trace> inputs;
    for (int i = 4; i < argc; ++i) {
      std::uint64_t skipped = 0;
      auto tr = trace::read_file(argv[i], &skipped);
      if (skipped > 0) {
        std::fprintf(stderr, "skipped %llu malformed line%s in %s\n",
                     static_cast<unsigned long long>(skipped),
                     skipped == 1 ? "" : "s", argv[i]);
      }
      if (tr.empty()) {
        std::fprintf(stderr, "no records in %s\n", argv[i]);
        return 1;
      }
      if (!std::is_sorted(tr.begin(), tr.end(),
                          [](const auto& a, const auto& b) {
                            return a.timestamp < b.timestamp;
                          })) {
        std::fprintf(stderr,
                     "warning: %s is not timestamp-sorted; sorting before "
                     "the merge\n",
                     argv[i]);
        std::stable_sort(tr.begin(), tr.end(),
                         [](const auto& a, const auto& b) {
                           return a.timestamp < b.timestamp;
                         });
      }
      inputs.push_back(std::move(tr));
    }
    trace::MixerOptions options;
    options.seed = seed;
    const trace::Trace mixed = trace::mix(inputs, options);
    std::ofstream out(argv[3]);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[3]);
      return 1;
    }
    trace::write_native(out, mixed);
    std::printf("mixed %zu inputs into %zu records at %s\n", inputs.size(),
                mixed.size(), argv[3]);
    return 0;
  }
  return usage();
}

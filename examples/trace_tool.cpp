// Trace utility: generate synthetic VDI traces to a file, or characterise an
// existing trace (Table-2-style metrics at 4/8/16 KiB pages).
//
//   $ ./trace_tool gen lun3 50000 out.trace    # synthesize a lun3-like trace
//   $ ./trace_tool stat out.trace              # characterise any trace file
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.h"
#include "trace/characterize.h"
#include "trace/profiles.h"
#include "trace/reader.h"
#include "trace/synth.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool gen <lun1..lun6> <requests> <out-file> [trim%%]\n"
               "    trim%% (0..50, default 0): fraction of requests emitted as\n"
               "    TRIM records ('T' lines in the native format)\n"
               "  trace_tool stat <trace-file>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace af;
  if (argc < 3) return usage();
  const std::string mode = argv[1];

  if (mode == "gen") {
    if (argc < 5) return usage();
    const std::string lun = argv[2];
    if (lun.size() != 4 || lun.rfind("lun", 0) != 0 || lun[3] < '1' ||
        lun[3] > '6') {
      return usage();
    }
    const auto idx = static_cast<std::size_t>(lun[3] - '1');
    const auto requests = std::strtoull(argv[3], nullptr, 10);
    auto profile = trace::lun_profile(idx, requests);
    if (argc >= 6) {
      const double trim_pct = std::strtod(argv[5], nullptr);
      if (trim_pct < 0.0 || trim_pct > 50.0) return usage();
      profile.trim_fraction = trim_pct / 100.0;
    }
    // A 16 GiB addressable span, page-aligned.
    const auto tr = trace::generate(profile, 16ull << 21);
    std::ofstream out(argv[4]);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[4]);
      return 1;
    }
    trace::write_native(out, tr);
    std::uint64_t trims = 0;
    for (const auto& rec : tr) trims += rec.trim ? 1 : 0;
    std::printf("wrote %zu records (%llu trims) to %s\n", tr.size(),
                static_cast<unsigned long long>(trims), argv[4]);
    return 0;
  }

  if (mode == "stat") {
    std::uint64_t skipped = 0;
    const auto tr = trace::read_file(argv[2], &skipped);
    if (skipped > 0) {
      std::fprintf(stderr, "skipped %llu malformed line%s in %s\n",
                   static_cast<unsigned long long>(skipped),
                   skipped == 1 ? "" : "s", argv[2]);
    }
    if (tr.empty()) {
      if (skipped > 0) {
        std::fprintf(stderr,
                     "every line of %s was malformed — wrong trace format?\n",
                     argv[2]);
      } else {
        std::fprintf(stderr, "no records in %s\n", argv[2]);
      }
      return 1;
    }
    Table table({"page size", "# of Req.", "Write R", "Write SZ (KB)",
                 "Across R", "Unaligned R", "Trim R"});
    for (std::uint32_t page_kb : {4u, 8u, 16u}) {
      const auto stats = trace::characterize(tr, page_kb * 2);
      table.add_row({std::to_string(page_kb) + " KB",
                     Table::num(stats.requests),
                     Table::percent(stats.write_ratio),
                     Table::num(stats.avg_write_kb, 1),
                     Table::percent(stats.across_ratio),
                     Table::percent(
                         static_cast<double>(stats.unaligned_requests) /
                         static_cast<double>(stats.requests)),
                     Table::percent(stats.trim_ratio)});
      // Same hardening style as the malformed-line warnings: a trim too
      // small or misaligned to cover one full page unmaps nothing at this
      // page size — almost always a generator or unit-conversion bug.
      if (stats.empty_trims > 0) {
        std::fprintf(stderr,
                     "warning: %llu of %llu trim extents cover no full "
                     "%u KiB page (malformed?)\n",
                     static_cast<unsigned long long>(stats.empty_trims),
                     static_cast<unsigned long long>(stats.trims), page_kb);
      }
    }
    // Out-of-range trims: extents past the furthest sector any read or
    // write touches discard space the workload never used — harmless to a
    // device, but a strong sign of a truncated or mis-scaled trace.
    const auto bounds = trace::characterize(tr, 16);
    if (bounds.trims > 0 && bounds.max_sector > bounds.max_data_sector) {
      std::uint64_t beyond = 0;
      for (const auto& rec : tr) {
        if (rec.trim && rec.range().end > bounds.max_data_sector) ++beyond;
      }
      std::fprintf(stderr,
                   "warning: %llu trim extent%s beyond the data footprint "
                   "(last data sector %llu, last trimmed sector %llu)\n",
                   static_cast<unsigned long long>(beyond),
                   beyond == 1 ? " reaches" : "s reach",
                   static_cast<unsigned long long>(bounds.max_data_sector),
                   static_cast<unsigned long long>(bounds.max_sector));
    }
    table.print(std::cout);
    return 0;
  }
  return usage();
}

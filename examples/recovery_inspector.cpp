// Recovery inspector: crashes an Across-FTL device mid-workload, remounts
// the surviving flash image (checkpoint chain + OOB scan) and prints the
// rebuilt two-level mapping table next to the pre-crash acknowledged one —
// so you can watch the AMT come back from the spare areas.
//
//   $ ./recovery_inspector [--at-op N] [--seed S]
//
// N is the 1-based physical flash op (counted from arming, i.e. from the
// first scripted request) at which power dies; S only labels the run here
// (the op index is explicit). Every value of N must land in a recoverable
// state — that is the tentpole invariant the crash-sweep tests fuzz.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <vector>

#include "ftl/across_ftl.h"
#include "nand/power.h"
#include "sim/ssd.h"

namespace {

using namespace af;

constexpr std::uint64_t kFirstLpn = 128;
constexpr std::uint64_t kLastLpn = 133;

void dump_mapping(const char* label, sim::Ssd& ssd) {
  auto& scheme = dynamic_cast<ftl::AcrossFtl&>(ssd.scheme());
  std::printf("%s\n  PMT: ", label);
  std::set<std::uint32_t> areas;
  for (std::uint64_t l = kFirstLpn; l <= kLastLpn; ++l) {
    const auto& pe = scheme.pmt(Lpn{l});
    if (pe.aidx == ftl::AcrossFtl::kNoArea) {
      std::printf("[%llu: ppn=%s] ", static_cast<unsigned long long>(l),
                  pe.ppn.valid() ? std::to_string(pe.ppn.get()).c_str() : "-");
    } else {
      std::printf("[%llu: ppn=%s aidx=%u] ",
                  static_cast<unsigned long long>(l),
                  pe.ppn.valid() ? std::to_string(pe.ppn.get()).c_str() : "-",
                  pe.aidx);
      areas.insert(pe.aidx);
    }
  }
  std::printf("\n  AMT: ");
  for (const std::uint32_t aidx : areas) {
    const auto& area = scheme.amt(aidx);
    std::printf("{AIdx=%u Off=%llu Size=%llu APPN=%llu} ", aidx,
                static_cast<unsigned long long>(area.range.begin),
                static_cast<unsigned long long>(area.range.size()),
                static_cast<unsigned long long>(area.appn.get()));
  }
  if (areas.empty()) std::printf("(no live area)");
  std::printf("\n");
  scheme.check_invariants();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t at_op = 25;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--at-op") == 0 && i + 1 < argc) {
      at_op = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: recovery_inspector [--at-op N] "
                           "[--seed S]\n");
      return 2;
    }
  }

  auto config = ssd::SsdConfig::tiny();
  config.checkpoint.interval_requests = 4;   // journal every 4th write …
  config.checkpoint.snapshot_every = 2;      // … every 2nd entry a snapshot
  config.integrity.parity_stripe_width = 4;  // RAID-5 stripes survive the cut
  auto ssd = std::make_unique<sim::Ssd>(config, ftl::SchemeKind::kAcrossFtl);

  // The §3.3 walkthrough as a crash workload: fills, an across-page area,
  // AMerge, ARollback, a fresh area, a shrink, then overwrite churn so the
  // journal gets to write a few entries.
  std::vector<ftl::IoRequest> script;
  SimTime t = 0;
  auto w = [&](SectorAddr off, SectorCount len) {
    script.push_back({t, /*write=*/true, SectorRange::of(off, len)});
    t += kMsec;
  };
  w(2048, 32);  // fill the pair (LPNs 128/129)
  w(2080, 32);  // fill the neighbours (130/131)
  w(2056, 12);  // DIRECT WRITE: across area forms
  w(2060, 12);  // profitable AMERGE
  w(2052, 16);  // AROLLBACK: union outgrows one page
  w(2056, 12);  // fresh area
  w(2048, 16);  // SHRINK: page 128's share fully overwritten
  for (std::uint64_t k = 0; k < 10; ++k) {
    w(2048 + (k * 24) % 80, 8);  // churn across LPNs 128..135
  }

  ssd->engine().array().arm_power_cut({at_op, seed});
  std::printf("recovery_inspector: power cut armed at flash op %llu "
              "(seed %llu), %zu scripted writes\n\n",
              static_cast<unsigned long long>(at_op),
              static_cast<unsigned long long>(seed), script.size());

  // `acknowledged` trails the victim by one request: when the cut fires
  // mid-request, it holds exactly the pre-crash acknowledged state.
  ssd::Oracle acknowledged = *ssd->oracle();
  bool crashed = false;
  std::size_t crash_index = 0;
  for (std::size_t i = 0; i < script.size(); ++i) {
    acknowledged = *ssd->oracle();
    try {
      (void)ssd->submit(script[i]);
    } catch (const nand::PowerLoss& loss) {
      crashed = true;
      crash_index = i;
      std::printf("power lost at flash op %llu, inside request %zu "
                  "(write [%llu, %llu))\n",
                  static_cast<unsigned long long>(loss.op_index), i,
                  static_cast<unsigned long long>(script[i].range.begin),
                  static_cast<unsigned long long>(script[i].range.end));
      break;
    }
  }
  if (!crashed) {
    std::printf("cut point %llu lies beyond the run's horizon (%llu flash "
                "ops) — nothing to recover. Try a smaller --at-op.\n",
                static_cast<unsigned long long>(at_op),
                static_cast<unsigned long long>(
                    ssd->engine().array().ops_since_arm()));
    return 0;
  }

  dump_mapping("\npre-crash mapping (as of the last acknowledged request):",
               *ssd);

  // Power is gone: surrender the flash image and remount from what survived.
  ssd::RecoveryReport report;
  nand::FlashArray image = ssd->release_flash();
  auto mounted = sim::Ssd::mount(config, ftl::SchemeKind::kAcrossFtl,
                                 std::move(image), &acknowledged, &report);

  dump_mapping("\nrebuilt mapping (checkpoint chain + OOB scan):", *mounted);

  std::printf("\nmount: %s checkpoint (journal_seq %llu), "
              "%llu ckpt pages read\n"
              "scan:  %llu blocks scanned / %llu skipped, %llu OOB pages, "
              "%llu claims, %llu torn\n"
              "fix:   %llu orphans invalidated, %llu pages revived; "
              "%llu flash reads, %.2f ms simulated\n",
              report.used_checkpoint ? "from" : "no",
              static_cast<unsigned long long>(report.checkpoint_seq),
              static_cast<unsigned long long>(report.checkpoint_pages_read),
              static_cast<unsigned long long>(report.blocks_scanned),
              static_cast<unsigned long long>(report.blocks_skipped),
              static_cast<unsigned long long>(report.pages_scanned),
              static_cast<unsigned long long>(report.claims_applied),
              static_cast<unsigned long long>(report.torn_pages),
              static_cast<unsigned long long>(report.orphans_invalidated),
              static_cast<unsigned long long>(report.pages_revived),
              static_cast<unsigned long long>(report.flash_reads),
              static_cast<double>(report.mount_time_ns) / 1e6);

  // Integrity state after the remount: sealed parity stripes recovered from
  // the OOB stamps, plus the §8 counters the recovered device starts with.
  const auto& faults = mounted->stats().faults();
  std::printf("parity: %llu sealed stripes recovered from OOB "
              "(width %u); counters: %llu parity writes, %llu rebuilds, "
              "%llu retry saves, %llu uncorrectable, %llu scrub refreshes\n",
              static_cast<unsigned long long>(report.stripes_recovered),
              config.integrity.parity_stripe_width,
              static_cast<unsigned long long>(faults.parity_writes),
              static_cast<unsigned long long>(faults.parity_rebuilds),
              static_cast<unsigned long long>(faults.ecc_retry_recoveries),
              static_cast<unsigned long long>(faults.uncorrectable_reads),
              static_cast<unsigned long long>(faults.scrub_relocations));

  // Read back a settled range on the recovered device — the oracle verifies
  // every sector as it goes (a divergence would abort). Only the interrupted
  // request's own sectors may legitimately hold the newer in-flight version,
  // so skip the probe when it overlaps them.
  const SectorRange probe = SectorRange::of(2080, 32);
  if (!script[crash_index].range.overlaps(probe)) {
    (void)mounted->submit({t, /*write=*/false, probe});
    std::printf("\npost-recovery read of sectors [2080, 2112) verified "
                "against the acknowledged oracle (%llu sectors checked).\n",
                static_cast<unsigned long long>(mounted->verified_sectors()));
  }
  return 0;
}

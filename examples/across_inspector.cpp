// Across-FTL mechanism inspector: walks the §3.3 scenarios step by step and
// dumps the two-level mapping table (PMT AIdx marks + AMT entries) after
// each, so you can watch areas being created, merged, shrunk and rolled back.
//
//   $ ./across_inspector
#include <cstdio>

#include "ftl/across_ftl.h"
#include "sim/ssd.h"

namespace {

using namespace af;

void dump_state(sim::Ssd& ssd, Lpn first, Lpn last) {
  auto& scheme = dynamic_cast<ftl::AcrossFtl&>(ssd.scheme());
  std::printf("    PMT: ");
  for (std::uint64_t l = first.get(); l <= last.get(); ++l) {
    const auto& pe = scheme.pmt(Lpn{l});
    if (pe.aidx == ftl::AcrossFtl::kNoArea) {
      std::printf("[%llu: ppn=%s aidx=-1] ", static_cast<unsigned long long>(l),
                  pe.ppn.valid() ? std::to_string(pe.ppn.get()).c_str() : "-");
    } else {
      std::printf("[%llu: ppn=%s aidx=%u] ", static_cast<unsigned long long>(l),
                  pe.ppn.valid() ? std::to_string(pe.ppn.get()).c_str() : "-",
                  pe.aidx);
    }
  }
  std::printf("\n    AMT: ");
  bool any = false;
  for (std::uint64_t l = first.get(); l <= last.get(); ++l) {
    const auto aidx = scheme.pmt(Lpn{l}).aidx;
    if (aidx == ftl::AcrossFtl::kNoArea) continue;
    const auto& area = scheme.amt(aidx);
    std::printf("{AIdx=%u Off=%llu Size=%llu APPN=%llu} ", aidx,
                static_cast<unsigned long long>(area.range.begin),
                static_cast<unsigned long long>(area.range.size()),
                static_cast<unsigned long long>(area.appn.get()));
    any = true;
    break;  // the pair shares one entry
  }
  if (!any) std::printf("(no live area)");
  std::printf("\n");
  scheme.check_invariants();
}

}  // namespace

int main() {
  auto config = ssd::SsdConfig::tiny();
  sim::Ssd ssd(config, ftl::SchemeKind::kAcrossFtl);
  SimTime t = 0;

  auto step = [&](const char* what, bool write, SectorAddr off,
                  SectorCount len) {
    ftl::IoRequest req{t, write, SectorRange::of(off, len)};
    t += kMsec;
    const auto before_writes =
        ssd.stats().flash_ops(ssd::OpKind::kDataWrite);
    const auto before_reads = ssd.stats().flash_ops(ssd::OpKind::kDataRead);
    // The walkthrough narrates op-count deltas, not completion times.
    (void)ssd.submit(req);
    std::printf("\n%s  →  %s [%llu, %llu)  (+%llu programs, +%llu reads)\n",
                what, write ? "write" : "read",
                static_cast<unsigned long long>(off),
                static_cast<unsigned long long>(off + len),
                static_cast<unsigned long long>(
                    ssd.stats().flash_ops(ssd::OpKind::kDataWrite) -
                    before_writes),
                static_cast<unsigned long long>(
                    ssd.stats().flash_ops(ssd::OpKind::kDataRead) -
                    before_reads));
    dump_state(ssd, Lpn{128}, Lpn{130});
  };

  std::printf("Across-FTL walkthrough (8 KiB pages = 16 sectors; the pair is "
              "LPNs 128/129, sectors 2048..2080)\n");

  step("1. normal fills of the pair", true, 128 * 16, 32);
  step("2. DIRECT WRITE: across write(2056, 12 sectors)", true, 2056, 12);
  step("3. DIRECT READ inside the area", false, 2060, 8);
  step("4. MERGED READ spilling past the area", false, 2060, 16);
  step("5. Profitable AMERGE: across update, union fits one page", true, 2060,
       12);
  step("6. Unprofitable AMERGE: small in-page update over the area", true,
       2058, 4);
  step("7. AROLLBACK: update makes the union outgrow a page", true, 2052, 16);
  step("8. fresh area again", true, 2056, 12);
  step("9. SHRINK: full overwrite of page 128 trims the area", true, 128 * 16,
       16);

  std::printf("\nsummary: direct=%llu, amerge(profit)=%llu, "
              "amerge(unprofit)=%llu, rollback=%llu, shrink=%llu\n",
              static_cast<unsigned long long>(ssd.stats().across().direct_writes),
              static_cast<unsigned long long>(
                  ssd.stats().across().profitable_amerge),
              static_cast<unsigned long long>(
                  ssd.stats().across().unprofitable_amerge),
              static_cast<unsigned long long>(ssd.stats().across().rollbacks),
              static_cast<unsigned long long>(ssd.stats().across().area_shrinks));
  std::printf("every read above was verified against the oracle (%llu "
              "sectors).\n",
              static_cast<unsigned long long>(ssd.verified_sectors()));
  return 0;
}

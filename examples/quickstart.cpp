// Quickstart: build an Across-FTL SSD, issue a handful of requests —
// including the across-page write from the paper's Figure 5 — and print what
// the device did.
//
//   $ ./quickstart
#include <cstdio>

#include "ftl/across_ftl.h"
#include "ftl/request.h"
#include "sim/ssd.h"

int main() {
  using namespace af;

  // A small Table-1-shaped TLC device (8 KiB pages, 64 pages/block) with the
  // verification oracle enabled: every read is checked against a shadow copy.
  auto config = ssd::SsdConfig::paper(/*page_kb=*/8, /*blocks_per_plane=*/32);
  config.track_payload = true;
  sim::Ssd ssd(config, ftl::SchemeKind::kAcrossFtl);

  std::printf("device: %.1f MiB raw, %llu logical pages, page=%u B\n",
              static_cast<double>(config.geometry.capacity_bytes()) / (1 << 20),
              static_cast<unsigned long long>(config.logical_pages()),
              config.geometry.page_bytes);

  SimTime t = 0;
  auto submit = [&](bool write, SectorAddr offset_kb, SectorCount size_kb) {
    ftl::IoRequest req{t, write, SectorRange::of(offset_kb * 2, size_kb * 2)};
    t += 1 * kMsec;
    const auto completion = ssd.submit(req);
    std::printf("  %s(%lluK, %lluK)  class=%-12s latency=%.3f ms\n",
                write ? "write" : "read ",
                static_cast<unsigned long long>(offset_kb),
                static_cast<unsigned long long>(size_kb),
                ssd::to_string(completion.cls),
                static_cast<double>(completion.latency) / 1e6);
    return completion;
  };

  std::printf("\nFigure-1 request shapes:\n");
  submit(true, 1024, 24);  // aligned
  submit(true, 1028, 20);  // unaligned, > page
  submit(true, 1028, 6);   // across-page: remapped onto one flash page
  submit(false, 1030, 4);  // direct read from the across-page area
  submit(false, 1030, 8);  // merged read (area + normal page)

  const auto& stats = ssd.stats();
  std::printf("\nwhat the flash saw:\n");
  std::printf("  data writes: %llu   data reads: %llu\n",
              static_cast<unsigned long long>(
                  stats.flash_ops(ssd::OpKind::kDataWrite)),
              static_cast<unsigned long long>(
                  stats.flash_ops(ssd::OpKind::kDataRead)));
  const auto& across = stats.across();
  std::printf("  across areas created: %llu, direct reads: %llu, "
              "merged reads: %llu\n",
              static_cast<unsigned long long>(across.areas_created),
              static_cast<unsigned long long>(across.direct_reads),
              static_cast<unsigned long long>(across.merged_reads));
  std::printf("  oracle-verified sectors: %llu\n",
              static_cast<unsigned long long>(ssd.verified_sectors()));

  auto& scheme = dynamic_cast<ftl::AcrossFtl&>(ssd.scheme());
  scheme.check_invariants();
  std::printf("\nAcross-FTL invariants hold. Done.\n");
  return 0;
}

// VDI workload comparison: generate a synthetic enterprise-VDI trace (or load
// a real systor'17 CSV) and replay it on all three FTL schemes, printing the
// paper's headline metrics side by side.
//
//   $ ./vdi_replay                 # synthetic lun1, 30k requests
//   $ ./vdi_replay lun6 50000      # another profile / request count
//   $ ./vdi_replay path/to/trace.csv
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "trace/characterize.h"
#include "trace/profiles.h"
#include "trace/reader.h"
#include "trace/replayer.h"

int main(int argc, char** argv) {
  using namespace af;

  const std::string arg = argc > 1 ? argv[1] : "lun1";
  const std::uint64_t requests =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 30'000;

  auto config = ssd::SsdConfig::paper(/*page_kb=*/8, /*blocks_per_plane=*/48);
  const std::uint64_t addressable =
      static_cast<std::uint64_t>(
          0.398 * static_cast<double>(config.geometry.total_pages())) *
      config.geometry.sectors_per_page();

  trace::Trace tr;
  if (arg.size() > 4 && arg.substr(arg.size() - 4) == ".csv") {
    tr = trace::read_file(arg);
    if (tr.empty()) {
      std::fprintf(stderr, "could not read %s\n", arg.c_str());
      return 1;
    }
  } else {
    std::size_t idx = 0;
    if (arg.size() == 4 && arg.rfind("lun", 0) == 0) {
      idx = static_cast<std::size_t>(arg[3] - '1');
    }
    if (idx > 5) idx = 0;
    tr = trace::generate(trace::lun_profile(idx, requests), addressable);
  }

  const auto shape = trace::characterize(tr, config.geometry.sectors_per_page());
  std::printf("trace: %llu requests, write %.1f%%, avg write %.1f KB, "
              "across %.1f%%\n\n",
              static_cast<unsigned long long>(shape.requests),
              shape.write_ratio * 100, shape.avg_write_kb,
              shape.across_ratio * 100);

  Table table({"scheme", "read ms", "write ms", "I/O time s", "flash W",
               "flash R", "erases", "map MB"});
  for (auto kind : {ftl::SchemeKind::kPageFtl, ftl::SchemeKind::kMrsm,
                    ftl::SchemeKind::kAcrossFtl}) {
    std::printf("replaying on %s...\n", ftl::to_string(kind));
    const auto result = trace::replay(config, kind, tr);
    table.add_row({result.scheme, Table::num(result.read_latency_ms(), 3),
                   Table::num(result.write_latency_ms(), 3),
                   Table::num(result.io_time_s, 2),
                   Table::num(result.stats.flash_writes()),
                   Table::num(result.stats.flash_reads()),
                   Table::num(result.stats.erases()),
                   Table::num(static_cast<double>(result.map_bytes) / (1 << 20),
                              2)});
  }
  std::printf("\n");
  table.print(std::cout);
  return 0;
}

// perf_gate — compares two BENCH_perf.json files and fails the build when
// the candidate regresses the committed baseline.
//
// Checks, in order:
//   1. Wall-clock replay throughput per scheme ("replays" section):
//      candidate requests_per_s must stay within --max-regression (default
//      25%) of the baseline. Skipped (with a note) when the two files were
//      measured at different config.requests — wall numbers at different
//      trace lengths are not comparable.
//   2. Pipeline simulated throughput per (scheme, queue depth): the same
//      threshold. These numbers are deterministic in (config, trace, QD),
//      so any drift at equal request counts is a behaviour change, not
//      noise. Also skipped across differing request counts.
//   3. Tail-latency chaos read p99 per (scheme, policy) ("tail" section):
//      candidate p99 must not grow beyond --max-regression. Latency fence —
//      the regression direction is UP, unlike the throughput checks. Skipped
//      when either file predates the tail section, or across differing
//      request counts.
//   4. Within the candidate alone: every pipeline row at queue depth >= 4
//      must hold speedup_vs_qd1 >= --min-qd-speedup (default 2.0) — the
//      concurrency win the pipeline exists to deliver (DESIGN.md §10).
//   5. Within the candidate alone: for each scheme in the tail section, the
//      full preempt+hedge policy must leave read p99 no worse than the off
//      row (within --max-regression) — the machinery must never hurt the
//      tail it exists to protect (DESIGN.md §11).
//   6. Multi-tenant QoS victim read p99 per (scheme, workload, policy)
//      ("qos" section): latency fence like 3, skipped when either file
//      predates the section or across differing request counts.
//   7. Within the candidate alone: each scheme's qos solo and solo-mixed
//      rows must match EXACTLY — routing a single-tenant trace through the
//      mixer and tenant plumbing with QoS off is a bit-identical no-op
//      (DESIGN.md §12).
//   8. Within the candidate alone: each scheme's streams+bucket victim read
//      p99/mean must be no worse than its off row (within --max-regression)
//      — the containment machinery must never hurt the tenant it exists to
//      protect.
//
// The parser covers exactly the JSON subset perf_replay emits (objects,
// arrays, strings, numbers, booleans); it is not a general JSON library.
//
// Usage:
//   perf_gate --baseline BENCH_perf.json --candidate BENCH_perf_ci.json \
//             [--max-regression 0.25] [--min-qd-speedup 2.0]
// Exit status: 0 = gate passed, 1 = regression found, 2 = usage/parse error.
#include <cstdarg>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] const Json* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  [[nodiscard]] double num_or(const std::string& key, double fallback) const {
    const Json* v = find(key);
    return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
  }
  [[nodiscard]] std::string str_or(const std::string& key,
                                   const std::string& fallback) const {
    const Json* v = find(key);
    return v != nullptr && v->type == Type::kString ? v->str : fallback;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  [[nodiscard]] bool parse(Json* out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool literal(const char* word) {
    skip_ws();
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out->push_back(text_[pos_++]);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  [[nodiscard]] bool value(Json* out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->type = Json::Type::kString;
      return string(&out->str);
    }
    if (literal("true")) {
      out->type = Json::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false")) {
      out->type = Json::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (literal("null")) {
      out->type = Json::Type::kNull;
      return true;
    }
    char* end = nullptr;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    out->type = Json::Type::kNumber;
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return true;
  }
  [[nodiscard]] bool object(Json* out) {
    if (!consume('{')) return false;
    out->type = Json::Type::kObject;
    if (consume('}')) return true;
    do {
      std::string key;
      if (!string(&key) || !consume(':')) return false;
      if (!value(&out->object[key])) return false;
    } while (consume(','));
    return consume('}');
  }
  [[nodiscard]] bool array(Json* out) {
    if (!consume('[')) return false;
    out->type = Json::Type::kArray;
    if (consume(']')) return true;
    do {
      Json element;
      if (!value(&element)) return false;
      out->array.push_back(std::move(element));
    } while (consume(','));
    return consume(']');
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] bool load(const std::string& path, Json* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_gate: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (!Parser(text).parse(out) || out->type != Json::Type::kObject) {
    std::fprintf(stderr, "perf_gate: %s is not valid JSON\n", path.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Gate logic.

struct Gate {
  double max_regression = 0.25;
  double min_qd_speedup = 2.0;
  int failures = 0;

  void fail(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "perf_gate: FAIL: ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    ++failures;
  }
};

[[nodiscard]] double requests_of(const Json& doc) {
  const Json* config = doc.find("config");
  return config != nullptr ? config->num_or("requests", -1) : -1;
}

/// Prints a baseline/candidate/delta row and returns the relative delta
/// (negative = candidate slower).
double delta_row(const std::string& label, double base, double cand) {
  const double delta = base > 0 ? (cand - base) / base : 0;
  std::printf("  %-28s %12.1f %12.1f %+8.1f%%\n", label.c_str(), base, cand,
              delta * 100);
  return delta;
}

void check_wall_replays(const Json& base, const Json& cand, Gate* gate) {
  const Json* base_rows = base.find("replays");
  const Json* cand_rows = cand.find("replays");
  if (base_rows == nullptr || cand_rows == nullptr) {
    gate->fail("missing \"replays\" section");
    return;
  }
  std::printf("wall-clock replay throughput (requests_per_s)\n");
  std::printf("  %-28s %12s %12s %9s\n", "scheme", "baseline", "candidate",
              "delta");
  for (const Json& b : base_rows->array) {
    const std::string scheme = b.str_or("scheme", "?");
    const Json* match = nullptr;
    for (const Json& c : cand_rows->array) {
      if (c.str_or("scheme", "") == scheme) match = &c;
    }
    if (match == nullptr) {
      gate->fail("scheme %s missing from candidate replays", scheme.c_str());
      continue;
    }
    const double delta =
        delta_row(scheme, b.num_or("requests_per_s", 0),
                  match->num_or("requests_per_s", 0));
    if (delta < -gate->max_regression) {
      gate->fail("%s wall throughput regressed %.1f%% (limit %.0f%%)",
                 scheme.c_str(), -delta * 100, gate->max_regression * 100);
    }
  }
}

void check_pipeline_cross(const Json& base, const Json& cand, Gate* gate) {
  const Json* base_rows = base.find("pipeline");
  const Json* cand_rows = cand.find("pipeline");
  if (base_rows == nullptr || cand_rows == nullptr) return;  // older file
  std::printf("pipeline simulated throughput (sim_requests_per_s)\n");
  std::printf("  %-28s %12s %12s %9s\n", "scheme @ QD", "baseline",
              "candidate", "delta");
  for (const Json& b : base_rows->array) {
    const std::string scheme = b.str_or("scheme", "?");
    const double qd = b.num_or("queue_depth", 0);
    const Json* match = nullptr;
    for (const Json& c : cand_rows->array) {
      if (c.str_or("scheme", "") == scheme && c.num_or("queue_depth", -1) == qd)
        match = &c;
    }
    if (match == nullptr) {
      gate->fail("pipeline row %s @ QD %.0f missing from candidate",
                 scheme.c_str(), qd);
      continue;
    }
    char label[64];
    std::snprintf(label, sizeof label, "%s @ QD %.0f", scheme.c_str(), qd);
    const double delta =
        delta_row(label, b.num_or("sim_requests_per_s", 0),
                  match->num_or("sim_requests_per_s", 0));
    if (delta < -gate->max_regression) {
      gate->fail("%s simulated throughput regressed %.1f%% (limit %.0f%%)",
                 label, -delta * 100, gate->max_regression * 100);
    }
  }
}

void check_tail_cross(const Json& base, const Json& cand, Gate* gate) {
  const Json* base_sec = base.find("tail");
  const Json* cand_sec = cand.find("tail");
  if (base_sec == nullptr || cand_sec == nullptr) return;  // older file
  const Json* base_rows = base_sec->find("replays");
  const Json* cand_rows = cand_sec->find("replays");
  if (base_rows == nullptr || cand_rows == nullptr) return;
  std::printf("tail-latency chaos read p99 (ms; lower is better)\n");
  std::printf("  %-28s %12s %12s %9s\n", "scheme / policy", "baseline",
              "candidate", "delta");
  for (const Json& b : base_rows->array) {
    const std::string scheme = b.str_or("scheme", "?");
    const std::string policy = b.str_or("policy", "?");
    const Json* match = nullptr;
    for (const Json& c : cand_rows->array) {
      if (c.str_or("scheme", "") == scheme &&
          c.str_or("policy", "") == policy) {
        match = &c;
      }
    }
    if (match == nullptr) {
      gate->fail("tail row %s/%s missing from candidate", scheme.c_str(),
                 policy.c_str());
      continue;
    }
    char label[64];
    std::snprintf(label, sizeof label, "%s %s", scheme.c_str(),
                  policy.c_str());
    // Latency fence: p99 going UP is the regression (these are simulated,
    // deterministic numbers — drift at equal request counts is a behaviour
    // change, and the log2-bucketed percentiles only move when behaviour
    // does).
    const double delta = delta_row(label, b.num_or("read_p99_ms", 0),
                                   match->num_or("read_p99_ms", 0));
    if (delta > gate->max_regression) {
      gate->fail("%s tail read p99 regressed %.1f%% (limit %.0f%%)", label,
                 delta * 100, gate->max_regression * 100);
    }
  }
}

void check_tail_policy(const Json& cand, Gate* gate) {
  const Json* sec = cand.find("tail");
  const Json* rows = sec != nullptr ? sec->find("replays") : nullptr;
  if (rows == nullptr) return;  // older candidate
  std::printf("candidate tail policy invariant (preempt+hedge p99 <= off)\n");
  for (const Json& r : rows->array) {
    if (r.str_or("policy", "") != "preempt+hedge") continue;
    const std::string scheme = r.str_or("scheme", "?");
    const Json* off = nullptr;
    for (const Json& o : rows->array) {
      if (o.str_or("scheme", "") == scheme && o.str_or("policy", "") == "off")
        off = &o;
    }
    if (off == nullptr) continue;
    const double hedged = r.num_or("read_p99_ms", 0);
    const double base = off->num_or("read_p99_ms", 0);
    std::printf("  %-28s off %.2f ms -> hedged %.2f ms\n", scheme.c_str(),
                base, hedged);
    // The full policy must never make the tail worse than doing nothing
    // (tolerance covers log2-bucket quantisation at small request counts).
    if (base > 0 && hedged > base * (1 + gate->max_regression)) {
      gate->fail("%s preempt+hedge read p99 %.2f ms worse than off %.2f ms",
                 scheme.c_str(), hedged, base);
    }
  }
}

void check_qos_cross(const Json& base, const Json& cand, Gate* gate) {
  const Json* base_sec = base.find("qos");
  const Json* cand_sec = cand.find("qos");
  if (base_sec == nullptr || cand_sec == nullptr) return;  // older file
  const Json* base_rows = base_sec->find("replays");
  const Json* cand_rows = cand_sec->find("replays");
  if (base_rows == nullptr || cand_rows == nullptr) return;
  std::printf("qos victim read p99 (ms; lower is better)\n");
  for (const Json& b : base_rows->array) {
    const std::string scheme = b.str_or("scheme", "?");
    const std::string workload = b.str_or("workload", "?");
    const std::string policy = b.str_or("policy", "?");
    const Json* match = nullptr;
    for (const Json& c : cand_rows->array) {
      if (c.str_or("scheme", "") == scheme &&
          c.str_or("workload", "") == workload &&
          c.str_or("policy", "") == policy) {
        match = &c;
      }
    }
    if (match == nullptr) {
      gate->fail("qos row %s/%s/%s missing from candidate", scheme.c_str(),
                 workload.c_str(), policy.c_str());
      continue;
    }
    char label[96];
    std::snprintf(label, sizeof label, "%s %s %s", scheme.c_str(),
                  workload.c_str(), policy.c_str());
    const double delta = delta_row(label, b.num_or("victim_read_p99_ms", 0),
                                   match->num_or("victim_read_p99_ms", 0));
    if (delta > gate->max_regression) {
      gate->fail("%s qos victim read p99 regressed %.1f%% (limit %.0f%%)",
                 label, delta * 100, gate->max_regression * 100);
    }
  }
}

void check_qos_identity(const Json& cand, Gate* gate) {
  const Json* sec = cand.find("qos");
  const Json* rows = sec != nullptr ? sec->find("replays") : nullptr;
  if (rows == nullptr) return;  // older candidate
  std::printf("candidate qos zero-default identity (solo == solo-mixed)\n");
  for (const Json& r : rows->array) {
    if (r.str_or("workload", "") != "solo") continue;
    const std::string scheme = r.str_or("scheme", "?");
    const Json* twin = nullptr;
    for (const Json& o : rows->array) {
      if (o.str_or("scheme", "") == scheme &&
          o.str_or("workload", "") == "solo-mixed") {
        twin = &o;
      }
    }
    if (twin == nullptr) {
      gate->fail("%s qos solo-mixed row missing from candidate",
                 scheme.c_str());
      continue;
    }
    const double solo_p99 = r.num_or("victim_read_p99_ms", -1);
    const double mixed_p99 = twin->num_or("victim_read_p99_ms", -2);
    const double solo_mean = r.num_or("victim_read_mean_ms", -1);
    const double mixed_mean = twin->num_or("victim_read_mean_ms", -2);
    std::printf("  %-12s p99 %.4f/%.4f ms  mean %.4f/%.4f ms\n",
                scheme.c_str(), solo_p99, mixed_p99, solo_mean, mixed_mean);
    // Exact equality, no tolerance: the mixer + tenant-tagging path with a
    // single tenant and QoS off must be a bit-identical no-op.
    if (solo_p99 != mixed_p99 || solo_mean != mixed_mean) {
      gate->fail("%s solo and solo-mixed qos rows differ — tenant plumbing "
                 "is not a zero-default no-op",
                 scheme.c_str());
    }
  }
}

void check_qos_containment(const Json& cand, Gate* gate) {
  const Json* sec = cand.find("qos");
  const Json* rows = sec != nullptr ? sec->find("replays") : nullptr;
  if (rows == nullptr) return;  // older candidate
  std::printf(
      "candidate qos containment (streams+bucket victim p99 <= off)\n");
  for (const Json& r : rows->array) {
    if (r.str_or("policy", "") != "streams+bucket") continue;
    const std::string scheme = r.str_or("scheme", "?");
    const Json* off = nullptr;
    for (const Json& o : rows->array) {
      if (o.str_or("scheme", "") == scheme && o.str_or("policy", "") == "off")
        off = &o;
    }
    if (off == nullptr) continue;
    const double contained = r.num_or("victim_read_p99_ms", 0);
    const double base = off->num_or("victim_read_p99_ms", 0);
    const double contained_mean = r.num_or("victim_read_mean_ms", 0);
    const double base_mean = off->num_or("victim_read_mean_ms", 0);
    std::printf(
        "  %-12s p99 %.2f -> %.2f ms  mean %.2f -> %.2f ms\n",
        scheme.c_str(), base, contained, base_mean, contained_mean);
    // The full policy must never leave the victim worse off than no policy
    // at all. (streams-only is deliberately unfenced: changing allocation
    // spread can shift the tail either way before the bucket paces the
    // neighbor.)
    if (base > 0 && contained > base * (1 + gate->max_regression)) {
      gate->fail("%s streams+bucket victim read p99 %.2f ms worse than off "
                 "%.2f ms",
                 scheme.c_str(), contained, base);
    }
    if (base_mean > 0 &&
        contained_mean > base_mean * (1 + gate->max_regression)) {
      gate->fail("%s streams+bucket victim read mean %.2f ms worse than off "
                 "%.2f ms",
                 scheme.c_str(), contained_mean, base_mean);
    }
  }
}

void check_qd_speedup(const Json& cand, Gate* gate) {
  const Json* rows = cand.find("pipeline");
  if (rows == nullptr) {
    gate->fail("candidate has no \"pipeline\" section");
    return;
  }
  std::printf("candidate pipeline speedup vs QD=1 (floor %.2fx at QD >= 4)\n",
              gate->min_qd_speedup);
  for (const Json& r : rows->array) {
    const double qd = r.num_or("queue_depth", 0);
    const double speedup = r.num_or("speedup_vs_qd1", 0);
    std::printf("  %-28s QD %-4.0f %.2fx\n", r.str_or("scheme", "?").c_str(),
                qd, speedup);
    if (qd >= 4 && speedup < gate->min_qd_speedup) {
      gate->fail("%s @ QD %.0f speedup %.2fx below floor %.2fx",
                 r.str_or("scheme", "?").c_str(), qd, speedup,
                 gate->min_qd_speedup);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  Gate gate;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--candidate" && i + 1 < argc) {
      candidate_path = argv[++i];
    } else if (arg == "--max-regression" && i + 1 < argc) {
      gate.max_regression = std::strtod(argv[++i], nullptr);
    } else if (arg == "--min-qd-speedup" && i + 1 < argc) {
      gate.min_qd_speedup = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: perf_gate --baseline A.json --candidate B.json "
                   "[--max-regression 0.25] [--min-qd-speedup 2.0]\n");
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    std::fprintf(stderr, "perf_gate: --baseline and --candidate required\n");
    return 2;
  }

  Json base;
  Json cand;
  if (!load(baseline_path, &base) || !load(candidate_path, &cand)) return 2;

  const double base_reqs = requests_of(base);
  const double cand_reqs = requests_of(cand);
  if (base_reqs == cand_reqs) {
    check_wall_replays(base, cand, &gate);
    check_pipeline_cross(base, cand, &gate);
    check_tail_cross(base, cand, &gate);
    check_qos_cross(base, cand, &gate);
  } else {
    std::printf(
        "cross-file throughput compare skipped: baseline measured %.0f "
        "requests, candidate %.0f (not comparable)\n",
        base_reqs, cand_reqs);
  }
  check_qd_speedup(cand, &gate);
  check_tail_policy(cand, &gate);
  check_qos_identity(cand, &gate);
  check_qos_containment(cand, &gate);

  if (gate.failures > 0) {
    std::fprintf(stderr, "perf_gate: %d check(s) failed\n", gate.failures);
    return 1;
  }
  std::printf("perf_gate: all checks passed\n");
  return 0;
}

// Cross-file lock-acquisition-order analysis for af_lint v2 (DESIGN.md §6.1).
//
// The analyzer scans the semantic model (model.h) for af::Mutex members,
// AF_GUARDED_BY / AF_REQUIRES(/AF_EXCLUSIVE_LOCKS_REQUIRED) annotations and
// MutexLock / UniqueLock / .lock() acquisition sites, then walks every
// function body with a held-lock set:
//
//   * a direct acquisition while holding H adds edges h -> acquired for all
//     h in H (RAII scopes end at their closing brace; explicit
//     lockvar.unlock()/.lock() pairs are tracked);
//   * a call while holding H adds edges h -> a for every mutex a the callee
//     transitively acquires (call summaries are closed over a fixpoint, so
//     SsdPipeline::worker_loop holding mu_ calling
//     RangeLockTable::eligible() yields the pipeline-mutex -> shard-mutex
//     edge even though the shard lock lives two files away);
//   * AF_REQUIRES / AF_EXCLUSIVE_LOCKS_REQUIRED capabilities are *held at
//     entry*, not acquired, so annotated helpers contribute edges from the
//     required mutex without ever being acquisition sites themselves.
//
// The resulting graph fails the lint on
//   * any cycle (including self-edges: re-acquiring a held non-reentrant
//     mutex is an instant deadlock),
//   * any edge that lands on the same or an earlier level of the documented
//     hierarchy (the normative statement of PR 7's ordering: the pipeline
//     mutex is always acquired before any range-lock shard mutex — see
//     DESIGN.md §10), and
//   * a missing *anchor edge*: the documented pipeline-mutex ->
//     range-lock-shard edge must be present in the graph built from the real
//     tree. That guards the analysis itself — if a refactor renames the
//     members or the parser stops resolving the call chain, the lint fails
//     loudly instead of silently checking nothing.
//
// Names in the hierarchy are qualified-name suffixes ("SsdPipeline::mu_"
// matches "af::sim::SsdPipeline::mu_"), so fixtures can model the same
// shapes under test namespaces.
#pragma once

#include <string>
#include <vector>

#include "lint.h"
#include "model.h"

namespace af::lint::lockorder {

struct Edge {
  std::string from;  // qualified mutex id, e.g. "af::sim::SsdPipeline::mu_"
  std::string to;
  std::string file;  // acquisition / call site
  int line = 0;
  std::string via;  // "Class::function" the edge was observed in
};

struct MutexDecl {
  std::string id;  // qualified "Class::member"
  std::string file;
  int line = 0;
};

struct Graph {
  std::vector<MutexDecl> mutexes;
  std::vector<Edge> edges;  // deduplicated on (from, to), first site kept

  [[nodiscard]] bool has_edge(const std::string& from_suffix,
                              const std::string& to_suffix) const;
};

struct Hierarchy {
  /// levels[i] must be acquired before levels[j] for i < j; mutexes in the
  /// same level must never nest. Entries are qualified-name suffixes.
  std::vector<std::vector<std::string>> levels;
  /// Edges that must exist in the graph (suffix pairs) — anchors proving the
  /// analysis still resolves the documented chain.
  std::vector<std::pair<std::string, std::string>> required_edges;
};

/// The project's documented order: SsdPipeline::mu_ before the range-lock
/// table's order/shard mutexes (DESIGN.md §10). ThreadPool::mu_ is a leaf
/// taken on its own and is deliberately outside the hierarchy (cycle
/// detection still covers it).
[[nodiscard]] Hierarchy default_hierarchy();

/// Anchor-free variant of default_hierarchy() for linting arbitrary file
/// subsets (single files, diffs): order violations and cycles still fail,
/// but the pipeline->shard anchor is only demanded of the full tree.
[[nodiscard]] Hierarchy default_hierarchy_unanchored();

[[nodiscard]] Graph build_graph(const Model& model);

/// Cycle + hierarchy + anchor findings; rule name "lock-order".
[[nodiscard]] std::vector<Finding> check(const Graph& graph,
                                         const Hierarchy& hierarchy);

/// Convenience: model + graph + check in one call.
[[nodiscard]] std::vector<Finding> analyze(
    const std::vector<SourceFile>& files, const Hierarchy& hierarchy);

}  // namespace af::lint::lockorder

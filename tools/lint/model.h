// Small cross-file semantic model for af_lint v2 (DESIGN.md §6.1).
//
// Built from the token stream (lexer.h), one pass per file: namespaces and
// class/struct scopes are tracked by brace nesting, member variables are
// recorded with their type head (the qualified name before any template
// argument list — "std::unordered_map", "af::Mutex", "ssd::RangeLockTable"),
// and every function body's token extent is captured together with its
// enclosing class and any AF_REQUIRES / AF_EXCLUSIVE_LOCKS_REQUIRED
// capability list. That is deliberately far short of a C++ parser — no
// overload resolution, no templates, no typedef chasing — but it is enough
// for the semantic rules:
//
//   * the lock-order analyzer resolves `locks_.eligible(...)` to
//     RangeLockTable::eligible via the member's type head and follows the
//     call with its held-lock set;
//   * the determinism rule resolves `for (auto& kv : packed_)` in
//     mrsm_ftl.cpp to the std::unordered_map member declared in mrsm_ftl.h;
//   * the status rule walks declared-function body extents.
//
// Name resolution is by qualified-name *suffix* ("Shard" resolves to
// "af::ssd::RangeLockTable::Shard"), which is unambiguous in this tree and
// keeps the model independent of using-directives.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lexer.h"

namespace af::lint {

struct MemberVar {
  std::string name;       // as declared, e.g. "packed_"
  std::string type_head;  // qualified head, e.g. "std::unordered_map"
  int line = 0;
  bool mutable_decl = false;
  std::string guarded_by;  // AF_GUARDED_BY argument, "" if unannotated
};

struct FunctionInfo {
  std::string cls;   // qualified enclosing class, "" for free functions
  std::string name;  // unqualified
  std::string file;
  int line = 0;
  std::size_t body_begin = 0;  // token index of the opening '{'
  std::size_t body_end = 0;    // token index one past the closing '}'
  std::vector<std::string> requires_caps;  // raw AF_REQUIRES argument names
};

struct ClassInfo {
  std::string name;  // fully qualified, e.g. "af::ssd::RangeLockTable::Shard"
  std::string file;
  int line = 0;
  std::vector<MemberVar> members;

  [[nodiscard]] const MemberVar* member(const std::string& n) const {
    for (const auto& m : members) {
      if (m.name == n) return &m;
    }
    return nullptr;
  }
};

struct SourceFile {
  std::string path;     // repo-relative display path
  std::string content;  // full text
};

class Model {
 public:
  /// Parses `files` (each already display-pathed) into one shared model.
  /// Lexing happens internally; per-file token streams are retained so rules
  /// can walk function bodies.
  static Model build(const std::vector<SourceFile>& files);

  [[nodiscard]] const std::vector<ClassInfo>& classes() const {
    return classes_;
  }
  [[nodiscard]] const std::vector<FunctionInfo>& functions() const {
    return functions_;
  }
  /// Token stream of one parsed file ("" when the path is unknown).
  [[nodiscard]] const std::vector<Token>* tokens(const std::string& path) const;

  /// Resolves a possibly-qualified type name to a known class by
  /// qualified-name suffix match ("Shard", "RangeLockTable::Shard" and
  /// "af::ssd::RangeLockTable::Shard" all resolve the same). Returns nullptr
  /// when unknown or ambiguous.
  [[nodiscard]] const ClassInfo* resolve_class(const std::string& name) const;

  /// Finds a member function by (qualified class suffix, name); nullptr when
  /// absent. Overloads collapse to the first definition — good enough for
  /// lock acquisition summaries, which are per-name conventions here anyway.
  [[nodiscard]] const FunctionInfo* resolve_function(
      const std::string& cls, const std::string& name) const;

  /// Looks up `name` as a member of `cls` or any of its enclosing classes
  /// (an inner class's method may name an outer member).
  [[nodiscard]] const MemberVar* resolve_member(const std::string& cls,
                                                const std::string& name) const;

 private:
  std::vector<ClassInfo> classes_;
  std::vector<FunctionInfo> functions_;
  std::map<std::string, std::vector<Token>> tokens_;
};

/// True when `qualified` ends with `suffix` on a `::` boundary
/// ("a::b::c" matches suffix "b::c" and "c" but not "::c"-less "bc").
[[nodiscard]] bool qualified_suffix_match(const std::string& qualified,
                                          const std::string& suffix);

}  // namespace af::lint

#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string_view>

namespace af::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// File preprocessing
// ---------------------------------------------------------------------------

struct FileView {
  std::string path;
  std::vector<std::string> raw;   // original lines (suppressions live here)
  std::vector<std::string> code;  // comments + string/char literals blanked
  std::vector<std::set<std::string>> allows;  // per-line allowed rules
  std::set<std::string> file_allows;
};

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// Blanks comments and string/char literals so rule patterns never match
/// inside them (the linter's own sources mention every pattern in strings).
std::vector<std::string> strip_noncode(const std::vector<std::string>& raw) {
  enum class State { kNormal, kBlockComment, kString, kChar };
  State state = State::kNormal;
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kNormal:
          if (c == '/' && next == '/') {
            i = line.size();  // rest of line is a comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == '"') {
            state = State::kString;
          } else if (c == '\'') {
            state = State::kChar;
          } else {
            code[i] = c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kNormal;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kNormal;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kNormal;
          }
          break;
      }
    }
    // Literals do not span lines in this codebase; comments may.
    if (state == State::kString || state == State::kChar) state = State::kNormal;
    out.push_back(std::move(code));
  }
  return out;
}

/// Parses "rule1, rule2" out of an `allow(...)` / `allow-file(...)` marker.
std::vector<std::string> parse_rule_list(const std::string& line,
                                         std::size_t open_paren) {
  std::vector<std::string> rules;
  const std::size_t close = line.find(')', open_paren);
  if (close == std::string::npos) return rules;
  std::string inside = line.substr(open_paren + 1, close - open_paren - 1);
  std::stringstream ss(inside);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    const auto b = rule.find_first_not_of(" \t");
    const auto e = rule.find_last_not_of(" \t");
    if (b != std::string::npos) rules.push_back(rule.substr(b, e - b + 1));
  }
  return rules;
}

void collect_suppressions(FileView& f) {
  f.allows.assign(f.raw.size(), {});
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    const std::string& line = f.raw[i];
    static constexpr std::string_view kFileMarker = "af_lint: allow-file(";
    static constexpr std::string_view kLineMarker = "af_lint: allow(";
    if (const auto pos = line.find(kFileMarker); pos != std::string::npos) {
      for (auto& r : parse_rule_list(line, pos + kFileMarker.size() - 1)) {
        f.file_allows.insert(r);
      }
    }
    if (const auto pos = line.find(kLineMarker); pos != std::string::npos) {
      for (auto& r : parse_rule_list(line, pos + kLineMarker.size() - 1)) {
        // Applies to the marker's own line, then through the rest of the
        // comment block (lines with no code) to the first code line below —
        // so a wrapped justification comment still covers its target.
        f.allows[i].insert(r);
        std::size_t j = i + 1;
        while (j < f.raw.size() &&
               f.code[j].find_first_not_of(" \t") == std::string::npos) {
          f.allows[j].insert(r);
          ++j;
        }
        if (j < f.raw.size()) f.allows[j].insert(r);
      }
    }
  }
}

bool allowed(const FileView& f, const std::string& rule, std::size_t line_idx) {
  if (f.file_allows.count(rule)) return true;
  return line_idx < f.allows.size() && f.allows[line_idx].count(rule) > 0;
}

void report(const FileView& f, std::vector<Finding>& out, std::size_t line_idx,
            std::string rule, std::string message) {
  if (allowed(f, rule, line_idx)) return;
  out.push_back(Finding{f.path, static_cast<int>(line_idx) + 1,
                        std::move(rule), std::move(message)});
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}
bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Rule: pragma-once
// ---------------------------------------------------------------------------

void rule_pragma_once(const FileView& f, std::vector<Finding>& out) {
  if (!ends_with(f.path, ".h")) return;
  for (const std::string& line : f.code) {
    if (line.find("#pragma once") != std::string::npos) return;
  }
  report(f, out, 0, "pragma-once", "header is missing #pragma once");
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-status
// ---------------------------------------------------------------------------

void rule_nodiscard_status(const FileView& f, std::vector<Finding>& out) {
  if (!starts_with(f.path, "src/") || !ends_with(f.path, ".h")) return;
  // Member/free function declarations returning a status-ish type. The type
  // list covers bool plus the project's completion/result structs — anything
  // whose silent drop loses a failure or a completion time.
  static const std::regex kDecl(
      R"(^\s*(?:virtual\s+)?(?:static\s+)?(?:constexpr\s+)?)"
      R"((?:[A-Za-z_]\w*::)*(bool|SimTime|SimDuration|Status|Programmed|Completion|ReplayResult|ReadResult))"
      R"(\s+([A-Za-z_]\w*)\s*\()");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    std::smatch m;
    if (!std::regex_search(line, m, kDecl)) continue;
    if (line.find("operator") != std::string::npos ||
        line.find("friend") != std::string::npos ||
        line.find("using") != std::string::npos ||
        line.find("= delete") != std::string::npos) {
      continue;
    }
    std::string context = line;
    if (i >= 1) context = f.code[i - 1] + context;
    if (i >= 2) context = f.code[i - 2] + context;
    if (context.find("[[nodiscard]]") != std::string::npos) continue;
    report(f, out, i, "nodiscard-status",
           "status-returning API '" + m[2].str() + "' (returns " + m[1].str() +
               ") must be [[nodiscard]]");
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-recovery
// ---------------------------------------------------------------------------

void rule_nodiscard_recovery(const FileView& f, std::vector<Finding>& out) {
  if (!starts_with(f.path, "src/") || !ends_with(f.path, ".h")) return;
  // Mount/recovery status APIs must be [[nodiscard]]: a silently dropped
  // mount() / recover*() return value (or a RecoveryReport) is a crash
  // recovery whose outcome nobody checked. Complements nodiscard-status,
  // which keys off the return type — this rule keys off the name, so even a
  // recovery API returning some new type stays guarded.
  static const std::regex kNamed(
      R"(^\s*(?:virtual\s+)?(?:static\s+)?(?:constexpr\s+)?(?:const\s+)?)"
      R"((?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*[&*]?\s+)"
      R"(((?:mount|recover|remount)\w*)\s*\()");
  static const std::regex kReport(
      R"(^\s*(?:virtual\s+)?(?:static\s+)?(?:constexpr\s+)?(?:const\s+)?)"
      R"((?:[A-Za-z_]\w*::)*(RecoveryReport|CrashReplayResult)\s*[&*]?\s+)"
      R"(([A-Za-z_]\w*)\s*\()");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (line.find("operator") != std::string::npos ||
        line.find("friend") != std::string::npos ||
        line.find("using") != std::string::npos ||
        line.find("= delete") != std::string::npos) {
      continue;
    }
    std::string type, name;
    std::smatch m;
    if (std::regex_search(line, m, kNamed) && m[1].str() != "void") {
      type = m[1].str();
      name = m[2].str();
    } else if (std::regex_search(line, m, kReport)) {
      type = m[1].str();
      name = m[2].str();
    } else {
      continue;
    }
    std::string context = line;
    if (i >= 1) context = f.code[i - 1] + context;
    if (i >= 2) context = f.code[i - 2] + context;
    if (context.find("[[nodiscard]]") != std::string::npos) continue;
    report(f, out, i, "nodiscard-recovery",
           "mount/recovery status API '" + name + "' (returns " + type +
               ") must be [[nodiscard]] — recovery outcomes cannot be "
               "silently ignored");
  }
}

// ---------------------------------------------------------------------------
// Rule: check-side-effects
// ---------------------------------------------------------------------------

/// Extracts the balanced-paren argument list starting right after
/// `open_paren` on line `line_idx`, spanning lines if needed.
std::string macro_args(const FileView& f, std::size_t line_idx,
                       std::size_t open_paren) {
  std::string args;
  int depth = 0;
  for (std::size_t i = line_idx; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (std::size_t j = i == line_idx ? open_paren : 0; j < line.size(); ++j) {
      const char c = line[j];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;  // skip the opening paren itself
      } else if (c == ')') {
        --depth;
        if (depth == 0) return args;
      }
      if (depth >= 1) args.push_back(c);
    }
    args.push_back(' ');
  }
  return args;
}

std::string first_top_level_arg(const std::string& args) {
  int depth = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) return args.substr(0, i);
  }
  return args;
}

/// True when `expr` contains a mutation: increment/decrement, a plain or
/// compound assignment, or a well-known mutating container/atomic call.
bool has_side_effect(const std::string& expr, std::string* what) {
  if (expr.find("++") != std::string::npos ||
      expr.find("--") != std::string::npos) {
    *what = "increment/decrement";
    return true;
  }
  static const char* kMutators[] = {".exchange(", ".fetch_", ".pop",
                                    ".push_",     ".insert(", ".emplace",
                                    ".erase(",    ".clear(",  ".reset(",
                                    ".release("};
  for (const char* m : kMutators) {
    if (expr.find(m) != std::string::npos) {
      *what = std::string("mutating call '") + m + "...'";
      return true;
    }
  }
  for (std::size_t i = 0; i < expr.size(); ++i) {
    if (expr[i] != '=') continue;
    const char prev = i > 0 ? expr[i - 1] : '\0';
    const char next = i + 1 < expr.size() ? expr[i + 1] : '\0';
    if (next == '=') {
      ++i;  // ==, skip both
      continue;
    }
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>') continue;
    if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
        prev == '%' || prev == '&' || prev == '|' || prev == '^') {
      *what = "compound assignment";
      return true;
    }
    *what = "assignment";
    return true;
  }
  return false;
}

void rule_check_side_effects(const FileView& f, std::vector<Finding>& out) {
  if (f.path == "src/common/check.h") return;  // the macro's own definition
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    const auto first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line.compare(first, 7, "#define") == 0) {
      continue;
    }
    for (const char* macro : {"AF_CHECK_MSG", "AF_CHECK"}) {
      std::size_t pos = 0;
      const std::string name(macro);
      while ((pos = line.find(name, pos)) != std::string::npos) {
        const std::size_t after = pos + name.size();
        // Exact token: AF_CHECK must not match inside AF_CHECK_MSG.
        if (after < line.size() &&
            (std::isalnum(static_cast<unsigned char>(line[after])) ||
             line[after] == '_')) {
          ++pos;
          continue;
        }
        const std::size_t paren = line.find('(', after);
        if (paren == std::string::npos) break;
        const std::string args = macro_args(f, i, paren);
        const std::string cond =
            name == "AF_CHECK_MSG" ? first_top_level_arg(args) : args;
        std::string what;
        if (has_side_effect(cond, &what)) {
          report(f, out, i, "check-side-effects",
                 name + " condition has a side effect (" + what +
                     "); checks must be deletable without changing behaviour");
        }
        pos = after;
      }
      if (line.find(name) != std::string::npos) break;  // MSG already handled
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-thread
// ---------------------------------------------------------------------------

void rule_no_raw_thread(const FileView& f, std::vector<Finding>& out) {
  if (starts_with(f.path, "src/common/")) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    std::size_t pos = 0;
    while ((pos = line.find("std::thread", pos)) != std::string::npos) {
      // std::thread::hardware_concurrency() is a read-only capability query.
      if (line.compare(pos + 11, 2, "::") == 0) {
        pos += 11;
        continue;
      }
      report(f, out, i, "no-raw-thread",
             "raw std::thread outside src/common — use af::ThreadPool / "
             "parallel_for");
      pos += 11;
    }
    if (line.find("std::jthread") != std::string::npos ||
        line.find("std::async") != std::string::npos) {
      report(f, out, i, "no-raw-thread",
             "raw thread primitive outside src/common — use af::ThreadPool / "
             "parallel_for");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-nondeterminism
// ---------------------------------------------------------------------------

void rule_no_nondeterminism(const FileView& f, std::vector<Finding>& out) {
  if (starts_with(f.path, "src/common/")) return;
  static const char* kPatterns[] = {
      "std::rand",    "srand(",          "std::random_device",
      "system_clock", "steady_clock",    "high_resolution_clock",
      "std::clock",   "time(nullptr)",   "time(NULL)",
      "gettimeofday", "getrandom",
  };
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const char* p : kPatterns) {
      if (f.code[i].find(p) != std::string::npos) {
        report(f, out, i, "no-nondeterminism",
               std::string("nondeterministic source '") + p +
                   "' outside src/common — replays must be bit-identical "
                   "(seed af::Rng / pass timestamps in)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: integrity-status
// ---------------------------------------------------------------------------

void rule_integrity_status(const FileView& f, std::vector<Finding>& out) {
  // Engine::flash_read returns a ReadResult whose status can say "this data
  // is gone" (uncorrectable, no parity stripe). A call in statement position
  // throws that verdict away — [[nodiscard]] catches the bare call, but not
  // one hidden behind a comma operator or cast-free discard idioms; this
  // rule closes the class at the source level.
  if (!starts_with(f.path, "src/")) return;
  static constexpr std::string_view kCall = "flash_read(";
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    std::size_t pos = 0;
    while ((pos = line.find(kCall, pos)) != std::string::npos) {
      // Token boundary: map_flash_read / mount-scan helpers with the name as
      // a suffix return plain SimTime and are not this rule's business.
      if (pos > 0 && (std::isalnum(static_cast<unsigned char>(line[pos - 1])) ||
                      line[pos - 1] == '_')) {
        pos += kCall.size();
        continue;
      }
      // Walk back over the object chain (receiver, ., ->, ::) to find what
      // syntactically precedes the call expression.
      std::size_t chain = pos;
      while (chain > 0) {
        const char c = line[chain - 1];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.' || c == ':' || c == '>' || c == '-') {
          --chain;
        } else {
          break;
        }
      }
      std::string prefix = line.substr(0, chain);
      const auto last = prefix.find_last_not_of(" \t");
      prefix = last == std::string::npos ? "" : prefix.substr(0, last + 1);
      // A call that starts its line may be the continuation of a wrapped
      // expression (argument list, assignment RHS) — the decisive character
      // then lives on an earlier line. Comment-only lines are already
      // blanked in f.code, so they skip naturally.
      for (std::size_t li = i; prefix.empty() && li > 0;) {
        const std::string& prev = f.code[--li];
        const auto plast = prev.find_last_not_of(" \t");
        if (plast != std::string::npos) prefix = prev.substr(0, plast + 1);
      }
      // Statement position: nothing before the call, or the previous
      // statement just ended. Anything else — assignment, return, argument,
      // declaration, explicit (void) — consumes or visibly discards it.
      if (prefix.empty() || prefix.back() == ';' || prefix.back() == '{' ||
          prefix.back() == '}') {
        report(f, out, i, "integrity-status",
               "flash_read result discarded — its ReadResult carries the "
               "data-integrity verdict (uncorrectable/lost); consume .done "
               "and .status, or discard explicitly with (void)");
      }
      pos += kCall.size();
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-space-status
// ---------------------------------------------------------------------------

void rule_nodiscard_space_status(const FileView& f, std::vector<Finding>& out) {
  // The capacity subsystem's unmap/throttle APIs return state the caller
  // must act on: admit_write's Status decides whether a write may proceed at
  // all, throttle_delay's stall must be added to the request clock, trim's
  // completion time feeds the timeline, and note_trim's seq orders the
  // tombstone against OOB claims. A call in statement position silently
  // drops that — same closure as integrity-status, keyed on the space APIs.
  if (!starts_with(f.path, "src/")) return;
  static constexpr std::string_view kCalls[] = {
      "admit_write(", "throttle_delay(", "note_trim(", "trim("};
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const std::string_view call : kCalls) {
      std::size_t pos = 0;
      while ((pos = line.find(call, pos)) != std::string::npos) {
        // Token boundary: on_trim / prune_trim_log-style names carrying the
        // API name as a suffix are different functions.
        if (pos > 0 &&
            (std::isalnum(static_cast<unsigned char>(line[pos - 1])) ||
             line[pos - 1] == '_')) {
          pos += call.size();
          continue;
        }
        // Walk back over the object chain (receiver, ., ->, ::) to find
        // what syntactically precedes the call expression. A `()` in the
        // chain — `engine.array().note_trim(...)` — is hopped over whole.
        std::size_t chain = pos;
        while (chain > 0) {
          const char c = line[chain - 1];
          if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '.' || c == ':' || c == '>' || c == '-') {
            --chain;
          } else if (c == ')') {
            int depth = 0;
            std::size_t j = chain;
            while (j > 0) {
              if (line[j - 1] == ')') ++depth;
              if (line[j - 1] == '(' && --depth == 0) break;
              --j;
            }
            // Hop only over *call* parens (preceded by an identifier, as in
            // `array()`): a cast like `(void)` must stay in the prefix, where
            // it reads as an explicit discard.
            if (j <= 1 ||
                !(std::isalnum(static_cast<unsigned char>(line[j - 2])) ||
                  line[j - 2] == '_')) {
              break;
            }
            chain = j - 1;
          } else {
            break;
          }
        }
        std::string prefix = line.substr(0, chain);
        const auto last = prefix.find_last_not_of(" \t");
        prefix = last == std::string::npos ? "" : prefix.substr(0, last + 1);
        for (std::size_t li = i; prefix.empty() && li > 0;) {
          const std::string& prev = f.code[--li];
          const auto plast = prev.find_last_not_of(" \t");
          if (plast != std::string::npos) prefix = prev.substr(0, plast + 1);
        }
        // Statement position: nothing before the call, or the previous
        // statement just ended. Anything else — assignment, return,
        // argument, declaration, explicit (void) — consumes or visibly
        // discards it. A declaration (`virtual SimTime trim(`) never sits
        // in statement position, so headers pass untouched.
        if (prefix.empty() || prefix.back() == ';' || prefix.back() == '{' ||
            prefix.back() == '}') {
          const std::string name(call.substr(0, call.size() - 1));
          report(f, out, i, "nodiscard-space-status",
                 "space-status API '" + name +
                     "' result discarded — consume the Status/completion "
                     "(admission verdict, throttle stall, tombstone seq), "
                     "or discard explicitly with (void)");
        }
        pos += call.size();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: bench-run-schemes
// ---------------------------------------------------------------------------

void rule_bench_run_schemes(const FileView& f, std::vector<Finding>& out) {
  if (!starts_with(f.path, "bench/")) return;
  if (f.path == "bench/common.cpp" || f.path == "bench/common.h") return;
  static const std::regex kSchemeLoop(R"(for\s*\(.*SchemeKind)");
  bool multi_scheme = false;
  for (const std::string& line : f.code) {
    if (line.find("all_schemes()") != std::string::npos ||
        std::regex_search(line, kSchemeLoop)) {
      multi_scheme = true;
      break;
    }
  }
  if (!multi_scheme) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (f.code[i].find("trace::replay(") != std::string::npos) {
      report(f, out, i, "bench-run-schemes",
             "multi-scheme bench calls trace::replay directly — route the "
             "loop through bench::run_schemes / replay_grid");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: pipeline-guarded-state
// ---------------------------------------------------------------------------

void rule_pipeline_guarded_state(const FileView& f, std::vector<Finding>& out) {
  // Headers in the concurrency-bearing layers (src/ssd, src/sim) that declare
  // an af::Mutex member are shared between threads; every trailing-underscore
  // data member there must say how it is synchronized: AF_GUARDED_BY /
  // AF_PT_GUARDED_BY, std::atomic, or an internally-synchronized type
  // (Mutex, condition_variable, ThreadPool, RangeLockTable). Everything else
  // needs an explicit af_lint allow with a justification — "I forgot the
  // annotation" and "this is thread-confined by design" must look different.
  if (!ends_with(f.path, ".h")) return;
  if (!starts_with(f.path, "src/ssd/") && !starts_with(f.path, "src/sim/")) {
    return;
  }
  static const std::regex kMutexMember(
      R"(^\s*(?:mutable\s+)?(?:af::)?Mutex\s+\w+\s*;)");
  bool has_mutex = false;
  for (const std::string& line : f.code) {
    if (std::regex_search(line, kMutexMember)) {
      has_mutex = true;
      break;
    }
  }
  if (!has_mutex) return;
  // A member declaration: a type, then a trailing-underscore name, ending the
  // statement (possibly with an initializer). Multi-line declarations whose
  // annotation sits on a continuation line never end in ';' here and skip.
  static const std::regex kMember(
      R"(^\s*[A-Za-z_][\w:<>,\s\*&]*[\s&\*>][A-Za-z_]\w*_\s*(;|=[^=]|\{))");
  static const char* kSyncTypes[] = {"Mutex", "condition_variable",
                                     "ThreadPool", "RangeLockTable"};
  static const char* kSkipLeaders[] = {"static", "const",  "constexpr",
                                       "using",  "return", "friend",
                                       "enum",   "#",      "typedef"};
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (line.find("AF_GUARDED_BY") != std::string::npos ||
        line.find("AF_PT_GUARDED_BY") != std::string::npos ||
        line.find("std::atomic") != std::string::npos) {
      continue;
    }
    // Any other parenthesis means a function declaration or an in-class call.
    if (line.find('(') != std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t");
    if (last == std::string::npos || line[last] != ';') continue;
    if (!std::regex_search(line, kMember)) continue;
    const auto first = line.find_first_not_of(" \t");
    bool skip = false;
    for (const char* leader : kSkipLeaders) {
      if (line.compare(first, std::string(leader).size(), leader) == 0) {
        skip = true;
        break;
      }
    }
    for (const char* type : kSyncTypes) {
      if (line.find(type) != std::string::npos) skip = true;
    }
    if (skip) continue;
    report(f, out, i, "pipeline-guarded-state",
           "shared mutable member in a mutex-bearing ssd/sim header without "
           "AF_GUARDED_BY / std::atomic — annotate the guard, or justify "
           "thread confinement with an af_lint allow comment");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

std::vector<Finding> lint_content(const std::string& display_path,
                                  const std::string& content) {
  FileView f;
  f.path = display_path;
  f.raw = split_lines(content);
  f.code = strip_noncode(f.raw);
  collect_suppressions(f);

  std::vector<Finding> out;
  rule_pragma_once(f, out);
  rule_nodiscard_status(f, out);
  rule_nodiscard_recovery(f, out);
  rule_check_side_effects(f, out);
  rule_no_raw_thread(f, out);
  rule_no_nondeterminism(f, out);
  rule_integrity_status(f, out);
  rule_nodiscard_space_status(f, out);
  rule_bench_run_schemes(f, out);
  rule_pipeline_guarded_state(f, out);
  return out;
}

std::vector<Finding> lint_tree(const std::string& root) {
  std::vector<Finding> out;
  for (const char* dir : {"src", "bench", "tests", "examples", "tools"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string display =
          fs::relative(entry.path(), root).generic_string();
      auto findings = lint_content(display, ss.str());
      out.insert(out.end(), std::make_move_iterator(findings.begin()),
                 std::make_move_iterator(findings.end()));
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace af::lint

#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string_view>

#include "lexer.h"
#include "lockorder.h"
#include "model.h"

namespace af::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// File preprocessing (lexer-backed)
// ---------------------------------------------------------------------------

struct FileView {
  std::string path;
  std::vector<std::string> raw;   // original lines
  std::vector<std::string> code;  // comments + literal bodies blanked (lexer)
  std::vector<std::set<std::string>> allows;  // per-line allowed rules
  std::set<std::string> file_allows;
};

/// Parses "rule1, rule2" out of an `allow(...)` / `allow-file(...)` marker.
std::vector<std::string> parse_rule_list(const std::string& line,
                                         std::size_t open_paren) {
  std::vector<std::string> rules;
  const std::size_t close = line.find(')', open_paren);
  if (close == std::string::npos) return rules;
  std::string inside = line.substr(open_paren + 1, close - open_paren - 1);
  std::stringstream ss(inside);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    const auto b = rule.find_first_not_of(" \t");
    const auto e = rule.find_last_not_of(" \t");
    if (b != std::string::npos) rules.push_back(rule.substr(b, e - b + 1));
  }
  return rules;
}

/// Suppressions come from *comment tokens only* — a marker spelled inside a
/// string literal (the v1 blind spot) never suppresses anything. A line
/// marker applies to its own line, then through the rest of the comment
/// block (lines with no code) to the first code line below, so a wrapped
/// justification comment still covers its target.
void collect_suppressions(FileView& f, const std::vector<Token>& tokens) {
  f.allows.assign(f.raw.size(), {});
  const auto apply_line_marker = [&](const std::string& rule,
                                     std::size_t idx) {
    if (idx >= f.raw.size()) return;
    f.allows[idx].insert(rule);
    std::size_t j = idx + 1;
    while (j < f.raw.size() &&
           f.code[j].find_first_not_of(" \t") == std::string::npos) {
      f.allows[j].insert(rule);
      ++j;
    }
    if (j < f.raw.size()) f.allows[j].insert(rule);
  };
  static constexpr std::string_view kFileMarker = "af_lint: allow-file(";
  static constexpr std::string_view kLineMarker = "af_lint: allow(";
  for (const Token& t : tokens) {
    if (t.kind != Tok::kComment) continue;
    // Scan the comment text line by line so a marker deep inside a block
    // comment anchors to the line it is written on.
    std::size_t offset = 0;
    std::size_t begin = 0;
    while (begin <= t.text.size()) {
      const std::size_t nl = t.text.find('\n', begin);
      const std::string line = t.text.substr(
          begin, nl == std::string::npos ? std::string::npos : nl - begin);
      const std::size_t idx = static_cast<std::size_t>(t.line - 1) + offset;
      if (const auto pos = line.find(kFileMarker); pos != std::string::npos) {
        for (auto& r : parse_rule_list(line, pos + kFileMarker.size() - 1)) {
          f.file_allows.insert(r);
        }
      }
      if (const auto pos = line.find(kLineMarker); pos != std::string::npos) {
        for (auto& r : parse_rule_list(line, pos + kLineMarker.size() - 1)) {
          apply_line_marker(r, idx);
        }
      }
      if (nl == std::string::npos) break;
      begin = nl + 1;
      ++offset;
    }
  }
}

bool allowed(const FileView& f, const std::string& rule, std::size_t line_idx) {
  if (f.file_allows.count(rule)) return true;
  return line_idx < f.allows.size() && f.allows[line_idx].count(rule) > 0;
}

void report(const FileView& f, std::vector<Finding>& out, std::size_t line_idx,
            std::string rule, std::string message) {
  if (allowed(f, rule, line_idx)) return;
  out.push_back(Finding{f.path, static_cast<int>(line_idx) + 1,
                        std::move(rule), std::move(message)});
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}
bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Rule: pragma-once
// ---------------------------------------------------------------------------

void rule_pragma_once(const FileView& f, std::vector<Finding>& out) {
  if (!ends_with(f.path, ".h")) return;
  for (const std::string& line : f.code) {
    if (line.find("#pragma once") != std::string::npos) return;
  }
  report(f, out, 0, "pragma-once", "header is missing #pragma once");
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-status
// ---------------------------------------------------------------------------

void rule_nodiscard_status(const FileView& f, std::vector<Finding>& out) {
  if (!starts_with(f.path, "src/") || !ends_with(f.path, ".h")) return;
  // Member/free function declarations returning a status-ish type. The type
  // list covers bool plus the project's completion/result structs — anything
  // whose silent drop loses a failure or a completion time.
  static const std::regex kDecl(
      R"(^\s*(?:virtual\s+)?(?:static\s+)?(?:constexpr\s+)?)"
      R"((?:[A-Za-z_]\w*::)*(bool|SimTime|SimDuration|Status|Programmed|Completion|ReplayResult|ReadResult))"
      R"(\s+([A-Za-z_]\w*)\s*\()");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    std::smatch m;
    if (!std::regex_search(line, m, kDecl)) continue;
    if (line.find("operator") != std::string::npos ||
        line.find("friend") != std::string::npos ||
        line.find("using") != std::string::npos ||
        line.find("= delete") != std::string::npos) {
      continue;
    }
    std::string context = line;
    if (i >= 1) context = f.code[i - 1] + context;
    if (i >= 2) context = f.code[i - 2] + context;
    if (context.find("[[nodiscard]]") != std::string::npos) continue;
    report(f, out, i, "nodiscard-status",
           "status-returning API '" + m[2].str() + "' (returns " + m[1].str() +
               ") must be [[nodiscard]]");
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-recovery
// ---------------------------------------------------------------------------

void rule_nodiscard_recovery(const FileView& f, std::vector<Finding>& out) {
  if (!starts_with(f.path, "src/") || !ends_with(f.path, ".h")) return;
  // Mount/recovery status APIs must be [[nodiscard]]: a silently dropped
  // mount() / recover*() return value (or a RecoveryReport) is a crash
  // recovery whose outcome nobody checked. Complements nodiscard-status,
  // which keys off the return type — this rule keys off the name, so even a
  // recovery API returning some new type stays guarded.
  static const std::regex kNamed(
      R"(^\s*(?:virtual\s+)?(?:static\s+)?(?:constexpr\s+)?(?:const\s+)?)"
      R"((?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*[&*]?\s+)"
      R"(((?:mount|recover|remount)\w*)\s*\()");
  static const std::regex kReport(
      R"(^\s*(?:virtual\s+)?(?:static\s+)?(?:constexpr\s+)?(?:const\s+)?)"
      R"((?:[A-Za-z_]\w*::)*(RecoveryReport|CrashReplayResult)\s*[&*]?\s+)"
      R"(([A-Za-z_]\w*)\s*\()");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (line.find("operator") != std::string::npos ||
        line.find("friend") != std::string::npos ||
        line.find("using") != std::string::npos ||
        line.find("= delete") != std::string::npos) {
      continue;
    }
    std::string type, name;
    std::smatch m;
    if (std::regex_search(line, m, kNamed) && m[1].str() != "void") {
      type = m[1].str();
      name = m[2].str();
    } else if (std::regex_search(line, m, kReport)) {
      type = m[1].str();
      name = m[2].str();
    } else {
      continue;
    }
    std::string context = line;
    if (i >= 1) context = f.code[i - 1] + context;
    if (i >= 2) context = f.code[i - 2] + context;
    if (context.find("[[nodiscard]]") != std::string::npos) continue;
    report(f, out, i, "nodiscard-recovery",
           "mount/recovery status API '" + name + "' (returns " + type +
               ") must be [[nodiscard]] — recovery outcomes cannot be "
               "silently ignored");
  }
}

// ---------------------------------------------------------------------------
// Rule: check-side-effects
// ---------------------------------------------------------------------------

/// Extracts the balanced-paren argument list starting right after
/// `open_paren` on line `line_idx`, spanning lines if needed.
std::string macro_args(const FileView& f, std::size_t line_idx,
                       std::size_t open_paren) {
  std::string args;
  int depth = 0;
  for (std::size_t i = line_idx; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (std::size_t j = i == line_idx ? open_paren : 0; j < line.size(); ++j) {
      const char c = line[j];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;  // skip the opening paren itself
      } else if (c == ')') {
        --depth;
        if (depth == 0) return args;
      }
      if (depth >= 1) args.push_back(c);
    }
    args.push_back(' ');
  }
  return args;
}

std::string first_top_level_arg(const std::string& args) {
  int depth = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) return args.substr(0, i);
  }
  return args;
}

/// True when `expr` contains a mutation: increment/decrement, a plain or
/// compound assignment, or a well-known mutating container/atomic call.
bool has_side_effect(const std::string& expr, std::string* what) {
  if (expr.find("++") != std::string::npos ||
      expr.find("--") != std::string::npos) {
    *what = "increment/decrement";
    return true;
  }
  static const char* kMutators[] = {".exchange(", ".fetch_", ".pop",
                                    ".push_",     ".insert(", ".emplace",
                                    ".erase(",    ".clear(",  ".reset(",
                                    ".release("};
  for (const char* m : kMutators) {
    if (expr.find(m) != std::string::npos) {
      *what = std::string("mutating call '") + m + "...'";
      return true;
    }
  }
  for (std::size_t i = 0; i < expr.size(); ++i) {
    if (expr[i] != '=') continue;
    const char prev = i > 0 ? expr[i - 1] : '\0';
    const char next = i + 1 < expr.size() ? expr[i + 1] : '\0';
    if (next == '=') {
      ++i;  // ==, skip both
      continue;
    }
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>') continue;
    if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
        prev == '%' || prev == '&' || prev == '|' || prev == '^') {
      *what = "compound assignment";
      return true;
    }
    *what = "assignment";
    return true;
  }
  return false;
}

void rule_check_side_effects(const FileView& f, std::vector<Finding>& out) {
  if (f.path == "src/common/check.h") return;  // the macro's own definition
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    const auto first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line.compare(first, 7, "#define") == 0) {
      continue;
    }
    for (const char* macro : {"AF_CHECK_MSG", "AF_CHECK"}) {
      std::size_t pos = 0;
      const std::string name(macro);
      while ((pos = line.find(name, pos)) != std::string::npos) {
        const std::size_t after = pos + name.size();
        // Exact token: AF_CHECK must not match inside AF_CHECK_MSG.
        if (after < line.size() &&
            (std::isalnum(static_cast<unsigned char>(line[after])) ||
             line[after] == '_')) {
          ++pos;
          continue;
        }
        const std::size_t paren = line.find('(', after);
        if (paren == std::string::npos) break;
        const std::string args = macro_args(f, i, paren);
        const std::string cond =
            name == "AF_CHECK_MSG" ? first_top_level_arg(args) : args;
        std::string what;
        if (has_side_effect(cond, &what)) {
          report(f, out, i, "check-side-effects",
                 name + " condition has a side effect (" + what +
                     "); checks must be deletable without changing behaviour");
        }
        pos = after;
      }
      if (line.find(name) != std::string::npos) break;  // MSG already handled
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-thread
// ---------------------------------------------------------------------------

void rule_no_raw_thread(const FileView& f, std::vector<Finding>& out) {
  if (starts_with(f.path, "src/common/")) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    std::size_t pos = 0;
    while ((pos = line.find("std::thread", pos)) != std::string::npos) {
      // std::thread::hardware_concurrency() is a read-only capability query.
      if (line.compare(pos + 11, 2, "::") == 0) {
        pos += 11;
        continue;
      }
      report(f, out, i, "no-raw-thread",
             "raw std::thread outside src/common — use af::ThreadPool / "
             "parallel_for");
      pos += 11;
    }
    if (line.find("std::jthread") != std::string::npos ||
        line.find("std::async") != std::string::npos) {
      report(f, out, i, "no-raw-thread",
             "raw thread primitive outside src/common — use af::ThreadPool / "
             "parallel_for");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-nondeterminism
// ---------------------------------------------------------------------------

void rule_no_nondeterminism(const FileView& f, std::vector<Finding>& out) {
  if (starts_with(f.path, "src/common/")) return;
  static const char* kPatterns[] = {
      "std::rand",    "srand(",          "std::random_device",
      "system_clock", "steady_clock",    "high_resolution_clock",
      "std::clock",   "time(nullptr)",   "time(NULL)",
      "gettimeofday", "getrandom",
  };
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const char* p : kPatterns) {
      if (f.code[i].find(p) != std::string::npos) {
        report(f, out, i, "no-nondeterminism",
               std::string("nondeterministic source '") + p +
                   "' outside src/common — replays must be bit-identical "
                   "(seed af::Rng / pass timestamps in)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: deadline-clock
// ---------------------------------------------------------------------------

void rule_deadline_clock(const FileView& f, std::vector<Finding>& out) {
  // The deadline subsystem (DESIGN.md §11) budgets reads in simulated
  // nanoseconds: ledger arming, hedge thresholds and suspend decisions are
  // all SimTime arithmetic. Any host-clock primitive inside src/ssd or
  // src/sim — even a "harmless" sleep in a debug hook — couples tail-latency
  // decisions to wall time, which breaks the replay-bit-identical contract
  // and makes hedges fire nondeterministically under sanitizer or CI load.
  // Stricter than no-nondeterminism on purpose: here even std::chrono
  // durations and sleeps are out; timing comes from nand/timing.h constants.
  if (!starts_with(f.path, "src/ssd/") && !starts_with(f.path, "src/sim/")) {
    return;
  }
  static const char* kPatterns[] = {
      "std::chrono",   "sleep_for(", "sleep_until(",
      "clock_gettime", "nanosleep",  "timespec",
  };
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const char* p : kPatterns) {
      if (f.code[i].find(p) != std::string::npos) {
        report(f, out, i, "deadline-clock",
               std::string("host-clock primitive '") + p +
                   "' in the deadline/simulated-time subsystem — deadlines "
                   "are SimTime arithmetic on the DeadlineLedger, never "
                   "wall time");
        break;  // one finding per line, whichever pattern hits first
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: integrity-status
// ---------------------------------------------------------------------------

void rule_integrity_status(const FileView& f, std::vector<Finding>& out) {
  // Engine::flash_read returns a ReadResult whose status can say "this data
  // is gone" (uncorrectable, no parity stripe). A call in statement position
  // throws that verdict away — [[nodiscard]] catches the bare call, but not
  // one hidden behind a comma operator or cast-free discard idioms; this
  // rule closes the class at the source level.
  if (!starts_with(f.path, "src/")) return;
  static constexpr std::string_view kCall = "flash_read(";
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    std::size_t pos = 0;
    while ((pos = line.find(kCall, pos)) != std::string::npos) {
      // Token boundary: map_flash_read / mount-scan helpers with the name as
      // a suffix return plain SimTime and are not this rule's business.
      if (pos > 0 && (std::isalnum(static_cast<unsigned char>(line[pos - 1])) ||
                      line[pos - 1] == '_')) {
        pos += kCall.size();
        continue;
      }
      // Walk back over the object chain (receiver, ., ->, ::) to find what
      // syntactically precedes the call expression.
      std::size_t chain = pos;
      while (chain > 0) {
        const char c = line[chain - 1];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.' || c == ':' || c == '>' || c == '-') {
          --chain;
        } else {
          break;
        }
      }
      std::string prefix = line.substr(0, chain);
      const auto last = prefix.find_last_not_of(" \t");
      prefix = last == std::string::npos ? "" : prefix.substr(0, last + 1);
      // A call that starts its line may be the continuation of a wrapped
      // expression (argument list, assignment RHS) — the decisive character
      // then lives on an earlier line. Comment-only lines are already
      // blanked in f.code, so they skip naturally.
      for (std::size_t li = i; prefix.empty() && li > 0;) {
        const std::string& prev = f.code[--li];
        const auto plast = prev.find_last_not_of(" \t");
        if (plast != std::string::npos) prefix = prev.substr(0, plast + 1);
      }
      // Statement position: nothing before the call, or the previous
      // statement just ended. Anything else — assignment, return, argument,
      // declaration, explicit (void) — consumes or visibly discards it.
      if (prefix.empty() || prefix.back() == ';' || prefix.back() == '{' ||
          prefix.back() == '}') {
        report(f, out, i, "integrity-status",
               "flash_read result discarded — its ReadResult carries the "
               "data-integrity verdict (uncorrectable/lost); consume .done "
               "and .status, or discard explicitly with (void)");
      }
      pos += kCall.size();
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-space-status
// ---------------------------------------------------------------------------

void rule_nodiscard_space_status(const FileView& f, std::vector<Finding>& out) {
  // The capacity subsystem's unmap/throttle APIs return state the caller
  // must act on: admit_write's Status decides whether a write may proceed at
  // all, throttle_delay's stall must be added to the request clock, trim's
  // completion time feeds the timeline, and note_trim's seq orders the
  // tombstone against OOB claims. A call in statement position silently
  // drops that — same closure as integrity-status, keyed on the space APIs.
  if (!starts_with(f.path, "src/")) return;
  static constexpr std::string_view kCalls[] = {
      "admit_write(", "throttle_delay(", "note_trim(", "trim("};
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const std::string_view call : kCalls) {
      std::size_t pos = 0;
      while ((pos = line.find(call, pos)) != std::string::npos) {
        // Token boundary: on_trim / prune_trim_log-style names carrying the
        // API name as a suffix are different functions.
        if (pos > 0 &&
            (std::isalnum(static_cast<unsigned char>(line[pos - 1])) ||
             line[pos - 1] == '_')) {
          pos += call.size();
          continue;
        }
        // Walk back over the object chain (receiver, ., ->, ::) to find
        // what syntactically precedes the call expression. A `()` in the
        // chain — `engine.array().note_trim(...)` — is hopped over whole.
        std::size_t chain = pos;
        while (chain > 0) {
          const char c = line[chain - 1];
          if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '.' || c == ':' || c == '>' || c == '-') {
            --chain;
          } else if (c == ')') {
            int depth = 0;
            std::size_t j = chain;
            while (j > 0) {
              if (line[j - 1] == ')') ++depth;
              if (line[j - 1] == '(' && --depth == 0) break;
              --j;
            }
            // Hop only over *call* parens (preceded by an identifier, as in
            // `array()`): a cast like `(void)` must stay in the prefix, where
            // it reads as an explicit discard.
            if (j <= 1 ||
                !(std::isalnum(static_cast<unsigned char>(line[j - 2])) ||
                  line[j - 2] == '_')) {
              break;
            }
            chain = j - 1;
          } else {
            break;
          }
        }
        std::string prefix = line.substr(0, chain);
        const auto last = prefix.find_last_not_of(" \t");
        prefix = last == std::string::npos ? "" : prefix.substr(0, last + 1);
        for (std::size_t li = i; prefix.empty() && li > 0;) {
          const std::string& prev = f.code[--li];
          const auto plast = prev.find_last_not_of(" \t");
          if (plast != std::string::npos) prefix = prev.substr(0, plast + 1);
        }
        // Statement position: nothing before the call, or the previous
        // statement just ended. Anything else — assignment, return,
        // argument, declaration, explicit (void) — consumes or visibly
        // discards it. A declaration (`virtual SimTime trim(`) never sits
        // in statement position, so headers pass untouched.
        if (prefix.empty() || prefix.back() == ';' || prefix.back() == '{' ||
            prefix.back() == '}') {
          const std::string name(call.substr(0, call.size() - 1));
          report(f, out, i, "nodiscard-space-status",
                 "space-status API '" + name +
                     "' result discarded — consume the Status/completion "
                     "(admission verdict, throttle stall, tombstone seq), "
                     "or discard explicitly with (void)");
        }
        pos += call.size();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: bench-run-schemes
// ---------------------------------------------------------------------------

void rule_bench_run_schemes(const FileView& f, std::vector<Finding>& out) {
  if (!starts_with(f.path, "bench/")) return;
  if (f.path == "bench/common.cpp" || f.path == "bench/common.h") return;
  static const std::regex kSchemeLoop(R"(for\s*\(.*SchemeKind)");
  bool multi_scheme = false;
  for (const std::string& line : f.code) {
    if (line.find("all_schemes()") != std::string::npos ||
        std::regex_search(line, kSchemeLoop)) {
      multi_scheme = true;
      break;
    }
  }
  if (!multi_scheme) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (f.code[i].find("trace::replay(") != std::string::npos) {
      report(f, out, i, "bench-run-schemes",
             "multi-scheme bench calls trace::replay directly — route the "
             "loop through bench::run_schemes / replay_grid");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: pipeline-guarded-state
// ---------------------------------------------------------------------------

void rule_pipeline_guarded_state(const FileView& f, std::vector<Finding>& out) {
  // Headers in the concurrency-bearing layers (src/ssd, src/sim) that declare
  // an af::Mutex member are shared between threads; every trailing-underscore
  // data member there must say how it is synchronized: AF_GUARDED_BY /
  // AF_PT_GUARDED_BY, std::atomic, or an internally-synchronized type
  // (Mutex, condition_variable, ThreadPool, RangeLockTable). Everything else
  // needs an explicit af_lint allow with a justification — "I forgot the
  // annotation" and "this is thread-confined by design" must look different.
  if (!ends_with(f.path, ".h")) return;
  if (!starts_with(f.path, "src/ssd/") && !starts_with(f.path, "src/sim/")) {
    return;
  }
  static const std::regex kMutexMember(
      R"(^\s*(?:mutable\s+)?(?:af::)?Mutex\s+\w+\s*;)");
  bool has_mutex = false;
  for (const std::string& line : f.code) {
    if (std::regex_search(line, kMutexMember)) {
      has_mutex = true;
      break;
    }
  }
  if (!has_mutex) return;
  // A member declaration: a type, then a trailing-underscore name, ending the
  // statement (possibly with an initializer). Multi-line declarations whose
  // annotation sits on a continuation line never end in ';' here and skip.
  static const std::regex kMember(
      R"(^\s*[A-Za-z_][\w:<>,\s\*&]*[\s&\*>][A-Za-z_]\w*_\s*(;|=[^=]|\{))");
  static const char* kSyncTypes[] = {"Mutex", "condition_variable",
                                     "ThreadPool", "RangeLockTable"};
  static const char* kSkipLeaders[] = {"static", "const",  "constexpr",
                                       "using",  "return", "friend",
                                       "enum",   "#",      "typedef"};
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (line.find("AF_GUARDED_BY") != std::string::npos ||
        line.find("AF_PT_GUARDED_BY") != std::string::npos ||
        line.find("std::atomic") != std::string::npos) {
      continue;
    }
    // Any other parenthesis means a function declaration or an in-class call.
    if (line.find('(') != std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t");
    if (last == std::string::npos || line[last] != ';') continue;
    if (!std::regex_search(line, kMember)) continue;
    const auto first = line.find_first_not_of(" \t");
    bool skip = false;
    for (const char* leader : kSkipLeaders) {
      if (line.compare(first, std::string(leader).size(), leader) == 0) {
        skip = true;
        break;
      }
    }
    for (const char* type : kSyncTypes) {
      if (line.find(type) != std::string::npos) skip = true;
    }
    if (skip) continue;
    report(f, out, i, "pipeline-guarded-state",
           "shared mutable member in a mutex-bearing ssd/sim header without "
           "AF_GUARDED_BY / std::atomic — annotate the guard, or justify "
           "thread confinement with an af_lint allow comment");
  }
}

// ---------------------------------------------------------------------------
// Semantic rules (model-based)
// ---------------------------------------------------------------------------

std::size_t next_code_tok(const std::vector<Token>& toks, std::size_t i,
                          std::size_t end) {
  for (++i; i < end; ++i) {
    if (is_code(toks[i])) return i;
  }
  return end;
}

bool tok_is(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}

bool is_unordered_container(const std::string& name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset";
}

bool type_head_is_unordered(const std::string& type_head) {
  const std::size_t cut = type_head.rfind("::");
  const std::string last =
      cut == std::string::npos ? type_head : type_head.substr(cut + 2);
  return is_unordered_container(last);
}

/// Identifiers that mean "this value reaches an ordered artifact": the
/// serializer's byte sinks, table/CSV/JSON emitters, oracle updates,
/// checkpoint writers, stdio. Exact names for the short sink APIs,
/// substrings for the descriptive ones.
bool is_sink_ident(const std::string& id, std::string* which) {
  static const std::set<std::string> kExact = {
      "u8",   "u16",  "u32",  "u64",      "add_row", "printf",
      "fprintf", "cout", "cerr", "emit",  "encode",  "snapshot"};
  if (kExact.count(id) != 0) {
    *which = id;
    return true;
  }
  std::string low;
  low.reserve(id.size());
  for (char c : id) low.push_back(static_cast<char>(
      std::tolower(static_cast<unsigned char>(c))));
  for (const char* sub :
       {"sink", "oracle", "json", "serial", "checkpoint", "golden", "csv"}) {
    if (low.find(sub) != std::string::npos) {
      *which = id;
      return true;
    }
  }
  return false;
}

/// Resolves a `recv(.member)*` chain starting from the enclosing class to
/// the final member's type head ("" when any hop fails to resolve).
std::string chain_type_head(const Model& model, const std::string& cls,
                            const std::vector<std::string>& chain) {
  if (chain.empty()) return "";
  const MemberVar* m = model.resolve_member(cls, chain[0]);
  if (m == nullptr) return "";
  for (std::size_t k = 1; k < chain.size(); ++k) {
    const ClassInfo* c = model.resolve_class(m->type_head);
    if (c == nullptr) return "";
    m = model.resolve_member(c->name, chain[k]);
    if (m == nullptr) return "";
  }
  return m->type_head;
}

/// nondet-iteration-order: range-for over an unordered container (member or
/// in-body local) whose loop body reaches a serialization/ordering sink.
/// The clean pattern — collect keys, std::sort, then emit — never fires,
/// because the loop body itself only fills a vector.
void rule_nondet_iteration(const Model& model, const FunctionInfo& fn,
                           const std::vector<Token>& toks,
                           std::vector<Finding>& out) {
  // Locals of unordered type declared anywhere in this body:
  // `std::unordered_map<K, V> name;` — template arguments skipped by
  // angle-depth ('>>' closes two).
  std::map<std::string, std::string> unordered_locals;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (!is_code(t) || t.kind != Tok::kIdent ||
        !is_unordered_container(t.text)) {
      continue;
    }
    const std::string head = "std::" + t.text;
    std::size_t j = next_code_tok(toks, i, fn.body_end);
    if (j < fn.body_end && tok_is(toks[j], "<")) {
      int angle = 1;
      while (angle > 0 && (j = next_code_tok(toks, j, fn.body_end)) <
                              fn.body_end) {
        if (tok_is(toks[j], "<")) ++angle;
        if (tok_is(toks[j], ">")) --angle;
        if (tok_is(toks[j], ">>")) angle -= 2;
      }
      j = next_code_tok(toks, j, fn.body_end);
    }
    while (j < fn.body_end &&
           (tok_is(toks[j], "&") || tok_is(toks[j], "*") ||
            (toks[j].kind == Tok::kIdent && toks[j].text == "const"))) {
      j = next_code_tok(toks, j, fn.body_end);
    }
    if (j < fn.body_end && toks[j].kind == Tok::kIdent) {
      unordered_locals[toks[j].text] = head;
    }
  }

  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (!is_code(t) || t.kind != Tok::kIdent || t.text != "for") continue;
    std::size_t j = next_code_tok(toks, i, fn.body_end);
    if (j >= fn.body_end || !tok_is(toks[j], "(")) continue;
    // Find the top-level ':' and the closing ')' of the for-head. The lexer
    // makes '::' one token, so a bare ':' is unambiguous.
    int depth = 1;
    std::size_t colon = 0;
    std::size_t close = fn.body_end;
    std::size_t k = j;
    while (depth > 0 &&
           (k = next_code_tok(toks, k, fn.body_end)) < fn.body_end) {
      if (tok_is(toks[k], "(")) ++depth;
      if (tok_is(toks[k], ")")) {
        --depth;
        if (depth == 0) close = k;
      }
      if (depth == 1 && colon == 0 && tok_is(toks[k], ":")) colon = k;
    }
    if (colon == 0 || close >= fn.body_end) continue;
    // Range expression: a plain `recv(.member)*` chain, or a single name.
    std::vector<std::string> chain;
    bool resolvable = true;
    for (std::size_t r = next_code_tok(toks, colon, fn.body_end); r < close;
         r = next_code_tok(toks, r, fn.body_end)) {
      const Token& rt = toks[r];
      if (rt.kind == Tok::kIdent) {
        chain.push_back(rt.text);
      } else if (!tok_is(rt, ".") && !tok_is(rt, "->")) {
        resolvable = false;  // calls, indexing, casts: out of scope
        break;
      }
    }
    if (!resolvable || chain.empty()) continue;
    std::string head;
    std::string container = chain.back();
    if (chain.size() == 1 && unordered_locals.count(chain[0]) != 0) {
      head = unordered_locals[chain[0]];
    } else {
      head = chain_type_head(model, fn.cls, chain);
    }
    if (!type_head_is_unordered(head)) continue;
    // Loop body extent: braced block or single statement.
    std::size_t b = next_code_tok(toks, close, fn.body_end);
    std::size_t body_close = b;
    if (b < fn.body_end && tok_is(toks[b], "{")) {
      int bd = 1;
      while (bd > 0 &&
             (body_close = next_code_tok(toks, body_close, fn.body_end)) <
                 fn.body_end) {
        if (tok_is(toks[body_close], "{")) ++bd;
        if (tok_is(toks[body_close], "}")) --bd;
      }
    } else {
      while (body_close < fn.body_end && !tok_is(toks[body_close], ";")) {
        body_close = next_code_tok(toks, body_close, fn.body_end);
      }
    }
    std::string sink;
    for (std::size_t s = b; s < body_close && s < fn.body_end;
         s = next_code_tok(toks, s, fn.body_end)) {
      if (toks[s].kind == Tok::kIdent && is_sink_ident(toks[s].text, &sink)) {
        break;
      }
    }
    if (sink.empty()) continue;
    out.push_back(Finding{
        fn.file, t.line, "nondet-iteration-order",
        "iteration over unordered container '" + container +
            "' (" + head + ") reaches ordering-sensitive sink '" + sink +
            "' — hash iteration order is implementation-defined, so the "
            "emitted bytes are not replay-stable; collect the keys, "
            "std::sort, then emit (or justify with an af_lint allow)"});
  }
}

/// status-assigned-unchecked: a Status / ReadStatus value stored into a
/// local and never used again before its scope closes. Plain reassignment
/// is not a use; comparison, return, argument passing, member access and
/// (void)-cast all are.
void rule_status_unchecked(const FunctionInfo& fn,
                           const std::vector<Token>& toks,
                           std::vector<Finding>& out) {
  int depth = 0;
  std::vector<std::size_t> code_idx;  // code-token indices in body order
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    if (is_code(toks[i])) code_idx.push_back(i);
  }
  for (std::size_t c = 0; c < code_idx.size(); ++c) {
    const Token& t = toks[code_idx[c]];
    if (tok_is(t, "{")) ++depth;
    if (tok_is(t, "}")) --depth;
    if (t.kind != Tok::kIdent ||
        (t.text != "Status" && t.text != "ReadStatus")) {
      continue;
    }
    if (c > 0) {
      const Token& prev = toks[code_idx[c - 1]];
      // `enum class Status`, `using Status = ...`, member access.
      if (prev.kind == Tok::kIdent &&
          (prev.text == "class" || prev.text == "struct" ||
           prev.text == "enum" || prev.text == "using" ||
           prev.text == "typename")) {
        continue;
      }
      if (tok_is(prev, ".") || tok_is(prev, "->")) continue;
    }
    if (c + 2 >= code_idx.size()) continue;
    const Token& name_tok = toks[code_idx[c + 1]];
    const Token& init_tok = toks[code_idx[c + 2]];
    if (name_tok.kind != Tok::kIdent) continue;
    if (!tok_is(init_tok, "=") && !tok_is(init_tok, "{")) continue;
    const int decl_depth = depth;
    // Scan to the end of the enclosing scope for a use.
    bool used = false;
    int d = decl_depth;
    for (std::size_t u = c + 2; u < code_idx.size(); ++u) {
      const Token& ut = toks[code_idx[u]];
      if (tok_is(ut, "{")) ++d;
      if (tok_is(ut, "}")) {
        --d;
        if (d < decl_depth) break;
      }
      if (ut.kind != Tok::kIdent || ut.text != name_tok.text) continue;
      const Token& pv = toks[code_idx[u - 1]];
      if (tok_is(pv, ".") || tok_is(pv, "->")) continue;  // other object
      if (u + 1 < code_idx.size() && tok_is(toks[code_idx[u + 1]], "=")) {
        continue;  // plain reassignment launders, it does not check
      }
      used = true;
      break;
    }
    if (used) continue;
    out.push_back(Finding{
        fn.file, name_tok.line, "status-assigned-unchecked",
        "Status value '" + name_tok.text +
            "' is assigned but never checked — the local assignment "
            "launders [[nodiscard]] away while kNoSpace/kReadOnly goes "
            "unhandled; compare it, return it, pass it on, or discard "
            "explicitly with (void)"});
  }
}

/// Runs the three semantic rules over a prebuilt model. `tree_mode` demands
/// the lock-order anchor edge (full-tree runs only).
std::vector<Finding> semantic_findings(const Model& model, bool tree_mode) {
  std::vector<Finding> sem;
  const lockorder::Hierarchy hierarchy =
      tree_mode ? lockorder::default_hierarchy()
                : lockorder::default_hierarchy_unanchored();
  for (auto& f : lockorder::check(lockorder::build_graph(model), hierarchy)) {
    if (starts_with(f.file, "src")) sem.push_back(std::move(f));
  }
  for (const FunctionInfo& fn : model.functions()) {
    const std::vector<Token>* toks = model.tokens(fn.file);
    if (toks == nullptr) continue;
    if (starts_with(fn.file, "src/") || starts_with(fn.file, "bench/")) {
      rule_nondet_iteration(model, fn, *toks, sem);
    }
    if (starts_with(fn.file, "src/")) {
      rule_status_unchecked(fn, *toks, sem);
    }
  }
  return sem;
}

FileView make_view(const std::string& path, const Lexed& lx) {
  FileView f;
  f.path = path;
  f.raw = lx.raw_lines;
  f.code = lx.code_lines;
  collect_suppressions(f, lx.tokens);
  return f;
}

void run_line_rules(const FileView& f, std::vector<Finding>& out) {
  rule_pragma_once(f, out);
  rule_nodiscard_status(f, out);
  rule_nodiscard_recovery(f, out);
  rule_check_side_effects(f, out);
  rule_no_raw_thread(f, out);
  rule_no_nondeterminism(f, out);
  rule_deadline_clock(f, out);
  rule_integrity_status(f, out);
  rule_nodiscard_space_status(f, out);
  rule_bench_run_schemes(f, out);
  rule_pipeline_guarded_state(f, out);
}

void append_filtered(const FileView& f, std::vector<Finding>&& sem,
                     std::vector<Finding>& out) {
  for (auto& s : sem) {
    const std::size_t idx =
        s.line > 0 ? static_cast<std::size_t>(s.line - 1) : 0;
    if (!allowed(f, s.rule, idx)) out.push_back(std::move(s));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

std::vector<Finding> lint_content(const std::string& display_path,
                                  const std::string& content) {
  const Lexed lx = lex(content);
  const FileView f = make_view(display_path, lx);
  std::vector<Finding> out;
  run_line_rules(f, out);
  if (starts_with(display_path, "src/") ||
      starts_with(display_path, "bench/")) {
    const Model model =
        Model::build({SourceFile{display_path, content}});
    append_filtered(f, semantic_findings(model, /*tree_mode=*/false), out);
  }
  return out;
}

std::vector<Finding> lint_tree(const std::string& root) {
  std::vector<Finding> out;
  std::map<std::string, FileView> views;
  std::vector<SourceFile> model_files;
  for (const char* dir : {"src", "bench", "tests", "examples", "tools"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string display =
          fs::relative(entry.path(), root).generic_string();
      std::string content = ss.str();
      const Lexed lx = lex(content);
      FileView view = make_view(display, lx);
      run_line_rules(view, out);
      if (starts_with(display, "src/") || starts_with(display, "bench/")) {
        model_files.push_back(SourceFile{display, std::move(content)});
      }
      views.emplace(display, std::move(view));
    }
  }
  // Semantic rules run once over the shared src/+bench/ model, so the
  // lock-order graph spans files; suppressions are honoured per file.
  const Model model = Model::build(model_files);
  for (auto& s : semantic_findings(model, /*tree_mode=*/true)) {
    const auto it = views.find(s.file);
    const std::size_t idx =
        s.line > 0 ? static_cast<std::size_t>(s.line - 1) : 0;
    if (it != views.end() && allowed(it->second, s.rule, idx)) continue;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

// ---------------------------------------------------------------------------
// CI-grade output: SARIF 2.1.0 + diff restriction
// ---------------------------------------------------------------------------

const std::vector<RuleMeta>& rule_catalogue() {
  static const std::vector<RuleMeta> kRules = {
      {"pragma-once", "every header uses #pragma once"},
      {"nodiscard-status",
       "status/result-returning APIs in src headers must be [[nodiscard]]"},
      {"nodiscard-recovery",
       "mount/recovery APIs must be [[nodiscard]] — recovery outcomes cannot "
       "be silently ignored"},
      {"check-side-effects",
       "AF_CHECK / AF_CHECK_MSG conditions must be side-effect free"},
      {"no-raw-thread",
       "raw thread primitives only inside src/common (ThreadPool owns all "
       "threads)"},
      {"no-nondeterminism",
       "nondeterministic sources only inside src/common (replays must be "
       "bit-identical)"},
      {"integrity-status",
       "flash_read results carry the data-integrity verdict and must not be "
       "discarded"},
      {"nodiscard-space-status",
       "capacity/throttle API results (admission, stall, tombstone seq) must "
       "not be discarded"},
      {"bench-run-schemes",
       "multi-scheme benches go through bench::run_schemes, not hand-rolled "
       "replay loops"},
      {"pipeline-guarded-state",
       "shared members in mutex-bearing ssd/sim headers need AF_GUARDED_BY / "
       "std::atomic or a justified allow"},
      {"lock-order",
       "the cross-file lock acquisition graph must stay acyclic and respect "
       "the pipeline-mutex -> range-lock-shard hierarchy"},
      {"nondet-iteration-order",
       "unordered-container iteration must not feed serialization/ordering "
       "sinks — collect and sort first"},
      {"status-assigned-unchecked",
       "Status locals must be checked, propagated, or explicitly discarded"},
      {"deadline-clock",
       "deadline/simulated-time code in src/ssd + src/sim must not touch "
       "host clocks or sleeps — deadlines are SimTime arithmetic"},
  };
  return kRules;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  const auto& rules = rule_catalogue();
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) rule_index[rules[i].id] = i;

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"af_lint\",\n"
     << "          \"semanticVersion\": \"2.0.0\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "            {\n"
       << "              \"id\": \"" << json_escape(rules[i].id) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << json_escape(rules[i].summary) << "\" },\n"
       << "              \"defaultConfiguration\": { \"level\": \"error\" }\n"
       << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n";
    if (const auto it = rule_index.find(f.rule); it != rule_index.end()) {
      os << "          \"ruleIndex\": " << it->second << ",\n";
    }
    os << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << json_escape(f.message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(f.file) << "\", \"uriBaseId\": \"SRCROOT\" },\n"
       << "                \"region\": { \"startLine\": "
       << (f.line > 0 ? f.line : 1) << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

bool ChangedLines::covers(const std::string& file, int line) const {
  const auto it = ranges.find(file);
  if (it == ranges.end()) return false;
  for (const auto& [first, last] : it->second) {
    if (line >= first && line <= last) return true;
  }
  return false;
}

ChangedLines parse_unified_diff(const std::string& diff_text) {
  ChangedLines out;
  std::istringstream in(diff_text);
  std::string line;
  std::string current;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.rfind("+++ ", 0) == 0) {
      std::string path = line.substr(4);
      // Strip git's tab-separated metadata and the b/ prefix.
      if (const auto tab = path.find('\t'); tab != std::string::npos) {
        path = path.substr(0, tab);
      }
      if (path == "/dev/null") {
        current.clear();
      } else if (path.rfind("b/", 0) == 0) {
        current = path.substr(2);
      } else {
        current = path;
      }
      continue;
    }
    if (current.empty() || line.rfind("@@", 0) != 0) continue;
    // "@@ -a,b +c,d @@" — the added range is c..c+d-1 (d defaults to 1;
    // d == 0 is a pure deletion and contributes nothing).
    const std::size_t plus = line.find('+');
    if (plus == std::string::npos) continue;
    int start = 0;
    int count = 1;
    std::size_t i = plus + 1;
    while (i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i]))) {
      start = start * 10 + (line[i] - '0');
      ++i;
    }
    if (i < line.size() && line[i] == ',') {
      ++i;
      count = 0;
      while (i < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[i]))) {
        count = count * 10 + (line[i] - '0');
        ++i;
      }
    }
    if (count > 0) {
      out.ranges[current].push_back({start, start + count - 1});
    }
  }
  for (auto& [path, ranges] : out.ranges) {
    std::sort(ranges.begin(), ranges.end());
  }
  return out;
}

std::vector<Finding> restrict_to_changed(std::vector<Finding> findings,
                                         const ChangedLines& changed) {
  std::vector<Finding> out;
  for (auto& f : findings) {
    if (changed.covers(f.file, f.line)) out.push_back(std::move(f));
  }
  return out;
}

}  // namespace af::lint

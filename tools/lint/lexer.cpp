#include "lexer.h"

#include <cctype>

namespace af::lint {
namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-char operators, longest first so "<<=" wins over "<<" wins over "<".
constexpr const char* kOperators[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  ".*",
};

/// Literal encoding prefixes; an identifier equal to one of these directly
/// followed by a quote is part of the literal, not a name.
[[nodiscard]] bool is_literal_prefix(const std::string& id) {
  return id == "u8" || id == "u" || id == "U" || id == "L" || id == "R" ||
         id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src), blank_(src) {}

  Lexed run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        at_line_start_ = true;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_preprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '"') {
        lex_string(pos_);
        continue;
      }
      if (c == '\'') {
        lex_char(pos_);
        continue;
      }
      if (ident_start(c)) {
        lex_ident_or_prefixed_literal();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    return finish();
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(Tok kind, std::size_t begin, std::size_t end, int start_line) {
    Token t;
    t.kind = kind;
    t.text = src_.substr(begin, end - begin);
    t.line = start_line;
    t.end_line = line_;
    out_.tokens.push_back(std::move(t));
  }

  /// Blanks [begin, end) in the code view, preserving newlines so the code
  /// lines stay byte-aligned with the raw lines.
  void blank(std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (blank_[i] != '\n') blank_[i] = ' ';
    }
  }

  void advance_over(std::size_t end) {
    for (; pos_ < end; ++pos_) {
      if (src_[pos_] == '\n') ++line_;
    }
  }

  void lex_line_comment() {
    const std::size_t begin = pos_;
    const int start = line_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    emit(Tok::kComment, begin, pos_, start);
    blank(begin, pos_);
  }

  void lex_block_comment() {
    const std::size_t begin = pos_;
    const int start = line_;
    pos_ += 2;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) pos_ += 2;  // closing */
    emit(Tok::kComment, begin, pos_, start);
    blank(begin, pos_);
  }

  /// `token_begin` may precede pos_ when an encoding prefix was consumed.
  void lex_string(std::size_t token_begin) {
    const int start = line_;
    const std::size_t body = pos_;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        ++pos_;
        if (src_[pos_] == '\n') ++line_;  // line-continued literal
      }
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    emit(Tok::kString, token_begin, pos_, start);
    blank(body, pos_);
  }

  void lex_raw_string(std::size_t token_begin) {
    // R"delim( ... )delim" — pos_ sits on the opening quote.
    const int start = line_;
    const std::size_t body = pos_;
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != '\n' &&
           delim.size() < 16) {
      delim.push_back(src_[pos_++]);
    }
    if (pos_ < src_.size() && src_[pos_] == '(') ++pos_;
    const std::string close = ")" + delim + "\"";
    const std::size_t found = src_.find(close, pos_);
    std::size_t end =
        found == std::string::npos ? src_.size() : found + close.size();
    advance_over(end);
    emit(Tok::kRawString, token_begin, pos_, start);
    blank(body, pos_);
  }

  void lex_char(std::size_t token_begin) {
    const int start = line_;
    const std::size_t body = pos_;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '\'' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    emit(Tok::kChar, token_begin, pos_, start);
    blank(body, pos_);
  }

  void lex_ident_or_prefixed_literal() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    const std::string id = src_.substr(begin, pos_ - begin);
    if (pos_ < src_.size() && is_literal_prefix(id)) {
      if (src_[pos_] == '"') {
        if (id.back() == 'R') {
          lex_raw_string(begin);
        } else {
          lex_string(begin);
        }
        return;
      }
      if (src_[pos_] == '\'' && id != "R" && id.back() != 'R') {
        lex_char(begin);
        return;
      }
    }
    emit(Tok::kIdent, begin, pos_, line_);
  }

  void lex_number() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.') {
        // Exponent signs: 1e+5, 0x1p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (peek(1) == '+' || peek(1) == '-')) {
          pos_ += 2;
          continue;
        }
        ++pos_;
        continue;
      }
      // Digit separator 1'000'000 — a quote flanked by digits is part of the
      // number, not a character literal.
      if (c == '\'' && pos_ > begin &&
          std::isalnum(static_cast<unsigned char>(peek(1)))) {
        pos_ += 2;
        continue;
      }
      break;
    }
    emit(Tok::kNumber, begin, pos_, line_);
  }

  void lex_punct() {
    for (const char* op : kOperators) {
      const std::size_t n = std::char_traits<char>::length(op);
      if (src_.compare(pos_, n, op) == 0) {
        emit(Tok::kPunct, pos_, pos_ + n, line_);
        pos_ += n;
        return;
      }
    }
    emit(Tok::kPunct, pos_, pos_ + 1, line_);
    ++pos_;
  }

  void lex_preprocessor() {
    // One directive: through end-of-line, following backslash continuations.
    // Comments inside are blanked (and emitted as comment tokens so
    // suppressions work on directive lines); string literal bodies are
    // blanked but stay inside the directive token.
    const std::size_t begin = pos_;
    const int start = line_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        // Continuation if the last non-ws char before the newline is '\'.
        std::size_t back = pos_;
        while (back > begin &&
               (src_[back - 1] == ' ' || src_[back - 1] == '\t' ||
                src_[back - 1] == '\r')) {
          --back;
        }
        if (back > begin && src_[back - 1] == '\\') {
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      if (c == '/' && peek(1) == '/') {
        const std::size_t cbegin = pos_;
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        emit(Tok::kComment, cbegin, pos_, line_);
        blank(cbegin, pos_);
        break;
      }
      if (c == '/' && peek(1) == '*') {
        const std::size_t cbegin = pos_;
        const int cstart = line_;
        pos_ += 2;
        while (pos_ < src_.size() && !(src_[pos_] == '*' && peek(1) == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ < src_.size()) pos_ += 2;
        emit(Tok::kComment, cbegin, pos_, cstart);
        blank(cbegin, pos_);
        continue;
      }
      if (c == '"') {
        const std::size_t sbegin = pos_;
        ++pos_;
        while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
          if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
          ++pos_;
        }
        if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
        blank(sbegin, pos_);
        continue;
      }
      ++pos_;
    }
    emit(Tok::kPreprocessor, begin, pos_, start);
    at_line_start_ = false;
  }

  Lexed finish() {
    // Split raw and blanked text into aligned line vectors.
    auto split = [](const std::string& s) {
      std::vector<std::string> lines;
      std::string cur;
      for (char c : s) {
        if (c == '\n') {
          lines.push_back(cur);
          cur.clear();
        } else if (c != '\r') {
          cur.push_back(c);
        }
      }
      if (!cur.empty()) lines.push_back(cur);
      return lines;
    };
    out_.raw_lines = split(src_);
    out_.code_lines = split(blank_);
    return std::move(out_);
  }

  const std::string& src_;
  std::string blank_;  // src_ with comments/literal bodies spaced out
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  Lexed out_;
};

}  // namespace

Lexed lex(const std::string& content) { return Lexer(content).run(); }

}  // namespace af::lint

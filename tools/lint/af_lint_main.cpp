// af_lint CLI.
//
//   af_lint [repo-root] [--sarif <path>] [--diff <base-ref> | --diff-patch <file>]
//
// Scans src/, bench/, tests/, examples/ and tools/ for project-convention
// violations (see lint.h for the rule catalogue) and exits non-zero on any
// finding. --sarif writes a SARIF 2.1.0 log (always, findings or not) for
// CI upload; --diff restricts findings to the lines `git diff
// --unified=0 <base-ref>` reports as added/modified, which is the PR lint
// mode — the full-tree run on the main branch still sees everything.
// --diff-patch reads an already-generated unified diff from a file instead
// of invoking git (used by the diff-mode ctest). Wired into ctest as
// `af_lint_tree` so every build job enforces it.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [repo-root] [--sarif <path>] "
               "[--diff <base-ref> | --diff-patch <file>]\n",
               argv0);
  return 2;
}

/// `git diff --unified=0` against `base_ref`, restricted to the linted
/// directories. Returns false when git cannot be run.
bool git_diff(const std::string& root, const std::string& base_ref,
              std::string* out) {
  const std::string cmd = "git -C '" + root +
                          "' diff --unified=0 --no-color '" + base_ref +
                          "' -- src bench tests examples tools 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) out->append(buf, n);
  return pclose(pipe) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string sarif_path;
  std::string diff_ref;
  std::string diff_patch;
  bool root_seen = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--diff" && i + 1 < argc) {
      diff_ref = argv[++i];
    } else if (arg == "--diff-patch" && i + 1 < argc) {
      diff_patch = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (!root_seen) {
      root = arg;
      root_seen = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!diff_ref.empty() && !diff_patch.empty()) return usage(argv[0]);

  auto findings = af::lint::lint_tree(root);

  if (!diff_ref.empty() || !diff_patch.empty()) {
    std::string diff_text;
    if (!diff_patch.empty()) {
      std::ifstream in(diff_patch, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "af_lint: cannot read diff patch '%s'\n",
                     diff_patch.c_str());
        return 2;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      diff_text = ss.str();
    } else if (!git_diff(root, diff_ref, &diff_text)) {
      std::fprintf(stderr, "af_lint: git diff against '%s' failed\n",
                   diff_ref.c_str());
      return 2;
    }
    const auto changed = af::lint::parse_unified_diff(diff_text);
    const std::size_t total = findings.size();
    findings = af::lint::restrict_to_changed(std::move(findings), changed);
    std::fprintf(stderr, "af_lint: diff mode, %zu of %zu finding(s) on "
                         "changed lines\n",
                 findings.size(), total);
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "af_lint: cannot write SARIF to '%s'\n",
                   sarif_path.c_str());
      return 2;
    }
    out << af::lint::to_sarif(findings);
  }

  for (const auto& f : findings) {
    std::fprintf(stderr, "%s\n", af::lint::format(f).c_str());
  }
  if (findings.empty()) {
    std::printf("af_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "af_lint: %zu finding(s)\n", findings.size());
  return 1;
}

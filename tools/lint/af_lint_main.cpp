// af_lint CLI: `af_lint [repo-root]`. Scans src/, bench/, tests/, examples/
// and tools/ for project-convention violations (see lint.h for the rule
// catalogue) and exits non-zero on any finding. Wired into ctest as
// `af_lint_tree` so every build job enforces it.
#include <cstdio>

#include "lint.h"

int main(int argc, char** argv) {
  const char* root = argc > 1 ? argv[1] : ".";
  const auto findings = af::lint::lint_tree(root);
  for (const auto& f : findings) {
    std::fprintf(stderr, "%s\n", af::lint::format(f).c_str());
  }
  if (findings.empty()) {
    std::printf("af_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "af_lint: %zu finding(s)\n", findings.size());
  return 1;
}

// af_lint — project-specific static checks the compiler can't express.
//
// The linter is deliberately textual: it runs in milliseconds over the whole
// tree, needs no compile database, and checks *project conventions* rather
// than C++ semantics (clang-tidy and -Wthread-safety cover those). Rules:
//
//   pragma-once        every header uses #pragma once
//   nodiscard-status   status/bool-returning FTL/flash APIs in src headers
//                      are [[nodiscard]] (a dropped program() status or
//                      completion time is a silent correctness bug)
//   check-side-effects AF_CHECK/AF_CHECK_MSG conditions must be pure —
//                      checks are always-on, but a reader must be able to
//                      delete one without changing behaviour
//   no-raw-thread      std::thread/std::jthread/std::async only inside
//                      src/common (the ThreadPool owns all threads)
//   no-nondeterminism  std::rand/random_device/wall clocks only inside
//                      src/common (the simulator must replay bit-identically)
//   bench-run-schemes  bench binaries replaying several schemes go through
//                      bench::run_schemes, never a hand-rolled
//                      trace::replay loop (keeps fan-out + determinism
//                      checks in one place)
//   nodiscard-space-status
//                      statement-position calls of the capacity subsystem's
//                      unmap/throttle APIs (admit_write, throttle_delay,
//                      trim, note_trim) in src/ discard the admission
//                      verdict / stall / completion / tombstone seq — the
//                      caller must consume it or (void)-discard explicitly
//   pipeline-guarded-state
//                      src/ssd + src/sim headers that declare a Mutex member
//                      are shared between pipeline threads: every mutable
//                      trailing-underscore data member must carry
//                      AF_GUARDED_BY / AF_PT_GUARDED_BY / std::atomic, be an
//                      internally-synchronized type, or justify its thread
//                      confinement with an allow comment
//
// Suppressions (each needs a justification in the same comment):
//   // af_lint: allow(rule)        this line or the next line
//   // af_lint: allow-file(rule)   whole file
#pragma once

#include <string>
#include <vector>

namespace af::lint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Lints one file's `content` as if it lived at `display_path` (a
/// repo-relative path like "src/nand/flash_array.h" — several rules key off
/// the directory). Exposed separately from lint_tree so tests can feed
/// synthetic snippets under any pseudo-path.
[[nodiscard]] std::vector<Finding> lint_content(const std::string& display_path,
                                                const std::string& content);

/// Lints every *.h / *.cpp under root/{src,bench,tests,examples,tools}.
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root);

/// "file:line: [rule] message" — the clickable compiler-style form.
[[nodiscard]] std::string format(const Finding& f);

}  // namespace af::lint

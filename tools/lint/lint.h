// af_lint — project-specific static checks the compiler can't express.
//
// v2 is built on a real C++ token stream (lexer.h) and a small cross-file
// semantic model (model.h): comments, raw strings and preprocessor
// directives are lexed properly, suppressions are collected from comment
// tokens only, and three semantic rules (lock-order, nondet-iteration-order,
// status-assigned-unchecked) walk the model. The declaration-shaped rules
// below still pattern-match line-wise — against the lexer's blanked code
// view, so a rule token inside a raw string can no longer fire and a
// multi-line literal can no longer leak into "code". Rules:
//
//   pragma-once        every header uses #pragma once
//   nodiscard-status   status/bool-returning FTL/flash APIs in src headers
//                      are [[nodiscard]] (a dropped program() status or
//                      completion time is a silent correctness bug)
//   check-side-effects AF_CHECK/AF_CHECK_MSG conditions must be pure —
//                      checks are always-on, but a reader must be able to
//                      delete one without changing behaviour
//   no-raw-thread      std::thread/std::jthread/std::async only inside
//                      src/common (the ThreadPool owns all threads)
//   no-nondeterminism  std::rand/random_device/wall clocks only inside
//                      src/common (the simulator must replay bit-identically)
//   bench-run-schemes  bench binaries replaying several schemes go through
//                      bench::run_schemes, never a hand-rolled
//                      trace::replay loop (keeps fan-out + determinism
//                      checks in one place)
//   nodiscard-space-status
//                      statement-position calls of the capacity subsystem's
//                      unmap/throttle APIs (admit_write, throttle_delay,
//                      trim, note_trim) in src/ discard the admission
//                      verdict / stall / completion / tombstone seq — the
//                      caller must consume it or (void)-discard explicitly
//   pipeline-guarded-state
//                      src/ssd + src/sim headers that declare a Mutex member
//                      are shared between pipeline threads: every mutable
//                      trailing-underscore data member must carry
//                      AF_GUARDED_BY / AF_PT_GUARDED_BY / std::atomic, be an
//                      internally-synchronized type, or justify its thread
//                      confinement with an allow comment
//   lock-order         the cross-file lock-acquisition graph (lockorder.h)
//                      must stay acyclic and respect the documented
//                      pipeline-mutex -> range-lock-shard order; the
//                      full-tree run also demands the documented edge still
//                      resolves, so the analysis cannot silently go vacuous
//   nondet-iteration-order
//                      range-for over an unordered_map/unordered_set member
//                      whose loop body reaches a serialization / table /
//                      oracle sink — iteration order is hash-seed dependent,
//                      so anything it feeds into a byte stream breaks the
//                      replay-bit-identical contract; collect-then-sort
//                      first, or justify with an allow comment
//   status-assigned-unchecked
//                      a Status / ReadStatus value stored into a local and
//                      then never compared, returned, passed on or
//                      (void)-discarded — the assignment launders the
//                      [[nodiscard]] away, and an unchecked kNoSpace /
//                      kReadOnly is a silently ignored admission verdict
//   deadline-clock     host-clock primitives (std::chrono, sleep_for/until,
//                      clock_gettime, nanosleep, timespec) inside src/ssd +
//                      src/sim — deadline arming, hedge thresholds and
//                      suspend decisions are SimTime arithmetic on the
//                      DeadlineLedger; wall time there breaks bit-identical
//                      replay (stricter than no-nondeterminism: even chrono
//                      durations and sleeps are out)
//
// Suppressions (each needs a justification in the same comment; markers are
// recognized in comments only — never inside string literals):
//   // af_lint: allow(rule)        this line or the next line
//   // af_lint: allow-file(rule)   whole file
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace af::lint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Lints one file's `content` as if it lived at `display_path` (a
/// repo-relative path like "src/nand/flash_array.h" — several rules key off
/// the directory). Exposed separately from lint_tree so tests can feed
/// synthetic snippets under any pseudo-path. Semantic rules run against a
/// single-file model here (cross-file resolution and the lock-order anchor
/// are only demanded of lint_tree).
[[nodiscard]] std::vector<Finding> lint_content(const std::string& display_path,
                                                const std::string& content);

/// Lints every *.h / *.cpp under root/{src,bench,tests,examples,tools}.
/// Line rules run per file; the semantic rules run once against a shared
/// model of src/ + bench/, so the lock-order graph spans files.
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root);

/// "file:line: [rule] message" — the clickable compiler-style form.
[[nodiscard]] std::string format(const Finding& f);

// ---------------------------------------------------------------------------
// CI-grade output
// ---------------------------------------------------------------------------

struct RuleMeta {
  std::string id;
  std::string summary;
};

/// Every rule af_lint can emit, in stable order — the SARIF rule table.
[[nodiscard]] const std::vector<RuleMeta>& rule_catalogue();

/// Serializes findings as a SARIF 2.1.0 log (one run, tool "af_lint", all
/// rules in the driver's rule table, results at level "error"). Paths are
/// emitted repo-relative with uriBaseId SRCROOT.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

/// The added/modified line set of a unified diff, per repo-relative path.
struct ChangedLines {
  /// path -> sorted [first, last] 1-based inclusive line ranges.
  std::map<std::string, std::vector<std::pair<int, int>>> ranges;

  [[nodiscard]] bool covers(const std::string& file, int line) const;
  [[nodiscard]] bool empty() const { return ranges.empty(); }
};

/// Parses `git diff --unified=0` output: "+++ b/<path>" headers and
/// "@@ -a,b +c,d @@" hunks; deleted-only hunks (d == 0) contribute nothing.
[[nodiscard]] ChangedLines parse_unified_diff(const std::string& diff_text);

/// Keeps only findings on changed lines — the PR-diff lint mode. Full-tree
/// runs on the main branch still see everything, so cross-file effects a
/// diff can't attribute to a changed line are caught there.
[[nodiscard]] std::vector<Finding> restrict_to_changed(
    std::vector<Finding> findings, const ChangedLines& changed);

}  // namespace af::lint

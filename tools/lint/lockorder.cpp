#include "lockorder.h"

#include <algorithm>
#include <map>
#include <set>

namespace af::lint::lockorder {
namespace {

[[nodiscard]] bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}

[[nodiscard]] std::string last_component(const std::string& qualified) {
  const std::size_t cut = qualified.rfind("::");
  return cut == std::string::npos ? qualified : qualified.substr(cut + 2);
}

[[nodiscard]] bool is_mutex_type(const std::string& type_head) {
  return last_component(type_head) == "Mutex";
}

[[nodiscard]] bool is_raii_lock_type(const std::string& name) {
  return name == "MutexLock" || name == "UniqueLock";
}

struct CallSite {
  std::size_t callee = 0;  // index into Model::functions()
  std::set<std::string> held;
  int line = 0;
};

struct FnSummary {
  std::set<std::string> direct;  // mutex ids acquired in this body
  std::set<std::string> total;   // closed over callees
  std::vector<CallSite> calls;
};

struct RawEdge {
  std::string from, to, file, via;
  int line = 0;
};

/// Walks one function body tracking held locks, direct acquisitions and
/// resolved call sites.
class BodyWalker {
 public:
  BodyWalker(const Model& model, const FunctionInfo& fn,
             const std::vector<Token>& toks,
             const std::map<std::string, std::string>& mutex_of_member,
             std::vector<RawEdge>& edges, FnSummary& summary)
      : model_(model), fn_(fn), toks_(toks),
        mutex_of_member_(mutex_of_member), edges_(edges), summary_(summary) {}

  void run() {
    // AF_REQUIRES capabilities are held at entry.
    for (const auto& cap : fn_.requires_caps) {
      if (const std::string id = resolve_mutex_name(cap); !id.empty()) {
        held_.push_back(Held{"", id, 0});
      }
    }
    int depth = 0;
    std::size_t i = fn_.body_begin;
    while (i < fn_.body_end) {
      const Token& t = toks_[i];
      if (!is_code(t)) {
        ++i;
        continue;
      }
      if (is_punct(t, "{")) {
        ++depth;
        ++i;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        while (!held_.empty() && held_.back().depth > depth) held_.pop_back();
        ++i;
        continue;
      }
      if (t.kind == Tok::kIdent) {
        i = handle_ident(i, depth);
        continue;
      }
      ++i;
    }
  }

 private:
  struct Held {
    std::string var;  // RAII variable name, "" for AF_REQUIRES / bare .lock()
    std::string mutex;
    int depth = 0;
  };
  struct Local {
    std::string name;
    std::string cls;  // resolved qualified class name
  };

  [[nodiscard]] std::size_t next_code(std::size_t i) const {
    for (++i; i < fn_.body_end; ++i) {
      if (is_code(toks_[i])) return i;
    }
    return fn_.body_end;
  }

  /// Resolves a member-name-style capability ("mu_", "order_mu_") against
  /// the enclosing class chain. Returns the qualified mutex id or "".
  [[nodiscard]] std::string resolve_mutex_name(const std::string& name) const {
    const auto it = mutex_of_member_.find(fn_.cls + "::" + name);
    if (it != mutex_of_member_.end()) return it->second;
    // Enclosing classes (an inner class naming an outer mutex).
    std::string probe = fn_.cls;
    while (true) {
      const std::size_t cut = probe.rfind("::");
      if (cut == std::string::npos) break;
      probe = probe.substr(0, cut);
      const auto it2 = mutex_of_member_.find(probe + "::" + name);
      if (it2 != mutex_of_member_.end()) return it2->second;
    }
    return "";
  }

  /// Resolves a dotted chain of identifiers (receiver tokens of a lock
  /// expression) to a mutex id: `mu_`, `s.mu`, `shard.inner.mu`.
  [[nodiscard]] std::string resolve_mutex_expr(
      const std::vector<std::string>& chain) const {
    if (chain.empty()) return "";
    if (chain.size() == 1) return resolve_mutex_name(chain[0]);
    // First element: local of known class type, or member object.
    std::string cls = class_of_name(chain[0]);
    for (std::size_t k = 1; k < chain.size() && !cls.empty(); ++k) {
      const MemberVar* m = model_.resolve_member(cls, chain[k]);
      if (m == nullptr) return "";
      if (k + 1 == chain.size()) {
        return is_mutex_type(m->type_head) ? cls + "::" + chain[k] : "";
      }
      const ClassInfo* next = model_.resolve_class(m->type_head);
      cls = next == nullptr ? "" : next->name;
    }
    return "";
  }

  /// Class of a name in scope: tracked local first, then member object of
  /// the enclosing class.
  [[nodiscard]] std::string class_of_name(const std::string& name) const {
    for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
      if (it->name == name) return it->cls;
    }
    if (const MemberVar* m = model_.resolve_member(fn_.cls, name)) {
      const ClassInfo* c = model_.resolve_class(m->type_head);
      if (c != nullptr) return c->name;
    }
    return "";
  }

  void acquire(const std::string& var, const std::string& mutex, int depth,
               int line) {
    for (const Held& h : held_) {
      edges_.push_back(RawEdge{h.mutex, mutex, fn_.file,
                               fn_.cls.empty() ? fn_.name
                                               : fn_.cls + "::" + fn_.name,
                               line});
    }
    summary_.direct.insert(mutex);
    held_.push_back(Held{var, mutex, depth});
  }

  /// Handles the identifier at index i; returns the index to continue from.
  std::size_t handle_ident(std::size_t i, int depth) {
    const Token& t = toks_[i];

    // RAII lock declaration: MutexLock name(expr); / UniqueLock name(expr);
    if (is_raii_lock_type(t.text)) {
      const std::size_t n1 = next_code(i);
      if (n1 < fn_.body_end && toks_[n1].kind == Tok::kIdent) {
        const std::size_t n2 = next_code(n1);
        if (n2 < fn_.body_end && is_punct(toks_[n2], "(")) {
          std::vector<std::string> chain;
          std::size_t j = next_code(n2);
          while (j < fn_.body_end && !is_punct(toks_[j], ")")) {
            if (toks_[j].kind == Tok::kIdent) chain.push_back(toks_[j].text);
            j = next_code(j);
          }
          const std::string id = resolve_mutex_expr(chain);
          if (!id.empty()) acquire(toks_[n1].text, id, depth, t.line);
          return next_code(j);
        }
      }
      return next_code(i);
    }

    // Local declaration of a known class: [const] Cls[&*] name [=({;]
    if (const std::size_t after = try_local_decl(i); after != i) return after;

    // Dotted chain: recv(.recv)*.method( — collect it whole.
    std::vector<std::string> chain;
    chain.push_back(t.text);
    std::size_t j = next_code(i);
    while (j < fn_.body_end &&
           (is_punct(toks_[j], ".") || is_punct(toks_[j], "->"))) {
      const std::size_t n = next_code(j);
      if (n >= fn_.body_end || toks_[n].kind != Tok::kIdent) break;
      chain.push_back(toks_[n].text);
      j = next_code(n);
    }
    const bool is_call = j < fn_.body_end && is_punct(toks_[j], "(");
    if (!is_call) return next_code(i);
    const std::string& callee_name = chain.back();

    if (chain.size() >= 2 &&
        (callee_name == "lock" || callee_name == "unlock")) {
      handle_explicit_lock(chain, depth, t.line);
      return next_code(j);
    }
    record_call(chain, t.line);
    return next_code(j);
  }

  /// `var.lock()` / `var.unlock()` — either an RAII lock variable being
  /// toggled (condition-variable style) or a mutex member locked directly.
  void handle_explicit_lock(const std::vector<std::string>& chain, int depth,
                            int line) {
    const bool locking = chain.back() == "lock";
    const std::vector<std::string> recv(chain.begin(), chain.end() - 1);
    // RAII variable toggle: `lock.unlock(); verify(); lock.lock();` — the
    // released variable's mutex is remembered so the re-lock re-acquires it.
    if (recv.size() == 1) {
      for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
        if (it->var == recv[0]) {
          if (!locking) {
            released_[recv[0]] = it->mutex;
            held_.erase(std::next(it).base());
          }
          return;
        }
      }
    }
    if (locking) {
      const auto rel = released_.find(recv.size() == 1 ? recv[0] : "");
      if (rel != released_.end()) {
        acquire(rel->first, rel->second, depth, line);
        released_.erase(rel);
        return;
      }
      const std::string id = resolve_mutex_expr(recv);
      if (!id.empty()) acquire("", id, depth, line);
      return;
    }
    // Unlocking: drop a direct .lock() hold or remember an RAII release.
    const std::string id = resolve_mutex_expr(recv);
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      if ((recv.size() == 1 && it->var == recv[0]) ||
          (!id.empty() && it->mutex == id && it->var.empty())) {
        if (recv.size() == 1) released_[recv[0]] = it->mutex;
        held_.erase(std::next(it).base());
        return;
      }
    }
  }

  [[nodiscard]] std::size_t try_local_decl(std::size_t i) {
    // [Q::]*Cls [&*]* name [=({;]  — records name -> class when Cls resolves.
    std::vector<std::string> qual;
    std::size_t j = i;
    while (j < fn_.body_end && toks_[j].kind == Tok::kIdent) {
      qual.push_back(toks_[j].text);
      const std::size_t n = next_code(j);
      if (n < fn_.body_end && is_punct(toks_[n], "::")) {
        j = next_code(n);
        continue;
      }
      j = n;
      break;
    }
    if (qual.empty()) return i;
    std::string type;
    for (const auto& q : qual) type += (type.empty() ? "" : "::") + q;
    const ClassInfo* cls = model_.resolve_class(type);
    if (cls == nullptr) return i;
    while (j < fn_.body_end &&
           (is_punct(toks_[j], "&") || is_punct(toks_[j], "*") ||
            (toks_[j].kind == Tok::kIdent && toks_[j].text == "const"))) {
      j = next_code(j);
    }
    if (j >= fn_.body_end || toks_[j].kind != Tok::kIdent) return i;
    const std::size_t after_name = next_code(j);
    if (after_name >= fn_.body_end) return i;
    if (is_punct(toks_[after_name], "=") || is_punct(toks_[after_name], "(") ||
        is_punct(toks_[after_name], "{") || is_punct(toks_[after_name], ";")) {
      locals_.push_back(Local{toks_[j].text, cls->name});
      return after_name;
    }
    return i;
  }

  void record_call(const std::vector<std::string>& chain, int line) {
    static const std::set<std::string> kKeywords = {
        "if",     "for",    "while",  "switch",   "return", "sizeof",
        "catch",  "throw",  "new",    "delete",   "static_cast",
        "assert", "co_await"};
    const std::string& name = chain.back();
    if (kKeywords.count(name) != 0) return;
    const FunctionInfo* callee = nullptr;
    if (chain.size() == 1) {
      // Same-class method or free function in the model.
      callee = model_.resolve_function(fn_.cls, name);
      if (callee == nullptr && !fn_.cls.empty()) {
        callee = model_.resolve_function("", name);
      }
    } else {
      const std::vector<std::string> recv(chain.begin(), chain.end() - 1);
      std::string cls = class_of_name(recv[0]);
      for (std::size_t k = 1; k < recv.size() && !cls.empty(); ++k) {
        const MemberVar* m = model_.resolve_member(cls, recv[k]);
        const ClassInfo* c =
            m == nullptr ? nullptr : model_.resolve_class(m->type_head);
        cls = c == nullptr ? "" : c->name;
      }
      if (!cls.empty()) callee = model_.resolve_function(cls, name);
    }
    if (callee == nullptr) return;
    CallSite site;
    site.callee = static_cast<std::size_t>(callee - model_.functions().data());
    for (const Held& h : held_) site.held.insert(h.mutex);
    site.line = line;
    summary_.calls.push_back(std::move(site));
  }

  const Model& model_;
  const FunctionInfo& fn_;
  const std::vector<Token>& toks_;
  const std::map<std::string, std::string>& mutex_of_member_;
  std::vector<RawEdge>& edges_;
  FnSummary& summary_;
  std::vector<Held> held_;
  std::vector<Local> locals_;
  std::map<std::string, std::string> released_;  // RAII var -> mutex
};

[[nodiscard]] int level_of(const Hierarchy& h, const std::string& mutex_id) {
  for (std::size_t lvl = 0; lvl < h.levels.size(); ++lvl) {
    for (const auto& name : h.levels[lvl]) {
      if (qualified_suffix_match(mutex_id, name)) {
        return static_cast<int>(lvl);
      }
    }
  }
  return -1;
}

}  // namespace

bool Graph::has_edge(const std::string& from_suffix,
                     const std::string& to_suffix) const {
  return std::any_of(edges.begin(), edges.end(), [&](const Edge& e) {
    return qualified_suffix_match(e.from, from_suffix) &&
           qualified_suffix_match(e.to, to_suffix);
  });
}

Hierarchy default_hierarchy() {
  Hierarchy h = default_hierarchy_unanchored();
  h.required_edges = {{"SsdPipeline::mu_", "RangeLockTable::Shard::mu"}};
  return h;
}

Hierarchy default_hierarchy_unanchored() {
  Hierarchy h;
  h.levels = {
      {"SsdPipeline::mu_"},
      {"RangeLockTable::order_mu_", "RangeLockTable::Shard::mu"},
  };
  return h;
}

Graph build_graph(const Model& model) {
  Graph g;
  // Mutex ids + the member-name lookup the body walker resolves against.
  std::map<std::string, std::string> mutex_of_member;
  for (const ClassInfo& c : model.classes()) {
    for (const MemberVar& m : c.members) {
      if (!is_mutex_type(m.type_head)) continue;
      const std::string id = c.name + "::" + m.name;
      g.mutexes.push_back(MutexDecl{id, c.file, m.line});
      mutex_of_member[id] = id;
    }
  }

  const auto& fns = model.functions();
  std::vector<FnSummary> summaries(fns.size());
  std::vector<RawEdge> raw;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const std::vector<Token>* toks = model.tokens(fns[i].file);
    if (toks == nullptr) continue;
    BodyWalker(model, fns[i], *toks, mutex_of_member, raw, summaries[i])
        .run();
  }

  // Close call summaries: total = direct U callees' totals (fixpoint).
  for (auto& s : summaries) s.total = s.direct;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& s : summaries) {
      for (const CallSite& call : s.calls) {
        for (const auto& m : summaries[call.callee].total) {
          if (s.total.insert(m).second) changed = true;
        }
      }
    }
  }

  // Call edges: held H calling a function that transitively acquires a.
  for (std::size_t i = 0; i < fns.size(); ++i) {
    for (const CallSite& call : summaries[i].calls) {
      for (const auto& h : call.held) {
        for (const auto& a : summaries[call.callee].total) {
          raw.push_back(RawEdge{
              h, a, fns[i].file,
              fns[i].cls.empty() ? fns[i].name
                                 : fns[i].cls + "::" + fns[i].name,
              call.line});
        }
      }
    }
  }

  // Deduplicate on (from, to); keep the first site seen.
  std::set<std::pair<std::string, std::string>> seen;
  for (const RawEdge& e : raw) {
    if (!seen.insert({e.from, e.to}).second) continue;
    g.edges.push_back(Edge{e.from, e.to, e.file, e.line, e.via});
  }
  std::sort(g.edges.begin(), g.edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.from, a.to) < std::tie(b.from, b.to);
  });
  return g;
}

std::vector<Finding> check(const Graph& graph, const Hierarchy& hierarchy) {
  std::vector<Finding> out;

  // Self-edges are immediate deadlocks; report them directly.
  for (const Edge& e : graph.edges) {
    if (e.from == e.to) {
      out.push_back(Finding{
          e.file, e.line, "lock-order",
          "re-acquisition of non-reentrant mutex '" + e.from + "' in " +
              e.via + " while already held — self-deadlock"});
    }
  }

  // Cycle detection over distinct mutexes (DFS, three-color).
  std::map<std::string, std::vector<const Edge*>> adj;
  for (const Edge& e : graph.edges) {
    if (e.from != e.to) adj[e.from].push_back(&e);
  }
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<const Edge*> stack;
  auto dfs = [&](auto&& self, const std::string& node) -> void {
    color[node] = 1;
    for (const Edge* e : adj[node]) {
      if (color[e->to] == 1) {
        // Found a cycle: stack suffix from e->to plus this edge.
        std::string path = e->to;
        bool in_cycle = false;
        const Edge* site = e;
        for (const Edge* s : stack) {
          if (s->from == e->to) in_cycle = true;
          if (in_cycle) {
            path += " -> " + s->to;
            site = s;
          }
        }
        path += " -> " + e->to;
        out.push_back(Finding{
            site->file, site->line, "lock-order",
            "lock acquisition cycle: " + path +
                " — a schedule interleaving these acquisitions deadlocks"});
        continue;
      }
      if (color[e->to] == 0) {
        stack.push_back(e);
        self(self, e->to);
        stack.pop_back();
      }
    }
    color[node] = 2;
  };
  for (const auto& [node, _] : adj) {
    if (color[node] == 0) dfs(dfs, node);
  }

  // Hierarchy inversions: an edge landing on the same or an earlier level.
  for (const Edge& e : graph.edges) {
    if (e.from == e.to) continue;
    const int lf = level_of(hierarchy, e.from);
    const int lt = level_of(hierarchy, e.to);
    if (lf < 0 || lt < 0) continue;
    if (lt < lf) {
      out.push_back(Finding{
          e.file, e.line, "lock-order",
          "inverted lock order in " + e.via + ": '" + e.from +
              "' (level " + std::to_string(lf) + ") held while acquiring '" +
              e.to + "' (level " + std::to_string(lt) +
              ") — the documented hierarchy acquires the pipeline mutex "
              "before any range-lock shard mutex (DESIGN.md §10)"});
    } else if (lt == lf && !qualified_suffix_match(e.from, e.to)) {
      out.push_back(Finding{
          e.file, e.line, "lock-order",
          "same-level lock nesting in " + e.via + ": '" + e.from +
              "' held while acquiring '" + e.to +
              "' — peers of one hierarchy level must never nest"});
    }
  }

  // Anchor edges: the documented chain must still be visible.
  for (const auto& [from, to] : hierarchy.required_edges) {
    if (graph.has_edge(from, to)) continue;
    // Anchor at the from-mutex's declaration when known.
    std::string file = "src";
    int line = 1;
    for (const MutexDecl& m : graph.mutexes) {
      if (qualified_suffix_match(m.id, from)) {
        file = m.file;
        line = m.line;
        break;
      }
    }
    out.push_back(Finding{
        file, line, "lock-order",
        "lock-order anchor missing: expected the documented '" + from +
            "' -> '" + to +
            "' acquisition edge, but the graph no longer contains it — "
            "either the locking structure changed (update the hierarchy in "
            "tools/lint/lockorder.cpp and DESIGN.md §10) or the analyzer "
            "lost resolution of the call chain"});
  }
  return out;
}

std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                             const Hierarchy& hierarchy) {
  const Model model = Model::build(files);
  return check(build_graph(model), hierarchy);
}

}  // namespace af::lint::lockorder

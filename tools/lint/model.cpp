#include "model.h"

#include <algorithm>

namespace af::lint {
namespace {

[[nodiscard]] bool is_ident(const Token& t, const char* s) {
  return t.kind == Tok::kIdent && t.text == s;
}
[[nodiscard]] bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}

/// Annotation macros whose (args) groups are attributes, never calls or
/// function heads.
[[nodiscard]] bool is_annotation_macro(const std::string& s) {
  return s == "AF_GUARDED_BY" || s == "AF_PT_GUARDED_BY" ||
         s == "AF_REQUIRES" || s == "AF_EXCLUSIVE_LOCKS_REQUIRED" ||
         s == "AF_ACQUIRE" || s == "AF_RELEASE" || s == "AF_TRY_ACQUIRE" ||
         s == "AF_EXCLUDES" || s == "AF_CAPABILITY" ||
         s == "AF_RETURN_CAPABILITY" || s == "AF_THREAD_ANNOTATION";
}

[[nodiscard]] bool is_access_specifier(const std::string& s) {
  return s == "public" || s == "private" || s == "protected";
}

/// Per-file parser: walks the code tokens with a scope stack and fills the
/// shared class/function tables.
class FileParser {
 public:
  FileParser(const SourceFile& file, const std::vector<Token>& toks,
             std::vector<ClassInfo>& classes,
             std::vector<FunctionInfo>& functions)
      : path_(file.path), toks_(toks), classes_(classes),
        functions_(functions) {}

  void run() { parse_region(0, toks_.size(), /*class_idx=*/-1); }

 private:
  struct Stmt {
    std::vector<std::size_t> idx;  // token indices (brace-init groups elided)
    std::ptrdiff_t brace_init_at = -1;  // position in idx before a {…} init
  };

  [[nodiscard]] const Token& tok(std::size_t i) const { return toks_[i]; }

  /// Index one past the brace/paren group opened at `open`.
  [[nodiscard]] std::size_t skip_group(std::size_t open, std::size_t end,
                                       const char* ob, const char* cb) const {
    int depth = 0;
    for (std::size_t i = open; i < end; ++i) {
      if (!is_code(tok(i))) continue;
      if (is_punct(tok(i), ob)) ++depth;
      if (is_punct(tok(i), cb) && --depth == 0) return i + 1;
    }
    return end;
  }

  /// Parses statements in [begin, end); `class_idx` indexes classes_ when
  /// this region is a class body, -1 for namespace / top-level regions.
  void parse_region(std::size_t begin, std::size_t end,
                    std::ptrdiff_t class_idx) {
    std::size_t i = begin;
    Stmt stmt;
    int paren_depth = 0;
    auto reset = [&] { stmt = Stmt{}; };
    while (i < end) {
      const Token& t = tok(i);
      if (!is_code(t)) {
        ++i;
        continue;
      }
      // Access labels restart the statement.
      if (paren_depth == 0 && stmt.idx.size() == 1 &&
          tok(stmt.idx[0]).kind == Tok::kIdent &&
          is_access_specifier(tok(stmt.idx[0]).text) && is_punct(t, ":")) {
        reset();
        ++i;
        continue;
      }
      if (is_punct(t, "(")) ++paren_depth;
      if (is_punct(t, ")")) --paren_depth;
      if (paren_depth == 0 && is_punct(t, ";")) {
        if (class_idx >= 0) maybe_member(stmt, class_idx);
        reset();
        ++i;
        continue;
      }
      if (paren_depth == 0 && is_punct(t, "{")) {
        const std::size_t close = skip_group(i, end, "{", "}");
        if (!dispatch_brace(stmt, i, close, class_idx)) {
          // Brace initializer: elide the group, keep scanning the statement.
          if (stmt.brace_init_at < 0) {
            stmt.brace_init_at =
                static_cast<std::ptrdiff_t>(stmt.idx.size());
          }
          i = close;
          continue;
        }
        reset();
        i = close;
        continue;
      }
      stmt.idx.push_back(i);
      ++i;
    }
  }

  /// Classifies the brace opened at `open` given the statement prefix.
  /// Returns true when the brace was consumed as a scope/body (statement
  /// done), false when it is a brace initializer the caller should elide.
  bool dispatch_brace(const Stmt& stmt, std::size_t open, std::size_t close,
                      std::ptrdiff_t class_idx) {
    const auto& p = stmt.idx;
    if (p.empty()) return true;  // bare block
    if (is_ident(tok(p[0]), "namespace")) {
      std::string ns;
      for (std::size_t k = 1; k < p.size(); ++k) {
        if (tok(p[k]).kind == Tok::kIdent) {
          if (!ns.empty()) ns += "::";
          ns += tok(p[k]).text;
        }
      }
      namespaces_.push_back(ns);
      parse_region(open + 1, close - 1, -1);
      namespaces_.pop_back();
      return true;
    }
    if (is_ident(tok(p[0]), "enum")) return true;  // opaque
    // class/struct/union definition? (`enum class` was caught above; a
    // keyword appearing inside template params is preceded by '<'.)
    for (std::size_t k = 0; k < p.size(); ++k) {
      if (tok(p[k]).kind != Tok::kIdent) continue;
      const std::string& kw = tok(p[k]).text;
      if (kw != "class" && kw != "struct" && kw != "union") continue;
      if (k > 0 && (is_punct(tok(p[k - 1]), "<") ||
                    is_punct(tok(p[k - 1]), ","))) {
        continue;  // template parameter, keep looking
      }
      return open_class(p, k, open, close);
    }
    // Function body? Find the first (name)(args) group at top level whose
    // head is a plain identifier (annotation macros excluded).
    const std::ptrdiff_t name_at = function_name_index(p);
    if (name_at >= 0) {
      record_function(p, static_cast<std::size_t>(name_at), open, close,
                      class_idx);
      return true;
    }
    return false;  // brace initializer
  }

  bool open_class(const std::vector<std::size_t>& p, std::size_t kw_at,
                  std::size_t open, std::size_t close) {
    // Name: the last plain identifier before the base clause (a lone ':').
    std::string name;
    int line = tok(p[kw_at]).line;
    for (std::size_t k = kw_at + 1; k < p.size(); ++k) {
      const Token& t = tok(p[k]);
      if (is_punct(t, ":")) break;
      if (t.kind == Tok::kIdent && t.text != "final" &&
          !is_annotation_macro(t.text)) {
        // Skip annotation-macro argument contents.
        if (k + 1 < p.size() && is_punct(tok(p[k + 1]), "(")) {
          // could be a macro we don't know; treat its head as candidate
          // only if nothing better follows.
        }
        name = t.text;
        line = t.line;
      }
    }
    if (name.empty()) return true;  // anonymous struct: opaque block
    std::string qualified;
    for (const auto& ns : namespaces_) {
      if (!ns.empty()) qualified += ns + "::";
    }
    for (const auto& c : class_stack_) qualified += c + "::";
    qualified += name;
    classes_.push_back(ClassInfo{qualified, path_, line, {}});
    const std::ptrdiff_t idx =
        static_cast<std::ptrdiff_t>(classes_.size()) - 1;
    class_stack_.push_back(name);
    parse_region(open + 1, close - 1, idx);
    class_stack_.pop_back();
    return true;
  }

  /// Index into `p` of the function name, or -1 when the prefix does not
  /// look like a function head.
  [[nodiscard]] std::ptrdiff_t function_name_index(
      const std::vector<std::size_t>& p) const {
    int depth = 0;
    for (std::size_t k = 0; k + 1 < p.size(); ++k) {
      if (is_punct(tok(p[k]), "(")) ++depth;
      if (is_punct(tok(p[k]), ")")) --depth;
      if (depth != 0) continue;
      if (tok(p[k]).kind == Tok::kIdent && is_punct(tok(p[k + 1]), "(") &&
          !is_annotation_macro(tok(p[k]).text)) {
        return static_cast<std::ptrdiff_t>(k);
      }
      // operator overloads: record under the name "operator".
      if (is_ident(tok(p[k]), "operator")) {
        return static_cast<std::ptrdiff_t>(k);
      }
    }
    return -1;
  }

  void record_function(const std::vector<std::size_t>& p, std::size_t name_at,
                       std::size_t open, std::size_t close,
                       std::ptrdiff_t class_idx) {
    FunctionInfo fn;
    fn.file = path_;
    fn.name = tok(p[name_at]).text;
    fn.line = tok(p[name_at]).line;
    fn.body_begin = open;
    fn.body_end = close;
    // Enclosing class: explicit A::B:: qualifier on the name wins (an
    // out-of-line definition), else the surrounding class scope.
    std::string qual;
    std::size_t k = name_at;
    while (k >= 2 && is_punct(tok(p[k - 1]), "::") &&
           tok(p[k - 2]).kind == Tok::kIdent) {
      qual = tok(p[k - 2]).text + (qual.empty() ? "" : "::" + qual);
      k -= 2;
    }
    if (!qual.empty()) {
      std::string prefix;
      for (const auto& ns : namespaces_) {
        if (!ns.empty()) prefix += ns + "::";
      }
      fn.cls = prefix + qual;
    } else if (class_idx >= 0) {
      fn.cls = classes_[static_cast<std::size_t>(class_idx)].name;
    }
    // AF_REQUIRES / AF_EXCLUSIVE_LOCKS_REQUIRED argument names after the
    // parameter list.
    for (std::size_t j = name_at + 1; j + 1 < p.size(); ++j) {
      if (tok(p[j]).kind == Tok::kIdent &&
          (tok(p[j]).text == "AF_REQUIRES" ||
           tok(p[j]).text == "AF_EXCLUSIVE_LOCKS_REQUIRED") &&
          is_punct(tok(p[j + 1]), "(")) {
        int depth = 0;
        for (std::size_t m = j + 1; m < p.size(); ++m) {
          if (is_punct(tok(p[m]), "(")) ++depth;
          if (is_punct(tok(p[m]), ")") && --depth == 0) break;
          if (tok(p[m]).kind == Tok::kIdent) {
            fn.requires_caps.push_back(tok(p[m]).text);
          }
        }
      }
    }
    functions_.push_back(std::move(fn));
  }

  void maybe_member(const Stmt& stmt, std::ptrdiff_t class_idx) {
    const auto& p = stmt.idx;
    if (p.empty()) return;
    static const char* kSkipLeaders[] = {"using",  "typedef", "friend",
                                         "static", "template", "enum",
                                         "return", "namespace"};
    if (tok(p[0]).kind == Tok::kIdent) {
      for (const char* s : kSkipLeaders) {
        if (tok(p[0]).text == s) return;
      }
    }
    // Truncate at a top-level '=' (initializer) or at the elided {…} init.
    std::size_t limit = p.size();
    if (stmt.brace_init_at >= 0) {
      limit = static_cast<std::size_t>(stmt.brace_init_at);
    }
    int depth = 0;
    for (std::size_t k = 0; k < limit; ++k) {
      if (is_punct(tok(p[k]), "(")) ++depth;
      if (is_punct(tok(p[k]), ")")) --depth;
      if (depth == 0 && is_punct(tok(p[k]), "=")) {
        limit = k;
        break;
      }
    }
    if (limit == 0) return;
    // Trailing AF_GUARDED_BY / AF_PT_GUARDED_BY(...) annotation.
    std::string guard;
    if (limit >= 4 && is_punct(tok(p[limit - 1]), ")")) {
      // Find the group's opening paren and its head.
      int d = 0;
      std::size_t openk = limit;
      for (std::size_t k = limit; k-- > 0;) {
        if (is_punct(tok(p[k]), ")")) ++d;
        if (is_punct(tok(p[k]), "(") && --d == 0) {
          openk = k;
          break;
        }
      }
      if (openk > 0 && tok(p[openk - 1]).kind == Tok::kIdent &&
          (tok(p[openk - 1]).text == "AF_GUARDED_BY" ||
           tok(p[openk - 1]).text == "AF_PT_GUARDED_BY")) {
        for (std::size_t m = openk + 1; m + 1 < limit; ++m) {
          if (!guard.empty()) guard += " ";
          guard += tok(p[m]).text;
        }
        limit = openk - 1;
      }
    }
    if (limit < 2) return;
    // A remaining paren means a function/ctor declaration, not a member.
    depth = 0;
    for (std::size_t k = 0; k < limit; ++k) {
      if (is_punct(tok(p[k]), "(")) return;
      if (is_punct(tok(p[k]), "[")) return;  // arrays / attributes: skip
    }
    // Name = last identifier; type = tokens before it.
    if (tok(p[limit - 1]).kind != Tok::kIdent) return;
    MemberVar m;
    m.name = tok(p[limit - 1]).text;
    m.line = tok(p[limit - 1]).line;
    m.guarded_by = guard;
    // Type head: skip leading cv/storage words, then join ident::ident…
    std::size_t k = 0;
    while (k + 1 < limit && tok(p[k]).kind == Tok::kIdent &&
           (tok(p[k]).text == "const" || tok(p[k]).text == "mutable" ||
            tok(p[k]).text == "volatile" || tok(p[k]).text == "inline" ||
            tok(p[k]).text == "constexpr")) {
      if (tok(p[k]).text == "mutable") m.mutable_decl = true;
      ++k;
    }
    std::string head;
    while (k + 1 < limit) {
      if (tok(p[k]).kind == Tok::kIdent) {
        head += tok(p[k]).text;
        if (k + 2 < limit && is_punct(tok(p[k + 1]), "::")) {
          head += "::";
          k += 2;
          continue;
        }
      }
      break;
    }
    if (head.empty()) return;
    m.type_head = head;
    classes_[static_cast<std::size_t>(class_idx)].members.push_back(
        std::move(m));
  }

  const std::string& path_;
  const std::vector<Token>& toks_;
  std::vector<ClassInfo>& classes_;
  std::vector<FunctionInfo>& functions_;
  std::vector<std::string> namespaces_;
  std::vector<std::string> class_stack_;
};

}  // namespace

bool qualified_suffix_match(const std::string& qualified,
                            const std::string& suffix) {
  if (suffix.empty() || qualified.size() < suffix.size()) return false;
  if (qualified.compare(qualified.size() - suffix.size(), suffix.size(),
                        suffix) != 0) {
    return false;
  }
  if (qualified.size() == suffix.size()) return true;
  const std::size_t before = qualified.size() - suffix.size();
  return before >= 2 && qualified.compare(before - 2, 2, "::") == 0;
}

Model Model::build(const std::vector<SourceFile>& files) {
  Model m;
  for (const SourceFile& f : files) {
    Lexed lx = lex(f.content);
    auto [it, inserted] = m.tokens_.emplace(f.path, std::move(lx.tokens));
    if (!inserted) continue;
    FileParser(f, it->second, m.classes_, m.functions_).run();
  }
  return m;
}

const std::vector<Token>* Model::tokens(const std::string& path) const {
  const auto it = tokens_.find(path);
  return it == tokens_.end() ? nullptr : &it->second;
}

const ClassInfo* Model::resolve_class(const std::string& name) const {
  if (name.empty()) return nullptr;
  const ClassInfo* found = nullptr;
  for (const auto& c : classes_) {
    if (!qualified_suffix_match(c.name, name)) continue;
    if (found != nullptr && found->name != c.name) return nullptr;  // ambiguous
    found = &c;
  }
  return found;
}

const FunctionInfo* Model::resolve_function(const std::string& cls,
                                            const std::string& name) const {
  for (const auto& f : functions_) {
    if (f.name != name) continue;
    if (cls.empty() ? f.cls.empty()
                    : (qualified_suffix_match(f.cls, cls) ||
                       qualified_suffix_match(cls, f.cls))) {
      return &f;
    }
  }
  return nullptr;
}

const MemberVar* Model::resolve_member(const std::string& cls,
                                       const std::string& name) const {
  // Walk the class and its enclosing classes (inner scopes see outer
  // members), innermost first.
  std::string probe = cls;
  while (!probe.empty()) {
    for (const auto& c : classes_) {
      if (c.name != probe && !qualified_suffix_match(c.name, probe)) continue;
      if (const MemberVar* m = c.member(name)) return m;
    }
    const std::size_t cut = probe.rfind("::");
    if (cut == std::string::npos) break;
    probe = probe.substr(0, cut);
  }
  return nullptr;
}

}  // namespace af::lint

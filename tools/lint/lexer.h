// Token-level C++ lexer for af_lint (DESIGN.md §6.1).
//
// v1 of the linter blanked comments and literals with a per-line state
// machine; it reset string state at end-of-line (so raw strings leaked into
// "code") and collected `af_lint: allow` suppressions from *raw* lines (so a
// marker inside a string literal suppressed real findings). This lexer is
// the v2 foundation: one pass over the file produces
//
//   * a real token stream — identifiers, numbers, string/char literals
//     (including raw strings and encoding prefixes), multi-char operators,
//     comments and whole preprocessor directives, each with its source line —
//     which the semantic rules (lock-order graph, iteration dataflow,
//     status tracking) walk directly, and
//   * blanked "code lines" — byte-aligned with the original lines, with
//     every comment and literal body replaced by spaces — which the
//     declaration-shaped line rules still pattern-match against.
//
// It is a *lexer*, not a preprocessor: macros are not expanded and
// conditional-compilation branches are all lexed. That is exactly what a
// convention checker wants — conventions hold in every branch.
#pragma once

#include <string>
#include <vector>

namespace af::lint {

enum class Tok {
  kIdent,         // identifiers and keywords (no distinction needed here)
  kNumber,        // numeric literal, including digit separators / suffixes
  kString,        // ordinary or encoded string literal ("..", u8"..", ...)
  kRawString,     // raw string literal R"delim(..)delim" (any prefix)
  kChar,          // character literal ('a', L'\n', ...)
  kPunct,         // operator / punctuation; multi-char ops are one token
  kComment,       // // or /* */ comment, full text including markers
  kPreprocessor,  // one whole directive, backslash continuations merged
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;  // for literals: the full source spelling
  int line = 0;      // 1-based line the token starts on
  int end_line = 0;  // 1-based line the token ends on (== line if one-line)
};

struct Lexed {
  std::vector<std::string> raw_lines;   // original lines, \r\n normalized
  std::vector<std::string> code_lines;  // comments + literal bodies blanked
  std::vector<Token> tokens;            // every token, comments included
};

/// Lexes one translation unit's worth of text. Never fails: unterminated
/// constructs lex as whatever they look like through end-of-file.
[[nodiscard]] Lexed lex(const std::string& content);

/// True for tokens the semantic rules should see (skips comments and
/// preprocessor directives).
[[nodiscard]] inline bool is_code(const Token& t) {
  return t.kind != Tok::kComment && t.kind != Tok::kPreprocessor;
}

}  // namespace af::lint

// Table 2 — "Specifications on Selected Traces (8KB page size)".
// Prints the published row next to the synthetic trace actually generated,
// so the substitution fidelity is auditable.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/characterize.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto config = bench::device(8);
  bench::print_header("Table 2: trace specifications (8 KiB pages)", config);
  const auto addressable = bench::addressable_sectors(config);

  Table table({"Trace", "# of Req. (paper)", "# of Req.", "Write R (paper)",
               "Write R", "Write SZ (paper)", "Write SZ", "Across R (paper)",
               "Across R"});
  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    const auto& target = trace::table2_targets()[i];
    const auto tr = bench::lun_trace(i, addressable);
    const auto stats =
        trace::characterize(tr, config.geometry.sectors_per_page());
    table.add_row({target.name, Table::num(target.requests),
                   Table::num(stats.requests),
                   Table::percent(target.write_ratio),
                   Table::percent(stats.write_ratio),
                   Table::num(target.write_kb, 1) + "KB",
                   Table::num(stats.avg_write_kb, 1) + "KB",
                   Table::percent(target.across_ratio),
                   Table::percent(stats.across_ratio)});
  }
  table.print(std::cout);
  std::printf("\n(# of Req. is scaled by ACROSS_FTL_BENCH_REQS; the "
              "distributional columns are the reproduction targets.)\n");
  return 0;
}

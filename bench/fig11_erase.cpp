// Figure 11 — erase counts (the SSD-lifetime indicator), normalized to the
// baseline FTL. The paper reports Across-FTL erasing 13.3% less than FTL and
// 24.6% less than MRSM (headline: 6.4%-19.11% reduction).
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto config = bench::device(8);
  bench::print_header("Figure 11: erase count (normalized to FTL)", config);
  const auto addressable = bench::addressable_sectors(config);

  Table table({"trace", "FTL (abs)", "MRSM", "Across-FTL", "wear mean (F/M/A)",
               "wear spread (F/M/A)"});
  double gain_ftl = 0, gain_mrsm = 0;

  std::vector<trace::Trace> traces;
  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    traces.push_back(bench::lun_trace(i, addressable));
  }
  const auto grid = bench::replay_grid(config, traces);

  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    const auto& results = grid[i];

    const auto base = static_cast<double>(results[0].stats.erases());
    const auto mrsm = static_cast<double>(results[1].stats.erases());
    const auto across = static_cast<double>(results[2].stats.erases());
    table.add_row({trace::table2_targets()[i].name,
                   Table::num(results[0].stats.erases()),
                   bench::normalised(mrsm, base),
                   bench::normalised(across, base),
                   Table::num(results[0].wear.mean, 1) + "/" +
                       Table::num(results[1].wear.mean, 1) + "/" +
                       Table::num(results[2].wear.mean, 1),
                   Table::num(results[0].wear.spread()) + "/" +
                       Table::num(results[1].wear.spread()) + "/" +
                       Table::num(results[2].wear.spread())});
    gain_ftl += 1.0 - across / base;
    if (mrsm > 0) gain_mrsm += 1.0 - across / mrsm;
  }
  table.print(std::cout);

  const double n = static_cast<double>(trace::table2_targets().size());
  std::printf("\nAcross-FTL erases: %.1f%% fewer than FTL (paper 13.3%%), "
              "%.1f%% fewer than MRSM (paper 24.6%%).\n",
              gain_ftl / n * 100, gain_mrsm / n * 100);
  return 0;
}

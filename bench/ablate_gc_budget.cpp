// Ablation — partial-GC page budget vs latency tail. The paper's related
// work (Sha et al., TACO'21) motivates partial GC for long-tail latency;
// this sweep shows why the simulator uses a bounded budget: a monolithic
// pass (large budget) wrecks p99 while barely moving the mean.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto base_config = bench::device(8);
  bench::print_header("Ablation: GC pages-per-pass budget (lun1, Across-FTL)",
                      base_config);
  const auto tr =
      bench::lun_trace(0, bench::addressable_sectors(base_config));

  Table table({"budget (pages/pass)", "write mean ms", "write p99 ms",
               "read mean ms", "read p99 ms", "erases", "gc runs"});
  for (std::uint32_t budget : {2u, 8u, 32u, 100000u}) {
    auto config = base_config;
    config.gc_pages_per_pass = budget;
    const auto result = trace::replay(config, ftl::SchemeKind::kAcrossFtl, tr);
    const auto writes = result.stats.all_writes();
    const auto reads = result.stats.all_reads();
    table.add_row({budget >= 100000u ? "monolithic" : Table::num(std::uint64_t{budget}),
                   Table::num(writes.latency().mean() / 1e6, 3),
                   Table::num(writes.histogram().percentile(99) / 1e6, 1),
                   Table::num(reads.latency().mean() / 1e6, 3),
                   Table::num(reads.histogram().percentile(99) / 1e6, 1),
                   Table::num(result.stats.erases()),
                   Table::num(result.gc_runs)});
  }
  table.print(std::cout);
  return 0;
}

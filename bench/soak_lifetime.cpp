// Device-lifetime soak (DESIGN.md §9): burns a tiny geometry to end-of-life
// under mixed write/trim churn with periodic power cuts and full remounts,
// once with wear leveling off and once with it on. Stage rows sample the
// burn every few thousand ops; the final row per combination is the EOL
// point — the op count at which the device entered read-only — so the
// leveling comparison shows both the narrowed erase spread and the lifetime
// it buys. Runs without payload tracking: the oracle-audited counterpart is
// tests/integration/lifetime_soak_test.cpp; this binary prices the endgame.
//
// Knobs (environment): SOAK_OPS caps the op budget (default 150000).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common.h"
#include "common/rng.h"
#include "nand/power.h"
#include "sim/ssd.h"

namespace {

af::ssd::SsdConfig soak_config(bool wear_leveling) {
  auto config = af::ssd::SsdConfig::tiny();
  config.track_payload = false;  // measurement harness, not a correctness one
  // Same ramp as the soak test: past 18 erases a block's program/erase fault
  // odds grow 3 % per further erase, so spares drain within the op budget.
  config.faults.wear_onset = 18;
  config.faults.wear_slope = 0.03;
  config.capacity.throttle_window_blocks = 2;
  config.capacity.throttle_ns_per_block = 20'000;
  config.capacity.wear_spread_threshold = wear_leveling ? 6 : 0;
  config.checkpoint.interval_requests = 32;
  return config;
}

std::uint64_t op_budget() {
  // getenv runs once at startup, before any ThreadPool exists.
  if (const char* env = std::getenv("SOAK_OPS")) {  // NOLINT(concurrency-mt-unsafe)
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 150'000;
}

}  // namespace

int main() {
  using namespace af;
  bench::print_header("Lifetime soak: burn to read-only (wear off vs on)",
                      soak_config(false));
  const std::uint64_t budget = op_budget();
  std::printf("op budget %llu (SOAK_OPS), power cut every 9000 submits, "
              "trim every 97th op\n\n",
              static_cast<unsigned long long>(budget));

  Table table({"scheme", "wear lvl", "stage", "ops", "mounts", "erases",
               "retired", "spread", "stalls", "trims", "free pgs"});

  for (const ftl::SchemeKind kind : bench::all_schemes()) {
    for (const bool wear : {false, true}) {
      const auto config = soak_config(wear);
      const std::uint32_t spp = config.geometry.sectors_per_page();
      const std::uint64_t pages = config.logical_sectors() / spp;
      auto ssd = std::make_unique<sim::Ssd>(config, kind);
      Rng rng(41);
      SimTime t = 1;
      std::uint64_t ops = 0;
      std::uint64_t mounts = 0;
      std::uint64_t total_trims = 0;
      std::uint64_t total_stalls = 0;
      std::uint64_t total_erases = 0;
      std::uint64_t next_stage = 5'000;  // EOL lands in the low tens of
                                         // thousands at this wear ramp

      const auto add_row = [&](const char* stage) {
        const auto& array = ssd->engine().array();
        table.add_row({ftl::to_string(kind), wear ? "on" : "off", stage,
                       Table::num(ops), Table::num(mounts),
                       Table::num(total_erases + ssd->stats().erases()),
                       Table::num(array.counters().retired_blocks),
                       Table::num(array.wear().spread()),
                       Table::num(total_stalls +
                                  ssd->stats().faults().throttle_stalls),
                       Table::num(total_trims + ssd->stats().faults().trims),
                       Table::num(ssd->engine().free_headroom_pages())});
      };
      // Per-incarnation counters reset at every mount; lifetime totals
      // accumulate across all the device's incarnations.
      const auto bank = [&] {
        total_trims += ssd->stats().faults().trims;
        total_stalls += ssd->stats().faults().throttle_stalls;
        total_erases += ssd->stats().erases();
      };

      while (ops < budget && !ssd->engine().read_only()) {
        ssd->engine().array().arm_power_cut(
            {/*at_op=*/3'000 + (mounts % 5) * 800, /*seed=*/mounts + 1});
        bool crashed = false;
        try {
          for (std::uint64_t i = 0; i < 9'000 && ops < budget; ++i, ++ops) {
            ftl::IoRequest req{t++, /*write=*/true, {}, /*trim=*/false};
            if (ops % 97 == 0) {
              const std::uint64_t base = (ops / 97 * 7) % (pages / 2);
              const std::uint64_t len = std::min<std::uint64_t>(8, pages - base);
              req.write = false;
              req.trim = true;
              req.range = SectorRange::of(base * spp, len * spp);
            } else {
              // Mixed shapes so the schemes actually diverge: aligned pages
              // for the common case, sub-page writes to populate MRSM slots,
              // across-page spans to populate Across areas.
              const std::uint64_t p = rng.below(pages / 2 - 1);
              const std::uint32_t shape = static_cast<std::uint32_t>(rng.below(5));
              if (shape == 0) {  // sub-page
                const SectorCount len = rng.between(1, spp - 1);
                req.range = SectorRange::of(p * spp + rng.below(spp - len), len);
              } else if (shape == 1) {  // across-page
                const SectorCount len = rng.between(2, spp);
                req.range =
                    SectorRange::of((p + 1) * spp - rng.between(1, len - 1), len);
              } else {  // full aligned page
                req.range = SectorRange::of(p * spp, spp);
              }
            }
            const auto completion = ssd->submit(req);
            if (!completion.accepted &&
                completion.status == ssd::Status::kReadOnly) {
              break;
            }
            if (ops >= next_stage) {
              add_row("stage");
              next_stage += 5'000;
            }
          }
        } catch (const nand::PowerLoss&) {
          crashed = true;
        }
        // A blackout mid-request leaves RAM state torn: remount before any
        // further use. Without one, a clean read-only exit ends the burn.
        if (!crashed) {
          if (ssd->engine().read_only()) break;
          continue;
        }
        bank();
        nand::FlashArray image = ssd->release_flash();
        ssd = sim::Ssd::mount(config, kind, std::move(image), nullptr, nullptr);
        ++mounts;
      }
      add_row(ssd->engine().read_only() ? "EOL" : "budget");
    }
  }
  table.print(std::cout);
  return 0;
}

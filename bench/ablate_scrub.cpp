// Ablation — background scrub policy sweep (watermark × budget) under a
// retention-dominated bit-error ramp, with parity stripes on. Prices the
// refresh machinery: aggressive scrubbing burns program/erase bandwidth but
// drains the uncorrectable/lost columns; a lazy watermark leaves data to rot
// until the ECC ladder (and then parity) must save it. The "off" row doubles
// as the regression anchor for the reliability CI job.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  auto base_config = bench::device(8);
  // Retention-dominated latent error growth: old pages accumulate expected
  // raw bit errors fast enough to cross the ECC budget within the bench
  // horizon, so scrub policy actually changes the outcome.
  base_config.faults.ber_base = 0.5;
  base_config.faults.ber_retention = 0.08;
  base_config.faults.ber_read_disturb = 0.02;
  base_config.integrity.parity_stripe_width = 8;
  bench::print_header("Ablation: scrub watermark x budget (lun1)",
                      base_config);
  const auto tr = bench::lun_trace(0, bench::addressable_sectors(base_config));

  std::printf("ber: base=%.2f retention=%.2f/kop disturb=%.2f/100reads; "
              "ecc=%u bits, retry x%u, parity width=%u\n\n",
              base_config.faults.ber_base, base_config.faults.ber_retention,
              base_config.faults.ber_read_disturb,
              base_config.integrity.ecc_correctable_bits,
              base_config.integrity.read_retry_steps,
              base_config.integrity.parity_stripe_width);

  struct Policy {
    const char* label;
    std::uint64_t interval;  // requests per tick (0 = scrub off)
    std::uint32_t budget;    // pages examined per tick
    double watermark;        // expected raw bit errors triggering refresh
  };
  const Policy policies[] = {
      {"off", 0, 0, 0.0},          {"lazy wm6 b4", 64, 4, 6.0},
      {"mid wm4 b8", 64, 8, 4.0},  {"eager wm2 b8", 32, 8, 2.0},
      {"eager wm2 b16", 32, 16, 2.0},
  };

  Table table({"scheme", "policy", "write mean ms", "read mean ms",
               "scrub scans", "refreshed", "retry saves", "rebuilds",
               "uncorrectable", "lost reqs", "erases"});
  for (const Policy& policy : policies) {
    auto config = base_config;
    config.integrity.scrub_interval_requests = policy.interval;
    config.integrity.scrub_pages_per_tick = policy.budget;
    config.integrity.scrub_ber_watermark = policy.watermark;
    const auto results = bench::run_schemes(config, tr);
    for (std::size_t s = 0; s < results.size(); ++s) {
      const auto kind = bench::all_schemes()[s];
      const auto& result = results[s];
      const auto& faults = result.stats.faults();
      table.add_row({ftl::to_string(kind), policy.label,
                     Table::num(result.write_latency_ms(), 3),
                     Table::num(result.read_latency_ms(), 3),
                     Table::num(faults.scrub_scans),
                     Table::num(faults.scrub_relocations),
                     Table::num(faults.ecc_retry_recoveries),
                     Table::num(faults.parity_rebuilds),
                     Table::num(faults.uncorrectable_reads),
                     Table::num(result.lost_requests),
                     Table::num(result.stats.erases())});
    }
  }
  table.print(std::cout);
  return 0;
}

// Figure 12 — FTL overheads: (a) mapping-table space (MB), (b) DRAM access
// count (normalized). The paper reports Across-FTL's table at 1.4x the
// baseline's and MRSM's at 2.4x, with MRSM needing ~32.6x the baseline's
// DRAM accesses (tree-indexed sub-page map) while Across-FTL adds <1.1%.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto config = bench::device(8);
  bench::print_header("Figure 12: mapping-table space and DRAM accesses",
                      config);
  const auto addressable = bench::addressable_sectors(config);

  Table space({"trace", "FTL (MB)", "MRSM (MB)", "Across (MB)", "MRSM/FTL",
               "Across/FTL"});
  Table dram({"trace", "FTL (10K)", "MRSM norm", "Across norm"});
  double mrsm_space = 0, across_space = 0, mrsm_dram = 0, across_dram = 0;

  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    const auto tr = bench::lun_trace(i, addressable);
    const auto results = bench::run_schemes(config, tr);
    const char* name = trace::table2_targets()[i].name;

    auto mb = [](const trace::ReplayResult& r) {
      return static_cast<double>(r.map_bytes) / (1 << 20);
    };
    space.add_row({name, Table::num(mb(results[0]), 2),
                   Table::num(mb(results[1]), 2), Table::num(mb(results[2]), 2),
                   Table::num(mb(results[1]) / mb(results[0]), 2),
                   Table::num(mb(results[2]) / mb(results[0]), 2)});
    mrsm_space += mb(results[1]) / mb(results[0]);
    across_space += mb(results[2]) / mb(results[0]);

    auto accesses = [](const trace::ReplayResult& r) {
      return static_cast<double>(r.stats.dram_accesses());
    };
    dram.add_row({name, Table::num(accesses(results[0]) / 1e4, 1),
                  bench::normalised(accesses(results[1]), accesses(results[0])),
                  bench::normalised(accesses(results[2]), accesses(results[0]))});
    mrsm_dram += accesses(results[1]) / accesses(results[0]);
    across_dram += accesses(results[2]) / accesses(results[0]);
  }

  std::printf("(a) mapping-table space\n");
  space.print(std::cout);
  std::printf("\n(b) DRAM access count\n");
  dram.print(std::cout);

  const double n = static_cast<double>(trace::table2_targets().size());
  std::printf("\naverages: space MRSM %.2fx FTL (paper 2.4x), Across-FTL "
              "%.2fx FTL (paper 1.4x); DRAM accesses MRSM %.1fx FTL (paper "
              "32.6x), Across-FTL %.2fx FTL (paper ~1.01x).\n",
              mrsm_space / n, across_space / n, mrsm_dram / n,
              across_dram / n);
  return 0;
}

// Ablation — NAND fault-rate sweep. Prices the recovery machinery
// (program retry-with-reallocation, read-retry, bad-block retirement) in
// latency and flash-op overhead, per scheme. The zero row doubles as the
// no-regression anchor: it must match a build without the fault subsystem.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto base_config = bench::device(8);
  bench::print_header("Ablation: NAND fault rates (lun1)", base_config);
  const auto tr = bench::lun_trace(0, bench::addressable_sectors(base_config));

  std::printf("rates: program/erase/read fault probability per op; "
              "wear ramp off\n\n");
  Table table({"scheme", "fault rate", "write mean ms", "read mean ms",
               "pgm faults", "erase faults", "read retries", "retired blks",
               "erases"});
  for (const double rate : {0.0, 1e-4, 1e-3, 5e-3}) {
    auto config = base_config;
    config.faults.program_fail = rate;
    config.faults.erase_fail = rate;
    config.faults.read_fail = rate;
    const auto results = bench::run_schemes(config, tr);
    for (std::size_t s = 0; s < results.size(); ++s) {
      const auto kind = bench::all_schemes()[s];
      const auto& result = results[s];
      const auto& faults = result.stats.faults();
      table.add_row({ftl::to_string(kind), Table::num(rate, 4),
                     Table::num(result.write_latency_ms(), 3),
                     Table::num(result.read_latency_ms(), 3),
                     Table::num(faults.program_faults),
                     Table::num(faults.erase_faults),
                     Table::num(faults.read_retries),
                     Table::num(faults.retired_blocks),
                     Table::num(result.stats.erases())});
    }
  }
  table.print(std::cout);
  return 0;
}

// Figure 9 — I/O performance: normalized read response time (a), write
// response time (b) and overall I/O time (c) for FTL / MRSM / Across-FTL.
// The paper reports Across-FTL cutting write time by 8.9% vs FTL and 3.7%
// vs MRSM on average, read time by >5%, and overall I/O latency by 4.6-11.6%.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto config = bench::device(8);
  bench::print_header("Figure 9: I/O response time (normalized to FTL)",
                      config);
  const auto addressable = bench::addressable_sectors(config);

  Table read_t({"trace", "FTL (ms)", "MRSM", "Across-FTL"});
  Table write_t({"trace", "FTL (ms)", "MRSM", "Across-FTL"});
  Table total_t({"trace", "FTL (ks)", "MRSM", "Across-FTL"});
  double write_gain_sum = 0, read_gain_sum = 0, io_gain_sum = 0;

  std::vector<trace::Trace> traces;
  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    traces.push_back(bench::lun_trace(i, addressable));
  }
  const auto grid = bench::replay_grid(config, traces);

  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    const auto& results = grid[i];
    const auto& base = results[0];
    const char* name = trace::table2_targets()[i].name;

    read_t.add_row({name, Table::num(base.read_latency_ms(), 3),
                    bench::normalised(results[1].read_latency_ms(),
                                      base.read_latency_ms()),
                    bench::normalised(results[2].read_latency_ms(),
                                      base.read_latency_ms())});
    write_t.add_row({name, Table::num(base.write_latency_ms(), 3),
                     bench::normalised(results[1].write_latency_ms(),
                                       base.write_latency_ms()),
                     bench::normalised(results[2].write_latency_ms(),
                                       base.write_latency_ms())});
    total_t.add_row({name, Table::num(base.io_time_s / 1e3, 3),
                     bench::normalised(results[1].io_time_s, base.io_time_s),
                     bench::normalised(results[2].io_time_s, base.io_time_s)});

    read_gain_sum += 1.0 - results[2].read_latency_ms() / base.read_latency_ms();
    write_gain_sum +=
        1.0 - results[2].write_latency_ms() / base.write_latency_ms();
    io_gain_sum += 1.0 - results[2].io_time_s / base.io_time_s;
  }

  std::printf("(a) read response time\n");
  read_t.print(std::cout);
  std::printf("\n(b) write response time\n");
  write_t.print(std::cout);
  std::printf("\n(c) overall I/O time\n");
  total_t.print(std::cout);

  const double n = static_cast<double>(trace::table2_targets().size());
  std::printf("\nAcross-FTL vs FTL average gains: read %.1f%%, write %.1f%%, "
              "overall I/O %.1f%%\npaper: write -8.9%%, read >5%%, overall "
              "4.6-11.6%% (avg 8.4%%).\n",
              read_gain_sum / n * 100, write_gain_sum / n * 100,
              io_gain_sum / n * 100);
  return 0;
}

// Micro-benchmarks of the simulator engine itself: request service rates per
// scheme, mapping-directory touch costs, and GC throughput. These bound how
// fast the figure benches can replay traces.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common.h"
#include "common/rng.h"
#include "sim/ssd.h"
#include "ssd/engine.h"
#include "ssd/range_lock.h"

namespace {

using namespace af;

ssd::SsdConfig micro_config() {
  auto config = ssd::SsdConfig::paper(8, 16);
  config.track_payload = false;
  return config;
}

void run_scheme_writes(benchmark::State& state, ftl::SchemeKind kind) {
  sim::Ssd ssd(micro_config(), kind);
  const auto spp = ssd.config().geometry.sectors_per_page();
  const auto pages = ssd.config().logical_pages();
  Rng rng(7);
  SimTime t = 0;
  for (auto _ : state) {
    const std::uint64_t p = rng.below(pages / 2);
    const bool across = rng.chance(0.25);
    SectorRange range =
        across && p > 0
            ? SectorRange::of(p * spp - rng.between(1, 7), 8)
            : SectorRange::of(p * spp, spp);
    ftl::IoRequest req{t, true, range};
    t += 10'000;
    benchmark::DoNotOptimize(ssd.submit(req));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_WriteRequests_PageFtl(benchmark::State& state) {
  run_scheme_writes(state, ftl::SchemeKind::kPageFtl);
}
void BM_WriteRequests_Mrsm(benchmark::State& state) {
  run_scheme_writes(state, ftl::SchemeKind::kMrsm);
}
void BM_WriteRequests_AcrossFtl(benchmark::State& state) {
  run_scheme_writes(state, ftl::SchemeKind::kAcrossFtl);
}
BENCHMARK(BM_WriteRequests_PageFtl);
BENCHMARK(BM_WriteRequests_Mrsm);
BENCHMARK(BM_WriteRequests_AcrossFtl);

void BM_ReadRequests_AcrossFtl(benchmark::State& state) {
  sim::Ssd ssd(micro_config(), ftl::SchemeKind::kAcrossFtl);
  const auto spp = ssd.config().geometry.sectors_per_page();
  Rng rng(9);
  SimTime t = 0;
  for (std::uint64_t p = 0; p < 512; ++p) {
    (void)ssd.submit({t++, true, SectorRange::of(p * spp, spp)});
  }
  for (std::uint64_t b = 2; b < 500; b += 2) {
    (void)ssd.submit({t++, true, SectorRange::of(b * spp - 4, 10)});
  }
  for (auto _ : state) {
    const std::uint64_t p = rng.below(500);
    benchmark::DoNotOptimize(
        ssd.submit({t, false, SectorRange::of(p * spp + 4, 10)}));
    t += 10'000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadRequests_AcrossFtl);

void BM_MapDirectoryTouch(benchmark::State& state) {
  sim::Ssd ssd(micro_config(), ftl::SchemeKind::kPageFtl);
  auto& engine = ssd.engine();
  Rng rng(11);
  const auto span = static_cast<std::uint64_t>(state.range(0));
  SimTime t = 0;
  for (auto _ : state) {
    t = engine.map_touch(rng.below(span), rng.chance(0.5), t);
  }
  state.SetItemsProcessed(state.iterations());
}
// Small span: pure CMT hits. Large span (the scheme's whole translation
// table, exceeding the cache): miss/evict traffic.
BENCHMARK(BM_MapDirectoryTouch)->Arg(4)->Arg(12);

/// One-plane engine filled below the GC trigger with ~half its pages dead:
/// a realistic victim-weight distribution with no GC in the way. The
/// constant-full oracle forces the legacy scan to rescore every page per
/// pick — the O(blocks x pages) cost the weight index removes.
std::unique_ptr<ssd::Engine> victim_engine(std::uint32_t blocks,
                                           std::vector<Ppn>* leftover) {
  auto config = ssd::SsdConfig::paper(8, blocks);
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 1;
  config.geometry.dies_per_chip = 1;
  config.geometry.planes_per_die = 1;
  config.track_payload = false;
  auto engine = std::make_unique<ssd::Engine>(config);
  engine->set_victim_weight(
      [](Ppn) { return ssd::Engine::kFullPageWeight; });
  const std::uint32_t ppb = config.geometry.pages_per_block;
  const std::uint32_t fill = blocks - engine->plane_trigger_blocks(0) - 4;
  Rng rng(21);
  std::uint64_t lpn = 0;
  leftover->clear();
  for (std::uint64_t i = 0; i < std::uint64_t{fill} * ppb; ++i) {
    const Ppn ppn = engine
                        ->flash_program(ssd::Stream::kData,
                                        nand::PageOwner::data(Lpn{lpn++}),
                                        ssd::OpKind::kDataWrite, 0)
                        .ppn;
    if (rng.chance(0.5)) {
      engine->invalidate(ppn);
    } else {
      leftover->push_back(ppn);
    }
  }
  return engine;
}

/// Legacy path: full block scan with per-page rescoring on every pick.
void BM_PickVictimScan(benchmark::State& state) {
  std::vector<Ppn> pages;
  auto engine = victim_engine(static_cast<std::uint32_t>(state.range(0)),
                              &pages);
  std::size_t next = 0;
  for (auto _ : state) {
    if (next < pages.size()) engine->invalidate(pages[next++]);
    benchmark::DoNotOptimize(engine->pick_victim_scan(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PickVictimScan)->Arg(32)->Arg(256);

/// Indexed path: lazy min-heap over incrementally maintained block weights.
void BM_PickVictimIndexed(benchmark::State& state) {
  std::vector<Ppn> pages;
  auto engine = victim_engine(static_cast<std::uint32_t>(state.range(0)),
                              &pages);
  std::size_t next = 0;
  for (auto _ : state) {
    if (next < pages.size()) engine->invalidate(pages[next++]);
    benchmark::DoNotOptimize(engine->pick_victim(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PickVictimIndexed)->Arg(32)->Arg(256);

void BM_GcChurn(benchmark::State& state) {
  sim::Ssd ssd(micro_config(), ftl::SchemeKind::kPageFtl);
  const auto spp = ssd.config().geometry.sectors_per_page();
  const auto footprint = ssd.config().logical_pages() / 3;
  Rng rng(13);
  SimTime t = 0;
  for (auto _ : state) {
    (void)ssd.submit(
        {t++, true, SectorRange::of(rng.below(footprint) * spp, spp)});
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["gc_runs"] =
      static_cast<double>(ssd.engine().gc_runs());
}
BENCHMARK(BM_GcChurn);

/// Range-lock acquire → eligibility check → release on an otherwise empty
/// table: every ticket lands in an empty region FIFO, so this is the
/// per-request fixed cost the pipeline pays even without any overlap.
/// Arg = sectors per request (1 = single region, 64 = five regions at the
/// default 16-sector page granularity).
void BM_RangeLockUncontended(benchmark::State& state) {
  ssd::RangeLockTable table(/*region_sectors=*/16);
  const auto sectors = static_cast<std::uint64_t>(state.range(0));
  Rng rng(17);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    // Distinct regions per iteration: spread over far more regions than
    // shards so consecutive tickets rarely share a shard map.
    const std::uint64_t base = rng.below(1 << 20) * 16;
    const bool exclusive = (seq & 1) != 0;
    auto t = table.acquire(seq++, SectorRange::of(base, sectors), exclusive);
    benchmark::DoNotOptimize(table.eligible(t));
    table.release(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeLockUncontended)->Arg(1)->Arg(64);

/// Same cycle against a region whose FIFO already holds Arg older shared
/// tickets — the contended-shard shape a same-LPN read storm produces. The
/// eligibility scan walks the queue, so this prices the depth the pipeline
/// tolerates before a dependent request parks.
void BM_RangeLockContendedShard(benchmark::State& state) {
  ssd::RangeLockTable table(/*region_sectors=*/16);
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  std::vector<ssd::RangeLockTable::Ticket> held;
  held.reserve(depth);
  const SectorRange hot = SectorRange::of(0, 16);
  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < depth; ++i) {
    held.push_back(table.acquire(seq++, hot, /*exclusive=*/false));
  }
  for (auto _ : state) {
    auto t = table.acquire(seq++, hot, /*exclusive=*/true);
    benchmark::DoNotOptimize(table.eligible(t));
    table.release(t);
  }
  for (auto& t : held) table.release(t);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeLockContendedShard)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

// Micro-benchmarks of the simulator engine itself: request service rates per
// scheme, mapping-directory touch costs, and GC throughput. These bound how
// fast the figure benches can replay traces.
#include <benchmark/benchmark.h>

#include "common.h"
#include "common/rng.h"
#include "sim/ssd.h"

namespace {

using namespace af;

ssd::SsdConfig micro_config() {
  auto config = ssd::SsdConfig::paper(8, 16);
  config.track_payload = false;
  return config;
}

void run_scheme_writes(benchmark::State& state, ftl::SchemeKind kind) {
  sim::Ssd ssd(micro_config(), kind);
  const auto spp = ssd.config().geometry.sectors_per_page();
  const auto pages = ssd.config().logical_pages();
  Rng rng(7);
  SimTime t = 0;
  for (auto _ : state) {
    const std::uint64_t p = rng.below(pages / 2);
    const bool across = rng.chance(0.25);
    SectorRange range =
        across && p > 0
            ? SectorRange::of(p * spp - rng.between(1, 7), 8)
            : SectorRange::of(p * spp, spp);
    ftl::IoRequest req{t, true, range};
    t += 10'000;
    benchmark::DoNotOptimize(ssd.submit(req));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_WriteRequests_PageFtl(benchmark::State& state) {
  run_scheme_writes(state, ftl::SchemeKind::kPageFtl);
}
void BM_WriteRequests_Mrsm(benchmark::State& state) {
  run_scheme_writes(state, ftl::SchemeKind::kMrsm);
}
void BM_WriteRequests_AcrossFtl(benchmark::State& state) {
  run_scheme_writes(state, ftl::SchemeKind::kAcrossFtl);
}
BENCHMARK(BM_WriteRequests_PageFtl);
BENCHMARK(BM_WriteRequests_Mrsm);
BENCHMARK(BM_WriteRequests_AcrossFtl);

void BM_ReadRequests_AcrossFtl(benchmark::State& state) {
  sim::Ssd ssd(micro_config(), ftl::SchemeKind::kAcrossFtl);
  const auto spp = ssd.config().geometry.sectors_per_page();
  Rng rng(9);
  SimTime t = 0;
  for (std::uint64_t p = 0; p < 512; ++p) {
    ssd.submit({t++, true, SectorRange::of(p * spp, spp)});
  }
  for (std::uint64_t b = 2; b < 500; b += 2) {
    ssd.submit({t++, true, SectorRange::of(b * spp - 4, 10)});
  }
  for (auto _ : state) {
    const std::uint64_t p = rng.below(500);
    benchmark::DoNotOptimize(
        ssd.submit({t, false, SectorRange::of(p * spp + 4, 10)}));
    t += 10'000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadRequests_AcrossFtl);

void BM_MapDirectoryTouch(benchmark::State& state) {
  sim::Ssd ssd(micro_config(), ftl::SchemeKind::kPageFtl);
  auto& engine = ssd.engine();
  Rng rng(11);
  const auto span = static_cast<std::uint64_t>(state.range(0));
  SimTime t = 0;
  for (auto _ : state) {
    t = engine.map_touch(rng.below(span), rng.chance(0.5), t);
  }
  state.SetItemsProcessed(state.iterations());
}
// Small span: pure CMT hits. Large span (the scheme's whole translation
// table, exceeding the cache): miss/evict traffic.
BENCHMARK(BM_MapDirectoryTouch)->Arg(4)->Arg(12);

void BM_GcChurn(benchmark::State& state) {
  sim::Ssd ssd(micro_config(), ftl::SchemeKind::kPageFtl);
  const auto spp = ssd.config().geometry.sectors_per_page();
  const auto footprint = ssd.config().logical_pages() / 3;
  Rng rng(13);
  SimTime t = 0;
  for (auto _ : state) {
    ssd.submit({t++, true, SectorRange::of(rng.below(footprint) * spp, spp)});
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["gc_runs"] =
      static_cast<double>(ssd.engine().gc_runs());
}
BENCHMARK(BM_GcChurn);

}  // namespace

// Ablation — DRAM map-cache budget vs map traffic (§4.2.4's mechanism).
// Sweeps the CMT size for MRSM and Across-FTL: MRSM's larger sub-page table
// falls out of cache first, which is where its flash map traffic (and read
// latency penalty) comes from.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto base_config = bench::device(8);
  bench::print_header("Ablation: map-cache budget (lun1)", base_config);
  const auto tr =
      bench::lun_trace(0, bench::addressable_sectors(base_config));

  Table table({"cache (B/logical page)", "scheme", "map writes", "map reads",
               "CMT hit rate", "read ms", "I/O time (s)"});
  constexpr ftl::SchemeKind kSchemes[] = {ftl::SchemeKind::kMrsm,
                                          ftl::SchemeKind::kAcrossFtl};
  for (std::uint64_t bytes_per_page : {1u, 2u, 3u, 4u, 8u}) {
    auto config = base_config;
    config.map_cache_bytes = config.logical_pages() * bytes_per_page;
    const auto results = bench::run_schemes(config, tr, kSchemes);
    for (const auto& result : results) {
      const double hits = static_cast<double>(result.map_cache_hits);
      const double total =
          hits + static_cast<double>(result.map_cache_misses);
      table.add_row(
          {Table::num(bytes_per_page), result.scheme,
           Table::num(result.stats.flash_ops(ssd::OpKind::kMapWrite)),
           Table::num(result.stats.flash_ops(ssd::OpKind::kMapRead)),
           Table::percent(total > 0 ? hits / total : 0.0),
           Table::num(result.read_latency_ms(), 3),
           Table::num(result.io_time_s, 1)});
    }
  }
  table.print(std::cout);
  return 0;
}

// Ablation — fail-slow severity x deadline policy sweep (DESIGN.md §11).
// Replays a read-mostly trace (the regime deadline scheduling targets) while
// two dies cycle through sick episodes at a growing latency multiplier, and
// prices each layer of the tail-latency machinery: GC/erase suspend-resume
// (preempt), hedged parity-reconstruct reads (hedge) and sick-die quarantine
// steering. The "off" rows double as the regression anchor: with a healthy
// array (x1) every policy must reproduce the off row's latencies — the
// machinery never fires without a stalled read to rescue.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"
#include "trace/synth.h"

int main() {
  using namespace af;
  auto base_config = bench::device(8);
  base_config.integrity.parity_stripe_width = 8;
  // Chip-rotating allocation in every row (hedging switches to it anyway —
  // reconstruct peers must live on other chips), so the policy deltas are
  // pure deadline machinery, not placement.
  base_config.pipeline.queue_depth = 2;
  bench::print_header("Ablation: fail-slow severity x deadline policy",
                      base_config);

  auto profile =
      trace::lun_profile(0, bench::knobs().requests);
  profile.name = "tail-readmostly";
  profile.write_ratio = 0.20;
  profile.mean_iat_ns = 3'000'000;
  const auto tr =
      trace::generate(profile, bench::addressable_sectors(base_config));
  // Lighter aging than the default replay: the sweep measures fail-slow
  // episodes, not GC-debt saturation.
  trace::ReplayOptions opts;
  opts.age_used = 0.60;

  struct Severity {
    const char* label;
    double multiplier;   // 1.0 = healthy array (episodes never arm)
    std::uint64_t episode_ops;
    std::uint64_t gap_ops;
  };
  const Severity severities[] = {
      {"healthy", 1.0, 0, 0},
      {"x6", 6.0, 600, 1200},
      {"x20", 20.0, 600, 1200},
  };
  struct Policy {
    const char* label;
    bool armed;    // read deadline + retry-free ladder
    bool preempt;  // GC/erase suspend-resume
    bool hedge;    // parity-reconstruct hedges
  };
  const Policy policies[] = {
      {"off", false, false, false},
      {"preempt", true, true, false},
      {"preempt+hedge", true, true, true},
  };

  std::printf("episodes: 2 dies, 600 sick / 1200 healthy ops; deadline 5 ms, "
              "hedge at 5 ms, quarantine after 40 misses\n\n");

  Table table({"scheme", "severity", "policy", "read p99 ms", "p999 ms",
               "suspends", "ceiling", "hedges", "wins", "misses",
               "quarantines"});
  for (const Severity& sev : severities) {
    auto sev_config = base_config;
    sev_config.faults.slow_multiplier = sev.multiplier;
    sev_config.faults.slow_episode_ops = sev.episode_ops;
    sev_config.faults.slow_gap_ops = sev.gap_ops;
    sev_config.faults.slow_dies = 2;
    for (const Policy& policy : policies) {
      auto config = sev_config;
      if (policy.armed) {
        config.deadline.read_deadline_us = 5000;
        config.deadline.max_retries = 0;
        config.deadline.preempt = policy.preempt;
        config.deadline.quarantine_misses = 40;
        if (policy.hedge) config.deadline.hedge_after_us = 5000;
      }
      for (auto kind : bench::all_schemes()) {
        // af_lint: allow(bench-run-schemes) — the sweep grid is the fan-out
        // axis here; per-cell replays stay serial so rows print in order.
        const auto result = trace::replay(config, kind, tr, opts);
        const auto reads = result.stats.all_reads();
        const auto& tail = result.stats.tail();
        table.add_row(
            {result.scheme, sev.label, policy.label,
             Table::num(reads.p99_ns() / 1e6, 2),
             Table::num(reads.p999_ns() / 1e6, 2),
             Table::num(tail.erase_suspends + tail.program_suspends),
             Table::num(tail.suspend_ceiling_hits),
             Table::num(tail.hedged_reads), Table::num(tail.hedge_wins),
             Table::num(tail.deadline_misses), Table::num(tail.quarantines)});
      }
    }
  }
  table.print(std::cout);
  return 0;
}

// Micro-benchmarks of the sector-interval algebra and request splitting —
// the per-request hot path of every FTL scheme.
#include <benchmark/benchmark.h>

#include "common/interval.h"
#include "common/rng.h"
#include "ftl/request.h"

namespace {

using namespace af;

void BM_IntervalIntersect(benchmark::State& state) {
  Rng rng(1);
  const SectorRange a{100, 130};
  for (auto _ : state) {
    const SectorRange b = SectorRange::of(rng.below(200), 1 + rng.below(40));
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_IntervalIntersect);

void BM_IntervalSubtract(benchmark::State& state) {
  Rng rng(2);
  SectorRange a{100, 130};
  for (auto _ : state) {
    const SectorRange b = SectorRange::of(rng.below(200), 1 + rng.below(40));
    benchmark::DoNotOptimize(a.subtract(b));
  }
}
BENCHMARK(BM_IntervalSubtract);

void BM_AcrossClassification(benchmark::State& state) {
  Rng rng(3);
  const PageGeometry geom{16};
  for (auto _ : state) {
    const SectorAddr off = rng.below(1 << 20);
    const SectorCount len = 1 + rng.below(32);
    benchmark::DoNotOptimize(geom.is_across_page(SectorRange::of(off, len)));
  }
}
BENCHMARK(BM_AcrossClassification);

void BM_RequestSplit(benchmark::State& state) {
  Rng rng(4);
  const PageGeometry geom{16};
  const auto span = static_cast<SectorCount>(state.range(0));
  for (auto _ : state) {
    const SectorAddr off = rng.below(1 << 20);
    benchmark::DoNotOptimize(ftl::split(SectorRange::of(off, span), geom));
  }
}
BENCHMARK(BM_RequestSplit)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

// Figure 4 — motivation: per-sector read latency (a), write latency (b) and
// flush count (c) of across-page requests vs. normal requests, on the
// baseline FTL. The paper reports across-page requests costing 1.61x (read),
// 1.49x (write) and 2.69x (flushes) per sector on average.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto config = bench::device(8);
  bench::print_header(
      "Figure 4: across-page vs normal request cost on the baseline FTL",
      config);
  const auto addressable = bench::addressable_sectors(config);

  Table table({"trace", "read lat/sector (across)", "(normal)", "ratio",
               "write lat/sector (across)", "(normal)", "ratio",
               "flush/sector (across)", "(normal)", "ratio"});
  double read_ratio_sum = 0, write_ratio_sum = 0, flush_ratio_sum = 0;

  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    const auto tr = bench::lun_trace(i, addressable);
    const auto result =
        trace::replay(config, ftl::SchemeKind::kPageFtl, tr);
    const auto& stats = result.stats;

    const auto& across_read = stats.requests(ssd::ReqClass::kAcrossRead);
    const auto& normal_read = stats.requests(ssd::ReqClass::kNormalRead);
    const auto& across_write = stats.requests(ssd::ReqClass::kAcrossWrite);
    const auto& normal_write = stats.requests(ssd::ReqClass::kNormalWrite);

    const double ar = across_read.latency_per_sector() / 1e3;   // us/sector
    const double nr = normal_read.latency_per_sector() / 1e3;
    const double aw = across_write.latency_per_sector() / 1e3;
    const double nw = normal_write.latency_per_sector() / 1e3;
    const double af_flush =
        static_cast<double>(stats.class_flushes(ssd::ReqClass::kAcrossWrite)) /
        static_cast<double>(across_write.total_sectors());
    const double nf_flush =
        static_cast<double>(stats.class_flushes(ssd::ReqClass::kNormalWrite)) /
        static_cast<double>(normal_write.total_sectors());

    read_ratio_sum += ar / nr;
    write_ratio_sum += aw / nw;
    flush_ratio_sum += af_flush / nf_flush;

    table.add_row({trace::table2_targets()[i].name,
                   Table::num(ar, 2) + "us", Table::num(nr, 2) + "us",
                   Table::num(ar / nr, 2), Table::num(aw, 2) + "us",
                   Table::num(nw, 2) + "us", Table::num(aw / nw, 2),
                   Table::num(af_flush, 3), Table::num(nf_flush, 3),
                   Table::num(af_flush / nf_flush, 2)});
  }
  table.print(std::cout);
  const double n = static_cast<double>(trace::table2_targets().size());
  std::printf("\naverage ratios (across/normal): read %.2fx, write %.2fx, "
              "flush %.2fx\npaper reports: read 1.61x, write 1.49x, flush "
              "2.69x — across-page requests cost more per sector on every "
              "axis.\n",
              read_ratio_sum / n, write_ratio_sum / n, flush_ratio_sum / n);
  return 0;
}

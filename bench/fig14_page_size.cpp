// Figure 14 — the page-size case study: overall I/O time (a) and erase count
// (b) for FTL / MRSM / Across-FTL under 4, 8 and 16 KiB flash pages. The
// paper's key claim: Across-FTL's advantage does not fade as pages grow —
// it tracks the across-page ratio of the workload (Figure 13).
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  bench::print_header("Figure 14: I/O time and erase count vs page size",
                      bench::device(8));
  // One shared trace per lun, sized for the smallest (4 KiB page) variant.
  const auto addressable = bench::addressable_sectors(bench::device(4));

  for (std::uint32_t page_kb : {4u, 8u, 16u}) {
    const auto config = bench::device(page_kb);
    Table io({"trace", "FTL I/O (ks)", "MRSM", "Across-FTL"});
    Table erase({"trace", "FTL erases", "MRSM", "Across-FTL"});
    double io_gain = 0, erase_gain = 0;

    for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
      const auto tr = bench::lun_trace(i, addressable);
      const auto results = bench::run_schemes(config, tr);
      const char* name = trace::table2_targets()[i].name;

      io.add_row({name, Table::num(results[0].io_time_s / 1e3, 3),
                  bench::normalised(results[1].io_time_s, results[0].io_time_s),
                  bench::normalised(results[2].io_time_s,
                                    results[0].io_time_s)});
      erase.add_row(
          {name, Table::num(results[0].stats.erases()),
           bench::normalised(static_cast<double>(results[1].stats.erases()),
                             static_cast<double>(results[0].stats.erases())),
           bench::normalised(static_cast<double>(results[2].stats.erases()),
                             static_cast<double>(results[0].stats.erases()))});
      io_gain += 1.0 - results[2].io_time_s / results[0].io_time_s;
      erase_gain += 1.0 - static_cast<double>(results[2].stats.erases()) /
                              static_cast<double>(results[0].stats.erases());
    }

    const double n = static_cast<double>(trace::table2_targets().size());
    std::printf("--- page size %u KiB ---\n(a) overall I/O time\n", page_kb);
    io.print(std::cout);
    std::printf("(b) erase count\n");
    erase.print(std::cout);
    std::printf("Across-FTL vs FTL: I/O time -%.1f%%, erases -%.1f%%\n\n",
                io_gain / n * 100, erase_gain / n * 100);
  }
  std::printf("the improvement does not decrease as the page size increases; "
              "it follows the workload's across-page ratio (Figure 13).\n");
  return 0;
}

// Ablation — checkpoint interval vs recovery scan cost. The checkpoint
// journal (DESIGN.md §7) trades no-crash write amplification for a bounded
// mount-time OOB scan. This bench prices both sides per scheme: (a) the
// off-path overhead of journaling every N accepted writes, and (b) what a
// mid-trace power-cut mount then costs (checkpoint pages read, blocks
// skipped vs scanned, total mount flash reads and simulated mount time).
// interval 0 = journaling off: zero overhead, but recovery must scan every
// written block.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto base_config = bench::device(8);
  bench::print_header("Ablation: checkpoint interval vs recovery cost (lun1)",
                      base_config);
  const auto tr = bench::lun_trace(0, bench::addressable_sectors(base_config));

  std::printf("interval = accepted write requests per journal entry "
              "(0 = journaling off); crash = seeded power cut mid-trace, "
              "then mount\n\n");
  Table table({"interval", "scheme", "io time s", "flash writes", "erases",
               "cut at op", "ckpt pages", "blks skipped", "blks scanned",
               "oob pages", "mount reads", "mount ms"});
  std::vector<double> baseline_io;  // interval-0 io_time per scheme
  for (const std::uint64_t interval : {0u, 4u, 16u, 64u}) {
    auto config = base_config;
    config.checkpoint.interval_requests = interval;

    // (a) no-crash overhead: the journal writes ride the normal program
    // path, so flash writes / erases / io time price them directly.
    const auto plain = bench::run_schemes(config, tr);

    // (b) crash + mount cost on the same device shape (payload tracking on —
    // the harness verifies oracle-equivalence as it goes).
    auto crash_config = config;
    crash_config.track_payload = true;
    const auto crashed =
        bench::run_crash_schemes(crash_config, tr, {/*at_op=*/0, /*seed=*/7});

    for (std::size_t s = 0; s < plain.size(); ++s) {
      const auto kind = bench::all_schemes()[s];
      const auto& result = plain[s];
      const auto& rec = crashed[s].recovery;
      if (interval == 0) baseline_io.push_back(result.io_time_s);
      table.add_row(
          {Table::num(interval), ftl::to_string(kind),
           Table::num(result.io_time_s, 3) + " (" +
               bench::normalised(result.io_time_s, baseline_io[s]) + "x)",
           Table::num(result.stats.flash_writes()),
           Table::num(result.stats.erases()),
           Table::num(crashed[s].cut_at_op), Table::num(rec.checkpoint_pages_read),
           Table::num(rec.blocks_skipped), Table::num(rec.blocks_scanned),
           Table::num(rec.pages_scanned), Table::num(rec.flash_reads),
           Table::num(static_cast<double>(rec.mount_time_ns) / 1e6, 2)});
    }
  }
  table.print(std::cout);
  std::printf("\nshorter intervals skip more blocks at mount (the journal_seq "
              "horizon moves forward) at the price of journal programs on the "
              "no-crash path; interval 0 pays nothing up front and everything "
              "at mount.\n");
  return 0;
}

// Ablation — which Across-FTL mechanism buys what? Runs lun1 with each
// design choice toggled off:
//   full        — the paper's scheme (remap + AMerge + shrink)
//   no-shrink   — partial overwrites of an area always roll back
//   no-amerge   — overlapping updates always roll back (no merging)
//   no-remap    — across writes serviced baseline-style (table kept)
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto base_config = bench::device(8);
  bench::print_header("Ablation: Across-FTL design choices (lun1)",
                      base_config);
  const auto tr =
      bench::lun_trace(0, bench::addressable_sectors(base_config));

  struct Variant {
    const char* name;
    ssd::SsdConfig::AcrossPolicy policy;
  };
  const Variant variants[] = {
      {"full", {true, true, true}},
      {"no-shrink", {true, true, false}},
      {"no-amerge", {true, false, true}},
      {"no-remap", {false, true, true}},
  };

  Table table({"variant", "I/O time (s)", "flash writes", "erases",
               "rollbacks", "AMerge", "shrinks", "write ms"});
  for (const auto& variant : variants) {
    auto config = base_config;
    config.across = variant.policy;
    const auto result = trace::replay(config, ftl::SchemeKind::kAcrossFtl, tr);
    const auto& across = result.stats.across();
    table.add_row(
        {variant.name, Table::num(result.io_time_s, 1),
         Table::num(result.stats.flash_writes()),
         Table::num(result.stats.erases()),
         Table::num(across.rollbacks),
         Table::num(across.profitable_amerge + across.unprofitable_amerge),
         Table::num(across.area_shrinks),
         Table::num(result.write_latency_ms(), 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nreading the table: 'no-remap' is the baseline-shaped upper bound; "
      "the gap to 'full' is the paper's contribution. 'no-amerge' shows the "
      "merge policy absorbing update traffic that would otherwise roll back; "
      "'no-shrink' shows the metadata-only shrink avoiding rollback I/O on "
      "partial overwrites.\n");
  return 0;
}

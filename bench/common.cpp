#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/slot_vector.h"
#include "common/thread_pool.h"
#include "trace/profiles.h"
#include "trace/synth.h"

namespace af::bench {

const Knobs& knobs() {
  static const Knobs kKnobs = [] {
    Knobs k;
    // getenv runs once here, before any ThreadPool exists.
    if (const char* reqs =
            std::getenv("ACROSS_FTL_BENCH_REQS")) {  // NOLINT(concurrency-mt-unsafe)
      k.requests = std::strtoull(reqs, nullptr, 10);
    }
    if (const char* blocks =
            std::getenv("ACROSS_FTL_BENCH_BLOCKS")) {  // NOLINT(concurrency-mt-unsafe)
      k.blocks_per_plane =
          static_cast<std::uint32_t>(std::strtoul(blocks, nullptr, 10));
    }
    k.jobs = std::max(1u, std::thread::hardware_concurrency());
    if (const char* jobs =
            std::getenv("ACROSS_FTL_BENCH_JOBS")) {  // NOLINT(concurrency-mt-unsafe)
      k.jobs = std::max(1u, static_cast<unsigned>(
                                std::strtoul(jobs, nullptr, 10)));
    }
    return k;
  }();
  return kKnobs;
}

ssd::SsdConfig device(std::uint32_t page_kb) {
  return ssd::SsdConfig::paper(page_kb, knobs().blocks_per_plane);
}

std::uint64_t addressable_sectors(const ssd::SsdConfig& config) {
  return static_cast<std::uint64_t>(
             0.398 * static_cast<double>(config.geometry.total_pages())) *
         config.geometry.sectors_per_page();
}

trace::Trace lun_trace(std::size_t idx, std::uint64_t addressable) {
  return trace::generate(trace::lun_profile(idx, knobs().requests),
                         addressable);
}

std::vector<trace::ReplayResult> run_schemes(const ssd::SsdConfig& config,
                                             const trace::Trace& tr,
                                             unsigned jobs) {
  return run_schemes(config, tr, all_schemes(), jobs);
}

std::vector<trace::ReplayResult> run_schemes(
    const ssd::SsdConfig& config, const trace::Trace& tr,
    std::span<const ftl::SchemeKind> schemes, unsigned jobs) {
  if (jobs == 0) jobs = knobs().jobs;
  // Each replay owns a fresh device and writes only its own result slot
  // (enforced by SlotVector's claim flags), so the fan-out is free of shared
  // state and the output is independent of the thread count (jobs=1 runs the
  // exact sequential loop).
  SlotVector<trace::ReplayResult> slots(schemes.size());
  parallel_for(schemes.size(), jobs, [&](std::uint64_t i) {
    slots.put(i, trace::replay(config, schemes[i], tr));
  });
  return std::move(slots).take();
}

std::vector<trace::CrashReplayResult> run_crash_schemes(
    const ssd::SsdConfig& config, const trace::Trace& tr,
    const trace::PowerCutSpec& spec, unsigned jobs) {
  if (jobs == 0) jobs = knobs().jobs;
  const auto& schemes = all_schemes();
  // Same isolation argument as run_schemes: every crash replay owns a fresh
  // device (and its recovered successor), so the fan-out cannot couple the
  // per-scheme results and the jobs knob never changes a counter.
  SlotVector<trace::CrashReplayResult> slots(schemes.size());
  parallel_for(schemes.size(), jobs, [&](std::uint64_t i) {
    slots.put(i, trace::replay_with_power_cut(config, schemes[i], tr, spec));
  });
  return std::move(slots).take();
}

std::vector<std::vector<trace::ReplayResult>> replay_grid(
    const ssd::SsdConfig& config, const std::vector<trace::Trace>& traces,
    unsigned jobs) {
  if (jobs == 0) jobs = knobs().jobs;
  const auto& schemes = all_schemes();
  SlotVector<trace::ReplayResult> slots(traces.size() * schemes.size());
  parallel_for(traces.size() * schemes.size(), jobs, [&](std::uint64_t cell) {
    const std::uint64_t t = cell / schemes.size();
    const std::uint64_t s = cell % schemes.size();
    slots.put(cell, trace::replay(config, schemes[s], traces[t]));
  });
  std::vector<trace::ReplayResult> flat = std::move(slots).take();
  std::vector<std::vector<trace::ReplayResult>> results(traces.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    results[t].assign(std::make_move_iterator(flat.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  t * schemes.size())),
                      std::make_move_iterator(flat.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  (t + 1) * schemes.size())));
  }
  return results;
}

void print_header(const std::string& title, const ssd::SsdConfig& config) {
  const auto& geom = config.geometry;
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "device: %llu blocks x %u pages x %u KiB page = %.1f GiB "
      "(ch=%u chips=%u dies=%u planes=%u), GC threshold %.0f%%\n",
      static_cast<unsigned long long>(geom.total_blocks()),
      geom.pages_per_block, geom.page_bytes / 1024,
      static_cast<double>(geom.capacity_bytes()) / (1ull << 30), geom.channels,
      geom.chips_per_channel, geom.dies_per_chip, geom.planes_per_die,
      config.gc_threshold * 100);
  std::printf(
      "timing: read %.3f ms, program %.3f ms, erase %.1f ms, cache access "
      "%.3f ms (Table 1)\n",
      static_cast<double>(config.timing.read_ns) / 1e6,
      static_cast<double>(config.timing.program_ns) / 1e6,
      static_cast<double>(config.timing.erase_ns) / 1e6,
      static_cast<double>(config.timing.dram_access_ns) / 1e6);
  std::printf("scale: %llu requests/trace, %u blocks/plane "
              "(ACROSS_FTL_BENCH_REQS / ACROSS_FTL_BENCH_BLOCKS to change)\n\n",
              static_cast<unsigned long long>(knobs().requests),
              knobs().blocks_per_plane);
}

std::string normalised(double value, double baseline) {
  if (baseline == 0) return "n/a";
  return Table::num(value / baseline, 3);
}

}  // namespace af::bench

// Extension study — would a DRAM write buffer have absorbed the across-page
// problem instead? Replays lun1 through a write-back buffer of varying size
// in front of the baseline FTL and Across-FTL. Small (realistic) buffers
// leave most across-page traffic intact — re-alignment at the FTL keeps its
// value; only an unrealistically large buffer erodes it.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "sim/write_buffer.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto config = bench::device(8);
  bench::print_header("Extension: DRAM write buffer vs across-page traffic "
                      "(lun1)",
                      config);
  const auto tr = bench::lun_trace(0, bench::addressable_sectors(config));

  Table table({"buffer", "scheme", "flash writes", "erases",
               "across areas", "buffer flushes", "coalesced KB",
               "dropped sectors"});
  for (std::uint64_t capacity_kb : {0u, 256u, 2048u, 16384u}) {
    for (auto kind : {ftl::SchemeKind::kPageFtl, ftl::SchemeKind::kAcrossFtl}) {
      sim::Ssd ssd(config, kind);
      ssd.age(0.9, 0.398, 42);
      ssd.reset_measurement();
      sim::BufferedSsd buffer(ssd, capacity_kb * 2);  // KB → sectors
      for (const auto& rec : tr) {
        // Fault-free config: completions only matter via the stats tallies.
        (void)buffer.submit({rec.timestamp, rec.write, rec.range()});
      }
      buffer.flush_all(tr.empty() ? 0 : tr.back().timestamp + 1);
      // dropped_flush_sectors counts acknowledged-then-lost data (flushes a
      // degraded read-only device refused). Any non-zero value here is a
      // durability hole the buffer opened — never hide it.
      table.add_row(
          {capacity_kb == 0 ? "none" : Table::num(capacity_kb) + " KB",
           ftl::to_string(kind), Table::num(ssd.stats().flash_writes()),
           Table::num(ssd.stats().erases()),
           Table::num(ssd.stats().across().areas_created),
           Table::num(buffer.flushes()),
           Table::num(buffer.coalesced_sectors() / 2),
           Table::num(buffer.dropped_flush_sectors())});
    }
  }
  table.print(std::cout);
  std::printf("\nacross-page areas still form behind realistic buffer sizes; "
              "flash-write savings from re-alignment persist until the "
              "buffer approaches the working-set size.\n");

  // Power-cut exposure: the same buffers, but power dies after the last
  // request instead of a clean shutdown — everything still buffered is
  // acknowledged-then-lost. The FTL's own OOB/checkpoint recovery cannot help
  // here; these writes never reached flash. This is the durability price of
  // buffering that the flush table above never shows.
  Table cut({"buffer", "scheme", "resident sectors", "lost sectors",
             "lost / written %"});
  std::uint64_t written_sectors = 0;
  for (const auto& rec : tr) {
    written_sectors += rec.write ? rec.range().size() : 0;
  }
  for (std::uint64_t capacity_kb : {256u, 2048u, 16384u}) {
    for (auto kind : {ftl::SchemeKind::kPageFtl, ftl::SchemeKind::kAcrossFtl}) {
      sim::Ssd ssd(config, kind);
      ssd.age(0.9, 0.398, 42);
      ssd.reset_measurement();
      sim::BufferedSsd buffer(ssd, capacity_kb * 2);
      for (const auto& rec : tr) {
        (void)buffer.submit({rec.timestamp, rec.write, rec.range()});
      }
      const std::uint64_t resident = buffer.buffered_sectors();
      const std::uint64_t lost = buffer.drop_all();
      cut.add_row({Table::num(capacity_kb) + " KB", ftl::to_string(kind),
                   Table::num(resident), Table::num(lost),
                   written_sectors == 0
                       ? "n/a"
                       : Table::num(100.0 * static_cast<double>(lost) /
                                        static_cast<double>(written_sectors),
                                    3)});
    }
  }
  std::printf("\npower cut instead of clean shutdown (dropped sectors = "
              "acknowledged writes lost in DRAM):\n");
  cut.print(std::cout);
  return 0;
}

// Figure 8 — Across-FTL across-page statistics: (a) ARollback ratio
// (paper: 3.9% average), (b) component distribution of across-page writes
// (Direct-write / Profitable-AMerge / Unprofitable-AMerge; paper: only 8.9%
// unprofitable). Also prints the §4.2.1 merged-read share (paper: 0.12% of
// total flash reads).
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto config = bench::device(8);
  bench::print_header("Figure 8: across-page access statistics (Across-FTL)",
                      config);
  const auto addressable = bench::addressable_sectors(config);

  Table table({"trace", "ARollback ratio", "Direct-write", "Profitable-AMerge",
               "Unprofitable-AMerge", "merged-read reads / total reads"});
  double rollback_sum = 0, unprofit_sum = 0, merged_sum = 0;

  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    const auto tr = bench::lun_trace(i, addressable);
    const auto result =
        trace::replay(config, ftl::SchemeKind::kAcrossFtl, tr);
    const auto& across = result.stats.across();

    const double rollback_ratio =
        across.areas_created
            ? static_cast<double>(across.rollbacks) /
                  static_cast<double>(across.areas_created)
            : 0.0;
    const double total_writes =
        static_cast<double>(across.total_across_writes());
    const double direct = static_cast<double>(across.direct_writes) / total_writes;
    const double profit =
        static_cast<double>(across.profitable_amerge) / total_writes;
    const double unprofit =
        static_cast<double>(across.unprofitable_amerge) / total_writes;
    const double merged_share =
        static_cast<double>(across.merged_read_flash_reads) /
        static_cast<double>(result.stats.flash_reads());

    rollback_sum += rollback_ratio;
    unprofit_sum += unprofit;
    merged_sum += merged_share;

    table.add_row({trace::table2_targets()[i].name,
                   Table::percent(rollback_ratio),
                   Table::percent(direct), Table::percent(profit),
                   Table::percent(unprofit), Table::percent(merged_share, 3)});
  }
  table.print(std::cout);
  const double n = static_cast<double>(trace::table2_targets().size());
  std::printf("\naverages: ARollback ratio %.1f%% (paper 3.9%%), "
              "Unprofitable-AMerge %.1f%% (paper 8.9%%), merged-read flash "
              "reads %.3f%% of reads (paper 0.12%%).\n",
              rollback_sum / n * 100, unprofit_sum / n * 100,
              merged_sum / n * 100);
  return 0;
}

// Figure 13 — across-page access ratio under 4/8/16 KiB flash pages: larger
// pages absorb more small requests, so the ratio falls monotonically.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/characterize.h"
#include "trace/profiles.h"

int main() {
  using namespace af;
  const auto config8 = bench::device(8);
  bench::print_header("Figure 13: across-page ratio vs flash page size",
                      config8);
  // One shared trace per lun (sector-granular, page-size independent),
  // confined to the smallest device variant so every page size can replay it.
  const auto addressable = bench::addressable_sectors(bench::device(4));

  Table table({"trace", "4KB", "8KB", "16KB"});
  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    const auto tr = bench::lun_trace(i, addressable);
    std::vector<std::string> row{trace::table2_targets()[i].name};
    double prev = 1.0;
    bool monotone = true;
    for (std::uint32_t page_kb : {4u, 8u, 16u}) {
      const auto stats = trace::characterize(tr, page_kb * 2);
      monotone = monotone && stats.across_ratio <= prev;
      prev = stats.across_ratio;
      row.push_back(Table::percent(stats.across_ratio));
    }
    row[0] += monotone ? "" : " (!)";
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nthe ratio keeps decreasing as the flash page grows — a "
              "larger page holds more data and refrains from across-page "
              "access (paper §4.3).\n");
  return 0;
}

// Ablation — noisy-neighbor containment across QoS policies (DESIGN.md §12).
// A read-mostly "victim" tenant shares the device with a write-heavy "noisy"
// tenant, mixed deterministically by trace::mix, and each layer of the
// multi-tenant machinery is priced: per-tenant write streams (tenant-
// homogeneous blocks keep the victim's pages out of GC churn), token-bucket
// admission with GC-debt surcharge (the noisy tenant pays for the relocation
// traffic it causes) and per-tenant capacity shares. The "solo" row is the
// victim alone on a default single-tenant device; the "solo-mixed" row routes
// the same trace through the mixer + tenant-tagging path with QoS off and
// must reproduce the solo row's numbers exactly — the zero-default
// bit-identity anchor.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "trace/mixer.h"
#include "trace/profiles.h"
#include "trace/synth.h"

int main() {
  using namespace af;
  auto base_config = bench::device(8);
  bench::print_header("Ablation: noisy neighbor x QoS policy", base_config);
  const auto addressable = bench::addressable_sectors(base_config);

  // Victim: read-mostly, moderate arrival rate — the tenant whose tail the
  // policies protect.
  auto victim_profile = trace::lun_profile(0, bench::knobs().requests);
  victim_profile.name = "qos-victim";
  victim_profile.write_ratio = 0.20;
  victim_profile.mean_iat_ns = 3'000'000;
  victim_profile.footprint_fraction = 0.5;
  const auto victim_tr = trace::generate(victim_profile, addressable);

  // Noisy neighbor: write-heavy, an order of magnitude faster, hammering a
  // small hot footprint — its blocks invalidate quickly and become GC
  // victims while the run is still measuring.
  auto noisy_profile = trace::lun_profile(1, bench::knobs().requests);
  noisy_profile.name = "qos-noisy";
  noisy_profile.write_ratio = 0.90;
  noisy_profile.mean_iat_ns = 300'000;
  noisy_profile.footprint_fraction = 0.08;
  noisy_profile.zipf_theta = 1.1;
  const auto noisy_tr = trace::generate(noisy_profile, addressable);

  const auto mixed = trace::mix({victim_tr, noisy_tr});

  // Deep enough that measurement writes keep GC live (the streams policy
  // only shows once relocation picks blocks written during the run), but
  // below the default so the off row is interference, not wear saturation.
  trace::ReplayOptions opts;
  opts.age_used = 0.85;

  struct Policy {
    const char* label;
    bool observe;  // qos.tenants = 2, accounting only
    bool streams;  // per-tenant write streams
    bool bucket;   // token bucket + GC-debt surcharge + capacity share
  };
  const Policy policies[] = {
      {"off", true, false, false},
      {"streams", true, true, false},
      {"streams+bucket", true, true, true},
  };

  std::printf("victim: read-mostly (20%% writes, 3 ms IAT); noisy: 90%% "
              "writes, 0.3 ms IAT on a hot 8%% footprint\n"
              "bucket: 8k sectors/s per tenant, burst 2k, GC-debt "
              "surcharge 16 sectors/page, 60%% capacity share\n\n");

  Table table({"scheme", "workload", "policy", "victim p99 ms",
               "victim mean ms", "victim WAF", "victim GC pages",
               "noisy p99 ms", "noisy WAF", "stalls", "rejected"});
  for (auto kind : bench::all_schemes()) {
    // Solo baseline and its mixer-path twin: single tenant, QoS off. The
    // two rows must be identical — the tenant plumbing defaults to a
    // byte-identical no-op.
    // af_lint: allow(bench-run-schemes) — the policy grid is the fan-out
    // axis here; per-cell replays stay serial so rows print in order.
    const auto solo = trace::replay(base_config, kind, victim_tr, opts);
    const auto solo_reads = solo.stats.all_reads();
    table.add_row({solo.scheme, "solo", "-",
                   Table::num(solo_reads.p99_ns() / 1e6, 2),
                   Table::num(solo_reads.latency().mean() / 1e6, 2), "-", "-",
                   "-", "-", "-", "-"});
    const auto solo_mixed_tr = trace::mix({victim_tr});
    // af_lint: allow(bench-run-schemes) — same serial grid as above.
    const auto solo_mixed = trace::replay(base_config, kind, solo_mixed_tr,
                                          opts);
    const auto solo_mixed_reads = solo_mixed.stats.all_reads();
    table.add_row({solo_mixed.scheme, "solo-mixed", "-",
                   Table::num(solo_mixed_reads.p99_ns() / 1e6, 2),
                   Table::num(solo_mixed_reads.latency().mean() / 1e6, 2),
                   "-", "-", "-", "-", "-", "-"});

    for (const Policy& policy : policies) {
      auto config = base_config;
      config.qos.tenants = 2;
      config.qos.per_tenant_streams = policy.streams;
      if (policy.bucket) {
        // The rate sits above the victim's write demand and well below both
        // the noisy tenant's ~66k sectors/s and the device's effective
        // program bandwidth, so only the neighbor is paced — and paced hard
        // enough that the device never builds a standing backlog.
        config.qos.rate_sectors_per_s = 8'000;
        config.qos.burst_sectors = 2'000;
        config.qos.gc_debt_sectors_per_page = 16;
        config.qos.capacity_share_millis = 600;
      }
      // af_lint: allow(bench-run-schemes) — same serial grid as above.
      const auto result = trace::replay(config, kind, mixed, opts);
      const auto& victim = result.stats.tenants()[0];
      const auto& noisy = result.stats.tenants()[1];
      table.add_row(
          {result.scheme, "mixed", policy.label,
           Table::num(victim.read_latency.p99_ns() / 1e6, 2),
           Table::num(victim.read_latency.latency().mean() / 1e6, 2),
           Table::num(victim.waf(), 2), Table::num(victim.gc_pages),
           Table::num(noisy.read_latency.p99_ns() / 1e6, 2),
           Table::num(noisy.waf(), 2), Table::num(noisy.throttle_stalls),
           Table::num(noisy.rejected_writes)});
    }
  }
  table.print(std::cout);
  return 0;
}

// Shared bench harness: device construction, trace materialisation and the
// scheme-grid replay every figure bench builds on.
//
// Runtime knobs (environment):
//   ACROSS_FTL_BENCH_REQS    requests per trace      (default 40000)
//   ACROSS_FTL_BENCH_BLOCKS  blocks per plane        (default 32)
//   ACROSS_FTL_BENCH_JOBS    parallel replay threads (default: hardware
//                            concurrency; 1 = fully sequential)
// Raise the first two to approach the paper's full-scale runs; the published
// traces have 633k-868k requests each (Table 2). Every replay runs on its own
// fresh device and results are collected in deterministic order, so the jobs
// knob changes wall-clock time only, never any simulated counter.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/table.h"
#include "ftl/scheme.h"
#include "ssd/config.h"
#include "trace/event.h"
#include "trace/replayer.h"

namespace af::bench {

struct Knobs {
  std::uint64_t requests = 40'000;
  std::uint32_t blocks_per_plane = 32;
  unsigned jobs = 1;
};

/// Reads the environment knobs (once).
const Knobs& knobs();

/// Table-1-shaped device at the bench scale.
ssd::SsdConfig device(std::uint32_t page_kb = 8);

/// Sector span of the aged live region — traces are confined to it so reads
/// find data after warm-up (§4.1 ages the device to 39.8% live).
std::uint64_t addressable_sectors(const ssd::SsdConfig& config);

/// Synthetic trace for Table-2 row `idx` at the bench request count.
trace::Trace lun_trace(std::size_t idx, std::uint64_t addressable);

inline const std::vector<ftl::SchemeKind>& all_schemes() {
  static const std::vector<ftl::SchemeKind> kSchemes = {
      ftl::SchemeKind::kPageFtl, ftl::SchemeKind::kMrsm,
      ftl::SchemeKind::kAcrossFtl};
  return kSchemes;
}

/// Replays `tr` on a fresh aged device per scheme, fanning the schemes out
/// over `jobs` threads (0 = use the knob). Result order is fixed
/// (all_schemes() order) regardless of the thread count.
std::vector<trace::ReplayResult> run_schemes(const ssd::SsdConfig& config,
                                             const trace::Trace& tr,
                                             unsigned jobs = 0);

/// Same fan-out over an explicit scheme subset; results follow `schemes`
/// order. This is the sanctioned way for a bench to replay several schemes —
/// af_lint flags multi-scheme loops that call trace::replay directly.
std::vector<trace::ReplayResult> run_schemes(
    const ssd::SsdConfig& config, const trace::Trace& tr,
    std::span<const ftl::SchemeKind> schemes, unsigned jobs = 0);

/// Crash-harness fan-out: one power-cut replay per scheme through
/// trace::replay_with_power_cut (cut, remount, oracle sweep, continuation).
/// Deterministic in (config, tr, spec) at any jobs value; results follow
/// all_schemes() order. Requires config.track_payload.
std::vector<trace::CrashReplayResult> run_crash_schemes(
    const ssd::SsdConfig& config, const trace::Trace& tr,
    const trace::PowerCutSpec& spec, unsigned jobs = 0);

/// Replays every (trace, scheme) cell of the grid in parallel; the figure
/// benches build on this so the whole grid shares one thread pool instead of
/// parallelising only within a trace. results[t][s] corresponds to
/// traces[t] under all_schemes()[s], independent of the thread count.
std::vector<std::vector<trace::ReplayResult>> replay_grid(
    const ssd::SsdConfig& config, const std::vector<trace::Trace>& traces,
    unsigned jobs = 0);

/// Prints the bench banner: experiment id + Table-1 style settings.
void print_header(const std::string& title, const ssd::SsdConfig& config);

/// "0.92" style normalisation against the baseline (first element).
std::string normalised(double value, double baseline);

}  // namespace af::bench

// Figure 2 — across-page access ratio of the 61 traces in the
// systor17-additional-01 folder (8 KiB pages).
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/characterize.h"
#include "trace/profiles.h"
#include "trace/synth.h"

int main() {
  using namespace af;
  const auto config = bench::device(8);
  bench::print_header(
      "Figure 2: across-page access ratio across the 61-trace collection",
      config);

  const auto profiles = trace::fig2_profiles(/*requests_each=*/20'000);
  const auto addressable = bench::addressable_sectors(config);

  Table table({"trace #", "across ratio", "bar"});
  double sum = 0, max_ratio = 0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto tr = trace::generate(profiles[i], addressable);
    const auto stats =
        trace::characterize(tr, config.geometry.sectors_per_page());
    sum += stats.across_ratio;
    max_ratio = std::max(max_ratio, stats.across_ratio);
    std::string bar(static_cast<std::size_t>(stats.across_ratio * 100), '#');
    table.add_row({Table::num(static_cast<std::uint64_t>(i + 1)),
                   Table::percent(stats.across_ratio), bar});
  }
  table.print(std::cout);
  std::printf("\nmean across ratio: %.1f%%, max: %.1f%% — a significant "
              "portion of VDI requests are across-page accesses (paper: most "
              "traces between ~5%% and ~35%%).\n",
              sum / static_cast<double>(profiles.size()) * 100,
              max_ratio * 100);
  return 0;
}

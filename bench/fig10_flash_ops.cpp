// Figure 10 — flash operation counts, split into Data and Map components,
// normalized to the baseline FTL. The paper reports: Across-FTL issues 15.9%
// fewer flash writes than FTL and 30.9% fewer than MRSM; map writes are
// 36.9% of MRSM's writes but only 2.6% of Across-FTL's; map reads are 34.4%
// vs 0.74% of reads; and Across-FTL removes 62.2% of update-triggered reads.
#include <cstdio>
#include <iostream>

#include "common.h"
#include "trace/profiles.h"

namespace {

std::uint64_t data_writes(const af::trace::ReplayResult& result) {
  using af::ssd::OpKind;
  return result.stats.flash_ops(OpKind::kDataWrite) +
         result.stats.flash_ops(OpKind::kGcWrite);
}
std::uint64_t data_reads(const af::trace::ReplayResult& result) {
  using af::ssd::OpKind;
  return result.stats.flash_ops(OpKind::kDataRead) +
         result.stats.flash_ops(OpKind::kGcRead);
}

}  // namespace

int main() {
  using namespace af;
  const auto config = bench::device(8);
  bench::print_header(
      "Figure 10: flash write/read counts, Data vs Map split (normalized)",
      config);
  const auto addressable = bench::addressable_sectors(config);

  Table writes({"trace", "FTL total (10K)", "FTL map%", "MRSM norm",
                "MRSM map%", "Across norm", "Across map%"});
  Table reads({"trace", "FTL total (10K)", "FTL map%", "MRSM norm",
               "MRSM map%", "Across norm", "Across map%"});
  double w_gain_ftl = 0, w_gain_mrsm = 0, r_gain_ftl = 0, r_gain_mrsm = 0;
  double mrsm_mapw = 0, across_mapw = 0, mrsm_mapr = 0, across_mapr = 0;
  double rmw_gain = 0;

  // Materialise the whole trace grid up front so every (trace, scheme) cell
  // replays concurrently; rows print in trace order regardless.
  std::vector<trace::Trace> traces;
  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    traces.push_back(bench::lun_trace(i, addressable));
  }
  const auto grid = bench::replay_grid(config, traces);

  for (std::size_t i = 0; i < trace::table2_targets().size(); ++i) {
    const auto& results = grid[i];
    const char* name = trace::table2_targets()[i].name;

    auto total_w = [](const trace::ReplayResult& r) {
      return static_cast<double>(r.stats.flash_writes());
    };
    auto total_r = [](const trace::ReplayResult& r) {
      return static_cast<double>(r.stats.flash_reads());
    };
    auto map_w_share = [&](const trace::ReplayResult& r) {
      return static_cast<double>(r.stats.flash_ops(ssd::OpKind::kMapWrite)) /
             total_w(r);
    };
    auto map_r_share = [&](const trace::ReplayResult& r) {
      return static_cast<double>(r.stats.flash_ops(ssd::OpKind::kMapRead)) /
             total_r(r);
    };

    writes.add_row({name, Table::num(total_w(results[0]) / 1e4, 2),
                    Table::percent(map_w_share(results[0])),
                    bench::normalised(total_w(results[1]), total_w(results[0])),
                    Table::percent(map_w_share(results[1])),
                    bench::normalised(total_w(results[2]), total_w(results[0])),
                    Table::percent(map_w_share(results[2]))});
    reads.add_row({name, Table::num(total_r(results[0]) / 1e4, 2),
                   Table::percent(map_r_share(results[0])),
                   bench::normalised(total_r(results[1]), total_r(results[0])),
                   Table::percent(map_r_share(results[1])),
                   bench::normalised(total_r(results[2]), total_r(results[0])),
                   Table::percent(map_r_share(results[2]))});

    w_gain_ftl += 1.0 - total_w(results[2]) / total_w(results[0]);
    w_gain_mrsm += 1.0 - total_w(results[2]) / total_w(results[1]);
    r_gain_ftl += 1.0 - total_r(results[2]) / total_r(results[0]);
    r_gain_mrsm += 1.0 - total_r(results[2]) / total_r(results[1]);
    mrsm_mapw += map_w_share(results[1]);
    across_mapw += map_w_share(results[2]);
    mrsm_mapr += map_r_share(results[1]);
    across_mapr += map_r_share(results[2]);
    rmw_gain += 1.0 - static_cast<double>(results[2].stats.rmw_reads()) /
                          static_cast<double>(results[0].stats.rmw_reads());
    (void)data_writes;
    (void)data_reads;
  }

  std::printf("(a) flash write count\n");
  writes.print(std::cout);
  std::printf("\n(b) flash read count\n");
  reads.print(std::cout);

  const double n = static_cast<double>(trace::table2_targets().size());
  std::printf(
      "\naverages — Across-FTL writes: %.1f%% fewer than FTL (paper 15.9%%), "
      "%.1f%% fewer than MRSM (paper 30.9%%)\n"
      "           Across-FTL reads:  %.1f%% fewer than FTL (paper 9.7%%), "
      "%.1f%% fewer than MRSM (paper 16.1%%)\n"
      "map-write share: MRSM %.1f%% (paper 36.9%%), Across-FTL %.1f%% (paper "
      "2.6%%)\n"
      "map-read share:  MRSM %.1f%% (paper 34.4%%), Across-FTL %.2f%% (paper "
      "0.74%%)\n"
      "update-triggered (RMW) reads removed by Across-FTL vs FTL: %.1f%% "
      "(paper 62.2%%)\n",
      w_gain_ftl / n * 100, w_gain_mrsm / n * 100, r_gain_ftl / n * 100,
      r_gain_mrsm / n * 100, mrsm_mapw / n * 100, across_mapw / n * 100,
      mrsm_mapr / n * 100, across_mapr / n * 100, rmw_gain / n * 100);
  return 0;
}

// Wall-clock perf harness — the simulator's own speed, not the paper's
// metrics. Measures (a) trace-replay throughput per scheme in simulated
// requests per wall-clock second, with the engine's GC victim-selection work
// counters, and (b) a victim-selection microbenchmark pitting the legacy
// full-scan path (pick_victim_scan, kept as the reference implementation)
// against the incremental weight-indexed path (pick_victim) on one plane.
// Emits machine-readable BENCH_perf.json so the perf trajectory is tracked
// across PRs.
//
// Knobs: ACROSS_FTL_BENCH_REQS / ACROSS_FTL_BENCH_BLOCKS as everywhere, plus
//   ACROSS_FTL_PERF_JSON  output path (default BENCH_perf.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "common/rng.h"
#include "ssd/engine.h"
#include "trace/profiles.h"

namespace {

using namespace af;

// af_lint: allow-file(no-nondeterminism) — this harness measures real
// wall-clock time by design; only the simulated counters must stay
// deterministic.
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ReplayRow {
  std::string scheme;
  double wall_s = 0;
  std::uint64_t requests = 0;
  trace::ReplayResult result;
};

struct VictimRow {
  std::uint32_t blocks = 0;
  std::uint64_t picks = 0;
  double scan_ns_per_pick = 0;
  double indexed_ns_per_pick = 0;

  [[nodiscard]] double speedup() const {
    return indexed_ns_per_pick > 0 ? scan_ns_per_pick / indexed_ns_per_pick
                                   : 0;
  }
};

/// One-plane engine filled below the GC trigger, with every other page
/// invalidated — a GC-heavy weight distribution without GC interference.
/// Returns the engine plus the valid pages left to invalidate while timing.
std::unique_ptr<ssd::Engine> victim_bench_engine(std::uint32_t blocks,
                                                 std::vector<Ppn>* leftover) {
  auto config = ssd::SsdConfig::paper(8, blocks);
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 1;
  config.geometry.dies_per_chip = 1;
  config.geometry.planes_per_die = 1;
  config.track_payload = false;
  auto engine = std::make_unique<ssd::Engine>(config);
  // A constant-full oracle forces the legacy path to rescan every page of
  // every block per pick — the O(blocks x pages) shape this PR removes.
  engine->set_victim_weight(
      [](Ppn) { return ssd::Engine::kFullPageWeight; });

  const std::uint32_t ppb = config.geometry.pages_per_block;
  const std::uint32_t fill =
      blocks - engine->plane_trigger_blocks(0) - 4;  // stay GC-free
  std::vector<Ppn> pages;
  pages.reserve(std::uint64_t{fill} * ppb);
  std::uint64_t lpn = 0;
  for (std::uint64_t i = 0; i < std::uint64_t{fill} * ppb; ++i) {
    pages.push_back(engine
                        ->flash_program(ssd::Stream::kData,
                                        nand::PageOwner::data(Lpn{lpn++}),
                                        ssd::OpKind::kDataWrite, 0)
                        .ppn);
  }
  Rng rng(21);
  leftover->clear();
  for (Ppn p : pages) {
    if (rng.chance(0.5)) {
      engine->invalidate(p);
    } else {
      leftover->push_back(p);
    }
  }
  return engine;
}

VictimRow victim_select_bench(std::uint32_t blocks, std::uint64_t max_picks) {
  VictimRow row;
  row.blocks = blocks;

  std::vector<Ppn> pages;
  std::uint64_t sink = 0;  // defeats dead-code elimination of the picks

  // Legacy full scan: identical preparation, one pick per invalidation.
  auto scan_engine = victim_bench_engine(blocks, &pages);
  row.picks = std::min<std::uint64_t>(max_picks, pages.size());
  double t0 = now_s();
  for (std::uint64_t i = 0; i < row.picks; ++i) {
    scan_engine->invalidate(pages[i]);
    sink += scan_engine->pick_victim_scan(0);
  }
  row.scan_ns_per_pick =
      (now_s() - t0) * 1e9 / static_cast<double>(row.picks);

  // Indexed path, same workload on a fresh identical engine.
  auto index_engine = victim_bench_engine(blocks, &pages);
  t0 = now_s();
  for (std::uint64_t i = 0; i < row.picks; ++i) {
    index_engine->invalidate(pages[i]);
    sink += index_engine->pick_victim(0);
  }
  row.indexed_ns_per_pick =
      (now_s() - t0) * 1e9 / static_cast<double>(row.picks);

  if (sink == 0xdeadbeef) std::printf("\n");  // keep `sink` observable
  return row;
}

void write_json(const std::string& path, const ssd::SsdConfig& config,
                const char* trace_name, const std::vector<ReplayRow>& rows,
                const std::vector<VictimRow>& victims) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_replay: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"requests\": %llu, \"blocks_per_plane\": %u, "
               "\"jobs\": %u, \"trace\": \"%s\"},\n",
               static_cast<unsigned long long>(bench::knobs().requests),
               config.geometry.blocks_per_plane, bench::knobs().jobs,
               trace_name);
  std::fprintf(f, "  \"replays\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto& perf = row.result.gc_perf;
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"wall_s\": %.3f, "
        "\"requests_per_s\": %.0f, \"gc_runs\": %llu, "
        "\"erases\": %llu, \"victim_picks\": %llu, "
        "\"heap_pushes\": %llu, \"heap_pops\": %llu, "
        "\"heap_rebuilds\": %llu, \"scan_picks\": %llu, "
        "\"scan_blocks\": %llu}%s\n",
        row.scheme.c_str(), row.wall_s,
        static_cast<double>(row.requests) / row.wall_s,
        static_cast<unsigned long long>(row.result.gc_runs),
        static_cast<unsigned long long>(row.result.stats.erases()),
        static_cast<unsigned long long>(perf.victim_picks),
        static_cast<unsigned long long>(perf.heap_pushes),
        static_cast<unsigned long long>(perf.heap_pops),
        static_cast<unsigned long long>(perf.heap_rebuilds),
        static_cast<unsigned long long>(perf.scan_picks),
        static_cast<unsigned long long>(perf.scan_blocks),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"victim_select\": [\n");
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const auto& v = victims[i];
    std::fprintf(f,
                 "    {\"blocks_per_plane\": %u, \"picks\": %llu, "
                 "\"scan_ns_per_pick\": %.1f, \"indexed_ns_per_pick\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 v.blocks, static_cast<unsigned long long>(v.picks),
                 v.scan_ns_per_pick, v.indexed_ns_per_pick, v.speedup(),
                 i + 1 < victims.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const auto config = bench::device(8);
  bench::print_header("perf_replay: simulator wall-clock performance", config);
  const auto addressable = bench::addressable_sectors(config);

  // (a) Replay throughput, one scheme at a time so each timing is clean.
  const char* trace_name = trace::table2_targets()[0].name;
  const auto tr = bench::lun_trace(0, addressable);
  std::vector<ReplayRow> rows;
  Table replays({"scheme", "wall (s)", "req/s", "GC runs", "victim picks",
                 "heap pushes", "heap pops"});
  for (auto kind : bench::all_schemes()) {
    ReplayRow row;
    row.requests = tr.size();
    const double t0 = now_s();
    // af_lint: allow(bench-run-schemes) — replays are timed one at a time on
    // purpose: fanning them out would overlap the wall-clock measurements.
    row.result = trace::replay(config, kind, tr);
    row.wall_s = now_s() - t0;
    row.scheme = row.result.scheme;
    replays.add_row(
        {row.scheme, Table::num(row.wall_s, 2),
         Table::num(static_cast<double>(row.requests) / row.wall_s, 0),
         Table::num(row.result.gc_runs), Table::num(row.result.gc_perf.victim_picks),
         Table::num(row.result.gc_perf.heap_pushes),
         Table::num(row.result.gc_perf.heap_pops)});
    rows.push_back(std::move(row));
  }
  std::printf("(a) trace-replay throughput (trace %s)\n", trace_name);
  replays.print(std::cout);

  // (b) Victim selection: legacy scan vs weight index, per pick.
  std::vector<VictimRow> victims;
  Table picks({"blocks/plane", "picks", "scan ns/pick", "indexed ns/pick",
               "speedup"});
  for (std::uint32_t blocks :
       {bench::knobs().blocks_per_plane, 8 * bench::knobs().blocks_per_plane}) {
    const auto v = victim_select_bench(blocks, 2000);
    picks.add_row({Table::num(std::uint64_t{v.blocks}), Table::num(v.picks),
                   Table::num(v.scan_ns_per_pick, 1),
                   Table::num(v.indexed_ns_per_pick, 1),
                   Table::num(v.speedup(), 2) + "x"});
    victims.push_back(v);
  }
  std::printf("\n(b) GC victim selection, one plane (scan = legacy path)\n");
  picks.print(std::cout);

  const char* json = std::getenv("ACROSS_FTL_PERF_JSON");
  write_json(json != nullptr ? json : "BENCH_perf.json", config, trace_name,
             rows, victims);
  return 0;
}

// Wall-clock perf harness — the simulator's own speed, not the paper's
// metrics. Measures (a) trace-replay throughput per scheme in simulated
// requests per wall-clock second, with the engine's GC victim-selection work
// counters, and (b) a victim-selection microbenchmark pitting the legacy
// full-scan path (pick_victim_scan, kept as the reference implementation)
// against the incremental weight-indexed path (pick_victim) on one plane.
// Emits machine-readable BENCH_perf.json so the perf trajectory is tracked
// across PRs.
//
// Also measures (c) the checkpoint journal's no-crash overhead (DESIGN.md §7)
// — the same replay with journaling on, so the off-path cost stays visible in
// the perf trajectory — and, with --power-cut-at-op N / --power-cut-seed S,
// (d) a crash-and-remount run per scheme: power dies at flash op N (0 = seed
// a uniform op from S), the device remounts from checkpoint + OOB scan, the
// oracle sweep verifies every sector, and the recovery economics land in the
// JSON.
//
// (e) prices the data-integrity machinery (DESIGN.md §8): the same replay
// under a retention-dominated bit-error ramp with background scrub and parity
// stripes on. --scrub-budget N (pages per tick, default 8) and
// --parity-width W (stripe width incl. parity, default 8) tune the policy;
// the scrub/retry/rebuild economics land in the JSON's "reliability" section.
//
// (f) sweeps the concurrent in-flight pipeline (DESIGN.md §10) over queue
// depths (--queue-depth N, repeatable; default 1, 4, 16): per scheme, the
// closed-loop simulated throughput (requests per simulated second,
// deterministic in config x trace x QD) plus service-latency percentiles.
// The QD=1 row is the serial baseline the speedups are measured against.
//
// Knobs: ACROSS_FTL_BENCH_REQS / ACROSS_FTL_BENCH_BLOCKS as everywhere, plus
//   ACROSS_FTL_PERF_JSON  output path (default BENCH_perf.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "common/rng.h"
#include "ssd/engine.h"
#include "trace/profiles.h"

namespace {

using namespace af;

// af_lint: allow-file(no-nondeterminism) — this harness measures real
// wall-clock time by design; only the simulated counters must stay
// deterministic.
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ReplayRow {
  std::string scheme;
  double wall_s = 0;
  std::uint64_t requests = 0;
  trace::ReplayResult result;
};

struct VictimRow {
  std::uint32_t blocks = 0;
  std::uint64_t picks = 0;
  double scan_ns_per_pick = 0;
  double indexed_ns_per_pick = 0;

  [[nodiscard]] double speedup() const {
    return indexed_ns_per_pick > 0 ? scan_ns_per_pick / indexed_ns_per_pick
                                   : 0;
  }
};

/// One-plane engine filled below the GC trigger, with every other page
/// invalidated — a GC-heavy weight distribution without GC interference.
/// Returns the engine plus the valid pages left to invalidate while timing.
std::unique_ptr<ssd::Engine> victim_bench_engine(std::uint32_t blocks,
                                                 std::vector<Ppn>* leftover) {
  auto config = ssd::SsdConfig::paper(8, blocks);
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 1;
  config.geometry.dies_per_chip = 1;
  config.geometry.planes_per_die = 1;
  config.track_payload = false;
  auto engine = std::make_unique<ssd::Engine>(config);
  // A constant-full oracle forces the legacy path to rescan every page of
  // every block per pick — the O(blocks x pages) shape this PR removes.
  engine->set_victim_weight(
      [](Ppn) { return ssd::Engine::kFullPageWeight; });

  const std::uint32_t ppb = config.geometry.pages_per_block;
  const std::uint32_t fill =
      blocks - engine->plane_trigger_blocks(0) - 4;  // stay GC-free
  std::vector<Ppn> pages;
  pages.reserve(std::uint64_t{fill} * ppb);
  std::uint64_t lpn = 0;
  for (std::uint64_t i = 0; i < std::uint64_t{fill} * ppb; ++i) {
    pages.push_back(engine
                        ->flash_program(ssd::Stream::kData,
                                        nand::PageOwner::data(Lpn{lpn++}),
                                        ssd::OpKind::kDataWrite, 0)
                        .ppn);
  }
  Rng rng(21);
  leftover->clear();
  for (Ppn p : pages) {
    if (rng.chance(0.5)) {
      engine->invalidate(p);
    } else {
      leftover->push_back(p);
    }
  }
  return engine;
}

VictimRow victim_select_bench(std::uint32_t blocks, std::uint64_t max_picks) {
  VictimRow row;
  row.blocks = blocks;

  std::vector<Ppn> pages;
  std::uint64_t sink = 0;  // defeats dead-code elimination of the picks

  // Legacy full scan: identical preparation, one pick per invalidation.
  auto scan_engine = victim_bench_engine(blocks, &pages);
  row.picks = std::min<std::uint64_t>(max_picks, pages.size());
  double t0 = now_s();
  for (std::uint64_t i = 0; i < row.picks; ++i) {
    scan_engine->invalidate(pages[i]);
    sink += scan_engine->pick_victim_scan(0);
  }
  row.scan_ns_per_pick =
      (now_s() - t0) * 1e9 / static_cast<double>(row.picks);

  // Indexed path, same workload on a fresh identical engine.
  auto index_engine = victim_bench_engine(blocks, &pages);
  t0 = now_s();
  for (std::uint64_t i = 0; i < row.picks; ++i) {
    index_engine->invalidate(pages[i]);
    sink += index_engine->pick_victim(0);
  }
  row.indexed_ns_per_pick =
      (now_s() - t0) * 1e9 / static_cast<double>(row.picks);

  if (sink == 0xdeadbeef) std::printf("\n");  // keep `sink` observable
  return row;
}

struct CrashRow {
  std::string scheme;
  trace::CrashReplayResult result;
};

struct PipelineRow {
  std::string scheme;
  double wall_s = 0;
  trace::PipelineReplayResult result;
};

void write_json(const std::string& path, const ssd::SsdConfig& config,
                const char* trace_name, const std::vector<ReplayRow>& rows,
                const std::vector<ReplayRow>& ckpt_rows,
                std::uint64_t ckpt_interval,
                const std::vector<ReplayRow>& rel_rows,
                const ssd::SsdConfig& rel_config,
                const std::vector<VictimRow>& victims,
                const std::vector<PipelineRow>& pipeline_rows,
                const std::vector<CrashRow>& crashes,
                const trace::PowerCutSpec& spec) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_replay: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"requests\": %llu, \"blocks_per_plane\": %u, "
               "\"jobs\": %u, \"trace\": \"%s\"},\n",
               static_cast<unsigned long long>(bench::knobs().requests),
               config.geometry.blocks_per_plane, bench::knobs().jobs,
               trace_name);
  std::fprintf(f, "  \"replays\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto& perf = row.result.gc_perf;
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"wall_s\": %.3f, "
        "\"requests_per_s\": %.0f, \"gc_runs\": %llu, "
        "\"erases\": %llu, \"victim_picks\": %llu, "
        "\"heap_pushes\": %llu, \"heap_pops\": %llu, "
        "\"heap_rebuilds\": %llu, \"scan_picks\": %llu, "
        "\"scan_blocks\": %llu}%s\n",
        row.scheme.c_str(), row.wall_s,
        static_cast<double>(row.requests) / row.wall_s,
        static_cast<unsigned long long>(row.result.gc_runs),
        static_cast<unsigned long long>(row.result.stats.erases()),
        static_cast<unsigned long long>(perf.victim_picks),
        static_cast<unsigned long long>(perf.heap_pushes),
        static_cast<unsigned long long>(perf.heap_pops),
        static_cast<unsigned long long>(perf.heap_rebuilds),
        static_cast<unsigned long long>(perf.scan_picks),
        static_cast<unsigned long long>(perf.scan_blocks),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Off-path checkpointing overhead: same trace with the journal on. wall_s
  // is noisy; io_time_s and flash_writes are the deterministic signal.
  std::fprintf(f, "  \"checkpoint_overhead\": {\"interval_requests\": %llu, "
               "\"replays\": [\n",
               static_cast<unsigned long long>(ckpt_interval));
  for (std::size_t i = 0; i < ckpt_rows.size(); ++i) {
    const auto& row = ckpt_rows[i];
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"wall_s\": %.3f, \"io_time_s\": %.4f, "
        "\"base_io_time_s\": %.4f, \"flash_writes\": %llu, "
        "\"base_flash_writes\": %llu}%s\n",
        row.scheme.c_str(), row.wall_s, row.result.io_time_s,
        rows[i].result.io_time_s,
        static_cast<unsigned long long>(row.result.stats.flash_writes()),
        static_cast<unsigned long long>(rows[i].result.stats.flash_writes()),
        i + 1 < ckpt_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  // Integrity machinery economics: scrub/retry/rebuild counters are fully
  // deterministic; wall_s is the only noisy field.
  std::fprintf(f,
               "  \"reliability\": {\"scrub_interval_requests\": %llu, "
               "\"scrub_budget\": %u, \"scrub_watermark\": %.2f, "
               "\"parity_width\": %u, \"replays\": [\n",
               static_cast<unsigned long long>(
                   rel_config.integrity.scrub_interval_requests),
               rel_config.integrity.scrub_pages_per_tick,
               rel_config.integrity.scrub_ber_watermark,
               rel_config.integrity.parity_stripe_width);
  for (std::size_t i = 0; i < rel_rows.size(); ++i) {
    const auto& row = rel_rows[i];
    const auto& faults = row.result.stats.faults();
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"wall_s\": %.3f, \"io_time_s\": %.4f, "
        "\"base_io_time_s\": %.4f, \"scrub_scans\": %llu, "
        "\"scrub_relocations\": %llu, \"read_disturb_reads\": %llu, "
        "\"ecc_retry_steps\": %llu, \"ecc_retry_recoveries\": %llu, "
        "\"uncorrectable_reads\": %llu, \"parity_writes\": %llu, "
        "\"parity_rebuilds\": %llu, \"lost_pages\": %llu, "
        "\"lost_requests\": %llu}%s\n",
        row.scheme.c_str(), row.wall_s, row.result.io_time_s,
        rows[i].result.io_time_s,
        static_cast<unsigned long long>(faults.scrub_scans),
        static_cast<unsigned long long>(faults.scrub_relocations),
        static_cast<unsigned long long>(faults.read_disturb_reads),
        static_cast<unsigned long long>(faults.ecc_retry_steps),
        static_cast<unsigned long long>(faults.ecc_retry_recoveries),
        static_cast<unsigned long long>(faults.uncorrectable_reads),
        static_cast<unsigned long long>(faults.parity_writes),
        static_cast<unsigned long long>(faults.parity_rebuilds),
        static_cast<unsigned long long>(faults.lost_pages),
        static_cast<unsigned long long>(row.result.lost_requests),
        i + 1 < rel_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  if (!crashes.empty()) {
    std::fprintf(f,
                 "  \"power_cut\": {\"at_op\": %llu, \"seed\": %llu, "
                 "\"results\": [\n",
                 static_cast<unsigned long long>(spec.at_op),
                 static_cast<unsigned long long>(spec.seed));
    for (std::size_t i = 0; i < crashes.size(); ++i) {
      const auto& c = crashes[i].result;
      const auto& rec = c.recovery;
      std::fprintf(
          f,
          "    {\"scheme\": \"%s\", \"crashed\": %s, \"cut_at_op\": %llu, "
          "\"total_ops\": %llu, \"verified_sectors\": %llu, "
          "\"used_checkpoint\": %s, \"checkpoint_pages_read\": %llu, "
          "\"blocks_scanned\": %llu, \"blocks_skipped\": %llu, "
          "\"pages_scanned\": %llu, \"claims_applied\": %llu, "
          "\"torn_pages\": %llu, \"orphans_invalidated\": %llu, "
          "\"pages_revived\": %llu, \"mount_flash_reads\": %llu, "
          "\"mount_time_ms\": %.3f}%s\n",
          crashes[i].scheme.c_str(), c.crashed ? "true" : "false",
          static_cast<unsigned long long>(c.cut_at_op),
          static_cast<unsigned long long>(c.total_ops),
          static_cast<unsigned long long>(c.verified_sectors),
          rec.used_checkpoint ? "true" : "false",
          static_cast<unsigned long long>(rec.checkpoint_pages_read),
          static_cast<unsigned long long>(rec.blocks_scanned),
          static_cast<unsigned long long>(rec.blocks_skipped),
          static_cast<unsigned long long>(rec.pages_scanned),
          static_cast<unsigned long long>(rec.claims_applied),
          static_cast<unsigned long long>(rec.torn_pages),
          static_cast<unsigned long long>(rec.orphans_invalidated),
          static_cast<unsigned long long>(rec.pages_revived),
          static_cast<unsigned long long>(rec.flash_reads),
          static_cast<double>(rec.mount_time_ns) / 1e6,
          i + 1 < crashes.size() ? "," : "");
    }
    std::fprintf(f, "  ]},\n");
  }
  // Queue-depth sweep: every number except wall_s is simulated and
  // deterministic, so the perf gate can compare them across builds. Speedup
  // is against the same scheme's QD=1 row of this run.
  std::fprintf(f, "  \"pipeline\": [\n");
  for (std::size_t i = 0; i < pipeline_rows.size(); ++i) {
    const auto& row = pipeline_rows[i];
    const auto& r = row.result;
    double base = r.sim_requests_per_s();
    for (const auto& other : pipeline_rows) {
      if (other.scheme == row.scheme && other.result.queue_depth <= 1) {
        base = other.result.sim_requests_per_s();
      }
    }
    const auto reads = r.result.stats.all_reads();
    const auto writes = r.result.stats.all_writes();
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"queue_depth\": %u, \"workers\": %u, "
        "\"wall_s\": %.3f, \"requests\": %llu, \"makespan_ms\": %.3f, "
        "\"sim_requests_per_s\": %.1f, \"speedup_vs_qd1\": %.3f, "
        "\"read_p50_ms\": %.4f, \"read_p95_ms\": %.4f, "
        "\"read_p99_ms\": %.4f, \"read_max_ms\": %.4f, "
        "\"write_p50_ms\": %.4f, \"write_p95_ms\": %.4f, "
        "\"write_p99_ms\": %.4f, \"write_max_ms\": %.4f}%s\n",
        row.scheme.c_str(), r.queue_depth, r.workers, row.wall_s,
        static_cast<unsigned long long>(r.requests),
        static_cast<double>(r.makespan_ns) / 1e6, r.sim_requests_per_s(),
        base > 0 ? r.sim_requests_per_s() / base : 0.0, reads.p50_ns() / 1e6,
        reads.p95_ns() / 1e6, reads.p99_ns() / 1e6, reads.max_ns() / 1e6,
        writes.p50_ns() / 1e6, writes.p95_ns() / 1e6, writes.p99_ns() / 1e6,
        writes.max_ns() / 1e6,
        i + 1 < pipeline_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"victim_select\": [\n");
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const auto& v = victims[i];
    std::fprintf(f,
                 "    {\"blocks_per_plane\": %u, \"picks\": %llu, "
                 "\"scan_ns_per_pick\": %.1f, \"indexed_ns_per_pick\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 v.blocks, static_cast<unsigned long long>(v.picks),
                 v.scan_ns_per_pick, v.indexed_ns_per_pick, v.speedup(),
                 i + 1 < victims.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  trace::PowerCutSpec spec;
  bool power_cut = false;
  std::uint32_t scrub_budget = 8;
  std::uint32_t parity_width = 8;
  std::vector<std::uint32_t> queue_depths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--power-cut-at-op" && i + 1 < argc) {
      spec.at_op = std::strtoull(argv[++i], nullptr, 10);
      power_cut = true;
    } else if (arg == "--power-cut-seed" && i + 1 < argc) {
      spec.seed = std::strtoull(argv[++i], nullptr, 10);
      power_cut = true;
    } else if (arg == "--scrub-budget" && i + 1 < argc) {
      scrub_budget =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--parity-width" && i + 1 < argc) {
      parity_width =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      queue_depths.push_back(
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10)));
    } else {
      std::fprintf(stderr,
                   "usage: perf_replay [--power-cut-at-op N] "
                   "[--power-cut-seed S] [--scrub-budget P] "
                   "[--parity-width W] [--queue-depth D]...\n"
                   "  N = 1-based flash op to kill power at "
                   "(0 = sample uniformly from S)\n"
                   "  P = scrub pages per tick for section (e), default 8\n"
                   "  W = parity stripe width incl. parity, default 8 "
                   "(0/1 = parity off)\n"
                   "  D = queue depths for the pipeline sweep (f), "
                   "repeatable; default 1 4 16\n");
      return 2;
    }
  }
  if (queue_depths.empty()) queue_depths = {1, 4, 16};

  const auto config = bench::device(8);
  bench::print_header("perf_replay: simulator wall-clock performance", config);
  const auto addressable = bench::addressable_sectors(config);

  // (a) Replay throughput, one scheme at a time so each timing is clean.
  const char* trace_name = trace::table2_targets()[0].name;
  const auto tr = bench::lun_trace(0, addressable);
  std::vector<ReplayRow> rows;
  Table replays({"scheme", "wall (s)", "req/s", "GC runs", "victim picks",
                 "heap pushes", "heap pops"});
  for (auto kind : bench::all_schemes()) {
    ReplayRow row;
    row.requests = tr.size();
    const double t0 = now_s();
    // af_lint: allow(bench-run-schemes) — replays are timed one at a time on
    // purpose: fanning them out would overlap the wall-clock measurements.
    row.result = trace::replay(config, kind, tr);
    row.wall_s = now_s() - t0;
    row.scheme = row.result.scheme;
    replays.add_row(
        {row.scheme, Table::num(row.wall_s, 2),
         Table::num(static_cast<double>(row.requests) / row.wall_s, 0),
         Table::num(row.result.gc_runs), Table::num(row.result.gc_perf.victim_picks),
         Table::num(row.result.gc_perf.heap_pushes),
         Table::num(row.result.gc_perf.heap_pops)});
    rows.push_back(std::move(row));
  }
  std::printf("(a) trace-replay throughput (trace %s)\n", trace_name);
  replays.print(std::cout);

  // (c) Checkpointing overhead on the no-crash path: same replay with the
  // mapping journal on. Must stay within noise of the base rows.
  constexpr std::uint64_t kCkptInterval = 64;
  auto ckpt_config = config;
  ckpt_config.checkpoint.interval_requests = kCkptInterval;
  std::vector<ReplayRow> ckpt_rows;
  Table ckpt_table({"scheme", "wall (s)", "io time s", "base io s",
                    "flash writes", "base writes"});
  for (std::size_t s = 0; s < bench::all_schemes().size(); ++s) {
    ReplayRow row;
    row.requests = tr.size();
    const double t0 = now_s();
    // af_lint: allow(bench-run-schemes) — timed one at a time, same as (a).
    row.result = trace::replay(ckpt_config, bench::all_schemes()[s], tr);
    row.wall_s = now_s() - t0;
    row.scheme = row.result.scheme;
    ckpt_table.add_row(
        {row.scheme, Table::num(row.wall_s, 2),
         Table::num(row.result.io_time_s, 3),
         Table::num(rows[s].result.io_time_s, 3),
         Table::num(row.result.stats.flash_writes()),
         Table::num(rows[s].result.stats.flash_writes())});
    ckpt_rows.push_back(std::move(row));
  }
  std::printf("\n(c) checkpoint journal overhead (interval %llu requests)\n",
              static_cast<unsigned long long>(kCkptInterval));
  ckpt_table.print(std::cout);

  // (e) Reliability machinery: the same replay under a retention-dominated
  // bit-error ramp, background scrub and parity stripes on. All counters are
  // deterministic in (config, trace); wall_s is the only noisy column.
  auto rel_config = config;
  rel_config.faults.ber_base = 0.5;
  rel_config.faults.ber_retention = 0.08;
  rel_config.faults.ber_read_disturb = 0.02;
  rel_config.integrity.scrub_interval_requests = 64;
  rel_config.integrity.scrub_pages_per_tick = scrub_budget;
  rel_config.integrity.parity_stripe_width = parity_width;
  std::vector<ReplayRow> rel_rows;
  Table rel_table({"scheme", "wall (s)", "io time s", "base io s",
                   "scrub scans", "refreshed", "retry saves", "rebuilds",
                   "uncorrectable", "lost reqs"});
  for (std::size_t s = 0; s < bench::all_schemes().size(); ++s) {
    ReplayRow row;
    row.requests = tr.size();
    const double t0 = now_s();
    // af_lint: allow(bench-run-schemes) — timed one at a time, same as (a).
    row.result = trace::replay(rel_config, bench::all_schemes()[s], tr);
    row.wall_s = now_s() - t0;
    row.scheme = row.result.scheme;
    const auto& faults = row.result.stats.faults();
    rel_table.add_row(
        {row.scheme, Table::num(row.wall_s, 2),
         Table::num(row.result.io_time_s, 3),
         Table::num(rows[s].result.io_time_s, 3),
         Table::num(faults.scrub_scans), Table::num(faults.scrub_relocations),
         Table::num(faults.ecc_retry_recoveries),
         Table::num(faults.parity_rebuilds),
         Table::num(faults.uncorrectable_reads),
         Table::num(row.result.lost_requests)});
    rel_rows.push_back(std::move(row));
  }
  std::printf("\n(e) data-integrity machinery (scrub budget %u, parity "
              "width %u)\n",
              scrub_budget, parity_width);
  rel_table.print(std::cout);

  // (d) Optional crash-and-remount run (flags): recovery economics per
  // scheme, oracle-verified by the harness as it sweeps.
  std::vector<CrashRow> crashes;
  if (power_cut) {
    auto crash_config = ckpt_config;
    crash_config.track_payload = true;  // the sweep needs the oracle stamps
    const auto results = bench::run_crash_schemes(crash_config, tr, spec);
    Table crash_table({"scheme", "cut at op", "total ops", "ckpt", "scanned",
                       "skipped", "oob pages", "torn", "mount ms",
                       "verified sectors"});
    for (std::size_t s = 0; s < results.size(); ++s) {
      CrashRow row{ftl::to_string(bench::all_schemes()[s]), results[s]};
      const auto& rec = row.result.recovery;
      crash_table.add_row(
          {row.scheme, Table::num(row.result.cut_at_op),
           Table::num(row.result.total_ops),
           rec.used_checkpoint ? "yes" : "no", Table::num(rec.blocks_scanned),
           Table::num(rec.blocks_skipped), Table::num(rec.pages_scanned),
           Table::num(rec.torn_pages),
           Table::num(static_cast<double>(rec.mount_time_ns) / 1e6, 2),
           Table::num(row.result.verified_sectors)});
      crashes.push_back(std::move(row));
    }
    std::printf("\n(d) power cut at op %llu (seed %llu), remount + oracle "
                "sweep\n",
                static_cast<unsigned long long>(spec.at_op),
                static_cast<unsigned long long>(spec.seed));
    crash_table.print(std::cout);
  }

  // (f) Pipeline queue-depth sweep: closed-loop simulated throughput per
  // scheme. Simulated numbers are deterministic in (config, trace, QD);
  // wall_s is the only noisy column.
  std::vector<PipelineRow> pipeline_rows;
  Table qd_table({"scheme", "QD", "req/sim-s", "speedup", "read p50 ms",
                  "read p99 ms", "write p50 ms", "write p99 ms", "wall (s)"});
  for (auto kind : bench::all_schemes()) {
    double base = 0;
    for (std::uint32_t qd : queue_depths) {
      PipelineRow row;
      auto qd_config = config;
      qd_config.pipeline.queue_depth = qd;
      const double t0 = now_s();
      // af_lint: allow(bench-run-schemes) — timed one at a time, same as (a).
      row.result = trace::replay_pipeline(qd_config, kind, tr);
      row.wall_s = now_s() - t0;
      row.scheme = row.result.result.scheme;
      const double rps = row.result.sim_requests_per_s();
      if (qd <= 1 || base == 0) base = qd <= 1 ? rps : base;
      const auto reads = row.result.result.stats.all_reads();
      const auto writes = row.result.result.stats.all_writes();
      qd_table.add_row(
          {row.scheme, Table::num(std::uint64_t{qd}), Table::num(rps, 0),
           Table::num(base > 0 ? rps / base : 0.0, 2) + "x",
           Table::num(reads.p50_ns() / 1e6, 2),
           Table::num(reads.p99_ns() / 1e6, 2),
           Table::num(writes.p50_ns() / 1e6, 2),
           Table::num(writes.p99_ns() / 1e6, 2), Table::num(row.wall_s, 2)});
      pipeline_rows.push_back(std::move(row));
    }
  }
  std::printf("\n(f) pipeline queue-depth sweep (simulated closed-loop "
              "throughput)\n");
  qd_table.print(std::cout);

  // (b) Victim selection: legacy scan vs weight index, per pick.
  std::vector<VictimRow> victims;
  Table picks({"blocks/plane", "picks", "scan ns/pick", "indexed ns/pick",
               "speedup"});
  for (std::uint32_t blocks :
       {bench::knobs().blocks_per_plane, 8 * bench::knobs().blocks_per_plane}) {
    const auto v = victim_select_bench(blocks, 2000);
    picks.add_row({Table::num(std::uint64_t{v.blocks}), Table::num(v.picks),
                   Table::num(v.scan_ns_per_pick, 1),
                   Table::num(v.indexed_ns_per_pick, 1),
                   Table::num(v.speedup(), 2) + "x"});
    victims.push_back(v);
  }
  std::printf("\n(b) GC victim selection, one plane (scan = legacy path)\n");
  picks.print(std::cout);

  // getenv after the pool has been joined; no concurrent env access.
  const char* json =
      std::getenv("ACROSS_FTL_PERF_JSON");  // NOLINT(concurrency-mt-unsafe)
  write_json(json != nullptr ? json : "BENCH_perf.json", config, trace_name,
             rows, ckpt_rows, kCkptInterval, rel_rows, rel_config, victims,
             pipeline_rows, crashes, spec);
  return 0;
}

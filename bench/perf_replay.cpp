// Wall-clock perf harness — the simulator's own speed, not the paper's
// metrics. Measures (a) trace-replay throughput per scheme in simulated
// requests per wall-clock second, with the engine's GC victim-selection work
// counters, and (b) a victim-selection microbenchmark pitting the legacy
// full-scan path (pick_victim_scan, kept as the reference implementation)
// against the incremental weight-indexed path (pick_victim) on one plane.
// Emits machine-readable BENCH_perf.json so the perf trajectory is tracked
// across PRs.
//
// Also measures (c) the checkpoint journal's no-crash overhead (DESIGN.md §7)
// — the same replay with journaling on, so the off-path cost stays visible in
// the perf trajectory — and, with --power-cut-at-op N / --power-cut-seed S,
// (d) a crash-and-remount run per scheme: power dies at flash op N (0 = seed
// a uniform op from S), the device remounts from checkpoint + OOB scan, the
// oracle sweep verifies every sector, and the recovery economics land in the
// JSON.
//
// (e) prices the data-integrity machinery (DESIGN.md §8): the same replay
// under a retention-dominated bit-error ramp with background scrub and parity
// stripes on. --scrub-budget N (pages per tick, default 8) and
// --parity-width W (stripe width incl. parity, default 8) tune the policy;
// the scrub/retry/rebuild economics land in the JSON's "reliability" section.
//
// (f) sweeps the concurrent in-flight pipeline (DESIGN.md §10) over queue
// depths (--queue-depth N, repeatable; default 1, 4, 16): per scheme, the
// closed-loop simulated throughput (requests per simulated second,
// deterministic in config x trace x QD) plus service-latency percentiles.
// The QD=1 row is the serial baseline the speedups are measured against.
//
// (g) prices the tail-latency subsystem (DESIGN.md §11): the same trace with
// a fail-slow fault model injected (sick-die episodes at a latency
// multiplier), replayed per deadline policy — off / preempt /
// preempt+hedge — so the read p99/p999 reduction from GC suspend-resume and
// hedged parity-reconstruct reads lands in the JSON's "tail" section.
//
// (h, --open-loop) replays through the pipeline in open-loop arrival mode:
// requests issue at their trace timestamps instead of the closed-loop QD
// window, and queueing delay is reported separately from service time.
//
// (i) prices multi-tenant QoS isolation (DESIGN.md §12): a read-mostly
// victim mixed with a write-flooding noisy neighbor, replayed per policy —
// off / streams / streams+bucket — plus a solo and a solo-mixed row whose
// numbers must match exactly (the mixer + tenant plumbing with QoS off is a
// byte-identical no-op). Lands in the JSON's "qos" section.
//
// Knobs: ACROSS_FTL_BENCH_REQS / ACROSS_FTL_BENCH_BLOCKS as everywhere, plus
//   ACROSS_FTL_PERF_JSON  output path (default BENCH_perf.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "common/rng.h"
#include "ssd/engine.h"
#include "trace/mixer.h"
#include "trace/profiles.h"
#include "trace/synth.h"

namespace {

using namespace af;

// af_lint: allow-file(no-nondeterminism) — this harness measures real
// wall-clock time by design; only the simulated counters must stay
// deterministic.
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ReplayRow {
  std::string scheme;
  double wall_s = 0;
  std::uint64_t requests = 0;
  trace::ReplayResult result;
};

struct VictimRow {
  std::uint32_t blocks = 0;
  std::uint64_t picks = 0;
  double scan_ns_per_pick = 0;
  double indexed_ns_per_pick = 0;

  [[nodiscard]] double speedup() const {
    return indexed_ns_per_pick > 0 ? scan_ns_per_pick / indexed_ns_per_pick
                                   : 0;
  }
};

/// One-plane engine filled below the GC trigger, with every other page
/// invalidated — a GC-heavy weight distribution without GC interference.
/// Returns the engine plus the valid pages left to invalidate while timing.
std::unique_ptr<ssd::Engine> victim_bench_engine(std::uint32_t blocks,
                                                 std::vector<Ppn>* leftover) {
  auto config = ssd::SsdConfig::paper(8, blocks);
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 1;
  config.geometry.dies_per_chip = 1;
  config.geometry.planes_per_die = 1;
  config.track_payload = false;
  auto engine = std::make_unique<ssd::Engine>(config);
  // A constant-full oracle forces the legacy path to rescan every page of
  // every block per pick — the O(blocks x pages) shape this PR removes.
  engine->set_victim_weight(
      [](Ppn) { return ssd::Engine::kFullPageWeight; });

  const std::uint32_t ppb = config.geometry.pages_per_block;
  const std::uint32_t fill =
      blocks - engine->plane_trigger_blocks(0) - 4;  // stay GC-free
  std::vector<Ppn> pages;
  pages.reserve(std::uint64_t{fill} * ppb);
  std::uint64_t lpn = 0;
  for (std::uint64_t i = 0; i < std::uint64_t{fill} * ppb; ++i) {
    pages.push_back(engine
                        ->flash_program(ssd::Stream::kData,
                                        nand::PageOwner::data(Lpn{lpn++}),
                                        ssd::OpKind::kDataWrite, 0)
                        .ppn);
  }
  Rng rng(21);
  leftover->clear();
  for (Ppn p : pages) {
    if (rng.chance(0.5)) {
      engine->invalidate(p);
    } else {
      leftover->push_back(p);
    }
  }
  return engine;
}

VictimRow victim_select_bench(std::uint32_t blocks, std::uint64_t max_picks) {
  VictimRow row;
  row.blocks = blocks;

  std::vector<Ppn> pages;
  std::uint64_t sink = 0;  // defeats dead-code elimination of the picks

  // Legacy full scan: identical preparation, one pick per invalidation.
  auto scan_engine = victim_bench_engine(blocks, &pages);
  row.picks = std::min<std::uint64_t>(max_picks, pages.size());
  double t0 = now_s();
  for (std::uint64_t i = 0; i < row.picks; ++i) {
    scan_engine->invalidate(pages[i]);
    sink += scan_engine->pick_victim_scan(0);
  }
  row.scan_ns_per_pick =
      (now_s() - t0) * 1e9 / static_cast<double>(row.picks);

  // Indexed path, same workload on a fresh identical engine.
  auto index_engine = victim_bench_engine(blocks, &pages);
  t0 = now_s();
  for (std::uint64_t i = 0; i < row.picks; ++i) {
    index_engine->invalidate(pages[i]);
    sink += index_engine->pick_victim(0);
  }
  row.indexed_ns_per_pick =
      (now_s() - t0) * 1e9 / static_cast<double>(row.picks);

  if (sink == 0xdeadbeef) std::printf("\n");  // keep `sink` observable
  return row;
}

struct CrashRow {
  std::string scheme;
  trace::CrashReplayResult result;
};

struct PipelineRow {
  std::string scheme;
  double wall_s = 0;
  trace::PipelineReplayResult result;
};

struct TailRow {
  std::string scheme;
  std::string policy;  // "off" | "preempt" | "preempt+hedge"
  double wall_s = 0;
  trace::ReplayResult result;
};

struct QosRow {
  std::string scheme;
  std::string workload;  // "solo" | "solo-mixed" | "mixed"
  std::string policy;    // "-" | "off" | "streams" | "streams+bucket"
  double wall_s = 0;
  bool mixed = false;  // per-tenant stats valid only on mixed rows
  trace::ReplayResult result;
};

void write_json(const std::string& path, const ssd::SsdConfig& config,
                const char* trace_name, const std::vector<ReplayRow>& rows,
                const std::vector<ReplayRow>& ckpt_rows,
                std::uint64_t ckpt_interval,
                const std::vector<ReplayRow>& rel_rows,
                const ssd::SsdConfig& rel_config,
                const std::vector<VictimRow>& victims,
                const std::vector<PipelineRow>& pipeline_rows,
                const std::vector<TailRow>& tail_rows,
                const ssd::SsdConfig& tail_config,
                const std::vector<PipelineRow>& open_rows,
                const std::vector<QosRow>& qos_rows,
                const ssd::SsdConfig& qos_config,
                const std::vector<CrashRow>& crashes,
                const trace::PowerCutSpec& spec) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_replay: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"requests\": %llu, \"blocks_per_plane\": %u, "
               "\"jobs\": %u, \"trace\": \"%s\"},\n",
               static_cast<unsigned long long>(bench::knobs().requests),
               config.geometry.blocks_per_plane, bench::knobs().jobs,
               trace_name);
  std::fprintf(f, "  \"replays\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto& perf = row.result.gc_perf;
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"wall_s\": %.3f, "
        "\"requests_per_s\": %.0f, \"gc_runs\": %llu, "
        "\"erases\": %llu, \"victim_picks\": %llu, "
        "\"heap_pushes\": %llu, \"heap_pops\": %llu, "
        "\"heap_rebuilds\": %llu, \"scan_picks\": %llu, "
        "\"scan_blocks\": %llu}%s\n",
        row.scheme.c_str(), row.wall_s,
        static_cast<double>(row.requests) / row.wall_s,
        static_cast<unsigned long long>(row.result.gc_runs),
        static_cast<unsigned long long>(row.result.stats.erases()),
        static_cast<unsigned long long>(perf.victim_picks),
        static_cast<unsigned long long>(perf.heap_pushes),
        static_cast<unsigned long long>(perf.heap_pops),
        static_cast<unsigned long long>(perf.heap_rebuilds),
        static_cast<unsigned long long>(perf.scan_picks),
        static_cast<unsigned long long>(perf.scan_blocks),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Off-path checkpointing overhead: same trace with the journal on. wall_s
  // is noisy; io_time_s and flash_writes are the deterministic signal.
  std::fprintf(f, "  \"checkpoint_overhead\": {\"interval_requests\": %llu, "
               "\"replays\": [\n",
               static_cast<unsigned long long>(ckpt_interval));
  for (std::size_t i = 0; i < ckpt_rows.size(); ++i) {
    const auto& row = ckpt_rows[i];
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"wall_s\": %.3f, \"io_time_s\": %.4f, "
        "\"base_io_time_s\": %.4f, \"flash_writes\": %llu, "
        "\"base_flash_writes\": %llu}%s\n",
        row.scheme.c_str(), row.wall_s, row.result.io_time_s,
        rows[i].result.io_time_s,
        static_cast<unsigned long long>(row.result.stats.flash_writes()),
        static_cast<unsigned long long>(rows[i].result.stats.flash_writes()),
        i + 1 < ckpt_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  // Integrity machinery economics: scrub/retry/rebuild counters are fully
  // deterministic; wall_s is the only noisy field.
  std::fprintf(f,
               "  \"reliability\": {\"scrub_interval_requests\": %llu, "
               "\"scrub_budget\": %u, \"scrub_watermark\": %.2f, "
               "\"parity_width\": %u, \"replays\": [\n",
               static_cast<unsigned long long>(
                   rel_config.integrity.scrub_interval_requests),
               rel_config.integrity.scrub_pages_per_tick,
               rel_config.integrity.scrub_ber_watermark,
               rel_config.integrity.parity_stripe_width);
  for (std::size_t i = 0; i < rel_rows.size(); ++i) {
    const auto& row = rel_rows[i];
    const auto& faults = row.result.stats.faults();
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"wall_s\": %.3f, \"io_time_s\": %.4f, "
        "\"base_io_time_s\": %.4f, \"scrub_scans\": %llu, "
        "\"scrub_relocations\": %llu, \"read_disturb_reads\": %llu, "
        "\"ecc_retry_steps\": %llu, \"ecc_retry_recoveries\": %llu, "
        "\"uncorrectable_reads\": %llu, \"parity_writes\": %llu, "
        "\"parity_rebuilds\": %llu, \"lost_pages\": %llu, "
        "\"lost_requests\": %llu}%s\n",
        row.scheme.c_str(), row.wall_s, row.result.io_time_s,
        rows[i].result.io_time_s,
        static_cast<unsigned long long>(faults.scrub_scans),
        static_cast<unsigned long long>(faults.scrub_relocations),
        static_cast<unsigned long long>(faults.read_disturb_reads),
        static_cast<unsigned long long>(faults.ecc_retry_steps),
        static_cast<unsigned long long>(faults.ecc_retry_recoveries),
        static_cast<unsigned long long>(faults.uncorrectable_reads),
        static_cast<unsigned long long>(faults.parity_writes),
        static_cast<unsigned long long>(faults.parity_rebuilds),
        static_cast<unsigned long long>(faults.lost_pages),
        static_cast<unsigned long long>(row.result.lost_requests),
        i + 1 < rel_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  if (!crashes.empty()) {
    std::fprintf(f,
                 "  \"power_cut\": {\"at_op\": %llu, \"seed\": %llu, "
                 "\"results\": [\n",
                 static_cast<unsigned long long>(spec.at_op),
                 static_cast<unsigned long long>(spec.seed));
    for (std::size_t i = 0; i < crashes.size(); ++i) {
      const auto& c = crashes[i].result;
      const auto& rec = c.recovery;
      std::fprintf(
          f,
          "    {\"scheme\": \"%s\", \"crashed\": %s, \"cut_at_op\": %llu, "
          "\"total_ops\": %llu, \"verified_sectors\": %llu, "
          "\"used_checkpoint\": %s, \"checkpoint_pages_read\": %llu, "
          "\"blocks_scanned\": %llu, \"blocks_skipped\": %llu, "
          "\"pages_scanned\": %llu, \"claims_applied\": %llu, "
          "\"torn_pages\": %llu, \"orphans_invalidated\": %llu, "
          "\"pages_revived\": %llu, \"mount_flash_reads\": %llu, "
          "\"mount_time_ms\": %.3f}%s\n",
          crashes[i].scheme.c_str(), c.crashed ? "true" : "false",
          static_cast<unsigned long long>(c.cut_at_op),
          static_cast<unsigned long long>(c.total_ops),
          static_cast<unsigned long long>(c.verified_sectors),
          rec.used_checkpoint ? "true" : "false",
          static_cast<unsigned long long>(rec.checkpoint_pages_read),
          static_cast<unsigned long long>(rec.blocks_scanned),
          static_cast<unsigned long long>(rec.blocks_skipped),
          static_cast<unsigned long long>(rec.pages_scanned),
          static_cast<unsigned long long>(rec.claims_applied),
          static_cast<unsigned long long>(rec.torn_pages),
          static_cast<unsigned long long>(rec.orphans_invalidated),
          static_cast<unsigned long long>(rec.pages_revived),
          static_cast<unsigned long long>(rec.flash_reads),
          static_cast<double>(rec.mount_time_ns) / 1e6,
          i + 1 < crashes.size() ? "," : "");
    }
    std::fprintf(f, "  ]},\n");
  }
  // Queue-depth sweep: every number except wall_s is simulated and
  // deterministic, so the perf gate can compare them across builds. Speedup
  // is against the same scheme's QD=1 row of this run.
  std::fprintf(f, "  \"pipeline\": [\n");
  for (std::size_t i = 0; i < pipeline_rows.size(); ++i) {
    const auto& row = pipeline_rows[i];
    const auto& r = row.result;
    double base = r.sim_requests_per_s();
    for (const auto& other : pipeline_rows) {
      if (other.scheme == row.scheme && other.result.queue_depth <= 1) {
        base = other.result.sim_requests_per_s();
      }
    }
    const auto reads = r.result.stats.all_reads();
    const auto writes = r.result.stats.all_writes();
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"queue_depth\": %u, \"workers\": %u, "
        "\"wall_s\": %.3f, \"requests\": %llu, \"makespan_ms\": %.3f, "
        "\"sim_requests_per_s\": %.1f, \"speedup_vs_qd1\": %.3f, "
        "\"read_p50_ms\": %.4f, \"read_p95_ms\": %.4f, "
        "\"read_p99_ms\": %.4f, \"read_max_ms\": %.4f, "
        "\"write_p50_ms\": %.4f, \"write_p95_ms\": %.4f, "
        "\"write_p99_ms\": %.4f, \"write_max_ms\": %.4f}%s\n",
        row.scheme.c_str(), r.queue_depth, r.workers, row.wall_s,
        static_cast<unsigned long long>(r.requests),
        static_cast<double>(r.makespan_ns) / 1e6, r.sim_requests_per_s(),
        base > 0 ? r.sim_requests_per_s() / base : 0.0, reads.p50_ns() / 1e6,
        reads.p95_ns() / 1e6, reads.p99_ns() / 1e6, reads.max_ns() / 1e6,
        writes.p50_ns() / 1e6, writes.p95_ns() / 1e6, writes.p99_ns() / 1e6,
        writes.max_ns() / 1e6,
        i + 1 < pipeline_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Tail-latency chaos runs: fail-slow injected, one row per scheme x
  // deadline policy. Every number except wall_s is simulated and
  // deterministic in (config, trace); the perf gate fences the read p99.
  // p99_vs_off is this row's read p99 relative to the same scheme's
  // policy=off row — the measured tail reduction.
  std::fprintf(f,
               "  \"tail\": {\"slow_multiplier\": %.2f, "
               "\"slow_episode_ops\": %llu, \"slow_gap_ops\": %llu, "
               "\"slow_dies\": %u, \"read_deadline_us\": %llu, "
               "\"hedge_after_us\": %llu, \"quarantine_misses\": %u, "
               "\"replays\": [\n",
               tail_config.faults.slow_multiplier,
               static_cast<unsigned long long>(
                   tail_config.faults.slow_episode_ops),
               static_cast<unsigned long long>(tail_config.faults.slow_gap_ops),
               tail_config.faults.slow_dies,
               static_cast<unsigned long long>(
                   tail_config.deadline.read_deadline_us),
               static_cast<unsigned long long>(
                   tail_config.deadline.hedge_after_us),
               tail_config.deadline.quarantine_misses);
  for (std::size_t i = 0; i < tail_rows.size(); ++i) {
    const auto& row = tail_rows[i];
    const auto reads = row.result.stats.all_reads();
    double off_p99 = 0;
    for (const auto& other : tail_rows) {
      if (other.scheme == row.scheme && other.policy == "off") {
        off_p99 = other.result.stats.all_reads().p99_ns();
      }
    }
    const auto& tail = row.result.stats.tail();
    const auto& gc_reads = row.result.stats.op_latency(ssd::OpKind::kGcRead);
    const auto& hedge_reads =
        row.result.stats.op_latency(ssd::OpKind::kRebuildRead);
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"policy\": \"%s\", \"wall_s\": %.3f, "
        "\"read_p50_ms\": %.4f, \"read_p99_ms\": %.4f, "
        "\"read_p999_ms\": %.4f, \"read_max_ms\": %.4f, "
        "\"p99_vs_off\": %.3f, \"gc_read_p99_ms\": %.4f, "
        "\"hedge_read_p99_ms\": %.4f, \"erase_suspends\": %llu, "
        "\"program_suspends\": %llu, \"resume_overhead_ms\": %.3f, "
        "\"ceiling_hits\": %llu, \"nesting_hits\": %llu, "
        "\"hedged_reads\": %llu, \"hedge_wins\": %llu, "
        "\"deadline_misses\": %llu, \"deadline_retries\": %llu, "
        "\"deadline_exceeded\": %llu, \"quarantines\": %llu, "
        "\"unquarantines\": %llu}%s\n",
        row.scheme.c_str(), row.policy.c_str(), row.wall_s,
        reads.p50_ns() / 1e6, reads.p99_ns() / 1e6, reads.p999_ns() / 1e6,
        reads.max_ns() / 1e6,
        off_p99 > 0 ? reads.p99_ns() / off_p99 : 0.0,
        gc_reads.percentile(99) / 1e6, hedge_reads.percentile(99) / 1e6,
        static_cast<unsigned long long>(tail.erase_suspends),
        static_cast<unsigned long long>(tail.program_suspends),
        static_cast<double>(tail.resume_overhead_ns) / 1e6,
        static_cast<unsigned long long>(tail.suspend_ceiling_hits),
        static_cast<unsigned long long>(tail.suspend_nesting_hits),
        static_cast<unsigned long long>(tail.hedged_reads),
        static_cast<unsigned long long>(tail.hedge_wins),
        static_cast<unsigned long long>(tail.deadline_misses),
        static_cast<unsigned long long>(tail.deadline_retries),
        static_cast<unsigned long long>(tail.deadline_exceeded),
        static_cast<unsigned long long>(tail.quarantines),
        static_cast<unsigned long long>(tail.unquarantines),
        i + 1 < tail_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  if (!open_rows.empty()) {
    // Open-loop arrivals: queueing delay priced separately from service
    // time. Simulated numbers are deterministic in (config, trace) and
    // independent of queue depth by construction.
    std::fprintf(f, "  \"open_loop\": [\n");
    for (std::size_t i = 0; i < open_rows.size(); ++i) {
      const auto& r = open_rows[i].result;
      std::fprintf(
          f,
          "    {\"scheme\": \"%s\", \"wall_s\": %.3f, \"requests\": %llu, "
          "\"makespan_ms\": %.3f, \"queue_p50_ms\": %.4f, "
          "\"queue_p99_ms\": %.4f, \"queue_max_ms\": %.4f, "
          "\"service_p50_ms\": %.4f, \"service_p99_ms\": %.4f, "
          "\"service_p999_ms\": %.4f}%s\n",
          open_rows[i].scheme.c_str(), open_rows[i].wall_s,
          static_cast<unsigned long long>(r.requests),
          static_cast<double>(r.makespan_ns) / 1e6,
          r.queue_delay.p50_ns() / 1e6, r.queue_delay.p99_ns() / 1e6,
          r.queue_delay.max_ns() / 1e6, r.service.p50_ns() / 1e6,
          r.service.p99_ns() / 1e6, r.service.p999_ns() / 1e6,
          i + 1 < open_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  }
  // Multi-tenant QoS isolation: per-tenant tails and GC interference per
  // policy. Simulated numbers are deterministic in (config, traces); the
  // perf gate fences the solo == solo-mixed bit-identity pair and the
  // noisy-neighbor containment (streams+bucket must not be worse than off).
  std::fprintf(f,
               "  \"qos\": {\"rate_sectors_per_s\": %llu, "
               "\"burst_sectors\": %llu, \"gc_debt_sectors_per_page\": %u, "
               "\"capacity_share_millis\": %u, \"replays\": [\n",
               static_cast<unsigned long long>(
                   qos_config.qos.rate_sectors_per_s),
               static_cast<unsigned long long>(qos_config.qos.burst_sectors),
               qos_config.qos.gc_debt_sectors_per_page,
               qos_config.qos.capacity_share_millis);
  for (std::size_t i = 0; i < qos_rows.size(); ++i) {
    const auto& row = qos_rows[i];
    double victim_p99 = 0, victim_mean = 0, victim_waf = 0, noisy_p99 = 0,
           noisy_waf = 0;
    std::uint64_t victim_gc = 0, stalls = 0, rejected = 0;
    if (row.mixed) {
      const auto& victim = row.result.stats.tenants()[0];
      const auto& noisy = row.result.stats.tenants()[1];
      victim_p99 = victim.read_latency.p99_ns();
      victim_mean = victim.read_latency.latency().mean();
      victim_waf = victim.waf();
      victim_gc = victim.gc_pages;
      noisy_p99 = noisy.read_latency.p99_ns();
      noisy_waf = noisy.waf();
      stalls = noisy.throttle_stalls;
      rejected = noisy.rejected_writes;
    } else {
      const auto reads = row.result.stats.all_reads();
      victim_p99 = reads.p99_ns();
      victim_mean = reads.latency().mean();
    }
    std::fprintf(
        f,
        "    {\"scheme\": \"%s\", \"workload\": \"%s\", "
        "\"policy\": \"%s\", \"wall_s\": %.3f, "
        "\"victim_read_p99_ms\": %.4f, \"victim_read_mean_ms\": %.4f, "
        "\"victim_waf\": %.4f, \"victim_gc_pages\": %llu, "
        "\"noisy_read_p99_ms\": %.4f, \"noisy_waf\": %.4f, "
        "\"throttle_stalls\": %llu, \"rejected_writes\": %llu}%s\n",
        row.scheme.c_str(), row.workload.c_str(), row.policy.c_str(),
        row.wall_s, victim_p99 / 1e6, victim_mean / 1e6, victim_waf,
        static_cast<unsigned long long>(victim_gc), noisy_p99 / 1e6,
        noisy_waf, static_cast<unsigned long long>(stalls),
        static_cast<unsigned long long>(rejected),
        i + 1 < qos_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f, "  \"victim_select\": [\n");
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const auto& v = victims[i];
    std::fprintf(f,
                 "    {\"blocks_per_plane\": %u, \"picks\": %llu, "
                 "\"scan_ns_per_pick\": %.1f, \"indexed_ns_per_pick\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 v.blocks, static_cast<unsigned long long>(v.picks),
                 v.scan_ns_per_pick, v.indexed_ns_per_pick, v.speedup(),
                 i + 1 < victims.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  trace::PowerCutSpec spec;
  bool power_cut = false;
  bool open_loop = false;
  std::uint32_t scrub_budget = 8;
  std::uint32_t parity_width = 8;
  std::vector<std::uint32_t> queue_depths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--power-cut-at-op" && i + 1 < argc) {
      spec.at_op = std::strtoull(argv[++i], nullptr, 10);
      power_cut = true;
    } else if (arg == "--power-cut-seed" && i + 1 < argc) {
      spec.seed = std::strtoull(argv[++i], nullptr, 10);
      power_cut = true;
    } else if (arg == "--scrub-budget" && i + 1 < argc) {
      scrub_budget =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--parity-width" && i + 1 < argc) {
      parity_width =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      queue_depths.push_back(
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (arg == "--open-loop") {
      open_loop = true;
    } else {
      std::fprintf(stderr,
                   "usage: perf_replay [--power-cut-at-op N] "
                   "[--power-cut-seed S] [--scrub-budget P] "
                   "[--parity-width W] [--queue-depth D]... [--open-loop]\n"
                   "  N = 1-based flash op to kill power at "
                   "(0 = sample uniformly from S)\n"
                   "  P = scrub pages per tick for section (e), default 8\n"
                   "  W = parity stripe width incl. parity, default 8 "
                   "(0/1 = parity off)\n"
                   "  D = queue depths for the pipeline sweep (f), "
                   "repeatable; default 1 4 16\n"
                   "  --open-loop adds section (h): pipeline replay issuing "
                   "at trace timestamps,\n"
                   "  reporting queueing delay separately from service "
                   "time\n");
      return 2;
    }
  }
  if (queue_depths.empty()) queue_depths = {1, 4, 16};

  const auto config = bench::device(8);
  bench::print_header("perf_replay: simulator wall-clock performance", config);
  const auto addressable = bench::addressable_sectors(config);

  // (a) Replay throughput, one scheme at a time so each timing is clean.
  const char* trace_name = trace::table2_targets()[0].name;
  const auto tr = bench::lun_trace(0, addressable);
  std::vector<ReplayRow> rows;
  Table replays({"scheme", "wall (s)", "req/s", "GC runs", "victim picks",
                 "heap pushes", "heap pops"});
  for (auto kind : bench::all_schemes()) {
    ReplayRow row;
    row.requests = tr.size();
    const double t0 = now_s();
    // af_lint: allow(bench-run-schemes) — replays are timed one at a time on
    // purpose: fanning them out would overlap the wall-clock measurements.
    row.result = trace::replay(config, kind, tr);
    row.wall_s = now_s() - t0;
    row.scheme = row.result.scheme;
    replays.add_row(
        {row.scheme, Table::num(row.wall_s, 2),
         Table::num(static_cast<double>(row.requests) / row.wall_s, 0),
         Table::num(row.result.gc_runs), Table::num(row.result.gc_perf.victim_picks),
         Table::num(row.result.gc_perf.heap_pushes),
         Table::num(row.result.gc_perf.heap_pops)});
    rows.push_back(std::move(row));
  }
  std::printf("(a) trace-replay throughput (trace %s)\n", trace_name);
  replays.print(std::cout);

  // (c) Checkpointing overhead on the no-crash path: same replay with the
  // mapping journal on. Must stay within noise of the base rows.
  constexpr std::uint64_t kCkptInterval = 64;
  auto ckpt_config = config;
  ckpt_config.checkpoint.interval_requests = kCkptInterval;
  std::vector<ReplayRow> ckpt_rows;
  Table ckpt_table({"scheme", "wall (s)", "io time s", "base io s",
                    "flash writes", "base writes"});
  for (std::size_t s = 0; s < bench::all_schemes().size(); ++s) {
    ReplayRow row;
    row.requests = tr.size();
    const double t0 = now_s();
    // af_lint: allow(bench-run-schemes) — timed one at a time, same as (a).
    row.result = trace::replay(ckpt_config, bench::all_schemes()[s], tr);
    row.wall_s = now_s() - t0;
    row.scheme = row.result.scheme;
    ckpt_table.add_row(
        {row.scheme, Table::num(row.wall_s, 2),
         Table::num(row.result.io_time_s, 3),
         Table::num(rows[s].result.io_time_s, 3),
         Table::num(row.result.stats.flash_writes()),
         Table::num(rows[s].result.stats.flash_writes())});
    ckpt_rows.push_back(std::move(row));
  }
  std::printf("\n(c) checkpoint journal overhead (interval %llu requests)\n",
              static_cast<unsigned long long>(kCkptInterval));
  ckpt_table.print(std::cout);

  // (e) Reliability machinery: the same replay under a retention-dominated
  // bit-error ramp, background scrub and parity stripes on. All counters are
  // deterministic in (config, trace); wall_s is the only noisy column.
  auto rel_config = config;
  rel_config.faults.ber_base = 0.5;
  rel_config.faults.ber_retention = 0.08;
  rel_config.faults.ber_read_disturb = 0.02;
  rel_config.integrity.scrub_interval_requests = 64;
  rel_config.integrity.scrub_pages_per_tick = scrub_budget;
  rel_config.integrity.parity_stripe_width = parity_width;
  std::vector<ReplayRow> rel_rows;
  Table rel_table({"scheme", "wall (s)", "io time s", "base io s",
                   "scrub scans", "refreshed", "retry saves", "rebuilds",
                   "uncorrectable", "lost reqs"});
  for (std::size_t s = 0; s < bench::all_schemes().size(); ++s) {
    ReplayRow row;
    row.requests = tr.size();
    const double t0 = now_s();
    // af_lint: allow(bench-run-schemes) — timed one at a time, same as (a).
    row.result = trace::replay(rel_config, bench::all_schemes()[s], tr);
    row.wall_s = now_s() - t0;
    row.scheme = row.result.scheme;
    const auto& faults = row.result.stats.faults();
    rel_table.add_row(
        {row.scheme, Table::num(row.wall_s, 2),
         Table::num(row.result.io_time_s, 3),
         Table::num(rows[s].result.io_time_s, 3),
         Table::num(faults.scrub_scans), Table::num(faults.scrub_relocations),
         Table::num(faults.ecc_retry_recoveries),
         Table::num(faults.parity_rebuilds),
         Table::num(faults.uncorrectable_reads),
         Table::num(row.result.lost_requests)});
    rel_rows.push_back(std::move(row));
  }
  std::printf("\n(e) data-integrity machinery (scrub budget %u, parity "
              "width %u)\n",
              scrub_budget, parity_width);
  rel_table.print(std::cout);

  // (d) Optional crash-and-remount run (flags): recovery economics per
  // scheme, oracle-verified by the harness as it sweeps.
  std::vector<CrashRow> crashes;
  if (power_cut) {
    auto crash_config = ckpt_config;
    crash_config.track_payload = true;  // the sweep needs the oracle stamps
    const auto results = bench::run_crash_schemes(crash_config, tr, spec);
    Table crash_table({"scheme", "cut at op", "total ops", "ckpt", "scanned",
                       "skipped", "oob pages", "torn", "mount ms",
                       "verified sectors"});
    for (std::size_t s = 0; s < results.size(); ++s) {
      CrashRow row{ftl::to_string(bench::all_schemes()[s]), results[s]};
      const auto& rec = row.result.recovery;
      crash_table.add_row(
          {row.scheme, Table::num(row.result.cut_at_op),
           Table::num(row.result.total_ops),
           rec.used_checkpoint ? "yes" : "no", Table::num(rec.blocks_scanned),
           Table::num(rec.blocks_skipped), Table::num(rec.pages_scanned),
           Table::num(rec.torn_pages),
           Table::num(static_cast<double>(rec.mount_time_ns) / 1e6, 2),
           Table::num(row.result.verified_sectors)});
      crashes.push_back(std::move(row));
    }
    std::printf("\n(d) power cut at op %llu (seed %llu), remount + oracle "
                "sweep\n",
                static_cast<unsigned long long>(spec.at_op),
                static_cast<unsigned long long>(spec.seed));
    crash_table.print(std::cout);
  }

  // (f) Pipeline queue-depth sweep: closed-loop simulated throughput per
  // scheme. Simulated numbers are deterministic in (config, trace, QD);
  // wall_s is the only noisy column.
  std::vector<PipelineRow> pipeline_rows;
  Table qd_table({"scheme", "QD", "req/sim-s", "speedup", "read p50 ms",
                  "read p99 ms", "write p50 ms", "write p99 ms", "wall (s)"});
  for (auto kind : bench::all_schemes()) {
    double base = 0;
    for (std::uint32_t qd : queue_depths) {
      PipelineRow row;
      auto qd_config = config;
      qd_config.pipeline.queue_depth = qd;
      const double t0 = now_s();
      // af_lint: allow(bench-run-schemes) — timed one at a time, same as (a).
      row.result = trace::replay_pipeline(qd_config, kind, tr);
      row.wall_s = now_s() - t0;
      row.scheme = row.result.result.scheme;
      const double rps = row.result.sim_requests_per_s();
      if (qd <= 1 || base == 0) base = qd <= 1 ? rps : base;
      const auto reads = row.result.result.stats.all_reads();
      const auto writes = row.result.result.stats.all_writes();
      qd_table.add_row(
          {row.scheme, Table::num(std::uint64_t{qd}), Table::num(rps, 0),
           Table::num(base > 0 ? rps / base : 0.0, 2) + "x",
           Table::num(reads.p50_ns() / 1e6, 2),
           Table::num(reads.p99_ns() / 1e6, 2),
           Table::num(writes.p50_ns() / 1e6, 2),
           Table::num(writes.p99_ns() / 1e6, 2), Table::num(row.wall_s, 2)});
      pipeline_rows.push_back(std::move(row));
    }
  }
  std::printf("\n(f) pipeline queue-depth sweep (simulated closed-loop "
              "throughput)\n");
  qd_table.print(std::cout);

  // (g) Tail-latency chaos: a read-mostly, moderately loaded variant of the
  // trace — the regime deadline scheduling targets; a write-saturated device
  // is program-bound and host programs are never suspended — under an
  // injected fail-slow fault model: two dies cycling through sick episodes
  // at a 6x latency multiplier, per deadline policy. Parity stripes are on
  // in every row so placement is identical and the rows differ only in the
  // deadline machinery; the retry ladder is off (max_retries = 0) so
  // recorded latencies compare the policies directly rather than folding
  // re-issue time into the tail. All counters are deterministic in
  // (config, trace).
  auto tail_profile = trace::lun_profile(0, bench::knobs().requests);
  tail_profile.name = "tail-readmostly";
  tail_profile.write_ratio = 0.20;
  tail_profile.mean_iat_ns = 3'000'000;
  const auto tail_tr = trace::generate(tail_profile, addressable);
  auto tail_base = config;
  tail_base.integrity.parity_stripe_width = parity_width;
  // Chip-rotating allocation in every row (hedging switches to it anyway —
  // reconstruct peers must live on other chips), so the policy deltas are
  // pure deadline machinery, not placement. The serial replay reads
  // pipeline config for placement only.
  tail_base.pipeline.queue_depth = 2;
  tail_base.faults.slow_multiplier = 20.0;
  tail_base.faults.slow_episode_ops = 600;
  tail_base.faults.slow_gap_ops = 1200;
  tail_base.faults.slow_dies = 2;
  auto tail_armed = tail_base;
  tail_armed.deadline.read_deadline_us = 5000;
  tail_armed.deadline.max_retries = 0;
  tail_armed.deadline.quarantine_misses = 40;
  struct TailPolicy {
    const char* name;
    bool preempt;
    bool hedge;
  };
  constexpr TailPolicy kPolicies[] = {{"off", false, false},
                                      {"preempt", true, false},
                                      {"preempt+hedge", true, true}};
  std::vector<TailRow> tail_rows;
  Table tail_table({"scheme", "policy", "read p99 ms", "p999 ms", "vs off",
                    "suspends", "hedges", "wins", "quarantines", "wall (s)"});
  for (auto kind : bench::all_schemes()) {
    double off_p99 = 0;
    for (const auto& policy : kPolicies) {
      TailRow row;
      row.policy = policy.name;
      auto tail_config = policy.preempt ? tail_armed : tail_base;
      tail_config.deadline.preempt = policy.preempt;
      if (policy.hedge) tail_config.deadline.hedge_after_us = 5000;
      const double t0 = now_s();
      // Lighter aging than the default replay: the chaos rows measure
      // fail-slow episodes, not GC-debt saturation, so the device starts
      // with headroom and background reclamation stays sporadic.
      trace::ReplayOptions tail_opts;
      tail_opts.age_used = 0.60;
      // af_lint: allow(bench-run-schemes) — timed one at a time, same as (a).
      row.result = trace::replay(tail_config, kind, tail_tr, tail_opts);
      row.wall_s = now_s() - t0;
      row.scheme = row.result.scheme;
      const auto reads = row.result.stats.all_reads();
      if (!policy.preempt) off_p99 = reads.p99_ns();
      const auto& tail = row.result.stats.tail();
      tail_table.add_row(
          {row.scheme, row.policy, Table::num(reads.p99_ns() / 1e6, 2),
           Table::num(reads.p999_ns() / 1e6, 2),
           Table::num(off_p99 > 0 ? reads.p99_ns() / off_p99 : 1.0, 2) + "x",
           Table::num(tail.erase_suspends + tail.program_suspends),
           Table::num(tail.hedged_reads), Table::num(tail.hedge_wins),
           Table::num(tail.quarantines), Table::num(row.wall_s, 2)});
      tail_rows.push_back(std::move(row));
    }
  }
  std::printf("\n(g) tail-latency chaos (fail-slow x%.0f, deadline %llu us)\n",
              tail_base.faults.slow_multiplier,
              static_cast<unsigned long long>(
                  tail_armed.deadline.read_deadline_us));
  tail_table.print(std::cout);

  // (h, --open-loop) Open-loop arrivals through the pipeline: requests issue
  // at their trace timestamps, queueing delay reported separately from
  // service time. Simulated numbers are QD-independent by construction.
  std::vector<PipelineRow> open_rows;
  if (open_loop) {
    Table ol_table({"scheme", "queue p50 ms", "queue p99 ms", "service p50 ms",
                    "service p99 ms", "wall (s)"});
    for (auto kind : bench::all_schemes()) {
      PipelineRow row;
      auto ol_config = config;
      ol_config.pipeline.open_loop = true;
      ol_config.pipeline.queue_depth = 16;  // wall-clock only in open loop
      const double t0 = now_s();
      // af_lint: allow(bench-run-schemes) — timed one at a time, same as (a).
      row.result = trace::replay_pipeline(ol_config, kind, tr);
      row.wall_s = now_s() - t0;
      row.scheme = row.result.result.scheme;
      ol_table.add_row(
          {row.scheme, Table::num(row.result.queue_delay.p50_ns() / 1e6, 3),
           Table::num(row.result.queue_delay.p99_ns() / 1e6, 3),
           Table::num(row.result.service.p50_ns() / 1e6, 3),
           Table::num(row.result.service.p99_ns() / 1e6, 3),
           Table::num(row.wall_s, 2)});
      open_rows.push_back(std::move(row));
    }
    std::printf("\n(h) open-loop arrivals (trace timestamps, queueing "
                "priced separately)\n");
    ol_table.print(std::cout);
  }

  // (i) Multi-tenant QoS isolation: victim + noisy neighbor per policy,
  // bracketed by the solo / solo-mixed bit-identity pair. Workload shape
  // mirrors bench/ablate_tenants: a small hot noisy footprint so relocation
  // picks blocks written during the run, aging deep enough that GC stays
  // live. All simulated numbers are deterministic in (config, traces).
  auto qos_victim_profile = trace::lun_profile(0, bench::knobs().requests);
  qos_victim_profile.name = "qos-victim";
  qos_victim_profile.write_ratio = 0.20;
  qos_victim_profile.mean_iat_ns = 3'000'000;
  qos_victim_profile.footprint_fraction = 0.5;
  const auto qos_victim_tr = trace::generate(qos_victim_profile, addressable);
  auto qos_noisy_profile = trace::lun_profile(1, bench::knobs().requests);
  qos_noisy_profile.name = "qos-noisy";
  qos_noisy_profile.write_ratio = 0.90;
  qos_noisy_profile.mean_iat_ns = 300'000;
  qos_noisy_profile.footprint_fraction = 0.08;
  qos_noisy_profile.zipf_theta = 1.1;
  const auto qos_noisy_tr = trace::generate(qos_noisy_profile, addressable);
  const auto qos_mixed_tr = trace::mix({qos_victim_tr, qos_noisy_tr});
  const auto qos_solo_mixed_tr = trace::mix({qos_victim_tr});
  trace::ReplayOptions qos_opts;
  qos_opts.age_used = 0.85;
  auto qos_armed = config;
  qos_armed.qos.tenants = 2;
  qos_armed.qos.per_tenant_streams = true;
  qos_armed.qos.rate_sectors_per_s = 8'000;
  qos_armed.qos.burst_sectors = 2'000;
  qos_armed.qos.gc_debt_sectors_per_page = 16;
  qos_armed.qos.capacity_share_millis = 600;
  struct QosPolicyRow {
    const char* name;
    bool streams;
    bool bucket;
  };
  constexpr QosPolicyRow kQosPolicies[] = {{"off", false, false},
                                           {"streams", true, false},
                                           {"streams+bucket", true, true}};
  std::vector<QosRow> qos_rows;
  Table qos_table({"scheme", "workload", "policy", "victim p99 ms",
                   "victim mean ms", "victim WAF", "victim GC", "noisy p99 ms",
                   "stalls", "wall (s)"});
  for (auto kind : bench::all_schemes()) {
    const struct {
      const char* workload;
      const trace::Trace* tr;
    } solo_pair[] = {{"solo", &qos_victim_tr}, {"solo-mixed", &qos_solo_mixed_tr}};
    for (const auto& sp : solo_pair) {
      QosRow row;
      row.workload = sp.workload;
      row.policy = "-";
      const double t0 = now_s();
      // af_lint: allow(bench-run-schemes) — timed one at a time, same as (a).
      row.result = trace::replay(config, kind, *sp.tr, qos_opts);
      row.wall_s = now_s() - t0;
      row.scheme = row.result.scheme;
      const auto reads = row.result.stats.all_reads();
      qos_table.add_row({row.scheme, row.workload, row.policy,
                         Table::num(reads.p99_ns() / 1e6, 2),
                         Table::num(reads.latency().mean() / 1e6, 2), "-", "-",
                         "-", "-", Table::num(row.wall_s, 2)});
      qos_rows.push_back(std::move(row));
    }
    for (const auto& policy : kQosPolicies) {
      QosRow row;
      row.workload = "mixed";
      row.policy = policy.name;
      row.mixed = true;
      auto qos_config = config;
      qos_config.qos.tenants = 2;
      qos_config.qos.per_tenant_streams = policy.streams;
      if (policy.bucket) qos_config.qos = qos_armed.qos;
      const double t0 = now_s();
      // af_lint: allow(bench-run-schemes) — timed one at a time, same as (a).
      row.result = trace::replay(qos_config, kind, qos_mixed_tr, qos_opts);
      row.wall_s = now_s() - t0;
      row.scheme = row.result.scheme;
      const auto& victim = row.result.stats.tenants()[0];
      const auto& noisy = row.result.stats.tenants()[1];
      qos_table.add_row(
          {row.scheme, row.workload, row.policy,
           Table::num(victim.read_latency.p99_ns() / 1e6, 2),
           Table::num(victim.read_latency.latency().mean() / 1e6, 2),
           Table::num(victim.waf(), 2), Table::num(victim.gc_pages),
           Table::num(noisy.read_latency.p99_ns() / 1e6, 2),
           Table::num(noisy.throttle_stalls), Table::num(row.wall_s, 2)});
      qos_rows.push_back(std::move(row));
    }
  }
  std::printf("\n(i) multi-tenant QoS isolation (victim + noisy neighbor)\n");
  qos_table.print(std::cout);

  // (b) Victim selection: legacy scan vs weight index, per pick.
  std::vector<VictimRow> victims;
  Table picks({"blocks/plane", "picks", "scan ns/pick", "indexed ns/pick",
               "speedup"});
  for (std::uint32_t blocks :
       {bench::knobs().blocks_per_plane, 8 * bench::knobs().blocks_per_plane}) {
    const auto v = victim_select_bench(blocks, 2000);
    picks.add_row({Table::num(std::uint64_t{v.blocks}), Table::num(v.picks),
                   Table::num(v.scan_ns_per_pick, 1),
                   Table::num(v.indexed_ns_per_pick, 1),
                   Table::num(v.speedup(), 2) + "x"});
    victims.push_back(v);
  }
  std::printf("\n(b) GC victim selection, one plane (scan = legacy path)\n");
  picks.print(std::cout);

  // getenv after the pool has been joined; no concurrent env access.
  const char* json =
      std::getenv("ACROSS_FTL_PERF_JSON");  // NOLINT(concurrency-mt-unsafe)
  auto tail_json_config = tail_armed;
  tail_json_config.deadline.hedge_after_us = 5000;
  write_json(json != nullptr ? json : "BENCH_perf.json", config, trace_name,
             rows, ckpt_rows, kCkptInterval, rel_rows, rel_config, victims,
             pipeline_rows, tail_rows, tail_json_config, open_rows, qos_rows,
             qos_armed, crashes, spec);
  return 0;
}

// Multi-tenant QoS isolation (DESIGN.md §12), end to end: the zero-default
// bit-identity guarantee, per-tenant stream separation at the block level,
// capacity-share admission, deterministic token-bucket throttling, the
// noisy-neighbor isolation invariant, and recovery of tenant/stream state
// after a power cut in the middle of a mixed workload.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ftl/request.h"
#include "sim/ssd.h"
#include "trace/mixer.h"
#include "trace/profiles.h"
#include "trace/replayer.h"
#include "trace/synth.h"
#include "../helpers.h"

namespace af {
namespace {

/// The paper device at a bench-sized geometry: big enough that aged mixed
/// replays exercise GC, small enough for an ASan test binary.
ssd::SsdConfig qos_device() {
  return ssd::SsdConfig::paper(/*page_kb=*/8, /*blocks_per_plane=*/32);
}

std::uint64_t addressable(const ssd::SsdConfig& config) {
  return static_cast<std::uint64_t>(
             0.398 * static_cast<double>(config.geometry.total_pages())) *
         config.geometry.sectors_per_page();
}

/// Read-mostly tenant whose tail the policies protect.
trace::Trace victim_trace(const ssd::SsdConfig& config,
                          std::uint64_t requests) {
  auto profile = trace::lun_profile(0, requests);
  profile.name = "qos-victim";
  profile.write_ratio = 0.20;
  profile.mean_iat_ns = 3'000'000;
  profile.footprint_fraction = 0.5;
  return trace::generate(profile, addressable(config));
}

/// Write-heavy neighbor hammering a small hot footprint.
trace::Trace noisy_trace(const ssd::SsdConfig& config,
                         std::uint64_t requests) {
  auto profile = trace::lun_profile(1, requests);
  profile.name = "qos-noisy";
  profile.write_ratio = 0.90;
  profile.mean_iat_ns = 300'000;
  profile.footprint_fraction = 0.08;
  profile.zipf_theta = 1.1;
  return trace::generate(profile, addressable(config));
}

bool same_result(const trace::ReplayResult& a, const trace::ReplayResult& b) {
  return a.io_time_s == b.io_time_s &&
         a.stats.flash_writes() == b.stats.flash_writes() &&
         a.stats.erases() == b.stats.erases() &&
         a.gc_runs == b.gc_runs &&
         a.stats.all_reads().p99_ns() == b.stats.all_reads().p99_ns() &&
         a.stats.all_writes().p99_ns() == b.stats.all_writes().p99_ns();
}

class Qos : public ::testing::TestWithParam<ftl::SchemeKind> {};

// The zero-default guarantee: a single-tenant trace routed through the mixer
// and the tenant plumbing — with QoS off OR with a degenerate tenants=1
// policy — replays bit-identically to the plain path.
TEST_P(Qos, ZeroDefaultBitIdentity) {
  const auto config = qos_device();
  const auto tr = victim_trace(config, 1200);
  trace::ReplayOptions opts;
  opts.age_used = 0.85;

  const auto plain = trace::replay(config, GetParam(), tr, opts);
  const auto mixed = trace::replay(config, GetParam(), trace::mix({tr}), opts);
  EXPECT_TRUE(same_result(plain, mixed));

  auto degenerate = config;
  degenerate.qos.tenants = 1;  // below the enabled() threshold
  degenerate.qos.rate_sectors_per_s = 8'000;
  degenerate.qos.capacity_share_millis = 600;
  const auto off = trace::replay(degenerate, GetParam(), tr, opts);
  EXPECT_TRUE(same_result(plain, off));
}

// Same config, same mixed trace, twice: the bucket's deferral machinery must
// be a pure function of its inputs — identical stall counts, identical tails.
TEST_P(Qos, ThrottlingIsDeterministic) {
  auto config = qos_device();
  config.qos.tenants = 2;
  config.qos.rate_sectors_per_s = 8'000;
  config.qos.burst_sectors = 2'000;
  config.qos.gc_debt_sectors_per_page = 16;
  const auto mixed = trace::mix(
      {victim_trace(config, 600), noisy_trace(config, 600)});
  trace::ReplayOptions opts;
  opts.age_used = 0.85;

  const auto first = trace::replay(config, GetParam(), mixed, opts);
  const auto second = trace::replay(config, GetParam(), mixed, opts);
  ASSERT_TRUE(same_result(first, second));
  ASSERT_EQ(first.stats.tenants().size(), 2u);
  const auto& noisy1 = first.stats.tenants()[1];
  const auto& noisy2 = second.stats.tenants()[1];
  EXPECT_GT(noisy1.throttle_stalls, 0u);
  EXPECT_EQ(noisy1.throttle_stalls, noisy2.throttle_stalls);
  EXPECT_EQ(noisy1.throttle_stall_ns, noisy2.throttle_stall_ns);
  EXPECT_EQ(first.stats.tenants()[0].read_latency.p99_ns(),
            second.stats.tenants()[0].read_latency.p99_ns());
}

// The headline invariant: with the full policy armed, sharing the device
// with the noisy neighbor costs the victim at most a bounded multiple of its
// solo p99 — and never more than the unprotected shared device.
TEST_P(Qos, NoisyNeighborContained) {
  const auto config = qos_device();
  const auto victim = victim_trace(config, 1200);
  const auto mixed = trace::mix({victim, noisy_trace(config, 1200)});
  trace::ReplayOptions opts;
  opts.age_used = 0.85;

  const auto solo = trace::replay(config, GetParam(), victim, opts);

  auto shared = config;
  shared.qos.tenants = 2;  // observe only: no streams, no bucket
  shared.qos.per_tenant_streams = false;
  const auto off = trace::replay(shared, GetParam(), mixed, opts);

  auto armed = config;
  armed.qos.tenants = 2;
  armed.qos.rate_sectors_per_s = 8'000;
  armed.qos.burst_sectors = 2'000;
  armed.qos.gc_debt_sectors_per_page = 16;
  armed.qos.capacity_share_millis = 600;
  const auto contained = trace::replay(armed, GetParam(), mixed, opts);

  const double solo_p99 = solo.stats.all_reads().p99_ns() / 1e6;
  const double off_p99 = off.stats.tenants()[0].read_latency.p99_ns() / 1e6;
  const double on_p99 =
      contained.stats.tenants()[0].read_latency.p99_ns() / 1e6;
  // The unprotected run is the problem statement: the victim's tail must
  // actually be inflated by the neighbor for containment to mean anything.
  ASSERT_GT(off_p99, solo_p99 * 4);
  EXPECT_LE(on_p99, off_p99);
  // Containment bound. The multiple absorbs log2-bucket percentile
  // quantisation plus the genuine residual sharing cost (the bucket shapes
  // admission, it does not reserve chips).
  constexpr double kContainmentMultiple = 256.0;
  EXPECT_LE(on_p99, solo_p99 * kContainmentMultiple);
  // And the neighbor, not the victim, pays: stalls land on tenant 1.
  EXPECT_GT(contained.stats.tenants()[1].throttle_stalls, 0u);
  EXPECT_EQ(contained.stats.tenants()[0].throttle_stalls, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, Qos,
                         ::testing::Values(ftl::SchemeKind::kPageFtl,
                                           ftl::SchemeKind::kMrsm,
                                           ftl::SchemeKind::kAcrossFtl),
                         [](const auto& info) {
                           switch (info.param) {
                             case ftl::SchemeKind::kPageFtl: return "PageFtl";
                             case ftl::SchemeKind::kMrsm: return "MrsmFtl";
                             default: return "AcrossFtl";
                           }
                         });

// With per-tenant streams on, no flash block ever holds live data pages from
// two tenants: GC can relocate — and charge — each tenant's garbage without
// dragging the other's pages along.
TEST(QosStreams, BlocksStayTenantHomogeneous) {
  auto config = test::tiny_config();
  config.qos.tenants = 2;  // streams on by default
  sim::Ssd ssd(config, ftl::SchemeKind::kPageFtl);

  const std::uint32_t spp = config.geometry.sectors_per_page();
  const std::uint64_t pages = config.logical_sectors() / spp;
  // Interleaved overwrite churn from both tenants: plenty of invalidation,
  // so GC relocations run under both stream slots too.
  SimTime t = 1;
  for (std::uint64_t round = 0; round < 6; ++round) {
    for (std::uint64_t p = 0; p < pages / 2; ++p) {
      ftl::IoRequest req{t, /*write=*/true, SectorRange::of(p * spp, spp)};
      req.tenant = static_cast<std::uint16_t>((p + round) % 2);
      t += 1000;
      (void)test::submit_ok(ssd, req);
    }
  }

  const auto& geometry = config.geometry;
  std::vector<std::set<std::uint16_t>> owners(geometry.total_blocks());
  for (std::uint64_t p = 0; p < geometry.total_pages(); ++p) {
    const std::uint16_t tenant = ssd.engine().page_tenant(Ppn{p});
    if (tenant == ssd::kNoTenant) continue;  // engine-owned or invalid page
    owners[p / geometry.pages_per_block].insert(tenant);
  }
  std::uint64_t tagged_blocks = 0;
  for (const auto& block_owners : owners) {
    if (!block_owners.empty()) ++tagged_blocks;
    EXPECT_LE(block_owners.size(), 1u);
  }
  // Sanity: the scan saw real data from both tenants, not an empty device.
  EXPECT_GT(tagged_blocks, 4u);
  // Every written page (half the logical space) is attributed to someone.
  EXPECT_EQ(ssd.engine().tenant_live_pages(0) +
                ssd.engine().tenant_live_pages(1),
            pages / 2);
}

// Capacity shares: the tenant that exhausts its quota bounces with kNoSpace
// while the other keeps writing — per-tenant graceful degradation, not a
// device-wide stall.
TEST(QosQuota, OverQuotaTenantRejectedOthersWrite) {
  auto config = test::tiny_config();
  config.qos.tenants = 2;
  config.qos.capacity_share_millis = 300;  // 30% of logical pages each
  sim::Ssd ssd(config, ftl::SchemeKind::kPageFtl);

  const std::uint32_t spp = config.geometry.sectors_per_page();
  const std::uint64_t pages = config.logical_sectors() / spp;
  SimTime t = 1;
  bool rejected = false;
  for (std::uint64_t p = 0; p < pages && !rejected; ++p) {
    ftl::IoRequest req{t, /*write=*/true, SectorRange::of(p * spp, spp)};
    req.tenant = 0;
    t += 1000;
    const auto completion = ssd.submit(req);
    if (!completion.accepted) {
      EXPECT_EQ(completion.status, ssd::Status::kNoSpace);
      rejected = true;
      // The quota, not the device, said no: tenant 0 sits at its share.
      EXPECT_GE(ssd.engine().tenant_live_pages(0), pages * 3 / 10);
    }
  }
  ASSERT_TRUE(rejected);
  EXPECT_GT(ssd.stats().tenants()[0].rejected_writes, 0u);

  // Tenant 1 is untouched by its neighbor's quota exhaustion.
  ftl::IoRequest other{t, /*write=*/true, SectorRange::of(0, spp)};
  other.tenant = 1;
  const auto completion = ssd.submit(other);
  EXPECT_TRUE(completion.accepted);

  // Overwrites within tenant 0's existing footprint add no live pages and
  // stay admissible — the quota caps the footprint, not the write rate.
  ftl::IoRequest overwrite{t + 1000, /*write=*/true, SectorRange::of(0, spp)};
  overwrite.tenant = 0;
  EXPECT_TRUE(ssd.submit(overwrite).accepted);
}

// Power cut in the middle of a mixed two-tenant workload with streams on:
// the mount must rebuild per-tenant attribution and stream frontiers from
// OOB stamps, pass the oracle-equivalence sweep, and finish the trace.
TEST(QosRecovery, PowerCutMidMixedWorkload) {
  auto config = ssd::SsdConfig::paper(/*page_kb=*/8, /*blocks_per_plane=*/24);
  config.track_payload = true;
  config.qos.tenants = 2;  // streams on; bucket off (crash replay contract)
  const auto mixed = trace::mix(
      {victim_trace(config, 500), noisy_trace(config, 500)});
  trace::ReplayOptions opts;
  opts.age_used = 0.85;

  for (const std::uint64_t seed : {3u, 11u}) {
    trace::PowerCutSpec spec;
    spec.seed = seed;  // at_op sampled from the run's own op horizon
    const auto out = trace::replay_with_power_cut(
        config, ftl::SchemeKind::kAcrossFtl, mixed, spec, opts);
    ASSERT_TRUE(out.crashed) << "seed " << seed;
    // The oracle sweep inside the harness aborts on divergence; reaching
    // here with the full space verified is the durability statement.
    EXPECT_EQ(out.verified_sectors, config.logical_sectors());
    EXPECT_GT(out.recovery.blocks_scanned + out.recovery.pages_scanned,
              0u);
    // The continuation ran as a two-tenant device.
    ASSERT_EQ(out.result.stats.tenants().size(), 2u);
  }
}

}  // namespace
}  // namespace af

// Shared test utilities: tiny device configs and random request workloads
// driven through the oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "ftl/request.h"
#include "sim/ssd.h"
#include "sim/write_buffer.h"
#include "ssd/config.h"

namespace af::test {

/// Submits a request that must be accepted — the standard form for test
/// setup and workload loops, where a silent rejection (read-only
/// degradation) would invalidate everything the test asserts afterwards.
/// Tests that *expect* rejections capture Ssd::submit's result directly.
inline sim::Ssd::Completion submit_ok(sim::Ssd& ssd,
                                      const ftl::IoRequest& req) {
  const auto completion = ssd.submit(req);
  AF_CHECK_MSG(completion.accepted, "test request unexpectedly rejected");
  return completion;
}

inline sim::Ssd::Completion submit_ok(sim::BufferedSsd& buffered,
                                      const ftl::IoRequest& req) {
  const auto completion = buffered.submit(req);
  AF_CHECK_MSG(completion.accepted, "test request unexpectedly rejected");
  return completion;
}

/// Tiny payload-tracked device: 2×1×1×2 planes, 32 blocks/plane, 8 pages per
/// block, 8 KiB pages → 1024 physical pages.
inline ssd::SsdConfig tiny_config() { return ssd::SsdConfig::tiny(); }

/// Random mixed workload generator exercising every request shape: aligned
/// pages, sub-page writes, across-page requests, multi-page spans.
class WorkloadGen {
 public:
  WorkloadGen(std::uint64_t logical_sectors, std::uint32_t sectors_per_page,
              std::uint64_t seed)
      : sectors_(logical_sectors), spp_(sectors_per_page), rng_(seed) {}

  ftl::IoRequest next() {
    ftl::IoRequest req;
    req.arrival = now_;
    now_ += 1000 + rng_.below(100'000);
    req.write = rng_.chance(0.6);

    const std::uint32_t shape = static_cast<std::uint32_t>(rng_.below(5));
    SectorAddr off;
    SectorCount len;
    switch (shape) {
      case 0:  // full aligned page
        off = rng_.below(sectors_ / spp_) * spp_;
        len = spp_;
        break;
      case 1: {  // across-page
        len = rng_.between(2, spp_);
        const SectorAddr boundary =
            rng_.between(1, sectors_ / spp_ - 1) * spp_;
        off = boundary - rng_.between(1, len - 1);
        break;
      }
      case 2:  // small intra-page
        len = rng_.between(1, spp_ - 1);
        off = rng_.below(sectors_ / spp_) * spp_ +
              rng_.below(spp_ - len);
        break;
      case 3:  // multi-page span
        len = rng_.between(spp_ + 1, 4 * spp_);
        off = rng_.below(sectors_ - len);
        break;
      default:  // anything
        len = rng_.between(1, 3 * spp_);
        off = rng_.below(sectors_ - len);
        break;
    }
    req.range = SectorRange::of(off, len);
    return req;
  }

 private:
  std::uint64_t sectors_;
  std::uint32_t spp_;
  Rng rng_;
  SimTime now_ = 0;
};

/// Mounts a crashed device's surviving flash image and re-aligns the oracle
/// over the one legitimately lost in-flight write, exactly like the
/// replayer's crash harness: `inflight`/`pre_stamps` describe the request
/// that threw PowerLoss (empty range when it was not a write). Every other
/// sector must read back its acknowledged stamp — AF_CHECK aborts otherwise.
inline std::unique_ptr<sim::Ssd> crash_mount(
    std::unique_ptr<sim::Ssd> crashed, const ssd::SsdConfig& config,
    ftl::SchemeKind kind, SectorRange inflight,
    const std::vector<std::uint64_t>& pre_stamps,
    ssd::RecoveryReport* report = nullptr) {
  const ssd::Oracle oracle_seed = *crashed->oracle();
  nand::FlashArray image = crashed->release_flash();
  crashed.reset();
  auto mounted =
      sim::Ssd::mount(config, kind, std::move(image), &oracle_seed, report);

  const std::uint32_t spp = mounted->scheme().page_geometry().sectors_per_page;
  const std::uint64_t logical_sectors = config.logical_sectors();
  for (SectorAddr base = 0; base < logical_sectors; base += spp) {
    const SectorRange r = SectorRange::of(
        base, std::min<std::uint64_t>(spp, logical_sectors - base));
    ftl::ReadPlan plan;
    (void)mounted->scheme().read({0, /*write=*/false, r}, 0, &plan);
    for (const auto& obs : plan.observed) {
      const std::uint64_t expected = mounted->oracle()->expected(obs.sector);
      if (obs.stamp == expected) continue;
      const bool tolerated =
          inflight.contains(obs.sector) &&
          obs.stamp == pre_stamps[obs.sector - inflight.begin];
      AF_CHECK_MSG(tolerated,
                   "post-recovery state diverges from acknowledged writes");
      mounted->oracle_mut()->force(obs.sector, obs.stamp);
    }
  }
  return mounted;
}

/// Reads back the whole logical space page by page; the Ssd's oracle aborts
/// on any stale sector.
inline void verify_full_space(sim::Ssd& ssd) {
  const auto spp = ssd.config().geometry.sectors_per_page();
  const auto pages = ssd.config().logical_sectors() / spp;
  SimTime t = 1;
  for (std::uint64_t p = 0; p < pages; ++p) {
    ftl::IoRequest req{t++, /*write=*/false, SectorRange::of(p * spp, spp)};
    submit_ok(ssd, req);
  }
}

}  // namespace af::test

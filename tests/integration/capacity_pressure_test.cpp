// Capacity-pressure behavior under every scheme (DESIGN.md §9): a device
// filled past what GC can sustain refuses writes with Status::kNoSpace
// instead of crashing or live-locking, TRIM restores admissibility, the
// GC-debt throttle paces writers instead of letting them outrun reclamation,
// wear leveling narrows the erase spread, and a power cut taken at full
// pressure mounts back to the same admission state with all data intact.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ftl/across_ftl.h"
#include "nand/power.h"
#include "sim/ssd.h"
#include "../helpers.h"

namespace af {
namespace {

/// Tiny device exporting nearly all raw capacity: with only ~3% slack the
/// admission guard must engage long before GC is starved.
ssd::SsdConfig pressure_config() {
  auto config = test::tiny_config();
  config.exported_fraction = 0.97;
  return config;
}

ftl::IoRequest write_req(SimTime t, SectorAddr off, SectorCount len) {
  return {t, /*write=*/true, SectorRange::of(off, len)};
}

ftl::IoRequest trim_req(SimTime t, SectorAddr off, SectorCount len) {
  return {t, /*write=*/false, SectorRange::of(off, len), /*trim=*/true};
}

class CapacityPressure : public ::testing::TestWithParam<ftl::SchemeKind> {};

TEST_P(CapacityPressure, FillRejectsTrimRecovers) {
  const auto config = pressure_config();
  const std::uint32_t spp = config.geometry.sectors_per_page();
  const std::uint64_t pages = config.logical_sectors() / spp;
  sim::Ssd ssd(config, GetParam());

  // Sweep the full logical space until some write bounces with kNoSpace.
  // Everything accepted before that point must stay readable; the device
  // must never throw or lose data.
  SimTime t = 1;
  std::uint64_t filled = 0;
  bool rejected = false;
  for (std::uint64_t round = 0; round < 4 && !rejected; ++round) {
    for (std::uint64_t p = 0; p < pages; ++p) {
      const auto completion = ssd.submit(write_req(t++, p * spp, spp));
      if (!completion.accepted) {
        EXPECT_EQ(completion.status, ssd::Status::kNoSpace);
        rejected = true;
        break;
      }
      filled = std::max(filled, p + 1);
    }
  }
  ASSERT_TRUE(rejected) << "97% exported never hit the admission guard";
  EXPECT_GT(ssd.stats().faults().no_space_rejections, 0u);
  EXPECT_FALSE(ssd.engine().read_only());

  // Reads still work at full pressure (oracle verifies payloads).
  for (std::uint64_t p = 0; p < filled; ++p) {
    (void)test::submit_ok(
        ssd, {t++, /*write=*/false, SectorRange::of(p * spp, spp)});
  }

  // Trim a quarter of the space: admission must clear...
  (void)test::submit_ok(ssd, trim_req(t++, 0, (pages / 4) * spp));
  // ...and writes into the trimmed span succeed again.
  for (std::uint64_t p = 0; p < pages / 8; ++p) {
    (void)test::submit_ok(ssd, write_req(t++, p * spp, spp));
  }

  if (auto* across = dynamic_cast<ftl::AcrossFtl*>(&ssd.scheme())) {
    across->check_invariants();
  }
}

TEST_P(CapacityPressure, PowerCutAtFullPressure) {
  // Crash while the device sits at the admission ceiling; the mount must
  // reproduce the same pressure state: acknowledged data verifies, and the
  // freshly computed admission decision still refuses new writes until a
  // trim clears room.
  const auto config = pressure_config();
  const std::uint32_t spp = config.geometry.sectors_per_page();
  const std::uint64_t pages = config.logical_sectors() / spp;

  auto ssd = std::make_unique<sim::Ssd>(config, GetParam());
  SimTime t = 1;
  bool rejected = false;
  for (std::uint64_t round = 0; round < 4 && !rejected; ++round) {
    for (std::uint64_t p = 0; p < pages; ++p) {
      const auto completion = ssd->submit(write_req(t++, p * spp, spp));
      if (!completion.accepted) {
        rejected = true;
        break;
      }
    }
  }
  ASSERT_TRUE(rejected);

  // Rejected writes change no state, so the cut must land inside flash
  // traffic that still exists at the ceiling: overwrites of live pages are
  // admitted (they add no net live data) — run those until power dies.
  ssd->engine().array().arm_power_cut({40, /*seed=*/11});
  bool crashed = false;
  SectorRange inflight{};
  std::vector<std::uint64_t> pre_stamps;
  try {
    for (std::uint64_t p = 0; p < pages; ++p) {
      const auto req = write_req(t++, (p % (pages / 2)) * spp, spp);
      pre_stamps.clear();
      for (SectorAddr s = req.range.begin; s < req.range.end; ++s) {
        pre_stamps.push_back(ssd->oracle()->expected(s));
      }
      inflight = req.range;
      (void)ssd->submit(req);
    }
  } catch (const nand::PowerLoss&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);

  auto mounted = test::crash_mount(std::move(ssd), config, GetParam(),
                                   inflight, pre_stamps);

  // All acknowledged data intact.
  SimTime rt = t + 1'000'000;
  for (std::uint64_t p = 0; p < pages; ++p) {
    (void)test::submit_ok(
        *mounted, {rt++, /*write=*/false, SectorRange::of(p * spp, spp)});
  }
  // A trim still clears the pressure on the mounted device.
  (void)test::submit_ok(*mounted, trim_req(rt++, 0, (pages / 4) * spp));
  for (std::uint64_t p = 0; p < pages / 8; ++p) {
    (void)test::submit_ok(*mounted, write_req(rt++, p * spp, spp));
  }
}

TEST_P(CapacityPressure, ThrottlePacesWritesUnderGcDebt) {
  // Same churn with and without the valve: the throttled run must record
  // stalls, charge them to write latency, and end with the same data (the
  // valve delays, it never drops).
  auto config = test::tiny_config();
  config.capacity.throttle_window_blocks = 4;
  config.capacity.throttle_ns_per_block = 50'000;

  sim::Ssd ssd(config, GetParam());
  test::WorkloadGen gen(config.logical_sectors() / 2,
                        config.geometry.sectors_per_page(), 31);
  for (int i = 0; i < 6'000; ++i) {
    (void)test::submit_ok(ssd, gen.next());
  }
  const auto& faults = ssd.stats().faults();
  EXPECT_GT(faults.throttle_stalls, 0u);
  EXPECT_GT(faults.throttle_stall_ns, 0u);
  test::verify_full_space(ssd);
}

TEST_P(CapacityPressure, WearLevelingNarrowsEraseSpread) {
  // A hot/cold split workload wears the hot half's blocks; leveling must
  // migrate cold blocks into rotation and keep the spread near the
  // threshold, with the oracle confirming no payload is disturbed.
  auto config = test::tiny_config();
  config.capacity.wear_spread_threshold = 4;
  config.capacity.wear_migrate_per_pass = 2;
  const std::uint32_t spp = config.geometry.sectors_per_page();
  const std::uint64_t pages = config.logical_sectors() / spp;

  sim::Ssd ssd(config, GetParam());
  SimTime t = 1;
  // Cold data: the first half of the space, written once.
  for (std::uint64_t p = 0; p < pages / 2; ++p) {
    (void)test::submit_ok(ssd, write_req(t++, p * spp, spp));
  }
  // Hot churn confined to the second half.
  Rng rng(7);
  for (int i = 0; i < 12'000; ++i) {
    const std::uint64_t p = pages / 2 + rng.below(pages / 2);
    (void)test::submit_ok(ssd, write_req(t++, p * spp, spp));
  }

  const auto& faults = ssd.stats().faults();
  EXPECT_GT(faults.wear_level_migrations, 0u);
  EXPECT_GT(faults.wear_spread, 0u);

  const auto wear = ssd.engine().array().wear();
  EXPECT_LE(wear.spread(),
            config.capacity.wear_spread_threshold +
                2 * config.capacity.wear_migrate_per_pass + 2)
      << "leveling failed to keep the erase spread bounded";

  test::verify_full_space(ssd);
  if (auto* across = dynamic_cast<ftl::AcrossFtl*>(&ssd.scheme())) {
    across->check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CapacityPressure,
                         ::testing::Values(ftl::SchemeKind::kPageFtl,
                                           ftl::SchemeKind::kMrsm,
                                           ftl::SchemeKind::kAcrossFtl),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ftl::SchemeKind::kPageFtl: return "PageFtl";
                             case ftl::SchemeKind::kMrsm: return "Mrsm";
                             case ftl::SchemeKind::kAcrossFtl: return "Across";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace af

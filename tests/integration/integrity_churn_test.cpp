// End-to-end data-integrity churn (DESIGN.md §8): every scheme runs a mixed
// oracle-verified workload while latent bit errors grow, the ECC ladder
// rescues marginal reads, background scrub refreshes rotting pages and
// parity stripes rebuild uncorrectable ones — including errors landing on
// live across-page areas and MRSM packed slots (the RMW reads inside writes
// go through the same ladder). Degradation order under wear is pinned: data
// stays intact until parity protection is exhausted, then the device drops
// to read-only exactly like spare exhaustion. A power cut may land inside a
// scrub tick; the mount must still recover oracle-equivalent state and
// re-seal surviving stripes from OOB.
#include <gtest/gtest.h>

#include "ftl/across_ftl.h"
#include "trace/profiles.h"
#include "trace/replayer.h"
#include "trace/synth.h"
#include "../helpers.h"

namespace af {
namespace {

/// Moderate rot: the ECC ladder and the scrubber both see real work, but
/// jointly they keep every page recoverable (no uncorrectables expected).
ssd::SsdConfig rotting_config() {
  auto config = test::tiny_config();
  config.faults.ber_base = 4.0;
  config.faults.ber_retention = 0.25;     // per 1000 ops since program
  config.faults.ber_read_disturb = 0.05;  // per 100 block reads
  config.integrity.scrub_interval_requests = 16;
  config.integrity.scrub_pages_per_tick = 8;
  config.integrity.scrub_ber_watermark = 5.0;
  config.integrity.parity_stripe_width = 4;
  return config;
}

class IntegrityChurn : public ::testing::TestWithParam<ftl::SchemeKind> {};

TEST_P(IntegrityChurn, OracleSurvivesScrubAndParityChurn) {
  const auto config = rotting_config();
  sim::Ssd ssd(config, GetParam());
  // Half the logical space: width-4 parity carries ~13% live overhead, which
  // the tiny geometry cannot absorb at full (75%) utilization.
  test::WorkloadGen gen(config.logical_sectors() / 2,
                        config.geometry.sectors_per_page(), 17);
  for (int i = 0; i < 8'000; ++i) {
    const auto completion = test::submit_ok(ssd, gen.next());
    ASSERT_FALSE(completion.data_lost);
  }

  // Every layer of the machinery actually ran.
  const auto& faults = ssd.stats().faults();
  EXPECT_GT(faults.raw_bit_errors, 0u);
  EXPECT_GT(faults.read_disturb_reads, 0u);
  EXPECT_GT(faults.ecc_retry_steps, 0u);
  EXPECT_GT(faults.ecc_retry_recoveries, 0u);
  EXPECT_GT(faults.scrub_ticks, 0u);
  EXPECT_GT(faults.scrub_scans, 0u);
  EXPECT_GT(faults.scrub_relocations, 0u);
  EXPECT_GT(faults.parity_writes, 0u);
  EXPECT_GT(faults.stripes_broken, 0u);  // GC erased striped blocks
  // ...and jointly kept everything readable.
  EXPECT_EQ(faults.uncorrectable_reads, 0u);
  EXPECT_EQ(faults.lost_pages, 0u);
  EXPECT_FALSE(ssd.engine().read_only());

  if (auto* across = dynamic_cast<ftl::AcrossFtl*>(&ssd.scheme())) {
    across->check_invariants();
  }
  test::verify_full_space(ssd);
}

TEST_P(IntegrityChurn, UncorrectableLivePagesRebuildFromParity) {
  // Every sensing saturates past the ECC budget, so *all* reads — host
  // reads, RMW reads of MRSM slots, across-area merges, GC relocation reads
  // — are uncorrectable and survive only through their parity stripe. The
  // oracle proves the rebuilt payloads are the acknowledged ones.
  auto config = test::tiny_config();
  config.faults.ber_base = 1e9;
  config.integrity.read_retry_steps = 1;
  config.integrity.read_retry_ber_scale = 1.0;
  config.integrity.parity_stripe_width = 3;
  sim::Ssd ssd(config, GetParam());
  test::WorkloadGen gen(config.logical_sectors() / 2,
                        config.geometry.sectors_per_page(), 5);
  std::uint64_t lost_completions = 0;
  for (int i = 0; i < 1'500; ++i) {
    const auto completion = ssd.submit(gen.next());
    // Writes are refused once a broken-stripe page is lost and the device
    // degrades; reads keep flowing either way.
    if (completion.accepted && completion.data_lost) ++lost_completions;
  }

  const auto& faults = ssd.stats().faults();
  EXPECT_GT(faults.uncorrectable_reads, 0u);
  EXPECT_GT(faults.parity_rebuilds, 0u);
  EXPECT_GT(faults.parity_rebuild_reads, faults.parity_rebuilds);
  // Loss is only possible where GC had already broken the stripe, and every
  // loss was surfaced per-completion, never silent.
  EXPECT_EQ(faults.lost_pages > 0, lost_completions > 0 ||
                                       ssd.engine().read_only());
  // Stamps survive simulated data loss, so the sweep still verifies: the
  // counters above, not corrupted payloads, are the loss model.
  test::verify_full_space(ssd);
}

TEST_P(IntegrityChurn, WearRetirementAndScrubDegradeInOrder) {
  // Wear-ramped erase failures retire blocks while scrub keeps refreshing:
  // parity stripes break as their blocks die, and once spares are exhausted
  // the device enters read-only (PR 1 semantics) with all data intact.
  auto config = rotting_config();
  config.faults.erase_fail = 1.0;
  config.faults.seed = 7;
  config.gc_threshold = 0.5;
  sim::Ssd ssd(config, GetParam());
  const auto spp = config.geometry.sectors_per_page();
  const std::uint64_t footprint_pages = config.logical_pages() / 8;

  Rng rng(21);
  SimTime t = 0;
  int submitted = 0;
  for (; submitted < 20'000 && !ssd.engine().read_only(); ++submitted) {
    const std::uint64_t p = rng.below(footprint_pages);
    (void)ssd.submit({t++, true, SectorRange::of(p * spp, spp)});
  }
  ASSERT_TRUE(ssd.engine().read_only())
      << "device never degraded after " << submitted << " writes";
  const auto& faults = ssd.stats().faults();
  EXPECT_GT(faults.retired_blocks, 0u);
  EXPECT_GT(faults.stripes_broken, 0u);  // retirement tore stripes down
  EXPECT_EQ(faults.lost_pages, 0u);      // ...but lost no data doing it

  // Read-only: writes refused, scrub stands down, reads still verify.
  const std::uint64_t ticks_at_degrade = faults.scrub_ticks;
  EXPECT_FALSE(ssd.submit({t++, true, SectorRange::of(0, spp)}).accepted);
  const auto read = ssd.submit({t++, false, SectorRange::of(0, spp)});
  EXPECT_TRUE(read.accepted);
  EXPECT_EQ(faults.scrub_ticks, ticks_at_degrade);
  test::verify_full_space(ssd);
}

TEST_P(IntegrityChurn, PowerCutInsideScrubRecoversAndReseals) {
  // Scrub reads/programs are physical ops, so sampled cuts land before,
  // inside and after scrub ticks; the checkpointed mount must come back
  // oracle-equivalent with surviving stripes re-sealed from OOB stamps.
  auto config = rotting_config();
  config.integrity.scrub_interval_requests = 8;  // scrub often: more windows
  config.checkpoint.interval_requests = 16;
  config.checkpoint.snapshot_every = 3;
  trace::SynthProfile profile = trace::lun_profile(0, 250);
  const trace::Trace t = trace::generate(profile, config.logical_sectors());

  trace::ReplayOptions options;  // aged: GC and scrub both live at the cut
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto res = trace::replay_with_power_cut(config, GetParam(), t,
                                                  {/*at_op=*/0, seed}, options);
    ASSERT_TRUE(res.crashed) << "seed " << seed;
    EXPECT_GT(res.verified_sectors, 0u);
    // The continuation ran with the machinery back on.
    EXPECT_GT(res.result.stats.faults().parity_writes, 0u);
  }
}

TEST_P(IntegrityChurn, InertIntegrityKnobsAreBitIdentical) {
  // With BER rates zero, scrub off and parity off, the remaining integrity
  // knobs (ECC strength, ladder depth, watermark) must be dead weight: the
  // device is bit-for-bit the baseline one, completion times included.
  auto tuned = test::tiny_config();
  tuned.integrity.ecc_correctable_bits = 2;
  tuned.integrity.read_retry_steps = 9;
  tuned.integrity.read_retry_ber_scale = 0.9;
  tuned.integrity.scrub_ber_watermark = 0.01;
  tuned.integrity.scrub_pages_per_tick = 64;
  sim::Ssd a(test::tiny_config(), GetParam());
  sim::Ssd b(tuned, GetParam());
  test::WorkloadGen gen_a(tuned.logical_sectors(),
                          tuned.geometry.sectors_per_page(), 8);
  test::WorkloadGen gen_b(tuned.logical_sectors(),
                          tuned.geometry.sectors_per_page(), 8);
  for (int i = 0; i < 4'000; ++i) {
    const auto done_a = test::submit_ok(a, gen_a.next()).done;
    const auto done_b = test::submit_ok(b, gen_b.next()).done;
    ASSERT_EQ(done_a, done_b);
  }
  EXPECT_EQ(a.stats().flash_writes(), b.stats().flash_writes());
  EXPECT_EQ(a.stats().flash_reads(), b.stats().flash_reads());
  EXPECT_EQ(a.stats().erases(), b.stats().erases());
  EXPECT_EQ(b.stats().faults().raw_bit_errors, 0u);
  EXPECT_EQ(b.stats().faults().scrub_ticks, 0u);
  EXPECT_EQ(b.stats().faults().parity_writes, 0u);
}

TEST_P(IntegrityChurn, SameSeedSameIntegrityOutcome) {
  // Full machinery on: two devices with the same seed agree on every §8
  // counter and completion time after the same workload.
  const auto config = rotting_config();
  sim::Ssd a(config, GetParam());
  sim::Ssd b(config, GetParam());
  test::WorkloadGen gen_a(config.logical_sectors() / 2,
                          config.geometry.sectors_per_page(), 23);
  test::WorkloadGen gen_b(config.logical_sectors() / 2,
                          config.geometry.sectors_per_page(), 23);
  for (int i = 0; i < 3'000; ++i) {
    ASSERT_EQ(test::submit_ok(a, gen_a.next()).done,
              test::submit_ok(b, gen_b.next()).done);
  }
  const auto& fa = a.stats().faults();
  const auto& fb = b.stats().faults();
  EXPECT_EQ(fa.raw_bit_errors, fb.raw_bit_errors);
  EXPECT_EQ(fa.ecc_retry_steps, fb.ecc_retry_steps);
  EXPECT_EQ(fa.ecc_retry_recoveries, fb.ecc_retry_recoveries);
  EXPECT_EQ(fa.scrub_scans, fb.scrub_scans);
  EXPECT_EQ(fa.scrub_relocations, fb.scrub_relocations);
  EXPECT_EQ(fa.parity_writes, fb.parity_writes);
  EXPECT_EQ(fa.stripes_broken, fb.stripes_broken);
  EXPECT_EQ(a.stats().flash_writes(), b.stats().flash_writes());
  EXPECT_EQ(a.stats().erases(), b.stats().erases());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, IntegrityChurn,
                         ::testing::Values(ftl::SchemeKind::kPageFtl,
                                           ftl::SchemeKind::kMrsm,
                                           ftl::SchemeKind::kAcrossFtl),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ftl::SchemeKind::kPageFtl: return "PageFtl";
                             case ftl::SchemeKind::kMrsm: return "Mrsm";
                             case ftl::SchemeKind::kAcrossFtl: return "Across";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace af

// GC stress: a footprint a few times smaller than the device, overwritten
// many times, so every block cycles through GC repeatedly. Checks state
// conservation and oracle correctness under heavy relocation.
#include <gtest/gtest.h>

#include "ftl/across_ftl.h"
#include "../helpers.h"

namespace af {
namespace {

class GcChurn : public ::testing::TestWithParam<ftl::SchemeKind> {};

TEST_P(GcChurn, HeavyOverwriteKeepsStateConsistent) {
  const auto config = test::tiny_config();
  sim::Ssd ssd(config, GetParam());
  const auto spp = config.geometry.sectors_per_page();
  const std::uint64_t footprint_pages = config.logical_pages() / 4;

  Rng rng(5);
  SimTime t = 0;
  for (int i = 0; i < 12'000; ++i) {
    const std::uint64_t p = rng.below(footprint_pages);
    SectorRange range;
    if (rng.chance(0.3)) {
      // Unaligned small write, possibly across-page.
      const SectorCount len = rng.between(2, spp);
      const SectorAddr off = p * spp + rng.below(spp);
      range = SectorRange::of(off, len);
      if (range.end > footprint_pages * spp) {
        range = SectorRange::of(footprint_pages * spp - len, len);
      }
    } else {
      range = SectorRange::of(p * spp, spp);
    }
    test::submit_ok(ssd, {t++, true, range});
  }

  EXPECT_GT(ssd.engine().gc_runs(), 10u);
  EXPECT_GT(ssd.stats().erases(), 50u);

  // State conservation: page states must add up to the array size.
  const auto& counters = ssd.engine().array().counters();
  EXPECT_EQ(counters.free_pages + counters.valid_pages + counters.invalid_pages,
            config.geometry.total_pages());

  if (auto* across = dynamic_cast<ftl::AcrossFtl*>(&ssd.scheme())) {
    across->check_invariants();
  }
  test::verify_full_space(ssd);
}

TEST_P(GcChurn, EraseCountsMatchArrayCounters) {
  const auto config = test::tiny_config();
  sim::Ssd ssd(config, GetParam());
  const auto spp = config.geometry.sectors_per_page();

  Rng rng(6);
  SimTime t = 0;
  for (int i = 0; i < 8'000; ++i) {
    const std::uint64_t p = rng.below(config.logical_pages() / 3);
    test::submit_ok(ssd, {t++, true, SectorRange::of(p * spp, spp)});
  }
  EXPECT_EQ(ssd.stats().erases(), ssd.engine().array().total_erases());
  EXPECT_GT(ssd.engine().array().max_erase_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, GcChurn,
                         ::testing::Values(ftl::SchemeKind::kPageFtl,
                                           ftl::SchemeKind::kMrsm,
                                           ftl::SchemeKind::kAcrossFtl),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ftl::SchemeKind::kPageFtl: return "PageFtl";
                             case ftl::SchemeKind::kMrsm: return "Mrsm";
                             case ftl::SchemeKind::kAcrossFtl: return "Across";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace af

// Sudden power-off recovery, end to end: torn pages, scheme-specific crash
// windows (AMerge/ARollback, MRSM packed programs), randomized crash-point
// sweeps over synthetic traces, and recovery determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ftl/scheme.h"
#include "nand/power.h"
#include "sim/ssd.h"
#include "ssd/serialize.h"
#include "trace/profiles.h"
#include "trace/replayer.h"
#include "trace/synth.h"
#include "../helpers.h"

namespace af {
namespace {

constexpr std::uint32_t kSpp = 16;  // tiny config: 8 KiB pages

std::vector<std::uint8_t> mapping_bytes(const ftl::FtlScheme& scheme) {
  ssd::ByteSink sink;
  scheme.serialize_mapping(sink);
  return sink.take();
}

trace::TraceRecord w(SimTime t, SectorAddr off, SectorCount len) {
  return {t, /*write=*/true, off, len};
}

trace::TraceRecord r(SimTime t, SectorAddr off, SectorCount len) {
  return {t, /*write=*/false, off, len};
}

/// Replays `t` with a cut at every op index in [1, horizon]: every possible
/// crash point of the trace must recover to oracle-equivalent state (the
/// harness aborts otherwise).
void sweep_every_op(const ssd::SsdConfig& config, ftl::SchemeKind kind,
                    const trace::Trace& t) {
  trace::ReplayOptions options;
  options.age = false;
  const auto dry = trace::replay_with_power_cut(
      config, kind, t, {/*at_op=*/UINT64_MAX, /*seed=*/0}, options);
  ASSERT_FALSE(dry.crashed);
  ASSERT_GT(dry.total_ops, 0u);
  for (std::uint64_t op = 1; op <= dry.total_ops; ++op) {
    const auto res = trace::replay_with_power_cut(
        config, kind, t, {/*at_op=*/op, /*seed=*/0}, options);
    EXPECT_TRUE(res.crashed) << "op " << op;
    EXPECT_GT(res.verified_sectors, 0u) << "op " << op;
  }
}

TEST(Recovery, TornDataPageFallsBackToOldVersion) {
  const ssd::SsdConfig config = test::tiny_config();
  auto ssd = std::make_unique<sim::Ssd>(config, ftl::SchemeKind::kPageFtl);
  test::submit_ok(*ssd, {0, true, SectorRange::of(0, kSpp)});
  test::submit_ok(*ssd, {1, true, SectorRange::of(kSpp, kSpp)});

  // Snapshot the acknowledged state *before* the doomed overwrite — the
  // host never sees it complete, so recovery must serve the old version.
  const ssd::Oracle acknowledged = *ssd->oracle();
  ssd->engine().array().arm_power_cut({/*at_op=*/1, /*seed=*/0});
  EXPECT_THROW((void)ssd->submit({2, true, SectorRange::of(0, kSpp)}),
               nand::PowerLoss);

  nand::FlashArray image = ssd->release_flash();
  ssd.reset();
  ssd::RecoveryReport report;
  auto mounted = sim::Ssd::mount(config, ftl::SchemeKind::kPageFtl,
                                 std::move(image), &acknowledged, &report);
  EXPECT_EQ(report.torn_pages, 1u);
  test::verify_full_space(*mounted);
}

TEST(Recovery, AcrossCrashWindows) {
  // Direct write → AMerge → ARollback, each the paper's §3.3 lifecycle
  // transition, with reads pinning the final state. Every op of this trace
  // is a crash point; the area's multi-program windows (rollback programs
  // several pages) must never lose an acknowledged sector.
  trace::Trace t;
  SimTime now = 0;
  for (SectorAddr p = 0; p < 4; ++p) {
    t.push_back(w(now++, p * kSpp, kSpp));  // settle normal pages
  }
  t.push_back(w(now++, 8, kSpp));      // across pages 0-1: direct write
  t.push_back(w(now++, 10, 12));       // overlapping, fits: AMerge
  t.push_back(w(now++, 4, kSpp));      // union outgrows a page: ARollback
  t.push_back(w(now++, kSpp + 8, kSpp));  // new area over pages 1-2
  t.push_back(r(now++, 0, 4 * kSpp));
  sweep_every_op(test::tiny_config(), ftl::SchemeKind::kAcrossFtl, t);
}

TEST(Recovery, MrsmPackedCrashWindows) {
  // Misaligned sub-page writes force region upgrades and packed programs;
  // overwrites retire slots; the read sweeps it all.
  trace::Trace t;
  SimTime now = 0;
  for (SectorAddr p = 0; p < 4; ++p) {
    t.push_back(w(now++, p * kSpp, kSpp));
  }
  t.push_back(w(now++, 1, 3));             // sub-page, misaligned: upgrade
  t.push_back(w(now++, kSpp + 5, 6));      // second LPN joins the pack
  t.push_back(w(now++, 2, 5));             // overwrite retires slots
  t.push_back(w(now++, 2 * kSpp + 9, 3));  // third LPN
  t.push_back(r(now++, 0, 4 * kSpp));
  sweep_every_op(test::tiny_config(), ftl::SchemeKind::kMrsm, t);
}

TEST(Recovery, CheckpointedCrashWindows) {
  // Same oracle-equivalence guarantee when a checkpoint chain is in play:
  // cut points land before, inside and after journal writes.
  ssd::SsdConfig config = test::tiny_config();
  config.checkpoint.interval_requests = 3;
  config.checkpoint.snapshot_every = 2;
  trace::Trace t;
  SimTime now = 0;
  for (SectorAddr p = 0; p < 4; ++p) t.push_back(w(now++, p * kSpp, kSpp));
  t.push_back(w(now++, 8, kSpp));
  t.push_back(w(now++, 10, 12));
  t.push_back(w(now++, 4, kSpp));
  t.push_back(r(now++, 0, 4 * kSpp));
  sweep_every_op(config, ftl::SchemeKind::kAcrossFtl, t);
}

struct SweepCase {
  ftl::SchemeKind kind;
  std::size_t profile;
  bool checkpoint;
};

class CrashSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(CrashSweep, SampledCrashPointsRecoverOracleEquivalent) {
  const SweepCase& c = GetParam();
  ssd::SsdConfig config = test::tiny_config();
  if (c.checkpoint) {
    config.checkpoint.interval_requests = 16;
    config.checkpoint.snapshot_every = 3;
  }
  trace::SynthProfile profile = trace::lun_profile(c.profile, 250);
  const trace::Trace t =
      trace::generate(profile, config.logical_sectors());

  trace::ReplayOptions options;  // aged device: GC live at the crash
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto res = trace::replay_with_power_cut(config, c.kind, t,
                                                  {/*at_op=*/0, seed}, options);
    ASSERT_TRUE(res.crashed) << "seed " << seed;
    EXPECT_GT(res.verified_sectors, 0u);
    EXPECT_EQ(res.recovery.used_checkpoint,
              c.checkpoint && res.recovery.checkpoint_seq > 0);
    // The continuation replay finished the trace on the recovered device.
    EXPECT_GT(res.result.stats.all_writes().latency().count() +
                  res.result.stats.all_reads().latency().count(),
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, CrashSweep,
    testing::Values(SweepCase{ftl::SchemeKind::kPageFtl, 0, false},
                    SweepCase{ftl::SchemeKind::kPageFtl, 3, true},
                    SweepCase{ftl::SchemeKind::kMrsm, 0, false},
                    SweepCase{ftl::SchemeKind::kMrsm, 3, true},
                    SweepCase{ftl::SchemeKind::kAcrossFtl, 0, false},
                    SweepCase{ftl::SchemeKind::kAcrossFtl, 3, true}),
    [](const auto& param_info) {
      std::string name;
      switch (param_info.param.kind) {
        case ftl::SchemeKind::kPageFtl: name = "PageFtl"; break;
        case ftl::SchemeKind::kMrsm: name = "Mrsm"; break;
        default: name = "Across"; break;
      }
      name += "Lun" + std::to_string(param_info.param.profile);
      name += param_info.param.checkpoint ? "Ckpt" : "NoCkpt";
      return name;
    });

TEST(Recovery, DeterministicAcrossRuns) {
  // Same trace + same plan ⇒ bit-identical recovered tables and identical
  // mount reports, run to run.
  const ssd::SsdConfig config = test::tiny_config();
  trace::SynthProfile profile = trace::lun_profile(1, 200);
  const trace::Trace t = trace::generate(profile, config.logical_sectors());

  auto run_once = [&](std::vector<std::uint8_t>* tables,
                      ssd::RecoveryReport* report) {
    auto ssd =
        std::make_unique<sim::Ssd>(config, ftl::SchemeKind::kAcrossFtl);
    ssd->engine().array().arm_power_cut({/*at_op=*/150, /*seed=*/9});
    bool crashed = false;
    for (const auto& rec : t) {
      try {
        (void)ssd->submit({rec.timestamp, rec.write, rec.range()});
      } catch (const nand::PowerLoss&) {
        crashed = true;
        break;
      }
    }
    ASSERT_TRUE(crashed);
    const ssd::Oracle oracle_seed = *ssd->oracle();
    nand::FlashArray image = ssd->release_flash();
    ssd.reset();
    auto mounted = sim::Ssd::mount(config, ftl::SchemeKind::kAcrossFtl,
                                   std::move(image), &oracle_seed, report);
    *tables = mapping_bytes(mounted->scheme());
  };

  std::vector<std::uint8_t> tables_a;
  std::vector<std::uint8_t> tables_b;
  ssd::RecoveryReport report_a;
  ssd::RecoveryReport report_b;
  run_once(&tables_a, &report_a);
  run_once(&tables_b, &report_b);

  ASSERT_FALSE(tables_a.empty());
  EXPECT_EQ(tables_a, tables_b);
  EXPECT_EQ(report_a.claims_applied, report_b.claims_applied);
  EXPECT_EQ(report_a.torn_pages, report_b.torn_pages);
  EXPECT_EQ(report_a.pages_scanned, report_b.pages_scanned);
  EXPECT_EQ(report_a.orphans_invalidated, report_b.orphans_invalidated);
  EXPECT_EQ(report_a.mount_time_ns, report_b.mount_time_ns);
}

TEST(Recovery, UncutReplayMatchesPlainReplay) {
  // A cut point beyond the horizon must degenerate to the ordinary replay —
  // the armed-but-silent plan may not perturb results.
  const ssd::SsdConfig config = test::tiny_config();
  trace::SynthProfile profile = trace::lun_profile(2, 150);
  const trace::Trace t = trace::generate(profile, config.logical_sectors());
  trace::ReplayOptions options;
  options.age = false;

  const auto plain = trace::replay(config, ftl::SchemeKind::kAcrossFtl, t,
                                   options);
  const auto uncut = trace::replay_with_power_cut(
      config, ftl::SchemeKind::kAcrossFtl, t,
      {/*at_op=*/UINT64_MAX, /*seed=*/0}, options);
  EXPECT_FALSE(uncut.crashed);
  EXPECT_EQ(uncut.result.stats.all_writes().latency().count(),
            plain.stats.all_writes().latency().count());
  EXPECT_EQ(uncut.result.gc_runs, plain.gc_runs);
  EXPECT_EQ(uncut.result.io_time_s, plain.io_time_s);
}

}  // namespace
}  // namespace af

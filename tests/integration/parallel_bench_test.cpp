// Determinism contract of the parallel bench harness: fanning replays out
// over a thread pool must leave every simulated counter bit-identical to the
// sequential run — the jobs knob may only change wall-clock time.
#include <gtest/gtest.h>

#include <vector>

#include "common.h"
#include "ssd/config.h"
#include "trace/profiles.h"
#include "trace/synth.h"

namespace af {
namespace {

ssd::SsdConfig small_config() {
  auto config = ssd::SsdConfig::paper(8, 32);
  return config;
}

trace::Trace small_trace(std::size_t idx, const ssd::SsdConfig& config) {
  return trace::generate(trace::lun_profile(idx, 1500),
                         bench::addressable_sectors(config));
}

void expect_identical(const trace::ReplayResult& a,
                      const trace::ReplayResult& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.gc_runs, b.gc_runs);
  EXPECT_EQ(a.map_bytes, b.map_bytes);
  EXPECT_EQ(a.map_cache_hits, b.map_cache_hits);
  EXPECT_EQ(a.map_cache_misses, b.map_cache_misses);
  EXPECT_EQ(a.used_fraction, b.used_fraction);
  EXPECT_EQ(a.io_time_s, b.io_time_s);  // exact: same op sequence, same sums

  EXPECT_EQ(a.stats.erases(), b.stats.erases());
  EXPECT_EQ(a.stats.dram_accesses(), b.stats.dram_accesses());
  EXPECT_EQ(a.stats.rmw_reads(), b.stats.rmw_reads());
  for (int k = 0; k < static_cast<int>(ssd::OpKind::kKindCount); ++k) {
    EXPECT_EQ(a.stats.flash_ops(static_cast<ssd::OpKind>(k)),
              b.stats.flash_ops(static_cast<ssd::OpKind>(k)))
        << "op kind " << k;
  }

  EXPECT_EQ(a.wear.min, b.wear.min);
  EXPECT_EQ(a.wear.max, b.wear.max);
  EXPECT_EQ(a.wear.mean, b.wear.mean);

  EXPECT_EQ(a.gc_perf.victim_picks, b.gc_perf.victim_picks);
  EXPECT_EQ(a.gc_perf.heap_pops, b.gc_perf.heap_pops);
  EXPECT_EQ(a.gc_perf.heap_pushes, b.gc_perf.heap_pushes);
  EXPECT_EQ(a.gc_perf.heap_rebuilds, b.gc_perf.heap_rebuilds);
  EXPECT_EQ(a.gc_perf.scan_picks, b.gc_perf.scan_picks);
  EXPECT_EQ(a.gc_perf.scan_blocks, b.gc_perf.scan_blocks);
}

TEST(ParallelBench, RunSchemesJobsDoNotChangeResults) {
  const auto config = small_config();
  const auto tr = small_trace(0, config);

  const auto sequential = bench::run_schemes(config, tr, 1);
  const auto parallel = bench::run_schemes(config, tr, 4);

  ASSERT_EQ(sequential.size(), bench::all_schemes().size());
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t s = 0; s < sequential.size(); ++s) {
    SCOPED_TRACE(sequential[s].scheme);
    expect_identical(sequential[s], parallel[s]);
  }
}

TEST(ParallelBench, ReplayGridJobsDoNotChangeResults) {
  const auto config = small_config();
  std::vector<trace::Trace> traces;
  traces.push_back(small_trace(0, config));
  traces.push_back(small_trace(1, config));

  const auto sequential = bench::replay_grid(config, traces, 1);
  const auto parallel = bench::replay_grid(config, traces, 3);

  ASSERT_EQ(sequential.size(), traces.size());
  ASSERT_EQ(parallel.size(), traces.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    ASSERT_EQ(sequential[t].size(), bench::all_schemes().size());
    ASSERT_EQ(parallel[t].size(), sequential[t].size());
    for (std::size_t s = 0; s < sequential[t].size(); ++s) {
      SCOPED_TRACE(sequential[t][s].scheme);
      expect_identical(sequential[t][s], parallel[t][s]);
    }
  }
}

}  // namespace
}  // namespace af

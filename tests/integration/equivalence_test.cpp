// Master correctness property: under an arbitrary request stream, every FTL
// scheme must return exactly the data the oracle expects for every sector of
// every read — across remapping, merging, rollback, sub-page packing and GC.
#include <gtest/gtest.h>

#include "ftl/across_ftl.h"
#include "../helpers.h"

namespace af {
namespace {

using test::WorkloadGen;

class SchemeEquivalence
    : public ::testing::TestWithParam<std::tuple<ftl::SchemeKind, std::uint64_t>> {};

TEST_P(SchemeEquivalence, RandomWorkloadMatchesOracle) {
  const auto [kind, seed] = GetParam();
  const auto config = test::tiny_config();
  sim::Ssd ssd(config, kind);

  WorkloadGen gen(config.logical_sectors(),
                  config.geometry.sectors_per_page(), seed);
  for (int i = 0; i < 4000; ++i) {
    test::submit_ok(ssd, gen.next());  // reads verify against the oracle internally
    if (i % 512 == 0) {
      if (auto* across = dynamic_cast<ftl::AcrossFtl*>(&ssd.scheme())) {
        across->check_invariants();
      }
    }
  }
  test::verify_full_space(ssd);
  EXPECT_GT(ssd.verified_sectors(), 0u);
  // The workload must have been aggressive enough to trigger GC.
  EXPECT_GT(ssd.engine().gc_runs(), 0u);
}

std::string equivalence_name(
    const ::testing::TestParamInfo<std::tuple<ftl::SchemeKind, std::uint64_t>>&
        info) {
  const ftl::SchemeKind kind = std::get<0>(info.param);
  const std::uint64_t seed = std::get<1>(info.param);
  std::string name = ftl::to_string(kind);
  if (name == "Across-FTL") name = "Across";
  return name + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeEquivalence,
    ::testing::Combine(::testing::Values(ftl::SchemeKind::kPageFtl,
                                         ftl::SchemeKind::kMrsm,
                                         ftl::SchemeKind::kAcrossFtl),
                       ::testing::Values(1u, 2u, 3u, 17u, 99u)),
    equivalence_name);

TEST(SchemeComparison, AcrossFtlIssuesFewerDataWritesOnAcrossHeavyWorkload) {
  // Pure across-page write stream: baseline pays 2 programs per request,
  // Across-FTL pays 1 (§3.1).
  const auto config = test::tiny_config();
  const auto spp = config.geometry.sectors_per_page();

  auto run = [&](ftl::SchemeKind kind) {
    sim::Ssd ssd(config, kind);
    Rng rng(7);
    // Confine the boundaries to a quarter of the space so the area pool
    // stays well under the device's reclaimable ceiling (the pressure valve
    // has its own dedicated test).
    // Boundaries two pages apart: neighbouring areas never interfere, as in
    // real traces where across requests are sparse over a huge LBA span.
    const std::uint64_t boundaries = config.logical_sectors() / spp / 8;
    for (int i = 0; i < 1500; ++i) {
      const std::uint64_t b = 2 * rng.between(1, boundaries);
      const SectorAddr boundary = b * spp;
      // Re-updates of a boundary keep a similar shape (real traces do; the
      // paper measures only 3.9% ARollback), so merges fit in one page.
      const SectorCount len = 8 + b % 7;
      const SectorCount k = len / 2 + rng.below(2);
      ftl::IoRequest req{static_cast<SimTime>(i) * 100'000, true,
                         SectorRange::of(boundary - k, len)};
      test::submit_ok(ssd, req);
    }
    return ssd.stats().flash_ops(ssd::OpKind::kDataWrite);
  };

  const auto baseline = run(ftl::SchemeKind::kPageFtl);
  const auto across = run(ftl::SchemeKind::kAcrossFtl);
  EXPECT_LT(across, baseline);
  // Most requests hit fresh pairs, so the ratio should be well below 1.
  EXPECT_LT(static_cast<double>(across), 0.8 * static_cast<double>(baseline));
}

TEST(SchemeComparison, AcrossFtlAvoidsRmwReadsOnAcrossWrites) {
  const auto config = test::tiny_config();
  const auto spp = config.geometry.sectors_per_page();

  auto run = [&](ftl::SchemeKind kind) {
    sim::Ssd ssd(config, kind);
    // Pre-fill some pages so baseline RMW has something to read.
    SimTime t = 0;
    for (std::uint64_t p = 0; p < 64; ++p) {
      test::submit_ok(ssd, {t++, true, SectorRange::of(p * spp, spp)});
    }
    const auto before = ssd.stats().rmw_reads();
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t b = 2 * rng.between(1, 31);
      const SectorCount len = 8 + b % 7;
      const SectorCount k = len / 2 + rng.below(2);
      test::submit_ok(ssd, {t++, true, SectorRange::of(b * spp - k, len)});
    }
    return ssd.stats().rmw_reads() - before;
  };

  EXPECT_LT(run(ftl::SchemeKind::kAcrossFtl), run(ftl::SchemeKind::kPageFtl));
}

}  // namespace
}  // namespace af

// Fault-injected GC churn: the oracle must prove zero data loss for every
// scheme while programs tear pages, erases retire blocks and reads need
// retry — including faults landing on across-page areas mid-AMerge/ARollback
// and on translation pages (every flash op goes through the same faulty
// path). A separate test drives retirement all the way to spare exhaustion
// and checks the read-only degradation surface.
#include <gtest/gtest.h>

#include "ftl/across_ftl.h"
#include "../helpers.h"

namespace af {
namespace {

ssd::SsdConfig faulty_config() {
  auto config = test::tiny_config();
  config.faults.program_fail = 2e-3;
  config.faults.erase_fail = 5e-3;
  config.faults.read_fail = 5e-3;
  config.faults.seed = 0xFA17;
  return config;
}

class FaultChurn : public ::testing::TestWithParam<ftl::SchemeKind> {};

TEST_P(FaultChurn, OracleSurvivesInjectedFaults) {
  const auto config = faulty_config();
  sim::Ssd ssd(config, GetParam());
  const auto spp = config.geometry.sectors_per_page();
  const std::uint64_t footprint_pages = config.logical_pages() / 4;

  // Same GC-heavy shape as gc_churn_test: small footprint, heavy overwrite,
  // a third of the writes unaligned/across-page so the across machinery
  // (AMerge/ARollback) churns while faults land on it.
  Rng rng(11);
  SimTime t = 0;
  for (int i = 0; i < 12'000; ++i) {
    const std::uint64_t p = rng.below(footprint_pages);
    SectorRange range;
    if (rng.chance(0.3)) {
      const SectorCount len = rng.between(2, spp);
      const SectorAddr off = p * spp + rng.below(spp);
      range = SectorRange::of(off, len);
      if (range.end > footprint_pages * spp) {
        range = SectorRange::of(footprint_pages * spp - len, len);
      }
    } else {
      range = SectorRange::of(p * spp, spp);
    }
    const auto completion = ssd.submit({t++, true, range});
    ASSERT_TRUE(completion.accepted);  // rates far below degradation levels
  }

  // The fault rates are high enough that every recovery path actually ran.
  const auto& faults = ssd.stats().faults();
  EXPECT_GT(faults.program_faults, 0u);
  EXPECT_GT(faults.program_retries, 0u);
  EXPECT_GT(faults.erase_faults, 0u);
  EXPECT_GT(faults.retired_blocks, 0u);
  EXPECT_GT(faults.read_retries, 0u);
  EXPECT_FALSE(ssd.engine().read_only());

  // Recovery stats agree with the array's ground truth.
  const auto& counters = ssd.engine().array().counters();
  EXPECT_EQ(faults.program_faults, counters.program_faults);
  EXPECT_EQ(faults.erase_faults, counters.erase_faults);
  EXPECT_EQ(faults.retired_blocks, counters.retired_blocks);
  EXPECT_EQ(ssd.stats().erases(), ssd.engine().array().total_erases());

  // State conservation now includes retired pages.
  EXPECT_EQ(counters.free_pages + counters.valid_pages +
                counters.invalid_pages + counters.retired_pages,
            config.geometry.total_pages());
  EXPECT_EQ(counters.retired_pages,
            counters.retired_blocks * config.geometry.pages_per_block);

  if (auto* across = dynamic_cast<ftl::AcrossFtl*>(&ssd.scheme())) {
    across->check_invariants();
  }
  // Zero data loss: every logical sector reads back its latest stamp.
  test::verify_full_space(ssd);
}

TEST_P(FaultChurn, SameFaultSeedSameOutcome) {
  // End-to-end determinism: two devices with identical fault seeds agree on
  // every recovery counter after the same workload.
  const auto config = faulty_config();
  sim::Ssd a(config, GetParam());
  sim::Ssd b(config, GetParam());
  const auto spp = config.geometry.sectors_per_page();
  Rng rng(3);
  SimTime t = 0;
  for (int i = 0; i < 4'000; ++i) {
    const std::uint64_t p = rng.below(config.logical_pages() / 3);
    const ftl::IoRequest req{t++, true, SectorRange::of(p * spp, spp)};
    // Late-loop writes may be rejected once faults degrade the devices;
    // determinism only needs both devices to see the identical stream.
    (void)a.submit(req);
    (void)b.submit(req);
  }
  EXPECT_EQ(a.stats().faults().program_faults,
            b.stats().faults().program_faults);
  EXPECT_EQ(a.stats().faults().erase_faults, b.stats().faults().erase_faults);
  EXPECT_EQ(a.stats().faults().read_retries, b.stats().faults().read_retries);
  EXPECT_EQ(a.stats().flash_writes(), b.stats().flash_writes());
  EXPECT_EQ(a.stats().erases(), b.stats().erases());
}

TEST_P(FaultChurn, ZeroRatesMatchFaultFreeDeviceExactly) {
  // The fault seed must be irrelevant when every rate is zero: the model
  // never draws, so a zero-rate device is bit-for-bit the fault-free one.
  auto seeded = test::tiny_config();
  seeded.faults.seed = 0xDEAD;
  sim::Ssd a(test::tiny_config(), GetParam());
  sim::Ssd b(seeded, GetParam());
  const auto spp = seeded.geometry.sectors_per_page();
  Rng rng(8);
  SimTime t = 0;
  SimTime done_a = 0, done_b = 0;
  for (int i = 0; i < 6'000; ++i) {
    const std::uint64_t p = rng.below(seeded.logical_pages() / 3);
    const ftl::IoRequest req{t++, true, SectorRange::of(p * spp, spp)};
    done_a = a.submit(req).done;
    done_b = b.submit(req).done;
  }
  EXPECT_EQ(done_a, done_b);
  EXPECT_EQ(a.stats().flash_writes(), b.stats().flash_writes());
  EXPECT_EQ(a.stats().flash_reads(), b.stats().flash_reads());
  EXPECT_EQ(a.stats().erases(), b.stats().erases());
  EXPECT_EQ(a.stats().faults().total_faults(), 0u);
  EXPECT_EQ(b.stats().faults().total_faults(), 0u);
}

TEST_P(FaultChurn, SpareExhaustionDegradesToReadOnly) {
  auto config = test::tiny_config();
  // Every erase fails: retirement marches until the degradation floor.
  // A high GC threshold raises the floor so read-only engages long before
  // the plane could physically run out of blocks.
  config.faults.erase_fail = 1.0;
  config.faults.seed = 7;
  config.gc_threshold = 0.5;

  sim::Ssd ssd(config, GetParam());
  const auto spp = config.geometry.sectors_per_page();
  const std::uint64_t footprint_pages = config.logical_pages() / 8;

  Rng rng(21);
  SimTime t = 0;
  int submitted = 0;
  for (; submitted < 20'000 && !ssd.engine().read_only(); ++submitted) {
    const std::uint64_t p = rng.below(footprint_pages);
    // Rejection is the exit condition here, checked via read_only() above.
    (void)ssd.submit({t++, true, SectorRange::of(p * spp, spp)});
  }
  ASSERT_TRUE(ssd.engine().read_only())
      << "device never degraded after " << submitted << " writes";
  EXPECT_EQ(ssd.stats().faults().read_only_entries, 1u);
  EXPECT_GT(ssd.stats().faults().retired_blocks, 0u);

  // Writes are refused without simulated cost; reads still work.
  const auto rejected = ssd.submit({t++, true, SectorRange::of(0, spp)});
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.latency, 0u);
  EXPECT_GT(ssd.stats().faults().rejected_writes, 0u);
  const auto read = ssd.submit({t++, false, SectorRange::of(0, spp)});
  EXPECT_TRUE(read.accepted);

  // No data accepted before the degradation was lost.
  test::verify_full_space(ssd);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FaultChurn,
                         ::testing::Values(ftl::SchemeKind::kPageFtl,
                                           ftl::SchemeKind::kMrsm,
                                           ftl::SchemeKind::kAcrossFtl),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ftl::SchemeKind::kPageFtl: return "PageFtl";
                             case ftl::SchemeKind::kMrsm: return "Mrsm";
                             case ftl::SchemeKind::kAcrossFtl: return "Across";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace af

// Device-lifetime soak (DESIGN.md §9): a tiny geometry is burned toward
// end-of-life under mixed write/trim churn with the full robustness stack on
// — wear-ramped erase faults retiring blocks, wear leveling, the GC-debt
// throttle, the mapping journal, and periodic power cuts with full mounts in
// between. The device must degrade *gracefully*: every read oracle-verified
// to the end, writes refused (never corrupted) once spares are gone, and
// every invariant audit clean at every stage.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "ftl/across_ftl.h"
#include "nand/power.h"
#include "sim/ssd.h"
#include "../helpers.h"

namespace af {
namespace {

/// Wear ramp aggressive enough to reach EOL in tens of thousands of ops:
/// past 18 erases a block's program/erase fault odds grow 3%/erase.
ssd::SsdConfig eol_config() {
  auto config = test::tiny_config();
  config.faults.wear_onset = 18;
  config.faults.wear_slope = 0.03;
  config.capacity.throttle_window_blocks = 2;
  config.capacity.throttle_ns_per_block = 20'000;
  config.capacity.wear_spread_threshold = 6;
  config.checkpoint.interval_requests = 32;
  return config;
}

class LifetimeSoak : public ::testing::TestWithParam<ftl::SchemeKind> {};

TEST_P(LifetimeSoak, BurnsToReadOnlyWithoutLosingData) {
  const auto config = eol_config();
  const std::uint32_t spp = config.geometry.sectors_per_page();
  const std::uint64_t pages = config.logical_sectors() / spp;

  auto ssd = std::make_unique<sim::Ssd>(config, GetParam());
  test::WorkloadGen gen(config.logical_sectors() / 2, spp, 41);
  SimTime t = 1;
  std::uint64_t mounts = 0;
  std::uint64_t rejected_writes = 0;
  std::uint64_t ops = 0;
  // Engine fault counters reset at every mount; lifetime totals accumulate
  // across all the device's incarnations.
  std::uint64_t total_trims = 0;
  std::uint64_t total_migrations = 0;
  std::uint64_t total_stalls = 0;
  std::uint64_t total_lost = 0;
  std::uint64_t peak_spread = 0;
  const auto accumulate = [&] {
    const auto& f = ssd->stats().faults();
    total_trims += f.trims;
    total_migrations += f.wear_level_migrations;
    total_stalls += f.throttle_stalls;
    total_lost += f.lost_pages;
    peak_spread = std::max(peak_spread, f.wear_spread);
  };
  constexpr std::uint64_t kOpBudget = 150'000;
  constexpr std::uint64_t kCutEvery = 9'000;  // submits between power cuts

  while (ops < kOpBudget && !ssd->engine().read_only()) {
    // Arm the next scheduled blackout relative to the ops already burned on
    // this incarnation of the device.
    ssd->engine().array().arm_power_cut(
        {/*at_op=*/3'000 + (mounts % 5) * 800, /*seed=*/mounts + 1});
    bool crashed = false;
    SectorRange inflight{};
    std::vector<std::uint64_t> pre_stamps;
    try {
      for (std::uint64_t i = 0; i < kCutEvery && ops < kOpBudget; ++i, ++ops) {
        auto req = gen.next();
        req.arrival = t++;
        if (ops % 97 == 0) {
          // Periodic discards keep pressure bounded and exercise the trim
          // path against every stage of wear.
          const std::uint64_t base = (ops / 97 * 7) % (pages / 2);
          const std::uint64_t len = std::min<std::uint64_t>(8, pages - base);
          req = {t++, /*write=*/false,
                 SectorRange::of(base * spp, len * spp), /*trim=*/true};
        }
        if (req.write) {
          pre_stamps.clear();
          for (SectorAddr s = req.range.begin; s < req.range.end; ++s) {
            pre_stamps.push_back(ssd->oracle()->expected(s));
          }
        }
        inflight = req.write ? req.range : SectorRange{};
        const auto completion = ssd->submit(req);
        if (!completion.accepted) {
          ++rejected_writes;
          EXPECT_NE(completion.status, ssd::Status::kOk);
          if (completion.status == ssd::Status::kReadOnly) break;
        }
        ASSERT_FALSE(completion.data_lost);
      }
    } catch (const nand::PowerLoss&) {
      crashed = true;
    }
    // A blackout mid-request leaves RAM state torn (a write may have
    // invalidated its old page without completing the remap): the device
    // must be remounted before ANY further use — even when it had already
    // degraded to read-only, whose verdict the mount re-derives.
    if (!crashed) {
      if (ssd->engine().read_only()) break;
      continue;
    }

    // Blackout: remount and keep burning. crash_mount audits the surviving
    // state sector-by-sector against the oracle as it re-aligns the one
    // legitimately lost in-flight write.
    accumulate();
    ssd = test::crash_mount(std::move(ssd), config, GetParam(), inflight,
                            pre_stamps);
    ++mounts;

    // Spot-audit after each mount: a sweep of the workload's footprint,
    // oracle-verified sector by sector.
    for (std::uint64_t p = 0; p < pages / 2; p += 7) {
      (void)test::submit_ok(
          *ssd, {t++, /*write=*/false, SectorRange::of(p * spp, spp)});
    }
    if (auto* across = dynamic_cast<ftl::AcrossFtl*>(&ssd->scheme())) {
      across->check_invariants();
    }
  }

  // The soak must actually reach device EOL, through several blackouts.
  accumulate();
  EXPECT_TRUE(ssd->engine().read_only())
      << "op budget exhausted before end-of-life (ops=" << ops << ")";
  EXPECT_GE(mounts, 2u);

  const auto& counters = ssd->engine().array().counters();
  EXPECT_GT(counters.retired_blocks, 0u);
  EXPECT_GT(total_trims, 0u);
  EXPECT_GT(total_migrations, 0u);
  EXPECT_GT(total_stalls, 0u);
  EXPECT_GT(peak_spread, 0u);
  EXPECT_EQ(total_lost, 0u);

  // Read-only means read-only: writes bounce, reads still verify.
  const auto refused =
      ssd->submit({t++, /*write=*/true, SectorRange::of(0, spp)});
  EXPECT_FALSE(refused.accepted);
  EXPECT_EQ(refused.status, ssd::Status::kReadOnly);
  for (std::uint64_t p = 0; p < pages / 2; p += 3) {
    const auto read =
        ssd->submit({t++, /*write=*/false, SectorRange::of(p * spp, spp)});
    EXPECT_TRUE(read.accepted);
    EXPECT_FALSE(read.data_lost);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, LifetimeSoak,
                         ::testing::Values(ftl::SchemeKind::kPageFtl,
                                           ftl::SchemeKind::kMrsm,
                                           ftl::SchemeKind::kAcrossFtl),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ftl::SchemeKind::kPageFtl: return "PageFtl";
                             case ftl::SchemeKind::kMrsm: return "Mrsm";
                             case ftl::SchemeKind::kAcrossFtl: return "Across";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace af

// End-to-end replays of synthetic traces through the replayer, checking the
// measurement plumbing the benches rely on.
#include <gtest/gtest.h>

#include "trace/characterize.h"
#include "trace/profiles.h"
#include "trace/replayer.h"
#include "trace/synth.h"
#include "../helpers.h"

namespace af {
namespace {

ssd::SsdConfig small_device() {
  // Larger than tiny() so aging + a real trace slice fit, still fast.
  auto config = ssd::SsdConfig::paper(/*page_kb=*/8, /*blocks_per_plane=*/24);
  config.track_payload = true;
  return config;
}

trace::Trace small_trace(std::uint64_t requests, std::uint64_t sectors) {
  auto profile = trace::lun_profile(0, requests);
  return trace::generate(profile, sectors);
}

TEST(Replay, AgingReachesTargets) {
  const auto config = small_device();
  sim::Ssd ssd(config, ftl::SchemeKind::kPageFtl);
  ssd.age(0.9, 0.4, 1);
  // The 0.9 target clamps to the GC floor plus per-plane stagger
  // (blocks_per_plane=24 → ~0.75).
  EXPECT_GE(ssd.engine().array().used_fraction(), 0.72);
  EXPECT_NEAR(ssd.engine().array().valid_fraction(), 0.4, 0.05);
}

TEST(Replay, ProducesConsistentMetrics) {
  const auto config = small_device();
  const auto addressable = static_cast<std::uint64_t>(
      0.398 * static_cast<double>(config.geometry.total_pages())) *
      config.geometry.sectors_per_page();
  const auto tr = small_trace(4000, addressable);

  trace::ReplayOptions options;
  const auto result =
      trace::replay(config, ftl::SchemeKind::kAcrossFtl, tr, options);

  const auto stats = trace::characterize(tr, config.geometry.sectors_per_page());
  EXPECT_EQ(result.stats.all_reads().latency().count() +
                result.stats.all_writes().latency().count(),
            stats.requests);
  EXPECT_GT(result.io_time_s, 0.0);
  EXPECT_GT(result.map_bytes, 0u);
  EXPECT_GT(result.stats.flash_writes(), 0u);
  // Aged to ~90%: GC must be active during the measured run.
  EXPECT_GT(result.stats.erases(), 0u);
}

TEST(Replay, AcrossFtlBeatsBaselineOnAcrossHeavyTrace) {
  auto config = small_device();
  config.track_payload = false;  // speed: correctness covered elsewhere
  const auto addressable = static_cast<std::uint64_t>(
      0.398 * static_cast<double>(config.geometry.total_pages())) *
      config.geometry.sectors_per_page();

  auto profile = trace::lun_profile(5, 6000);  // lun6: highest across ratio
  const auto tr = trace::generate(profile, addressable);

  const auto base = trace::replay(config, ftl::SchemeKind::kPageFtl, tr);
  const auto across = trace::replay(config, ftl::SchemeKind::kAcrossFtl, tr);

  // The headline claims: fewer flash writes and erases, lower I/O time.
  EXPECT_LT(across.stats.flash_ops(ssd::OpKind::kDataWrite),
            base.stats.flash_ops(ssd::OpKind::kDataWrite));
  EXPECT_LT(across.io_time_s, base.io_time_s);
}

TEST(Replay, AcrossStatsPopulated) {
  const auto config = small_device();
  const auto addressable = static_cast<std::uint64_t>(
      0.398 * static_cast<double>(config.geometry.total_pages())) *
      config.geometry.sectors_per_page();
  const auto tr = small_trace(6000, addressable);

  const auto result = trace::replay(config, ftl::SchemeKind::kAcrossFtl, tr);
  const auto& across = result.stats.across();
  EXPECT_GT(across.direct_writes, 0u);
  EXPECT_GT(across.total_across_writes(), across.direct_writes / 2);
  EXPECT_GT(across.direct_reads + across.merged_reads, 0u);
}

}  // namespace
}  // namespace af

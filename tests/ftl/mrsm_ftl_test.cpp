#include "ftl/mrsm_ftl.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace af::ftl {
namespace {

struct MrsmFixture : ::testing::Test {
  MrsmFixture() : ssd(test::tiny_config(), SchemeKind::kMrsm) {}

  MrsmFtl& scheme() { return dynamic_cast<MrsmFtl&>(ssd.scheme()); }
  const ssd::DeviceStats& stats() { return ssd.stats(); }
  std::uint32_t spp() { return ssd.config().geometry.sectors_per_page(); }

  void write(SectorAddr off, SectorCount len) {
    test::submit_ok(ssd, {t++, true, SectorRange::of(off, len)});
  }
  void read(SectorAddr off, SectorCount len) {
    test::submit_ok(ssd, {t++, false, SectorRange::of(off, len)});
  }
  std::uint64_t data_writes() {
    return stats().flash_ops(ssd::OpKind::kDataWrite);
  }

  sim::Ssd ssd;
  SimTime t = 0;
};

TEST_F(MrsmFixture, AlignedWritesStayPageMapped) {
  write(0, spp());
  write(16, spp());
  // Sub-page-aligned partial writes also stay page-mapped (the adaptive
  // switch upgrades only on true misalignment).
  write(4, 8);
  EXPECT_FALSE(scheme().region_is_sub(Lpn{0}));
  EXPECT_EQ(scheme().sub_regions(), 0u);
  EXPECT_EQ(data_writes(), 3u);
}

TEST_F(MrsmFixture, MisalignedWriteUpgradesRegion) {
  write(2, 7);  // edges land inside sub-pages
  EXPECT_TRUE(scheme().region_is_sub(Lpn{0}));
  EXPECT_EQ(scheme().sub_regions(), 1u);
}

TEST_F(MrsmFixture, SubPageUpdateAvoidsPageRmw) {
  write(2, 4);      // misaligned: upgrades the region
  write(0, spp());  // full page, now packed sub-page-wise
  const auto rmw_before = stats().rmw_reads();
  write(0, 4);  // exactly one sub-page: no RMW needed (MRSM's selling point)
  EXPECT_EQ(stats().rmw_reads(), rmw_before);
  read(0, spp());  // oracle verifies the gather
}

TEST_F(MrsmFixture, MisalignedSubPageWriteDoesSubRmw) {
  write(2, 4);      // upgrade the region first
  write(0, spp());  // full page through the sub path
  const auto rmw_before = stats().rmw_reads();
  write(2, 4);  // straddles inside sub-pages: old quarters must be read
  EXPECT_GT(stats().rmw_reads(), rmw_before);
  read(0, spp());
}

TEST_F(MrsmFixture, AcrossPageWriteCostsOnePackedProgram) {
  // A misaligned across write touches 2-3 sub-pages → packs into one
  // program, which is why MRSM also mitigates across-page requests.
  const auto before = data_writes();
  write(13, 6);  // across pages 0/1, misaligned edges
  EXPECT_EQ(data_writes() - before, 1u);
  read(13, 6);
}

TEST_F(MrsmFixture, WideUnalignedWritePacksInGroupsOfFour) {
  const auto before = data_writes();
  write(5, 39);  // sectors [5,44): misaligned edges
  // [5,44) touches pages 0,1,2 → sub-pages: p0:{1,2,3}, p1:{0,1,2,3},
  // p2:{0,1,2} = 10 chunks → 3 packed programs.
  EXPECT_EQ(data_writes() - before, 3u);
  read(5, 39);
}

TEST_F(MrsmFixture, ConvertedPageReadableAfterUpgrade) {
  write(0, spp());  // page-mapped
  write(66, 5);     // misaligned write upgrades region via another LPN
  EXPECT_TRUE(scheme().region_is_sub(Lpn{0}));
  read(0, spp());   // gathers from the converted page; oracle checks
}

TEST_F(MrsmFixture, GatherReadTouchesEachSourcePageOnce) {
  write(0, spp());   // page 0 fully mapped (will convert)
  write(5, 2);       // misaligned rewrite → lives in a packed page
  const auto before = stats().flash_ops(ssd::OpKind::kDataRead);
  read(0, spp());    // needs old page + packed page
  EXPECT_EQ(stats().flash_ops(ssd::OpKind::kDataRead) - before, 2u);
}

TEST_F(MrsmFixture, RewritingAllSubPagesFreesOldPage) {
  write(0, spp());  // page-mapped kData page
  const Ppn old = [&] {
    // Find the physical page via a read plan-free approach: the flash array
    // has exactly one valid data page right now.
    const auto& array = ssd.engine().array();
    for (std::uint64_t p = 0; p < ssd.config().geometry.total_pages(); ++p) {
      if (array.state(Ppn{p}) == nand::PageState::kValid &&
          array.owner(Ppn{p}).kind == nand::PageOwner::Kind::kData) {
        return Ppn{p};
      }
    }
    return Ppn{};
  }();
  ASSERT_TRUE(old.valid());
  write(66, 5);     // misaligned write upgrades the region (converts page 0)
  write(0, spp());  // rewrite all four sub-pages through the sub path
  EXPECT_EQ(ssd.engine().array().state(old), nand::PageState::kInvalid);
  read(0, spp());
}

TEST_F(MrsmFixture, TreeWalkCostsExtraDramAccesses) {
  sim::Ssd baseline(test::tiny_config(), SchemeKind::kPageFtl);
  SimTime tb = 0;
  for (int i = 0; i < 64; ++i) {
    test::submit_ok(baseline, {tb++, true, SectorRange::of(5, 7)});
    write(5, 7);
  }
  EXPECT_GT(stats().dram_accesses(), 4 * baseline.stats().dram_accesses());
}

TEST_F(MrsmFixture, MapFootprintLargerThanBaselineOnceSubMapped) {
  sim::Ssd baseline(test::tiny_config(), SchemeKind::kPageFtl);
  SimTime tb = 0;
  const auto sectors = ssd.config().logical_sectors();
  // Unaligned writes sprinkled over the whole space upgrade every region.
  for (SectorAddr off = 5; off + 8 < sectors; off += 1024) {
    test::submit_ok(baseline, {tb++, true, SectorRange::of(off, 7)});
    write(off, 7);
  }
  EXPECT_GT(scheme().map_bytes(), baseline.scheme().map_bytes());
}

}  // namespace
}  // namespace af::ftl

// Scenario tests for every across-page routine of §3.3, mirroring the
// paper's Figures 5-7 (page size 8 KiB = 16 sectors; the examples use the
// LPN-128/129 pair, i.e. sectors 2048..2080).
#include "ftl/across_ftl.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace af::ftl {
namespace {

struct AcrossFixture : ::testing::Test {
  AcrossFixture() : ssd(test::tiny_config(), SchemeKind::kAcrossFtl) {}

  AcrossFtl& scheme() { return dynamic_cast<AcrossFtl&>(ssd.scheme()); }
  const ssd::DeviceStats& stats() { return ssd.stats(); }
  const ssd::AcrossStats& across() { return stats().across(); }
  std::uint32_t spp() { return ssd.config().geometry.sectors_per_page(); }

  void write(SectorAddr off, SectorCount len) {
    test::submit_ok(ssd, {t++, true, SectorRange::of(off, len)});
  }
  void read(SectorAddr off, SectorCount len) {
    test::submit_ok(ssd, {t++, false, SectorRange::of(off, len)});
  }
  std::uint64_t data_writes() {
    return stats().flash_ops(ssd::OpKind::kDataWrite);
  }
  std::uint64_t data_reads() {
    return stats().flash_ops(ssd::OpKind::kDataRead);
  }

  sim::Ssd ssd;
  SimTime t = 0;
};

// --- Direct write (Figure 5) ---------------------------------------------------

TEST_F(AcrossFixture, DirectWriteUsesOnePageAndMarksBothLpns) {
  // write(1028K, 6K) ≡ sectors [2056, 2068): across pages 128/129.
  write(2056, 12);
  EXPECT_EQ(data_writes(), 1u);  // the paper's headline: one flash_write
  EXPECT_EQ(across().direct_writes, 1u);
  EXPECT_EQ(scheme().live_areas(), 1u);

  const auto& p128 = scheme().pmt(Lpn{128});
  const auto& p129 = scheme().pmt(Lpn{129});
  ASSERT_NE(p128.aidx, AcrossFtl::kNoArea);
  EXPECT_EQ(p128.aidx, p129.aidx);  // both LPNs point at the same AMT entry
  const auto& area = scheme().amt(p128.aidx);
  EXPECT_EQ(area.range, SectorRange::of(2056, 12));  // Off=8, Size=12 sectors
  EXPECT_TRUE(area.appn.valid());
  scheme().check_invariants();
}

TEST_F(AcrossFixture, DirectWriteDoesNotDisturbNormalPages) {
  write(128 * 16, 16);  // normal page 128
  write(129 * 16, 16);  // normal page 129
  const auto writes_before = data_writes();
  write(2056, 12);  // across write
  EXPECT_EQ(data_writes() - writes_before, 1u);
  // Old normal pages stay valid: they still hold the sectors outside the area.
  EXPECT_TRUE(scheme().pmt(Lpn{128}).ppn.valid());
  EXPECT_EQ(ssd.engine().array().state(scheme().pmt(Lpn{128}).ppn),
            nand::PageState::kValid);
  scheme().check_invariants();
}

// --- Reads (Figure 7) -------------------------------------------------------------

TEST_F(AcrossFixture, DirectReadHitsOnlyTheArea) {
  write(2056, 12);  // area (1028K, 6K)
  const auto reads_before = data_reads();
  read(2060, 8);  // read(1030K, 4K) ⊆ area
  EXPECT_EQ(data_reads() - reads_before, 1u);
  EXPECT_EQ(across().direct_reads, 1u);
  EXPECT_EQ(across().merged_reads, 0u);
}

TEST_F(AcrossFixture, MergedReadTouchesAreaAndNormalPage) {
  write(129 * 16, 16);  // normal data for page 129
  write(2056, 12);      // area
  const auto reads_before = data_reads();
  read(2060, 16);  // read(1030K, 8K): spills past the area into page 129
  EXPECT_EQ(data_reads() - reads_before, 2u);
  EXPECT_EQ(across().merged_reads, 1u);
  EXPECT_GE(across().merged_read_flash_reads, 2u);
}

TEST_F(AcrossFixture, ReadOutsideAreaIsNormal) {
  write(2056, 12);
  write(128 * 16, 16);  // ARollback? no: full page over the 128-share...
  scheme().check_invariants();
  const auto before_direct = across().direct_reads;
  const auto before_merged = across().merged_reads;
  read(130 * 16, 16);  // unrelated page
  EXPECT_EQ(across().direct_reads, before_direct);
  EXPECT_EQ(across().merged_reads, before_merged);
}

// --- AMerge (Figure 6 middle) ---------------------------------------------------

TEST_F(AcrossFixture, ProfitableAMergeGrowsArea) {
  write(2056, 12);  // area [2056, 2068) = (1028K, 1034K)
  const auto writes_before = data_writes();
  write(2060, 12);  // write(1030K, 6K): across, union [2056, 2072) = 16 ≤ page
  EXPECT_EQ(data_writes() - writes_before, 1u);
  EXPECT_EQ(across().profitable_amerge, 1u);
  EXPECT_EQ(scheme().live_areas(), 1u);
  const auto& area = scheme().amt(scheme().pmt(Lpn{128}).aidx);
  EXPECT_EQ(area.range, SectorRange::of(2056, 16));  // 12 → 16 sectors
  scheme().check_invariants();
}

TEST_F(AcrossFixture, UnprofitableAMergeFromNormalUpdate) {
  write(2056, 12);            // area
  const auto writes_before = data_writes();
  write(2058, 6);             // small update inside one page, overlapping area
  EXPECT_EQ(across().unprofitable_amerge, 1u);
  EXPECT_EQ(data_writes() - writes_before, 1u);
  scheme().check_invariants();
}

TEST_F(AcrossFixture, AMergePreservesOldAreaData) {
  write(2056, 12);
  write(2060, 8);  // overlaps; sectors 2056-2059 must survive the merge
  read(2056, 4);   // oracle verifies contents
  scheme().check_invariants();
}

// --- ARollback (Figure 6 right) ---------------------------------------------------

TEST_F(AcrossFixture, RollbackWhenUnionExceedsPage) {
  write(2056, 12);  // area [2056, 2068)
  const auto writes_before = data_writes();
  write(2060, 16);  // write(1030K, 8K): union [2056, 2076) = 20 > 16
  EXPECT_EQ(across().rollbacks, 1u);
  EXPECT_EQ(scheme().live_areas(), 0u);
  // Merged data written back normally: one page per LPN of the pair.
  EXPECT_EQ(data_writes() - writes_before, 2u);
  EXPECT_EQ(scheme().pmt(Lpn{128}).aidx, AcrossFtl::kNoArea);
  EXPECT_EQ(scheme().pmt(Lpn{129}).aidx, AcrossFtl::kNoArea);
  EXPECT_TRUE(scheme().pmt(Lpn{128}).ppn.valid());
  EXPECT_TRUE(scheme().pmt(Lpn{129}).ppn.valid());
  // All three data versions must be readable afterwards (oracle checks).
  read(2048, 32);
  scheme().check_invariants();
}

TEST_F(AcrossFixture, RollbackMergesNormalAndAcrossData) {
  write(128 * 16, 16);  // normal 128
  write(129 * 16, 16);  // normal 129
  write(2056, 12);      // area over both
  write(2060, 16);      // forces rollback folding all three sources
  read(128 * 16, 32);   // every sector verified against the oracle
  scheme().check_invariants();
}

// --- Shrink / drop (design deviation documented in DESIGN.md) --------------------

TEST_F(AcrossFixture, FullPageOverwriteShrinksArea) {
  write(2056, 12);  // area: 8 tail sectors of 128 + 4 head sectors of 129
  const auto writes_before = data_writes();
  write(128 * 16, 16);  // full overwrite of page 128
  EXPECT_EQ(across().area_shrinks, 1u);
  EXPECT_EQ(data_writes() - writes_before, 1u);  // shrink itself is free
  EXPECT_EQ(scheme().pmt(Lpn{128}).aidx, AcrossFtl::kNoArea);
  ASSERT_NE(scheme().pmt(Lpn{129}).aidx, AcrossFtl::kNoArea);
  const auto& area = scheme().amt(scheme().pmt(Lpn{129}).aidx);
  EXPECT_EQ(area.range, SectorRange::of(2064, 4));  // only 129's share left
  read(2048, 32);
  scheme().check_invariants();
}

TEST_F(AcrossFixture, OverwritingWholeAreaDropsIt) {
  write(2056, 12);
  write(2048, 32);  // both pages fully rewritten
  EXPECT_EQ(scheme().live_areas(), 0u);
  read(2048, 32);
  scheme().check_invariants();
}

TEST_F(AcrossFixture, DegenerateAreaRegrowsAcrossBoundary) {
  write(2056, 12);       // area over 128/129
  write(129 * 16, 16);   // shrink to the 128 side: [2056, 2064)
  ASSERT_EQ(scheme().pmt(Lpn{129}).aidx, AcrossFtl::kNoArea);
  write(2060, 10);       // across write again; merges with the remnant
  EXPECT_GE(across().profitable_amerge, 1u);
  EXPECT_EQ(scheme().pmt(Lpn{128}).aidx, scheme().pmt(Lpn{129}).aidx);
  read(2048, 32);
  scheme().check_invariants();
}

// --- Conflicts ---------------------------------------------------------------------

TEST_F(AcrossFixture, AdjacentPairConflictRollsBackOldArea) {
  write(2056, 12);  // area on (128, 129)
  const auto rollbacks_before = across().rollbacks;
  write(129 * 16 + 12, 8);  // across write on (129, 130): LPN 129 conflict
  EXPECT_GT(across().rollbacks, rollbacks_before);
  EXPECT_EQ(scheme().live_areas(), 1u);  // new area on (129, 130)
  ASSERT_NE(scheme().pmt(Lpn{130}).aidx, AcrossFtl::kNoArea);
  EXPECT_EQ(scheme().pmt(Lpn{129}).aidx, scheme().pmt(Lpn{130}).aidx);
  read(2048, 48);
  scheme().check_invariants();
}

TEST_F(AcrossFixture, DoubleConflictRollsBackBoth) {
  write(127 * 16 + 12, 8);  // area A on (127, 128)
  write(129 * 16 + 12, 8);  // area B on (129, 130)
  ASSERT_EQ(scheme().live_areas(), 2u);
  write(2056, 12);  // across (128, 129): conflicts with A and B? Only A marks
                    // 128; B marks 129.
  EXPECT_EQ(scheme().live_areas(), 1u);
  read(127 * 16, 64);
  scheme().check_invariants();
}

// --- Mapping-table shape -----------------------------------------------------------

TEST_F(AcrossFixture, FreedAreasAreReused) {
  for (int i = 0; i < 8; ++i) {
    write(2056, 12);   // direct write or merge
    write(2048, 32);   // drop
  }
  EXPECT_EQ(scheme().live_areas(), 0u);
  EXPECT_GE(across().areas_created, 8u);
  scheme().check_invariants();
}

TEST_F(AcrossFixture, PeakLiveAreasTracked) {
  write(2056, 12);
  write(131 * 16 + 10, 12);
  EXPECT_GE(across().peak_live_areas, 2u);
}

}  // namespace
}  // namespace af::ftl

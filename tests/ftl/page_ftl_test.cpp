#include "ftl/page_ftl.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace af::ftl {
namespace {

struct PageFtlFixture : ::testing::Test {
  PageFtlFixture() : ssd(test::tiny_config(), SchemeKind::kPageFtl) {}

  PageFtl& scheme() { return dynamic_cast<PageFtl&>(ssd.scheme()); }
  const ssd::DeviceStats& stats() { return ssd.stats(); }
  std::uint32_t spp() { return ssd.config().geometry.sectors_per_page(); }

  sim::Ssd ssd;
  SimTime t = 0;
};

TEST_F(PageFtlFixture, FullPageWriteNeedsNoRead) {
  test::submit_ok(ssd, {t++, true, SectorRange::of(0, spp())});
  EXPECT_EQ(stats().flash_ops(ssd::OpKind::kDataWrite), 1u);
  EXPECT_EQ(stats().flash_ops(ssd::OpKind::kDataRead), 0u);
  EXPECT_EQ(stats().rmw_reads(), 0u);
  EXPECT_TRUE(scheme().mapping(Lpn{0}).valid());
}

TEST_F(PageFtlFixture, PartialWriteToFreshPageNeedsNoRead) {
  test::submit_ok(ssd, {t++, true, SectorRange::of(4, 4)});
  EXPECT_EQ(stats().rmw_reads(), 0u);  // nothing to preserve yet
  EXPECT_EQ(stats().flash_ops(ssd::OpKind::kDataWrite), 1u);
}

TEST_F(PageFtlFixture, PartialUpdateDoesReadModifyWrite) {
  test::submit_ok(ssd, {t++, true, SectorRange::of(0, spp())});
  test::submit_ok(ssd, {t++, true, SectorRange::of(4, 4)});
  EXPECT_EQ(stats().rmw_reads(), 1u);
  EXPECT_EQ(stats().flash_ops(ssd::OpKind::kDataWrite), 2u);
}

TEST_F(PageFtlFixture, AcrossWriteCostsTwoOfEverything) {
  // Pre-fill the pair so both sides RMW.
  test::submit_ok(ssd, {t++, true, SectorRange::of(0, 2 * spp())});
  const auto writes_before = stats().flash_ops(ssd::OpKind::kDataWrite);
  const auto rmw_before = stats().rmw_reads();

  test::submit_ok(ssd, {t++, true, SectorRange::of(12, 8)});  // across pages 0/1
  EXPECT_EQ(stats().flash_ops(ssd::OpKind::kDataWrite) - writes_before, 2u);
  EXPECT_EQ(stats().rmw_reads() - rmw_before, 2u);
}

TEST_F(PageFtlFixture, OverwriteInvalidatesOldPage) {
  test::submit_ok(ssd, {t++, true, SectorRange::of(0, spp())});
  const Ppn first = scheme().mapping(Lpn{0});
  test::submit_ok(ssd, {t++, true, SectorRange::of(0, spp())});
  const Ppn second = scheme().mapping(Lpn{0});
  EXPECT_NE(first, second);
  EXPECT_EQ(ssd.engine().array().state(first), nand::PageState::kInvalid);
  EXPECT_EQ(ssd.engine().array().state(second), nand::PageState::kValid);
}

TEST_F(PageFtlFixture, ReadOfUnmappedCostsNoFlash) {
  test::submit_ok(ssd, {t++, false, SectorRange::of(64, 16)});
  EXPECT_EQ(stats().flash_ops(ssd::OpKind::kDataRead), 0u);
}

TEST_F(PageFtlFixture, ReadIssuesOneFlashReadPerMappedPage) {
  test::submit_ok(ssd, {t++, true, SectorRange::of(0, 3 * spp())});
  const auto before = stats().flash_ops(ssd::OpKind::kDataRead);
  test::submit_ok(ssd, {t++, false, SectorRange::of(4, 2 * spp())});  // touches 3 pages
  EXPECT_EQ(stats().flash_ops(ssd::OpKind::kDataRead) - before, 3u);
}

TEST_F(PageFtlFixture, WriteLatencyIncludesProgram) {
  const auto completion = ssd.submit({1000, true, SectorRange::of(0, spp())});
  EXPECT_GE(completion.latency, ssd.config().timing.program_ns);
}

TEST_F(PageFtlFixture, MultiPageWriteParallelisesAcrossChips) {
  // 4 pages striped over 4 planes (2 channels × 2 planes) should take far
  // less than 4 serial programs.
  const auto completion =
      test::submit_ok(ssd, {0, true, SectorRange::of(0, 4 * spp())});
  EXPECT_LT(completion.latency, 3 * ssd.config().timing.program_ns);
}

TEST_F(PageFtlFixture, MapBytesGrowWithFootprint) {
  // The tiny device's whole PMT fits one translation page (768 LPNs x 4 B),
  // so build a larger logical space for this test.
  auto config = test::tiny_config();
  config.geometry.blocks_per_plane = 96;
  config.geometry.pages_per_block = 32;
  config.track_payload = false;
  sim::Ssd big(config, SchemeKind::kPageFtl);
  ASSERT_GT(config.logical_pages(), 2048u);  // > one 8 KiB translation page

  const auto page_sectors = config.geometry.sectors_per_page();
  SimTime time = 0;
  test::submit_ok(big, {time++, true, SectorRange::of(0, page_sectors)});
  const auto one_page = big.scheme().map_bytes();
  EXPECT_EQ(one_page, config.geometry.page_bytes);

  const auto last_page = config.logical_pages() - 1;
  test::submit_ok(big, {time++, true, SectorRange::of(last_page * page_sectors,
                                            page_sectors)});
  EXPECT_GT(big.scheme().map_bytes(), one_page);
}

}  // namespace
}  // namespace af::ftl

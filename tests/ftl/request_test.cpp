#include "ftl/request.h"

#include <gtest/gtest.h>

#include "ftl/scheme.h"

namespace af::ftl {
namespace {

const PageGeometry kGeom{16};

TEST(Split, SinglePage) {
  const auto subs = split(SectorRange::of(16, 16), kGeom);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].lpn, Lpn{1});
  EXPECT_EQ(subs[0].range, SectorRange::of(16, 16));
}

TEST(Split, PartialPage) {
  const auto subs = split(SectorRange::of(20, 4), kGeom);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].lpn, Lpn{1});
  EXPECT_EQ(subs[0].range, SectorRange::of(20, 4));
}

TEST(Split, AcrossTwoPages) {
  const auto subs = split(SectorRange::of(12, 8), kGeom);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].lpn, Lpn{0});
  EXPECT_EQ(subs[0].range, SectorRange::of(12, 4));
  EXPECT_EQ(subs[1].lpn, Lpn{1});
  EXPECT_EQ(subs[1].range, SectorRange::of(16, 4));
}

TEST(Split, ManyPagesWithRaggedEdges) {
  const auto subs = split(SectorRange::of(10, 50), kGeom);  // [10, 60)
  ASSERT_EQ(subs.size(), 4u);
  EXPECT_EQ(subs[0].range, SectorRange::of(10, 6));
  EXPECT_EQ(subs[1].range, SectorRange::of(16, 16));
  EXPECT_EQ(subs[2].range, SectorRange::of(32, 16));
  EXPECT_EQ(subs[3].range, SectorRange::of(48, 12));
  std::uint64_t total = 0;
  for (const auto& sub : subs) total += sub.range.size();
  EXPECT_EQ(total, 50u);
}

TEST(Split, EmptyRange) {
  EXPECT_TRUE(split(SectorRange{}, kGeom).empty());
}

// Parameterized sweep: every (offset mod page, size) combination splits into
// pieces that tile the request exactly.
class SplitSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(SplitSweep, PiecesTileTheRequest) {
  const auto [off, len] = GetParam();
  const SectorRange range = SectorRange::of(off, len);
  const auto subs = split(range, kGeom);
  ASSERT_FALSE(subs.empty());
  EXPECT_EQ(subs.front().range.begin, range.begin);
  EXPECT_EQ(subs.back().range.end, range.end);
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(kGeom.lpn_of(subs[i].range.begin), subs[i].lpn);
    EXPECT_TRUE(kGeom.page_range(subs[i].lpn).contains(subs[i].range));
    if (i > 0) {
      EXPECT_EQ(subs[i - 1].range.end, subs[i].range.begin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OffsetsAndSizes, SplitSweep,
    ::testing::Combine(::testing::Values(0u, 1u, 7u, 15u, 16u, 31u),
                       ::testing::Values(1u, 2u, 15u, 16u, 17u, 33u, 64u)));

TEST(Classify, MatchesPaperFigure1) {
  // write(1024K, 24KB): aligned, 3 pages → normal.
  EXPECT_EQ(classify({0, true, SectorRange::of(2048, 48)}, kGeom),
            ssd::ReqClass::kNormalWrite);
  // write(1028K, 20KB): unaligned but larger than a page → normal.
  EXPECT_EQ(classify({0, true, SectorRange::of(2056, 40)}, kGeom),
            ssd::ReqClass::kNormalWrite);
  // write(1028K, 8KB): across-page.
  EXPECT_EQ(classify({0, true, SectorRange::of(2056, 16)}, kGeom),
            ssd::ReqClass::kAcrossWrite);
  // Same shape as a read.
  EXPECT_EQ(classify({0, false, SectorRange::of(2056, 16)}, kGeom),
            ssd::ReqClass::kAcrossRead);
  EXPECT_EQ(classify({0, false, SectorRange::of(0, 8)}, kGeom),
            ssd::ReqClass::kNormalRead);
}

TEST(SchemeKind, Names) {
  EXPECT_STREQ(to_string(SchemeKind::kPageFtl), "FTL");
  EXPECT_STREQ(to_string(SchemeKind::kMrsm), "MRSM");
  EXPECT_STREQ(to_string(SchemeKind::kAcrossFtl), "Across-FTL");
}

}  // namespace
}  // namespace af::ftl

// Space-pressure valve: every remapped area keeps the pair's normal pages
// alive plus one extra flash page, so an unbounded area pool would push live
// data past what per-plane GC can reclaim. Above the watermark, across
// writes must fall back to the normal path and old areas must drain —
// without ever returning wrong data.
#include <gtest/gtest.h>

#include "ftl/across_ftl.h"
#include "../helpers.h"

namespace af::ftl {
namespace {

struct ValveFixture : ::testing::Test {
  ValveFixture() : ssd(test::tiny_config(), SchemeKind::kAcrossFtl) {}

  AcrossFtl& scheme() { return dynamic_cast<AcrossFtl&>(ssd.scheme()); }
  const ssd::AcrossStats& across() { return ssd.stats().across(); }
  std::uint32_t spp() { return ssd.config().geometry.sectors_per_page(); }

  /// Fills the logical space with page-aligned data until the device's valid
  /// fraction approaches the valve watermark.
  void fill_live(double target_fraction) {
    const auto pages = ssd.config().logical_pages();
    for (std::uint64_t p = 0; p < pages; ++p) {
      test::submit_ok(ssd, {t++, true, SectorRange::of(p * spp(), spp())});
      if (ssd.engine().array().valid_fraction() >= target_fraction) break;
    }
  }

  sim::Ssd ssd;
  SimTime t = 0;
};

TEST_F(ValveFixture, NoBypassWhenDeviceIsEmpty) {
  test::submit_ok(ssd, {t++, true, SectorRange::of(2056, 12)});
  EXPECT_EQ(across().bypassed_writes, 0u);
  EXPECT_EQ(across().direct_writes, 1u);
}

TEST_F(ValveFixture, BypassesRemappingUnderPressure) {
  fill_live(0.80);  // tiny() watermark ≈ 1 - 6/32 = 0.8125
  // Push across writes at many distinct boundaries: once past the watermark
  // they must be serviced without minting new areas.
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const SectorAddr boundary = 2 * rng.between(1, 350) * spp();
    test::submit_ok(ssd, {t++, true, SectorRange::of(boundary - 4, 10)});
  }
  EXPECT_GT(across().bypassed_writes, 0u);
  // Live areas stay bounded: far fewer than the across writes issued.
  EXPECT_LT(scheme().live_areas(), 400u);
  scheme().check_invariants();
}

TEST_F(ValveFixture, DrainsOldAreasUnderPressure) {
  // Mint some areas first, then apply pressure.
  for (std::uint64_t b = 1; b <= 20; ++b) {
    test::submit_ok(ssd, {t++, true, SectorRange::of(2 * b * spp() - 4, 10)});
  }
  const auto live_before = scheme().live_areas();
  ASSERT_GT(live_before, 0u);
  fill_live(0.81);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const SectorAddr boundary = 2 * rng.between(200, 350) * spp();
    test::submit_ok(ssd, {t++, true, SectorRange::of(boundary - 4, 10)});
  }
  if (across().bypassed_writes > 0) {
    EXPECT_GT(across().pressure_evictions, 0u);
  }
  scheme().check_invariants();
}

TEST_F(ValveFixture, DataRemainsCorrectThroughValveTransitions) {
  // Interleave across writes and fills so the device crosses the watermark
  // mid-stream; the oracle (active on tiny()) verifies every read.
  Rng rng(7);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 50; ++i) {
      const SectorAddr boundary = 2 * rng.between(1, 300) * spp();
      test::submit_ok(ssd, {t++, true, SectorRange::of(boundary - 3, 8)});
    }
    fill_live(0.78 + 0.01 * round);
    for (int i = 0; i < 50; ++i) {
      const SectorAddr boundary = 2 * rng.between(1, 300) * spp();
      test::submit_ok(ssd, {t++, false, SectorRange::of(boundary - 3, 8)});
    }
  }
  test::verify_full_space(ssd);
  scheme().check_invariants();
}

TEST_F(ValveFixture, GcSurvivesSustainedAcrossPressure) {
  // The original livelock reproducer: across writes over many boundaries on
  // a nearly full device. Must terminate with consistent state.
  Rng rng(11);
  const std::uint64_t boundaries = ssd.config().logical_sectors() / spp() / 2;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t b = rng.between(1, boundaries - 1);
    const SectorCount len = 4 + b % 12;
    test::submit_ok(ssd, {t++, true,
                SectorRange::of(2 * b * spp() - len / 2, len)});
  }
  const auto& counters = ssd.engine().array().counters();
  EXPECT_EQ(counters.free_pages + counters.valid_pages + counters.invalid_pages,
            ssd.config().geometry.total_pages());
  scheme().check_invariants();
  test::verify_full_space(ssd);
}

}  // namespace
}  // namespace af::ftl

// TRIM/discard semantics across every scheme (DESIGN.md §9): fully covered
// pages unmap (reads return the never-written stamp), partially covered edge
// pages survive untouched (inward rounding), trimmed space is rewritable,
// and the trim is durable — a power cut at any later point recovers with the
// unmap still in force, never resurrecting pre-trim data. Scheme-specific
// state must unwind too: MRSM packed sub-slots retire and Across areas
// shrink or free.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ftl/across_ftl.h"
#include "nand/power.h"
#include "sim/ssd.h"
#include "trace/synth.h"
#include "../helpers.h"

namespace af {
namespace {

ftl::IoRequest write_req(SimTime t, SectorAddr off, SectorCount len) {
  return {t, /*write=*/true, SectorRange::of(off, len)};
}

ftl::IoRequest read_req(SimTime t, SectorAddr off, SectorCount len) {
  return {t, /*write=*/false, SectorRange::of(off, len)};
}

ftl::IoRequest trim_req(SimTime t, SectorAddr off, SectorCount len) {
  return {t, /*write=*/false, SectorRange::of(off, len), /*trim=*/true};
}

class TrimTest : public ::testing::TestWithParam<ftl::SchemeKind> {};

TEST_P(TrimTest, UnmapsFullyCoveredPagesOnly) {
  const auto config = test::tiny_config();
  const std::uint32_t spp = config.geometry.sectors_per_page();
  sim::Ssd ssd(config, GetParam());

  // Lay down eight pages, then trim an extent that covers pages 2..4 fully
  // and clips pages 1 and 5 at the edges.
  SimTime t = 1;
  for (std::uint64_t p = 0; p < 8; ++p) {
    (void)test::submit_ok(ssd, write_req(t++, p * spp, spp));
  }
  const auto done = test::submit_ok(
      ssd, trim_req(t++, spp + 2, 5 * spp - 4));  // [1·spp+2, 6·spp−2)
  EXPECT_TRUE(done.accepted);

  // The oracle verifies every sector on read: trimmed pages read as
  // never-written, edge pages keep their data.
  (void)test::submit_ok(ssd, read_req(t++, 0, 8 * spp));

  const auto& faults = ssd.stats().faults();
  EXPECT_EQ(faults.trims, 1u);
  EXPECT_EQ(faults.trimmed_pages, 3u);  // pages 2,3,4

  // Trimmed space is immediately rewritable.
  for (std::uint64_t p = 2; p < 5; ++p) {
    (void)test::submit_ok(ssd, write_req(t++, p * spp, spp));
  }
  (void)test::submit_ok(ssd, read_req(t++, 0, 8 * spp));

  if (auto* across = dynamic_cast<ftl::AcrossFtl*>(&ssd.scheme())) {
    across->check_invariants();
  }
}

TEST_P(TrimTest, SubPageTrimIsANoOp) {
  const auto config = test::tiny_config();
  const std::uint32_t spp = config.geometry.sectors_per_page();
  sim::Ssd ssd(config, GetParam());

  SimTime t = 1;
  (void)test::submit_ok(ssd, write_req(t++, 0, spp));
  // Covers no whole page: nothing may be unmapped.
  (void)test::submit_ok(ssd, trim_req(t++, 1, spp - 2));
  (void)test::submit_ok(ssd, read_req(t++, 0, spp));
  EXPECT_EQ(ssd.stats().faults().trimmed_pages, 0u);
}

TEST_P(TrimTest, UnwindsSchemeSpecificState) {
  // Across-page writes and sub-page (MRSM-packed) writes, then a trim of the
  // whole span: every scheme's side tables must unwind without tripping
  // their internal checks, and a full-space read must verify.
  const auto config = test::tiny_config();
  const std::uint32_t spp = config.geometry.sectors_per_page();
  sim::Ssd ssd(config, GetParam());

  SimTime t = 1;
  for (std::uint64_t p = 0; p + 1 < 16; ++p) {
    (void)test::submit_ok(ssd, write_req(t++, p * spp, spp));
    // Across-page: straddles the boundary between p and p+1.
    (void)test::submit_ok(ssd, write_req(t++, p * spp + spp - 3, 6));
    // Sub-page update inside p.
    (void)test::submit_ok(ssd, write_req(t++, p * spp + 4, 4));
  }
  (void)test::submit_ok(ssd, trim_req(t++, 0, 16 * spp));
  (void)test::submit_ok(ssd, read_req(t++, 0, 16 * spp));

  // And the space is fully reusable afterwards.
  for (std::uint64_t p = 0; p < 16; ++p) {
    (void)test::submit_ok(ssd, write_req(t++, p * spp, spp));
  }
  (void)test::submit_ok(ssd, read_req(t++, 0, 16 * spp));

  if (auto* across = dynamic_cast<ftl::AcrossFtl*>(&ssd.scheme())) {
    across->check_invariants();
  }
}

TEST_P(TrimTest, SurvivesPowerCut) {
  // Trim, keep writing elsewhere until the armed cut fires, mount: the
  // trimmed pages must still read as unmapped (the durable tombstone holds
  // against any replayed OOB claims), and untrimmed data must verify.
  const auto config = test::tiny_config();
  const std::uint32_t spp = config.geometry.sectors_per_page();
  const std::uint64_t pages = config.logical_sectors() / spp;

  for (const std::uint64_t cut_at : {20ull, 60ull, 140ull}) {
    auto ssd = std::make_unique<sim::Ssd>(config, GetParam());
    SimTime t = 1;
    for (std::uint64_t p = 0; p < pages / 2; ++p) {
      (void)test::submit_ok(*ssd, write_req(t++, p * spp, spp));
    }
    (void)test::submit_ok(*ssd, trim_req(t++, 0, (pages / 4) * spp));

    ssd->engine().array().arm_power_cut({cut_at, /*seed=*/3});
    bool crashed = false;
    test::WorkloadGen gen(config.logical_sectors() / 2,
                          config.geometry.sectors_per_page(), 23);
    SectorRange inflight{};
    std::vector<std::uint64_t> pre_stamps;
    try {
      for (int i = 0; i < 2'000; ++i) {
        auto req = gen.next();
        // Steer the churn clear of the trimmed quarter so its unmapped state
        // is what the mount must reproduce.
        if (req.range.begin < (pages / 4) * spp) continue;
        if (req.write) {
          pre_stamps.clear();
          for (SectorAddr s = req.range.begin; s < req.range.end; ++s) {
            pre_stamps.push_back(ssd->oracle()->expected(s));
          }
        }
        inflight = req.write ? req.range : SectorRange{};
        (void)ssd->submit(req);
      }
    } catch (const nand::PowerLoss&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "cut_at=" << cut_at;

    ssd::RecoveryReport report;
    auto mounted = test::crash_mount(std::move(ssd), config, GetParam(),
                                     inflight, pre_stamps, &report);
    EXPECT_GE(report.trims_replayed, 1u) << "cut_at=" << cut_at;

    // Oracle-verified: the trimmed quarter reads as unmapped, the rest as
    // last acknowledged.
    SimTime rt = t + 1'000'000;
    for (std::uint64_t p = 0; p < pages / 2; ++p) {
      (void)test::submit_ok(*mounted, read_req(rt++, p * spp, spp));
    }
  }
}

TEST_P(TrimTest, CheckpointedTrimNeedsNoTombstoneReplay) {
  // With the mapping journal on, a journal entry written after the trim
  // folds it in; the pruned tombstone log and the checkpointed tables must
  // agree at mount.
  auto config = test::tiny_config();
  config.checkpoint.interval_requests = 8;
  const std::uint32_t spp = config.geometry.sectors_per_page();
  const std::uint64_t pages = config.logical_sectors() / spp;

  auto ssd = std::make_unique<sim::Ssd>(config, GetParam());
  SimTime t = 1;
  for (std::uint64_t p = 0; p < pages / 2; ++p) {
    (void)test::submit_ok(*ssd, write_req(t++, p * spp, spp));
  }
  (void)test::submit_ok(*ssd, trim_req(t++, 0, (pages / 4) * spp));
  // Enough post-trim writes to commit a journal entry covering the trim.
  for (std::uint64_t p = pages / 4; p < pages / 2; ++p) {
    (void)test::submit_ok(*ssd, write_req(t++, p * spp, spp));
  }
  EXPECT_TRUE(ssd->engine().array().trim_log().empty())
      << "journal entry should have pruned the tombstone";

  ssd->engine().array().arm_power_cut({30, /*seed=*/5});
  bool crashed = false;
  SectorRange inflight{};
  std::vector<std::uint64_t> pre_stamps;
  try {
    for (std::uint64_t p = pages / 4; p < pages / 2; ++p) {
      for (int rep = 0; rep < 2; ++rep) {
        const auto req = write_req(t++, p * spp, spp);
        pre_stamps.clear();
        for (SectorAddr s = req.range.begin; s < req.range.end; ++s) {
          pre_stamps.push_back(ssd->oracle()->expected(s));
        }
        inflight = req.range;
        (void)ssd->submit(req);
      }
    }
  } catch (const nand::PowerLoss&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);

  ssd::RecoveryReport report;
  auto mounted = test::crash_mount(std::move(ssd), config, GetParam(),
                                   inflight, pre_stamps, &report);
  EXPECT_TRUE(report.used_checkpoint);

  SimTime rt = t + 1'000'000;
  for (std::uint64_t p = 0; p < pages / 2; ++p) {
    (void)test::submit_ok(*mounted, read_req(rt++, p * spp, spp));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TrimTest,
                         ::testing::Values(ftl::SchemeKind::kPageFtl,
                                           ftl::SchemeKind::kMrsm,
                                           ftl::SchemeKind::kAcrossFtl),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ftl::SchemeKind::kPageFtl: return "PageFtl";
                             case ftl::SchemeKind::kMrsm: return "Mrsm";
                             case ftl::SchemeKind::kAcrossFtl: return "Across";
                           }
                           return "unknown";
                         });

TEST(TrimSynth, GeneratorEmitsPageAlignedTrims) {
  trace::SynthProfile profile;
  profile.requests = 5'000;
  profile.write_sizes = trace::SizeMix::around_mean(20);
  profile.read_sizes = trace::SizeMix::around_mean(20);
  profile.trim_fraction = 0.1;
  const auto tr = trace::generate(profile, 1u << 20);
  std::uint64_t trims = 0;
  for (const auto& rec : tr) {
    if (!rec.trim) continue;
    ++trims;
    EXPECT_EQ(rec.offset % 16, 0u);
    EXPECT_EQ(rec.sectors % 16, 0u);
    EXPECT_FALSE(rec.write);
  }
  EXPECT_GT(trims, 300u);
  EXPECT_LT(trims, 700u);
}

TEST(TrimSynth, ZeroFractionIsBitIdentical) {
  // trim_fraction = 0 must not consume RNG draws: the stream equals one
  // generated before the knob existed.
  trace::SynthProfile profile;
  profile.requests = 2'000;
  profile.write_sizes = trace::SizeMix::around_mean(20);
  profile.read_sizes = trace::SizeMix::around_mean(20);
  const auto base = trace::generate(profile, 1u << 20);
  profile.trim_fraction = 0.0;  // explicit zero, same meaning
  const auto again = trace::generate(profile, 1u << 20);
  ASSERT_EQ(base.size(), again.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].offset, again[i].offset);
    EXPECT_EQ(base[i].sectors, again[i].sectors);
    EXPECT_EQ(base[i].write, again[i].write);
    EXPECT_FALSE(again[i].trim);
  }
}

}  // namespace
}  // namespace af

// Ablation-policy toggles must preserve correctness (the oracle) while
// changing which mechanism services overlapping across traffic.
#include <gtest/gtest.h>

#include "ftl/across_ftl.h"
#include "../helpers.h"

namespace af::ftl {
namespace {

sim::Ssd make_ssd(bool remap, bool amerge, bool shrink) {
  auto config = test::tiny_config();
  config.across = {remap, amerge, shrink};
  return sim::Ssd(config, SchemeKind::kAcrossFtl);
}

TEST(AcrossPolicy, NoRemapNeverCreatesAreas) {
  auto ssd = make_ssd(false, true, true);
  SimTime t = 0;
  test::submit_ok(ssd, {t++, true, SectorRange::of(2056, 12)});
  EXPECT_EQ(ssd.stats().across().areas_created, 0u);
  // Baseline-shaped service: two programs for the across write.
  EXPECT_EQ(ssd.stats().flash_ops(ssd::OpKind::kDataWrite), 2u);
  test::submit_ok(ssd, {t++, false, SectorRange::of(2056, 12)});  // oracle-checked
}

TEST(AcrossPolicy, NoAmergeRollsBackOverlappingUpdates) {
  auto ssd = make_ssd(true, false, true);
  SimTime t = 0;
  test::submit_ok(ssd, {t++, true, SectorRange::of(2056, 12)});
  test::submit_ok(ssd, {t++, true, SectorRange::of(2058, 12)});  // would AMerge
  EXPECT_EQ(ssd.stats().across().profitable_amerge, 0u);
  EXPECT_EQ(ssd.stats().across().rollbacks, 1u);
  test::submit_ok(ssd, {t++, false, SectorRange::of(2048, 32)});
  dynamic_cast<AcrossFtl&>(ssd.scheme()).check_invariants();
}

TEST(AcrossPolicy, NoShrinkRollsBackPartialOverwrites) {
  auto ssd = make_ssd(true, true, false);
  SimTime t = 0;
  test::submit_ok(ssd, {t++, true, SectorRange::of(2056, 12)});  // area over 128/129
  test::submit_ok(ssd, {t++, true, SectorRange::of(128 * 16, 16)});  // full page 128
  EXPECT_EQ(ssd.stats().across().area_shrinks, 0u);
  EXPECT_EQ(ssd.stats().across().rollbacks, 1u);
  test::submit_ok(ssd, {t++, false, SectorRange::of(2048, 32)});
  dynamic_cast<AcrossFtl&>(ssd.scheme()).check_invariants();
}

class PolicyMatrix
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(PolicyMatrix, RandomWorkloadMatchesOracleUnderAnyPolicy) {
  const auto [remap, amerge, shrink] = GetParam();
  auto config = test::tiny_config();
  config.across = {remap, amerge, shrink};
  sim::Ssd ssd(config, SchemeKind::kAcrossFtl);

  test::WorkloadGen gen(config.logical_sectors(),
                        config.geometry.sectors_per_page(), 23);
  for (int i = 0; i < 2500; ++i) test::submit_ok(ssd, gen.next());
  dynamic_cast<AcrossFtl&>(ssd.scheme()).check_invariants();
  test::verify_full_space(ssd);
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, PolicyMatrix,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

}  // namespace
}  // namespace af::ftl

// Fixture-driven tests for af_lint. Each fixture under tests/tools/fixtures
// is a source snippet stored as .txt (so the tree-wide af_lint_tree test and
// the build never see it as real C++); the tests lint it under a pseudo-path,
// because several rules key off the directory the file claims to live in.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"
#include "lockorder.h"
#include "model.h"

namespace af::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(AF_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& pseudo_path) {
  return lint_content(pseudo_path, read_fixture(name));
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(AfLint, BadHeaderMissingPragmaOnceAndNodiscard) {
  const auto findings = lint_fixture("bad_header.txt", "src/nand/bad_header.h");
  EXPECT_EQ(count_rule(findings, "pragma-once"), 1);
  // bool program(...) and SimTime schedule_read(...); void configure is not
  // a status API.
  EXPECT_EQ(count_rule(findings, "nodiscard-status"), 2);
  EXPECT_EQ(findings.size(), 3u);
}

TEST(AfLint, GoodHeaderIsClean) {
  const auto findings =
      lint_fixture("good_header.txt", "src/nand/good_header.h");
  for (const auto& f : findings) ADD_FAILURE() << format(f);
}

TEST(AfLint, NodiscardRuleOnlyCoversSrcHeaders) {
  // The same bad header under tests/ or as a .cpp is out of the rule's
  // jurisdiction (pragma-once still applies to any header).
  const auto in_tests =
      lint_fixture("bad_header.txt", "tests/nand/bad_header.h");
  EXPECT_EQ(count_rule(in_tests, "nodiscard-status"), 0);
  EXPECT_EQ(count_rule(in_tests, "pragma-once"), 1);
  const auto as_cpp = lint_fixture("bad_header.txt", "src/nand/bad_header.cpp");
  EXPECT_TRUE(as_cpp.empty());
}

TEST(AfLint, RecoveryApisMustBeNodiscard) {
  const auto findings =
      lint_fixture("bad_recovery.txt", "src/ssd/bad_recovery.h");
  // mount(), recover_block(), mount_root() by name; inspect_last() by its
  // RecoveryReport return. The void hooks and the annotated APIs stay clean.
  EXPECT_EQ(count_rule(findings, "nodiscard-recovery"), 4);
  // recover_block() returns bool, so the type-keyed rule fires there too.
  EXPECT_EQ(count_rule(findings, "nodiscard-status"), 1);
}

TEST(AfLint, RecoveryRuleOnlyCoversSrcHeaders) {
  const auto in_tests =
      lint_fixture("bad_recovery.txt", "tests/ssd/bad_recovery.h");
  EXPECT_EQ(count_rule(in_tests, "nodiscard-recovery"), 0);
  const auto as_cpp =
      lint_fixture("bad_recovery.txt", "src/ssd/bad_recovery.cpp");
  EXPECT_EQ(count_rule(as_cpp, "nodiscard-recovery"), 0);
}

TEST(AfLint, CheckSideEffects) {
  const auto findings = lint_fixture("bad_check.txt", "src/ftl/bad_check.cpp");
  // count++, flag.exchange(true), and the wrapped (count += 2) condition.
  // The pure comparisons — including the one whose *message* mentions
  // "= 10, or x++" inside a string literal — stay clean.
  EXPECT_EQ(count_rule(findings, "check-side-effects"), 3);
  EXPECT_EQ(findings.size(), 3u);
}

TEST(AfLint, RawThreadsOutsideCommon) {
  const auto findings =
      lint_fixture("bad_thread.txt", "bench/bad_thread.cpp");
  // std::thread and std::jthread construction and std::async;
  // hardware_concurrency() is a read-only query and stays legal.
  EXPECT_EQ(count_rule(findings, "no-raw-thread"), 3);
  EXPECT_EQ(findings.size(), 3u);
}

TEST(AfLint, RawThreadsAllowedInsideCommon) {
  const auto findings =
      lint_fixture("bad_thread.txt", "src/common/thread_pool_impl.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(AfLint, NondeterminismOutsideCommon) {
  const auto findings =
      lint_fixture("bad_nondet.txt", "tests/sim/bad_nondet.cpp");
  EXPECT_EQ(count_rule(findings, "no-nondeterminism"), 2);
}

TEST(AfLint, NondeterminismAllowedInsideCommon) {
  const auto findings =
      lint_fixture("bad_nondet.txt", "src/common/clock.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(AfLint, IntegrityStatusDiscardsAreFlagged) {
  const auto findings =
      lint_fixture("bad_integrity.txt", "src/ftl/bad_integrity.cpp");
  // The two statement-position calls; assignments, return, (void), the
  // map_flash_read suffix-lookalikes, the declaration line and the
  // allow()-suppressed probe all stay clean.
  EXPECT_EQ(count_rule(findings, "integrity-status"), 2);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(AfLint, IntegrityStatusRuleOnlyCoversSrc) {
  const auto findings =
      lint_fixture("bad_integrity.txt", "tests/ftl/bad_integrity.cpp");
  EXPECT_EQ(count_rule(findings, "integrity-status"), 0);
}

TEST(AfLint, SpaceStatusDiscardsAreFlagged) {
  const auto findings =
      lint_fixture("bad_space.txt", "src/sim/bad_space.cpp");
  // The four statement-position calls (admit_write, throttle_delay, trim,
  // note_trim); assignments, conditions, compound-assignment, (void), and
  // the on_trim / prune_trim_log suffix lookalikes stay clean.
  EXPECT_EQ(count_rule(findings, "nodiscard-space-status"), 4);
  EXPECT_EQ(findings.size(), 4u);
}

TEST(AfLint, SpaceStatusRuleOnlyCoversSrc) {
  const auto findings =
      lint_fixture("bad_space.txt", "tests/sim/bad_space.cpp");
  EXPECT_EQ(count_rule(findings, "nodiscard-space-status"), 0);
}

TEST(AfLint, MultiSchemeBenchMustUseRunSchemes) {
  const auto findings = lint_fixture("bad_bench.txt", "bench/bad_bench.cpp");
  EXPECT_EQ(count_rule(findings, "bench-run-schemes"), 1);
}

TEST(AfLint, BenchRuleOnlyAppliesToBenchDir) {
  const auto findings =
      lint_fixture("bad_bench.txt", "tests/integration/bad_bench.cpp");
  EXPECT_EQ(count_rule(findings, "bench-run-schemes"), 0);
}

TEST(AfLint, PipelineGuardedStateFlagsUnannotatedMembers) {
  const auto findings = lint_fixture("bad_pipeline_state.txt",
                                     "src/sim/bad_pipeline_state.h");
  // pending_ and completed_ lack annotations; the const member, the Mutex,
  // the AF_GUARDED_BY member, the atomic and the allow-justified member
  // must all pass.
  EXPECT_EQ(count_rule(findings, "pipeline-guarded-state"), 2);
}

TEST(AfLint, PipelineGuardedStateOnlyCoversMutexBearingSsdSimHeaders) {
  // Same content elsewhere in src/, or as a .cpp, is out of jurisdiction.
  const auto in_ftl = lint_fixture("bad_pipeline_state.txt",
                                   "src/ftl/bad_pipeline_state.h");
  EXPECT_EQ(count_rule(in_ftl, "pipeline-guarded-state"), 0);
  const auto as_cpp = lint_fixture("bad_pipeline_state.txt",
                                   "src/sim/bad_pipeline_state.cpp");
  EXPECT_EQ(count_rule(as_cpp, "pipeline-guarded-state"), 0);
  // A header with plain members but no Mutex member is single-threaded
  // state and stays unannotated.
  const std::string no_mutex =
      "#pragma once\n"
      "namespace af::sim {\n"
      "class Counters {\n"
      " private:\n"
      "  unsigned long long completed_ = 0;\n"
      "};\n"
      "}  // namespace af::sim\n";
  const auto findings = lint_content("src/sim/counters.h", no_mutex);
  EXPECT_EQ(count_rule(findings, "pipeline-guarded-state"), 0);
}

TEST(AfLint, SuppressionsSilenceJustifiedFindings) {
  // allow-file(no-nondeterminism) covers both clock readings; the wrapped
  // allow(bench-run-schemes) comment block must carry down to the
  // trace::replay call below it.
  const auto findings =
      lint_fixture("suppressed.txt", "bench/suppressed.cpp");
  for (const auto& f : findings) ADD_FAILURE() << format(f);
}

TEST(AfLint, SuppressionIsRuleSpecific) {
  // An allow() for an unrelated rule must not silence the real finding.
  const std::string content =
      "// af_lint: allow(pragma-once)\n"
      "int f() { return std::rand(); }\n";
  const auto findings = lint_content("src/ftl/wrong_allow.cpp", content);
  EXPECT_EQ(count_rule(findings, "no-nondeterminism"), 1);
}

TEST(AfLint, PatternsInsideStringsAndCommentsDoNotFire) {
  const std::string content =
      "#pragma once\n"
      "// mentions std::thread and std::rand in a comment\n"
      "inline const char* kDoc = \"std::async and steady_clock\";\n";
  const auto findings = lint_content("src/ftl/doc.h", content);
  for (const auto& f : findings) ADD_FAILURE() << format(f);
}

TEST(AfLint, FormatIsCompilerStyle) {
  const Finding f{"src/x.h", 12, "pragma-once", "msg"};
  EXPECT_EQ(format(f), "src/x.h:12: [pragma-once] msg");
}

TEST(AfLint, TreeIsCleanRightNow) {
  // The repo itself must lint clean — same as the af_lint_tree ctest entry,
  // but through the library API so failures show up with gtest context.
  const auto findings = lint_tree(AF_LINT_REPO_ROOT);
  for (const auto& f : findings) ADD_FAILURE() << format(f);
}

// ---------------------------------------------------------------------------
// v2: lexer-fixed literal/comment blind spots
// ---------------------------------------------------------------------------

TEST(AfLint, RawStringContentsNeverFire) {
  // v1's per-line state machine reset string state at EOL, so a multi-line
  // raw string's body leaked back into "code" and its std::thread /
  // std::rand mentions fired. v2 lexes the raw string as one token.
  const auto findings =
      lint_fixture("literal_blindspots.txt", "src/ftl/literal_blindspots.cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-thread"), 0);
  // Exactly one real finding: the entropy() call *outside* any literal. The
  // "af_lint: allow(no-nondeterminism)" spelled inside the string literal
  // right above it must not suppress it (v1 collected markers from raw
  // lines, so it did).
  EXPECT_EQ(count_rule(findings, "no-nondeterminism"), 1);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(AfLint, AllowMarkerInsideBlockCommentCarriesToFirstCodeLine) {
  const auto findings =
      lint_fixture("block_comment_allow.txt", "src/sim/block_comment_allow.cpp");
  // The first clock read is covered by the marker wrapped inside the
  // multi-line block comment above it; the second one is past the
  // carry-down window and must still fire.
  EXPECT_EQ(count_rule(findings, "no-nondeterminism"), 1);
  EXPECT_EQ(findings.size(), 1u);
}

// ---------------------------------------------------------------------------
// v2: lock-order
// ---------------------------------------------------------------------------

TEST(AfLint, LockOrderCycleIsDetected) {
  const auto findings =
      lint_fixture("lockorder_cycle.txt", "src/sim/lockorder_cycle.cpp");
  EXPECT_EQ(count_rule(findings, "lock-order"), 1);
  EXPECT_EQ(findings.size(), 1u);
  for (const auto& f : findings) {
    EXPECT_NE(f.message.find("cycle"), std::string::npos) << format(f);
  }
}

TEST(AfLint, LockOrderInvertedPipelineShardEdgeIsDetected) {
  const auto findings =
      lint_fixture("lockorder_inverted.txt", "src/sim/lockorder_inverted.cpp");
  EXPECT_EQ(count_rule(findings, "lock-order"), 1);
  for (const auto& f : findings) {
    EXPECT_NE(f.message.find("inverted"), std::string::npos) << format(f);
  }
}

TEST(AfLint, LockOrderCleanHierarchyHasNoFindings) {
  const auto findings =
      lint_fixture("lockorder_clean.txt", "src/sim/lockorder_clean.cpp");
  for (const auto& f : findings) ADD_FAILURE() << format(f);
}

TEST(LockOrder, CrossFileCycleIsDetected) {
  // The two halves of the cycle live in different files: each class's
  // method is defined out-of-line, and each acquires its own mutex before
  // the other class's. Only a model spanning both files sees the cycle.
  const std::vector<SourceFile> files = {
      {"src/x/locks.h",
       "#pragma once\n"
       "namespace af::x {\n"
       "class Left;\n"
       "class Right {\n"
       " public:\n"
       "  void ping();\n"
       "  Mutex mu_;\n"
       "  Left* owner_ = nullptr;\n"
       "};\n"
       "class Left {\n"
       " public:\n"
       "  void ping();\n"
       "  Mutex mu_;\n"
       "  Right right_;\n"
       "};\n"
       "}  // namespace af::x\n"},
      {"src/x/locks.cpp",
       "#include \"x/locks.h\"\n"
       "namespace af::x {\n"
       "void Left::ping() {\n"
       "  MutexLock a(mu_);\n"
       "  MutexLock b(right_.mu_);\n"
       "}\n"
       "void Right::ping() {\n"
       "  MutexLock b(mu_);\n"
       "  MutexLock a(owner_->mu_);\n"
       "}\n"
       "}  // namespace af::x\n"}};
  const auto findings =
      lockorder::analyze(files, lockorder::default_hierarchy_unanchored());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
}

TEST(LockOrder, RealTreeGraphHasAnchorEdgesAndNoCycles) {
  // The acceptance anchor: the graph built from the real src/ tree must
  // contain the documented pipeline-mutex -> range-lock-shard edge (and the
  // order-mutex edge), and check() against the anchored hierarchy must be
  // clean. If a refactor renames the members or breaks call resolution,
  // this fails loudly instead of the analysis silently checking nothing.
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  const fs::path base = fs::path(AF_LINT_REPO_ROOT) / "src";
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cpp") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    files.push_back(SourceFile{
        fs::relative(entry.path(), AF_LINT_REPO_ROOT).generic_string(),
        ss.str()});
  }
  const Model model = Model::build(files);
  const lockorder::Graph graph = lockorder::build_graph(model);
  EXPECT_TRUE(
      graph.has_edge("SsdPipeline::mu_", "RangeLockTable::Shard::mu"));
  EXPECT_TRUE(
      graph.has_edge("SsdPipeline::mu_", "RangeLockTable::order_mu_"));
  const auto findings =
      lockorder::check(graph, lockorder::default_hierarchy());
  for (const auto& f : findings) ADD_FAILURE() << format(f);
}

// ---------------------------------------------------------------------------
// v2: nondet-iteration-order
// ---------------------------------------------------------------------------

TEST(AfLint, NondetIterationIntoSinkIsFlagged) {
  const auto findings =
      lint_fixture("nondet_iter.txt", "src/ftl/nondet_iter.cpp");
  // serialize_bad fires; the collect-then-sort pattern and the justified
  // allow()-covered fold stay clean.
  EXPECT_EQ(count_rule(findings, "nondet-iteration-order"), 1);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(AfLint, NondetIterationRuleOnlyCoversSrcAndBench) {
  const auto findings =
      lint_fixture("nondet_iter.txt", "tests/ftl/nondet_iter.cpp");
  EXPECT_EQ(count_rule(findings, "nondet-iteration-order"), 0);
}

// ---------------------------------------------------------------------------
// v2: status-assigned-unchecked
// ---------------------------------------------------------------------------

TEST(AfLint, StatusAssignedUncheckedIsFlagged) {
  const auto findings =
      lint_fixture("status_unchecked.txt", "src/ssd/status_unchecked.cpp");
  // bad() and reassigned() fire; comparison, return, argument passing,
  // (void)-discard and the justified allow stay clean.
  EXPECT_EQ(count_rule(findings, "status-assigned-unchecked"), 2);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(AfLint, StatusRuleOnlyCoversSrc) {
  const auto findings =
      lint_fixture("status_unchecked.txt", "tests/ssd/status_unchecked.cpp");
  EXPECT_EQ(count_rule(findings, "status-assigned-unchecked"), 0);
}

// ---------------------------------------------------------------------------
// deadline-clock
// ---------------------------------------------------------------------------

TEST(AfLint, DeadlineClockFlagsHostTimePrimitives) {
  const auto findings =
      lint_fixture("bad_deadline.txt", "src/ssd/bad_deadline.cpp");
  // sleep_for+chrono (one finding per line), timespec, clock_gettime fire;
  // the justified allow stays clean.
  EXPECT_EQ(count_rule(findings, "deadline-clock"), 3);
}

TEST(AfLint, DeadlineClockOnlyCoversSsdAndSim) {
  // The strict clock ban is scoped to the deadline/simulated-time layers —
  // elsewhere the broader no-nondeterminism rule is the authority.
  const auto in_ftl =
      lint_fixture("bad_deadline.txt", "src/ftl/bad_deadline.cpp");
  EXPECT_EQ(count_rule(in_ftl, "deadline-clock"), 0);
  const auto in_tests =
      lint_fixture("bad_deadline.txt", "tests/ssd/bad_deadline.cpp");
  EXPECT_EQ(count_rule(in_tests, "deadline-clock"), 0);
  const auto in_sim =
      lint_fixture("bad_deadline.txt", "src/sim/bad_deadline.cpp");
  EXPECT_EQ(count_rule(in_sim, "deadline-clock"), 3);
}

// ---------------------------------------------------------------------------
// v2: SARIF + diff mode
// ---------------------------------------------------------------------------

TEST(AfLint, SarifGoldenOutput) {
  const std::vector<Finding> fs = {
      {"src/nand/flash_array.h", 12, "nodiscard-status",
       "status-returning API 'program' (returns Status) must be "
       "[[nodiscard]]"},
      {"src/sim/pipeline.cpp", 0, "lock-order",
       "lock acquisition cycle: \"a\" -> b"},
  };
  EXPECT_EQ(to_sarif(fs), read_fixture("golden.sarif"));
}

TEST(AfLint, SarifIsSchemaShaped) {
  const std::string sarif = to_sarif({});
  EXPECT_NE(sarif.find("\"$schema\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"af_lint\""), std::string::npos);
  // Every rule the linter can emit is in the driver's rule table.
  for (const auto& rule : rule_catalogue()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule.id + "\""), std::string::npos)
        << rule.id;
  }
}

TEST(AfLint, ParseUnifiedDiffExtractsAddedRanges) {
  const std::string diff =
      "diff --git a/src/x.cpp b/src/x.cpp\n"
      "index 111..222 100644\n"
      "--- a/src/x.cpp\n"
      "+++ b/src/x.cpp\n"
      "@@ -10,2 +12,3 @@ void f()\n"
      "+a\n+b\n+c\n"
      "@@ -40 +50 @@\n"
      "+d\n"
      "@@ -60,3 +70,0 @@\n"
      "-gone\n-gone\n-gone\n"
      "diff --git a/src/y.cpp b/src/y.cpp\n"
      "--- a/src/y.cpp\n"
      "+++ b/src/y.cpp\n"
      "@@ -1,0 +2,2 @@\n"
      "+e\n+f\n";
  const ChangedLines changed = parse_unified_diff(diff);
  EXPECT_TRUE(changed.covers("src/x.cpp", 12));
  EXPECT_TRUE(changed.covers("src/x.cpp", 14));
  EXPECT_FALSE(changed.covers("src/x.cpp", 11));
  EXPECT_FALSE(changed.covers("src/x.cpp", 15));
  EXPECT_TRUE(changed.covers("src/x.cpp", 50));
  // A pure deletion (+70,0) contributes no lines.
  EXPECT_FALSE(changed.covers("src/x.cpp", 70));
  EXPECT_TRUE(changed.covers("src/y.cpp", 2));
  EXPECT_TRUE(changed.covers("src/y.cpp", 3));
  EXPECT_FALSE(changed.covers("src/y.cpp", 4));
  EXPECT_FALSE(changed.covers("src/z.cpp", 1));
}

TEST(AfLint, DiffModeRestrictsFixtureFindingsToChangedLines) {
  // A synthetic changed-lines set over a real fixture's findings: only the
  // finding whose line is inside a changed range survives.
  auto findings = lint_fixture("bad_space.txt", "src/sim/bad_space.cpp");
  ASSERT_EQ(findings.size(), 4u);
  const int keep_line = findings[1].line;
  ChangedLines changed;
  changed.ranges["src/sim/bad_space.cpp"].push_back({keep_line, keep_line});
  const auto restricted = restrict_to_changed(std::move(findings), changed);
  ASSERT_EQ(restricted.size(), 1u);
  EXPECT_EQ(restricted[0].line, keep_line);
}

}  // namespace
}  // namespace af::lint

// Fixture-driven tests for af_lint. Each fixture under tests/tools/fixtures
// is a source snippet stored as .txt (so the tree-wide af_lint_tree test and
// the build never see it as real C++); the tests lint it under a pseudo-path,
// because several rules key off the directory the file claims to live in.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace af::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(AF_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& pseudo_path) {
  return lint_content(pseudo_path, read_fixture(name));
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(AfLint, BadHeaderMissingPragmaOnceAndNodiscard) {
  const auto findings = lint_fixture("bad_header.txt", "src/nand/bad_header.h");
  EXPECT_EQ(count_rule(findings, "pragma-once"), 1);
  // bool program(...) and SimTime schedule_read(...); void configure is not
  // a status API.
  EXPECT_EQ(count_rule(findings, "nodiscard-status"), 2);
  EXPECT_EQ(findings.size(), 3u);
}

TEST(AfLint, GoodHeaderIsClean) {
  const auto findings =
      lint_fixture("good_header.txt", "src/nand/good_header.h");
  for (const auto& f : findings) ADD_FAILURE() << format(f);
}

TEST(AfLint, NodiscardRuleOnlyCoversSrcHeaders) {
  // The same bad header under tests/ or as a .cpp is out of the rule's
  // jurisdiction (pragma-once still applies to any header).
  const auto in_tests =
      lint_fixture("bad_header.txt", "tests/nand/bad_header.h");
  EXPECT_EQ(count_rule(in_tests, "nodiscard-status"), 0);
  EXPECT_EQ(count_rule(in_tests, "pragma-once"), 1);
  const auto as_cpp = lint_fixture("bad_header.txt", "src/nand/bad_header.cpp");
  EXPECT_TRUE(as_cpp.empty());
}

TEST(AfLint, RecoveryApisMustBeNodiscard) {
  const auto findings =
      lint_fixture("bad_recovery.txt", "src/ssd/bad_recovery.h");
  // mount(), recover_block(), mount_root() by name; inspect_last() by its
  // RecoveryReport return. The void hooks and the annotated APIs stay clean.
  EXPECT_EQ(count_rule(findings, "nodiscard-recovery"), 4);
  // recover_block() returns bool, so the type-keyed rule fires there too.
  EXPECT_EQ(count_rule(findings, "nodiscard-status"), 1);
}

TEST(AfLint, RecoveryRuleOnlyCoversSrcHeaders) {
  const auto in_tests =
      lint_fixture("bad_recovery.txt", "tests/ssd/bad_recovery.h");
  EXPECT_EQ(count_rule(in_tests, "nodiscard-recovery"), 0);
  const auto as_cpp =
      lint_fixture("bad_recovery.txt", "src/ssd/bad_recovery.cpp");
  EXPECT_EQ(count_rule(as_cpp, "nodiscard-recovery"), 0);
}

TEST(AfLint, CheckSideEffects) {
  const auto findings = lint_fixture("bad_check.txt", "src/ftl/bad_check.cpp");
  // count++, flag.exchange(true), and the wrapped (count += 2) condition.
  // The pure comparisons — including the one whose *message* mentions
  // "= 10, or x++" inside a string literal — stay clean.
  EXPECT_EQ(count_rule(findings, "check-side-effects"), 3);
  EXPECT_EQ(findings.size(), 3u);
}

TEST(AfLint, RawThreadsOutsideCommon) {
  const auto findings =
      lint_fixture("bad_thread.txt", "bench/bad_thread.cpp");
  // std::thread and std::jthread construction and std::async;
  // hardware_concurrency() is a read-only query and stays legal.
  EXPECT_EQ(count_rule(findings, "no-raw-thread"), 3);
  EXPECT_EQ(findings.size(), 3u);
}

TEST(AfLint, RawThreadsAllowedInsideCommon) {
  const auto findings =
      lint_fixture("bad_thread.txt", "src/common/thread_pool_impl.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(AfLint, NondeterminismOutsideCommon) {
  const auto findings =
      lint_fixture("bad_nondet.txt", "tests/sim/bad_nondet.cpp");
  EXPECT_EQ(count_rule(findings, "no-nondeterminism"), 2);
}

TEST(AfLint, NondeterminismAllowedInsideCommon) {
  const auto findings =
      lint_fixture("bad_nondet.txt", "src/common/clock.cpp");
  EXPECT_TRUE(findings.empty());
}

TEST(AfLint, IntegrityStatusDiscardsAreFlagged) {
  const auto findings =
      lint_fixture("bad_integrity.txt", "src/ftl/bad_integrity.cpp");
  // The two statement-position calls; assignments, return, (void), the
  // map_flash_read suffix-lookalikes, the declaration line and the
  // allow()-suppressed probe all stay clean.
  EXPECT_EQ(count_rule(findings, "integrity-status"), 2);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(AfLint, IntegrityStatusRuleOnlyCoversSrc) {
  const auto findings =
      lint_fixture("bad_integrity.txt", "tests/ftl/bad_integrity.cpp");
  EXPECT_EQ(count_rule(findings, "integrity-status"), 0);
}

TEST(AfLint, SpaceStatusDiscardsAreFlagged) {
  const auto findings =
      lint_fixture("bad_space.txt", "src/sim/bad_space.cpp");
  // The four statement-position calls (admit_write, throttle_delay, trim,
  // note_trim); assignments, conditions, compound-assignment, (void), and
  // the on_trim / prune_trim_log suffix lookalikes stay clean.
  EXPECT_EQ(count_rule(findings, "nodiscard-space-status"), 4);
  EXPECT_EQ(findings.size(), 4u);
}

TEST(AfLint, SpaceStatusRuleOnlyCoversSrc) {
  const auto findings =
      lint_fixture("bad_space.txt", "tests/sim/bad_space.cpp");
  EXPECT_EQ(count_rule(findings, "nodiscard-space-status"), 0);
}

TEST(AfLint, MultiSchemeBenchMustUseRunSchemes) {
  const auto findings = lint_fixture("bad_bench.txt", "bench/bad_bench.cpp");
  EXPECT_EQ(count_rule(findings, "bench-run-schemes"), 1);
}

TEST(AfLint, BenchRuleOnlyAppliesToBenchDir) {
  const auto findings =
      lint_fixture("bad_bench.txt", "tests/integration/bad_bench.cpp");
  EXPECT_EQ(count_rule(findings, "bench-run-schemes"), 0);
}

TEST(AfLint, PipelineGuardedStateFlagsUnannotatedMembers) {
  const auto findings = lint_fixture("bad_pipeline_state.txt",
                                     "src/sim/bad_pipeline_state.h");
  // pending_ and completed_ lack annotations; the const member, the Mutex,
  // the AF_GUARDED_BY member, the atomic and the allow-justified member
  // must all pass.
  EXPECT_EQ(count_rule(findings, "pipeline-guarded-state"), 2);
}

TEST(AfLint, PipelineGuardedStateOnlyCoversMutexBearingSsdSimHeaders) {
  // Same content elsewhere in src/, or as a .cpp, is out of jurisdiction.
  const auto in_ftl = lint_fixture("bad_pipeline_state.txt",
                                   "src/ftl/bad_pipeline_state.h");
  EXPECT_EQ(count_rule(in_ftl, "pipeline-guarded-state"), 0);
  const auto as_cpp = lint_fixture("bad_pipeline_state.txt",
                                   "src/sim/bad_pipeline_state.cpp");
  EXPECT_EQ(count_rule(as_cpp, "pipeline-guarded-state"), 0);
  // A header with plain members but no Mutex member is single-threaded
  // state and stays unannotated.
  const std::string no_mutex =
      "#pragma once\n"
      "namespace af::sim {\n"
      "class Counters {\n"
      " private:\n"
      "  unsigned long long completed_ = 0;\n"
      "};\n"
      "}  // namespace af::sim\n";
  const auto findings = lint_content("src/sim/counters.h", no_mutex);
  EXPECT_EQ(count_rule(findings, "pipeline-guarded-state"), 0);
}

TEST(AfLint, SuppressionsSilenceJustifiedFindings) {
  // allow-file(no-nondeterminism) covers both clock readings; the wrapped
  // allow(bench-run-schemes) comment block must carry down to the
  // trace::replay call below it.
  const auto findings =
      lint_fixture("suppressed.txt", "bench/suppressed.cpp");
  for (const auto& f : findings) ADD_FAILURE() << format(f);
}

TEST(AfLint, SuppressionIsRuleSpecific) {
  // An allow() for an unrelated rule must not silence the real finding.
  const std::string content =
      "// af_lint: allow(pragma-once)\n"
      "int f() { return std::rand(); }\n";
  const auto findings = lint_content("src/ftl/wrong_allow.cpp", content);
  EXPECT_EQ(count_rule(findings, "no-nondeterminism"), 1);
}

TEST(AfLint, PatternsInsideStringsAndCommentsDoNotFire) {
  const std::string content =
      "#pragma once\n"
      "// mentions std::thread and std::rand in a comment\n"
      "inline const char* kDoc = \"std::async and steady_clock\";\n";
  const auto findings = lint_content("src/ftl/doc.h", content);
  for (const auto& f : findings) ADD_FAILURE() << format(f);
}

TEST(AfLint, FormatIsCompilerStyle) {
  const Finding f{"src/x.h", 12, "pragma-once", "msg"};
  EXPECT_EQ(format(f), "src/x.h:12: [pragma-once] msg");
}

TEST(AfLint, TreeIsCleanRightNow) {
  // The repo itself must lint clean — same as the af_lint_tree ctest entry,
  // but through the library API so failures show up with gtest context.
  const auto findings = lint_tree(AF_LINT_REPO_ROOT);
  for (const auto& f : findings) ADD_FAILURE() << format(f);
}

}  // namespace
}  // namespace af::lint

// Regression tests for MapDirectory reentrancy: a dirty eviction's flash
// write-back can trigger GC, whose relocations re-enter touch() — possibly
// for the very page being evicted or inserted. Reproduced here
// deterministically with a MapIo whose program call recurses.
#include <gtest/gtest.h>

#include "ssd/map_directory.h"

namespace af::ssd {
namespace {

/// MapIo that re-enters the directory from inside map_flash_program, the way
/// engine GC does via scheme relocations.
class ReentrantMapIo : public MapIo {
 public:
  SimTime map_flash_read(Ppn, SimTime ready) override { return ready + 100; }

  std::pair<Ppn, SimTime> map_flash_program(std::uint64_t,
                                            SimTime ready) override {
    ++programs;
    if (dir != nullptr && !reentry_pages.empty() && depth == 0) {
      ++depth;  // recurse once per eviction, like a single GC pass
      for (std::uint64_t page : reentry_pages) {
        (void)dir->touch(page, /*dirty=*/reentry_dirty, ready);
      }
      --depth;
    }
    return {Ppn{next_ppn++}, ready + 1000};
  }

  void map_flash_invalidate(Ppn ppn) override {
    invalidated.push_back(ppn);
  }
  void map_dram_access(std::uint64_t) override {}

  MapDirectory* dir = nullptr;
  std::vector<std::uint64_t> reentry_pages;
  bool reentry_dirty = false;
  std::vector<Ppn> invalidated;
  int depth = 0;
  std::uint64_t programs = 0;
  std::uint64_t next_ppn = 500;
};

TEST(MapReentrancy, ReinsertionOfThePageBeingInsertedIsDeduplicated) {
  ReentrantMapIo io;
  MapDirectory dir(io, 16, 2);
  io.dir = &dir;

  (void)dir.touch(0, /*dirty=*/true, 0);
  (void)dir.touch(1, /*dirty=*/false, 0);
  // Touching 7 evicts dirty page 0 → program → reentrant touch(7): the page
  // the outer call is about to insert. Must not end up twice in the LRU.
  io.reentry_pages = {7};
  (void)dir.touch(7, /*dirty=*/false, 0);
  io.reentry_pages.clear();

  EXPECT_EQ(dir.cached_pages(), 2u);
  // Drain the cache fully; a duplicate LRU node would abort here.
  (void)dir.touch(8, true, 0);
  (void)dir.touch(9, true, 0);
  (void)dir.touch(10, true, 0);
  (void)dir.touch(11, true, 0);
  EXPECT_LE(dir.cached_pages(), 2u);
}

TEST(MapReentrancy, ReinsertionOfTheEvictedPageKeepsFlashConsistent) {
  ReentrantMapIo io;
  MapDirectory dir(io, 16, 2);
  io.dir = &dir;

  (void)dir.touch(0, true, 0);
  (void)dir.touch(1, false, 0);
  // Evicting page 0 re-touches page 0 from inside the write-back (GC
  // relocating data whose translation page is the one being flushed).
  io.reentry_pages = {0};
  (void)dir.touch(2, false, 0);
  io.reentry_pages.clear();

  // Page 0's flash location must be the newly programmed copy.
  EXPECT_TRUE(dir.flash_location(0).valid());
  // Reload goes to that copy without aborting on an invalid page.
  (void)dir.touch(3, false, 0);
  (void)dir.touch(4, false, 0);
  (void)dir.touch(0, false, 0);
}

TEST(MapReentrancy, DirtyReentrantTouchSurvivesLaterEviction) {
  ReentrantMapIo io;
  MapDirectory dir(io, 16, 2);
  io.dir = &dir;

  (void)dir.touch(0, true, 0);
  (void)dir.touch(1, false, 0);
  io.reentry_pages = {5};
  io.reentry_dirty = true;
  (void)dir.touch(2, false, 0);  // evict 0 → reentrant dirty touch(5)
  io.reentry_pages.clear();

  const auto programs_before = io.programs;
  // Force 5 out of the cache: its dirtiness must produce a write-back.
  (void)dir.touch(8, false, 0);
  (void)dir.touch(9, false, 0);
  (void)dir.touch(10, false, 0);
  EXPECT_GT(io.programs, programs_before);
}

}  // namespace
}  // namespace af::ssd

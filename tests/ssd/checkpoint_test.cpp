// Checkpoint journal (ssd/checkpoint.h): cadence, root commitment, and the
// clean-remount round trip (tables restored bit-identically from the chain
// plus OOB claims).
#include <gtest/gtest.h>

#include <vector>

#include "ftl/scheme.h"
#include "sim/ssd.h"
#include "ssd/serialize.h"
#include "../helpers.h"

namespace af {
namespace {

ssd::SsdConfig ckpt_config(std::uint64_t interval, std::uint32_t every) {
  ssd::SsdConfig config = test::tiny_config();
  config.checkpoint.interval_requests = interval;
  config.checkpoint.snapshot_every = every;
  return config;
}

void run_workload(sim::Ssd& ssd, std::uint64_t requests, std::uint64_t seed) {
  test::WorkloadGen gen(ssd.config().logical_sectors(),
                        ssd.config().geometry.sectors_per_page(), seed);
  for (std::uint64_t i = 0; i < requests; ++i) {
    test::submit_ok(ssd, gen.next());
  }
}

std::vector<std::uint8_t> mapping_bytes(const ftl::FtlScheme& scheme) {
  ssd::ByteSink sink;
  scheme.serialize_mapping(sink);
  return sink.take();
}

TEST(Checkpoint, DisabledPolicyWritesNoJournal) {
  sim::Ssd ssd(test::tiny_config(), ftl::SchemeKind::kAcrossFtl);
  run_workload(ssd, 200, 7);
  EXPECT_EQ(ssd.checkpointer(), nullptr);
  EXPECT_FALSE(ssd.engine().array().mount_root().valid);
}

TEST(Checkpoint, JournalCadenceAndSnapshotMix) {
  sim::Ssd ssd(ckpt_config(/*interval=*/10, /*every=*/4),
               ftl::SchemeKind::kAcrossFtl);
  run_workload(ssd, 200, 7);

  ASSERT_NE(ssd.checkpointer(), nullptr);
  const auto& c = ssd.checkpointer()->counters();
  EXPECT_GT(c.journal_writes, 0u);
  EXPECT_EQ(c.journal_writes, c.snapshots + c.deltas);
  // Entry 0 is a snapshot, then every 4th: snapshots ≈ writes / 4.
  EXPECT_EQ(c.snapshots, (c.journal_writes + 3) / 4);
  EXPECT_GE(c.pages_written, c.journal_writes);
}

TEST(Checkpoint, RootNamesACompleteOnFlashEntry) {
  sim::Ssd ssd(ckpt_config(/*interval=*/8, /*every=*/2),
               ftl::SchemeKind::kPageFtl);
  run_workload(ssd, 120, 3);

  const auto& array = ssd.engine().array();
  const nand::MountRoot& root = array.mount_root();
  ASSERT_TRUE(root.valid);
  EXPECT_GT(root.journal_seq, 0u);
  EXPECT_LE(root.journal_seq, array.last_seq());
  ASSERT_FALSE(root.snapshot_pages.empty());
  for (const Ppn ppn : root.snapshot_pages) {
    EXPECT_EQ(array.state(ppn), nand::PageState::kValid);
    EXPECT_EQ(array.owner(ppn).kind, nand::PageOwner::Kind::kCkpt);
    ASSERT_NE(array.ckpt_blob(ppn), nullptr);
  }
  for (const auto& entry : root.delta_pages) {
    for (const Ppn ppn : entry) {
      EXPECT_EQ(array.state(ppn), nand::PageState::kValid);
      ASSERT_NE(array.ckpt_blob(ppn), nullptr);
    }
  }
}

class CheckpointRemount : public testing::TestWithParam<ftl::SchemeKind> {};

TEST_P(CheckpointRemount, CleanRemountRestoresTablesBitIdentically) {
  const ssd::SsdConfig config = ckpt_config(/*interval=*/16, /*every=*/3);
  auto ssd = std::make_unique<sim::Ssd>(config, GetParam());
  run_workload(*ssd, 300, 11);

  const std::vector<std::uint8_t> before = mapping_bytes(ssd->scheme());
  const ssd::Oracle oracle_seed = *ssd->oracle();
  nand::FlashArray image = ssd->release_flash();
  ssd.reset();

  ssd::RecoveryReport report;
  auto mounted = sim::Ssd::mount(config, GetParam(), std::move(image),
                                 &oracle_seed, &report);
  EXPECT_TRUE(report.used_checkpoint);
  EXPECT_GT(report.checkpoint_pages_read, 0u);
  EXPECT_EQ(report.torn_pages, 0u);
  EXPECT_EQ(mapping_bytes(mounted->scheme()), before);
  test::verify_full_space(*mounted);

  // The journal bounds the scan: with a fresh-enough checkpoint, whole
  // blocks predate journal_seq and are skipped without reading their pages.
  EXPECT_GT(report.blocks_skipped, 0u);
  EXPECT_LT(report.pages_scanned,
            config.geometry.total_pages());
}

TEST_P(CheckpointRemount, RemountWithoutJournalFallsBackToFullScan) {
  const ssd::SsdConfig config = test::tiny_config();
  auto ssd = std::make_unique<sim::Ssd>(config, GetParam());
  run_workload(*ssd, 300, 11);

  const std::vector<std::uint8_t> before = mapping_bytes(ssd->scheme());
  const ssd::Oracle oracle_seed = *ssd->oracle();
  nand::FlashArray image = ssd->release_flash();
  ssd.reset();

  ssd::RecoveryReport report;
  auto mounted = sim::Ssd::mount(config, GetParam(), std::move(image),
                                 &oracle_seed, &report);
  EXPECT_FALSE(report.used_checkpoint);
  EXPECT_EQ(report.checkpoint_pages_read, 0u);
  EXPECT_EQ(mapping_bytes(mounted->scheme()), before);
  test::verify_full_space(*mounted);
}

TEST_P(CheckpointRemount, RecoveredDeviceKeepsServingWrites) {
  const ssd::SsdConfig config = ckpt_config(/*interval=*/12, /*every=*/2);
  auto ssd = std::make_unique<sim::Ssd>(config, GetParam());
  run_workload(*ssd, 150, 5);

  const ssd::Oracle oracle_seed = *ssd->oracle();
  nand::FlashArray image = ssd->release_flash();
  ssd.reset();
  auto mounted =
      sim::Ssd::mount(config, GetParam(), std::move(image), &oracle_seed);

  // The second life journals too (policy re-attaches on mount) and the
  // oracle still holds: new writes continue the stamp sequence.
  run_workload(*mounted, 150, 6);
  ASSERT_NE(mounted->checkpointer(), nullptr);
  EXPECT_GT(mounted->checkpointer()->counters().journal_writes, 0u);
  test::verify_full_space(*mounted);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CheckpointRemount,
                         testing::Values(ftl::SchemeKind::kPageFtl,
                                         ftl::SchemeKind::kMrsm,
                                         ftl::SchemeKind::kAcrossFtl),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ftl::SchemeKind::kPageFtl:
                               return "PageFtl";
                             case ftl::SchemeKind::kMrsm:
                               return "Mrsm";
                             default:
                               return "Across";
                           }
                         });

}  // namespace
}  // namespace af

// Translation pages live in flash once evicted from the CMT; GC must be able
// to relocate them (owner kind kMap) with the GTD following. A one-page CMT
// forces constant dirty evictions so map pages populate the flash and get
// caught in GC churn.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/scheme.h"
#include "sim/ssd.h"
#include "../helpers.h"

namespace af::ssd {
namespace {

SsdConfig one_page_cmt() {
  auto config = SsdConfig::tiny();
  // tiny()'s whole PMT fits one translation page; grow the logical space so
  // the table spans several pages, then give the CMT room for just one.
  config.geometry.blocks_per_plane = 48;
  config.geometry.pages_per_block = 32;
  config.map_cache_bytes = config.geometry.page_bytes;  // 1 translation page
  return config;
}

TEST(MapGc, MapPagesFlowThroughFlashAndGc) {
  const auto config = one_page_cmt();
  sim::Ssd ssd(config, ftl::SchemeKind::kPageFtl);
  const auto spp = config.geometry.sectors_per_page();
  const auto footprint = config.logical_pages() / 2;

  Rng rng(31);
  SimTime t = 0;
  for (int i = 0; i < 10'000; ++i) {
    test::submit_ok(ssd,
                    {t++, true, SectorRange::of(rng.below(footprint) * spp, spp)});
  }
  // The tiny CMT produced real map flash traffic...
  EXPECT_GT(ssd.stats().flash_ops(OpKind::kMapWrite), 100u);
  EXPECT_GT(ssd.stats().flash_ops(OpKind::kMapRead), 100u);
  // ...and GC ran with map pages resident in flash.
  EXPECT_GT(ssd.engine().gc_runs(), 0u);
  // Everything still reads back correctly through the relocated tables.
  test::verify_full_space(ssd);
}

TEST(MapGc, AcrossSchemeSurvivesMapEvictionChurn) {
  const auto config = one_page_cmt();
  sim::Ssd ssd(config, ftl::SchemeKind::kAcrossFtl);
  const auto spp = config.geometry.sectors_per_page();

  Rng rng(37);
  SimTime t = 0;
  for (int i = 0; i < 8'000; ++i) {
    if (rng.chance(0.35)) {
      const SectorAddr boundary =
          2 * rng.between(1, config.logical_pages() / 2 - 1) * spp;
      const SectorCount len = rng.between(4, spp);
      test::submit_ok(
          ssd, {t++, true,
                SectorRange::of(boundary - rng.between(1, len - 1), len)});
    } else {
      const std::uint64_t p = rng.below(config.logical_pages() / 2);
      test::submit_ok(ssd, {t++, true, SectorRange::of(p * spp, spp)});
    }
  }
  EXPECT_GT(ssd.stats().flash_ops(OpKind::kMapWrite), 0u);
  test::verify_full_space(ssd);
}

TEST(MapGc, MapTrafficCountsSeparatelyFromData) {
  const auto config = one_page_cmt();
  sim::Ssd ssd(config, ftl::SchemeKind::kPageFtl);
  const auto spp = config.geometry.sectors_per_page();
  SimTime t = 0;
  // Two writes to translation-page-distant LPNs: the second touch evicts the
  // first (dirty) translation page.
  test::submit_ok(ssd, {t++, true, SectorRange::of(0, spp)});
  const auto lpns_per_tpage = config.geometry.page_bytes / 4;
  const auto far_lpn = std::min<std::uint64_t>(config.logical_pages() - 1,
                                               lpns_per_tpage + 1);
  test::submit_ok(ssd, {t++, true, SectorRange::of(far_lpn * spp, spp)});
  EXPECT_EQ(ssd.stats().flash_ops(OpKind::kMapWrite), 1u);
  EXPECT_EQ(ssd.stats().flash_ops(OpKind::kDataWrite), 2u);
}

}  // namespace
}  // namespace af::ssd

#include "ssd/oracle.h"

#include <gtest/gtest.h>

namespace af::ssd {
namespace {

TEST(Oracle, UnwrittenIsZero) {
  Oracle oracle(64);
  EXPECT_EQ(oracle.expected(0), 0u);
  EXPECT_EQ(oracle.expected(63), 0u);
  EXPECT_EQ(oracle.logical_sectors(), 64u);
}

TEST(Oracle, WriteStampsSectors) {
  Oracle oracle(64);
  oracle.on_write({10, 14});
  EXPECT_EQ(oracle.expected(9), 0u);
  EXPECT_NE(oracle.expected(10), 0u);
  EXPECT_NE(oracle.expected(13), 0u);
  EXPECT_EQ(oracle.expected(14), 0u);
}

TEST(Oracle, StampsAreGloballyUnique) {
  Oracle oracle(64);
  oracle.on_write({0, 4});
  oracle.on_write({8, 12});
  std::set<std::uint64_t> seen;
  for (int s : {0, 1, 2, 3, 8, 9, 10, 11}) {
    EXPECT_TRUE(seen.insert(oracle.expected(static_cast<SectorAddr>(s))).second);
  }
}

TEST(Oracle, OverwriteBumpsStamp) {
  Oracle oracle(64);
  oracle.on_write({5, 6});
  const auto first = oracle.expected(5);
  oracle.on_write({5, 6});
  EXPECT_GT(oracle.expected(5), first);
}

TEST(OracleDeathTest, OutOfRangeAborts) {
  Oracle oracle(16);
  EXPECT_DEATH(oracle.on_write({10, 20}), "beyond logical space");
  EXPECT_DEATH((void)oracle.expected(16), "CHECK");
}

}  // namespace
}  // namespace af::ssd

#include "ssd/engine.h"

#include <gtest/gtest.h>

#include <set>

namespace af::ssd {
namespace {

SsdConfig engine_config() {
  SsdConfig config = SsdConfig::tiny();
  config.track_payload = true;
  return config;
}

/// Registers a trivial relocator that just copies a page and lets the test
/// observe the relocations.
struct SimpleRelocator {
  explicit SimpleRelocator(Engine& engine) : engine_(engine) {
    engine.set_relocator([this](Ppn victim, const nand::PageOwner& owner,
                                SimTime& clock) {
      clock = engine_.flash_read(victim, OpKind::kGcRead, clock).done;
      auto moved = engine_.gc_program(engine_.geometry().plane_of(victim),
                                      owner, clock);
      clock = moved.done;
      engine_.copy_stamps(victim, moved.ppn);
      engine_.invalidate(victim);
      moves.push_back({victim, moved.ppn});
    });
  }
  Engine& engine_;
  std::vector<std::pair<Ppn, Ppn>> moves;
};

TEST(Engine, ProgramAllocatesAcrossPlanes) {
  Engine engine(engine_config());
  SimpleRelocator relocator(engine);
  std::set<std::uint64_t> planes;
  for (int i = 0; i < 8; ++i) {
    auto programmed = engine.flash_program(
        Stream::kData, nand::PageOwner::data(Lpn{static_cast<std::uint64_t>(i)}),
        OpKind::kDataWrite, 0);
    planes.insert(engine.geometry().plane_of(programmed.ppn));
  }
  // Round-robin striping: 8 consecutive programs land on 4 distinct planes.
  EXPECT_EQ(planes.size(), engine.geometry().total_planes());
}

TEST(Engine, ProgramAdvancesTime) {
  Engine engine(engine_config());
  SimpleRelocator relocator(engine);
  auto programmed = engine.flash_program(
      Stream::kData, nand::PageOwner::data(Lpn{0}), OpKind::kDataWrite, 500);
  EXPECT_GT(programmed.done,
            500 + engine.config().timing.program_ns - 1);
  EXPECT_EQ(engine.stats().flash_ops(OpKind::kDataWrite), 1u);
}

TEST(Engine, ReadRequiresValidPage) {
  Engine engine(engine_config());
  SimpleRelocator relocator(engine);
  EXPECT_DEATH((void)engine.flash_read(Ppn{0}, OpKind::kDataRead, 0),
               "non-valid");
  auto programmed = engine.flash_program(
      Stream::kData, nand::PageOwner::data(Lpn{0}), OpKind::kDataWrite, 0);
  const SimTime done = engine.flash_read(programmed.ppn, OpKind::kDataRead,
                                         programmed.done)
                           .done;
  EXPECT_GT(done, programmed.done);
}

TEST(Engine, StreamsUseSeparateActiveBlocks) {
  Engine engine(engine_config());
  SimpleRelocator relocator(engine);
  auto a = engine.flash_program(Stream::kData, nand::PageOwner::data(Lpn{0}),
                                OpKind::kDataWrite, 0);
  auto b = engine.flash_program(Stream::kMap, nand::PageOwner::map(0),
                                OpKind::kMapWrite, 0);
  EXPECT_NE(engine.geometry().block_of(a.ppn), engine.geometry().block_of(b.ppn));
}

TEST(Engine, GcTriggersWhenPlaneRunsLow) {
  Engine engine(engine_config());
  SimpleRelocator relocator(engine);
  const auto& geom = engine.geometry();
  // Fill the device with short-lived data: each page is invalidated as soon
  // as the next one lands, so GC victims are nearly empty.
  Ppn prev{};
  const std::uint64_t total = geom.total_pages() * 3;
  for (std::uint64_t i = 0; i < total; ++i) {
    auto programmed = engine.flash_program(
        Stream::kData, nand::PageOwner::data(Lpn{i % 64}), OpKind::kDataWrite,
        0);
    if (prev.valid()) engine.invalidate(prev);
    prev = programmed.ppn;
  }
  EXPECT_GT(engine.gc_runs(), 0u);
  EXPECT_GT(engine.stats().erases(), 0u);
  // Free-block floors hold in every plane.
  for (std::uint64_t p = 0; p < geom.total_planes(); ++p) {
    EXPECT_GE(engine.free_blocks(p), 1u);
  }
}

TEST(Engine, GcPreservesLiveData) {
  Engine engine(engine_config());
  SimpleRelocator relocator(engine);
  const auto& geom = engine.geometry();

  // A small set of long-lived pages with distinctive stamps...
  std::vector<Ppn> live;
  for (std::uint64_t i = 0; i < 8; ++i) {
    auto programmed = engine.flash_program(
        Stream::kData, nand::PageOwner::data(Lpn{1000 + i}),
        OpKind::kDataWrite, 0);
    engine.write_stamp(programmed.ppn, 0, 7000 + i);
    live.push_back(programmed.ppn);
  }
  // ...buried under churn that forces many GC cycles.
  Ppn prev{};
  for (std::uint64_t i = 0; i < geom.total_pages() * 3; ++i) {
    auto programmed = engine.flash_program(
        Stream::kData, nand::PageOwner::data(Lpn{i % 16}), OpKind::kDataWrite, 0);
    if (prev.valid()) engine.invalidate(prev);
    prev = programmed.ppn;
  }

  // The relocator tracked moves; follow each live page to its final home.
  for (std::uint64_t i = 0; i < live.size(); ++i) {
    Ppn where = live[i];
    for (const auto& [from, to] : relocator.moves) {
      if (from == where) where = to;
    }
    ASSERT_EQ(engine.array().state(where), nand::PageState::kValid);
    EXPECT_EQ(engine.read_stamp(where, 0), 7000 + i);
  }
}

TEST(Engine, MapSpaceRequired) {
  Engine engine(engine_config());
  EXPECT_DEATH((void)engine.map_touch(0, false, 0), "init_map_space");
  engine.init_map_space(8);
  EXPECT_EQ(engine.map_touch(0, false, 5), 5u);
  EXPECT_EQ(engine.stats().dram_accesses(), 1u);
}

TEST(Engine, CopyStamps) {
  Engine engine(engine_config());
  SimpleRelocator relocator(engine);
  auto a = engine.flash_program(Stream::kData, nand::PageOwner::data(Lpn{0}),
                                OpKind::kDataWrite, 0);
  auto b = engine.flash_program(Stream::kData, nand::PageOwner::data(Lpn{1}),
                                OpKind::kDataWrite, 0);
  for (std::uint32_t s = 0; s < engine.geometry().sectors_per_page(); ++s) {
    engine.write_stamp(a.ppn, s, 100 + s);
  }
  engine.copy_stamps(a.ppn, b.ppn);
  for (std::uint32_t s = 0; s < engine.geometry().sectors_per_page(); ++s) {
    EXPECT_EQ(engine.read_stamp(b.ppn, s), 100 + s);
  }
}

TEST(Engine, ClassFlushAttribution) {
  Engine engine(engine_config());
  SimpleRelocator relocator(engine);
  engine.set_request_class(ReqClass::kAcrossWrite);
  (void)engine.flash_program(Stream::kData, nand::PageOwner::data(Lpn{0}),
                             OpKind::kDataWrite, 0);
  engine.set_request_class(std::nullopt);
  (void)engine.flash_program(Stream::kData, nand::PageOwner::data(Lpn{1}),
                             OpKind::kDataWrite, 0);
  EXPECT_EQ(engine.stats().class_flushes(ReqClass::kAcrossWrite), 1u);
  EXPECT_EQ(engine.stats().class_flushes(ReqClass::kNormalWrite), 0u);
}

TEST(EngineDeathTest, GcProgramOutsideGcAborts) {
  Engine engine(engine_config());
  EXPECT_DEATH((void)engine.gc_program(0, nand::PageOwner::data(Lpn{0}), 0),
               "outside GC");
}

}  // namespace
}  // namespace af::ssd

#include "ssd/timeline.h"

#include <gtest/gtest.h>

namespace af::ssd {
namespace {

nand::Geometry two_channel() {
  nand::Geometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.dies_per_chip = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 4;
  g.pages_per_block = 4;
  g.page_bytes = 8192;
  return g;
}

nand::Timing fixed_timing() {
  nand::Timing t;
  t.read_ns = 100;
  t.program_ns = 1000;
  t.erase_ns = 5000;
  t.transfer_ns_per_page = 10;
  return t;
}

TEST(Timeline, ReadLatencyOnIdleResources) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  const SimTime done = tl.schedule_read({0, 0, 0, 0, 0, 0}, 50);
  EXPECT_EQ(done, 50 + 100 + 10);  // sense then transfer
}

TEST(Timeline, ProgramLatencyOnIdleResources) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  const SimTime done = tl.schedule_program({0, 0, 0, 0, 0, 0}, 0);
  EXPECT_EQ(done, 10 + 1000);  // transfer then program
}

TEST(Timeline, EraseOccupiesOnlyChip) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  const SimTime done = tl.schedule_erase({0, 0, 0, 0, 0, 0}, 0);
  EXPECT_EQ(done, 5000u);
  EXPECT_EQ(tl.channel_free_at(0), 0u);  // channel untouched
  EXPECT_EQ(tl.chip_free_at(0), 5000u);
}

TEST(Timeline, SameChipSerialises) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  const SimTime first = tl.schedule_program({0, 0, 0, 0, 0, 0}, 0);
  const SimTime second = tl.schedule_program({0, 0, 0, 0, 0, 1}, 0);
  EXPECT_EQ(first, 1010u);
  EXPECT_EQ(second, first + 10 + 1000);
}

TEST(Timeline, DifferentChipsShareOnlyChannel) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  const SimTime a = tl.schedule_program({0, 0, 0, 0, 0, 0}, 0);
  const SimTime b = tl.schedule_program({0, 1, 0, 0, 0, 0}, 0);
  EXPECT_EQ(a, 1010u);
  // Second chip waits only for the 10ns channel transfer, then programs in
  // parallel with the first chip.
  EXPECT_EQ(b, 10 + 10 + 1000u);
}

TEST(Timeline, DifferentChannelsFullyParallel) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  const SimTime a = tl.schedule_program({0, 0, 0, 0, 0, 0}, 0);
  const SimTime b = tl.schedule_program({1, 0, 0, 0, 0, 0}, 0);
  EXPECT_EQ(a, b);
}

TEST(Timeline, ProgramFreesChannelBeforeCellWork) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  (void)tl.schedule_program({0, 0, 0, 0, 0, 0}, 0);
  EXPECT_EQ(tl.channel_free_at(0), 10u);
  EXPECT_EQ(tl.chip_free_at(0), 1010u);
}

TEST(Timeline, ReadHoldsChipThroughTransfer) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  (void)tl.schedule_read({0, 0, 0, 0, 0, 0}, 0);
  EXPECT_EQ(tl.chip_free_at(0), 110u);
  EXPECT_EQ(tl.channel_free_at(0), 110u);
}

TEST(Timeline, CompletionNeverBeforeReady) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  EXPECT_GE(tl.schedule_read({0, 0, 0, 0, 0, 0}, 1'000'000), 1'000'000u);
}

TEST(Timeline, ChipBacklog) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  (void)tl.schedule_program({0, 0, 0, 0, 0, 0}, 0);
  EXPECT_EQ(tl.chip_backlog(0, 0), 1010u);
  EXPECT_EQ(tl.chip_backlog(0, 2000), 0u);
}

TEST(Timeline, ResetClearsBacklog) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  (void)tl.schedule_program({0, 0, 0, 0, 0, 0}, 0);
  tl.reset();
  EXPECT_EQ(tl.chip_free_at(0), 0u);
  EXPECT_EQ(tl.channel_free_at(0), 0u);
}

}  // namespace
}  // namespace af::ssd

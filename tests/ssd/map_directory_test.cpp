#include "ssd/map_directory.h"

#include <gtest/gtest.h>

#include <vector>

namespace af::ssd {
namespace {

/// Records flash traffic instead of performing it.
class FakeMapIo : public MapIo {
 public:
  SimTime map_flash_read(Ppn ppn, SimTime ready) override {
    reads.push_back(ppn);
    return ready + 100;
  }
  std::pair<Ppn, SimTime> map_flash_program(std::uint64_t map_page,
                                            SimTime ready) override {
    programs.push_back(map_page);
    return {Ppn{next_ppn++}, ready + 1000};
  }
  void map_flash_invalidate(Ppn ppn) override { invalidations.push_back(ppn); }
  void map_dram_access(std::uint64_t n) override { dram += n; }

  std::vector<Ppn> reads;
  std::vector<std::uint64_t> programs;
  std::vector<Ppn> invalidations;
  std::uint64_t dram = 0;
  std::uint64_t next_ppn = 1000;
};

TEST(MapDirectory, ColdMissCostsNoFlash) {
  FakeMapIo io;
  MapDirectory dir(io, 16, 4);
  const SimTime t = dir.touch(3, /*dirty=*/false, 10);
  EXPECT_EQ(t, 10u);  // never written back: materialises for free
  EXPECT_TRUE(io.reads.empty());
  EXPECT_EQ(dir.misses(), 1u);
  EXPECT_EQ(io.dram, 1u);
}

TEST(MapDirectory, HitIsDramOnly) {
  FakeMapIo io;
  MapDirectory dir(io, 16, 4);
  (void)dir.touch(3, false, 0);
  const SimTime t = dir.touch(3, false, 5);
  EXPECT_EQ(t, 5u);
  EXPECT_EQ(dir.hits(), 1u);
  EXPECT_EQ(io.dram, 2u);
}

TEST(MapDirectory, DirtyEvictionWritesBack) {
  FakeMapIo io;
  MapDirectory dir(io, 16, 2);
  (void)dir.touch(0, /*dirty=*/true, 0);
  (void)dir.touch(1, false, 0);
  (void)dir.touch(2, false, 0);  // evicts page 0 (dirty) → program
  ASSERT_EQ(io.programs.size(), 1u);
  EXPECT_EQ(io.programs[0], 0u);
  EXPECT_EQ(dir.evictions(), 1u);
  EXPECT_EQ(dir.flash_location(0), Ppn{1000});
}

TEST(MapDirectory, CleanEvictionIsFree) {
  FakeMapIo io;
  MapDirectory dir(io, 16, 2);
  (void)dir.touch(0, false, 0);
  (void)dir.touch(1, false, 0);
  (void)dir.touch(2, false, 0);  // evicts clean page 0 silently
  EXPECT_TRUE(io.programs.empty());
  EXPECT_EQ(dir.evictions(), 0u);
}

TEST(MapDirectory, ReloadAfterEvictionReadsFlash) {
  FakeMapIo io;
  MapDirectory dir(io, 16, 2);
  (void)dir.touch(0, true, 0);
  (void)dir.touch(1, false, 0);
  (void)dir.touch(2, false, 0);           // page 0 written to Ppn{1000}
  const SimTime t = dir.touch(0, false, 50);  // reload
  ASSERT_EQ(io.reads.size(), 1u);
  EXPECT_EQ(io.reads[0], Ppn{1000});
  EXPECT_EQ(t, 150u);  // read latency charged
}

TEST(MapDirectory, RewriteInvalidatesOldCopy) {
  FakeMapIo io;
  MapDirectory dir(io, 16, 1);
  (void)dir.touch(0, true, 0);
  (void)dir.touch(1, false, 0);  // evict+program 0 → Ppn{1000}
  (void)dir.touch(0, true, 0);   // reload 0, dirty again (evicts 1, clean)
  (void)dir.touch(1, false, 0);  // evict 0 again → invalidate Ppn{1000}, program
  ASSERT_EQ(io.invalidations.size(), 1u);
  EXPECT_EQ(io.invalidations[0], Ppn{1000});
  EXPECT_EQ(io.programs.size(), 2u);
}

TEST(MapDirectory, LruOrder) {
  FakeMapIo io;
  MapDirectory dir(io, 16, 2);
  (void)dir.touch(0, true, 0);
  (void)dir.touch(1, true, 0);
  (void)dir.touch(0, false, 0);  // refresh 0: now 1 is LRU
  (void)dir.touch(2, false, 0);  // evicts 1
  ASSERT_EQ(io.programs.size(), 1u);
  EXPECT_EQ(io.programs[0], 1u);
}

TEST(MapDirectory, DirtyBitSticksAcrossTouches) {
  FakeMapIo io;
  MapDirectory dir(io, 16, 2);
  (void)dir.touch(0, true, 0);
  (void)dir.touch(0, false, 0);  // does not clear dirtiness
  (void)dir.touch(1, false, 0);
  (void)dir.touch(2, false, 0);  // evicting 0 must write it back
  EXPECT_EQ(io.programs.size(), 1u);
}

TEST(MapDirectory, TouchedPagesCountsDistinct) {
  FakeMapIo io;
  MapDirectory dir(io, 16, 4);
  (void)dir.touch(1, false, 0);
  (void)dir.touch(1, false, 0);
  (void)dir.touch(5, false, 0);
  EXPECT_EQ(dir.touched_pages(), 2u);
}

TEST(MapDirectory, RelocationUpdatesGtd) {
  FakeMapIo io;
  MapDirectory dir(io, 16, 1);
  (void)dir.touch(0, true, 0);
  (void)dir.touch(1, false, 0);  // flush 0 → Ppn{1000}
  dir.on_relocated(0, Ppn{77});
  EXPECT_EQ(dir.flash_location(0), Ppn{77});
  (void)dir.touch(0, false, 0);  // reload must read the new location
  EXPECT_EQ(io.reads.back(), Ppn{77});
}

TEST(MapDirectoryDeathTest, OutOfRangeAborts) {
  FakeMapIo io;
  MapDirectory dir(io, 4, 2);
  EXPECT_DEATH((void)dir.touch(4, false, 0), "out of range");
}

}  // namespace
}  // namespace af::ssd

// Incremental GC victim accounting: the engine's cached per-block weights
// and the per-plane victim index must track the brute-force recompute (via
// the scheme's VictimWeight oracle) through arbitrary GC churn, and the
// indexed pick must reproduce the legacy full scan bit-for-bit.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "ftl/across_ftl.h"
#include "ftl/scheme.h"
#include "sim/ssd.h"
#include "ssd/engine.h"
#include "../helpers.h"

namespace af::ssd {
namespace {

/// Mixed-shape churn heavy enough that every plane runs GC repeatedly.
void churn(sim::Ssd& ssd, int requests, std::uint64_t seed) {
  test::WorkloadGen gen(ssd.config().logical_sectors() * 3 / 5,
                        ssd.config().geometry.sectors_per_page(), seed);
  for (int i = 0; i < requests; ++i) test::submit_ok(ssd, gen.next());
}

/// After churn: cached weights equal brute force everywhere, and the indexed
/// victim choice equals the reference scan in every plane.
void expect_accounting_holds(sim::Ssd& ssd) {
  ASSERT_GT(ssd.engine().gc_runs(), 0u) << "workload did not exercise GC";
  ssd.engine().verify_victim_accounting();
  for (std::uint64_t plane = 0;
       plane < ssd.config().geometry.total_planes(); ++plane) {
    EXPECT_EQ(ssd.engine().pick_victim(plane),
              ssd.engine().pick_victim_scan(plane))
        << "plane " << plane;
  }
}

TEST(VictimIndex, MatchesBruteForcePageFtl) {
  sim::Ssd ssd(test::tiny_config(), ftl::SchemeKind::kPageFtl);
  churn(ssd, 4000, 101);
  expect_accounting_holds(ssd);
  test::verify_full_space(ssd);
}

TEST(VictimIndex, MatchesBruteForceMrsm) {
  // MRSM pushes sub-page slot weights (packed pages, converted regions);
  // its oracle is the strictest cross-check of note_page_weight plumbing.
  sim::Ssd ssd(test::tiny_config(), ftl::SchemeKind::kMrsm);
  churn(ssd, 4000, 103);
  expect_accounting_holds(ssd);
  test::verify_full_space(ssd);
}

TEST(VictimIndex, MatchesBruteForceAcrossFtl) {
  sim::Ssd ssd(test::tiny_config(), ftl::SchemeKind::kAcrossFtl);
  churn(ssd, 4000, 107);
  expect_accounting_holds(ssd);
  test::verify_full_space(ssd);
}

TEST(VictimIndex, MatchesBruteForceAcrossFtlAreaWeights) {
  // Opt-in area-aware weighting: Across-FTL installs an oracle and pushes
  // range-based weights for area pages as they shrink, merge and relocate.
  auto config = test::tiny_config();
  config.across.area_live_weight = true;
  sim::Ssd ssd(config, ftl::SchemeKind::kAcrossFtl);
  churn(ssd, 4000, 109);
  expect_accounting_holds(ssd);
  test::verify_full_space(ssd);
}

TEST(VictimIndex, SurvivesFaultChurn) {
  // Program faults abandon active blocks and erase faults retire victims —
  // both must keep the weight caches and the index consistent.
  auto config = test::tiny_config();
  config.faults.seed = 77;
  config.faults.program_fail = 2e-3;
  config.faults.erase_fail = 2e-3;
  sim::Ssd ssd(config, ftl::SchemeKind::kPageFtl);
  churn(ssd, 4000, 113);
  expect_accounting_holds(ssd);
  test::verify_full_space(ssd);
}

TEST(VictimIndex, RepeatedPicksAreStableAndCheap) {
  // Until block state changes, pick_victim must keep answering the same
  // block without discarding index entries.
  sim::Ssd ssd(test::tiny_config(), ftl::SchemeKind::kPageFtl);
  churn(ssd, 3000, 127);
  auto& engine = ssd.engine();
  const std::uint32_t first = engine.pick_victim(0);
  const auto pops_before = engine.gc_perf().heap_pops;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(engine.pick_victim(0), first);
  EXPECT_EQ(engine.gc_perf().heap_pops, pops_before)
      << "repeated picks of unchanged state must not pop the heap";
}

TEST(VictimIndex, GcPerfCountersAdvance) {
  sim::Ssd ssd(test::tiny_config(), ftl::SchemeKind::kPageFtl);
  churn(ssd, 3000, 131);
  const auto& perf = ssd.engine().gc_perf();
  EXPECT_GT(perf.victim_picks, 0u);
  EXPECT_GT(perf.heap_pushes, 0u);
}

}  // namespace
}  // namespace af::ssd

// Unit tests for the sharded per-LPN-range lock table (DESIGN.md §10):
// shared/exclusive FIFO semantics per region, multi-region spans, barrier
// tickets, release mechanics and stats. Everything here is single-threaded —
// the table's job is eligibility bookkeeping, not blocking — and the
// pipeline tests cover the concurrent use.
#include "ssd/range_lock.h"

#include <gtest/gtest.h>

#include "common/interval.h"

namespace af::ssd {
namespace {

constexpr std::uint64_t kRegion = 16;  // sectors per region, one tiny page

SectorRange page(std::uint64_t index, std::uint64_t sectors = kRegion) {
  return SectorRange::of(index * kRegion, sectors);
}

TEST(RangeLock, SharedTicketsOnOneRegionAreAllEligible) {
  RangeLockTable table(kRegion);
  const auto a = table.acquire(0, page(3), /*exclusive=*/false);
  const auto b = table.acquire(1, page(3), /*exclusive=*/false);
  const auto c = table.acquire(2, page(3), /*exclusive=*/false);
  EXPECT_TRUE(table.eligible(a));
  EXPECT_TRUE(table.eligible(b));
  EXPECT_TRUE(table.eligible(c));
  table.release(b);  // out-of-order release is fine for shared tickets
  EXPECT_TRUE(table.eligible(a));
  EXPECT_TRUE(table.eligible(c));
  table.release(a);
  table.release(c);
}

TEST(RangeLock, ExclusiveWaitsForEveryOlderTicket) {
  RangeLockTable table(kRegion);
  const auto reader = table.acquire(0, page(1), /*exclusive=*/false);
  const auto writer = table.acquire(1, page(1), /*exclusive=*/true);
  EXPECT_TRUE(table.eligible(reader));
  EXPECT_FALSE(table.eligible(writer));
  table.release(reader);
  EXPECT_TRUE(table.eligible(writer));
  table.release(writer);
}

TEST(RangeLock, SharedWaitsForOlderExclusiveOnly) {
  RangeLockTable table(kRegion);
  const auto writer = table.acquire(0, page(1), /*exclusive=*/true);
  const auto reader = table.acquire(1, page(1), /*exclusive=*/false);
  const auto later_writer = table.acquire(2, page(1), /*exclusive=*/true);
  EXPECT_TRUE(table.eligible(writer));
  EXPECT_FALSE(table.eligible(reader));        // behind the exclusive
  EXPECT_FALSE(table.eligible(later_writer));  // behind both
  table.release(writer);
  EXPECT_TRUE(table.eligible(reader));
  EXPECT_FALSE(table.eligible(later_writer));  // still behind the reader
  table.release(reader);
  EXPECT_TRUE(table.eligible(later_writer));
  table.release(later_writer);
}

TEST(RangeLock, DisjointRegionsNeverConflict) {
  RangeLockTable table(kRegion);
  const auto a = table.acquire(0, page(0), /*exclusive=*/true);
  const auto b = table.acquire(1, page(7), /*exclusive=*/true);
  // Regions 7 and 7+16 share a shard (16 shards by default): the FIFO keys
  // by region, not shard, so a shard collision is still no conflict.
  const auto c = table.acquire(2, page(7 + 16), /*exclusive=*/true);
  EXPECT_TRUE(table.eligible(a));
  EXPECT_TRUE(table.eligible(b));
  EXPECT_TRUE(table.eligible(c));
  table.release(a);
  table.release(b);
  table.release(c);
}

TEST(RangeLock, SpanTicketCoversEveryTouchedRegion) {
  RangeLockTable table(kRegion);
  // Across-page shape: starts mid-region 1, ends mid-region 3.
  const auto span =
      table.acquire(0, SectorRange::of(kRegion + 8, 2 * kRegion),
                    /*exclusive=*/true);
  EXPECT_EQ(span.regions.size(), 3u);  // regions 1, 2, 3
  const auto r0 = table.acquire(1, page(0), /*exclusive=*/false);
  const auto r3 = table.acquire(2, page(3), /*exclusive=*/false);
  EXPECT_TRUE(table.eligible(r0));   // untouched region
  EXPECT_FALSE(table.eligible(r3));  // overlaps the span's last region
  table.release(span);
  EXPECT_TRUE(table.eligible(r3));
  table.release(r0);
  table.release(r3);
}

TEST(RangeLock, BarrierWaitsForEverythingAndBlocksEverything) {
  RangeLockTable table(kRegion);
  const auto older = table.acquire(0, page(2), /*exclusive=*/false);
  const auto barrier = table.acquire_barrier(1);
  const auto younger = table.acquire(2, page(9), /*exclusive=*/false);
  EXPECT_TRUE(barrier.barrier);
  EXPECT_TRUE(barrier.valid());
  EXPECT_FALSE(table.eligible(barrier));  // older ticket outstanding
  EXPECT_FALSE(table.eligible(younger));  // younger than the barrier,
                                          // despite touching no common region
  table.release(older);
  EXPECT_TRUE(table.eligible(barrier));
  EXPECT_FALSE(table.eligible(younger));
  table.release(barrier);
  EXPECT_TRUE(table.eligible(younger));
  table.release(younger);
}

TEST(RangeLock, BackToBackBarriersStayOrdered) {
  RangeLockTable table(kRegion);
  const auto first = table.acquire_barrier(0);
  const auto second = table.acquire_barrier(1);
  EXPECT_TRUE(table.eligible(first));
  EXPECT_FALSE(table.eligible(second));
  table.release(first);
  EXPECT_TRUE(table.eligible(second));
  table.release(second);
}

TEST(RangeLock, ReleaseMakesRegionsReusable) {
  RangeLockTable table(kRegion);
  for (std::uint64_t round = 0; round < 3; ++round) {
    const auto t =
        table.acquire(round, page(5), /*exclusive=*/true);
    EXPECT_TRUE(table.eligible(t));
    table.release(t);
  }
  const auto stats = table.stats();
  EXPECT_EQ(stats.acquisitions, 3u);
  EXPECT_EQ(stats.region_entries, 3u);
  EXPECT_EQ(stats.barrier_acquisitions, 0u);
}

TEST(RangeLock, StatsCountRegionsAndBarriers) {
  RangeLockTable table(kRegion);
  const auto span = table.acquire(0, SectorRange::of(0, 2 * kRegion),
                                  /*exclusive=*/true);
  const auto barrier = table.acquire_barrier(1);
  const auto stats = table.stats();
  EXPECT_EQ(stats.acquisitions, 2u);
  EXPECT_EQ(stats.barrier_acquisitions, 1u);
  EXPECT_EQ(stats.region_entries, 2u);  // the span's regions; barriers add 0
  table.release(span);
  table.release(barrier);
}

}  // namespace
}  // namespace af::ssd

#include "ssd/stats.h"

#include <gtest/gtest.h>

namespace af::ssd {
namespace {

TEST(DeviceStats, FlashOpTotals) {
  DeviceStats stats;
  stats.count_flash_op(OpKind::kDataRead);
  stats.count_flash_op(OpKind::kMapRead);
  stats.count_flash_op(OpKind::kGcRead);
  stats.count_flash_op(OpKind::kDataWrite);
  stats.count_flash_op(OpKind::kDataWrite);
  stats.count_flash_op(OpKind::kMapWrite);
  EXPECT_EQ(stats.flash_reads(), 3u);
  EXPECT_EQ(stats.flash_writes(), 3u);
  EXPECT_EQ(stats.flash_ops(OpKind::kDataWrite), 2u);
}

TEST(DeviceStats, RequestClassHelpers) {
  EXPECT_TRUE(is_write(ReqClass::kNormalWrite));
  EXPECT_TRUE(is_write(ReqClass::kAcrossWrite));
  EXPECT_FALSE(is_write(ReqClass::kAcrossRead));
  EXPECT_TRUE(is_across(ReqClass::kAcrossRead));
  EXPECT_FALSE(is_across(ReqClass::kNormalRead));
}

TEST(DeviceStats, PerClassRecording) {
  DeviceStats stats;
  stats.record_request(ReqClass::kAcrossWrite, 2000, 10);
  stats.record_request(ReqClass::kNormalWrite, 1000, 16);
  stats.record_request(ReqClass::kNormalRead, 500, 8);

  EXPECT_EQ(stats.requests(ReqClass::kAcrossWrite).latency().count(), 1u);
  EXPECT_EQ(stats.all_writes().latency().count(), 2u);
  EXPECT_EQ(stats.all_reads().latency().count(), 1u);
  EXPECT_DOUBLE_EQ(stats.total_io_time_ns(), 3500.0);
}

TEST(DeviceStats, ClassFlushes) {
  DeviceStats stats;
  stats.count_class_flush(ReqClass::kAcrossWrite);
  stats.count_class_flush(ReqClass::kAcrossWrite);
  stats.count_class_flush(ReqClass::kNormalWrite);
  EXPECT_EQ(stats.class_flushes(ReqClass::kAcrossWrite), 2u);
  EXPECT_EQ(stats.class_flushes(ReqClass::kNormalWrite), 1u);
}

TEST(DeviceStats, MapBytesTracksPeak) {
  DeviceStats stats;
  stats.note_map_bytes(100);
  stats.note_map_bytes(50);
  EXPECT_EQ(stats.peak_map_bytes(), 100u);
  stats.note_map_bytes(200);
  EXPECT_EQ(stats.peak_map_bytes(), 200u);
}

TEST(DeviceStats, ResetClearsEverything) {
  DeviceStats stats;
  stats.count_flash_op(OpKind::kDataWrite);
  stats.count_erase();
  stats.count_dram_access(5);
  stats.count_rmw_read();
  stats.across().direct_writes = 3;
  stats.record_request(ReqClass::kNormalRead, 100, 1);
  stats.reset();
  EXPECT_EQ(stats.flash_writes(), 0u);
  EXPECT_EQ(stats.erases(), 0u);
  EXPECT_EQ(stats.dram_accesses(), 0u);
  EXPECT_EQ(stats.rmw_reads(), 0u);
  EXPECT_EQ(stats.across().direct_writes, 0u);
  EXPECT_EQ(stats.all_reads().latency().count(), 0u);
}

TEST(DeviceStats, AcrossTotals) {
  AcrossStats across;
  across.direct_writes = 5;
  across.profitable_amerge = 3;
  across.unprofitable_amerge = 2;
  EXPECT_EQ(across.total_across_writes(), 10u);
}

TEST(DeviceStats, ToStringCoverage) {
  EXPECT_STREQ(to_string(OpKind::kMapWrite), "map-write");
  EXPECT_STREQ(to_string(OpKind::kGcRead), "gc-read");
  EXPECT_STREQ(to_string(ReqClass::kAcrossWrite), "across-write");
}

}  // namespace
}  // namespace af::ssd

// Data-integrity subsystem units (DESIGN.md §8): the StripeTracker's RAM
// directory, the engine's ECC read-retry ladder, parity-rebuild of
// uncorrectable pages, the mount-time stripe rebuild from OOB stamps, and
// the scrub scheduler's budgeted sweep.
#include "ssd/integrity.h"

#include <gtest/gtest.h>

#include <vector>

#include "nand/flash_array.h"
#include "ssd/engine.h"

namespace af::ssd {
namespace {

SsdConfig base_config() {
  SsdConfig config = SsdConfig::tiny();
  config.track_payload = true;
  return config;
}

/// Trivial relocator: copy the page, keep the oracle stamps, observe moves.
struct SimpleRelocator {
  explicit SimpleRelocator(Engine& engine) : engine_(engine) {
    engine.set_relocator([this](Ppn victim, const nand::PageOwner& owner,
                                SimTime& clock) {
      clock = engine_.flash_read(victim, OpKind::kGcRead, clock).done;
      auto moved = engine_.gc_program(engine_.geometry().plane_of(victim),
                                      owner, clock);
      clock = moved.done;
      engine_.copy_stamps(victim, moved.ppn);
      engine_.invalidate(victim);
      moves.push_back({victim, moved.ppn});
    });
  }
  Engine& engine_;
  std::vector<std::pair<Ppn, Ppn>> moves;
};

// --- StripeTracker -----------------------------------------------------------

TEST(StripeTracker, BuildSealLookup) {
  StripeTracker tracker(4);
  EXPECT_EQ(tracker.open_id(), 1u);
  tracker.note_member(Ppn{10});
  tracker.note_member(Ppn{11});
  EXPECT_FALSE(tracker.open_full());
  tracker.note_member(Ppn{12});
  ASSERT_TRUE(tracker.open_full());

  auto open = tracker.take_open();
  EXPECT_EQ(open.id, 1u);
  EXPECT_EQ(open.members.size(), 3u);
  EXPECT_EQ(tracker.open_id(), 2u);  // next stripe is already open

  tracker.seal(open.id, std::move(open.members), Ppn{20});
  EXPECT_EQ(tracker.sealed_stripes(), 1u);
  const auto* stripe = tracker.stripe_of(Ppn{11});
  ASSERT_NE(stripe, nullptr);
  EXPECT_EQ(stripe->parity.get(), 20u);
  EXPECT_EQ(tracker.stripe_of(Ppn{20}), nullptr);  // parity is not a member
  ASSERT_NE(tracker.stripe_by_parity(Ppn{20}), nullptr);
  EXPECT_EQ(tracker.stripe_by_parity(Ppn{20})->members.size(), 3u);
  EXPECT_EQ(tracker.stripe_of(Ppn{13}), nullptr);
}

TEST(StripeTracker, ParityMoveKeepsDirectoryCurrent) {
  StripeTracker tracker(3);
  tracker.note_member(Ppn{1});
  tracker.note_member(Ppn{2});
  auto open = tracker.take_open();
  tracker.seal(open.id, std::move(open.members), Ppn{9});

  tracker.on_parity_moved(Ppn{9}, Ppn{30});
  EXPECT_EQ(tracker.stripe_by_parity(Ppn{9}), nullptr);
  ASSERT_NE(tracker.stripe_by_parity(Ppn{30}), nullptr);
  EXPECT_EQ(tracker.stripe_of(Ppn{1})->parity.get(), 30u);
}

TEST(StripeTracker, DestroyedMemberBreaksStripeAndOrphansParity) {
  StripeTracker tracker(3);
  tracker.note_member(Ppn{10});
  tracker.note_member(Ppn{11});
  auto open = tracker.take_open();
  tracker.seal(open.id, std::move(open.members), Ppn{40});

  std::vector<Ppn> orphaned;
  const auto broken = tracker.on_block_destroyed(
      8, 8, [&](Ppn parity) { orphaned.push_back(parity); });
  EXPECT_EQ(broken, 1u);
  EXPECT_EQ(tracker.sealed_stripes(), 0u);
  ASSERT_EQ(orphaned.size(), 1u);  // parity survives outside [8, 16)
  EXPECT_EQ(orphaned[0].get(), 40u);
  EXPECT_EQ(tracker.stripe_of(Ppn{10}), nullptr);
}

TEST(StripeTracker, DestroyedParityBreaksStripeWithoutOrphanCallback) {
  StripeTracker tracker(3);
  tracker.note_member(Ppn{10});
  tracker.note_member(Ppn{11});
  auto open = tracker.take_open();
  tracker.seal(open.id, std::move(open.members), Ppn{40});

  std::vector<Ppn> orphaned;
  const auto broken = tracker.on_block_destroyed(
      40, 8, [&](Ppn parity) { orphaned.push_back(parity); });
  EXPECT_EQ(broken, 1u);
  EXPECT_TRUE(orphaned.empty());  // the parity page itself went down
  EXPECT_EQ(tracker.sealed_stripes(), 0u);
}

TEST(StripeTracker, OpenMembersDropSilently) {
  StripeTracker tracker(4);
  tracker.note_member(Ppn{10});
  tracker.note_member(Ppn{11});
  std::vector<Ppn> orphaned;
  const auto broken = tracker.on_block_destroyed(
      8, 8, [&](Ppn parity) { orphaned.push_back(parity); });
  EXPECT_EQ(broken, 0u);  // open members were never protected
  EXPECT_TRUE(orphaned.empty());
  // The open stripe lost both members: it needs three fresh ones again.
  tracker.note_member(Ppn{20});
  tracker.note_member(Ppn{21});
  EXPECT_FALSE(tracker.open_full());
  tracker.note_member(Ppn{22});
  EXPECT_TRUE(tracker.open_full());
}

TEST(StripeTracker, DropUnknownIdIsNoop) {
  StripeTracker tracker(2);
  tracker.drop(99);
  EXPECT_EQ(tracker.sealed_stripes(), 0u);
}

// --- Engine: stripe building and the ECC ladder ------------------------------

TEST(Integrity, EveryWidthMinusOneProgramsSealAStripe) {
  auto config = base_config();
  config.integrity.parity_stripe_width = 4;
  Engine engine(config);
  std::vector<Ppn> members;
  for (std::uint64_t i = 0; i < 3; ++i) {
    members.push_back(engine
                          .flash_program(Stream::kData,
                                         nand::PageOwner::data(Lpn{i}),
                                         OpKind::kDataWrite, 0)
                          .ppn);
  }
  ASSERT_NE(engine.stripes(), nullptr);
  EXPECT_EQ(engine.stripes()->sealed_stripes(), 1u);
  EXPECT_EQ(engine.stats().faults().parity_writes, 1u);
  EXPECT_EQ(engine.stats().flash_ops(OpKind::kParityWrite), 1u);

  const auto* stripe = engine.stripes()->stripe_of(members[0]);
  ASSERT_NE(stripe, nullptr);
  EXPECT_EQ(stripe->members.size(), 3u);
  // The parity page is a real programmed page with a kParity owner and the
  // stripe id stamped durably into its OOB.
  const auto& array = engine.array();
  EXPECT_EQ(array.owner(stripe->parity).kind,
            nand::PageOwner::Kind::kParity);
  EXPECT_EQ(array.oob(stripe->parity).stripe, 1u);
  EXPECT_EQ(array.oob(members[1]).stripe, 1u);
  // Parity lives in its own write stream: never in a member's block.
  for (const Ppn m : stripe->members) {
    EXPECT_NE(engine.geometry().block_of(m),
              engine.geometry().block_of(stripe->parity));
  }
}

TEST(Integrity, EccLadderRescuesWithinRetryBudget) {
  auto config = base_config();
  config.faults.ber_base = 1e9;  // saturates every first sensing at the cap
  config.integrity.read_retry_steps = 2;
  config.integrity.read_retry_ber_scale = 0.0;  // first re-sense is clean
  Engine engine(config);
  const auto programmed = engine.flash_program(
      Stream::kData, nand::PageOwner::data(Lpn{0}), OpKind::kDataWrite, 0);

  const ReadResult read =
      engine.flash_read(programmed.ppn, OpKind::kDataRead, programmed.done);
  EXPECT_EQ(read.status, ReadStatus::kEccRetried);
  EXPECT_FALSE(read.data_lost());
  const auto& faults = engine.stats().faults();
  EXPECT_EQ(faults.ecc_retry_steps, 1u);
  EXPECT_EQ(faults.ecc_retry_recoveries, 1u);
  EXPECT_EQ(faults.uncorrectable_reads, 0u);
  EXPECT_GT(faults.raw_bit_errors, 0u);
  EXPECT_FALSE(engine.read_only());
}

TEST(Integrity, UncorrectableWithoutParityLosesPageAndDegrades) {
  auto config = base_config();
  config.faults.ber_base = 1e9;
  config.integrity.read_retry_steps = 2;
  config.integrity.read_retry_ber_scale = 1.0;  // retries never help
  Engine engine(config);
  const auto programmed = engine.flash_program(
      Stream::kData, nand::PageOwner::data(Lpn{0}), OpKind::kDataWrite, 0);

  const ReadResult read =
      engine.flash_read(programmed.ppn, OpKind::kDataRead, programmed.done);
  EXPECT_EQ(read.status, ReadStatus::kLost);
  EXPECT_TRUE(read.data_lost());
  const auto& faults = engine.stats().faults();
  EXPECT_EQ(faults.ecc_retry_steps, 2u);  // the whole ladder was walked
  EXPECT_EQ(faults.ecc_retry_recoveries, 0u);
  EXPECT_EQ(faults.uncorrectable_reads, 1u);
  EXPECT_EQ(faults.lost_pages, 1u);
  EXPECT_TRUE(engine.read_only());
  EXPECT_EQ(faults.read_only_entries, 1u);
}

TEST(Integrity, ParityRebuildsUncorrectableMemberAndParity) {
  auto config = base_config();
  config.faults.ber_base = 1e9;
  config.integrity.read_retry_steps = 1;
  config.integrity.read_retry_ber_scale = 1.0;
  config.integrity.parity_stripe_width = 4;
  Engine engine(config);
  std::vector<Ppn> members;
  for (std::uint64_t i = 0; i < 3; ++i) {
    members.push_back(engine
                          .flash_program(Stream::kData,
                                         nand::PageOwner::data(Lpn{i}),
                                         OpKind::kDataWrite, 0)
                          .ppn);
  }
  ASSERT_EQ(engine.stripes()->sealed_stripes(), 1u);

  // A member rebuilds from its 2 surviving peers + the parity page.
  const ReadResult member_read =
      engine.flash_read(members[0], OpKind::kDataRead, 0);
  EXPECT_EQ(member_read.status, ReadStatus::kRebuilt);
  EXPECT_FALSE(member_read.data_lost());
  const auto& faults = engine.stats().faults();
  EXPECT_EQ(faults.parity_rebuilds, 1u);
  EXPECT_EQ(faults.parity_rebuild_reads, 3u);
  EXPECT_EQ(engine.stats().flash_ops(OpKind::kRebuildRead), 3u);
  EXPECT_FALSE(engine.read_only());
  EXPECT_EQ(faults.lost_pages, 0u);

  // The parity page itself rebuilds from all 3 members.
  const Ppn parity = engine.stripes()->stripe_of(members[0])->parity;
  const ReadResult parity_read =
      engine.flash_read(parity, OpKind::kDataRead, 0);
  EXPECT_EQ(parity_read.status, ReadStatus::kRebuilt);
  EXPECT_EQ(faults.parity_rebuilds, 2u);
  EXPECT_EQ(faults.parity_rebuild_reads, 6u);
  EXPECT_FALSE(engine.read_only());
}

TEST(Integrity, GcErasesBreakStripes) {
  auto config = base_config();
  config.integrity.parity_stripe_width = 2;  // every program seals a stripe
  Engine engine(config);
  SimpleRelocator relocator(engine);
  Ppn prev{};
  const std::uint64_t total = engine.geometry().total_pages() * 2;
  for (std::uint64_t i = 0; i < total; ++i) {
    auto programmed = engine.flash_program(
        Stream::kData, nand::PageOwner::data(Lpn{i % 32}), OpKind::kDataWrite,
        0);
    if (prev.valid()) engine.invalidate(prev);
    prev = programmed.ppn;
  }
  EXPECT_GT(engine.gc_runs(), 0u);
  EXPECT_GT(engine.stats().faults().stripes_broken, 0u);
  EXPECT_GT(engine.stats().faults().parity_writes, 0u);
  EXPECT_FALSE(engine.read_only());
}

TEST(Integrity, StripeDirectoryRebuildsFromOob) {
  auto config = base_config();
  config.integrity.parity_stripe_width = 4;
  Engine first(config);
  for (std::uint64_t i = 0; i < 7; ++i) {
    (void)first.flash_program(Stream::kData, nand::PageOwner::data(Lpn{i}),
                              OpKind::kDataWrite, 0);
  }
  // 6 members sealed two stripes; the 7th sits in the open stripe, which
  // dies with RAM and must not resurrect.
  ASSERT_EQ(first.stripes()->sealed_stripes(), 2u);
  const std::uint64_t pre_open_id = first.stripes()->open_id();

  Engine second(config, first.release_array());
  EXPECT_EQ(second.rebuild_parity_state(), 2u);
  EXPECT_EQ(second.stripes()->sealed_stripes(), 2u);
  // Ids resume above every durably stamped one.
  EXPECT_GE(second.stripes()->open_id(), pre_open_id);
}

TEST(Integrity, ZeroRatesLeaveIntegrityCountersUntouched) {
  // Integrity knobs without a BER model are inert: reads return kOk and no
  // §8 counter moves (the bit-identical-baseline contract).
  auto config = base_config();
  config.integrity.read_retry_steps = 7;
  config.integrity.scrub_ber_watermark = 0.1;
  Engine engine(config);
  const auto programmed = engine.flash_program(
      Stream::kData, nand::PageOwner::data(Lpn{0}), OpKind::kDataWrite, 0);
  const ReadResult read =
      engine.flash_read(programmed.ppn, OpKind::kDataRead, programmed.done);
  EXPECT_EQ(read.status, ReadStatus::kOk);
  const auto& faults = engine.stats().faults();
  EXPECT_EQ(faults.read_disturb_reads, 0u);
  EXPECT_EQ(faults.raw_bit_errors, 0u);
  EXPECT_EQ(faults.ecc_retry_steps, 0u);
  EXPECT_EQ(faults.uncorrectable_reads, 0u);
  EXPECT_EQ(faults.parity_writes, 0u);
  EXPECT_EQ(faults.lost_pages, 0u);
}

// --- ScrubScheduler ----------------------------------------------------------

TEST(Scrub, TickSweepsBudgetAndRefreshesPastWatermark) {
  auto config = base_config();
  config.faults.ber_base = 2.0;  // every page sits above the watermark
  config.integrity.ecc_correctable_bits = 64;  // relocation reads never fail
  config.integrity.scrub_interval_requests = 2;
  config.integrity.scrub_pages_per_tick = 4;
  config.integrity.scrub_ber_watermark = 1.0;
  Engine engine(config);
  SimpleRelocator relocator(engine);
  for (std::uint64_t i = 0; i < 4; ++i) {
    (void)engine.flash_program(Stream::kData, nand::PageOwner::data(Lpn{i}),
                               OpKind::kDataWrite, 0);
  }

  ScrubScheduler scrubber(engine, config.integrity);
  scrubber.note_request(0);  // 1 of 2: below the interval, no tick
  EXPECT_EQ(engine.stats().faults().scrub_ticks, 0u);
  scrubber.note_request(0);
  const auto& faults = engine.stats().faults();
  EXPECT_EQ(faults.scrub_ticks, 1u);
  EXPECT_EQ(faults.scrub_scans, 4u);  // exactly the per-tick budget
  EXPECT_EQ(faults.scrub_relocations, 4u);
  EXPECT_EQ(engine.stats().flash_ops(OpKind::kScrubRead), 4u);
  EXPECT_EQ(relocator.moves.size(), 4u);
  // Refresh went through the normal GC program path.
  EXPECT_GT(engine.stats().flash_ops(OpKind::kGcWrite), 0u);
}

TEST(Scrub, HealthyPagesAreScannedNotMoved) {
  auto config = base_config();
  config.faults.ber_base = 0.5;
  config.integrity.scrub_interval_requests = 1;
  config.integrity.scrub_pages_per_tick = 8;
  config.integrity.scrub_ber_watermark = 1e9;  // nothing ever crosses it
  Engine engine(config);
  SimpleRelocator relocator(engine);
  for (std::uint64_t i = 0; i < 8; ++i) {
    (void)engine.flash_program(Stream::kData, nand::PageOwner::data(Lpn{i}),
                               OpKind::kDataWrite, 0);
  }
  ScrubScheduler scrubber(engine, config.integrity);
  scrubber.note_request(0);
  EXPECT_EQ(engine.stats().faults().scrub_scans, 8u);
  EXPECT_EQ(engine.stats().faults().scrub_relocations, 0u);
  EXPECT_TRUE(relocator.moves.empty());
  // The sweep is draw-free: scanning consumed no fault-model randomness, so
  // a second identical engine agrees on every counter after the same tick.
  Engine twin(config);
  SimpleRelocator twin_relocator(twin);
  for (std::uint64_t i = 0; i < 8; ++i) {
    (void)twin.flash_program(Stream::kData, nand::PageOwner::data(Lpn{i}),
                             OpKind::kDataWrite, 0);
  }
  ScrubScheduler twin_scrubber(twin, config.integrity);
  twin_scrubber.note_request(0);
  EXPECT_EQ(engine.stats().faults().raw_bit_errors,
            twin.stats().faults().raw_bit_errors);
  EXPECT_EQ(engine.stats().flash_reads(), twin.stats().flash_reads());
}

TEST(Scrub, StandsDownInReadOnlyMode) {
  auto config = base_config();
  config.faults.ber_base = 1e9;  // every host read is uncorrectable
  config.integrity.read_retry_steps = 1;
  config.integrity.read_retry_ber_scale = 1.0;
  config.integrity.scrub_interval_requests = 1;
  config.integrity.scrub_ber_watermark = 1.0;
  Engine engine(config);
  SimpleRelocator relocator(engine);
  const auto programmed = engine.flash_program(
      Stream::kData, nand::PageOwner::data(Lpn{0}), OpKind::kDataWrite, 0);
  ASSERT_TRUE(
      engine.flash_read(programmed.ppn, OpKind::kDataRead, 0).data_lost());
  ASSERT_TRUE(engine.read_only());

  // Scrub must not consume the remaining spare capacity of a degraded
  // device: the tick is counted as skipped work, nothing is scanned.
  ScrubScheduler scrubber(engine, config.integrity);
  scrubber.note_request(0);
  EXPECT_EQ(engine.stats().faults().scrub_ticks, 0u);
  EXPECT_EQ(engine.stats().faults().scrub_scans, 0u);
}

}  // namespace
}  // namespace af::ssd

// Partial resumable GC: per-invocation page budget, victim resumption,
// per-plane trigger stagger and slot-aware victim weights.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/scheme.h"
#include "sim/ssd.h"
#include "../helpers.h"

namespace af::ssd {
namespace {

SsdConfig budget_config(std::uint32_t pages_per_pass) {
  auto config = SsdConfig::tiny();
  config.gc_pages_per_pass = pages_per_pass;
  return config;
}

/// Runs a GC-heavy overwrite workload (a footprint large enough that GC
/// victims carry several live pages) and returns the device.
std::unique_ptr<sim::Ssd> churn(const SsdConfig& config, int writes) {
  auto ssd = std::make_unique<sim::Ssd>(config, ftl::SchemeKind::kPageFtl);
  const auto spp = config.geometry.sectors_per_page();
  const auto footprint = config.logical_pages() * 3 / 5;
  Rng rng(9);
  SimTime t = 0;
  for (int i = 0; i < writes; ++i) {
    test::submit_ok(*ssd,
                    {t++, true, SectorRange::of(rng.below(footprint) * spp, spp)});
  }
  return ssd;
}

TEST(PartialGc, SmallerBudgetMeansMoreFrequentSmallerPasses) {
  const auto tight = churn(budget_config(1), 6000);
  const auto loose = churn(budget_config(64), 6000);
  // Same reclamation work overall...
  EXPECT_NEAR(static_cast<double>(tight->stats().erases()),
              static_cast<double>(loose->stats().erases()),
              0.20 * static_cast<double>(loose->stats().erases()));
  // ...split into many more invocations under the small budget.
  EXPECT_GT(tight->engine().gc_runs(), 15 * loose->engine().gc_runs() / 10);
}

TEST(PartialGc, MigrationWorkIsIndependentOfBudget) {
  const auto tight = churn(budget_config(1), 6000);
  const auto loose = churn(budget_config(64), 6000);
  const auto tight_moves = tight->stats().flash_ops(OpKind::kGcWrite);
  const auto loose_moves = loose->stats().flash_ops(OpKind::kGcWrite);
  // Budget shapes *when* pages move, not *how many* (same victims overall).
  EXPECT_NEAR(static_cast<double>(tight_moves),
              static_cast<double>(loose_moves),
              0.25 * static_cast<double>(std::max(tight_moves, loose_moves)));
}

TEST(PartialGc, OracleHoldsUnderResumedVictims) {
  // Budget of 1 page per pass maximises mid-victim suspensions; the oracle
  // (tiny() tracks payload) must still verify everything.
  auto config = budget_config(1);
  auto ssd = std::make_unique<sim::Ssd>(*&config, ftl::SchemeKind::kAcrossFtl);
  const auto spp = config.geometry.sectors_per_page();
  Rng rng(13);
  SimTime t = 0;
  for (int i = 0; i < 6000; ++i) {
    const std::uint64_t p = rng.below(config.logical_pages() / 3);
    if (rng.chance(0.3)) {
      test::submit_ok(*ssd, {t++, true, SectorRange::of(p * spp + spp - 4, 8)});
    } else {
      test::submit_ok(*ssd, {t++, true, SectorRange::of(p * spp, spp)});
    }
  }
  EXPECT_GT(ssd->engine().gc_runs(), 0u);
  test::verify_full_space(*ssd);
}

TEST(PartialGc, PlaneTriggersAreStaggered) {
  Engine engine(SsdConfig::tiny());
  const auto planes = engine.geometry().total_planes();
  ASSERT_GE(planes, 3u);
  bool differs = false;
  for (std::uint64_t p = 1; p < planes; ++p) {
    differs |= (engine.plane_trigger_blocks(p) !=
                engine.plane_trigger_blocks(0));
    EXPECT_GE(engine.plane_trigger_blocks(p), engine.gc_trigger_blocks());
    EXPECT_LE(engine.plane_trigger_blocks(p), engine.gc_trigger_blocks() + 2);
  }
  EXPECT_TRUE(differs) << "all planes share one GC phase — stall storms";
}

TEST(PartialGc, BackgroundGcDoesNotBlockTheTriggeringWrite) {
  // On an otherwise idle device, a write that trips the GC threshold must
  // still complete in ~one program time — the pass runs behind it.
  auto config = SsdConfig::tiny();
  config.track_payload = false;
  sim::Ssd ssd(config, ftl::SchemeKind::kPageFtl);
  const auto spp = config.geometry.sectors_per_page();
  const auto footprint = config.logical_pages() / 3;

  Rng rng(17);
  SimTime t = 0;
  SimDuration worst = 0;
  for (int i = 0; i < 4000; ++i) {
    // Fully spaced arrivals: no queueing between host requests.
    t += 200 * kMsec;
    const auto completion =
        ssd.submit({t, true, SectorRange::of(rng.below(footprint) * spp, spp)});
    worst = std::max(worst, completion.latency);
  }
  ASSERT_GT(ssd.engine().gc_runs(), 0u);
  // Transfer + program ≈ 2.02 ms; anything over ~2 passes of GC would mean
  // the request waited for collection.
  EXPECT_LT(worst, 3 * config.timing.program_ns);
}

TEST(SlotWeights, DefaultWeightCountsValidPages) {
  Engine engine(SsdConfig::tiny());
  engine.set_relocator([](Ppn, const nand::PageOwner&, SimTime&) {});
  auto a = engine.flash_program(Stream::kData, nand::PageOwner::data(Lpn{0}),
                                OpKind::kDataWrite, 0);
  const auto flat = engine.geometry().block_of(a.ppn);
  EXPECT_EQ(engine.block_weight(flat), Engine::kFullPageWeight);
  engine.invalidate(a.ppn);
  EXPECT_EQ(engine.block_weight(flat), 0u);
}

TEST(SlotWeights, CustomWeightDrivesVictimChoice) {
  Engine engine(SsdConfig::tiny());
  engine.set_relocator([](Ppn, const nand::PageOwner&, SimTime&) {});
  // Report every page as one-quarter live.
  engine.set_victim_weight(
      [](Ppn) { return Engine::kFullPageWeight / 4; });
  auto a = engine.flash_program(Stream::kData, nand::PageOwner::data(Lpn{0}),
                                OpKind::kDataWrite, 0);
  const auto flat = engine.geometry().block_of(a.ppn);
  EXPECT_EQ(engine.block_weight(flat), Engine::kFullPageWeight / 4);
}

}  // namespace
}  // namespace af::ssd

#include "nand/geometry.h"

#include <gtest/gtest.h>

namespace af::nand {
namespace {

Geometry small() {
  Geometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.dies_per_chip = 2;
  g.planes_per_die = 2;
  g.blocks_per_plane = 4;
  g.pages_per_block = 8;
  g.page_bytes = 8192;
  return g;
}

TEST(Geometry, Counts) {
  const Geometry g = small();
  EXPECT_EQ(g.sectors_per_page(), 16u);
  EXPECT_EQ(g.total_chips(), 4u);
  EXPECT_EQ(g.total_planes(), 16u);
  EXPECT_EQ(g.total_blocks(), 64u);
  EXPECT_EQ(g.total_pages(), 512u);
  EXPECT_EQ(g.capacity_bytes(), 512u * 8192u);
  EXPECT_EQ(g.pages_per_plane(), 32u);
}

TEST(Geometry, EncodeDecodeRoundTripExhaustive) {
  const Geometry g = small();
  std::uint64_t flat = 0;
  for (std::uint32_t ch = 0; ch < g.channels; ++ch)
    for (std::uint32_t chip = 0; chip < g.chips_per_channel; ++chip)
      for (std::uint32_t die = 0; die < g.dies_per_chip; ++die)
        for (std::uint32_t plane = 0; plane < g.planes_per_die; ++plane)
          for (std::uint32_t block = 0; block < g.blocks_per_plane; ++block)
            for (std::uint32_t page = 0; page < g.pages_per_block; ++page) {
              const PhysAddr addr{ch, chip, die, plane, block, page};
              const Ppn ppn = g.encode(addr);
              EXPECT_EQ(ppn.get(), flat++);  // channel-major flat layout
              EXPECT_EQ(g.decode(ppn), addr);
            }
}

TEST(Geometry, PlaneAndBlockHelpers) {
  const Geometry g = small();
  const PhysAddr addr{1, 0, 1, 1, 2, 3};
  const Ppn ppn = g.encode(addr);
  EXPECT_EQ(g.plane_index(addr), g.plane_of(ppn));
  EXPECT_EQ(g.chip_index(addr), 1u * g.chips_per_channel + 0u);
  EXPECT_EQ(g.block_of(ppn) % g.blocks_per_plane, 2u);
  EXPECT_EQ(g.block_first_page(g.plane_of(ppn), 2).get(),
            ppn.get() - addr.page);
}

TEST(Geometry, PaperScaleCapacity) {
  // Table 1: 262144 blocks × 64 pages × 8 KiB = 128 GiB.
  Geometry g;
  g.channels = 8;
  g.chips_per_channel = 4;
  g.dies_per_chip = 2;
  g.planes_per_die = 2;
  g.blocks_per_plane = 2048;
  g.pages_per_block = 64;
  g.page_bytes = 8192;
  EXPECT_EQ(g.total_blocks(), 262144u);
  EXPECT_EQ(g.capacity_bytes(), 128ull << 30);
}

TEST(Geometry, Validity) {
  Geometry g = small();
  EXPECT_TRUE(g.valid());
  g.page_bytes = 1000;  // not sector-aligned
  EXPECT_FALSE(g.valid());
  g = small();
  g.channels = 0;
  EXPECT_FALSE(g.valid());
}

TEST(GeometryDeathTest, EncodeOutOfRangeAborts) {
  const Geometry g = small();
  EXPECT_DEATH((void)g.encode({9, 0, 0, 0, 0, 0}), "CHECK");
  EXPECT_DEATH((void)g.decode(Ppn{g.total_pages()}), "CHECK");
}

}  // namespace
}  // namespace af::nand

#include "nand/timing.h"

#include <gtest/gtest.h>

namespace af::nand {
namespace {

TEST(Timing, TlcMatchesTable1) {
  const Timing t = Timing::preset(CellType::kTlc, 8192);
  EXPECT_EQ(t.read_ns, 75'000u);      // 0.075 ms
  EXPECT_EQ(t.program_ns, 2'000'000u);  // 2 ms
  EXPECT_EQ(t.dram_access_ns, 1'000u);  // 0.001 ms
  EXPECT_GT(t.erase_ns, t.program_ns);
}

TEST(Timing, TransferScalesWithPageSize) {
  const Timing small = Timing::preset(CellType::kTlc, 4096);
  const Timing large = Timing::preset(CellType::kTlc, 16384);
  EXPECT_EQ(large.transfer_ns_per_page, 4 * small.transfer_ns_per_page);
}

TEST(Timing, CellTypeOrdering) {
  const Timing slc = Timing::preset(CellType::kSlc, 8192);
  const Timing mlc = Timing::preset(CellType::kMlc, 8192);
  const Timing tlc = Timing::preset(CellType::kTlc, 8192);
  EXPECT_LT(slc.program_ns, mlc.program_ns);
  EXPECT_LT(mlc.program_ns, tlc.program_ns);
  EXPECT_LT(slc.read_ns, tlc.read_ns);
  EXPECT_LT(slc.erase_ns, tlc.erase_ns);
}

}  // namespace
}  // namespace af::nand

// Power-cut injection semantics (nand/power.h): exact-op determinism, torn
// pages on interrupted programs, erase atomicity, and the OOB records that
// mount-time recovery replays.
#include <gtest/gtest.h>

#include "nand/flash_array.h"
#include "nand/power.h"

namespace af::nand {
namespace {

Geometry tiny_geom() {
  Geometry g;
  g.channels = 1;
  g.chips_per_channel = 1;
  g.dies_per_chip = 1;
  g.planes_per_die = 2;
  g.blocks_per_plane = 4;
  g.pages_per_block = 4;
  g.page_bytes = 8192;
  return g;
}

TEST(PowerCut, ProgramCutTearsPageAndThrows) {
  FlashArray array(tiny_geom());
  array.arm_power_cut({/*at_op=*/2, /*seed=*/0});

  ASSERT_TRUE(array.program(Ppn{0}, PageOwner::data(Lpn{5})));
  EXPECT_THROW((void)array.program(Ppn{1}, PageOwner::data(Lpn{6})),
               PowerLoss);

  // The interrupted page consumed its program cycle but holds nothing.
  EXPECT_EQ(array.state(Ppn{1}), PageState::kInvalid);
  EXPECT_TRUE(array.oob(Ppn{1}).torn);
  EXPECT_TRUE(array.oob(Ppn{1}).written());
  EXPECT_EQ(array.block(0).written, 2u);
  // The page programmed before the cut is untouched and claimable.
  EXPECT_EQ(array.state(Ppn{0}), PageState::kValid);
  EXPECT_FALSE(array.oob(Ppn{0}).torn);
  EXPECT_EQ(array.oob(Ppn{0}).owner, PageOwner::data(Lpn{5}));
}

TEST(PowerCut, EraseCutIsAtomic) {
  FlashArray array(tiny_geom());
  for (std::uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(array.program(Ppn{p}, PageOwner::data(Lpn{p})));
    array.invalidate(Ppn{p});
  }
  array.arm_power_cut({/*at_op=*/1, /*seed=*/0});
  EXPECT_THROW((void)array.erase_block(0), PowerLoss);

  // Nothing changed: pages still invalid, OOB still in place, no erase
  // counted.
  EXPECT_EQ(array.state(Ppn{0}), PageState::kInvalid);
  EXPECT_TRUE(array.oob(Ppn{0}).written());
  EXPECT_EQ(array.block(0).erase_count, 0u);
  EXPECT_EQ(array.counters().erases, 0u);
}

TEST(PowerCut, ReadCutChangesNothing) {
  FlashArray array(tiny_geom());
  ASSERT_TRUE(array.program(Ppn{0}, PageOwner::data(Lpn{0})));
  array.arm_power_cut({/*at_op=*/1, /*seed=*/0});
  EXPECT_THROW(array.count_read(), PowerLoss);
  EXPECT_EQ(array.state(Ppn{0}), PageState::kValid);
}

TEST(PowerCut, DisarmedPlanStillCountsOps) {
  FlashArray array(tiny_geom());
  array.arm_power_cut(PowerCutPlan{});  // at_op = 0: counting only
  ASSERT_TRUE(array.program(Ppn{0}, PageOwner::data(Lpn{0})));
  array.count_read();
  array.invalidate(Ppn{0});  // metadata action, not a physical op
  EXPECT_EQ(array.ops_since_arm(), 2u);
}

TEST(PowerCut, ArmRestartsTheOpCounter) {
  FlashArray array(tiny_geom());
  array.arm_power_cut(PowerCutPlan{});
  ASSERT_TRUE(array.program(Ppn{0}, PageOwner::data(Lpn{0})));
  ASSERT_TRUE(array.program(Ppn{1}, PageOwner::data(Lpn{1})));
  array.arm_power_cut({/*at_op=*/1, /*seed=*/0});
  EXPECT_EQ(array.ops_since_arm(), 0u);
  EXPECT_THROW((void)array.program(Ppn{2}, PageOwner::data(Lpn{2})),
               PowerLoss);
}

TEST(PowerCut, SameOpIndexKillsTheSameOp) {
  for (int run = 0; run < 2; ++run) {
    FlashArray array(tiny_geom());
    array.arm_power_cut({/*at_op=*/3, /*seed=*/99});
    std::uint64_t completed = 0;
    try {
      for (std::uint64_t p = 0;; ++p) {
        (void)array.program(Ppn{p}, PageOwner::data(Lpn{p}));
        ++completed;
      }
    } catch (const PowerLoss& loss) {
      EXPECT_EQ(loss.op_index, 3u);
    }
    EXPECT_EQ(completed, 2u);
  }
}

TEST(PowerCut, OobRecordsSurviveInvalidateAndDieWithErase) {
  FlashArray array(tiny_geom());
  OobExtra extra;
  extra.range_begin = 10;
  extra.range_end = 26;
  extra.slot_base = 10;
  ASSERT_TRUE(array.program(Ppn{0}, PageOwner::across(AmtIndex{3}), &extra));
  array.invalidate(Ppn{0});

  // Validity is RAM fiction: the spare area still tells the whole story.
  const OobRecord& rec = array.oob(Ppn{0});
  EXPECT_EQ(rec.owner, PageOwner::across(AmtIndex{3}));
  EXPECT_EQ(rec.range_begin, 10u);
  EXPECT_EQ(rec.range_end, 26u);
  EXPECT_EQ(rec.slot_base, 10u);

  for (std::uint64_t p = 1; p < 4; ++p) {
    ASSERT_TRUE(array.program(Ppn{p}, PageOwner::data(Lpn{p})));
    array.invalidate(Ppn{p});
  }
  ASSERT_TRUE(array.erase_block(0));
  EXPECT_FALSE(array.oob(Ppn{0}).written());
  EXPECT_EQ(array.block(0).max_seq, 0u);
}

TEST(PowerCut, SeqIsMonotonicAndTornProgramsConsumeIt) {
  FlashArray array(tiny_geom());
  ASSERT_TRUE(array.program(Ppn{0}, PageOwner::data(Lpn{0})));
  array.arm_power_cut({/*at_op=*/1, /*seed=*/0});
  EXPECT_THROW((void)array.program(Ppn{1}, PageOwner::data(Lpn{1})),
               PowerLoss);
  array.disarm_power_cut();
  ASSERT_TRUE(array.program(Ppn{2}, PageOwner::data(Lpn{2})));

  EXPECT_LT(array.oob(Ppn{0}).seq, array.oob(Ppn{1}).seq);
  EXPECT_LT(array.oob(Ppn{1}).seq, array.oob(Ppn{2}).seq);
  EXPECT_EQ(array.block(0).max_seq, array.oob(Ppn{2}).seq);
}

}  // namespace
}  // namespace af::nand

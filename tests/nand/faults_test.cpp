// FaultModel contract tests: seeded determinism (the property every
// reproducible fault bench rests on), zero-rate inertness, the wear ramp,
// and read-retry bounding.
#include "nand/faults.h"

#include <gtest/gtest.h>

#include <vector>

namespace af::nand {
namespace {

FaultConfig lossy(std::uint64_t seed) {
  FaultConfig cfg;
  cfg.program_fail = 0.3;
  cfg.erase_fail = 0.2;
  cfg.read_fail = 0.4;
  cfg.seed = seed;
  return cfg;
}

/// Drives a fixed interleaved query sequence and records every answer.
std::vector<std::uint64_t> schedule_of(FaultModel& model) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 500; ++i) {
    out.push_back(model.program_fails(i % 7) ? 1 : 0);
    out.push_back(model.erase_fails(i % 5) ? 1 : 0);
    out.push_back(model.read_retries());
  }
  return out;
}

TEST(FaultModel, SameSeedSameSchedule) {
  FaultModel a(lossy(123));
  FaultModel b(lossy(123));
  EXPECT_EQ(schedule_of(a), schedule_of(b));
}

TEST(FaultModel, DifferentSeedDifferentSchedule) {
  FaultModel a(lossy(123));
  FaultModel b(lossy(124));
  EXPECT_NE(schedule_of(a), schedule_of(b));
}

TEST(FaultModel, ZeroRatesNeverFail) {
  FaultModel model{FaultConfig{}};
  EXPECT_FALSE(model.enabled());
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(model.program_fails(i));
    EXPECT_FALSE(model.erase_fails(i));
    EXPECT_EQ(model.read_retries(), 0u);
  }
}

TEST(FaultModel, DisabledClassDoesNotPerturbEnabledOne) {
  // Querying a zero-rate class must not consume RNG state: the program-fault
  // schedule is identical whether or not erase checks are interleaved.
  FaultConfig cfg;
  cfg.program_fail = 0.5;
  cfg.seed = 9;
  FaultModel plain(cfg);
  FaultModel interleaved(cfg);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(interleaved.erase_fails(3));   // erase_fail == 0: no draw
    EXPECT_EQ(interleaved.read_retries(), 0u);  // read_fail == 0: no draw
    EXPECT_EQ(plain.program_fails(0), interleaved.program_fails(0));
  }
}

TEST(FaultModel, WearRampRaisesProbability) {
  FaultConfig cfg;
  cfg.program_fail = 0.001;
  cfg.wear_slope = 0.01;
  cfg.wear_onset = 100;
  FaultModel model(cfg);
  EXPECT_DOUBLE_EQ(model.wear_ramped(cfg.program_fail, 0), 0.001);
  EXPECT_DOUBLE_EQ(model.wear_ramped(cfg.program_fail, 100), 0.001);
  EXPECT_DOUBLE_EQ(model.wear_ramped(cfg.program_fail, 150), 0.001 + 0.5);
  // Clamped at certainty for very old blocks.
  EXPECT_DOUBLE_EQ(model.wear_ramped(cfg.program_fail, 1000000), 1.0);
}

TEST(FaultModel, WornBlocksFailMoreOften) {
  FaultConfig cfg;
  cfg.program_fail = 0.01;
  cfg.wear_slope = 0.002;
  cfg.wear_onset = 50;
  cfg.seed = 77;
  FaultModel model(cfg);
  int young_fails = 0, old_fails = 0;
  for (int i = 0; i < 4000; ++i) {
    if (model.program_fails(0)) ++young_fails;
    if (model.program_fails(400)) ++old_fails;
  }
  EXPECT_GT(old_fails, young_fails * 10);
}

TEST(FaultModel, ReadRetriesBounded) {
  FaultConfig cfg;
  cfg.read_fail = 0.99;
  cfg.max_read_retries = 3;
  cfg.seed = 5;
  FaultModel model(cfg);
  bool saw_cap = false;
  for (int i = 0; i < 300; ++i) {
    const std::uint32_t r = model.read_retries();
    EXPECT_LE(r, 3u);
    saw_cap |= (r == 3u);
  }
  EXPECT_TRUE(saw_cap);
}

}  // namespace
}  // namespace af::nand

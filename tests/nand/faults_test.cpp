// FaultModel contract tests: seeded determinism (the property every
// reproducible fault bench rests on), zero-rate inertness, the wear ramp,
// and read-retry bounding.
#include "nand/faults.h"

#include <gtest/gtest.h>

#include <vector>

namespace af::nand {
namespace {

FaultConfig lossy(std::uint64_t seed) {
  FaultConfig cfg;
  cfg.program_fail = 0.3;
  cfg.erase_fail = 0.2;
  cfg.read_fail = 0.4;
  cfg.seed = seed;
  return cfg;
}

/// Drives a fixed interleaved query sequence and records every answer.
std::vector<std::uint64_t> schedule_of(FaultModel& model) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 500; ++i) {
    out.push_back(model.program_fails(i % 7) ? 1 : 0);
    out.push_back(model.erase_fails(i % 5) ? 1 : 0);
    out.push_back(model.read_retries());
  }
  return out;
}

TEST(FaultModel, SameSeedSameSchedule) {
  FaultModel a(lossy(123));
  FaultModel b(lossy(123));
  EXPECT_EQ(schedule_of(a), schedule_of(b));
}

TEST(FaultModel, DifferentSeedDifferentSchedule) {
  FaultModel a(lossy(123));
  FaultModel b(lossy(124));
  EXPECT_NE(schedule_of(a), schedule_of(b));
}

TEST(FaultModel, ZeroRatesNeverFail) {
  FaultModel model{FaultConfig{}};
  EXPECT_FALSE(model.enabled());
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(model.program_fails(i));
    EXPECT_FALSE(model.erase_fails(i));
    EXPECT_EQ(model.read_retries(), 0u);
  }
}

TEST(FaultModel, DisabledClassDoesNotPerturbEnabledOne) {
  // Querying a zero-rate class must not consume RNG state: the program-fault
  // schedule is identical whether or not erase checks are interleaved.
  FaultConfig cfg;
  cfg.program_fail = 0.5;
  cfg.seed = 9;
  FaultModel plain(cfg);
  FaultModel interleaved(cfg);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(interleaved.erase_fails(3));   // erase_fail == 0: no draw
    EXPECT_EQ(interleaved.read_retries(), 0u);  // read_fail == 0: no draw
    EXPECT_EQ(plain.program_fails(0), interleaved.program_fails(0));
  }
}

TEST(FaultModel, WearRampRaisesProbability) {
  FaultConfig cfg;
  cfg.program_fail = 0.001;
  cfg.wear_slope = 0.01;
  cfg.wear_onset = 100;
  FaultModel model(cfg);
  EXPECT_DOUBLE_EQ(model.wear_ramped(cfg.program_fail, 0), 0.001);
  EXPECT_DOUBLE_EQ(model.wear_ramped(cfg.program_fail, 100), 0.001);
  EXPECT_DOUBLE_EQ(model.wear_ramped(cfg.program_fail, 150), 0.001 + 0.5);
  // Clamped at certainty for very old blocks.
  EXPECT_DOUBLE_EQ(model.wear_ramped(cfg.program_fail, 1000000), 1.0);
}

TEST(FaultModel, WornBlocksFailMoreOften) {
  FaultConfig cfg;
  cfg.program_fail = 0.01;
  cfg.wear_slope = 0.002;
  cfg.wear_onset = 50;
  cfg.seed = 77;
  FaultModel model(cfg);
  int young_fails = 0, old_fails = 0;
  for (int i = 0; i < 4000; ++i) {
    if (model.program_fails(0)) ++young_fails;
    if (model.program_fails(400)) ++old_fails;
  }
  EXPECT_GT(old_fails, young_fails * 10);
}

TEST(FaultModel, PageBerComposesHistoryTerms) {
  FaultConfig cfg;
  cfg.ber_base = 0.5;
  cfg.ber_retention = 0.2;      // per 1000 retention ops
  cfg.ber_read_disturb = 0.1;   // per 100 block reads
  cfg.ber_wear = 0.01;          // per erase beyond wear_onset
  cfg.wear_onset = 10;
  FaultModel model(cfg);
  EXPECT_DOUBLE_EQ(model.page_ber(0, 0, 0), 0.5);
  EXPECT_DOUBLE_EQ(model.page_ber(5000, 0, 0), 0.5 + 1.0);
  EXPECT_DOUBLE_EQ(model.page_ber(0, 300, 0), 0.5 + 0.3);
  EXPECT_DOUBLE_EQ(model.page_ber(0, 0, 10), 0.5);   // at onset: no wear term
  EXPECT_DOUBLE_EQ(model.page_ber(0, 0, 60), 0.5 + 0.5);
  // Terms add independently.
  EXPECT_DOUBLE_EQ(model.page_ber(5000, 300, 60), 0.5 + 1.0 + 0.3 + 0.5);
}

TEST(FaultModel, BerDrawsAreSeededAndCapped) {
  FaultConfig cfg;
  cfg.ber_base = 3.0;
  cfg.ber_cap = 5;
  cfg.seed = 42;
  FaultModel a(cfg);
  FaultModel b(cfg);
  bool nonzero = false;
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t ea = a.raw_bit_errors(3.0);
    EXPECT_EQ(ea, b.raw_bit_errors(3.0));
    EXPECT_LE(ea, 5u);
    nonzero |= ea > 0;
  }
  EXPECT_TRUE(nonzero);
  // A saturated intensity (exp(-lambda) underflows) pins at the cap rather
  // than spinning the inversion loop.
  EXPECT_EQ(a.raw_bit_errors(1e9), 5u);
}

TEST(FaultModel, ZeroIntensityDrawsNothing) {
  // lambda == 0 must not consume BER-stream state: interleaving zero draws
  // leaves the nonzero schedule bit-identical.
  FaultConfig cfg;
  cfg.ber_base = 2.0;
  cfg.seed = 7;
  FaultModel plain(cfg);
  FaultModel interleaved(cfg);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(interleaved.raw_bit_errors(0.0), 0u);
    EXPECT_EQ(plain.raw_bit_errors(2.0), interleaved.raw_bit_errors(2.0));
  }
}

TEST(FaultModel, BerStreamIndependentOfTransientStream) {
  // Enabling bit errors must not shift the transient op-failure schedule:
  // the two families draw from independent RNG streams.
  FaultConfig transient_only = lossy(31);
  FaultConfig both = lossy(31);
  both.ber_base = 4.0;
  FaultModel a(transient_only);
  FaultModel b(both);
  for (int i = 0; i < 200; ++i) {
    (void)b.raw_bit_errors(4.0);  // consume the BER stream between queries
    EXPECT_EQ(a.program_fails(i % 7), b.program_fails(i % 7));
    EXPECT_EQ(a.erase_fails(i % 5), b.erase_fails(i % 5));
    EXPECT_EQ(a.read_retries(), b.read_retries());
  }
}

TEST(FaultModel, HigherIntensityMeansMoreErrors) {
  FaultConfig cfg;
  cfg.ber_base = 1.0;
  cfg.seed = 11;
  FaultModel model(cfg);
  std::uint64_t low = 0, high = 0;
  for (int i = 0; i < 2000; ++i) {
    low += model.raw_bit_errors(0.5);
    high += model.raw_bit_errors(8.0);
  }
  EXPECT_GT(high, low * 4);
}

TEST(FaultModel, ReadRetriesBounded) {
  FaultConfig cfg;
  cfg.read_fail = 0.99;
  cfg.max_read_retries = 3;
  cfg.seed = 5;
  FaultModel model(cfg);
  bool saw_cap = false;
  for (int i = 0; i < 300; ++i) {
    const std::uint32_t r = model.read_retries();
    EXPECT_LE(r, 3u);
    saw_cap |= (r == 3u);
  }
  EXPECT_TRUE(saw_cap);
}

}  // namespace
}  // namespace af::nand

#include "nand/flash_array.h"

#include <gtest/gtest.h>

namespace af::nand {
namespace {

Geometry tiny_geom() {
  Geometry g;
  g.channels = 1;
  g.chips_per_channel = 1;
  g.dies_per_chip = 1;
  g.planes_per_die = 2;
  g.blocks_per_plane = 4;
  g.pages_per_block = 4;
  g.page_bytes = 8192;
  return g;
}

TEST(FlashArray, StartsAllFree) {
  FlashArray array(tiny_geom());
  EXPECT_EQ(array.counters().free_pages, 32u);
  EXPECT_EQ(array.counters().valid_pages, 0u);
  EXPECT_EQ(array.state(Ppn{0}), PageState::kFree);
  EXPECT_DOUBLE_EQ(array.used_fraction(), 0.0);
}

TEST(FlashArray, ProgramTransitions) {
  FlashArray array(tiny_geom());
  (void)array.program(Ppn{0}, PageOwner::data(Lpn{7}));
  EXPECT_EQ(array.state(Ppn{0}), PageState::kValid);
  EXPECT_EQ(array.owner(Ppn{0}), PageOwner::data(Lpn{7}));
  EXPECT_EQ(array.counters().programs, 1u);
  EXPECT_EQ(array.counters().valid_pages, 1u);
  EXPECT_EQ(array.block(0).valid_pages, 1u);
  EXPECT_EQ(array.block(0).written, 1u);
}

TEST(FlashArray, InOrderProgrammingEnforced) {
  FlashArray array(tiny_geom());
  (void)array.program(Ppn{0}, PageOwner::data(Lpn{0}));
  (void)array.program(Ppn{1}, PageOwner::data(Lpn{1}));
  EXPECT_DEATH((void)array.program(Ppn{3}, PageOwner::data(Lpn{2})),
               "programmed in order");
}

TEST(FlashArray, DoubleProgramAborts) {
  FlashArray array(tiny_geom());
  (void)array.program(Ppn{0}, PageOwner::data(Lpn{0}));
  EXPECT_DEATH((void)array.program(Ppn{0}, PageOwner::data(Lpn{1})), "non-free");
}

TEST(FlashArray, InvalidateAndErase) {
  FlashArray array(tiny_geom());
  for (std::uint64_t p = 0; p < 4; ++p) {
    (void)array.program(Ppn{p}, PageOwner::data(Lpn{p}));
  }
  for (std::uint64_t p = 0; p < 4; ++p) array.invalidate(Ppn{p});
  EXPECT_EQ(array.counters().invalid_pages, 4u);
  EXPECT_EQ(array.block(0).valid_pages, 0u);

  (void)array.erase_block(0);
  EXPECT_EQ(array.counters().erases, 1u);
  EXPECT_EQ(array.block(0).erase_count, 1u);
  EXPECT_EQ(array.block(0).written, 0u);
  EXPECT_EQ(array.state(Ppn{0}), PageState::kFree);
  EXPECT_EQ(array.counters().free_pages, 32u);

  // Block is reusable after erase, starting from page 0 again.
  (void)array.program(Ppn{0}, PageOwner::data(Lpn{9}));
  EXPECT_EQ(array.state(Ppn{0}), PageState::kValid);
}

TEST(FlashArray, EraseWithLivePagesAborts) {
  FlashArray array(tiny_geom());
  (void)array.program(Ppn{0}, PageOwner::data(Lpn{0}));
  EXPECT_DEATH((void)array.erase_block(0), "valid pages");
}

TEST(FlashArray, InvalidateNonValidAborts) {
  FlashArray array(tiny_geom());
  EXPECT_DEATH(array.invalidate(Ppn{0}), "non-valid");
}

TEST(FlashArray, WriteFrontier) {
  FlashArray array(tiny_geom());
  EXPECT_EQ(array.write_frontier(0), Ppn{0});
  (void)array.program(Ppn{0}, PageOwner::data(Lpn{0}));
  EXPECT_EQ(array.write_frontier(0), Ppn{1});
  for (std::uint64_t p = 1; p < 4; ++p) {
    (void)array.program(Ppn{p}, PageOwner::data(Lpn{p}));
  }
  EXPECT_FALSE(array.write_frontier(0).valid());  // block full
}

TEST(FlashArray, ValidPagesIn) {
  FlashArray array(tiny_geom());
  for (std::uint64_t p = 0; p < 3; ++p) {
    (void)array.program(Ppn{p}, PageOwner::data(Lpn{p}));
  }
  array.invalidate(Ppn{1});
  const auto valid = array.valid_pages_in(0);
  ASSERT_EQ(valid.size(), 2u);
  EXPECT_EQ(valid[0], Ppn{0});
  EXPECT_EQ(valid[1], Ppn{2});
}

TEST(FlashArray, UsedAndValidFractions) {
  FlashArray array(tiny_geom());
  for (std::uint64_t p = 0; p < 8; ++p) {
    (void)array.program(Ppn{p}, PageOwner::data(Lpn{p}));
  }
  array.invalidate(Ppn{0});
  EXPECT_DOUBLE_EQ(array.used_fraction(), 8.0 / 32.0);
  EXPECT_DOUBLE_EQ(array.valid_fraction(), 7.0 / 32.0);
}

TEST(FlashArray, StampsRoundTripAndClearOnErase) {
  FlashArray array(tiny_geom(), /*track_payload=*/true);
  ASSERT_TRUE(array.tracks_payload());
  (void)array.program(Ppn{0}, PageOwner::data(Lpn{0}));
  array.set_stamp(Ppn{0}, 3, 0xabcd);
  EXPECT_EQ(array.stamp(Ppn{0}, 3), 0xabcdu);
  EXPECT_EQ(array.stamp(Ppn{0}, 4), 0u);

  array.invalidate(Ppn{0});
  for (std::uint64_t p = 1; p < 4; ++p) {
    (void)array.program(Ppn{p}, PageOwner::data(Lpn{p}));
    array.invalidate(Ppn{p});
  }
  (void)array.erase_block(0);
  EXPECT_EQ(array.stamp(Ppn{0}, 3), 0u);  // erase clears cells
}

TEST(FlashArray, PayloadDisabledByDefault) {
  FlashArray array(tiny_geom());
  EXPECT_FALSE(array.tracks_payload());
  EXPECT_DEATH(array.set_stamp(Ppn{0}, 0, 1), "disabled");
}

TEST(FlashArray, MaxEraseCount) {
  FlashArray array(tiny_geom());
  (void)array.erase_block(2);
  (void)array.erase_block(2);
  (void)array.erase_block(5);
  EXPECT_EQ(array.max_erase_count(), 2u);
  EXPECT_EQ(array.total_erases(), 3u);
}

TEST(FlashArray, ProgramFaultLeavesTornPage) {
  FaultConfig faults;
  faults.program_fail = 1.0;  // every program tears
  FlashArray array(tiny_geom(), /*track_payload=*/false, faults);
  EXPECT_FALSE(array.program(Ppn{0}, PageOwner::data(Lpn{0})));
  // The program cycle and frontier were consumed; the page holds nothing.
  EXPECT_EQ(array.state(Ppn{0}), PageState::kInvalid);
  EXPECT_EQ(array.owner(Ppn{0}), PageOwner{});
  EXPECT_EQ(array.block(0).written, 1u);
  EXPECT_EQ(array.block(0).valid_pages, 0u);
  EXPECT_EQ(array.counters().programs, 1u);
  EXPECT_EQ(array.counters().program_faults, 1u);
  EXPECT_EQ(array.counters().invalid_pages, 1u);
  EXPECT_EQ(array.counters().valid_pages, 0u);
  // The torn page is reclaimed by a normal erase.
  EXPECT_TRUE(array.erase_block(0));
  EXPECT_EQ(array.state(Ppn{0}), PageState::kFree);
}

TEST(FlashArray, EraseFaultRetiresBlock) {
  FaultConfig faults;
  faults.erase_fail = 1.0;  // every erase bricks its block
  FlashArray array(tiny_geom(), /*track_payload=*/false, faults);
  EXPECT_TRUE(array.program(Ppn{0}, PageOwner::data(Lpn{0})));
  array.invalidate(Ppn{0});

  EXPECT_FALSE(array.erase_block(0));
  EXPECT_TRUE(array.retired(0));
  EXPECT_EQ(array.counters().erase_faults, 1u);
  EXPECT_EQ(array.counters().erases, 0u);  // failed erase is not an erase
  EXPECT_EQ(array.counters().retired_blocks, 1u);
  EXPECT_EQ(array.counters().retired_pages, 4u);
  // Retirement accounting conserves page states: 1 invalid + 3 free left
  // service, nothing else moved.
  EXPECT_EQ(array.counters().invalid_pages, 0u);
  EXPECT_EQ(array.counters().free_pages, 32u - 4u);
  for (std::uint64_t p = 0; p < 4; ++p) {
    EXPECT_EQ(array.state(Ppn{p}), PageState::kRetired);
  }
  // A retired block offers no frontier and rejects further operations.
  EXPECT_FALSE(array.write_frontier(0).valid());
  EXPECT_DEATH((void)array.erase_block(0), "retired");
}

TEST(FlashArray, ExplicitRetirementAccounting) {
  FlashArray array(tiny_geom());
  EXPECT_TRUE(array.program(Ppn{0}, PageOwner::data(Lpn{0})));
  array.invalidate(Ppn{0});
  array.retire_block(0);
  EXPECT_TRUE(array.retired(0));
  EXPECT_EQ(array.counters().retired_blocks, 1u);
  EXPECT_EQ(array.counters().retired_pages, 4u);
  EXPECT_EQ(array.counters().free_pages + array.counters().valid_pages +
                array.counters().invalid_pages +
                array.counters().retired_pages,
            32u);
  EXPECT_DEATH(array.retire_block(0), "double retirement");
}

TEST(FlashArray, RetireBlockWithLiveDataAborts) {
  FlashArray array(tiny_geom());
  EXPECT_TRUE(array.program(Ppn{0}, PageOwner::data(Lpn{0})));
  EXPECT_DEATH(array.retire_block(0), "valid pages");
}

TEST(FlashArray, RetirementClearsStamps) {
  FlashArray array(tiny_geom(), /*track_payload=*/true);
  EXPECT_TRUE(array.program(Ppn{0}, PageOwner::data(Lpn{0})));
  array.set_stamp(Ppn{0}, 0, 0x77);
  array.invalidate(Ppn{0});
  array.retire_block(0);
  EXPECT_EQ(array.stamp(Ppn{0}, 0), 0u);
}

TEST(FlashArray, WearSummary) {
  FlashArray array(tiny_geom());  // 8 blocks
  const auto fresh = array.wear();
  EXPECT_EQ(fresh.min, 0u);
  EXPECT_EQ(fresh.max, 0u);
  EXPECT_EQ(fresh.spread(), 0u);

  (void)array.erase_block(0);
  (void)array.erase_block(0);
  (void)array.erase_block(3);
  const auto worn = array.wear();
  EXPECT_EQ(worn.min, 0u);
  EXPECT_EQ(worn.max, 2u);
  EXPECT_EQ(worn.spread(), 2u);
  EXPECT_DOUBLE_EQ(worn.mean, 3.0 / 8.0);
}

}  // namespace
}  // namespace af::nand

#include "sim/write_buffer.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace af::sim {
namespace {

struct BufferFixture : ::testing::Test {
  BufferFixture()
      : ssd(test::tiny_config(), ftl::SchemeKind::kAcrossFtl),
        buffer(ssd, /*capacity_sectors=*/64) {}

  std::uint32_t spp() { return ssd.config().geometry.sectors_per_page(); }

  Ssd ssd;
  BufferedSsd buffer;
  SimTime t = 0;
};

TEST_F(BufferFixture, BufferedWriteCompletesAtDramSpeed) {
  const auto completion = buffer.submit({t++, true, SectorRange::of(100, 8)});
  EXPECT_EQ(completion.latency, 1'000u);
  EXPECT_EQ(buffer.buffered_sectors(), 8u);
  EXPECT_EQ(ssd.stats().flash_writes(), 0u);  // nothing reached flash yet
}

TEST_F(BufferFixture, OverlappingWritesCoalesce) {
  buffer.submit({t++, true, SectorRange::of(100, 8)});
  buffer.submit({t++, true, SectorRange::of(104, 8)});
  EXPECT_EQ(buffer.buffered_sectors(), 12u);  // [100,112): one merged entry
  EXPECT_EQ(buffer.coalesced_sectors(), 4u);
}

TEST_F(BufferFixture, AdjacentWritesMergeIntoOneEntry) {
  buffer.submit({t++, true, SectorRange::of(100, 8)});
  buffer.submit({t++, true, SectorRange::of(108, 8)});
  EXPECT_EQ(buffer.buffered_sectors(), 16u);
  // A read covering the union is a single full hit.
  const auto completion =
      buffer.submit({t++, false, SectorRange::of(100, 16)});
  EXPECT_EQ(completion.latency, 1'000u);
  EXPECT_EQ(buffer.read_hits(), 1u);
}

TEST_F(BufferFixture, CapacityEvictsOldestToFlash) {
  for (int i = 0; i < 9; ++i) {  // 9 x 8 sectors > 64-sector capacity
    buffer.submit({t++, true,
                   SectorRange::of(static_cast<SectorAddr>(i) * 32, 8)});
  }
  EXPECT_LE(buffer.buffered_sectors(), 64u);
  EXPECT_GT(buffer.flushes(), 0u);
  EXPECT_GT(ssd.stats().flash_writes(), 0u);
}

TEST_F(BufferFixture, PartialReadFlushesThrough) {
  buffer.submit({t++, true, SectorRange::of(100, 8)});
  // Read past the buffered range: forces a flush, then device read (oracle
  // checks the data end-to-end).
  buffer.submit({t++, false, SectorRange::of(100, 16)});
  EXPECT_EQ(buffer.read_throughs(), 1u);
  EXPECT_EQ(buffer.buffered_sectors(), 0u);
  EXPECT_GT(ssd.stats().flash_writes(), 0u);
}

TEST_F(BufferFixture, FlushAllDrains) {
  buffer.submit({t++, true, SectorRange::of(0, 8)});
  buffer.submit({t++, true, SectorRange::of(320, 12)});
  buffer.flush_all(t);
  EXPECT_EQ(buffer.buffered_sectors(), 0u);
  // Everything is now readable from flash with correct contents.
  ssd.submit({t++, false, SectorRange::of(0, 8)});
  ssd.submit({t++, false, SectorRange::of(320, 12)});
}

TEST_F(BufferFixture, ZeroCapacityIsPassThrough) {
  BufferedSsd raw(ssd, 0);
  raw.submit({t++, true, SectorRange::of(2056, 12)});
  EXPECT_EQ(ssd.stats().across().direct_writes, 1u);  // straight to the FTL
}

TEST_F(BufferFixture, RandomWorkloadStaysCorrectThroughTheBuffer) {
  test::WorkloadGen gen(ssd.config().logical_sectors(), spp(), 51);
  for (int i = 0; i < 3000; ++i) buffer.submit(gen.next());
  buffer.flush_all(t + 1);
  test::verify_full_space(ssd);  // oracle validates every sector
}

TEST_F(BufferFixture, BufferAbsorbsAcrossPageRewrites) {
  // The same across-page range rewritten many times: without a buffer each
  // rewrite costs flash work; the buffer collapses them into one flush.
  for (int i = 0; i < 50; ++i) {
    buffer.submit({t++, true, SectorRange::of(2056, 12)});
  }
  buffer.flush_all(t);
  EXPECT_LE(ssd.stats().flash_writes(), 2u);
  EXPECT_EQ(buffer.coalesced_sectors(), 49u * 12u);
}

}  // namespace
}  // namespace af::sim

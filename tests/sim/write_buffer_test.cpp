#include "sim/write_buffer.h"

#include <gtest/gtest.h>

#include "../helpers.h"

namespace af::sim {
namespace {

struct BufferFixture : ::testing::Test {
  BufferFixture()
      : ssd(test::tiny_config(), ftl::SchemeKind::kAcrossFtl),
        buffer(ssd, /*capacity_sectors=*/64) {}

  std::uint32_t spp() { return ssd.config().geometry.sectors_per_page(); }

  Ssd ssd;
  BufferedSsd buffer;
  SimTime t = 0;
};

TEST_F(BufferFixture, BufferedWriteCompletesAtDramSpeed) {
  const auto completion = buffer.submit({t++, true, SectorRange::of(100, 8)});
  EXPECT_EQ(completion.latency, 1'000u);
  EXPECT_EQ(buffer.buffered_sectors(), 8u);
  EXPECT_EQ(ssd.stats().flash_writes(), 0u);  // nothing reached flash yet
}

TEST_F(BufferFixture, OverlappingWritesCoalesce) {
  test::submit_ok(buffer, {t++, true, SectorRange::of(100, 8)});
  test::submit_ok(buffer, {t++, true, SectorRange::of(104, 8)});
  EXPECT_EQ(buffer.buffered_sectors(), 12u);  // [100,112): one merged entry
  EXPECT_EQ(buffer.coalesced_sectors(), 4u);
}

TEST_F(BufferFixture, AdjacentWritesMergeIntoOneEntry) {
  test::submit_ok(buffer, {t++, true, SectorRange::of(100, 8)});
  test::submit_ok(buffer, {t++, true, SectorRange::of(108, 8)});
  EXPECT_EQ(buffer.buffered_sectors(), 16u);
  // A read covering the union is a single full hit.
  const auto completion =
      test::submit_ok(buffer, {t++, false, SectorRange::of(100, 16)});
  EXPECT_EQ(completion.latency, 1'000u);
  EXPECT_EQ(buffer.read_hits(), 1u);
}

TEST_F(BufferFixture, CapacityEvictsOldestToFlash) {
  for (int i = 0; i < 9; ++i) {  // 9 x 8 sectors > 64-sector capacity
    test::submit_ok(buffer, {t++, true,
                   SectorRange::of(static_cast<SectorAddr>(i) * 32, 8)});
  }
  EXPECT_LE(buffer.buffered_sectors(), 64u);
  EXPECT_GT(buffer.flushes(), 0u);
  EXPECT_GT(ssd.stats().flash_writes(), 0u);
}

TEST_F(BufferFixture, PartialReadFlushesThrough) {
  test::submit_ok(buffer, {t++, true, SectorRange::of(100, 8)});
  // Read past the buffered range: forces a flush, then device read (oracle
  // checks the data end-to-end).
  test::submit_ok(buffer, {t++, false, SectorRange::of(100, 16)});
  EXPECT_EQ(buffer.read_throughs(), 1u);
  EXPECT_EQ(buffer.buffered_sectors(), 0u);
  EXPECT_GT(ssd.stats().flash_writes(), 0u);
}

TEST_F(BufferFixture, FlushAllDrains) {
  test::submit_ok(buffer, {t++, true, SectorRange::of(0, 8)});
  test::submit_ok(buffer, {t++, true, SectorRange::of(320, 12)});
  buffer.flush_all(t);
  EXPECT_EQ(buffer.buffered_sectors(), 0u);
  // Everything is now readable from flash with correct contents.
  test::submit_ok(ssd, {t++, false, SectorRange::of(0, 8)});
  test::submit_ok(ssd, {t++, false, SectorRange::of(320, 12)});
}

TEST_F(BufferFixture, ZeroCapacityIsPassThrough) {
  BufferedSsd raw(ssd, 0);
  test::submit_ok(raw, {t++, true, SectorRange::of(2056, 12)});
  EXPECT_EQ(ssd.stats().across().direct_writes, 1u);  // straight to the FTL
}

TEST_F(BufferFixture, RandomWorkloadStaysCorrectThroughTheBuffer) {
  test::WorkloadGen gen(ssd.config().logical_sectors(), spp(), 51);
  for (int i = 0; i < 3000; ++i) test::submit_ok(buffer, gen.next());
  buffer.flush_all(t + 1);
  test::verify_full_space(ssd);  // oracle validates every sector
}

TEST_F(BufferFixture, RefusedFlushesAreCountedAsDroppedData) {
  // Regression for a defect the [[nodiscard]] audit surfaced: write_out()
  // discarded Ssd::submit's completion, so flushing buffered data into a
  // read-only (degraded) device silently dropped host-acknowledged writes.
  auto config = test::tiny_config();
  config.faults.erase_fail = 1.0;  // retirement marches to the floor
  config.faults.seed = 7;
  config.gc_threshold = 0.5;
  config.track_payload = false;  // drops make oracle verification moot
  Ssd faulty(config, ftl::SchemeKind::kPageFtl);
  const auto spp = config.geometry.sectors_per_page();
  SimTime time = 0;
  for (std::uint64_t i = 0; i < 20'000 && !faulty.engine().read_only(); ++i) {
    const std::uint64_t p = i % (config.logical_pages() / 8);
    (void)faulty.submit({time++, true, SectorRange::of(p * spp, spp)});
  }
  ASSERT_TRUE(faulty.engine().read_only());

  BufferedSsd late(faulty, /*capacity_sectors=*/64);
  test::submit_ok(late, {time++, true, SectorRange::of(0, 8)});
  EXPECT_EQ(late.dropped_flush_sectors(), 0u);  // still only buffered
  late.flush_all(time);
  EXPECT_EQ(late.dropped_flush_sectors(), 8u);  // the refusal is now visible
}

TEST_F(BufferFixture, BufferAbsorbsAcrossPageRewrites) {
  // The same across-page range rewritten many times: without a buffer each
  // rewrite costs flash work; the buffer collapses them into one flush.
  for (int i = 0; i < 50; ++i) {
    test::submit_ok(buffer, {t++, true, SectorRange::of(2056, 12)});
  }
  buffer.flush_all(t);
  EXPECT_LE(ssd.stats().flash_writes(), 2u);
  EXPECT_EQ(buffer.coalesced_sectors(), 49u * 12u);
}

}  // namespace
}  // namespace af::sim

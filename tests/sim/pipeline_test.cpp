// SsdPipeline determinism and ordering-safety tests (DESIGN.md §10).
//
// The pipeline's contract has two halves, and each gets checked here:
//  - QD=1 (pipeline disabled) is bit-identical to driving the serial engine
//    one request at a time — every completion time, stat counter, wear cell
//    and oracle stamp, across all three schemes.
//  - QD>1 is deterministic in (config, trace, queue depth) regardless of
//    worker count, and never violates completion-order safety: a read's
//    simulated issue waits for the newest overlapping write completion, and
//    trims act as full barriers. The built-in oracle verification aborts the
//    process on any stale read, so merely finishing a run is itself an
//    assertion; the tests additionally re-derive the ordering property from
//    the completion records.
#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../helpers.h"
#include "ftl/request.h"
#include "sim/ssd.h"
#include "ssd/config.h"

namespace af::sim {
namespace {

constexpr ftl::SchemeKind kSchemes[] = {
    ftl::SchemeKind::kPageFtl, ftl::SchemeKind::kMrsm,
    ftl::SchemeKind::kAcrossFtl};

/// Mixed workload over half the logical space — every request shape the
/// generator knows, plus a periodic full-page trim so the barrier path runs.
std::vector<ftl::IoRequest> mixed_workload(const ssd::SsdConfig& config,
                                           std::size_t requests,
                                           std::uint64_t seed) {
  const auto spp = config.geometry.sectors_per_page();
  const std::uint64_t span =
      config.logical_sectors() / 2 / spp * spp;  // page-aligned footprint
  test::WorkloadGen gen(span, spp, seed);
  std::vector<ftl::IoRequest> out;
  out.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    ftl::IoRequest req = gen.next();
    if (i % 53 == 52) {
      const std::uint64_t page = req.range.begin / spp;
      req = {req.arrival, /*write=*/false, SectorRange::of(page * spp, spp),
             /*trim=*/true};
    }
    out.push_back(req);
  }
  return out;
}

struct SerialRun {
  std::vector<SimTime> done;
  std::uint64_t flash_reads = 0;
  std::uint64_t flash_writes = 0;
  std::uint64_t erases = 0;
  std::uint64_t gc_runs = 0;
  double io_time_ns = 0;
  std::uint64_t verified_sectors = 0;
  nand::FlashArray::WearSummary wear;
  std::vector<std::uint64_t> stamps;
};

/// Drives the plain serial engine with the QD=1 closed loop the pipeline
/// documents: each request issues when the previous one completed.
SerialRun serial_reference(const ssd::SsdConfig& config, ftl::SchemeKind kind,
                           const std::vector<ftl::IoRequest>& reqs) {
  sim::Ssd ssd(config, kind);
  SerialRun run;
  SimTime last_issue = 0;
  SimTime all_done = 0;
  for (ftl::IoRequest req : reqs) {
    req.arrival = std::max(last_issue, all_done);
    const auto c = ssd.submit(req);
    last_issue = req.arrival;
    all_done = std::max(all_done, c.done);
    run.done.push_back(c.done);
  }
  run.flash_reads = ssd.stats().flash_reads();
  run.flash_writes = ssd.stats().flash_writes();
  run.erases = ssd.stats().erases();
  run.gc_runs = ssd.engine().gc_runs();
  run.io_time_ns = ssd.stats().total_io_time_ns();
  run.verified_sectors = ssd.verified_sectors();
  run.wear = ssd.engine().array().wear();
  for (SectorAddr s = 0; s < config.logical_sectors(); ++s) {
    run.stamps.push_back(ssd.oracle()->expected(s));
  }
  return run;
}

TEST(Pipeline, QueueDepthOneIsBitIdenticalToSerialEngine) {
  for (const auto kind : kSchemes) {
    auto config = test::tiny_config();
    config.pipeline.queue_depth = 1;  // below the enablement threshold
    const auto reqs = mixed_workload(config, 1200, 17);
    const SerialRun serial = serial_reference(config, kind, reqs);

    SsdPipeline pipeline(config, kind);
    EXPECT_EQ(pipeline.workers(), 1u);
    for (const auto& req : reqs) pipeline.submit(req);
    pipeline.drain();

    ASSERT_EQ(pipeline.records().size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(pipeline.records()[i].done, serial.done[i]) << "request " << i;
      EXPECT_TRUE(pipeline.records()[i].executed);
    }
    const auto& stats = pipeline.device().stats();
    EXPECT_EQ(stats.flash_reads(), serial.flash_reads);
    EXPECT_EQ(stats.flash_writes(), serial.flash_writes);
    EXPECT_EQ(stats.erases(), serial.erases);
    EXPECT_EQ(stats.total_io_time_ns(), serial.io_time_ns);
    EXPECT_EQ(pipeline.device().engine().gc_runs(), serial.gc_runs);
    EXPECT_EQ(pipeline.verified_sectors(), serial.verified_sectors);
    const auto wear = pipeline.device().engine().array().wear();
    EXPECT_EQ(wear.min, serial.wear.min);
    EXPECT_EQ(wear.max, serial.wear.max);
    EXPECT_EQ(wear.mean, serial.wear.mean);
    for (SectorAddr s = 0; s < config.logical_sectors(); ++s) {
      ASSERT_EQ(pipeline.device().oracle()->expected(s), serial.stamps[s])
          << "oracle diverged at sector " << s;
    }
  }
}

/// Runs the same workload at the same queue depth with different worker
/// counts; every simulated number must match exactly.
TEST(Pipeline, WorkerCountNeverChangesSimulatedResults) {
  auto config = test::tiny_config();
  config.pipeline.queue_depth = 8;
  const auto reqs = mixed_workload(config, 1200, 29);

  std::vector<SsdPipeline::CompletionRecord> baseline;
  std::uint64_t base_reads = 0, base_writes = 0, base_erases = 0;
  SimTime base_makespan = 0;
  for (const std::uint32_t workers : {1u, 3u}) {
    config.pipeline.workers = workers;
    SsdPipeline pipeline(config, ftl::SchemeKind::kAcrossFtl);
    EXPECT_EQ(pipeline.workers(), workers);
    for (const auto& req : reqs) pipeline.submit(req);
    pipeline.drain();
    if (workers == 1) {
      baseline = pipeline.records();
      base_reads = pipeline.device().stats().flash_reads();
      base_writes = pipeline.device().stats().flash_writes();
      base_erases = pipeline.device().stats().erases();
      base_makespan = pipeline.makespan_ns();
      continue;
    }
    ASSERT_EQ(pipeline.records().size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(pipeline.records()[i].submitted, baseline[i].submitted);
      EXPECT_EQ(pipeline.records()[i].done, baseline[i].done);
    }
    EXPECT_EQ(pipeline.device().stats().flash_reads(), base_reads);
    EXPECT_EQ(pipeline.device().stats().flash_writes(), base_writes);
    EXPECT_EQ(pipeline.device().stats().erases(), base_erases);
    EXPECT_EQ(pipeline.makespan_ns(), base_makespan);
  }
}

/// Same-LPN read-after-write storm at QD16: the oracle inside the pipeline
/// aborts on any read that observes a stale stamp, and the completion
/// records must show every read issued at-or-after the newest overlapping
/// write's completion (the property the range locks enforce).
TEST(Pipeline, SameLpnRawStormAtQd16KeepsReadsOrdered) {
  auto config = test::tiny_config();
  config.pipeline.queue_depth = 16;
  config.pipeline.workers = 3;
  const auto spp = config.geometry.sectors_per_page();
  SsdPipeline pipeline(config, ftl::SchemeKind::kAcrossFtl);

  std::vector<bool> is_write;
  const std::uint64_t hot = 7;
  SimTime t = 0;
  for (int i = 0; i < 600; ++i) {
    // write, read, read, write, ... with occasional sub-page and
    // across-page shapes, all overlapping the hot page's region.
    const bool write = (i % 3) == 0;
    SectorRange range = SectorRange::of(hot * spp, spp);
    if (i % 7 == 5) range = SectorRange::of(hot * spp + 4, 6);
    if (i % 11 == 9) range = SectorRange::of(hot * spp - 2, 8);
    pipeline.submit({t++, write, range});
    is_write.push_back(write);
  }
  pipeline.drain();

  ASSERT_EQ(pipeline.records().size(), is_write.size());
  SimTime last_write_done = 0;
  for (std::size_t i = 0; i < is_write.size(); ++i) {
    const auto& rec = pipeline.records()[i];
    EXPECT_TRUE(rec.executed);
    if (is_write[i]) {
      // Writes are exclusive: nothing older may still be in the region.
      EXPECT_GE(rec.submitted, last_write_done);
      last_write_done = std::max(last_write_done, rec.done);
    } else {
      EXPECT_GE(rec.submitted, last_write_done)
          << "read " << i << " issued before the newest overlapping write";
    }
  }
  EXPECT_GT(pipeline.verified_sectors(), 0u);
  EXPECT_EQ(pipeline.lock_stats().acquisitions, is_write.size());
}

TEST(Pipeline, TrimsActAsFullBarriers) {
  auto config = test::tiny_config();
  config.pipeline.queue_depth = 16;
  config.pipeline.workers = 3;
  const auto spp = config.geometry.sectors_per_page();
  SsdPipeline pipeline(config, ftl::SchemeKind::kAcrossFtl);

  SimTime t = 0;
  for (std::uint64_t p = 0; p < 24; ++p) {
    pipeline.submit({t++, /*write=*/true, SectorRange::of(p * spp, spp)});
  }
  const std::size_t trim_index = 24;
  pipeline.submit({t++, /*write=*/false, SectorRange::of(0, 8 * spp),
                   /*trim=*/true});
  for (std::uint64_t p = 0; p < 24; ++p) {
    pipeline.submit({t++, /*write=*/false, SectorRange::of(p * spp, spp)});
  }
  pipeline.drain();

  const auto& records = pipeline.records();
  ASSERT_EQ(records.size(), 49u);
  const auto& trim = records[trim_index];
  for (std::size_t i = 0; i < trim_index; ++i) {
    EXPECT_GE(trim.submitted, records[i].done)
        << "trim issued before older request " << i << " completed";
  }
  for (std::size_t i = trim_index + 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].submitted, trim.done)
        << "request " << i << " overtook the trim barrier";
  }
  EXPECT_EQ(pipeline.lock_stats().barrier_acquisitions, 1u);
  // Reads of the trimmed pages were verified against stamp 0 by the oracle
  // (a stale pre-trim payload would have aborted the run).
  for (SectorAddr s = 0; s < 8 * spp; ++s) {
    EXPECT_EQ(pipeline.device().oracle()->expected(s), 0u);
  }
}

/// QD16 with every background subsystem on at once — GC churn, scrub ticks,
/// checkpoint journaling — stays deterministic across worker counts and
/// oracle-clean. This is the configuration the completion-order oracle
/// exists for: GC migrations and scrub relocations run inside the device
/// stage while reads verify concurrently on other workers.
TEST(Pipeline, GcScrubAndCheckpointStayDeterministicAtQd16) {
  auto config = test::tiny_config();
  config.pipeline.queue_depth = 16;
  config.checkpoint.interval_requests = 64;
  config.integrity.scrub_interval_requests = 128;

  // Overwrite churn on a third of the logical space: forces GC on tiny.
  const auto spp = config.geometry.sectors_per_page();
  const std::uint64_t footprint = config.logical_pages() / 3;
  std::vector<ftl::IoRequest> reqs;
  Rng rng(41);
  SimTime t = 0;
  for (int i = 0; i < 2200; ++i) {
    const bool write = rng.chance(0.8);
    reqs.push_back(
        {t++, write, SectorRange::of(rng.below(footprint) * spp, spp)});
  }

  std::vector<SsdPipeline::CompletionRecord> baseline;
  std::uint64_t base_erases = 0, base_gc = 0;
  for (const std::uint32_t workers : {2u, 4u}) {
    config.pipeline.workers = workers;
    SsdPipeline pipeline(config, ftl::SchemeKind::kMrsm);
    for (const auto& req : reqs) pipeline.submit(req);
    pipeline.drain();
    EXPECT_GT(pipeline.device().stats().erases(), 0u) << "GC never ran";
    EXPECT_NE(pipeline.device().checkpointer(), nullptr);
    EXPECT_NE(pipeline.device().scrubber(), nullptr);
    if (workers == 2) {
      baseline = pipeline.records();
      base_erases = pipeline.device().stats().erases();
      base_gc = pipeline.device().engine().gc_runs();
      continue;
    }
    ASSERT_EQ(pipeline.records().size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(pipeline.records()[i].submitted, baseline[i].submitted);
      EXPECT_EQ(pipeline.records()[i].done, baseline[i].done);
    }
    EXPECT_EQ(pipeline.device().stats().erases(), base_erases);
    EXPECT_EQ(pipeline.device().engine().gc_runs(), base_gc);
  }
}

/// The point of the queue: independent requests overlap across chips, so a
/// deeper queue finishes the same work in less simulated time.
TEST(Pipeline, DeeperQueueShortensMakespanOnIndependentWrites) {
  auto config = test::tiny_config();
  const auto spp = config.geometry.sectors_per_page();
  std::vector<ftl::IoRequest> reqs;
  SimTime t = 0;
  for (std::uint64_t p = 0; p < 256; ++p) {
    reqs.push_back({t++, /*write=*/true, SectorRange::of(p * spp, spp)});
  }

  SimTime makespan_qd1 = 0;
  for (const std::uint32_t qd : {1u, 8u}) {
    config.pipeline.queue_depth = qd;
    SsdPipeline pipeline(config, ftl::SchemeKind::kPageFtl);
    for (const auto& req : reqs) pipeline.submit(req);
    pipeline.drain();
    if (qd == 1) {
      makespan_qd1 = pipeline.makespan_ns();
      continue;
    }
    EXPECT_LT(pipeline.makespan_ns(), makespan_qd1)
        << "QD8 no faster than QD1 on an embarrassingly parallel workload";
  }
}

}  // namespace
}  // namespace af::sim

// TSan-targeted stress for the concurrent request pipeline: contended
// submit/verify/release traffic at QD16 with the maximum worker fan-out the
// clamp allows, hot-region read-after-write hammering, mid-stream flush
// barriers, and lifecycle churn (construct → drain → join, repeatedly).
// These also run in the normal suite as functional coverage; the AF_TSAN CI
// job runs this binary specifically, where the range-lock happens-before
// edge (writer release → reader eligibility) is what the sanitizer checks.
#include <gtest/gtest.h>

#include <cstdint>

#include "../helpers.h"
#include "ftl/request.h"
#include "sim/pipeline.h"
#include "ssd/config.h"

namespace af::sim {
namespace {

ssd::SsdConfig stress_config(std::uint32_t queue_depth,
                             std::uint32_t workers) {
  auto config = test::tiny_config();
  config.pipeline.queue_depth = queue_depth;
  config.pipeline.workers = workers;
  return config;
}

TEST(PipelineStress, ContendedMixedWorkloadWithMidstreamFlushes) {
  const auto config = stress_config(16, 4);
  const auto spp = config.geometry.sectors_per_page();
  // A quarter of the logical space: plenty of range overlap between
  // in-flight requests, so tickets queue behind each other constantly.
  test::WorkloadGen gen(config.logical_sectors() / 4 / spp * spp, spp, 97);
  SsdPipeline pipeline(config, ftl::SchemeKind::kAcrossFtl);
  for (int i = 0; i < 1500; ++i) {
    pipeline.submit(gen.next());
    if (i % 400 == 399) pipeline.flush();  // drain-and-refill churn
  }
  pipeline.drain();
  EXPECT_EQ(pipeline.submitted(), 1500u);
  EXPECT_EQ(pipeline.records().size(), 1500u);
  EXPECT_GT(pipeline.verified_sectors(), 0u);
}

TEST(PipelineStress, HotRegionRawHammer) {
  const auto config = stress_config(16, 4);
  const auto spp = config.geometry.sectors_per_page();
  SsdPipeline pipeline(config, ftl::SchemeKind::kMrsm);
  SimTime t = 0;
  // Two hot pages, every third request a write: deep shared FIFOs with an
  // exclusive ticket regularly cutting through, on both lock shards.
  for (int i = 0; i < 1200; ++i) {
    const std::uint64_t page = (i % 2 == 0) ? 3 : 11;
    pipeline.submit(
        {t++, /*write=*/(i % 3) == 0, SectorRange::of(page * spp, spp)});
  }
  pipeline.drain();
  EXPECT_EQ(pipeline.submitted(), 1200u);
  EXPECT_GT(pipeline.verified_sectors(), 0u);
}

TEST(PipelineStress, LifecycleChurnJoinsCleanly) {
  for (int round = 0; round < 6; ++round) {
    const auto config =
        stress_config(8, static_cast<std::uint32_t>(2 + round % 3));
    const auto spp = config.geometry.sectors_per_page();
    SsdPipeline pipeline(config, ftl::SchemeKind::kPageFtl);
    SimTime t = 0;
    for (std::uint64_t p = 0; p < 120; ++p) {
      pipeline.submit({t++, /*write=*/true, SectorRange::of(p * spp, spp)});
    }
    pipeline.drain();
    EXPECT_EQ(pipeline.submitted(), 120u);
    // Destructor joins the workers; the next round rebuilds everything.
  }
}

}  // namespace
}  // namespace af::sim

// Power-cut windows under the concurrent pipeline (DESIGN.md §10): a cut
// fired mid-run at QD16 must leave a mountable image whose recovered state
// matches every acknowledged write, with at most the one in-flight request's
// sectors readable at their pre-crash version. The pipeline abandons the
// queued-but-unserviced tail (those writes were never acknowledged and never
// stamped the oracle), so the post-mount sweep plus a host-style retry of
// the unexecuted requests must land the device back in a fully verified
// state — across all three schemes, with the checkpoint journal on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../helpers.h"
#include "ftl/request.h"
#include "nand/power.h"
#include "sim/pipeline.h"
#include "sim/ssd.h"
#include "ssd/config.h"
#include "ssd/recovery.h"

namespace af::sim {
namespace {

std::vector<ftl::IoRequest> churn_workload(const ssd::SsdConfig& config,
                                           std::size_t requests,
                                           std::uint64_t seed) {
  const auto spp = config.geometry.sectors_per_page();
  const std::uint64_t footprint = config.logical_pages() / 3;
  Rng rng(seed);
  std::vector<ftl::IoRequest> out;
  SimTime t = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    const bool write = rng.chance(0.75);
    out.push_back(
        {t++, write, SectorRange::of(rng.below(footprint) * spp, spp)});
  }
  return out;
}

void run_cut_and_recover(ftl::SchemeKind kind, std::uint64_t at_op,
                         std::uint64_t seed) {
  auto config = test::tiny_config();
  config.pipeline.queue_depth = 16;
  config.pipeline.workers = 3;
  config.checkpoint.interval_requests = 32;
  const auto reqs = churn_workload(config, 500, seed);

  SsdPipeline pipeline(config, kind);
  pipeline.device().engine().array().arm_power_cut(
      nand::PowerCutPlan{at_op, seed});

  bool crashed = false;
  try {
    for (const auto& req : reqs) pipeline.submit(req);
    pipeline.drain();
  } catch (const nand::PowerLoss& loss) {
    crashed = true;
    EXPECT_EQ(loss.op_index, at_op);
  }
  ASSERT_TRUE(crashed) << "cut op " << at_op << " beyond the trace horizon";
  EXPECT_TRUE(pipeline.crashed());
  EXPECT_EQ(pipeline.crash_op_index(), at_op);
  // The host keeps learning of the crash at every later interaction.
  EXPECT_THROW(pipeline.flush(), nand::PowerLoss);
  EXPECT_THROW(pipeline.submit(reqs.front()), nand::PowerLoss);

  // Tolerance window: only the interrupted write's extent may read back its
  // pre-submission stamps after the mount.
  const SectorRange inflight = pipeline.crash_inflight();
  const std::vector<std::uint64_t> pre_stamps = pipeline.crash_pre_stamps();
  const auto records = pipeline.records();  // copies before teardown
  const ssd::Oracle oracle_seed = *pipeline.device().oracle();

  ssd::RecoveryReport report;
  auto mounted = sim::Ssd::mount(config, kind,
                                 pipeline.device().release_flash(),
                                 &oracle_seed, &report);
  ASSERT_NE(mounted, nullptr);

  // Oracle-equivalence sweep, tolerating exactly the in-flight window.
  const std::uint32_t spp = mounted->scheme().page_geometry().sectors_per_page;
  const std::uint64_t logical_sectors = config.logical_sectors();
  std::uint64_t tolerated_sectors = 0;
  for (SectorAddr base = 0; base < logical_sectors; base += spp) {
    const SectorRange r = SectorRange::of(
        base, std::min<std::uint64_t>(spp, logical_sectors - base));
    ftl::ReadPlan plan;
    (void)mounted->scheme().read({0, /*write=*/false, r}, 0, &plan);
    ASSERT_EQ(plan.observed.size(), r.size());
    for (const auto& obs : plan.observed) {
      const std::uint64_t expected = mounted->oracle()->expected(obs.sector);
      if (obs.stamp == expected) continue;
      const bool tolerated =
          inflight.contains(obs.sector) &&
          obs.stamp == pre_stamps[obs.sector - inflight.begin];
      ASSERT_TRUE(tolerated)
          << "sector " << obs.sector << " stamp " << obs.stamp << " expected "
          << expected << " after cut at op " << at_op
          << " (completion-order violation surviving the crash)";
      mounted->oracle_mut()->force(obs.sector, obs.stamp);
      ++tolerated_sectors;
    }
  }
  // The tolerance window is bounded by one request.
  EXPECT_LE(tolerated_sectors, inflight.size());

  // Host-style retry: replay everything the pipeline never serviced (the
  // abandoned tail and the never-submitted remainder) on the mounted
  // device, then prove the whole logical space reads back verified.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (i < records.size() && records[i].executed) continue;
    (void)mounted->submit(reqs[i]);
  }
  test::verify_full_space(*mounted);
}

TEST(PipelineCrash, EarlyCutRecoversOnEveryScheme) {
  run_cut_and_recover(ftl::SchemeKind::kPageFtl, 40, 3);
  run_cut_and_recover(ftl::SchemeKind::kMrsm, 40, 5);
  run_cut_and_recover(ftl::SchemeKind::kAcrossFtl, 40, 7);
}

TEST(PipelineCrash, MidRunCutRecoversOnEveryScheme) {
  run_cut_and_recover(ftl::SchemeKind::kPageFtl, 260, 11);
  run_cut_and_recover(ftl::SchemeKind::kMrsm, 260, 13);
  run_cut_and_recover(ftl::SchemeKind::kAcrossFtl, 260, 17);
}

}  // namespace
}  // namespace af::sim

#include "common/stats.h"

#include <gtest/gtest.h>

namespace af {
namespace {

TEST(StreamingStats, Empty) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStats, Accumulates) {
  StreamingStats s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(StreamingStats, Merge) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(10.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);

  StreamingStats empty;
  a.merge(empty);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 3u);
}

TEST(LogHistogram, MeanExact) {
  LogHistogram h;
  h.add(100);
  h.add(300);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(LogHistogram, PercentileApproximatesBucket) {
  LogHistogram h;
  for (int i = 0; i < 99; ++i) h.add(1000);  // bucket [512,1024)
  h.add(1'000'000);
  // p50 lands in the 1000s bucket; approximation is the bucket midpoint.
  const double p50 = h.percentile(50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0 * 1.5);
  const double p100 = h.percentile(100);
  EXPECT_GT(p100, 500'000.0);
}

TEST(LogHistogram, ZeroBucket) {
  LogHistogram h;
  h.add(0);
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(LatencyRecorder, PerSectorNormalisation) {
  LatencyRecorder r;
  r.record(1000, 4);
  r.record(3000, 4);
  EXPECT_EQ(r.total_sectors(), 8u);
  EXPECT_DOUBLE_EQ(r.latency_per_sector(), 500.0);
  EXPECT_DOUBLE_EQ(r.latency().mean(), 2000.0);
}

TEST(LatencyRecorder, Merge) {
  LatencyRecorder a, b;
  a.record(100, 1);
  b.record(300, 3);
  a.merge(b);
  EXPECT_EQ(a.latency().count(), 2u);
  EXPECT_EQ(a.total_sectors(), 4u);
  EXPECT_DOUBLE_EQ(a.latency_per_sector(), 100.0);
}

}  // namespace
}  // namespace af

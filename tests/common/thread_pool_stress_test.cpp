// Stress tests aimed at ThreadSanitizer: contended submit/wait, exception
// paths under load, and the SlotVector happens-before edge (pool join →
// take). They also run in the normal suites, where they double as
// functional coverage; the AF_TSAN CI job runs this binary specifically.
//
// No raw std::thread here (af_lint forbids it outside src/common): the
// contention comes from nesting — an outer pool's workers hammer a shared
// inner pool.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/slot_vector.h"

namespace af {
namespace {

TEST(ThreadPoolStress, ContendedSubmitFromManyThreads) {
  ThreadPool inner(4);
  std::atomic<int> done{0};
  {
    ThreadPool outer(4);
    for (int p = 0; p < 4; ++p) {
      outer.submit([&inner, &done] {
        for (int i = 0; i < 250; ++i) {
          inner.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    outer.wait();
  }
  inner.wait();
  EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPoolStress, RepeatedSubmitWaitCyclesReuseThePool) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 64; ++i) {
      pool.submit([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();  // the join is the happens-before edge for this round
    EXPECT_EQ(total.load(), (round + 1) * 64);
  }
}

TEST(ThreadPoolStress, ExceptionUnderLoadIsRethrownOnceAndOnly) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    if (i == 57) {
      pool.submit([] { throw std::runtime_error("injected"); });
    } else {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The failing task aborts nothing: every other task still ran, and a
  // second wait() does not re-throw the already-delivered error.
  pool.wait();
  EXPECT_EQ(ran.load(), 199);
}

TEST(ThreadPoolStress, PoolIsCleanAfterAnExceptionRound) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("round 1"); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolStress, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait(): teardown must still run everything already queued.
  }
  EXPECT_EQ(done.load(), 500);
}

TEST(ThreadPoolStress, SlotVectorPutsFromParallelForAreRacefree) {
  // One non-atomic payload write per slot from many threads; the only
  // synchronisation is the pool join inside parallel_for. TSan validates
  // that edge; the value check validates the partitioning.
  constexpr std::uint64_t kN = 4096;
  SlotVector<std::uint64_t> slots(kN);
  parallel_for(kN, 8, [&slots](std::uint64_t i) { slots.put(i, i * i); });
  const auto values = std::move(slots).take();
  ASSERT_EQ(values.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_EQ(values[i], i * i);
}

TEST(ThreadPoolStress, NestedParallelForDoesNotDeadlock) {
  // Outer fan-out of 8, each spinning up its own small inner fan-out —
  // pools must be independent (no global queue to self-deadlock on).
  std::atomic<int> leaf{0};
  parallel_for(8, 4, [&leaf](std::uint64_t) {
    parallel_for(16, 2,
                 [&leaf](std::uint64_t) { leaf.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(leaf.load(), 8 * 16);
}

TEST(ThreadPoolStressDeathTest, SlotVectorDoubleWriteAborts) {
  SlotVector<int> slots(2);
  slots.put(0, 1);
  EXPECT_DEATH(slots.put(0, 2), "slot written twice");
}

TEST(ThreadPoolStressDeathTest, SlotVectorHoleAborts) {
  SlotVector<int> slots(2);
  slots.put(0, 1);
  EXPECT_DEATH((void)std::move(slots).take(), "slot never written");
}

}  // namespace
}  // namespace af

#include "common/types.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <unordered_set>

namespace af {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  Lpn lpn;
  EXPECT_FALSE(lpn.valid());
  Ppn ppn;
  EXPECT_FALSE(ppn.valid());
}

TEST(StrongId, ValueRoundTrip) {
  Lpn lpn{42};
  EXPECT_TRUE(lpn.valid());
  EXPECT_EQ(lpn.get(), 42u);
}

TEST(StrongId, Comparison) {
  EXPECT_EQ(Lpn{1}, Lpn{1});
  EXPECT_NE(Lpn{1}, Lpn{2});
  EXPECT_LT(Lpn{1}, Lpn{2});
}

TEST(StrongId, TypesAreDistinct) {
  static_assert(!std::is_convertible_v<Lpn, Ppn>);
  static_assert(!std::is_convertible_v<Ppn, Lpn>);
  static_assert(!std::is_convertible_v<std::uint64_t, Lpn>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<Lpn> set;
  set.insert(Lpn{1});
  set.insert(Lpn{1});
  set.insert(Lpn{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(TimeUnits, Ratios) {
  EXPECT_EQ(kUsec, 1'000u);
  EXPECT_EQ(kMsec, 1'000'000u);
  EXPECT_EQ(kSec, 1'000'000'000u);
  EXPECT_EQ(kSectorBytes, 512u);
}

}  // namespace
}  // namespace af

#include "common/interval.h"

#include <gtest/gtest.h>

namespace af {
namespace {

TEST(SectorRange, BasicProperties) {
  SectorRange r{10, 20};
  EXPECT_EQ(r.size(), 10u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(SectorRange{}.empty());
  EXPECT_EQ(SectorRange::of(100, 5), (SectorRange{100, 105}));
}

TEST(SectorRange, Contains) {
  SectorRange r{10, 20};
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(19));
  EXPECT_FALSE(r.contains(20));
  EXPECT_FALSE(r.contains(9));
  EXPECT_TRUE(r.contains(SectorRange{10, 20}));
  EXPECT_TRUE(r.contains(SectorRange{12, 15}));
  EXPECT_FALSE(r.contains(SectorRange{9, 15}));
  EXPECT_FALSE(r.contains(SectorRange{15, 21}));
  EXPECT_TRUE(r.contains(SectorRange{}));  // empty is contained everywhere
}

TEST(SectorRange, OverlapsAndTouches) {
  SectorRange r{10, 20};
  EXPECT_TRUE(r.overlaps({15, 25}));
  EXPECT_TRUE(r.overlaps({5, 11}));
  EXPECT_FALSE(r.overlaps({20, 30}));  // adjacent is not overlap
  EXPECT_FALSE(r.overlaps({0, 10}));
  EXPECT_TRUE(r.touches({20, 30}));  // adjacency counts as touching
  EXPECT_TRUE(r.touches({0, 10}));
  EXPECT_FALSE(r.touches({21, 30}));
  EXPECT_FALSE(r.touches({0, 9}));
}

TEST(SectorRange, Intersect) {
  SectorRange r{10, 20};
  EXPECT_EQ(r.intersect({15, 25}), (SectorRange{15, 20}));
  EXPECT_EQ(r.intersect({0, 12}), (SectorRange{10, 12}));
  EXPECT_TRUE(r.intersect({20, 30}).empty());
  EXPECT_EQ(r.intersect({10, 20}), r);
}

TEST(SectorRange, HullAndMerge) {
  SectorRange r{10, 20};
  EXPECT_EQ(r.hull({15, 25}), (SectorRange{10, 25}));
  EXPECT_EQ(r.hull({0, 5}), (SectorRange{0, 20}));  // hull spans gaps
  EXPECT_EQ(r.hull({}), r);

  EXPECT_EQ(r.merge({20, 30}), (SectorRange{10, 30}));  // adjacent merges
  EXPECT_EQ(r.merge({15, 25}), (SectorRange{10, 25}));
  EXPECT_EQ(r.merge({21, 30}), std::nullopt);  // gap: no merge
  EXPECT_EQ(r.merge({}), r);
}

TEST(SectorRange, Subtract) {
  SectorRange r{10, 20};
  {
    auto d = r.subtract({12, 15});
    EXPECT_EQ(d.left, (SectorRange{10, 12}));
    EXPECT_EQ(d.right, (SectorRange{15, 20}));
  }
  {
    auto d = r.subtract({0, 15});
    EXPECT_TRUE(d.left.empty());
    EXPECT_EQ(d.right, (SectorRange{15, 20}));
  }
  {
    auto d = r.subtract({15, 30});
    EXPECT_EQ(d.left, (SectorRange{10, 15}));
    EXPECT_TRUE(d.right.empty());
  }
  {
    auto d = r.subtract({10, 20});
    EXPECT_TRUE(d.left.empty() && d.right.empty());
  }
  {
    auto d = r.subtract({30, 40});  // disjoint: everything survives
    EXPECT_EQ(d.left, r);
    EXPECT_TRUE(d.right.empty());
  }
}

// Property sweep: subtract + intersect partition the range.
class IntervalProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalProperty, SubtractIntersectPartition) {
  const int i = GetParam();
  const SectorRange a{10, 26};
  const SectorRange b{static_cast<SectorAddr>(i), static_cast<SectorAddr>(i + 7)};
  const auto d = a.subtract(b);
  const auto inter = a.intersect(b);
  EXPECT_EQ(d.left.size() + d.right.size() + inter.size(), a.size());
  if (!d.left.empty()) {
    EXPECT_TRUE(a.contains(d.left));
  }
  if (!d.right.empty()) {
    EXPECT_TRUE(a.contains(d.right));
  }
  if (!d.left.empty() && !inter.empty()) {
    EXPECT_LE(d.left.end, inter.begin);
  }
  if (!d.right.empty() && !inter.empty()) {
    EXPECT_GE(d.right.begin, inter.end);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalProperty, ::testing::Range(0, 32));

TEST(PageGeometry, LpnMapping) {
  PageGeometry geom{16};
  EXPECT_EQ(geom.lpn_of(0), Lpn{0});
  EXPECT_EQ(geom.lpn_of(15), Lpn{0});
  EXPECT_EQ(geom.lpn_of(16), Lpn{1});
  EXPECT_EQ(geom.page_range(Lpn{2}), (SectorRange{32, 48}));
  auto [first, last] = geom.lpn_span({10, 40});
  EXPECT_EQ(first, Lpn{0});
  EXPECT_EQ(last, Lpn{2});
  EXPECT_EQ(geom.pages_touched({10, 40}), 3u);
  EXPECT_EQ(geom.pages_touched({16, 32}), 1u);
  EXPECT_EQ(geom.pages_touched({}), 0u);
}

TEST(PageGeometry, AcrossPageClassification) {
  PageGeometry geom{16};
  // Figure 1's cases (sectors: page = 16).
  EXPECT_FALSE(geom.is_across_page(SectorRange::of(0, 48)));   // aligned 24K
  EXPECT_FALSE(geom.is_across_page(SectorRange::of(8, 40)));   // unaligned 20K, 3 pages
  EXPECT_TRUE(geom.is_across_page(SectorRange::of(8, 16)));    // across 8K
  EXPECT_TRUE(geom.is_across_page(SectorRange::of(15, 2)));    // minimal across
  EXPECT_FALSE(geom.is_across_page(SectorRange::of(0, 16)));   // aligned page
  EXPECT_FALSE(geom.is_across_page(SectorRange::of(4, 8)));    // inside one page
  EXPECT_FALSE(geom.is_across_page(SectorRange::of(8, 24)));   // > page size
  EXPECT_FALSE(geom.is_across_page(SectorRange{}));
}

TEST(PageGeometry, AcrossDependsOnPageSize) {
  // A 4 KiB request at offset 1030 KiB (Figure 1's write(1028K, 8K) analog):
  // across at 8 KiB pages, not across at 16 KiB pages (fits), different at 4K.
  const SectorRange r = SectorRange::of(2060, 8);  // 4 KiB at 1030 KiB
  EXPECT_TRUE(PageGeometry{16}.is_across_page(r));
  EXPECT_TRUE(PageGeometry{32}.is_across_page(r) ==
              (2060 / 32 != 2067 / 32));
  EXPECT_TRUE(PageGeometry{8}.is_across_page(r) == (2060 / 8 != 2067 / 8));
}

TEST(PageGeometry, Alignment) {
  PageGeometry geom{16};
  EXPECT_TRUE(geom.is_aligned(SectorRange::of(0, 16)));
  EXPECT_TRUE(geom.is_aligned(SectorRange::of(32, 64)));
  EXPECT_FALSE(geom.is_aligned(SectorRange::of(8, 16)));
  EXPECT_FALSE(geom.is_aligned(SectorRange::of(0, 8)));
}

}  // namespace
}  // namespace af

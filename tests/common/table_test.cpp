#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace af {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(Table, ColumnsWidenToContent) {
  Table t({"x"});
  t.add_row({"longer-than-header"});
  std::ostringstream os;
  os << t;
  EXPECT_NE(os.str().find("| longer-than-header |"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(std::uint64_t{123456}), "123456");
  EXPECT_EQ(Table::percent(0.1234), "12.3%");
  EXPECT_EQ(Table::percent(0.5, 0), "50%");
}

TEST(TableDeathTest, RowArityMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row arity mismatch");
}

}  // namespace
}  // namespace af

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace af {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnceSequential) {
  std::vector<int> hits(100, 0);
  parallel_for(hits.size(), 1, [&](std::uint64_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnceParallel) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), 4, [&](std::uint64_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, MoreJobsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(hits.size(), 16, [&](std::uint64_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroItemsIsANoop) {
  parallel_for(0, 4, [](std::uint64_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SequentialRunsInIndexOrder) {
  std::vector<std::uint64_t> order;
  parallel_for(10, 1, [&](std::uint64_t i) { order.push_back(i); });
  for (std::uint64_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, WaitRethrowsWorkerException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, WaitDrainsAllSubmittedWork) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { ++done; });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace af

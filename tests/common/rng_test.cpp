#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace af {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.between(3, 8);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(ZipfSampler, SkewsTowardLowRanks) {
  Rng rng(17);
  ZipfSampler zipf(100, 0.99);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50'000; ++i) ++counts[zipf.sample(rng)];
  // Rank 0 must dominate rank 50 heavily under theta≈1.
  EXPECT_GT(counts[0], 10 * std::max(1, counts[50]));
  for (const auto& [rank, n] : counts) EXPECT_LT(rank, 100u);
}

TEST(ZipfSampler, ThetaZeroIsUniform) {
  Rng rng(19);
  ZipfSampler zipf(10, 0.0);
  std::map<std::uint64_t, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (int r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::uint64_t>(r)]) / n,
                0.1, 0.02);
  }
}

TEST(WeightedSampler, RespectsWeights) {
  Rng rng(23);
  WeightedSampler<int> sampler;
  sampler.add(1, 1.0);
  sampler.add(2, 3.0);
  std::map<int, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(WeightedSampler, ZeroWeightNeverSampled) {
  Rng rng(29);
  WeightedSampler<int> sampler;
  sampler.add(1, 1.0);
  sampler.add(2, 0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.sample(rng), 1);
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

}  // namespace
}  // namespace af

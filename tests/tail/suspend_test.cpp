// Program/erase suspend-resume state machine (tail subsystem, DESIGN.md §11):
// the timeline's preemption algebra — a foreground read slicing into an
// in-flight background op's window — and the per-chip suspend-slot
// bookkeeping on the flash array.
#include <gtest/gtest.h>

#include "nand/flash_array.h"
#include "ssd/timeline.h"

namespace af::ssd {
namespace {

nand::Geometry two_channel() {
  nand::Geometry g;
  g.channels = 2;
  g.chips_per_channel = 2;
  g.dies_per_chip = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 4;
  g.pages_per_block = 4;
  g.page_bytes = 8192;
  return g;
}

nand::Timing fixed_timing() {
  nand::Timing t;
  t.read_ns = 100;
  t.program_ns = 1000;
  t.erase_ns = 5000;
  t.transfer_ns_per_page = 10;
  t.suspend_resume_ns = 40;
  return t;
}

nand::SuspendSlot slot_over(nand::SuspendSlot::Kind kind,
                            ResourceTimeline::Span span) {
  nand::SuspendSlot slot;
  slot.kind = kind;
  slot.start = span.start;
  slot.end = span.done;
  slot.front = span.start;
  return slot;
}

TEST(Suspend, PreemptingReadSlicesIntoEraseWindow) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  const auto span = tl.schedule_erase_span({0, 0, 0, 0, 0, 0}, 0);
  EXPECT_EQ(span.start, 0u);
  EXPECT_EQ(span.done, 5000u);
  auto slot = slot_over(nand::SuspendSlot::Kind::kErase, span);

  const auto pre =
      tl.schedule_preempting_read({0, 0, 0, 0, 0, 1}, 200, 1.0, slot, 40);
  // The read senses immediately at its ready time — not at the erase's
  // completion — then pays the channel transfer.
  EXPECT_EQ(pre.done, 200u + 100 + 10);
  // The victim loses the chip for the sensing window and pays the resume
  // re-ramp on top.
  EXPECT_EQ(pre.victim_done, 5000u + 100 + 40);
  EXPECT_EQ(slot.end, pre.victim_done);
  // The suspension front advances to the sense end: the chip admits no
  // second preempting read earlier than that.
  EXPECT_EQ(slot.front, 300u);
  // Ordinary ops queue behind the pushed-out victim, not the original end.
  EXPECT_EQ(tl.chip_free_at(0), pre.victim_done);
}

TEST(Suspend, StackedPreemptionsSerializeOnTheSuspendFront) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  const auto span = tl.schedule_erase_span({0, 0, 0, 0, 0, 0}, 0);
  auto slot = slot_over(nand::SuspendSlot::Kind::kErase, span);

  const auto first =
      tl.schedule_preempting_read({0, 0, 0, 0, 0, 1}, 100, 1.0, slot, 40);
  EXPECT_EQ(first.done, 100u + 100 + 10);
  EXPECT_EQ(slot.front, 200u);

  // A second read ready at the same instant cannot sense concurrently: it
  // waits for the first suspension's sense window to drain (slot.front).
  const auto second =
      tl.schedule_preempting_read({0, 0, 0, 0, 0, 2}, 100, 1.0, slot, 40);
  EXPECT_EQ(second.done, 200u + 100 + 10);
  EXPECT_EQ(slot.front, 300u);
  // Each suspension charges the victim its sensing time plus one resume
  // overhead — the push-outs accumulate.
  EXPECT_EQ(second.victim_done, 5000u + 2 * (100 + 40));
  EXPECT_EQ(tl.chip_free_at(0), second.victim_done);
}

TEST(Suspend, SlowFactorScalesOnlyTheSense) {
  ResourceTimeline tl(two_channel(), fixed_timing());
  const auto span = tl.schedule_program_span({0, 0, 0, 0, 0, 0}, 0);
  auto slot = slot_over(nand::SuspendSlot::Kind::kProgram, span);
  const auto pre =
      tl.schedule_preempting_read({0, 0, 0, 0, 0, 1}, span.start, 3.0, slot, 40);
  // Sense is 3x slower (fail-slow die); the channel transfer is unaffected.
  EXPECT_EQ(pre.done, span.start + 300 + 10);
  EXPECT_EQ(pre.victim_done, span.done + 300 + 40);
}

TEST(Suspend, SlotLifecycleArmsOverwritesAndDisarms) {
  nand::FlashArray array(two_channel());
  // Nothing armed: every chip reports no suspendable op.
  for (std::uint64_t chip = 0; chip < 4; ++chip) {
    EXPECT_EQ(array.suspend_slot(chip), nullptr);
  }

  array.arm_suspendable(1, nand::SuspendSlot::Kind::kErase, 100, 5100);
  nand::SuspendSlot* slot = array.suspend_slot(1);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->kind, nand::SuspendSlot::Kind::kErase);
  EXPECT_EQ(slot->start, 100u);
  EXPECT_EQ(slot->end, 5100u);
  EXPECT_EQ(slot->front, 100u);
  EXPECT_EQ(slot->suspends, 0u);
  EXPECT_EQ(array.suspend_slot(0), nullptr);  // per-chip isolation

  // The engine mutates the slot through the pointer; the array keeps it.
  slot->suspends = 3;
  EXPECT_EQ(array.suspend_slot(1)->suspends, 3u);

  // Re-arming (a newer background op on the same chip) resets everything.
  array.arm_suspendable(1, nand::SuspendSlot::Kind::kProgram, 6000, 8000);
  slot = array.suspend_slot(1);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->kind, nand::SuspendSlot::Kind::kProgram);
  EXPECT_EQ(slot->suspends, 0u);
  EXPECT_EQ(slot->front, 6000u);

  array.disarm_suspendable(1);
  EXPECT_EQ(array.suspend_slot(1), nullptr);
}

}  // namespace
}  // namespace af::ssd

// Deadline-driven tail machinery end-to-end (DESIGN.md §11): bit-identity
// when the subsystem is unarmed or armed-but-never-triggered, the
// retry-backoff ladder + sick-die quarantine rescuing a fail-slow trace
// without a single kDeadlineExceeded, hedged parity-reconstruct reads
// preserving oracle correctness, the ceiling/nesting starvation guards, and
// open-loop queue-delay accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../helpers.h"
#include "nand/power.h"
#include "trace/profiles.h"
#include "trace/replayer.h"
#include "trace/synth.h"

namespace af {
namespace {

constexpr ftl::SchemeKind kSchemes[] = {
    ftl::SchemeKind::kPageFtl, ftl::SchemeKind::kMrsm,
    ftl::SchemeKind::kAcrossFtl};

/// One of four dies cycling through 20x fail-slow episodes. Four dies (not
/// tiny's two) so quarantine steering has spare capacity to steer into —
/// walling off half a device wedges GC long before latency matters.
ssd::SsdConfig sick_config() {
  auto config = test::tiny_config();
  config.geometry.chips_per_channel = 2;
  config.faults.slow_multiplier = 20.0;
  config.faults.slow_episode_ops = 300;
  config.faults.slow_gap_ops = 600;
  config.faults.slow_dies = 1;
  return config;
}

TEST(Deadline, ArmedButNeverTriggeredIsBitIdentical) {
  // A deadline so large no request can bust it must leave every completion
  // time untouched: the ledger is pure bookkeeping until a miss actually
  // fires (hedging stays off — it legitimately changes placement).
  for (const auto kind : kSchemes) {
    const auto plain = test::tiny_config();
    auto armed = plain;
    armed.deadline.read_deadline_us = 1'000'000'000;   // ~17 simulated min
    armed.deadline.write_deadline_us = 1'000'000'000;
    armed.deadline.preempt = true;
    armed.deadline.quarantine_misses = 1'000'000;
    sim::Ssd a(plain, kind);
    sim::Ssd b(armed, kind);
    test::WorkloadGen gen_a(plain.logical_sectors(),
                            plain.geometry.sectors_per_page(), 7);
    test::WorkloadGen gen_b(plain.logical_sectors(),
                            plain.geometry.sectors_per_page(), 7);
    for (int i = 0; i < 1500; ++i) {
      const auto done_a = test::submit_ok(a, gen_a.next()).done;
      const auto done_b = test::submit_ok(b, gen_b.next()).done;
      ASSERT_EQ(done_a, done_b) << "request " << i;
    }
    const auto& tail = b.engine().stats().tail();
    EXPECT_EQ(tail.erase_suspends + tail.program_suspends, 0u);
    EXPECT_EQ(tail.deadline_misses, 0u);
    EXPECT_EQ(tail.deadline_retries, 0u);
    EXPECT_EQ(tail.deadline_exceeded, 0u);
    EXPECT_EQ(tail.quarantines, 0u);
  }
}

TEST(Deadline, RetryLadderAndQuarantineEliminateDeadlineExceeded) {
  // A sick die stretches reads past their budget; preemption, the retry
  // ladder and quarantine steering together must rescue every one of them —
  // the trace completes with zero kDeadlineExceeded, every read
  // oracle-verified.
  for (const auto kind : kSchemes) {
    auto config = sick_config();
    config.deadline.read_deadline_us = 30'000;
    config.deadline.max_retries = 4;
    config.deadline.retry_backoff_us = 500;
    config.deadline.preempt = true;
    config.deadline.quarantine_misses = 3;
    sim::Ssd ssd(config, kind);
    test::WorkloadGen gen(config.logical_sectors(),
                          config.geometry.sectors_per_page(), 11);
    for (int i = 0; i < 2500; ++i) {
      const auto completion = test::submit_ok(ssd, gen.next());
      ASSERT_NE(completion.status, ssd::Status::kDeadlineExceeded)
          << "request " << i;
    }
    test::verify_full_space(ssd);
    const auto& tail = ssd.engine().stats().tail();
    EXPECT_EQ(tail.deadline_exceeded, 0u);
    // The machinery must actually have been exercised, not trivially green.
    EXPECT_GT(tail.deadline_misses, 0u);
    EXPECT_GT(tail.deadline_retries, 0u);
    EXPECT_GT(tail.quarantines, 0u);
  }
}

TEST(Deadline, RetryLadderSurvivesPowerCut) {
  // Power dies mid-trace while the deadline subsystem is armed over a sick
  // die; the mounted image must verify (only the interrupted write may
  // legitimately roll back) and keep serving under the same armed config.
  for (const auto kind : kSchemes) {
    auto config = sick_config();
    config.deadline.read_deadline_us = 30'000;
    config.deadline.max_retries = 4;
    config.deadline.retry_backoff_us = 500;
    config.deadline.preempt = true;
    config.deadline.quarantine_misses = 3;
    auto ssd = std::make_unique<sim::Ssd>(config, kind);
    test::WorkloadGen gen(config.logical_sectors(),
                          config.geometry.sectors_per_page(), 13);
    // Warm up so the cut lands on a device with live data and GC debt.
    for (int i = 0; i < 600; ++i) (void)test::submit_ok(*ssd, gen.next());
    ssd->engine().array().arm_power_cut({/*at_op=*/250, /*seed=*/5});

    bool crashed = false;
    SectorRange inflight{};
    std::vector<std::uint64_t> pre_stamps;
    try {
      for (int i = 0; i < 2000; ++i) {
        const auto req = gen.next();
        pre_stamps.clear();
        if (req.write) {
          for (SectorAddr s = req.range.begin; s < req.range.end; ++s) {
            pre_stamps.push_back(ssd->oracle()->expected(s));
          }
          inflight = req.range;
        } else {
          inflight = SectorRange{};
        }
        (void)ssd->submit(req);
      }
    } catch (const nand::PowerLoss&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);

    // crash_mount re-reads every logical sector against the oracle.
    auto mounted =
        test::crash_mount(std::move(ssd), config, kind, inflight, pre_stamps);
    SimTime t = 1'000'000'000'000;
    const std::uint32_t spp = config.geometry.sectors_per_page();
    for (int i = 0; i < 200; ++i) {
      const auto completion = test::submit_ok(
          *mounted,
          {t, i % 3 != 0, SectorRange::of((i % 64) * spp, spp)});
      t = completion.done + 1000;
    }
  }
}

TEST(Deadline, HedgedReadsPreserveOracleCorrectness) {
  // Aggressive hedging over parity stripes on a sick device: peer payloads
  // XOR to the primary's, so whichever side wins the race the data is the
  // same — every read still verifies against the oracle.
  for (const auto kind : kSchemes) {
    auto config = sick_config();
    config.integrity.parity_stripe_width = 4;
    config.deadline.read_deadline_us = 30'000;
    config.deadline.max_retries = 0;
    config.deadline.hedge_after_us = 200;
    sim::Ssd ssd(config, kind);
    test::WorkloadGen gen(config.logical_sectors(),
                          config.geometry.sectors_per_page(), 17);
    for (int i = 0; i < 2000; ++i) (void)test::submit_ok(ssd, gen.next());
    test::verify_full_space(ssd);
    EXPECT_GT(ssd.engine().stats().tail().hedged_reads, 0u);
  }
}

TEST(Deadline, SuspendCeilingZeroRefusesEveryPreemption) {
  // Ceiling 0 is the degenerate starvation guard: every preemption attempt
  // is refused (the victim always runs to completion), counted, and no
  // suspension ever happens.
  auto config = sick_config();
  config.deadline.read_deadline_us = 500;
  config.deadline.max_retries = 0;
  config.deadline.preempt = true;
  config.deadline.suspend_ceiling = 0;
  sim::Ssd ssd(config, ftl::SchemeKind::kPageFtl);
  test::WorkloadGen gen(config.logical_sectors(),
                        config.geometry.sectors_per_page(), 19);
  for (int i = 0; i < 2000; ++i) (void)test::submit_ok(ssd, gen.next());
  const auto& tail = ssd.engine().stats().tail();
  EXPECT_GT(tail.suspend_ceiling_hits, 0u);
  EXPECT_EQ(tail.erase_suspends + tail.program_suspends, 0u);
}

TEST(Deadline, NestingCapZeroRefusesEveryPreemption) {
  // Nesting cap 0: even the first stacked read (depth 1) exceeds the cap,
  // so preemptions are refused through the other guard.
  auto config = sick_config();
  config.deadline.read_deadline_us = 500;
  config.deadline.max_retries = 0;
  config.deadline.preempt = true;
  config.deadline.suspend_nesting_cap = 0;
  sim::Ssd ssd(config, ftl::SchemeKind::kPageFtl);
  test::WorkloadGen gen(config.logical_sectors(),
                        config.geometry.sectors_per_page(), 19);
  for (int i = 0; i < 2000; ++i) (void)test::submit_ok(ssd, gen.next());
  const auto& tail = ssd.engine().stats().tail();
  EXPECT_GT(tail.suspend_nesting_hits, 0u);
  EXPECT_EQ(tail.erase_suspends + tail.program_suspends, 0u);
}

TEST(Deadline, DefaultGuardsAdmitSuspensions) {
  // With the default ceiling/nesting caps the same workload actually
  // suspends background ops — the guards bound preemption, not forbid it.
  auto config = sick_config();
  config.deadline.read_deadline_us = 500;
  config.deadline.max_retries = 0;
  config.deadline.preempt = true;
  sim::Ssd ssd(config, ftl::SchemeKind::kPageFtl);
  test::WorkloadGen gen(config.logical_sectors(),
                        config.geometry.sectors_per_page(), 19);
  for (int i = 0; i < 2000; ++i) (void)test::submit_ok(ssd, gen.next());
  const auto& tail = ssd.engine().stats().tail();
  EXPECT_GT(tail.erase_suspends + tail.program_suspends, 0u);
  EXPECT_GT(tail.resume_overhead_ns, 0u);
}

TEST(Deadline, OpenLoopReportsQueueDelaySeparately) {
  // Open-loop arrivals: the queue-delay decomposition is populated, the
  // simulated numbers are deterministic across runs, and closed-loop runs
  // of the same trace keep their delay identically zero.
  auto config = test::tiny_config();
  config.pipeline.queue_depth = 4;
  config.pipeline.open_loop = true;
  auto profile = trace::lun_profile(0, /*request_override=*/1200);
  const auto tr = trace::generate(profile, config.logical_sectors());

  const auto first =
      trace::replay_pipeline(config, ftl::SchemeKind::kPageFtl, tr);
  EXPECT_TRUE(first.open_loop);
  EXPECT_GT(first.makespan_ns, 0u);
  EXPECT_FALSE(first.queue_delay.empty());
  EXPECT_FALSE(first.service.empty());

  const auto second =
      trace::replay_pipeline(config, ftl::SchemeKind::kPageFtl, tr);
  EXPECT_EQ(first.makespan_ns, second.makespan_ns);
  EXPECT_EQ(first.queue_delay.p99_ns(), second.queue_delay.p99_ns());
  EXPECT_EQ(first.service.p99_ns(), second.service.p99_ns());

  auto closed = config;
  closed.pipeline.open_loop = false;
  const auto base =
      trace::replay_pipeline(closed, ftl::SchemeKind::kPageFtl, tr);
  EXPECT_FALSE(base.open_loop);
  // Closed-loop ignores trace arrivals: delay is recorded as identically 0.
  EXPECT_EQ(base.queue_delay.max_ns(), 0.0);
}

}  // namespace
}  // namespace af

#include "trace/characterize.h"

#include <gtest/gtest.h>

namespace af::trace {
namespace {

TEST(Characterize, EmptyTrace) {
  const auto stats = characterize({}, 16);
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.write_ratio, 0.0);
  EXPECT_EQ(stats.avg_write_kb, 0.0);
}

TEST(Characterize, CountsAndRatios) {
  Trace trace = {
      {0, true, 0, 16},    // aligned write, 8 KB
      {1, true, 12, 8},    // across write, 4 KB
      {2, false, 0, 16},   // aligned read
      {3, false, 30, 4},   // across read
  };
  const auto stats = characterize(trace, 16);
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.writes, 2u);
  EXPECT_DOUBLE_EQ(stats.write_ratio, 0.5);
  EXPECT_EQ(stats.across_requests, 2u);
  EXPECT_DOUBLE_EQ(stats.across_ratio, 0.5);
  EXPECT_DOUBLE_EQ(stats.avg_write_kb, (8.0 + 4.0) / 2);
  EXPECT_DOUBLE_EQ(stats.avg_read_kb, (8.0 + 2.0) / 2);
  EXPECT_EQ(stats.unaligned_requests, 2u);
  EXPECT_EQ(stats.max_sector, 34u);
}

TEST(Characterize, AcrossRatioDependsOnPageSize) {
  // 4 KiB request at sector offset 12: across at 8 KiB pages (16 sectors),
  // not across at 16 KiB pages (fits page 0: [0,32)), across at 4 KiB pages?
  // [12, 20) with 8-sector pages spans pages 1 and 2 and size == page → yes.
  Trace trace = {{0, true, 12, 8}};
  EXPECT_EQ(characterize(trace, 16).across_requests, 1u);
  EXPECT_EQ(characterize(trace, 32).across_requests, 0u);
  EXPECT_EQ(characterize(trace, 8).across_requests, 1u);
}

TEST(Characterize, LargerPagesReduceAcrossRatio) {
  // The Figure 13 trend: with fixed byte offsets, the across ratio falls as
  // the page grows.
  Trace trace;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    trace.push_back({i, true, 5 + i * 37, 8});  // 4 KiB, scattered offsets
  }
  const double r4k = characterize(trace, 8).across_ratio;
  const double r8k = characterize(trace, 16).across_ratio;
  const double r16k = characterize(trace, 32).across_ratio;
  EXPECT_GT(r4k, r8k);
  EXPECT_GT(r8k, r16k);
}

}  // namespace
}  // namespace af::trace

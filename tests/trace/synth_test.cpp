#include "trace/synth.h"

#include <gtest/gtest.h>

#include "trace/characterize.h"

namespace af::trace {
namespace {

constexpr std::uint64_t kSpace = 1 << 22;  // 2 GiB of sectors

SynthProfile basic_profile() {
  SynthProfile profile;
  profile.name = "test";
  profile.requests = 20'000;
  profile.write_ratio = 0.5;
  profile.write_sizes = SizeMix::around_mean(20);
  profile.read_sizes = SizeMix::around_mean(24);
  profile.across_bias = 0.25;
  profile.seed = 77;
  return profile;
}

TEST(SizeMix, MeanHitsTarget) {
  for (double target : {12.0, 20.0, 32.0, 48.0}) {
    EXPECT_NEAR(SizeMix::around_mean(target).mean(), target, 0.5);
  }
}

TEST(SizeMix, ClampsExtremeTargets) {
  EXPECT_GT(SizeMix::around_mean(1.0).mean(), 8.0);
  EXPECT_LT(SizeMix::around_mean(500.0).mean(), 60.0);
}

TEST(Synth, Deterministic) {
  const auto a = generate(basic_profile(), kSpace);
  const auto b = generate(basic_profile(), kSpace);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].sectors, b[i].sectors);
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    EXPECT_EQ(a[i].write, b[i].write);
  }
}

TEST(Synth, DifferentSeedsDiffer) {
  auto profile = basic_profile();
  const auto a = generate(profile, kSpace);
  profile.seed = 78;
  const auto b = generate(profile, kSpace);
  int same = 0;
  for (std::size_t i = 0; i < 100; ++i) same += (a[i].offset == b[i].offset);
  EXPECT_LT(same, 50);
}

TEST(Synth, StaysInBounds) {
  const auto trace = generate(basic_profile(), kSpace);
  for (const auto& rec : trace) {
    EXPECT_GT(rec.sectors, 0u);
    EXPECT_LE(rec.range().end, kSpace);
  }
}

TEST(Synth, TimestampsMonotonic) {
  const auto trace = generate(basic_profile(), kSpace);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].timestamp, trace[i - 1].timestamp);
  }
}

TEST(Synth, HitsRequestCount) {
  EXPECT_EQ(generate(basic_profile(), kSpace).size(), 20'000u);
}

TEST(Synth, AcrossRatioTracksBias) {
  auto profile = basic_profile();
  for (double bias : {0.05, 0.15, 0.30}) {
    profile.across_bias = bias;
    const auto trace = generate(profile, kSpace);
    const auto stats = characterize(trace, 16);
    EXPECT_NEAR(stats.across_ratio, bias, 0.05) << "bias=" << bias;
  }
}

TEST(Synth, WriteRatioTracksProfile) {
  auto profile = basic_profile();
  profile.write_ratio = 0.7;
  const auto stats = characterize(generate(profile, kSpace), 16);
  EXPECT_NEAR(stats.write_ratio, 0.7, 0.02);
}

TEST(Synth, ZipfSkewConcentratesAccesses) {
  auto profile = basic_profile();
  profile.zipf_theta = 1.2;
  profile.seq_fraction = 0;
  const auto trace = generate(profile, kSpace);
  // Count accesses landing in the hottest 10% of the footprint: with heavy
  // skew it must be far above the uniform 10%.
  std::uint64_t max_seen = 0;
  for (const auto& rec : trace) max_seen = std::max(max_seen, rec.range().end);
  std::uint64_t hot = 0;
  for (const auto& rec : trace) hot += (rec.offset < max_seen / 10);
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(trace.size()), 0.3);
}

TEST(Synth, UpdatesOverlapRecentAcrossWrites) {
  auto profile = basic_profile();
  // update_fraction is the share of *across* traffic that re-targets recent
  // across writes, so raise both knobs for a visible overlap rate.
  profile.across_bias = 0.5;
  profile.update_fraction = 0.5;
  profile.write_ratio = 1.0;
  const auto trace = generate(profile, kSpace);
  // At least some consecutive writes must overlap (update traffic).
  std::uint64_t overlaps = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    // The generator's re-target ring holds the last 128 across writes, which
    // can be several hundred requests back; scan a generous window.
    for (std::size_t j = i >= 512 ? i - 512 : 0; j < i; ++j) {
      if (trace[i].range().overlaps(trace[j].range())) {
        ++overlaps;
        break;
      }
    }
  }
  EXPECT_GT(overlaps, trace.size() / 10);
}

}  // namespace
}  // namespace af::trace

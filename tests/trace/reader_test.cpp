#include "trace/reader.h"

#include <gtest/gtest.h>

#include <sstream>

namespace af::trace {
namespace {

TEST(SystorReader, ParsesBasicRecords) {
  std::stringstream in(
      "1455592568.123,0.001,R,2,1052672,8192\n"
      "1455592568.223,0.002,W,2,4096,4608\n");
  std::uint64_t skipped = 0;
  const Trace trace = read_systor_csv(in, &skipped);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(skipped, 0u);

  EXPECT_FALSE(trace[0].write);
  EXPECT_EQ(trace[0].timestamp, 0u);  // normalised to trace start
  EXPECT_EQ(trace[0].offset, 1052672u / 512);
  EXPECT_EQ(trace[0].sectors, 16u);

  EXPECT_TRUE(trace[1].write);
  EXPECT_NEAR(static_cast<double>(trace[1].timestamp), 0.1e9, 1e6);
  EXPECT_EQ(trace[1].offset, 8u);
  EXPECT_EQ(trace[1].sectors, 9u);  // 4608 B rounds up to 9 sectors
}

TEST(SystorReader, ByteOffsetsNotSectorAlignedRoundCorrectly) {
  // offset 1000 B, size 600 B: spans sectors [1, 4) → sector 1, 3 sectors?
  // floor(1000/512)=1; bytes 1000..1600 cover sectors 1..3 inclusive:
  // (1000%512 + 600 + 511)/512 = (488+600+511)/512 = 3.
  std::stringstream in("0.0,0,W,0,1000,600\n");
  const Trace trace = read_systor_csv(in);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].offset, 1u);
  EXPECT_EQ(trace[0].sectors, 3u);
}

TEST(SystorReader, SkipsMalformedLines) {
  std::stringstream in(
      "garbage\n"
      "1.0,0,X,0,0,4096\n"        // bad iotype
      "1.0,0,W,0,zero,4096\n"     // bad offset
      "1.0,0,W,0,0,0\n"           // zero size
      "# comment\n"
      "2.0,0,W,0,0,4096\n");
  std::uint64_t skipped = 0;
  const Trace trace = read_systor_csv(in, &skipped);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(skipped, 4u);
}

TEST(NativeFormat, RoundTrips) {
  Trace original = {
      {0, true, 100, 16},
      {5000, false, 2056, 12},
      {9999, true, 0, 1},
  };
  std::stringstream buffer;
  write_native(buffer, original);
  const Trace parsed = read_native(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].write, original[i].write);
    EXPECT_EQ(parsed[i].offset, original[i].offset);
    EXPECT_EQ(parsed[i].sectors, original[i].sectors);
    EXPECT_EQ(parsed[i].timestamp, original[i].timestamp);
  }
}

TEST(NativeFormat, SkipsBadLines) {
  std::stringstream in(
      "W 0 16 0\n"
      "Q 0 16 0\n"
      "W 0 0 0\n"
      "R 32\n");
  std::uint64_t skipped = 0;
  const Trace trace = read_native(in, &skipped);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(skipped, 3u);
}

TEST(MsrReader, ParsesBasicRecords) {
  // timestamp(filetime 100ns ticks), host, disk, type, offset(B), size(B), resp
  std::stringstream in(
      "128166372003061629,usr,0,Read,1052672,8192,551\n"
      "128166372013061629,usr,0,Write,4096,4608,441\n");
  std::uint64_t skipped = 0;
  const Trace trace = read_msr_csv(in, &skipped);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(skipped, 0u);

  EXPECT_FALSE(trace[0].write);
  EXPECT_EQ(trace[0].timestamp, 0u);
  EXPECT_EQ(trace[0].offset, 1052672u / 512);
  EXPECT_EQ(trace[0].sectors, 16u);

  EXPECT_TRUE(trace[1].write);
  // 10^7 ticks apart = 1 s = 1e9 ns.
  EXPECT_EQ(trace[1].timestamp, 1'000'000'000u);
  EXPECT_EQ(trace[1].sectors, 9u);
}

TEST(MsrReader, SkipsMalformedLines) {
  std::stringstream in(
      "1,usr,0,Flush,0,4096,1\n"     // unknown type
      "x,usr,0,Write,0,4096,1\n"     // bad timestamp
      "1,usr,0,Write,0,0,1\n"        // zero size
      "2,usr,0,Write,0,4096,1\n");
  std::uint64_t skipped = 0;
  const Trace trace = read_msr_csv(in, &skipped);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(skipped, 3u);
}

TEST(ReadFile, MissingFileReturnsEmpty) {
  EXPECT_TRUE(read_file("/nonexistent/path/trace.csv").empty());
}

TEST(TraceRecord, RangeHelper) {
  TraceRecord rec{0, true, 100, 16};
  EXPECT_EQ(rec.range(), SectorRange::of(100, 16));
}

}  // namespace
}  // namespace af::trace

// Structural invariants of the synthetic VDI generator: the page
// partitioning, boundary determinism and shape constraints that the
// calibration (Table 2 / Figures 8, 13) depends on.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/characterize.h"
#include "trace/synth.h"

namespace af::trace {
namespace {

constexpr std::uint64_t kSpace = 1 << 22;
constexpr std::uint32_t kSpp = 16;

SynthProfile pure_across_profile() {
  SynthProfile profile;
  profile.name = "partition-test";
  profile.requests = 30'000;
  profile.write_ratio = 1.0;
  profile.write_sizes = SizeMix::around_mean(20);
  profile.read_sizes = SizeMix::around_mean(24);
  profile.across_bias = 1.0;   // across branch only
  profile.update_fraction = 0;  // fresh shapes only
  profile.seq_fraction = 0;
  profile.seed = 41;
  return profile;
}

TEST(SynthPartition, AcrossBoundariesLandOnReservedPages) {
  const auto trace = generate(pure_across_profile(), kSpace);
  for (const auto& rec : trace) {
    const auto range = rec.range();
    if (!PageGeometry{kSpp}.is_across_page(range)) continue;
    // The crossed boundary is the page index of range.end's page.
    const std::uint64_t idx = (range.end - 1) / kSpp;
    const std::uint64_t mod = idx % 8;
    EXPECT_TRUE(mod == 2 || mod == 5)
        << "across boundary into page idx " << idx;
  }
}

TEST(SynthPartition, BoundaryShapesAreDeterministic) {
  const auto trace = generate(pure_across_profile(), kSpace);
  // One canonical (offset, size) per boundary — re-accesses repeat it, so
  // Across-FTL merges instead of rolling back.
  std::map<std::uint64_t, SectorRange> shape_of;
  for (const auto& rec : trace) {
    const auto range = rec.range();
    if (!PageGeometry{kSpp}.is_across_page(range)) continue;
    const std::uint64_t boundary = ((range.end - 1) / kSpp) * kSpp;
    auto [it, inserted] = shape_of.emplace(boundary, range);
    if (!inserted) {
      EXPECT_EQ(it->second, range) << "boundary " << boundary;
    }
  }
  EXPECT_GT(shape_of.size(), 100u);  // many distinct boundaries exercised
}

TEST(SynthPartition, SmallAlignedWritesAvoidTheAcrossRegion) {
  SynthProfile profile = pure_across_profile();
  profile.across_bias = 0.0;  // aligned/sub-page traffic only
  const auto trace = generate(profile, kSpace);
  const PageGeometry geom{kSpp};
  for (const auto& rec : trace) {
    const auto range = rec.range();
    if (range.size() >= kSpp) continue;  // large requests may span anything
    auto [first, last] = geom.lpn_span(range);
    for (std::uint64_t l = first.get(); l <= last.get(); ++l) {
      const std::uint64_t mod = (l % (8 * 64)) % 8;  // page idx within quad
      EXPECT_TRUE(mod == 0 || mod == 3 || mod == 6 || mod == 7)
          << "small request touched across-region page " << l;
    }
  }
}

TEST(SynthPartition, SubpageAcrossCrossesHalfPageOnly) {
  SynthProfile profile = pure_across_profile();
  profile.across_bias = 0.0;
  const auto trace = generate(profile, kSpace);
  // Count sector-misaligned half-page crossers (the dedicated branch's
  // signature: the request starts off any 4 KiB step).
  auto count_half_crossers = [](const Trace& t) {
    std::uint64_t n = 0;
    for (const auto& rec : t) {
      const auto range = rec.range();
      if (PageGeometry{kSpp}.pages_touched(range) != 1) continue;
      const SectorAddr in_page = range.begin % kSpp;
      if (in_page % 8 != 0 && in_page < 8 && (range.end - 1) % kSpp >= 8) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_half_crossers(trace), 0u)
      << "with across_bias=0 the sub-page-across branch must be off";

  profile.across_bias = 0.3;
  const auto with_bias = generate(profile, kSpace);
  EXPECT_GT(count_half_crossers(with_bias), with_bias.size() / 20);
  const auto stats4k = characterize(with_bias, 8);
  const auto stats8k = characterize(with_bias, 16);
  EXPECT_GT(stats4k.across_ratio, stats8k.across_ratio);
}

TEST(SynthPartition, UpdatesProduceMergeableShapes) {
  SynthProfile profile = pure_across_profile();
  profile.update_fraction = 0.5;
  const auto trace = generate(profile, kSpace);
  // Count update pairs: a later across write overlapping an earlier one at
  // the same boundary. Most must fit a single page when merged (hull ≤ 16),
  // since the paper's ARollback ratio is only ~4%.
  std::map<std::uint64_t, SectorRange> area;
  std::uint64_t merges = 0, overflows = 0;
  for (const auto& rec : trace) {
    const auto range = rec.range();
    if (!PageGeometry{kSpp}.is_across_page(range)) continue;
    const std::uint64_t boundary = ((range.end - 1) / kSpp) * kSpp;
    auto it = area.find(boundary);
    if (it == area.end()) {
      area.emplace(boundary, range);
      continue;
    }
    const SectorRange hull = it->second.hull(range);
    if (hull.size() <= kSpp) {
      ++merges;
      it->second = hull;
    } else {
      ++overflows;
      it->second = range;
    }
  }
  ASSERT_GT(merges, 0u);
  EXPECT_LT(static_cast<double>(overflows),
            0.15 * static_cast<double>(merges));
}

}  // namespace
}  // namespace af::trace

// trace::mix — the deterministic multi-tenant interleaver (DESIGN.md §12).
// The contract under test: the mix is a pure function of (inputs, seed) —
// byte-identical across runs and job counts — sorted by timestamp, stable
// within each tenant, and tenant-tagged by slot index unless retagging is
// off.
#include <gtest/gtest.h>

#include <vector>

#include "trace/mixer.h"
#include "trace/profiles.h"
#include "trace/synth.h"

namespace af {
namespace {

bool same_record(const trace::TraceRecord& a, const trace::TraceRecord& b) {
  return a.timestamp == b.timestamp && a.write == b.write &&
         a.offset == b.offset && a.sectors == b.sectors && a.trim == b.trim &&
         a.tenant == b.tenant;
}

bool same_trace(const trace::Trace& a, const trace::Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_record(a[i], b[i])) return false;
  }
  return true;
}

trace::Trace synth_input(std::uint32_t lun, std::uint64_t requests) {
  auto profile = trace::lun_profile(lun, requests);
  return trace::generate(profile, /*addressable_sectors=*/1 << 16);
}

TEST(Mixer, SameSeedByteIdentical) {
  const auto a = synth_input(0, 400);
  const auto b = synth_input(1, 400);
  const auto first = trace::mix({a, b});
  const auto second = trace::mix({a, b});
  EXPECT_TRUE(same_trace(first, second));
}

TEST(Mixer, OutputSortedAndComplete) {
  const auto a = synth_input(0, 300);
  const auto b = synth_input(1, 500);
  const auto mixed = trace::mix({a, b});
  ASSERT_EQ(mixed.size(), a.size() + b.size());
  for (std::size_t i = 1; i < mixed.size(); ++i) {
    EXPECT_LE(mixed[i - 1].timestamp, mixed[i].timestamp);
  }
  std::size_t from_a = 0;
  std::size_t from_b = 0;
  for (const auto& rec : mixed) {
    if (rec.tenant == 0) ++from_a;
    if (rec.tenant == 1) ++from_b;
  }
  EXPECT_EQ(from_a, a.size());
  EXPECT_EQ(from_b, b.size());
}

TEST(Mixer, StableWithinTenant) {
  const auto a = synth_input(0, 300);
  const auto b = synth_input(1, 300);
  const auto mixed = trace::mix({a, b});
  // Each tenant's records must come out in their original relative order.
  std::size_t ia = 0;
  std::size_t ib = 0;
  for (const auto& rec : mixed) {
    if (rec.tenant == 0) {
      ASSERT_LT(ia, a.size());
      EXPECT_EQ(rec.offset, a[ia].offset);
      EXPECT_EQ(rec.timestamp, a[ia].timestamp);
      ++ia;
    } else {
      ASSERT_LT(ib, b.size());
      EXPECT_EQ(rec.offset, b[ib].offset);
      EXPECT_EQ(rec.timestamp, b[ib].timestamp);
      ++ib;
    }
  }
}

TEST(Mixer, SingleInputIsIdentityModuloTag) {
  const auto a = synth_input(2, 250);
  const auto mixed = trace::mix({a});
  ASSERT_EQ(mixed.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    trace::TraceRecord want = a[i];
    want.tenant = 0;
    EXPECT_TRUE(same_record(mixed[i], want)) << "record " << i;
  }
}

TEST(Mixer, RetagOffPreservesInputTenants) {
  trace::Trace a{{10, true, 0, 8, false, /*tenant=*/7}};
  trace::Trace b{{20, false, 64, 8, false, /*tenant=*/3}};
  trace::MixerOptions options;
  options.retag_tenants = false;
  const auto mixed = trace::mix({a, b}, options);
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_EQ(mixed[0].tenant, 7);
  EXPECT_EQ(mixed[1].tenant, 3);
}

TEST(Mixer, TieBreakDeterministicPerSeed) {
  // All records collide on one timestamp: the interleave is pure tie-break.
  trace::Trace a;
  trace::Trace b;
  for (int i = 0; i < 64; ++i) {
    a.push_back({100, true, static_cast<SectorAddr>(8 * i), 8});
    b.push_back({100, true, static_cast<SectorAddr>(8 * i), 8});
  }
  const auto mixed_s1 = trace::mix({a, b});
  EXPECT_TRUE(same_trace(mixed_s1, trace::mix({a, b})));
  // A tie-only mix must not degenerate into strict tenant-0-first order —
  // the seeded draw interleaves the streams.
  bool interleaved = false;
  for (std::size_t i = 0; i + 1 < mixed_s1.size() && !interleaved; ++i) {
    if (mixed_s1[i].tenant == 1 && mixed_s1[i + 1].tenant == 0) {
      interleaved = true;
    }
  }
  EXPECT_TRUE(interleaved);
}

}  // namespace
}  // namespace af

#include "trace/profiles.h"

#include <gtest/gtest.h>

#include "trace/characterize.h"

namespace af::trace {
namespace {

constexpr std::uint64_t kSpace = 1 << 22;

TEST(Profiles, SixTargetsPublished) {
  const auto& targets = table2_targets();
  EXPECT_EQ(targets.size(), 6u);
  EXPECT_STREQ(targets[0].name, "lun1");
  EXPECT_EQ(targets[0].requests, 749'806u);
  EXPECT_DOUBLE_EQ(targets[5].across_ratio, 0.275);
}

// Each generated lun trace must land near its published Table-2 row.
class LunProfileFidelity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LunProfileFidelity, MatchesTable2Targets) {
  const std::size_t idx = GetParam();
  const auto& target = table2_targets()[idx];
  const auto profile = lun_profile(idx, 30'000);  // trimmed for test speed
  const auto trace = generate(profile, kSpace);
  const auto stats = characterize(trace, 16);

  EXPECT_EQ(stats.requests, 30'000u);
  EXPECT_NEAR(stats.write_ratio, target.write_ratio, 0.03);
  EXPECT_NEAR(stats.across_ratio, target.across_ratio, 0.05);
  EXPECT_NEAR(stats.avg_write_kb, target.write_kb, 2.5);
}

INSTANTIATE_TEST_SUITE_P(AllLuns, LunProfileFidelity,
                         ::testing::Range<std::size_t>(0, 6));

TEST(Profiles, DefaultRequestCountMatchesPaper) {
  EXPECT_EQ(lun_profile(2).requests, table2_targets()[2].requests);
  EXPECT_EQ(lun_profile(2, 500).requests, 500u);
}

TEST(Profiles, Fig2SetHas61Traces) {
  const auto profiles = fig2_profiles(1000);
  EXPECT_EQ(profiles.size(), 61u);
  // Ratios span the figure's range: some low, some spiking high.
  double lo = 1.0, hi = 0.0;
  for (const auto& profile : profiles) {
    lo = std::min(lo, profile.across_bias);
    hi = std::max(hi, profile.across_bias);
  }
  EXPECT_LT(lo, 0.08);
  EXPECT_GT(hi, 0.25);
}

TEST(ProfilesDeathTest, OutOfRangeLunAborts) {
  EXPECT_DEATH((void)lun_profile(6), "CHECK");
}

}  // namespace
}  // namespace af::trace

// Optional DRAM write buffer in front of the device — the classic
// alternative mitigation for small/unaligned writes (SSDsim ships one; the
// paper's configuration runs without it, which is why across-page requests
// hit the flash directly). Modelled as a sector-granular write-back cache:
// writes land at DRAM latency and coalesce; capacity pressure flushes the
// oldest entries through the FTL; reads are served from the buffer when
// fully resident and force a flush-through otherwise.
//
// `bench/ablate_write_buffer` uses this to ask: how much of Across-FTL's
// benefit would a data buffer have absorbed?
#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "ftl/request.h"
#include "sim/ssd.h"

namespace af::sim {

class BufferedSsd {
 public:
  /// `capacity_sectors` = 0 disables buffering (pass-through).
  BufferedSsd(Ssd& ssd, std::uint64_t capacity_sectors,
              SimDuration dram_access_ns = 1'000);

  /// Services one request through the buffer. Completion semantics match
  /// Ssd::submit; buffered writes complete at DRAM latency.
  [[nodiscard]] Ssd::Completion submit(const ftl::IoRequest& req);

  /// Flushes everything to the device (shutdown / barrier).
  void flush_all(SimTime now);

  /// Power-cut path: everything still buffered vanishes without reaching
  /// flash. The host already saw those writes complete at DRAM latency, so
  /// the loss is counted into dropped_flush_sectors(). Returns the sectors
  /// dropped by this call.
  std::uint64_t drop_all();

  // --- Introspection ---------------------------------------------------------
  [[nodiscard]] std::uint64_t buffered_sectors() const { return held_; }
  [[nodiscard]] std::uint64_t write_hits() const { return write_hits_; }
  [[nodiscard]] std::uint64_t read_hits() const { return read_hits_; }
  [[nodiscard]] std::uint64_t read_throughs() const { return read_throughs_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  /// Sectors absorbed by coalescing (rewritten while still buffered).
  [[nodiscard]] std::uint64_t coalesced_sectors() const { return coalesced_; }
  /// Buffered sectors whose flush the device refused (read-only
  /// degradation). The host already saw those writes complete at DRAM
  /// latency, so any non-zero value is acknowledged-then-lost data.
  [[nodiscard]] std::uint64_t dropped_flush_sectors() const {
    return dropped_flush_sectors_;
  }

 private:
  struct Entry {
    SectorRange range;
    std::list<SectorAddr>::iterator fifo_pos;  // keyed by range.begin
  };

  /// Inserts `range`, merging with overlapping/adjacent buffered entries.
  void insert(SectorRange range);
  /// Removes buffered entries overlapping `range` and writes them out.
  void flush_overlapping(SectorRange range, SimTime now);
  /// Evicts oldest entries until the buffer fits its capacity.
  void enforce_capacity(SimTime now);
  void write_out(SectorRange range, SimTime now);
  void erase_entry(std::map<SectorAddr, Entry>::iterator it);

  Ssd& ssd_;
  std::uint64_t capacity_;
  SimDuration dram_ns_;
  // Entries keyed by begin sector; non-overlapping by construction.
  std::map<SectorAddr, Entry> entries_;
  std::list<SectorAddr> fifo_;  // oldest first, holds entry keys
  std::uint64_t held_ = 0;
  std::uint64_t write_hits_ = 0;
  std::uint64_t read_hits_ = 0;
  std::uint64_t read_throughs_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t dropped_flush_sectors_ = 0;
};

}  // namespace af::sim

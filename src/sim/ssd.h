// Ssd — the public device facade a downstream user interacts with.
//
// Owns the engine, the chosen FTL scheme and (when payload tracking is on)
// the verification oracle. Provides request submission with per-class
// latency accounting, device aging (the paper warms the SSD to 90% used
// capacity before measuring), and measurement snapshots.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ftl/request.h"
#include "ftl/scheme.h"
#include "ssd/checkpoint.h"
#include "ssd/config.h"
#include "ssd/engine.h"
#include "ssd/integrity.h"
#include "ssd/oracle.h"
#include "ssd/recovery.h"

namespace af::sim {

class Ssd {
 public:
  Ssd(const ssd::SsdConfig& config, ftl::SchemeKind kind);
  ~Ssd();

  Ssd(const Ssd&) = delete;
  Ssd& operator=(const Ssd&) = delete;

  /// Mount path: adopts a flash image that survived a power cut, rebuilds
  /// the mapping stack through ssd::Recovery (checkpoint chain + OOB scan)
  /// and re-attaches the checkpoint journal when `config` enables it.
  /// `oracle_seed` (required when track_payload is on) is copied so new
  /// writes continue the pre-crash stamp sequence; pass the crashed device's
  /// oracle. `report`, when non-null, receives the mount statistics.
  [[nodiscard]] static std::unique_ptr<Ssd> mount(
      const ssd::SsdConfig& config, ftl::SchemeKind kind,
      nand::FlashArray image, const ssd::Oracle* oracle_seed = nullptr,
      ssd::RecoveryReport* report = nullptr);

  struct Completion {
    SimTime done = 0;
    SimDuration latency = 0;
    ssd::ReqClass cls = ssd::ReqClass::kNormalRead;
    /// False when the device refused the request (write in read-only
    /// degradation after spare-block exhaustion, or kNoSpace admission:
    /// accepting it would leave GC no blocks to turn over). Refused writes
    /// change no state and cost no simulated time; `status` says why.
    bool accepted = true;
    ssd::Status status = ssd::Status::kOk;
    /// True when servicing this request hit an uncorrectable page that no
    /// parity stripe could rebuild (DESIGN.md §8) — the returned payload
    /// includes unrecoverable data. The device also drops to read-only.
    bool data_lost = false;
  };

  /// Services one host request. When the oracle is active, writes update the
  /// shadow space and reads are verified sector-by-sector (aborting on any
  /// divergence). Writes are rejected (accepted=false) once block
  /// retirement has degraded the device to read-only mode, or with
  /// Status::kNoSpace when the device is too full to keep GC viable (trim
  /// or wait for reclamation, then retry). Trim requests (req.trim) unmap
  /// the fully covered pages and are durable the instant they are accepted.
  [[nodiscard]] Completion submit(const ftl::IoRequest& req);

  /// Pipeline device-stage entry (DESIGN.md §10): identical to submit() —
  /// same classification, admission checks, oracle/shadow updates and stats,
  /// in the same order — except that a read's plan is handed back through
  /// `plan_out` instead of being verified inline, so the pipeline can verify
  /// it on a worker thread while younger requests enter the device. The
  /// caller owns serialization: calls must be externally ordered (the
  /// pipeline holds its mutex across this call) and verification must finish
  /// before any overlapping write is serviced (the range-lock table enforces
  /// that). With the oracle off, `plan_out` is left empty.
  [[nodiscard]] Completion submit_deferred(const ftl::IoRequest& req,
                                           ftl::ReadPlan* plan_out);

  /// Ages the device: fills `live_fraction` of raw capacity with valid data
  /// and keeps overwriting it until `used_fraction` of all physical pages
  /// have been consumed (GC active throughout), mirroring §4.1. Call
  /// reset_measurement() afterwards.
  void age(double used_fraction, double live_fraction, std::uint64_t seed);

  /// Clears statistics and the timing backlog accumulated so far (used after
  /// aging so measured runs start from a clean clock).
  void reset_measurement();

  /// Admits every write still held back by a dry token bucket (end of
  /// trace: no later submission will advance simulated time past their
  /// admit points). No-op unless QoS throttling deferred something.
  void drain_admission();

  [[nodiscard]] const ssd::DeviceStats& stats() const {
    return engine_->stats();
  }
  [[nodiscard]] ssd::Engine& engine() { return *engine_; }
  [[nodiscard]] const ssd::Engine& engine() const { return *engine_; }
  [[nodiscard]] ftl::FtlScheme& scheme() { return *scheme_; }
  [[nodiscard]] const ftl::FtlScheme& scheme() const { return *scheme_; }
  [[nodiscard]] const ssd::Oracle* oracle() const { return oracle_.get(); }
  /// Mutable oracle access for the crash harness (Oracle::force fixups).
  [[nodiscard]] ssd::Oracle* oracle_mut() { return oracle_.get(); }
  [[nodiscard]] const ssd::Checkpointer* checkpointer() const {
    return checkpointer_.get();
  }
  [[nodiscard]] const ssd::ScrubScheduler* scrubber() const {
    return scrubber_.get();
  }
  [[nodiscard]] const ssd::SsdConfig& config() const {
    return engine_->config();
  }
  [[nodiscard]] std::uint64_t verified_sectors() const {
    return verified_sectors_;
  }

  /// Surrenders the flash image after a power cut (the engine and scheme
  /// must not be used afterwards); hand the result to mount().
  [[nodiscard]] nand::FlashArray release_flash();

  /// Captures the scheme's current mapping footprint into the stats (peak).
  void snapshot_map_footprint();

 private:
  class OracleStamps;  // adapts Oracle to ftl::StampProvider

  /// Token-bucket state for one tenant (DESIGN.md §12). Refilled lazily at
  /// request arrival in simulated time; a dry bucket converts the deficit
  /// into a deterministic admission stall. Allocated only when config.qos
  /// arms a rate.
  struct TenantBucket {
    double tokens = 0;
    SimTime last = 0;
  };

  /// A write held back by a dry token bucket: it enters the device at
  /// `admit_at`, not at submission. Keeping stalled writes out of the
  /// resource timeline until simulated time catches up preserves the
  /// timeline's in-order booking invariant — booking a far-future program
  /// eagerly would serialize every later-submitted request behind it.
  struct Deferred {
    ftl::IoRequest req;  ///< original arrival kept for latency accounting
    SimTime admit_at = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for equal admit times
  };

  /// Common body of submit() and submit_deferred(): `plan_out == nullptr`
  /// verifies reads inline (the serial path, byte-for-byte the pre-pipeline
  /// behaviour); otherwise the plan is exported for deferred verification.
  [[nodiscard]] Completion submit_impl(const ftl::IoRequest& host_req,
                                       ftl::ReadPlan* plan_out);

  /// Everything past admission shaping: capacity checks, execution, stats.
  /// `anchor` is the host's original arrival — latency is measured from it,
  /// so an admission stall shows up in the tenant's recorded tail.
  [[nodiscard]] Completion service(const ftl::IoRequest& req,
                                   ftl::ReadPlan* plan_out, SimTime anchor);

  /// Runs every deferred write whose admit time has been reached. Called
  /// before each serial submission so bookings stay in nondecreasing
  /// simulated-time order.
  void flush_deferred(SimTime now);

  /// Min-heap order for `deferred_`: earliest admit time first, submission
  /// order breaking ties.
  [[nodiscard]] static bool admits_later(const Deferred& a, const Deferred& b);

  /// Shared tail of both construction paths: scheme, oracle, checkpointer.
  Ssd(std::unique_ptr<ssd::Engine> engine, ftl::SchemeKind kind,
      const ssd::Oracle* oracle_seed);
  void attach_checkpointer();
  void attach_scrubber();

  std::unique_ptr<ssd::Engine> engine_;
  std::unique_ptr<ftl::FtlScheme> scheme_;
  std::unique_ptr<ssd::Oracle> oracle_;
  std::unique_ptr<OracleStamps> stamp_provider_;
  std::unique_ptr<ssd::Checkpointer> checkpointer_;
  std::unique_ptr<ssd::ScrubScheduler> scrubber_;
  std::uint64_t verified_sectors_ = 0;
  std::vector<TenantBucket> buckets_;
  std::vector<Deferred> deferred_;  ///< min-heap on (admit_at, seq)
  std::uint64_t deferred_seq_ = 0;
  /// True while age() runs: aging traffic is device prehistory, not any
  /// tenant's I/O — it bypasses buckets, quotas and per-tenant accounting
  /// and lands untenanted (kNoTenant) so no tenant inherits the aged
  /// footprint against its capacity share.
  bool aging_ = false;
};

}  // namespace af::sim

#include "sim/ssd.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "common/rng.h"

namespace af::sim {

class Ssd::OracleStamps final : public ftl::StampProvider {
 public:
  explicit OracleStamps(const ssd::Oracle& oracle) : oracle_(oracle) {}
  [[nodiscard]] std::uint64_t stamp_of(SectorAddr sector) const override {
    return oracle_.expected(sector);
  }

 private:
  const ssd::Oracle& oracle_;
};

Ssd::Ssd(std::unique_ptr<ssd::Engine> engine, ftl::SchemeKind kind,
         const ssd::Oracle* oracle_seed)
    : engine_(std::move(engine)) {
  scheme_ = ftl::make_scheme(kind, *engine_);
  const ssd::SsdConfig::QosPolicy& qos = engine_->config().qos;
  if (qos.bucket_enabled()) {
    buckets_.assign(qos.tenants,
                    TenantBucket{static_cast<double>(qos.burst_sectors), 0});
  }
  if (engine_->config().track_payload) {
    // A mount continues the pre-crash stamp sequence (the adopted flash
    // image still carries the old stamps); a fresh device starts at 1.
    oracle_ = oracle_seed ? std::make_unique<ssd::Oracle>(*oracle_seed)
                          : std::make_unique<ssd::Oracle>(
                                engine_->config().logical_sectors());
    stamp_provider_ = std::make_unique<OracleStamps>(*oracle_);
    scheme_->set_stamp_provider(stamp_provider_.get());
  }
}

Ssd::Ssd(const ssd::SsdConfig& config, ftl::SchemeKind kind)
    : Ssd(std::make_unique<ssd::Engine>(config), kind, nullptr) {
  attach_checkpointer();
  attach_scrubber();
}

void Ssd::attach_checkpointer() {
  if (engine_->config().checkpoint.enabled()) {
    checkpointer_ = std::make_unique<ssd::Checkpointer>(
        *engine_, *scheme_, engine_->config().checkpoint);
  }
}

void Ssd::attach_scrubber() {
  if (engine_->config().integrity.scrub_enabled()) {
    scrubber_ = std::make_unique<ssd::ScrubScheduler>(
        *engine_, engine_->config().integrity);
  }
}

std::unique_ptr<Ssd> Ssd::mount(const ssd::SsdConfig& config,
                                ftl::SchemeKind kind, nand::FlashArray image,
                                const ssd::Oracle* oracle_seed,
                                ssd::RecoveryReport* report) {
  image.disarm_power_cut();  // the new incarnation starts with clean power
  auto device = std::unique_ptr<Ssd>(new Ssd(
      std::make_unique<ssd::Engine>(config, std::move(image)), kind,
      oracle_seed));
  const ssd::RecoveryReport rep =
      ssd::Recovery::mount(*device->engine_, *device->scheme_);
  if (report != nullptr) *report = rep;
  // Journaling re-attaches only now: claim replay must not dirty the tables.
  device->attach_checkpointer();
  device->attach_scrubber();
  return device;
}

nand::FlashArray Ssd::release_flash() {
  checkpointer_.reset();  // unregisters the engine's ckpt-moved callback
  return engine_->release_array();
}

Ssd::~Ssd() = default;

Ssd::Completion Ssd::submit(const ftl::IoRequest& req) {
  return submit_impl(req, nullptr);
}

Ssd::Completion Ssd::submit_deferred(const ftl::IoRequest& req,
                                     ftl::ReadPlan* plan_out) {
  AF_CHECK_MSG(plan_out != nullptr, "submit_deferred needs a plan sink");
  plan_out->observed.clear();
  return submit_impl(req, plan_out);
}

bool Ssd::admits_later(const Deferred& a, const Deferred& b) {
  return a.admit_at != b.admit_at ? a.admit_at > b.admit_at : a.seq > b.seq;
}

Ssd::Completion Ssd::submit_impl(const ftl::IoRequest& host_req,
                                 ftl::ReadPlan* plan_out) {
  AF_CHECK_MSG(!host_req.range.empty(), "empty request");
  AF_CHECK_MSG(host_req.range.end <= engine_->config().logical_sectors(),
               "request beyond logical capacity");

  const ssd::SsdConfig::QosPolicy& qos = engine_->config().qos;
  // Token-bucket admission shaping, serial (trace-timed) path only — the
  // pipeline's QoS lever is its fair-share issue gate. A write finding its
  // tenant's bucket dry is not executed now with a fudged timestamp: it is
  // parked and enters the device when simulated time reaches its admit
  // point, because the resource timeline books ops in submission order and
  // an eagerly-booked far-future program would serialize every
  // later-submitted request (other tenants included) behind it.
  if (plan_out == nullptr && !buckets_.empty()) {
    flush_deferred(host_req.arrival);
    if (host_req.write && !host_req.trim && !aging_) {
      const auto tenant = static_cast<std::uint16_t>(
          std::min<std::uint32_t>(host_req.tenant, qos.tenants - 1));
      TenantBucket& bucket = buckets_[tenant];
      if (host_req.arrival > bucket.last) {
        const double refill =
            static_cast<double>(host_req.arrival - bucket.last) *
            static_cast<double>(qos.rate_sectors_per_s) / 1e9;
        bucket.tokens = std::min(static_cast<double>(qos.burst_sectors),
                                 bucket.tokens + refill);
        bucket.last = host_req.arrival;
      }
      // The write charges its transfer size plus a surcharge for the GC
      // debt its tenant has accrued (relocations of the tenant's pages
      // since its last charge), so a noisy neighbor pays for the collection
      // churn it causes. Reads are not metered: they consume no program
      // bandwidth and create no debt.
      double cost = static_cast<double>(host_req.range.size());
      if (qos.gc_debt_sectors_per_page > 0) {
        cost += static_cast<double>(engine_->drain_gc_debt_pages(tenant) *
                                    qos.gc_debt_sectors_per_page);
      }
      if (bucket.tokens >= cost) {
        bucket.tokens -= cost;
      } else {
        // Dry: the refill is anchored at bucket.last — which may already
        // sit in the future, so earlier stalls accumulate and a flooding
        // tenant is paced at the configured rate rather than each request
        // paying one isolated delay.
        const double deficit = cost - bucket.tokens;
        const SimTime admit_at =
            bucket.last +
            static_cast<SimDuration>(
                deficit * 1e9 / static_cast<double>(qos.rate_sectors_per_s) +
                1.0);
        bucket.tokens = 0;
        bucket.last = admit_at;
        ssd::TenantStats& ts = engine_->stats().tenant(tenant);
        ++ts.throttle_stalls;
        ts.throttle_stall_ns +=
            static_cast<std::uint64_t>(admit_at - host_req.arrival);
        deferred_.push_back(Deferred{host_req, admit_at, deferred_seq_++});
        std::push_heap(deferred_.begin(), deferred_.end(), admits_later);
        // The held write is acknowledged optimistically: capacity checks
        // run when it actually enters the device, and its full accounting
        // (latency anchored at the original arrival) lands at flush time.
        Completion held;
        held.cls = ftl::classify(host_req, scheme_->page_geometry());
        held.done = admit_at;
        held.latency = admit_at - host_req.arrival;
        return held;
      }
    }
  }
  return service(host_req, plan_out, host_req.arrival);
}

void Ssd::flush_deferred(SimTime now) {
  while (!deferred_.empty() && deferred_.front().admit_at <= now) {
    std::pop_heap(deferred_.begin(), deferred_.end(), admits_later);
    Deferred held = std::move(deferred_.back());
    deferred_.pop_back();
    const SimTime anchor = held.req.arrival;
    held.req.arrival = held.admit_at;
    (void)service(held.req, nullptr, anchor);
  }
}

void Ssd::drain_admission() {
  flush_deferred(std::numeric_limits<SimTime>::max());
}

Ssd::Completion Ssd::service(const ftl::IoRequest& req,
                             ftl::ReadPlan* plan_out, SimTime anchor) {
  const ssd::SsdConfig::QosPolicy& qos = engine_->config().qos;
  std::uint16_t tenant = ssd::kNoTenant;
  if (qos.enabled() && !aging_) {
    // Unknown tenant ids clamp into the configured table rather than assert:
    // a trace mixing more tenants than the device was configured for is a
    // host-side mistake, not a device invariant violation.
    tenant = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(req.tenant, qos.tenants - 1));
  }
  if (qos.enabled()) engine_->set_tenant(tenant);

  const ssd::ReqClass cls = ftl::classify(req, scheme_->page_geometry());
  const bool mutates = req.write || req.trim;

  if (mutates && engine_->read_only()) {
    // Graceful degradation: spare blocks are exhausted, so the device
    // refuses new writes (and trims — they dirty mapping tables that must
    // eventually be programmed) rather than wedging GC. The shadow space is
    // not advanced — the refusal is surfaced, not silently dropped.
    ++engine_->stats().faults().rejected_writes;
    Completion rejected;
    rejected.cls = cls;
    rejected.done = req.arrival;
    rejected.accepted = false;
    rejected.status = ssd::Status::kReadOnly;
    return rejected;
  }
  if (req.write && !req.trim) {
    // Capacity admission: a write the device cannot absorb without eating
    // the GC reserve fails cleanly with kNoSpace — the host can trim or
    // back off, instead of the old behaviour of asserting out of planes.
    // Only the net-new logical pages count: overwrites of mapped pages add
    // no valid-page population, so a device at the ceiling still accepts
    // them (and stays overwritable until a trim or retirement moves the
    // ceiling).
    const ssd::Status admit =
        engine_->admit_write(scheme_->unmapped_pages(req.range));
    if (admit != ssd::Status::kOk) {
      ++engine_->stats().faults().no_space_rejections;
      Completion rejected;
      rejected.cls = cls;
      rejected.done = req.arrival;
      rejected.accepted = false;
      rejected.status = admit;
      return rejected;
    }
    // Per-tenant capacity share (DESIGN.md §12): a tenant over its quota is
    // refused with kNoSpace while the others keep writing — per-tenant
    // graceful degradation instead of device-wide backpressure. Checked
    // after the device-wide admission so a globally-full device reports the
    // same status it always did.
    if (tenant != ssd::kNoTenant) {
      const ssd::Status quota = engine_->admit_tenant_write(
          tenant, scheme_->unmapped_pages(req.range));
      if (quota != ssd::Status::kOk) {
        ++engine_->stats().tenant(tenant).rejected_writes;
        Completion rejected;
        rejected.cls = cls;
        rejected.done = req.arrival;
        rejected.accepted = false;
        rejected.status = quota;
        return rejected;
      }
    }
  }
  engine_->set_request_class(cls);

  // Deadline ledger (DESIGN.md §11): every attempt gets a fresh in-simulated-
  // time budget measured from its issue point — never from a wall clock.
  // Zero-default: with config.deadline unarmed, budget_ns stays 0, no ledger
  // is ever set, and the engine's scheduling paths are byte-identical to the
  // pre-deadline behaviour.
  const ssd::SsdConfig::DeadlineConfig& dl = engine_->config().deadline;
  const bool is_read = !req.write && !req.trim;
  const SimDuration budget_ns =
      req.trim ? 0
               : (is_read ? dl.read_deadline_us : dl.write_deadline_us) * 1000;
  auto arm_ledger = [&](SimTime issue) {
    engine_->set_deadline_ledger(ssd::Engine::DeadlineLedger{
        issue + budget_ns,
        is_read && dl.hedge_after_us > 0 ? issue + dl.hedge_after_us * 1000
                                         : SimTime{0}});
  };
  if (budget_ns > 0) arm_ledger(req.arrival);

  Completion completion;
  completion.cls = cls;
  const std::uint64_t lost_before = engine_->stats().faults().lost_pages;
  if (req.trim) {
    // Order matters for crash consistency: zero the shadow, then make the
    // tombstone durable (RAM-only — no power cut can land between the two),
    // and only then let the scheme touch mapping tables. Any flash op the
    // trim provokes (map evictions, GC) happens with the tombstone already
    // in force, so a cut mid-trim still replays the unmap — a GC move of a
    // covered page carries a newer seq than its tombstone otherwise, and
    // the page would resurrect.
    const std::uint32_t spp = scheme_->page_geometry().sectors_per_page;
    if (oracle_) oracle_->on_trim(req.range, spp);
    (void)engine_->array().note_trim(req.range);
    completion.done = scheme_->trim(req.range, req.arrival);
    auto& faults = engine_->stats().faults();
    ++faults.trims;
    const std::uint64_t first = (req.range.begin + spp - 1) / spp;
    const std::uint64_t last = req.range.end / spp;
    faults.trimmed_pages += last > first ? last - first : 0;
  } else if (req.write) {
    if (oracle_) oracle_->on_write(req.range);
    completion.done = scheme_->write(req, req.arrival);
    // Writes are never re-issued (the mutation landed); a busted budget is
    // surfaced as an SLO escalation, data fully intact.
    if (budget_ns > 0 && completion.done > req.arrival + budget_ns) {
      completion.status = ssd::Status::kDeadlineExceeded;
      ++engine_->stats().tail().deadline_exceeded;
    }
  } else {
    ftl::ReadPlan local_plan;
    ftl::ReadPlan* plan = plan_out != nullptr ? plan_out : &local_plan;
    SimTime issue = req.arrival;
    completion.done = scheme_->read(req, issue, oracle_ ? plan : nullptr);
    if (budget_ns > 0) {
      // Retry-with-backoff ladder: a read busting its budget is re-issued —
      // each re-issue re-walks the mapping and the flash, charging real
      // device time — after an exponentially growing backoff, with a fresh
      // budget, betting that the stall (a sick-die episode, a background
      // burst) has drained. A read still late after max_retries attempts
      // escalates to kDeadlineExceeded; its data is correct regardless.
      for (std::uint32_t k = 0;
           completion.done > issue + budget_ns && k < dl.max_retries; ++k) {
        ++engine_->stats().tail().deadline_retries;
        issue = completion.done + dl.retry_backoff_us * 1000 * (1ull << k);
        arm_ledger(issue);
        plan->observed.clear();
        completion.done = scheme_->read(req, issue, oracle_ ? plan : nullptr);
      }
      if (completion.done > issue + budget_ns) {
        completion.status = ssd::Status::kDeadlineExceeded;
        ++engine_->stats().tail().deadline_exceeded;
      }
    }
    if (oracle_ && plan_out == nullptr) {
      for (const auto& obs : plan->observed) {
        const std::uint64_t expected = oracle_->expected(obs.sector);
        AF_CHECK_MSG(obs.stamp == expected,
                     "oracle mismatch: FTL returned stale or wrong data");
        ++verified_sectors_;
      }
      AF_CHECK_MSG(plan->observed.size() == req.range.size(),
                   "read plan did not cover the whole request");
    }
  }
  if (budget_ns > 0) engine_->set_deadline_ledger(std::nullopt);
  engine_->set_request_class(std::nullopt);

  AF_CHECK(completion.done >= req.arrival);
  // Latency is measured from the host's original arrival, so an admission
  // stall shows up in the tenant's tail instead of silently vanishing.
  completion.latency = completion.done - anchor;
  completion.data_lost =
      engine_->stats().faults().lost_pages > lost_before;
  engine_->stats().record_request(cls, completion.latency, req.range.size());
  if (tenant != ssd::kNoTenant && !req.trim) {
    ssd::TenantStats& ts = engine_->stats().tenant(tenant);
    if (req.write) {
      ++ts.writes;
      ts.write_sectors += req.range.size();
      ts.write_latency.record(completion.latency, req.range.size());
    } else {
      ++ts.reads;
      ts.read_sectors += req.range.size();
      ts.read_latency.record(completion.latency, req.range.size());
    }
  }
  if (mutates && checkpointer_) checkpointer_->note_write(completion.done);
  // Background refresh rides the request stream like the checkpointer does;
  // its reads/programs count as physical ops, so an armed power cut can
  // fire inside a scrub tick (PowerLoss propagates to the harness).
  if (scrubber_) scrubber_->note_request(completion.done);
  return completion;
}

void Ssd::age(double used_fraction, double live_fraction, std::uint64_t seed) {
  const auto& geom = engine_->geometry();
  const std::uint64_t spp = geom.sectors_per_page();
  // GC keeps gc_trigger_blocks() (plus up to 2 blocks of per-plane stagger)
  // free per plane, so "used" cannot exceed that floor; clamp the target to
  // what the device can actually reach.
  const double achievable =
      1.0 - (static_cast<double>(engine_->gc_trigger_blocks()) + 3.0) /
                static_cast<double>(geom.blocks_per_plane);
  used_fraction = std::min(used_fraction, achievable);
  const std::uint64_t logical_pages = engine_->config().logical_pages();
  const auto footprint = std::min<std::uint64_t>(
      logical_pages,
      static_cast<std::uint64_t>(live_fraction *
                                 static_cast<double>(geom.total_pages())));
  AF_CHECK(footprint > 0);

  Rng rng(seed);
  // Aging traffic is device prehistory, not any tenant's I/O: it bypasses
  // QoS shaping and lands untenanted, so no tenant starts measurement with
  // the aged footprint counted against its capacity share or its bucket
  // pre-drained by fill writes all stamped arrival 0.
  aging_ = true;
  // Page-aligned fill: sequential first pass establishes the live set, then
  // random overwrites age the device (invalidations + GC) until the used
  // target is reached.
  for (std::uint64_t p = 0; p < footprint; ++p) {
    ftl::IoRequest req{0, /*write=*/true,
                       SectorRange::of(p * spp, spp)};
    if (!submit(req).accepted) break;  // device degraded mid-aging
  }
  const std::uint64_t max_overwrites = 4 * geom.total_pages();
  std::uint64_t overwrites = 0;
  while (engine_->array().used_fraction() < used_fraction &&
         overwrites < max_overwrites) {
    const std::uint64_t p = rng.below(footprint);
    ftl::IoRequest req{0, /*write=*/true, SectorRange::of(p * spp, spp)};
    if (!submit(req).accepted) break;  // device degraded mid-aging
    ++overwrites;
  }
  aging_ = false;
  AF_LOG_INFO("aged device: used=%.3f live=%.3f overwrites=%llu",
              engine_->array().used_fraction(),
              engine_->array().valid_fraction(),
              static_cast<unsigned long long>(overwrites));
}

void Ssd::reset_measurement() {
  engine_->stats().reset();
  engine_->timeline().reset();
  // Buckets restart full on the reset clock: aging traffic must not leave a
  // tenant pre-throttled (or pre-refilled into the future) when measurement
  // starts at simulated time 0 again.
  const ssd::SsdConfig::QosPolicy& qos = engine_->config().qos;
  for (TenantBucket& bucket : buckets_) {
    bucket = TenantBucket{static_cast<double>(qos.burst_sectors), 0};
  }
  deferred_.clear();
  deferred_seq_ = 0;
}

void Ssd::snapshot_map_footprint() {
  engine_->stats().note_map_bytes(scheme_->map_bytes());
}

}  // namespace af::sim

#include "sim/write_buffer.h"

#include <vector>

#include "common/check.h"

namespace af::sim {

BufferedSsd::BufferedSsd(Ssd& ssd, std::uint64_t capacity_sectors,
                         SimDuration dram_access_ns)
    : ssd_(ssd), capacity_(capacity_sectors), dram_ns_(dram_access_ns) {}

void BufferedSsd::erase_entry(std::map<SectorAddr, Entry>::iterator it) {
  held_ -= it->second.range.size();
  fifo_.erase(it->second.fifo_pos);
  entries_.erase(it);
}

void BufferedSsd::insert(SectorRange range) {
  // Collect every buffered entry that overlaps or touches the new range and
  // fold it into the hull (write-back coalescing).
  SectorRange merged = range;
  auto it = entries_.lower_bound(range.begin);
  if (it != entries_.begin()) --it;
  std::vector<std::map<SectorAddr, Entry>::iterator> victims;
  while (it != entries_.end() && it->second.range.begin <= merged.end) {
    if (it->second.range.touches(merged)) {
      coalesced_ += it->second.range.intersect(range).size();
      merged = merged.hull(it->second.range);
      victims.push_back(it);
    }
    ++it;
  }
  for (auto victim : victims) erase_entry(victim);

  auto fifo_pos = fifo_.insert(fifo_.end(), merged.begin);
  entries_.emplace(merged.begin, Entry{merged, fifo_pos});
  held_ += merged.size();
}

void BufferedSsd::write_out(SectorRange range, SimTime now) {
  ++flushes_;
  // A degraded (read-only) device refuses the flush. The host already saw
  // these writes complete at DRAM speed, so dropping them here is real data
  // loss — count it so callers can surface it instead of hiding it.
  const auto completion = ssd_.submit({now, /*write=*/true, range});
  if (!completion.accepted) dropped_flush_sectors_ += range.size();
}

void BufferedSsd::flush_overlapping(SectorRange range, SimTime now) {
  auto it = entries_.lower_bound(range.begin);
  if (it != entries_.begin()) --it;
  std::vector<std::map<SectorAddr, Entry>::iterator> victims;
  while (it != entries_.end() && it->second.range.begin < range.end) {
    if (it->second.range.overlaps(range)) victims.push_back(it);
    ++it;
  }
  for (auto victim : victims) {
    const SectorRange flushed = victim->second.range;
    erase_entry(victim);
    write_out(flushed, now);
  }
}

void BufferedSsd::enforce_capacity(SimTime now) {
  while (held_ > capacity_) {
    AF_CHECK(!fifo_.empty());
    auto it = entries_.find(fifo_.front());
    AF_CHECK(it != entries_.end());
    const SectorRange oldest = it->second.range;
    erase_entry(it);
    write_out(oldest, now);
  }
}

Ssd::Completion BufferedSsd::submit(const ftl::IoRequest& req) {
  if (capacity_ == 0) return ssd_.submit(req);

  if (req.write) {
    ++write_hits_;
    insert(req.range);
    enforce_capacity(req.arrival);
    // Write-back: the host write completes at DRAM speed; flush-out happens
    // behind it (its flash time lands on the device's chip timelines).
    Ssd::Completion completion;
    completion.done = req.arrival + dram_ns_;
    completion.latency = dram_ns_;
    completion.cls = ftl::classify(req, ssd_.scheme().page_geometry());
    return completion;
  }

  // Read: fully resident → DRAM; otherwise flush the overlapping entries and
  // read through the device (oracle-checked there).
  auto it = entries_.upper_bound(req.range.begin);
  if (it != entries_.begin()) {
    --it;
    if (it->second.range.contains(req.range)) {
      ++read_hits_;
      Ssd::Completion completion;
      completion.done = req.arrival + dram_ns_;
      completion.latency = dram_ns_;
      completion.cls = ftl::classify(req, ssd_.scheme().page_geometry());
      return completion;
    }
  }
  ++read_throughs_;
  flush_overlapping(req.range, req.arrival);
  return ssd_.submit(req);
}

std::uint64_t BufferedSsd::drop_all() {
  std::uint64_t dropped = 0;
  while (!entries_.empty()) {
    auto it = entries_.begin();
    dropped += it->second.range.size();
    erase_entry(it);
  }
  AF_CHECK(held_ == 0);
  dropped_flush_sectors_ += dropped;
  return dropped;
}

void BufferedSsd::flush_all(SimTime now) {
  while (!entries_.empty()) {
    auto it = entries_.find(fifo_.front());
    AF_CHECK(it != entries_.end());
    const SectorRange flushed = it->second.range;
    erase_entry(it);
    write_out(flushed, now);
  }
  AF_CHECK(held_ == 0);
}

}  // namespace af::sim

// SsdPipeline — the concurrent in-flight request pipeline (DESIGN.md §10).
//
// Wraps one sim::Ssd in a closed-loop host driver with a bounded submission
// window (`SsdConfig::PipelineConfig::queue_depth`): the submitter blocks
// while queue_depth requests are in flight, worker threads drive the device
// stage strictly in submission order, and read verification against the
// oracle completes out of order on whichever worker gets there first.
//
// Determinism contract: every simulated number — issue/completion times,
// stats, oracle state, GC decisions — is a pure function of
// (config, submission sequence). Worker count and thread scheduling change
// wall-clock time only. The contract holds because the device stage runs
// under one mutex in submission order; only verification (which mutates
// nothing simulated) is concurrent.
//
// Closed-loop timing: trace arrival times are ignored. A request's simulated
// issue time is max(previous issue, slot gate, dependency gate) where the
// slot gate pops the earliest in-flight completion once queue_depth
// simulated requests are outstanding (fio-style QD semantics), and the
// dependency gate orders overlapping extents (reads after the last
// overlapping write, writes after every overlapping access) and barriers
// (trims/flushes after everything, everything after them). QD=1 therefore
// chains every request behind the previous completion — exactly the serial
// engine driven one-request-at-a-time, which the tests check bit-identically.
//
// Lock ordering (see DESIGN.md §10): pipeline mutex, then range-lock shard
// mutexes. Shard mutexes are never held across a wait or a device call.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "ftl/request.h"
#include "nand/power.h"
#include "sim/ssd.h"
#include "ssd/range_lock.h"

namespace af::sim {

class SsdPipeline {
 public:
  SsdPipeline(const ssd::SsdConfig& config, ftl::SchemeKind kind);
  ~SsdPipeline();

  SsdPipeline(const SsdPipeline&) = delete;
  SsdPipeline& operator=(const SsdPipeline&) = delete;

  /// Per-request outcome, indexed by submission sequence. `submitted` /
  /// `done` are the simulated device issue/completion times (deterministic);
  /// requests still queued when a power cut hit stay `executed = false`.
  /// `queue_delay` is submitted − trace arrival: zero in closed-loop mode
  /// (arrival timestamps are ignored there), and the time a request waited
  /// behind dependencies in open-loop mode — reported separately from the
  /// service time (done − submitted) so queueing is priced, not hidden.
  struct CompletionRecord {
    SimTime submitted = 0;
    SimTime done = 0;
    SimDuration queue_delay = 0;
    ssd::ReqClass cls = ssd::ReqClass::kNormalRead;
    bool executed = false;
    bool accepted = false;
    bool data_lost = false;
  };

  /// Serial warm-up on the caller thread (no pipeline involvement); call
  /// reset_measurement() afterwards, before the first submit().
  void age(double used_fraction, double live_fraction, std::uint64_t seed);

  /// Clears device stats and all pipeline timing state. Requires quiescence
  /// (nothing in flight).
  void reset_measurement();

  /// Enqueues one request, blocking while queue_depth requests are in
  /// flight. Arrival time is ignored (closed-loop driver). Throws
  /// nand::PowerLoss once an armed power cut has fired — like the serial
  /// engine, the host learns of the crash at its next interaction.
  void submit(const ftl::IoRequest& req);

  /// Barrier: blocks until everything submitted so far has completed
  /// (including verification). Throws nand::PowerLoss after a crash.
  void flush();

  /// flush() + the end-of-run bookkeeping hook. Call before reading any
  /// accessor below.
  void drain();

  /// The wrapped device. Callers must be quiescent (post-drain or
  /// pre-submit): the device stage mutates this without external locking.
  [[nodiscard]] Ssd& device() { return device_; }
  [[nodiscard]] const Ssd& device() const { return device_; }

  [[nodiscard]] std::uint32_t queue_depth() const { return queue_depth_; }
  [[nodiscard]] std::uint32_t workers() const { return worker_count_; }

  // Quiescent-only accessors (post-drain).
  [[nodiscard]] const std::vector<CompletionRecord>& records() const
      AF_NO_THREAD_SAFETY_ANALYSIS {
    return records_;
  }
  [[nodiscard]] std::uint64_t submitted() const AF_NO_THREAD_SAFETY_ANALYSIS {
    return submitted_;
  }
  [[nodiscard]] std::uint64_t verified_sectors() const
      AF_NO_THREAD_SAFETY_ANALYSIS {
    return verified_sectors_;
  }
  [[nodiscard]] std::uint64_t lost_requests() const
      AF_NO_THREAD_SAFETY_ANALYSIS {
    return lost_requests_;
  }
  /// Latest simulated completion of the measured phase.
  [[nodiscard]] SimTime makespan_ns() const AF_NO_THREAD_SAFETY_ANALYSIS {
    return makespan_;
  }
  [[nodiscard]] ssd::RangeLockTable::Stats lock_stats() const {
    return locks_.stats();
  }

  // Crash introspection for the power-cut harness (post-PowerLoss).
  [[nodiscard]] bool crashed() const AF_NO_THREAD_SAFETY_ANALYSIS {
    return crashed_;
  }
  [[nodiscard]] std::uint64_t crash_op_index() const
      AF_NO_THREAD_SAFETY_ANALYSIS {
    return crash_op_;
  }
  /// Range of the write interrupted mid-flight (empty if the cut hit a
  /// read/erase) and its pre-submission stamps — the only sectors the
  /// post-mount oracle sweep may tolerate at the old version.
  [[nodiscard]] SectorRange crash_inflight() const
      AF_NO_THREAD_SAFETY_ANALYSIS {
    return crash_inflight_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& crash_pre_stamps() const
      AF_NO_THREAD_SAFETY_ANALYSIS {
    return crash_pre_stamps_;
  }

 private:
  struct Request {
    std::uint64_t seq = 0;
    ftl::IoRequest io;
    ssd::RangeLockTable::Ticket ticket;
    Ssd::Completion completion;
    ftl::ReadPlan plan;
    std::vector<std::uint64_t> pre_stamps;  // armed-cut tolerance capture
    bool needs_verify = false;
    std::uint64_t verified = 0;
  };
  struct RegionGate {
    SimTime last_any = 0;   // latest completion touching the region
    SimTime last_excl = 0;  // latest exclusive (write) completion
  };

  void submit_inline(const ftl::IoRequest& req);
  void worker_loop() AF_EXCLUDES(mu_);
  /// In-order device stage: computes the simulated issue time, services the
  /// request (oracle mutation included) and updates every gate. Returns the
  /// request onward to verification or completion.
  void device_stage(Request& req) AF_REQUIRES(mu_);
  void finish(std::unique_ptr<Request> req) AF_REQUIRES(mu_);
  void on_power_loss(Request& req, std::uint64_t op_index) AF_REQUIRES(mu_);
  [[nodiscard]] SimTime dependency_gate(const Request& req) const
      AF_REQUIRES(mu_);
  void verify(Request& req);  // lock-free: oracle shadow is read-only here
  void capture_pre_stamps(Request& req) AF_REQUIRES(mu_);
  [[nodiscard]] nand::PowerLoss crash_error() AF_REQUIRES(mu_);

  const std::uint32_t queue_depth_;
  const std::uint32_t worker_count_;
  const bool enabled_;
  const bool open_loop_;
  /// Fair-share per-tenant slot cap (1 when fair share is unarmed).
  const std::uint32_t tenant_window_;

  // Written by the device stage under mu_ (workers) or by the quiescent
  // owner thread (age/reset/accessors); the submit()/mu_ handoff publishes
  // every transition between the two regimes.
  // af_lint: allow(pipeline-guarded-state) — device-stage confined, see
  // the threading comment above; accessors are documented quiescent-only.
  Ssd device_;
  ssd::RangeLockTable locks_;
  std::unique_ptr<ThreadPool> pool_;

  Mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  std::deque<std::unique_ptr<Request>> pending_ AF_GUARDED_BY(mu_);
  std::deque<std::unique_ptr<Request>> verify_queue_ AF_GUARDED_BY(mu_);
  std::uint32_t inflight_ AF_GUARDED_BY(mu_) = 0;
  bool stopping_ AF_GUARDED_BY(mu_) = false;
  bool crashed_ AF_GUARDED_BY(mu_) = false;
  std::uint64_t crash_op_ AF_GUARDED_BY(mu_) = 0;
  SectorRange crash_inflight_ AF_GUARDED_BY(mu_){};
  std::vector<std::uint64_t> crash_pre_stamps_ AF_GUARDED_BY(mu_);
  std::uint64_t submitted_ AF_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ AF_GUARDED_BY(mu_) = 0;
  std::uint64_t verified_sectors_ AF_GUARDED_BY(mu_) = 0;
  std::uint64_t lost_requests_ AF_GUARDED_BY(mu_) = 0;
  std::vector<CompletionRecord> records_ AF_GUARDED_BY(mu_);

  // Simulated closed-loop gates, mutated only in device order.
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<>> slots_
      AF_GUARDED_BY(mu_);
  // Fair-share submission gate (DESIGN.md §12): per-tenant slot heaps, sized
  // only when config.qos arms fair_share in closed-loop mode. Tenant t may
  // hold at most tenant_window_ of the queue_depth simulated slots, so one
  // flooding tenant cannot occupy the whole submission window.
  std::vector<std::priority_queue<SimTime, std::vector<SimTime>,
                                  std::greater<>>>
      tenant_slots_ AF_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, RegionGate> region_gates_
      AF_GUARDED_BY(mu_);
  SimTime barrier_gate_ AF_GUARDED_BY(mu_) = 0;
  SimTime all_done_gate_ AF_GUARDED_BY(mu_) = 0;
  SimTime last_issue_ AF_GUARDED_BY(mu_) = 0;
  SimTime makespan_ AF_GUARDED_BY(mu_) = 0;
};

}  // namespace af::sim

#include "sim/pipeline.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "nand/power.h"

namespace af::sim {

namespace {

std::uint32_t clamp_workers(const ssd::SsdConfig& config) {
  const auto& p = config.pipeline;
  if (!p.enabled()) return 1;
  // More workers than in-flight requests can never all be busy. Open-loop
  // mode can be enabled with queue_depth 0 (the window defaults to 1).
  return std::min(p.effective_workers(),
                  std::max<std::uint32_t>(1, p.queue_depth));
}

std::uint32_t fair_window(const ssd::SsdConfig& config) {
  const ssd::SsdConfig::QosPolicy& qos = config.qos;
  if (!qos.enabled() || !qos.fair_share) return 1;
  return std::max<std::uint32_t>(
      1, std::max<std::uint32_t>(1, config.pipeline.queue_depth) /
             qos.tenants);
}

}  // namespace

SsdPipeline::SsdPipeline(const ssd::SsdConfig& config, ftl::SchemeKind kind)
    : queue_depth_(std::max<std::uint32_t>(1, config.pipeline.queue_depth)),
      worker_count_(clamp_workers(config)),
      enabled_(config.pipeline.enabled()),
      open_loop_(config.pipeline.open_loop),
      tenant_window_(fair_window(config)),
      device_(config, kind),
      locks_(std::uint64_t{std::max<std::uint32_t>(
                 1, config.pipeline.region_pages)} *
             config.geometry.sectors_per_page()) {
  const ssd::SsdConfig::QosPolicy& qos = config.qos;
  if (enabled_ && !open_loop_ && qos.enabled() && qos.fair_share) {
    tenant_slots_.resize(qos.tenants);
  }
  if (enabled_) {
    pool_ = std::make_unique<ThreadPool>(worker_count_);
    for (std::uint32_t i = 0; i < worker_count_; ++i) {
      pool_->submit([this] { worker_loop(); });
    }
  }
}

SsdPipeline::~SsdPipeline() {
  if (pool_) {
    {
      MutexLock lock(mu_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    pool_.reset();  // joins the workers
  }
}

void SsdPipeline::age(double used_fraction, double live_fraction,
                      std::uint64_t seed) {
  // Serial warm-up: workers are idle (nothing pending), so the caller owns
  // the device; the first submit()'s mutex handoff publishes the aged state.
  device_.age(used_fraction, live_fraction, seed);
}

void SsdPipeline::reset_measurement() {
  MutexLock lock(mu_);
  AF_CHECK_MSG(inflight_ == 0, "reset_measurement with requests in flight");
  device_.reset_measurement();
  records_.clear();
  submitted_ = 0;
  completed_ = 0;
  verified_sectors_ = 0;
  lost_requests_ = 0;
  slots_ = {};
  for (auto& heap : tenant_slots_) heap = {};
  region_gates_.clear();
  barrier_gate_ = 0;
  all_done_gate_ = 0;
  last_issue_ = 0;
  makespan_ = 0;
}

nand::PowerLoss SsdPipeline::crash_error() { return nand::PowerLoss{crash_op_}; }

void SsdPipeline::submit(const ftl::IoRequest& req) {
  if (!enabled_) {
    submit_inline(req);
    return;
  }
  auto r = std::make_unique<Request>();
  r->io = req;
  {
    UniqueLock lock(mu_);
    while (inflight_ >= queue_depth_ && !crashed_) done_cv_.wait(lock);
    if (crashed_) throw crash_error();
    r->seq = submitted_++;
    records_.emplace_back();
    r->ticket = req.trim ? locks_.acquire_barrier(r->seq)
                         : locks_.acquire(r->seq, req.range, req.write);
    pending_.push_back(std::move(r));
    ++inflight_;
  }
  work_cv_.notify_all();
}

void SsdPipeline::submit_inline(const ftl::IoRequest& req) {
  MutexLock lock(mu_);
  if (crashed_) throw crash_error();
  auto r = std::make_unique<Request>();
  r->seq = submitted_++;
  r->io = req;
  records_.emplace_back();
  ++inflight_;
  // QD=1 closed loop: issue when the previous request completed. No range
  // or slot gates are needed — everything serializes behind all_done_gate_.
  r->io.arrival = std::max(last_issue_, all_done_gate_);
  capture_pre_stamps(*r);
  try {
    r->completion = device_.submit(r->io);
  } catch (const nand::PowerLoss& loss) {
    on_power_loss(*r, loss.op_index);
    throw;
  }
  last_issue_ = r->io.arrival;
  all_done_gate_ = std::max(all_done_gate_, r->completion.done);
  CompletionRecord& rec = records_[r->seq];
  rec.submitted = r->io.arrival;
  rec.done = r->completion.done;
  rec.cls = r->completion.cls;
  rec.accepted = r->completion.accepted;
  rec.data_lost = r->completion.data_lost;
  rec.executed = true;
  if (r->completion.data_lost) ++lost_requests_;
  makespan_ = std::max(makespan_, r->completion.done);
  ++completed_;
  --inflight_;
  // Inline reads were verified inside submit(); mirror the count so the
  // pipeline's accessor means the same thing at every queue depth.
  verified_sectors_ = device_.verified_sectors();
}

void SsdPipeline::flush() {
  UniqueLock lock(mu_);
  while (inflight_ > 0) done_cv_.wait(lock);
  if (crashed_) throw crash_error();
}

void SsdPipeline::drain() { flush(); }

SimTime SsdPipeline::dependency_gate(const Request& req) const {
  // Barriers wait for every issued request; everything waits for barriers.
  SimTime gate = barrier_gate_;
  if (req.ticket.barrier) return std::max(gate, all_done_gate_);
  for (std::uint64_t region : req.ticket.regions) {
    const auto it = region_gates_.find(region);
    if (it == region_gates_.end()) continue;
    // Reads order after the last overlapping write; writes after every
    // overlapping access (a write must not complete before an older read of
    // the data it replaces has been served).
    gate = std::max(gate, req.io.write ? it->second.last_any
                                       : it->second.last_excl);
  }
  return gate;
}

void SsdPipeline::capture_pre_stamps(Request& req) {
  // Only the crash harness pays for this: with an armed power cut, the
  // interrupted write's sectors may legitimately read back as either
  // version after the mount, so their pre-submission stamps are kept.
  if (!req.io.write || req.io.trim) return;
  if (device_.oracle() == nullptr) return;
  if (!device_.engine().array().power_cut_armed()) return;
  req.pre_stamps.reserve(req.io.range.size());
  for (SectorAddr s = req.io.range.begin; s < req.io.range.end; ++s) {
    req.pre_stamps.push_back(device_.oracle()->expected(s));
  }
}

void SsdPipeline::device_stage(Request& req) {
  const SimTime trace_arrival = req.io.arrival;
  if (open_loop_) {
    // Open-loop arrivals: the trace timestamp is the submission instant;
    // only dependency ordering can push the issue later. No slot gate, no
    // issue chaining — the simulated schedule is queue_depth-independent.
    req.io.arrival = std::max(trace_arrival, dependency_gate(req));
  } else {
    // Slot gate: with queue_depth simulated requests outstanding, the next
    // one issues when the earliest of them completes.
    SimTime slot_gate = 0;
    if (slots_.size() >= queue_depth_) {
      slot_gate = slots_.top();
      slots_.pop();
    }
    // Fair-share gate: tenant t additionally waits for its own oldest
    // completion once it holds tenant_window_ slots, capping the share of
    // the submission window a flooding tenant can occupy.
    if (!tenant_slots_.empty()) {
      auto& mine = tenant_slots_[std::min<std::size_t>(
          req.io.tenant, tenant_slots_.size() - 1)];
      if (mine.size() >= tenant_window_) {
        slot_gate = std::max(slot_gate, mine.top());
        mine.pop();
      }
    }
    req.io.arrival =
        std::max({last_issue_, slot_gate, dependency_gate(req)});
  }
  capture_pre_stamps(req);
  req.completion = device_.submit_deferred(req.io, &req.plan);
  last_issue_ = req.io.arrival;
  const SimTime done = req.completion.done;
  if (!open_loop_) slots_.push(done);
  if (!open_loop_ && !tenant_slots_.empty()) {
    tenant_slots_[std::min<std::size_t>(req.io.tenant,
                                        tenant_slots_.size() - 1)]
        .push(done);
  }
  all_done_gate_ = std::max(all_done_gate_, done);
  if (req.ticket.barrier) {
    barrier_gate_ = std::max(barrier_gate_, done);
    region_gates_.clear();  // the barrier supersedes every per-region gate
    slots_ = {};            // everything older has logically completed
    if (!open_loop_) slots_.push(done);
    if (!tenant_slots_.empty()) {
      for (auto& heap : tenant_slots_) heap = {};
      if (!open_loop_) {
        tenant_slots_[std::min<std::size_t>(req.io.tenant,
                                            tenant_slots_.size() - 1)]
            .push(done);
      }
    }
  } else {
    for (std::uint64_t region : req.ticket.regions) {
      RegionGate& gate = region_gates_[region];
      gate.last_any = std::max(gate.last_any, done);
      if (req.io.write) gate.last_excl = std::max(gate.last_excl, done);
    }
  }
  makespan_ = std::max(makespan_, done);
  CompletionRecord& rec = records_[req.seq];
  rec.submitted = req.io.arrival;
  rec.done = done;
  rec.queue_delay = open_loop_ ? req.io.arrival - trace_arrival : 0;
  rec.cls = req.completion.cls;
  rec.accepted = req.completion.accepted;
  rec.data_lost = req.completion.data_lost;
  rec.executed = true;
  req.needs_verify = !req.io.write && !req.io.trim &&
                     device_.oracle() != nullptr;
}

void SsdPipeline::verify(Request& req) {
  const ssd::Oracle* oracle = device_.oracle();
  for (const auto& obs : req.plan.observed) {
    const std::uint64_t expected = oracle->expected(obs.sector);
    AF_CHECK_MSG(obs.stamp == expected,
                 "pipeline oracle mismatch: read returned stale or wrong "
                 "data (completion-order violation)");
    ++req.verified;
  }
  AF_CHECK_MSG(req.plan.observed.size() == req.io.range.size(),
               "pipeline read plan did not cover the whole request");
}

void SsdPipeline::finish(std::unique_ptr<Request> req) {
  locks_.release(req->ticket);
  verified_sectors_ += req->verified;
  if (req->completion.data_lost) ++lost_requests_;
  ++completed_;
  --inflight_;
  done_cv_.notify_all();
  work_cv_.notify_all();
}

void SsdPipeline::on_power_loss(Request& req, std::uint64_t op_index) {
  crashed_ = true;
  crash_op_ = op_index;
  if (req.io.write && !req.io.trim) {
    crash_inflight_ = req.io.range;
    crash_pre_stamps_ = std::move(req.pre_stamps);
  }
  // Power is gone: requests still queued behind the interrupted one never
  // touched the device or the oracle — the host never saw them acknowledged.
  for (auto& queued : pending_) {
    locks_.release(queued->ticket);
    ++completed_;
    --inflight_;
  }
  pending_.clear();
  done_cv_.notify_all();
  work_cv_.notify_all();
}

void SsdPipeline::worker_loop() {
  UniqueLock lock(mu_);
  while (true) {
    if (!verify_queue_.empty()) {
      std::unique_ptr<Request> req = std::move(verify_queue_.front());
      verify_queue_.pop_front();
      lock.unlock();
      verify(*req);
      lock.lock();
      finish(std::move(req));
      continue;
    }
    if (!crashed_ && !pending_.empty() &&
        locks_.eligible(pending_.front()->ticket)) {
      // In-order device stage under mu_. If the front is ineligible, an
      // older read still holds a conflicting ticket and is either in
      // verify_queue_ (the branch above drains it first) or mid-verify on
      // another worker (its finish() will wake us).
      std::unique_ptr<Request> req = std::move(pending_.front());
      pending_.pop_front();
      try {
        device_stage(*req);
      } catch (const nand::PowerLoss& loss) {
        locks_.release(req->ticket);
        ++completed_;
        --inflight_;
        on_power_loss(*req, loss.op_index);
        continue;
      }
      if (req->needs_verify) {
        verify_queue_.push_back(std::move(req));
        work_cv_.notify_all();
      } else {
        finish(std::move(req));
      }
      continue;
    }
    if (stopping_ && verify_queue_.empty() &&
        (crashed_ || pending_.empty())) {
      return;
    }
    work_cv_.wait(lock);
  }
}

}  // namespace af::sim

// Admission status of a host command (DESIGN.md §9). The capacity-pressure
// subsystem turns what used to be hard asserts (plane out of free blocks,
// device over-filled) into a modeled, graceful outcome: writes that cannot
// be absorbed fail with kNoSpace, writes against a degraded device fail with
// kReadOnly, and the host decides whether to trim, back off or give up.
//
// The enum itself is [[nodiscard]]: dropping an admission verdict and
// programming anyway is exactly the bug this type exists to prevent (also
// enforced textually by af_lint's nodiscard-space-status rule).
#pragma once

#include <cstdint>

namespace af::ssd {

enum class [[nodiscard]] Status : std::uint8_t {
  kOk = 0,
  /// The device cannot absorb the write: projected live data would leave GC
  /// without the per-plane headroom it needs to ever reclaim space again.
  /// Trimming dead LPNs clears the condition.
  kNoSpace,
  /// The device is in read-only degradation (block retirement ate the spare
  /// capacity some plane needs to keep GC viable). Permanent.
  kReadOnly,
  /// The request completed, but later than its simulated deadline even after
  /// the bounded retry ladder (tail subsystem, DESIGN.md §11). The data is
  /// intact — this is a latency SLO escalation, not a data-loss verdict.
  kDeadlineExceeded,
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kNoSpace:
      return "no-space";
    case Status::kReadOnly:
      return "read-only";
    case Status::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "?";
}

}  // namespace af::ssd

// Device configuration. The `paper()` preset mirrors Table 1 of the paper
// (TLC timings, 64 pages/block, 8 KiB pages, 10% GC threshold) with a
// scalable block count so benches can trade fidelity for runtime.
#pragma once

#include <cstdint>

#include "nand/faults.h"
#include "nand/geometry.h"
#include "nand/timing.h"

namespace af::ssd {

struct SsdConfig {
  nand::Geometry geometry;
  nand::Timing timing;

  /// GC triggers in a plane when its free-block fraction drops below this.
  double gc_threshold = 0.10;
  /// Hard reserve: blocks per plane GC itself may consume; allocations during
  /// GC never trigger nested GC thanks to this margin.
  std::uint32_t gc_reserve_blocks = 2;

  /// Partial (resumable) GC: at most this many page migrations per GC
  /// invocation; a half-collected victim is resumed by later invocations
  /// (cf. Sha et al., TACO'21 — the paper's reference on GC-induced long
  /// tails). Bounds the chip-time burst a single pass injects.
  std::uint32_t gc_pages_per_pass = 8;

  /// Fraction of raw capacity exported as logical space (the rest is
  /// over-provisioning for GC headroom and Across-FTL's area pool).
  double exported_fraction = 0.85;

  /// DRAM budget for cached translation pages (the CMT). Schemes with larger
  /// mapping tables (MRSM) thrash this; the baseline mostly fits (§4.2.4).
  std::uint64_t map_cache_bytes = 0;  // 0 = sized at paper() time

  /// Store per-sector version stamps for the verification oracle.
  bool track_payload = false;

  /// NAND fault injection (seeded, deterministic). All-zero rates (the
  /// default) disable injection entirely: no RNG draws, no behaviour change.
  /// See DESIGN.md "Fault model & recovery" for the retry / retirement /
  /// read-only semantics layered on top.
  nand::FaultConfig faults;

  /// Read-only degradation floor: the device drops to read-only mode when
  /// retirement leaves any plane with fewer usable blocks than the GC
  /// trigger + reserve + this margin (writes would otherwise wedge GC).
  std::uint32_t degrade_margin_blocks = 2;

  /// Crash-consistency checkpoint journal (DESIGN.md §7). Off by default:
  /// `interval_requests == 0` writes no journal and tracks no dirty state,
  /// keeping the no-crash path bit-identical to the PR 2 baseline; recovery
  /// then falls back to a full OOB scan.
  struct CheckpointPolicy {
    /// Write a journal entry every this many accepted write requests (0 =
    /// journaling off).
    std::uint64_t interval_requests = 0;
    /// Every Nth journal entry is a full mapping snapshot; the entries in
    /// between are deltas (dirty entries only).
    std::uint32_t snapshot_every = 8;

    [[nodiscard]] bool enabled() const { return interval_requests > 0; }
  };
  CheckpointPolicy checkpoint;

  /// Data-integrity subsystem (DESIGN.md §8): ECC read-retry ladder over the
  /// NAND bit-error model, background scrubbing, and die-level parity
  /// stripes. Scrub and parity default off and the BER model (faults.ber_*)
  /// defaults to zero, so a default-config run is bit-identical to a build
  /// without the subsystem.
  struct IntegrityConfig {
    /// Raw bit errors the ECC engine corrects in a single sensing.
    std::uint32_t ecc_correctable_bits = 8;
    /// Read-retry ladder depth past the initial sensing. Each step re-senses
    /// with tuned reference voltages — one extra flash read of latency —
    /// and sees the page's bit errors scaled by `read_retry_ber_scale`.
    /// An uncorrectable read is one that exhausts the ladder.
    std::uint32_t read_retry_steps = 4;
    double read_retry_ber_scale = 0.5;

    /// Background scrub: every `scrub_interval_requests` accepted host
    /// requests the scrubber examines up to `scrub_pages_per_tick` valid
    /// pages (cursor sweep over the array) and refreshes — relocates through
    /// the normal GC machinery — any whose expected bit errors have reached
    /// `scrub_ber_watermark`. 0 = scrubbing off.
    std::uint64_t scrub_interval_requests = 0;
    std::uint32_t scrub_pages_per_tick = 8;
    double scrub_ber_watermark = 4.0;

    /// RAID-5-style stripes: every `parity_stripe_width - 1` page programs
    /// close with one parity-page program, and an uncorrectable member is
    /// rebuilt from its surviving peers + parity. 0 or 1 = parity off.
    std::uint32_t parity_stripe_width = 0;

    [[nodiscard]] bool scrub_enabled() const {
      return scrub_interval_requests > 0;
    }
    [[nodiscard]] bool parity_enabled() const {
      return parity_stripe_width >= 2;
    }
  };
  IntegrityConfig integrity;

  /// Capacity-pressure subsystem (DESIGN.md §9). Zero-default: the write
  /// throttle and wear leveling are off, and while the TRIM path and the
  /// kNoSpace admission check are always armed, they only act when the host
  /// actually sends trims or fills the device past what GC can sustain —
  /// situations the default benches never create, so a default-config run is
  /// bit-identical to a build without the subsystem.
  struct CapacityPolicy {
    /// GC-debt write-pacing valve: a host data program issued while its
    /// plane holds fewer than plane_trigger + throttle_window_blocks free
    /// blocks stalls throttle_ns_per_block × shortfall before hitting flash
    /// (the stall rides the request latency, so it surfaces as p-latency).
    /// 0 = valve off.
    std::uint32_t throttle_window_blocks = 0;
    std::uint64_t throttle_ns_per_block = 0;

    /// Static+dynamic wear leveling: once the array-wide (max − min) erase
    /// spread reaches this, each GC pass additionally migrates the plane's
    /// coldest (least-erased, fully written) block so its erase count
    /// catches up. 0 = leveling off.
    std::uint32_t wear_spread_threshold = 0;
    /// Cold-block migrations allowed per GC pass while the spread is high.
    std::uint32_t wear_migrate_per_pass = 1;

    /// Admission headroom: writes are refused with kNoSpace once projected
    /// live pages would leave some plane fewer usable blocks than
    /// gc_reserve_blocks + this margin (frontier + GC need room to turn).
    std::uint32_t no_space_margin_blocks = 2;

    [[nodiscard]] bool throttle_enabled() const {
      return throttle_window_blocks > 0 && throttle_ns_per_block > 0;
    }
    [[nodiscard]] bool wear_enabled() const {
      return wear_spread_threshold > 0;
    }
  };
  CapacityPolicy capacity;

  /// Concurrent in-flight request pipeline (DESIGN.md §10). Zero-default:
  /// `queue_depth <= 1` keeps the pipeline machinery out of the request path
  /// entirely (no threads, no locks, no queue), so a default-config run is
  /// bit-identical to a build without the subsystem. At `queue_depth > 1`
  /// the host driver keeps up to queue_depth requests in flight: the device
  /// stage still services them in submission order (determinism contract),
  /// but their simulated issue times overlap across channels/chips and read
  /// verification completes out of order on worker threads.
  struct PipelineConfig {
    /// Host requests allowed in flight at once (closed-loop driver). 0 or 1
    /// = pipeline off; the inline serial path services every request.
    std::uint32_t queue_depth = 0;
    /// Worker threads (via common/thread_pool.h) that drive the device
    /// stage and verify completed reads. 0 = pick a small default. Worker
    /// count never changes any simulated number — only wall-clock time.
    std::uint32_t workers = 0;
    /// Granularity of the sharded per-LPN-range lock table: logical pages
    /// per lock region. Smaller regions mean fewer false conflicts between
    /// near-miss requests; larger regions mean fewer lock entries per
    /// request. Dependency gating (and therefore simulated timing) keys off
    /// the same regions, so this knob is part of the determinism tuple.
    std::uint32_t region_pages = 1;
    /// Open-loop arrivals: issue each request at its trace timestamp (still
    /// honoring dependency ordering) instead of the closed-loop QD window,
    /// so queueing delay is measured rather than suppressed. Simulated
    /// results become independent of queue_depth.
    bool open_loop = false;

    [[nodiscard]] bool enabled() const { return queue_depth > 1 || open_loop; }
    [[nodiscard]] std::uint32_t effective_workers() const {
      return workers > 0 ? workers : 2;
    }
  };
  PipelineConfig pipeline;

  /// Tail-latency / deadline subsystem (DESIGN.md §11). Zero-default: with
  /// both deadlines at 0 no ledger is kept, no background op is ever
  /// suspended, no hedge fires and no die is quarantined, so a
  /// default-config run is bit-identical to a build without the subsystem.
  /// All times are simulated; the subsystem keys off request arrival
  /// timestamps and the engine op-clock, never a wall clock.
  struct DeadlineConfig {
    /// Simulated completion budget for a read/write request, measured from
    /// its arrival timestamp. 0 = no deadline for that direction.
    std::uint64_t read_deadline_us = 0;
    std::uint64_t write_deadline_us = 0;
    /// Fire a hedged parity-reconstruct read when the primary sensing would
    /// finish later than arrival + this (requires parity stripes). 0 = off.
    std::uint64_t hedge_after_us = 0;
    /// Retry-with-backoff ladder for reads that still miss their deadline:
    /// up to this many re-issues before the completion surfaces
    /// Status::kDeadlineExceeded.
    std::uint32_t max_retries = 2;
    /// Backoff before retry k is 2^k × this (simulated).
    std::uint64_t retry_backoff_us = 50;
    /// Allow foreground reads to suspend in-flight background erase/program
    /// ops (GC, wear leveling, scrub relocation, checkpoint journal) when
    /// the read would otherwise miss its deadline.
    bool preempt = false;
    /// Starvation guard: after this many suspensions one victim op runs to
    /// completion (further preemptions refused).
    std::uint32_t suspend_ceiling = 8;
    /// Max preempting reads stacked on one suspended op at a time.
    std::uint32_t suspend_nesting_cap = 4;
    /// Quarantine a die after this many deadline-missing flash reads while
    /// the die is inside a fail-slow episode; allocation steers away until
    /// the episode ends. 0 = quarantine off.
    std::uint32_t quarantine_misses = 0;

    [[nodiscard]] bool enabled() const {
      return read_deadline_us > 0 || write_deadline_us > 0;
    }
    [[nodiscard]] bool hedging() const { return hedge_after_us > 0; }
  };
  DeadlineConfig deadline;

  /// Multi-tenant QoS isolation (DESIGN.md §12). Zero-default: with
  /// `tenants <= 1` no stream table is grown, no token bucket is consulted,
  /// no fair-share gate arms and no per-tenant stats are allocated, so a
  /// default-config run is bit-identical to a build without the subsystem.
  /// All pacing is simulated time keyed off request arrival timestamps.
  struct QosPolicy {
    /// Number of tenants sharing the device. 0 or 1 = subsystem off.
    std::uint32_t tenants = 0;
    /// Give each tenant its own data-write stream (frontier blocks per
    /// plane), so tenants never co-mingle pages in a block and GC relocates
    /// — and charges — each tenant's garbage separately.
    bool per_tenant_streams = true;
    /// Split each tenant's stream in two: host writes go to the hot
    /// frontier, GC relocations of that tenant's pages to the cold one
    /// (generational separation within the tenant).
    bool hot_cold_split = false;
    /// Token-bucket admission, per tenant: sustained rate and burst depth in
    /// sectors. A request finding the bucket dry is stalled (simulated) until
    /// its tokens accrue; the stall rides the recorded latency. 0 rate =
    /// bucket off (that tenant is unpaced).
    std::uint64_t rate_sectors_per_s = 0;
    std::uint64_t burst_sectors = 0;
    /// GC-debt surcharge: each page GC relocates on behalf of a tenant adds
    /// this many sectors of extra token cost to that tenant's next writes
    /// (the noisy neighbor pays for its own garbage). 0 = no surcharge.
    std::uint32_t gc_debt_sectors_per_page = 0;
    /// Per-tenant capacity share as a fraction of logical pages ×1000 (e.g.
    /// 600 = 60%). A tenant whose live footprint would exceed its share gets
    /// kNoSpace while the others keep writing. 0 = no per-tenant quota.
    std::uint32_t capacity_share_millis = 0;
    /// Fair-share submission gate in the pipeline: cap each tenant's
    /// in-flight requests at queue_depth / tenants (min 1), so a QD-hogging
    /// tenant queues behind its own window instead of starving the others.
    bool fair_share = false;

    [[nodiscard]] bool enabled() const { return tenants > 1; }
    [[nodiscard]] bool streams_enabled() const {
      return enabled() && per_tenant_streams;
    }
    [[nodiscard]] bool bucket_enabled() const {
      return enabled() && rate_sectors_per_s > 0;
    }
  };
  QosPolicy qos;

  /// Across-FTL design-choice toggles (ablation knobs; DESIGN.md §ablations).
  struct AcrossPolicy {
    /// Remap across-page writes at all; false degrades to baseline servicing
    /// (the scheme still pays its two-level-table footprint).
    bool enable_remap = true;
    /// Merge overlapping updates into the area when the union fits one page;
    /// false rolls the area back on every overlapping update.
    bool enable_amerge = true;
    /// Metadata-only area shrink when an overwrite covers one page's share;
    /// false rolls back instead.
    bool enable_shrink = true;
    /// Score GC victims by each area page's live sector range instead of
    /// treating every area page as fully live. Sharpens victim choice under
    /// heavy shrinking, but changes which blocks GC picks — off by default
    /// to keep results comparable with the paper-baseline runs.
    bool area_live_weight = false;
  };
  AcrossPolicy across;

  [[nodiscard]] std::uint64_t logical_pages() const {
    return static_cast<std::uint64_t>(
        static_cast<double>(geometry.total_pages()) * exported_fraction);
  }
  [[nodiscard]] std::uint64_t logical_sectors() const {
    return logical_pages() * geometry.sectors_per_page();
  }

  /// Table-1-shaped TLC device. `blocks_per_plane` scales total capacity
  /// (the paper's 262144 total blocks ≈ 128 GiB; benches default far smaller
  /// so GC is exercised within seconds). `page_kb` ∈ {4, 8, 16} selects the
  /// Figure 13/14 page-size variants.
  static SsdConfig paper(std::uint32_t page_kb = 8,
                         std::uint32_t blocks_per_plane = 128);

  /// Miniature device for unit tests: few planes, tiny blocks, payload
  /// tracking on.
  static SsdConfig tiny();
};

}  // namespace af::ssd

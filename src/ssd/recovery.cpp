#include "ssd/recovery.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/check.h"
#include "ssd/engine.h"
#include "ssd/integrity.h"

namespace af::ssd {

RecoveryReport Recovery::mount(Engine& engine, RecoverableMapping& scheme) {
  RecoveryReport report;
  nand::FlashArray& array = engine.array();
  const nand::Geometry& geom = array.geometry();
  MapDirectory* dir = engine.map_directory_mut();
  AF_CHECK_MSG(dir != nullptr, "Recovery::mount before init_map_space");
  SimTime clock = 0;

  // --- 1. Checkpoint chain --------------------------------------------------
  std::uint64_t journal_seq = 0;
  {
    // Copy: restoring the GTD below touches the directory, never the root,
    // but keep the loop independent of live root mutation anyway.
    const nand::MountRoot root = array.mount_root();
    if (root.valid) {
      report.used_checkpoint = true;
      report.checkpoint_seq = root.journal_seq;
      journal_seq = root.journal_seq;

      const auto read_entry = [&](const std::vector<Ppn>& pages) {
        std::vector<std::uint8_t> bytes;
        for (const Ppn ppn : pages) {
          clock = engine.mount_read(ppn, clock);
          ++report.checkpoint_pages_read;
          const std::vector<std::uint8_t>* blob = array.ckpt_blob(ppn);
          AF_CHECK_MSG(blob != nullptr, "checkpoint page lost its payload");
          bytes.insert(bytes.end(), blob->begin(), blob->end());
        }
        return bytes;
      };
      const auto restore_gtd = [&](ByteSource& src) {
        const std::uint64_t n = src.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
          const std::uint64_t map_page = src.u64();
          dir->recover_set_location(map_page, Ppn{src.u64()});
        }
      };

      {
        const std::vector<std::uint8_t> bytes = read_entry(root.snapshot_pages);
        ByteSource src(bytes);
        scheme.deserialize_mapping(src);
        restore_gtd(src);
        AF_CHECK_MSG(src.done(), "snapshot payload has trailing bytes");
      }
      for (const std::vector<Ppn>& delta : root.delta_pages) {
        const std::vector<std::uint8_t> bytes = read_entry(delta);
        ByteSource src(bytes);
        scheme.apply_delta(src);
        restore_gtd(src);
        AF_CHECK_MSG(src.done(), "delta payload has trailing bytes");
      }
    }
  }

  // --- 2. Bounded OOB scan --------------------------------------------------
  struct Claim {
    std::uint64_t seq = 0;
    Ppn ppn;
    SectorRange trim{};     // tombstone range when trim_event
    bool trim_event = false;
  };
  std::vector<Claim> claims;
  // TRIM tombstones share the programs' seq counter, so merging them into
  // the claim stream replays the pre-crash interleaving exactly: a trim
  // unmaps everything claimed before it, and a later program re-maps over
  // it. Tombstones at or below journal_seq are already folded into the
  // checkpoint (the checkpointer prunes them).
  for (const nand::FlashArray::TrimTombstone& tomb : array.trim_log()) {
    if (tomb.seq <= journal_seq) continue;
    Claim ev;
    ev.seq = tomb.seq;
    ev.trim = {tomb.begin, tomb.end};
    ev.trim_event = true;
    claims.push_back(ev);
  }
  for (std::uint64_t flat = 0; flat < geom.total_blocks(); ++flat) {
    const nand::BlockInfo& info = array.block(flat);
    if (info.retired || info.written == 0) continue;
    if (info.max_seq <= journal_seq) {
      ++report.blocks_skipped;
      continue;
    }
    ++report.blocks_scanned;
    const std::uint64_t first = flat * geom.pages_per_block;
    for (std::uint32_t p = 0; p < info.written; ++p) {
      const Ppn ppn{first + p};
      clock = engine.mount_read(ppn, clock);
      ++report.pages_scanned;
      const nand::OobRecord& oob = array.oob(ppn);
      AF_CHECK_MSG(oob.written(), "programmed page without an OOB record");
      if (oob.seq <= journal_seq) continue;  // covered by the checkpoint
      if (oob.torn) {
        ++report.torn_pages;
        continue;
      }
      claims.push_back({oob.seq, ppn});
    }
  }
  std::sort(claims.begin(), claims.end(),
            [](const Claim& a, const Claim& b) { return a.seq < b.seq; });

  // --- 3. Replay claims, oldest first ---------------------------------------
  // Later claims overwrite earlier ones exactly as the pre-crash execution
  // did. This leans on a write-path invariant: every remap drops the
  // superseded copy BEFORE programming its replacement, so no later-seq
  // program (in particular a GC relocation running inside the replacing
  // program) can ever carry superseded payload.
  for (const Claim& claim : claims) {
    if (claim.trim_event) {
      scheme.recover_trim(claim.trim);
      ++report.trims_replayed;
      continue;
    }
    const nand::OobRecord& oob = array.oob(claim.ppn);
    switch (oob.owner.kind) {
      case nand::PageOwner::Kind::kMap:
        dir->recover_set_location(oob.owner.id, claim.ppn);
        break;
      case nand::PageOwner::Kind::kCkpt:
        // Journal chunks are referenced through the mount root, not claimed;
        // chunks of an incomplete entry are orphans and die in step 4.
        break;
      case nand::PageOwner::Kind::kParity:
        // Parity pages are engine-owned: the stripe rebuild below regroups
        // them from their OOB stripe stamps, and reconciliation references
        // the ones whose stripes survived.
        break;
      case nand::PageOwner::Kind::kNone:
        AF_CHECK_MSG(false, "written page with no owner");
        break;
      default:
        scheme.recover_claim(oob, claim.ppn);
        break;
    }
    ++report.claims_applied;
  }
  scheme.recover_finalize();

  // Regroup the parity-stripe directory from OOB stamps (a metadata pass:
  // the stamps were already read by the scan above, or would live in the
  // checkpoint a real firmware writes — no extra reads charged).
  report.stripes_recovered = engine.rebuild_parity_state();

  // --- 4. Reconciliation ----------------------------------------------------
  // Flash validity is RAM-fiction: invalidations never hit the medium, so
  // re-derive page validity from what the recovered tables reference.
  // Ordered map: iteration order feeds determinism-sensitive counters.
  std::map<std::uint64_t, nand::PageOwner> referenced;
  const auto add_ref = [&](Ppn ppn, nand::PageOwner owner) {
    const auto [it, inserted] = referenced.emplace(ppn.get(), owner);
    (void)it;
    AF_CHECK_MSG(inserted, "two recovered mapping entries claim one page");
  };
  scheme.recover_enumerate(add_ref);
  dir->for_each_flash_location([&](std::uint64_t map_page, Ppn ppn) {
    add_ref(ppn, nand::PageOwner::map(map_page));
  });
  {
    const nand::MountRoot& root = array.mount_root();
    if (root.valid) {
      for (const Ppn ppn : root.snapshot_pages) {
        add_ref(ppn, array.oob(ppn).owner);
      }
      for (const std::vector<Ppn>& delta : root.delta_pages) {
        for (const Ppn ppn : delta) add_ref(ppn, array.oob(ppn).owner);
      }
    }
  }
  if (const StripeTracker* stripes = engine.stripes()) {
    // Parity pages of surviving stripes stay valid; parity whose stripe
    // broke before the crash is an orphan and gets reclaimed below.
    stripes->for_each_sealed([&](std::uint64_t id,
                                 const StripeTracker::Stripe& stripe) {
      add_ref(stripe.parity, nand::PageOwner::parity(id));
    });
  }
  for (std::uint64_t raw = 0; raw < geom.total_pages(); ++raw) {
    const Ppn ppn{raw};
    const auto it = referenced.find(raw);
    switch (array.state(ppn)) {
      case nand::PageState::kValid:
        if (it == referenced.end()) {
          array.recover_invalidate(ppn);
          ++report.orphans_invalidated;
        } else {
          AF_CHECK_MSG(array.owner(ppn) == it->second,
                       "recovered owner disagrees with the page's OOB owner");
        }
        break;
      case nand::PageState::kInvalid:
        if (it != referenced.end()) {
          array.recover_revive(ppn, it->second);
          ++report.pages_revived;
        }
        break;
      case nand::PageState::kFree:
      case nand::PageState::kRetired:
        AF_CHECK_MSG(it == referenced.end(),
                     "recovered mapping references a free/retired page");
        break;
    }
  }

  // --- 5. QoS tenant state --------------------------------------------------
  // Re-derive per-tenant page ownership and re-adopt per-slot write
  // frontiers from OOB stamps, before the victim rebuild so adopted active
  // blocks are excluded from the victim heaps.
  engine.rebuild_qos_state();

  // --- 6. GC victim state ---------------------------------------------------
  engine.rebuild_victim_state();

  report.flash_reads = report.checkpoint_pages_read + report.pages_scanned;
  report.mount_time_ns = clock;
  return report;
}

}  // namespace af::ssd

#include "ssd/engine.h"

#include <algorithm>

#include "common/log.h"
#include "ssd/integrity.h"

namespace af::ssd {

Engine::Engine(const SsdConfig& config)
    : Engine(config,
             nand::FlashArray(config.geometry, config.track_payload,
                              config.faults),
             /*adopted=*/false) {}

Engine::Engine(const SsdConfig& config, nand::FlashArray image)
    : Engine(config, std::move(image), /*adopted=*/true) {}

Engine::Engine(const SsdConfig& config, nand::FlashArray image, bool adopted)
    : config_(config),
      array_(std::move(image)),
      timeline_(config.geometry, config.timing) {
  AF_CHECK_MSG(array_.geometry().total_pages() ==
                       config_.geometry.total_pages() &&
                   array_.geometry().page_bytes == config_.geometry.page_bytes,
               "mounted flash image does not match the configured geometry");
  const auto planes = config_.geometry.total_planes();
  if (config_.qos.streams_enabled()) {
    stream_slots_ += config_.qos.tenants * (config_.qos.hot_cold_split ? 2 : 1);
    // The OOB stream stamp is a byte; plenty for any sane tenant count.
    AF_CHECK_MSG(stream_slots_ <= 0xff, "too many tenant stream slots");
  }
  planes_.resize(planes);
  for (std::uint64_t p = 0; p < planes; ++p) {
    PlaneState& plane = planes_[p];
    plane.free_blocks.reserve(config_.geometry.blocks_per_plane);
    // Pop from the back; seed in reverse so the lowest free block is used
    // first. On a fresh array every block qualifies; on a mounted image only
    // untouched, unretired blocks do — partially-written ones have lost
    // their stream identity and re-enter service through GC.
    for (std::uint32_t b = config_.geometry.blocks_per_plane; b-- > 0;) {
      const std::uint64_t flat = p * config_.geometry.blocks_per_plane + b;
      const nand::BlockInfo& info = array_.block(flat);
      if (info.retired) {
        ++plane.retired;
      } else if (info.written == 0) {
        plane.free_blocks.push_back(b);
      }
    }
    plane.active.assign(stream_slots_, kNoBlock);
    plane.gc_victim = kNoBlock;
  }
  if (config_.qos.enabled()) {
    page_tenant_.assign(config_.geometry.total_pages(), kNoTenant);
    tenant_live_pages_.assign(config_.qos.tenants, 0);
    tenant_gc_debt_.assign(config_.qos.tenants, 0);
    stats_.init_tenants(config_.qos.tenants);
  }
  page_weight_.assign(config_.geometry.total_pages(), 0);
  cached_weight_.assign(planes * config_.geometry.blocks_per_plane, 0);
  // victim_key() packs the block weight into bits [33, 63]; a block's weight
  // tops out at pages_per_block * kFullPageWeight.
  AF_CHECK_MSG(std::uint64_t{config_.geometry.pages_per_block} *
                       kFullPageWeight <
                   (std::uint64_t{1} << 31),
               "block weight range overflows the victim-index key");
  AF_CHECK_MSG(gc_trigger_blocks() + 2 + config_.gc_reserve_blocks <
                   config_.geometry.blocks_per_plane,
               "GC threshold leaves no usable capacity");
  if (config_.integrity.parity_enabled()) {
    stripes_ = std::make_unique<StripeTracker>(
        config_.integrity.parity_stripe_width);
  }
  if (config_.deadline.quarantine_misses > 0) {
    const std::uint64_t dies =
        config_.geometry.total_chips() * config_.geometry.dies_per_chip;
    die_misses_.assign(dies, 0);
    die_quarantined_.assign(dies, 0);
  }
  if (adopted) {
    // Re-derive the degradation verdict the crashed device had reached.
    const std::uint32_t floor = gc_trigger_blocks() + config_.gc_reserve_blocks +
                                config_.degrade_margin_blocks;
    for (std::uint64_t p = 0; p < planes; ++p) {
      if (config_.geometry.blocks_per_plane - planes_[p].retired < floor) {
        read_only_ = true;
      }
    }
  }
}

Engine::~Engine() = default;

// --- Flash operations --------------------------------------------------------

ReadResult Engine::flash_read(Ppn ppn, OpKind kind, SimTime ready) {
  if (array_.state(ppn) != nand::PageState::kValid) {
    const nand::PageOwner owner = array_.owner(ppn);
    AF_LOG_WARN("flash read of non-valid ppn %llu (state %d, owner kind %d id %llu)",
                static_cast<unsigned long long>(ppn.get()),
                static_cast<int>(array_.state(ppn)),
                static_cast<int>(owner.kind),
                static_cast<unsigned long long>(owner.id));
  }
  AF_CHECK_MSG(array_.state(ppn) == nand::PageState::kValid,
               "flash read of non-valid page");
  const bool ber_on = config_.faults.ber_enabled();
  // note_read: power-cut op accounting (may throw PowerLoss) plus the
  // block's read-disturb exposure.
  array_.note_read(ppn);
  if (ber_on) ++stats_.faults().read_disturb_reads;
  stats_.count_flash_op(kind);
  SimTime done = sched_read(ppn, kind, ready);
  // Transient read failures recover through read-retry: re-sense the same
  // page (tuned reference voltages); each retry costs a full read on the
  // page's chip and channel.
  for (std::uint32_t r = array_.faults().read_retries(); r > 0; --r) {
    array_.note_read(ppn);
    if (ber_on) ++stats_.faults().read_disturb_reads;
    stats_.count_flash_op(kind);
    ++stats_.faults().read_retries;
    done = sched_read(ppn, kind, done);
  }
  if (!ber_on) return {maybe_hedge(ppn, done), ReadStatus::kOk};

  // Latent bit errors: one Poisson draw per sensing at the page's current
  // intensity. Within the ECC engine's strength the read just succeeds.
  const SsdConfig::IntegrityConfig& icfg = config_.integrity;
  std::uint32_t errors = array_.draw_read_errors(ppn);
  stats_.faults().raw_bit_errors += errors;
  if (errors <= icfg.ecc_correctable_bits) {
    return {maybe_hedge(ppn, done), ReadStatus::kOk};
  }

  // ECC read-retry ladder: each step re-senses with tuned reference
  // voltages — a full extra read — and sees the page's error intensity
  // scaled down by read_retry_ber_scale per step.
  double scale = 1.0;
  for (std::uint32_t step = 0; step < icfg.read_retry_steps; ++step) {
    scale *= icfg.read_retry_ber_scale;
    array_.note_read(ppn);
    ++stats_.faults().read_disturb_reads;
    stats_.count_flash_op(kind);
    ++stats_.faults().ecc_retry_steps;
    done = sched_read(ppn, kind, done);
    errors = array_.faults().raw_bit_errors(array_.page_ber(ppn) * scale);
    stats_.faults().raw_bit_errors += errors;
    if (errors <= icfg.ecc_correctable_bits) {
      ++stats_.faults().ecc_retry_recoveries;
      return {maybe_hedge(ppn, done), ReadStatus::kEccRetried};
    }
  }
  ++stats_.faults().uncorrectable_reads;

  // Uncorrectable: rebuild from the page's parity stripe if one is intact.
  // A member rebuilds from its peers + parity; the parity page itself
  // rebuilds from all members. Peer sensings are charged but draw no errors
  // of their own (no recursion — the rebuild is an XOR over raw cells, not
  // an ECC decode of each peer in isolation).
  if (stripes_ != nullptr) {
    bool is_parity = false;
    const StripeTracker::Stripe* stripe = stripes_->stripe_of(ppn);
    if (stripe == nullptr) {
      stripe = stripes_->stripe_by_parity(ppn);
      is_parity = stripe != nullptr;
    }
    if (stripe != nullptr) {
      auto rebuild_sense = [&](Ppn peer) {
        array_.note_read(peer);
        ++stats_.faults().read_disturb_reads;
        stats_.count_flash_op(OpKind::kRebuildRead);
        ++stats_.faults().parity_rebuild_reads;
        done = sched_read(peer, OpKind::kRebuildRead, done, /*account=*/false);
      };
      for (const Ppn peer : stripe->members) {
        if (peer.get() == ppn.get()) continue;
        rebuild_sense(peer);
      }
      if (!is_parity) rebuild_sense(stripe->parity);
      ++stats_.faults().parity_rebuilds;
      return {done, ReadStatus::kRebuilt};
    }
  }

  // A lost parity page costs only its stripe's protection (the caller drops
  // the stripe); lost anything-else is host or mapping data gone — degrade
  // to read-only like spare exhaustion does, and keep serving what remains.
  if (array_.owner(ppn).kind == nand::PageOwner::Kind::kParity) {
    return {done, ReadStatus::kLost};
  }
  ++stats_.faults().lost_pages;
  if (!read_only_) {
    read_only_ = true;
    ++stats_.faults().read_only_entries;
    AF_LOG_WARN(
        "uncorrectable read of ppn %llu with no intact parity stripe: "
        "device enters read-only mode",
        static_cast<unsigned long long>(ppn.get()));
  }
  return {done, ReadStatus::kLost};
}

SimTime Engine::mount_read(Ppn ppn, SimTime ready) {
  stats_.count_flash_op(OpKind::kMountRead);
  return sched_read(ppn, OpKind::kMountRead, ready, /*account=*/false);
}

// --- Tail-latency subsystem (DESIGN.md §11) ----------------------------------

double Engine::slow_of(const nand::PhysAddr& a) {
  if (!config_.faults.slow_enabled()) return 1.0;
  return array_.faults().slow_factor(die_of(a), array_.op_clock());
}

SimTime Engine::sched_read(Ppn ppn, OpKind kind, SimTime ready, bool account) {
  const nand::PhysAddr addr = config_.geometry.decode(ppn);
  const double slow = slow_of(addr);
  const std::uint64_t chip = config_.geometry.chip_index(addr);
  SimTime done = 0;
  bool scheduled = false;
  if (ledger_ && config_.deadline.preempt) {
    nand::SuspendSlot* slot = array_.suspend_slot(chip);
    if (slot != nullptr && slot->end <= ready) {
      array_.disarm_suspendable(chip);  // the victim already completed
      slot = nullptr;
    }
    if (slot != nullptr) {
      // Queueing estimate behind the in-flight background op (unscaled cell
      // time — the policy question is "would the wait bust the deadline",
      // and the wait is dominated by the victim's remaining window).
      const SimTime est = std::max(ready, timeline_.chip_free_at(chip)) +
                          config_.timing.read_ns +
                          config_.timing.transfer_ns_per_page;
      if (est > ledger_->deadline) {
        TailStats& tail = stats_.tail();
        nand::SuspendCounters& ctr = array_.suspend_counters();
        // Stacked suspension: this read lands before the previous
        // preemption's resume point, deepening the suspend stack.
        const std::uint32_t nested =
            ready < slot->front ? slot->nested + 1 : 1;
        if (slot->suspends >= config_.deadline.suspend_ceiling) {
          // Starvation guard: the victim has been pushed back enough times;
          // it now runs to completion and this read queues like any other.
          ++tail.suspend_ceiling_hits;
          ++ctr.ceiling_hits;
        } else if (nested > config_.deadline.suspend_nesting_cap) {
          ++tail.suspend_nesting_hits;
          ++ctr.nesting_hits;
        } else {
          slot->nested = nested;
          ++slot->suspends;
          if (slot->kind == nand::SuspendSlot::Kind::kErase) {
            ++tail.erase_suspends;
            ++ctr.erase_suspends;
          } else {
            ++tail.program_suspends;
            ++ctr.program_suspends;
          }
          tail.resume_overhead_ns += config_.timing.suspend_resume_ns;
          ctr.resume_overhead_ns += config_.timing.suspend_resume_ns;
          done = timeline_
                     .schedule_preempting_read(addr, ready, slow, *slot,
                                               config_.timing.suspend_resume_ns)
                     .done;
          scheduled = true;
        }
      }
    }
  }
  if (!scheduled) done = timeline_.schedule_read(addr, ready, slow);
  stats_.note_op_latency(kind, done - ready);
  if (account && ledger_ && done > ledger_->deadline) {
    note_deadline_miss(die_of(addr));
  }
  return done;
}

SimTime Engine::maybe_hedge(Ppn ppn, SimTime done) {
  if (!ledger_ || ledger_->hedge_at == 0 || stripes_ == nullptr) return done;
  if (done <= ledger_->hedge_at) return done;
  const StripeTracker::Stripe* stripe = stripes_->stripe_of(ppn);
  if (stripe == nullptr) return done;
  // Race the stalled primary with a parity reconstruct from the stripe's
  // peers, launched at the hedge point. The peer sensings fan out across
  // their own chips (each scheduled from the same start), so the reconstruct
  // completes when the slowest peer does; the first of the two completions
  // wins. Both paths' device time is charged — hedging buys latency with
  // bandwidth. Peer payloads XOR to the primary's, so the oracle is
  // indifferent to which side won.
  ++stats_.tail().hedged_reads;
  SimTime hedge_done = ledger_->hedge_at;
  auto peer_sense = [&](Ppn peer) {
    array_.note_read(peer);
    if (config_.faults.ber_enabled()) ++stats_.faults().read_disturb_reads;
    stats_.count_flash_op(OpKind::kRebuildRead);
    const SimTime t =
        sched_read(peer, OpKind::kRebuildRead, ledger_->hedge_at,
                   /*account=*/false);
    hedge_done = std::max(hedge_done, t);
  };
  for (const Ppn peer : stripe->members) {
    if (peer.get() == ppn.get()) continue;
    peer_sense(peer);
  }
  peer_sense(stripe->parity);
  if (hedge_done < done) {
    ++stats_.tail().hedge_wins;
    return hedge_done;
  }
  return done;
}

void Engine::note_deadline_miss(std::uint64_t die) {
  ++stats_.tail().deadline_misses;
  if (die_misses_.empty()) return;
  ++die_misses_[die];
  update_quarantine(die);
}

void Engine::update_quarantine(std::uint64_t die) {
  if (die_quarantined_.empty()) return;
  // Quarantine keys off the episode state, not the miss count alone: a miss
  // burst caused by queueing (not sickness) must not banish a healthy die,
  // and a die whose episode ended is readmitted on the next look.
  const bool sick = config_.faults.slow_episodes_enabled() &&
                    array_.faults().die_sick(die, array_.op_clock());
  if (die_quarantined_[die] == 0) {
    if (sick && die_misses_[die] >= config_.deadline.quarantine_misses) {
      die_quarantined_[die] = 1;
      ++quarantined_count_;
      ++stats_.tail().quarantines;
    }
  } else if (!sick) {
    die_quarantined_[die] = 0;
    --quarantined_count_;
    ++stats_.tail().unquarantines;
    die_misses_[die] = 0;
  }
}

std::uint64_t Engine::quarantined_dies() const { return quarantined_count_; }

bool Engine::die_quarantined(std::uint64_t die) const {
  return !die_quarantined_.empty() && die_quarantined_[die] != 0;
}

Engine::Programmed Engine::program_on(std::uint64_t plane, std::uint32_t slot,
                                      nand::PageOwner owner, OpKind kind,
                                      SimTime ready,
                                      const nand::OobExtra* oob,
                                      std::uint16_t tenant) {
  const std::uint32_t attempts =
      1 + std::max(1u, config_.faults.max_program_retries);
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (!plane_has_space(plane, slot)) plane = pick_plane(slot);
    const Ppn ppn = take_frontier(plane, slot);
    // Durable stripe stamp: members carry the open stripe's id, the parity
    // page the id of the stripe it is sealing.
    const std::uint64_t stripe_id =
        stripes_ ? (in_parity_ ? sealing_stripe_ : stripes_->open_id()) : 0;
    // Tenant stamped 1-based so recovery can tell tenant 0 from an
    // engine-owned (untenanted) page.
    const bool ok = array_.program(
        ppn, owner, oob, stripe_id, static_cast<std::uint8_t>(slot),
        tenant == kNoTenant ? 0 : static_cast<std::uint16_t>(tenant + 1));
    stats_.count_flash_op(kind);
    if (kind == OpKind::kDataWrite && current_class_) {
      stats_.count_class_flush(*current_class_);
    }
    const nand::PhysAddr addr = config_.geometry.decode(ppn);
    const ResourceTimeline::Span span =
        timeline_.schedule_program_span(addr, ready, slow_of(addr));
    // Background programs (GC/wear migrations, checkpoint-journal appends)
    // are fair game for foreground preemption; host-visible data/map/parity
    // programs are themselves latency-bearing and never suspend.
    if (config_.deadline.preempt &&
        (in_gc_ || owner.kind == nand::PageOwner::Kind::kCkpt)) {
      array_.arm_suspendable(config_.geometry.chip_index(addr),
                             nand::SuspendSlot::Kind::kProgram, span.start,
                             span.done);
    }
    const SimTime done = span.done;
    stats_.note_op_latency(kind, done - ready);
    if (ok) {
      // Fresh programs carry full weight until the owning scheme pushes a
      // sub-page liveness via note_page_weight(). No victim-index push: the
      // page's block is active, and re-indexes when it stops being so.
      page_weight_[ppn.get()] = static_cast<std::uint16_t>(kFullPageWeight);
      cached_weight_[config_.geometry.block_of(ppn)] += kFullPageWeight;
      if (!page_tenant_.empty() && tenant != kNoTenant) {
        page_tenant_[ppn.get()] = tenant;
        ++tenant_live_pages_[tenant];
      }
      // Torn programs never join a stripe; only a completed page is worth
      // protecting (its stamp is unreadable anyway).
      if (stripes_ && !in_parity_) {
        stripes_->note_member(ppn);
        if (stripes_->open_full()) seal_stripe(done);
      }
      return {ppn, done};
    }
    // Program failure: the array left the page torn (invalid, unowned).
    // Abandon the rest of the active block — its later pages are suspect
    // and NAND forbids re-programming earlier ones — and reallocate on a
    // fresh block, charging the wasted program time.
    ++stats_.faults().program_faults;
    ++stats_.faults().program_retries;
    const std::uint32_t torn = planes_[plane].active[slot];
    planes_[plane].active[slot] = kNoBlock;
    push_victim_key(plane, torn);  // the abandoned block is a candidate now
    ready = done;
    AF_LOG_DEBUG("program fault on ppn %llu (attempt %u); reallocating",
                 static_cast<unsigned long long>(ppn.get()), attempt + 1);
  }
  AF_CHECK_MSG(false,
               "program retry budget exhausted (faults.max_program_retries)");
  return {};
}

Engine::Programmed Engine::flash_program(Stream stream, nand::PageOwner owner,
                                         OpKind kind, SimTime ready,
                                         const nand::OobExtra* oob,
                                         const std::vector<std::uint64_t>* stamps) {
  // Tenant routing (DESIGN.md §12): host data programs carry the facade's
  // current tenant into the tenant's own stream slot; during relocation the
  // moved page keeps the tenant it already had. Engine-owned streams
  // (GC/map/parity) stay untenanted.
  std::uint32_t slot = slot_of(stream);
  std::uint16_t tenant = kNoTenant;
  if (config_.qos.enabled() && stream == Stream::kData) {
    tenant = in_gc_ ? gc_relocating_tenant_ : current_tenant_;
    slot = data_slot(tenant);
  }
  const std::uint64_t first_plane = pick_plane(slot);
  // GC-debt pacing: host data programs (never GC's own, never map/parity
  // traffic) absorb a stall proportional to how far the target plane has
  // sunk below its trigger + window. The stall is simulated time only — it
  // pushes `ready`, so the request's completion (and thus its recorded
  // latency) carries the wait, exactly like a real device holding the host
  // queue while reclamation catches up.
  if (!in_gc_ && stream == Stream::kData) {
    const SimDuration stall = throttle_delay(first_plane);
    if (stall > 0) {
      ready += stall;
      ++stats_.faults().throttle_stalls;
      stats_.faults().throttle_stall_ns += stall;
    }
  }
  const Programmed programmed =
      program_on(first_plane, slot, owner, kind, ready, oob, tenant);
  if (tenant != kNoTenant && !in_gc_) {
    ++stats_.tenant(tenant).host_pages;
  }
  // Payload lands with the program: the GC pass below can be interrupted by
  // power-cut injection, and a completed program must never be recovered
  // without its data.
  if (stamps != nullptr) {
    for (std::uint32_t s = 0; s < stamps->size(); ++s) {
      array_.set_stamp(programmed.ppn, s, (*stamps)[s]);
    }
  }
  // Reallocation can spill planes, so trigger GC where the data landed.
  const std::uint64_t plane = config_.geometry.plane_of(programmed.ppn);

  // Threshold GC is *background* work: the free-block reserve exists so the
  // triggering request never has to wait for reclamation. The pass's flash
  // operations are charged to the plane's chip behind this program, so later
  // requests feel GC only as chip contention (the SSDsim model). State-wise
  // the reclaim is immediate, so the free-block accounting never lags.
  if (!in_gc_ && free_blocks(plane) < plane_trigger_blocks(plane)) {
    (void)run_gc(plane, programmed.done);
  }
  return programmed;
}

void Engine::invalidate(Ppn ppn) {
  const std::uint64_t flat = config_.geometry.block_of(ppn);
  const std::uint32_t weight = page_weight_[ppn.get()];
  page_weight_[ppn.get()] = 0;
  AF_CHECK_MSG(cached_weight_[flat] >= weight, "block weight underflow");
  cached_weight_[flat] -= weight;
  if (!page_tenant_.empty()) {
    const std::uint16_t tenant = page_tenant_[ppn.get()];
    if (tenant != kNoTenant) {
      AF_CHECK_MSG(tenant_live_pages_[tenant] > 0,
                   "tenant live-page count underflow");
      --tenant_live_pages_[tenant];
      page_tenant_[ppn.get()] = kNoTenant;
    }
  }
  array_.invalidate(ppn);
  push_victim_key(config_.geometry.plane_of(ppn),
                  static_cast<std::uint32_t>(
                      flat % config_.geometry.blocks_per_plane));
}

Status Engine::admit_write(std::uint64_t pages) const {
  if (read_only_) return Status::kReadOnly;
  const auto& geom = config_.geometry;
  const auto& ctr = array_.counters();
  // Device-wide arithmetic off the O(1) array counters: the valid-page
  // population after this write must leave every plane's GC reserve plus
  // the admission margin worth of pages unclaimed, or block turnover stops.
  const std::uint64_t reserve_pages =
      geom.total_planes() *
      std::uint64_t{config_.gc_reserve_blocks +
                    config_.capacity.no_space_margin_blocks} *
      geom.pages_per_block;
  const std::uint64_t usable = geom.total_pages() - ctr.retired_pages;
  if (ctr.valid_pages + pages + reserve_pages > usable) {
    return Status::kNoSpace;
  }
  return Status::kOk;
}

Status Engine::admit_tenant_write(std::uint16_t tenant,
                                  std::uint64_t pages) const {
  const SsdConfig::QosPolicy& qos = config_.qos;
  if (!qos.enabled() || qos.capacity_share_millis == 0 ||
      tenant >= tenant_live_pages_.size()) {
    return Status::kOk;
  }
  const std::uint64_t limit =
      config_.logical_pages() * qos.capacity_share_millis / 1000;
  if (tenant_live_pages_[tenant] + pages > limit) return Status::kNoSpace;
  return Status::kOk;
}

std::uint64_t Engine::drain_gc_debt_pages(std::uint16_t tenant) {
  if (tenant >= tenant_gc_debt_.size()) return 0;
  const std::uint64_t debt = tenant_gc_debt_[tenant];
  tenant_gc_debt_[tenant] = 0;
  return debt;
}

std::uint32_t Engine::data_slot(std::uint16_t tenant) const {
  if (!config_.qos.streams_enabled() || tenant == kNoTenant) {
    return slot_of(Stream::kData);
  }
  AF_CHECK_MSG(tenant < config_.qos.tenants, "tenant id out of range");
  return static_cast<std::uint32_t>(kStreamCount) +
         tenant * (config_.qos.hot_cold_split ? 2u : 1u);
}

std::uint32_t Engine::gc_slot(std::uint16_t tenant) const {
  if (!config_.qos.streams_enabled() || !config_.qos.hot_cold_split ||
      tenant == kNoTenant) {
    return slot_of(Stream::kGc);
  }
  return data_slot(tenant) + 1;
}

SimDuration Engine::throttle_delay(std::uint64_t plane) const {
  const SsdConfig::CapacityPolicy& cap = config_.capacity;
  if (!cap.throttle_enabled()) return 0;
  const std::uint64_t target =
      std::uint64_t{plane_trigger_blocks(plane)} + cap.throttle_window_blocks;
  const std::uint64_t free = free_blocks(plane);
  if (free >= target) return 0;
  return cap.throttle_ns_per_block * (target - free);
}

SimTime Engine::map_touch(std::uint64_t map_page, bool dirty, SimTime ready) {
  AF_CHECK_MSG(map_ != nullptr, "init_map_space() not called");
  return map_->touch(map_page, dirty, ready);
}

void Engine::dram_access(std::uint64_t n) { stats_.count_dram_access(n); }

void Engine::init_map_space(std::uint64_t num_map_pages) {
  const std::uint64_t cache_pages =
      std::max<std::uint64_t>(1, config_.map_cache_bytes /
                                     config_.geometry.page_bytes);
  // Direct `new`: make_unique cannot convert to the private MapIo base.
  map_.reset(new MapDirectory(*this, num_map_pages, cache_pages));
}

// --- MapIo ---------------------------------------------------------------------

SimTime Engine::map_flash_read(Ppn ppn, SimTime ready) {
  // The integrity grade is absorbed here: a lost translation page already
  // dropped the device to read-only and bumped the loss counters inside
  // flash_read; the directory itself only needs the completion time.
  return flash_read(ppn, OpKind::kMapRead, ready).done;
}

std::pair<Ppn, SimTime> Engine::map_flash_program(std::uint64_t map_page,
                                                  SimTime ready) {
  auto programmed = flash_program(Stream::kMap, nand::PageOwner::map(map_page),
                                  OpKind::kMapWrite, ready);
  return {programmed.ppn, programmed.done};
}

void Engine::map_flash_invalidate(Ppn ppn) { invalidate(ppn); }

void Engine::map_dram_access(std::uint64_t n) { stats_.count_dram_access(n); }

// --- Allocation ------------------------------------------------------------------

bool Engine::plane_has_space(std::uint64_t plane, std::uint32_t slot) const {
  const PlaneState& st = planes_[plane];
  const std::uint32_t active = st.active[slot];
  if (active != kNoBlock) {
    const std::uint64_t flat =
        plane * config_.geometry.blocks_per_plane + active;
    if (!array_.block(flat).fully_written(config_.geometry.pages_per_block)) {
      return true;
    }
  }
  return !st.free_blocks.empty();
}

std::uint64_t Engine::pick_plane(std::uint32_t slot) {
  const std::uint64_t planes = config_.geometry.total_planes();
  // Flat plane indices are chip-major (geometry.h): planes p..p+3 share one
  // chip, so a naive round-robin lands consecutive programs on the same chip
  // and they serialize in the timeline. With a concurrent host queue the
  // allocator instead walks planes chip-rotating (channel-first allocation),
  // so simultaneous in-flight programs spread across chips. Hedged reads
  // (DESIGN.md §11) need the same layout: consecutive programs form parity
  // stripes, and a reconstruct can only beat a stalled primary when the
  // stripe's peers live on other chips — hedging against peers stuck behind
  // the primary's own busy chip is a guaranteed loss. The serial,
  // non-hedging path keeps the legacy walk: at QD<=1 the order never
  // changes timing, and the committed tables depend on the legacy placement.
  const bool stripe =
      config_.pipeline.enabled() || config_.deadline.hedging();
  const std::uint64_t chips = config_.geometry.total_chips();
  const std::uint64_t planes_per_chip = planes / chips;
  for (std::uint64_t i = 0; i < planes; ++i) {
    const std::uint64_t v = (rr_plane_ + i) % planes;
    const std::uint64_t plane =
        stripe ? (v % chips) * planes_per_chip + v / chips : v;
    if (!plane_has_space(plane, slot)) continue;
    if (quarantined_count_ > 0) {
      // Quarantine steering: re-check the die's episode first (it may have
      // ended — readmit), then skip planes on dies still under quarantine.
      const std::uint64_t die = plane / config_.geometry.planes_per_die;
      update_quarantine(die);
      if (die_quarantined_[die] != 0) continue;
    }
    rr_plane_ = (v + 1) % planes;
    return plane;
  }
  // Steering fallback: when the healthy dies have no space left, capacity
  // beats latency — take any plane, quarantined or not.
  if (quarantined_count_ > 0) {
    for (std::uint64_t i = 0; i < planes; ++i) {
      const std::uint64_t v = (rr_plane_ + i) % planes;
      const std::uint64_t plane =
          stripe ? (v % chips) * planes_per_chip + v / chips : v;
      if (plane_has_space(plane, slot)) {
        rr_plane_ = (v + 1) % planes;
        return plane;
      }
    }
  }
  for (std::uint64_t p = 0; p < planes; ++p) {
    AF_LOG_WARN("plane %llu: free=%llu retired=%u active[%d]=%u",
                static_cast<unsigned long long>(p),
                static_cast<unsigned long long>(free_blocks(p)),
                planes_[p].retired, static_cast<int>(slot),
                planes_[p].active[slot]);
  }
  AF_CHECK_MSG(false, "no plane has free space — device over-filled");
  return 0;
}

Ppn Engine::take_frontier(std::uint64_t plane, std::uint32_t slot) {
  PlaneState& st = planes_[plane];
  std::uint32_t& active = st.active[slot];

  if (active != kNoBlock) {
    const std::uint64_t flat =
        plane * config_.geometry.blocks_per_plane + active;
    const Ppn frontier = array_.write_frontier(flat);
    if (frontier.valid()) return frontier;
    const std::uint32_t filled = active;
    active = kNoBlock;  // block filled up
    push_victim_key(plane, filled);  // it just became a GC candidate
  }
  AF_CHECK_MSG(!st.free_blocks.empty(), "plane out of free blocks");
  if (config_.capacity.wear_enabled()) {
    // Dynamic wear leveling: take the least-erased free block, so the hot
    // rotation spreads across the whole pool instead of the LIFO stack
    // recycling the same few blocks while untouched ones pin the spread's
    // minimum at zero. (Gated on the policy knob: the default LIFO order is
    // part of the baseline's bit-identical behaviour.)
    std::size_t pick = 0;
    for (std::size_t i = 1; i < st.free_blocks.size(); ++i) {
      const std::uint64_t base = plane * config_.geometry.blocks_per_plane;
      if (array_.block(base + st.free_blocks[i]).erase_count <
          array_.block(base + st.free_blocks[pick]).erase_count) {
        pick = i;
      }
    }
    active = st.free_blocks[pick];
    st.free_blocks.erase(st.free_blocks.begin() +
                         static_cast<std::ptrdiff_t>(pick));
  } else {
    active = st.free_blocks.back();
    st.free_blocks.pop_back();
  }
  const std::uint64_t flat = plane * config_.geometry.blocks_per_plane + active;
  const Ppn frontier = array_.write_frontier(flat);
  AF_CHECK(frontier.valid());
  return frontier;
}

std::uint64_t Engine::free_blocks(std::uint64_t plane) const {
  return planes_[plane].free_blocks.size();
}

std::uint64_t Engine::free_headroom_pages() const {
  std::uint64_t blocks = 0;
  for (const PlaneState& st : planes_) blocks += st.free_blocks.size();
  return blocks * config_.geometry.pages_per_block;
}

std::uint32_t Engine::gc_trigger_blocks() const {
  const auto threshold = static_cast<std::uint32_t>(
      config_.gc_threshold *
      static_cast<double>(config_.geometry.blocks_per_plane));
  return std::max(threshold, config_.gc_reserve_blocks + 1);
}

std::uint32_t Engine::plane_trigger_blocks(std::uint64_t plane) const {
  // Round-robin striping fills every plane at the same rate, so identical
  // triggers make all planes start GC in the same instant — a periodic
  // device-wide stall storm. A deterministic per-plane offset staggers the
  // waves; the offset is capacity-safe (a couple of blocks).
  return gc_trigger_blocks() + static_cast<std::uint32_t>((plane * 2654435761u) % 3);
}

// --- Garbage collection -------------------------------------------------------

bool Engine::is_active_block(std::uint64_t plane, std::uint32_t block) const {
  const auto& active = planes_[plane].active;
  return std::find(active.begin(), active.end(), block) != active.end();
}

std::uint64_t Engine::block_weight(std::uint64_t flat_block) const {
  const nand::BlockInfo& info = array_.block(flat_block);
  if (!victim_weight_) {
    return std::uint64_t{info.valid_pages} * kFullPageWeight;
  }
  std::uint64_t weight = 0;
  array_.for_each_valid_page(flat_block, [&](Ppn ppn) {
    weight += victim_weight_(ppn);
    return true;
  });
  return weight;
}

void Engine::note_page_weight(Ppn ppn, std::uint32_t live_weight) {
  AF_CHECK_MSG(live_weight <= kFullPageWeight, "page weight above full");
  AF_CHECK_MSG(array_.state(ppn) == nand::PageState::kValid,
               "weight push for a non-valid page");
  const std::uint32_t old = page_weight_[ppn.get()];
  if (old == live_weight) return;  // key unchanged; heap entry still current
  const std::uint64_t flat = config_.geometry.block_of(ppn);
  page_weight_[ppn.get()] = static_cast<std::uint16_t>(live_weight);
  cached_weight_[flat] = cached_weight_[flat] - old + live_weight;
  push_victim_key(config_.geometry.plane_of(ppn),
                  static_cast<std::uint32_t>(
                      flat % config_.geometry.blocks_per_plane));
}

void Engine::push_victim_key(std::uint64_t plane, std::uint32_t block) {
  // Active, retired and untouched blocks cannot be victims; each of those
  // states re-pushes on exit (take_frontier / program_on fault abandonment;
  // retirement and erasure are terminal or re-enter via programming).
  if (is_active_block(plane, block)) return;
  const std::uint64_t flat = plane * config_.geometry.blocks_per_plane + block;
  const nand::BlockInfo& info = array_.block(flat);
  if (info.retired || info.written == 0) return;
  auto& heap = planes_[plane].victim_heap;
  heap.push_back(victim_key(cached_weight_[flat],
                            info.fully_written(config_.geometry.pages_per_block),
                            block));
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  ++gc_perf_.heap_pushes;
  // Stale snapshots accumulate between picks; sweep them when the heap far
  // outgrows one entry per block.
  const std::size_t cap = std::max<std::size_t>(
      64, std::size_t{8} * config_.geometry.blocks_per_plane);
  if (heap.size() > cap) rebuild_victim_heap(plane);
}

void Engine::rebuild_victim_heap(std::uint64_t plane) {
  auto& heap = planes_[plane].victim_heap;
  heap.clear();
  for (std::uint32_t b = 0; b < config_.geometry.blocks_per_plane; ++b) {
    if (is_active_block(plane, b)) continue;
    const std::uint64_t flat = plane * config_.geometry.blocks_per_plane + b;
    const nand::BlockInfo& info = array_.block(flat);
    if (info.retired || info.written == 0) continue;
    heap.push_back(victim_key(
        cached_weight_[flat],
        info.fully_written(config_.geometry.pages_per_block), b));
  }
  std::make_heap(heap.begin(), heap.end(), std::greater<>{});
  ++gc_perf_.heap_rebuilds;
}

std::uint32_t Engine::pick_victim(std::uint64_t plane) {
  ++gc_perf_.victim_picks;
  const std::uint32_t pages_per_block = config_.geometry.pages_per_block;
  // A block whose live weight matches a full block yields nothing: migrating
  // its content consumes exactly what erasing reclaims (the livelock shape).
  const std::uint64_t full_weight =
      std::uint64_t{pages_per_block} * kFullPageWeight;
  auto& heap = planes_[plane].victim_heap;
  std::uint32_t best = kNoBlock;

  // Lazy deletion: pop entries whose snapshot no longer matches the block's
  // current key (or whose block stopped being a candidate). A non-active
  // block's weight only decreases and its written count is frozen, so its
  // *current* key is never above a stale snapshot — the first fresh entry is
  // the true plane-wide minimum, reproducing the full scan's greedy choice.
  while (!heap.empty()) {
    const std::uint64_t top = heap.front();
    const auto block = static_cast<std::uint32_t>(top & 0xffffffffu);
    const std::uint64_t flat =
        plane * config_.geometry.blocks_per_plane + block;
    const nand::BlockInfo& info = array_.block(flat);
    const bool candidate = !info.retired && info.written > 0 &&
                           !is_active_block(plane, block);
    if (!candidate ||
        top != victim_key(cached_weight_[flat],
                          info.fully_written(pages_per_block), block)) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
      heap.pop_back();
      ++gc_perf_.heap_pops;
      continue;
    }
    // Fresh minimum. Left in the heap: until the block's state changes, the
    // next pick answers from the same entry in O(1).
    if ((top >> 33) < full_weight) best = block;
    break;
  }
#if !defined(NDEBUG)
  AF_CHECK_MSG(best == pick_victim_scan(plane),
               "victim index diverged from the reference scan");
  if (best != kNoBlock) {
    const std::uint64_t flat = plane * config_.geometry.blocks_per_plane + best;
    AF_CHECK_MSG(cached_weight_[flat] == block_weight(flat),
                 "victim's cached weight diverged from brute-force recompute");
  }
#endif
  return best;
}

std::uint32_t Engine::pick_victim_scan(std::uint64_t plane) const {
  ++gc_perf_.scan_picks;
  const std::uint32_t pages_per_block = config_.geometry.pages_per_block;
  const std::uint64_t full_weight =
      std::uint64_t{pages_per_block} * kFullPageWeight;
  std::uint32_t best = kNoBlock;
  std::uint64_t best_weight = 0;
  bool best_full = false;

  for (std::uint32_t b = 0; b < config_.geometry.blocks_per_plane; ++b) {
    ++gc_perf_.scan_blocks;
    if (is_active_block(plane, b)) continue;
    const std::uint64_t flat = plane * config_.geometry.blocks_per_plane + b;
    const nand::BlockInfo& info = array_.block(flat);
    if (info.retired) continue;       // grown bad block, out of service
    if (info.written == 0) continue;  // already free
    const std::uint64_t weight = block_weight(flat);
    if (weight >= full_weight) continue;
    const bool full = info.fully_written(pages_per_block);
    // Greedy: least live weight wins; among equals, fully-written blocks
    // win (they waste no unwritten frontier when erased).
    if (best == kNoBlock || weight < best_weight ||
        (weight == best_weight && full && !best_full)) {
      best = b;
      best_weight = weight;
      best_full = full;
    }
  }
  return best;
}

void Engine::rebuild_victim_state() {
  std::fill(page_weight_.begin(), page_weight_.end(), std::uint16_t{0});
  std::fill(cached_weight_.begin(), cached_weight_.end(), std::uint32_t{0});
  for (std::uint64_t p = 0; p < config_.geometry.total_pages(); ++p) {
    const Ppn ppn{p};
    if (array_.state(ppn) != nand::PageState::kValid) continue;
    const std::uint32_t w =
        victim_weight_ ? victim_weight_(ppn) : kFullPageWeight;
    page_weight_[p] = static_cast<std::uint16_t>(w);
    cached_weight_[config_.geometry.block_of(ppn)] += w;
  }
  for (std::uint64_t plane = 0; plane < planes_.size(); ++plane) {
    rebuild_victim_heap(plane);
  }
}

void Engine::rebuild_qos_state() {
  if (!config_.qos.enabled()) return;
  // Pass 1: per-page tenant ownership and live-page counts, re-derived from
  // the durable OOB stamps (1-based; 0 marks engine-owned pages). Quota
  // accounting therefore survives power loss with no extra journaling.
  std::fill(page_tenant_.begin(), page_tenant_.end(), kNoTenant);
  std::fill(tenant_live_pages_.begin(), tenant_live_pages_.end(),
            std::uint64_t{0});
  for (std::uint64_t p = 0; p < config_.geometry.total_pages(); ++p) {
    const Ppn ppn{p};
    if (array_.state(ppn) != nand::PageState::kValid) continue;
    const nand::OobRecord& oob = array_.oob(ppn);
    if (oob.tenant == 0) continue;
    const auto tenant = static_cast<std::uint16_t>(oob.tenant - 1);
    AF_CHECK_MSG(tenant < config_.qos.tenants, "OOB tenant out of range");
    page_tenant_[p] = tenant;
    ++tenant_live_pages_[tenant];
  }
  if (!config_.qos.streams_enabled()) return;
  // Pass 2: re-adopt partially written blocks as per-slot frontiers, so a
  // remount keeps filling tenant-homogeneous blocks instead of abandoning
  // every partial block to GC and mixing tenants into whatever opens next.
  // The slot comes from the durable stream stamp of the block's newest
  // page; a torn tail leaves the block unadopted (its frontier is suspect
  // and GC reclaims it). Per (plane, slot) the newest stamp wins — that
  // block was the slot's active frontier at the cut.
  const std::uint32_t per_block = config_.geometry.pages_per_block;
  for (std::uint64_t plane = 0; plane < planes_.size(); ++plane) {
    std::vector<std::uint64_t> best_seq(stream_slots_, 0);
    for (std::uint32_t b = 0; b < config_.geometry.blocks_per_plane; ++b) {
      const std::uint64_t flat = plane * config_.geometry.blocks_per_plane + b;
      const nand::BlockInfo& info = array_.block(flat);
      if (info.retired || info.written == 0 || info.written >= per_block) {
        continue;
      }
      const Ppn tail{flat * per_block + info.written - 1};
      const nand::OobRecord& oob = array_.oob(tail);
      if (oob.torn) continue;
      const std::uint32_t slot = oob.stream;
      if (slot >= stream_slots_) continue;
      if (info.max_seq <= best_seq[slot]) continue;
      best_seq[slot] = info.max_seq;
      planes_[plane].active[slot] = b;
    }
  }
}

void Engine::verify_victim_accounting() const {
  const auto& geom = config_.geometry;
  const std::uint64_t blocks = geom.total_planes() * geom.blocks_per_plane;
  for (std::uint64_t flat = 0; flat < blocks; ++flat) {
    AF_CHECK_MSG(cached_weight_[flat] == block_weight(flat),
                 "cached block weight drifted from brute-force recompute");
  }
  for (std::uint64_t p = 0; p < geom.total_pages(); ++p) {
    const Ppn ppn{p};
    if (array_.state(ppn) == nand::PageState::kValid) {
      const std::uint32_t expect =
          victim_weight_ ? victim_weight_(ppn) : kFullPageWeight;
      AF_CHECK_MSG(page_weight_[p] == expect,
                   "page weight drifted from the victim-weight oracle");
    } else {
      AF_CHECK_MSG(page_weight_[p] == 0, "non-valid page carries live weight");
    }
  }
}

SimTime Engine::run_gc(std::uint64_t plane, SimTime ready) {
  AF_CHECK_MSG(relocator_, "GC requires a relocator (set_relocator)");
  AF_CHECK_MSG(!in_gc_, "nested GC");
  in_gc_ = true;
  ++gc_runs_;
  SimTime clock = ready;

  // Partial, resumable GC (cf. Sha et al., TACO'21): migrate at most
  // gc_pages_per_pass live pages per invocation, carrying a half-drained
  // victim over to the next invocation, so one pass never injects a long
  // chip-time burst.
  std::uint32_t budget = std::max(1u, config_.gc_pages_per_pass);
  std::uint32_t& victim = planes_[plane].gc_victim;

  while (budget > 0 &&
         free_blocks(plane) < plane_trigger_blocks(plane)) {
    if (victim == kNoBlock) {
      victim = pick_victim(plane);
      if (victim == kNoBlock) break;  // nothing reclaimable in this plane
    }
    const std::uint64_t flat =
        plane * config_.geometry.blocks_per_plane + victim;

    // Allocation-free walk: liveness is checked as each page is visited,
    // which matches the old snapshot iteration because relocation never
    // invalidates a *sibling* page of the victim (streams keep blocks
    // homogeneous, and every relocator touches only the page it was handed).
    array_.for_each_valid_page(flat, [&](Ppn live) {
      if (budget == 0) return false;
      --budget;
      relocate_page(live, plane, clock);
      return true;
    });
    if (array_.block(flat).valid_pages > 0) break;  // budget ran out mid-victim
    AF_CHECK_MSG(cached_weight_[flat] == 0,
                 "drained victim still carries cached live weight");

    // Crash-safe GC: with a power cut armed, chunks staged off this victim
    // must be durable before its erase destroys their OOB records (real
    // controllers hold the erase for the same reason). Without a cut armed
    // the end-of-pass flush keeps the cheaper cross-victim packing.
    if (gc_flush_ && array_.power_cut_armed()) gc_flush_(plane, clock);

    // The erase (or the retirement a failed erase turns into) destroys every
    // raw page in the block; stripes touching it lose their protection now.
    break_stripes_in(flat);

    {
      const nand::PhysAddr eaddr = config_.geometry.decode(
          Ppn{flat * config_.geometry.pages_per_block});
      const ResourceTimeline::Span span =
          timeline_.schedule_erase_span(eaddr, clock, slow_of(eaddr));
      if (config_.deadline.preempt) {
        array_.arm_suspendable(config_.geometry.chip_index(eaddr),
                               nand::SuspendSlot::Kind::kErase, span.start,
                               span.done);
      }
      clock = span.done;
    }
    if (array_.erase_block(flat)) {
      stats_.count_erase();
      planes_[plane].free_blocks.push_back(victim);
    } else {
      // Erase failure: the array retired the block (grown bad block). It
      // never returns to the free list — the plane's spare capacity shrank.
      ++stats_.faults().erase_faults;
      ++stats_.faults().retired_blocks;
      note_retirement(plane);
    }
    victim = kNoBlock;
  }
  if (config_.capacity.wear_enabled()) clock = wear_level(plane, clock);
  if (gc_flush_) gc_flush_(plane, clock);

  in_gc_ = false;

  // Free-space floor, distinct from the spare-count floor in
  // note_retirement: at deep wear a GC pass can *lose* ground — relocation
  // burns frontier pages and the faulted erase then retires the victim
  // instead of reclaiming it — so physical free space can run out while
  // every plane still counts enough usable blocks. If reclamation could not
  // hold one free block per plane device-wide, stop taking writes before
  // allocation has nothing left to hand out.
  if (!read_only_ &&
      free_headroom_pages() < config_.geometry.total_planes() *
                                  std::uint64_t{config_.geometry.pages_per_block}) {
    read_only_ = true;
    ++stats_.faults().read_only_entries;
    AF_LOG_WARN(
        "GC cannot hold the free-space floor (%llu pages left device-wide): "
        "device enters read-only mode",
        static_cast<unsigned long long>(free_headroom_pages()));
  }
  return clock;
}

SimTime Engine::wear_level(std::uint64_t plane, SimTime clock) {
  const SsdConfig::CapacityPolicy& cap = config_.capacity;
  const nand::FlashArray::WearSummary wear = array_.wear();
  stats_.faults().wear_spread =
      std::max(stats_.faults().wear_spread, wear.spread());
  if (wear.spread() < cap.wear_spread_threshold) return clock;

  for (std::uint32_t n = 0; n < std::max(1u, cap.wear_migrate_per_pass); ++n) {
    // Leveling is strictly optional work: each migration burns up to a
    // block's worth of frontier pages before its erase pays any back — and
    // at deep wear the erase may retire the block instead. Without this
    // yield a single pass can drop the free pool from comfortable to empty,
    // sailing straight through the free-space floor run_gc checks only at
    // the end. (Migrating cold data on a dying device buys nothing anyway.)
    if (free_headroom_pages() <
        2 * config_.geometry.total_planes() *
            std::uint64_t{config_.geometry.pages_per_block}) {
      break;
    }
    // Steer the migrated data toward the least-worn plane that can absorb a
    // whole block without draining its pool: within-plane leveling alone
    // cannot narrow the device spread when the imbalance is the per-plane
    // GC rate itself — a plane pinning more cold data erases more, and
    // re-homing that data in place preserves the skew. Re-evaluated per
    // block because each migration shifts a block of slack between planes.
    std::uint64_t target = plane;
    std::uint64_t target_erases = std::numeric_limits<std::uint64_t>::max();
    for (std::uint64_t q = 0; q < config_.geometry.total_planes(); ++q) {
      if (free_blocks(q) < 2) continue;
      std::uint64_t erases = 0;
      const std::uint64_t base = q * config_.geometry.blocks_per_plane;
      for (std::uint32_t b = 0; b < config_.geometry.blocks_per_plane; ++b) {
        erases += array_.block(base + b).erase_count;
      }
      if (erases < target_erases) {
        target_erases = erases;
        target = q;
      }
    }
    // Opportunistic, never mandatory: with no slack anywhere, skip the pass
    // rather than eat the last reserve a GC spill might need.
    if (target == plane && free_blocks(plane) == 0) break;
    wear_target_ = target;

    const std::uint32_t cold = pick_cold_block(plane);
    if (cold == kNoBlock) break;
    const std::uint64_t flat =
        plane * config_.geometry.blocks_per_plane + cold;
    array_.for_each_valid_page(flat, [&](Ppn live) {
      relocate_page(live, target, clock);
      return true;
    });
    AF_CHECK_MSG(cached_weight_[flat] == 0,
                 "recycled cold block still carries cached live weight");
    // Same erase discipline as the GC loop: staged chunks must outlive the
    // OOB records the erase destroys when a power cut is armed, and stripes
    // over the block lapse now.
    if (gc_flush_ && array_.power_cut_armed()) gc_flush_(plane, clock);
    break_stripes_in(flat);
    {
      const nand::PhysAddr eaddr = config_.geometry.decode(
          Ppn{flat * config_.geometry.pages_per_block});
      const ResourceTimeline::Span span =
          timeline_.schedule_erase_span(eaddr, clock, slow_of(eaddr));
      if (config_.deadline.preempt) {
        array_.arm_suspendable(config_.geometry.chip_index(eaddr),
                               nand::SuspendSlot::Kind::kErase, span.start,
                               span.done);
      }
      clock = span.done;
    }
    if (array_.erase_block(flat)) {
      stats_.count_erase();
      planes_[plane].free_blocks.push_back(cold);
    } else {
      ++stats_.faults().erase_faults;
      ++stats_.faults().retired_blocks;
      note_retirement(plane);
    }
    ++stats_.faults().wear_level_migrations;
    if (array_.wear().spread() < cap.wear_spread_threshold) break;
  }
  wear_target_ = kNoPlane;
  return clock;
}

std::uint32_t Engine::pick_cold_block(std::uint64_t plane) const {
  std::uint32_t best = kNoBlock;
  std::uint64_t best_erases = UINT64_MAX;
  for (std::uint32_t b = 0; b < config_.geometry.blocks_per_plane; ++b) {
    if (is_active_block(plane, b) || b == planes_[plane].gc_victim) continue;
    const std::uint64_t flat = plane * config_.geometry.blocks_per_plane + b;
    const nand::BlockInfo& info = array_.block(flat);
    // Free blocks re-age the moment they are reused; only a written block
    // pins its (possibly cold) data away from the erase rotation.
    if (info.retired || info.written == 0) continue;
    if (info.erase_count < best_erases) {
      best = b;
      best_erases = info.erase_count;
    }
  }
  return best;
}

Engine::Programmed Engine::gc_program(std::uint64_t plane,
                                      nand::PageOwner owner, SimTime ready,
                                      const nand::OobExtra* oob) {
  AF_CHECK_MSG(in_gc_, "gc_program outside GC");
  // Relocations of a tenant's pages stay tenant-affine: under hot_cold_split
  // they fill the tenant's cold slot (and are re-stamped with the tenant),
  // keeping blocks tenant-homogeneous through GC churn.
  const std::uint16_t tenant = gc_relocating_tenant_;
  const std::uint32_t slot = gc_slot(tenant);
  std::uint64_t target = plane;
  if (wear_target_ != kNoPlane && plane_has_space(wear_target_, slot)) {
    target = wear_target_;  // best-effort: never eat another plane's reserve
  }
  if (!plane_has_space(target, slot)) {
    // Reserve exhausted in this plane (pathological); spill anywhere.
    target = pick_plane(slot);
  }
  return program_on(target, slot, owner, OpKind::kGcWrite, ready, oob, tenant);
}

void Engine::relocate_page(Ppn live, std::uint64_t plane, SimTime& clock) {
  const nand::PageOwner owner = array_.owner(live);
  if (owner.kind == nand::PageOwner::Kind::kMap) {
    // Translation pages are engine-owned: copy and update the GTD.
    clock = flash_read(live, OpKind::kGcRead, clock).done;
    auto moved = gc_program(plane, owner, clock);
    clock = moved.done;
    if (array_.tracks_payload()) copy_stamps(live, moved.ppn);
    AF_CHECK(map_ != nullptr);
    map_->on_relocated(owner.id, moved.ppn);
    invalidate(live);
  } else if (owner.kind == nand::PageOwner::Kind::kCkpt) {
    // Checkpoint-journal pages are engine-owned too: copy the serialized
    // chunk and let the journal repoint its root at the new location.
    clock = flash_read(live, OpKind::kGcRead, clock).done;
    auto moved = gc_program(plane, owner, clock);
    clock = moved.done;
    array_.move_ckpt_blob(live, moved.ppn);
    if (ckpt_moved_) ckpt_moved_(live, moved.ppn);
    invalidate(live);
  } else if (owner.kind == nand::PageOwner::Kind::kParity) {
    // Parity pages move like any engine-owned page, keeping the stripe
    // directory pointed at the new copy. An unreadable parity page (cannot
    // even be rebuilt) just lapses its stripe's protection.
    const ReadResult read = flash_read(live, OpKind::kGcRead, clock);
    clock = read.done;
    AF_CHECK(stripes_ != nullptr);
    if (read.data_lost()) {
      stripes_->drop(owner.id);
      ++stats_.faults().stripes_broken;
      invalidate(live);
    } else {
      in_parity_ = true;
      sealing_stripe_ = owner.id;
      auto moved = gc_program(plane, owner, clock);
      in_parity_ = false;
      clock = moved.done;
      stripes_->on_parity_moved(live, moved.ppn);
      invalidate(live);
    }
  } else {
    // Scheme-owned data page: remember whose page is moving so the nested
    // gc_program (reached via the relocator's engine calls) lands it in the
    // owning tenant's slot and charges that tenant's GC debt — not the
    // tenant whose foreground write happened to trigger this GC.
    if (!page_tenant_.empty()) {
      const std::uint16_t tenant = page_tenant_[live.get()];
      gc_relocating_tenant_ = tenant;
      if (tenant != kNoTenant) {
        ++stats_.tenant(tenant).gc_pages;
        ++tenant_gc_debt_[tenant];
      }
    }
    relocator_(live, owner, clock);
    gc_relocating_tenant_ = kNoTenant;
  }
}

void Engine::seal_stripe(SimTime ready) {
  AF_CHECK(stripes_ != nullptr);
  StripeTracker::OpenStripe open = stripes_->take_open();
  in_parity_ = true;
  sealing_stripe_ = open.id;
  const Programmed parity =
      program_on(pick_plane(slot_of(Stream::kParity)), slot_of(Stream::kParity),
                 nand::PageOwner::parity(open.id), OpKind::kParityWrite, ready,
                 /*oob=*/nullptr);
  in_parity_ = false;
  ++stats_.faults().parity_writes;
  stripes_->seal(open.id, std::move(open.members), parity.ppn);
}

void Engine::break_stripes_in(std::uint64_t flat_block) {
  if (stripes_ == nullptr) return;
  const std::uint64_t first = flat_block * config_.geometry.pages_per_block;
  const std::uint64_t broken = stripes_->on_block_destroyed(
      first, config_.geometry.pages_per_block, [&](Ppn parity) {
        // The stripe is gone but its parity page survives elsewhere; it
        // protects nothing any more, so free it for GC to reclaim.
        if (array_.state(parity) == nand::PageState::kValid) {
          invalidate(parity);
        }
      });
  stats_.faults().stripes_broken += broken;
}

SimTime Engine::scrub_read(Ppn ppn, SimTime ready) {
  AF_CHECK_MSG(array_.state(ppn) == nand::PageState::kValid,
               "scrub read of non-valid page");
  // Health-check sensing only: no transient-failure draw and no ECC ladder.
  // The scrubber acts on the page's deterministic expected BER, so the
  // sweep never consumes RNG and cannot perturb the fault schedules.
  array_.note_read(ppn);
  if (config_.faults.ber_enabled()) ++stats_.faults().read_disturb_reads;
  stats_.count_flash_op(OpKind::kScrubRead);
  return sched_read(ppn, OpKind::kScrubRead, ready, /*account=*/false);
}

SimTime Engine::scrub_relocate(Ppn ppn, SimTime ready) {
  AF_CHECK_MSG(!in_gc_, "scrub relocation during GC");
  AF_CHECK_MSG(relocator_, "scrub requires a relocator (set_relocator)");
  // Borrow the GC allowances: the page moves into the GC stream through
  // gc_program, so mapping updates, OOB stamps and weight caches follow the
  // battle-tested relocation path, and the fresh program restarts the
  // page's retention clock.
  in_gc_ = true;
  SimTime clock = ready;
  const std::uint64_t plane = config_.geometry.plane_of(ppn);
  relocate_page(ppn, plane, clock);
  if (gc_flush_) gc_flush_(plane, clock);
  in_gc_ = false;
  ++stats_.faults().scrub_relocations;
  // The copy (and any parity seal it caused) bypassed the per-program
  // threshold check host writes get, and it may have spilled off this
  // plane — so a refresh burst could outrun reclamation. Restore the
  // free-block invariant before handing the device back.
  for (std::uint64_t p = 0; p < config_.geometry.total_planes(); ++p) {
    std::uint64_t before = free_blocks(p);
    while (free_blocks(p) < plane_trigger_blocks(p)) {
      clock = run_gc(p, clock);
      const std::uint64_t now = free_blocks(p);
      if (now <= before) break;  // nothing reclaimable: don't spin
      before = now;
    }
  }
  return clock;
}

std::uint64_t Engine::rebuild_parity_state() {
  if (stripes_ == nullptr) return 0;
  return stripes_->rebuild(array_);
}

void Engine::note_retirement(std::uint64_t plane) {
  ++planes_[plane].retired;
  const std::uint32_t usable =
      config_.geometry.blocks_per_plane - planes_[plane].retired;
  const std::uint32_t floor = gc_trigger_blocks() + config_.gc_reserve_blocks +
                              config_.degrade_margin_blocks;
  AF_LOG_INFO("retired block in plane %llu (%u retired, %u usable)",
              static_cast<unsigned long long>(plane), planes_[plane].retired,
              usable);
  if (!read_only_ && usable < floor) {
    // Spares exhausted: below this floor the plane cannot sustain GC
    // headroom, so accepting more writes risks wedging the device and
    // losing mapped data. Degrade to read-only instead.
    read_only_ = true;
    ++stats_.faults().read_only_entries;
    AF_LOG_WARN(
        "plane %llu down to %u usable blocks (floor %u): "
        "device enters read-only mode",
        static_cast<unsigned long long>(plane), usable, floor);
  }
}

// --- Stamps ------------------------------------------------------------------

void Engine::write_stamp(Ppn ppn, std::uint32_t sector_in_page,
                         std::uint64_t stamp) {
  array_.set_stamp(ppn, sector_in_page, stamp);
}

std::uint64_t Engine::read_stamp(Ppn ppn, std::uint32_t sector_in_page) const {
  return array_.stamp(ppn, sector_in_page);
}

void Engine::copy_stamps(Ppn from, Ppn to) {
  for (std::uint32_t s = 0; s < config_.geometry.sectors_per_page(); ++s) {
    array_.set_stamp(to, s, array_.stamp(from, s));
  }
}

}  // namespace af::ssd

#include "ssd/stats.h"

namespace af::ssd {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kDataRead: return "data-read";
    case OpKind::kDataWrite: return "data-write";
    case OpKind::kMapRead: return "map-read";
    case OpKind::kMapWrite: return "map-write";
    case OpKind::kGcRead: return "gc-read";
    case OpKind::kGcWrite: return "gc-write";
    case OpKind::kCkptWrite: return "ckpt-write";
    case OpKind::kMountRead: return "mount-read";
    case OpKind::kScrubRead: return "scrub-read";
    case OpKind::kRebuildRead: return "rebuild-read";
    case OpKind::kParityWrite: return "parity-write";
    case OpKind::kKindCount: break;
  }
  return "?";
}

const char* to_string(ReqClass c) {
  switch (c) {
    case ReqClass::kNormalRead: return "normal-read";
    case ReqClass::kNormalWrite: return "normal-write";
    case ReqClass::kAcrossRead: return "across-read";
    case ReqClass::kAcrossWrite: return "across-write";
    case ReqClass::kClassCount: break;
  }
  return "?";
}

LatencyRecorder DeviceStats::all_reads() const {
  LatencyRecorder r = requests(ReqClass::kNormalRead);
  r.merge(requests(ReqClass::kAcrossRead));
  return r;
}

LatencyRecorder DeviceStats::all_writes() const {
  LatencyRecorder r = requests(ReqClass::kNormalWrite);
  r.merge(requests(ReqClass::kAcrossWrite));
  return r;
}

double DeviceStats::total_io_time_ns() const {
  return all_reads().latency().sum() + all_writes().latency().sum();
}

void DeviceStats::reset() {
  const std::size_t tenants = tenants_.size();
  *this = DeviceStats{};
  tenants_.assign(tenants, TenantStats{});
}

}  // namespace af::ssd

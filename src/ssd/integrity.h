// Data-integrity subsystem (DESIGN.md §8): die-level parity stripes and the
// background scrub scheduler.
//
// StripeTracker keeps the RAM-side stripe directory for RAID-5-style parity
// across the engine's page programs: every `width - 1` non-parity programs
// are closed with one parity-page program, and an uncorrectable member read
// is rebuilt from its surviving peers + the parity page. Stripes protect
// *physical* pages — a member stays rebuildable after logical invalidation
// (its raw cells are intact) and only erasing or retiring a member's or the
// parity's block breaks the stripe. The durable side is the OOB stripe stamp
// (nand::OobRecord::stripe) plus the parity page's own kParity owner record,
// from which rebuild() regroups the directory after a power cut.
//
// ScrubScheduler budgets background refresh: every N accepted host requests
// it health-checks up to `scrub_pages_per_tick` valid pages (cursor sweep)
// and relocates any whose expected bit errors crossed the watermark through
// Engine::scrub_relocate — i.e. through the normal GC relocation machinery,
// so PMT/AMT/MRSM remapping, OOB stamps and victim-weight caches all stay
// coherent for free.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "ssd/config.h"

namespace af::nand {
class FlashArray;
}

namespace af::ssd {

class Engine;

class StripeTracker {
 public:
  /// `width` counts the parity page: width-1 data members + 1 parity.
  explicit StripeTracker(std::uint32_t width);

  [[nodiscard]] std::uint32_t width() const { return width_; }

  // --- Stripe building (engine program path) -------------------------------

  /// Stripe id the next non-parity program joins (stamped into its OOB).
  [[nodiscard]] std::uint64_t open_id() const { return open_id_; }
  /// Records a successful non-parity program into the open stripe.
  void note_member(Ppn ppn);
  /// True once the open stripe holds width-1 members and needs its parity.
  [[nodiscard]] bool open_full() const {
    return open_.size() + 1 >= width_;
  }
  struct OpenStripe {
    std::uint64_t id = 0;
    std::vector<Ppn> members;
  };
  /// Hands the full open stripe to the engine for parity programming and
  /// opens the next one. seal() completes it once the parity page is down.
  [[nodiscard]] OpenStripe take_open();
  void seal(std::uint64_t id, std::vector<Ppn> members, Ppn parity);

  // --- Queries ---------------------------------------------------------------

  struct Stripe {
    std::vector<Ppn> members;
    Ppn parity;
  };
  /// Sealed stripe a page is a member of, or nullptr (open, broken or
  /// never striped). The engine's rebuild path reads members + parity.
  [[nodiscard]] const Stripe* stripe_of(Ppn ppn) const;
  /// Sealed stripe whose *parity* page this is, or nullptr. An uncorrectable
  /// parity page is itself rebuildable — from all of its members.
  [[nodiscard]] const Stripe* stripe_by_parity(Ppn ppn) const;
  [[nodiscard]] std::uint64_t sealed_stripes() const { return stripes_.size(); }

  /// Deterministic iteration over sealed stripes in id order; recovery uses
  /// this to mark parity pages as referenced during reconciliation.
  template <typename Fn>
  void for_each_sealed(Fn&& fn) const {
    for (const auto& [id, stripe] : stripes_) fn(id, stripe);
  }

  // --- Lifecycle -------------------------------------------------------------

  /// The pages [first_ppn, first_ppn + count) are about to lose their data
  /// (block erase or retirement). Breaks every stripe with a member or its
  /// parity in the range; for each broken stripe whose parity page survives
  /// *outside* the range, calls `on_orphaned_parity(parity_ppn)` so the
  /// engine can invalidate it for GC. Returns the number of sealed stripes
  /// broken (open-stripe members in range are dropped silently — they were
  /// never protected).
  template <typename Fn>
  std::uint64_t on_block_destroyed(std::uint64_t first_ppn, std::uint32_t count,
                                   Fn&& on_orphaned_parity) {
    std::uint64_t broken = 0;
    for (std::uint64_t raw = first_ppn; raw < first_ppn + count; ++raw) {
      // Open-stripe members: silently un-member (no protection existed yet).
      for (std::size_t i = 0; i < open_.size();) {
        if (open_[i].get() == raw) {
          open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      const auto mem = member_of_.find(raw);
      std::uint64_t id = 0;
      bool was_parity = false;
      if (mem != member_of_.end()) {
        id = mem->second;
      } else {
        const auto par = parity_of_.find(raw);
        if (par == parity_of_.end()) continue;
        id = par->second;
        was_parity = true;
      }
      const auto it = stripes_.find(id);
      AF_CHECK_MSG(it != stripes_.end(), "stripe index points at no stripe");
      const Ppn parity = it->second.parity;
      drop(id);
      ++broken;
      if (!was_parity &&
          (parity.get() < first_ppn || parity.get() >= first_ppn + count)) {
        on_orphaned_parity(parity);
      }
    }
    return broken;
  }

  /// GC moved a sealed stripe's parity page.
  void on_parity_moved(Ppn from, Ppn to);

  /// Drops a sealed stripe (protection lapsed, e.g. its parity page became
  /// unreadable). No-op if the id is unknown.
  void drop(std::uint64_t id);

  // --- Mount-time rebuild ----------------------------------------------------

  /// Regroups the sealed-stripe directory from the array's OOB records: a
  /// stripe survives the crash iff its parity page and exactly width-1
  /// member pages are still physically present (erase wipes OOB, so broken
  /// stripes fall out naturally). Open stripes died with RAM — members
  /// without a parity page stay unprotected. Returns stripes recovered.
  std::uint64_t rebuild(const nand::FlashArray& array);

 private:
  std::uint32_t width_;
  std::uint64_t open_id_ = 1;
  std::uint64_t next_id_ = 2;
  std::vector<Ppn> open_;
  // Ordered: for_each_sealed feeds recovery's determinism-sensitive refs.
  std::map<std::uint64_t, Stripe> stripes_;
  // Raw ppn -> stripe id. Lookups only — never iterated (determinism).
  std::unordered_map<std::uint64_t, std::uint64_t> member_of_;
  std::unordered_map<std::uint64_t, std::uint64_t> parity_of_;
};

/// Budgeted background refresh, owned by the sim::Ssd facade (like the
/// Checkpointer) and driven once per accepted host request.
class ScrubScheduler {
 public:
  ScrubScheduler(Engine& engine, const SsdConfig::IntegrityConfig& config);

  /// Called after each accepted host request completes at `now`; runs one
  /// scrub tick when the interval elapses. May throw nand::PowerLoss (scrub
  /// reads/programs count as physical ops under an armed cut).
  void note_request(SimTime now);

  [[nodiscard]] std::uint64_t cursor() const { return cursor_; }

 private:
  void tick(SimTime now);

  Engine& engine_;
  SsdConfig::IntegrityConfig cfg_;
  std::uint64_t since_tick_ = 0;
  std::uint64_t cursor_ = 0;  // raw ppn sweep position
};

}  // namespace af::ssd

#include "ssd/map_directory.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace af::ssd {

MapDirectory::MapDirectory(MapIo& io, std::uint64_t num_map_pages,
                           std::uint64_t cache_pages)
    : io_(io),
      num_map_pages_(num_map_pages),
      cache_pages_(cache_pages == 0 ? 1 : cache_pages) {
  flash_loc_.assign(num_map_pages_, Ppn{});
  touched_.assign(num_map_pages_, false);
}

SimTime MapDirectory::touch(std::uint64_t map_page, bool dirty, SimTime ready) {
  AF_CHECK_MSG(map_page < num_map_pages_, "map page id out of range");
  io_.map_dram_access(1);
  if (!touched_[map_page]) {
    touched_[map_page] = true;
    ++touched_count_;
  }

  auto it = cache_.find(map_page);
  if (it != cache_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.dirty = it->second.dirty || dirty;
    return ready;
  }

  ++misses_;
  // Fetch the page from flash if a copy exists there; a never-written table
  // page materialises for free (the table is allocated on demand).
  if (flash_loc_[map_page].valid()) {
    ready = io_.map_flash_read(flash_loc_[map_page], ready);
  }
  if (lru_.size() >= cache_pages_) {
    ready = evict_one(ready);
  }
  // The eviction's write-back may have run GC, whose relocations re-enter
  // touch() — possibly inserting this very page. Never insert twice.
  if (auto it2 = cache_.find(map_page); it2 != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it2->second.lru_pos);
    it2->second.dirty = it2->second.dirty || dirty;
    return ready;
  }
  lru_.push_front(map_page);
  cache_.emplace(map_page, CacheEntry{lru_.begin(), dirty});
  return ready;
}

SimTime MapDirectory::evict_one(SimTime ready) {
  AF_CHECK(!lru_.empty());
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  auto it = cache_.find(victim);
  AF_CHECK(it != cache_.end());
  const bool dirty = it->second.dirty;
  cache_.erase(it);
  if (dirty) {
    ++evictions_;
    // Drop the stale flash copy BEFORE programming the new one: the program
    // may run GC, and a still-valid stale copy it relocated would out-seq
    // the fresh copy in power-cut recovery's OOB replay. (The program may
    // still re-insert the victim into the cache; touch() guards against
    // double insertion.)
    if (flash_loc_[victim].valid()) {
      io_.map_flash_invalidate(flash_loc_[victim]);
      flash_loc_[victim] = Ppn{};
    }
    auto [ppn, done] = io_.map_flash_program(victim, ready);
    flash_loc_[victim] = ppn;
    note_gtd_change(victim);
    ready = done;
  }
  return ready;
}

void MapDirectory::on_relocated(std::uint64_t map_page, Ppn new_ppn) {
  AF_CHECK(map_page < num_map_pages_);
  flash_loc_[map_page] = new_ppn;
  note_gtd_change(map_page);
}

Ppn MapDirectory::flash_location(std::uint64_t map_page) const {
  AF_CHECK(map_page < num_map_pages_);
  return flash_loc_[map_page];
}

std::vector<std::uint64_t> MapDirectory::drain_dirty_gtd() {
  std::sort(dirty_gtd_.begin(), dirty_gtd_.end());
  dirty_gtd_.erase(std::unique(dirty_gtd_.begin(), dirty_gtd_.end()),
                   dirty_gtd_.end());
  return std::exchange(dirty_gtd_, {});
}

void MapDirectory::serialize_gtd(ByteSink& sink) const {
  std::uint64_t count = 0;
  for_each_flash_location([&](std::uint64_t, Ppn) { ++count; });
  sink.u64(count);
  for_each_flash_location([&](std::uint64_t map_page, Ppn ppn) {
    sink.u64(map_page);
    sink.u64(ppn.get());
  });
}

void MapDirectory::recover_set_location(std::uint64_t map_page, Ppn ppn) {
  AF_CHECK(map_page < num_map_pages_);
  flash_loc_[map_page] = ppn;
  if (!touched_[map_page]) {
    touched_[map_page] = true;
    ++touched_count_;
  }
  note_gtd_change(map_page);
}

}  // namespace af::ssd

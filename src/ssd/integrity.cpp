#include "ssd/integrity.h"

#include <algorithm>
#include <utility>

#include "nand/flash_array.h"
#include "ssd/engine.h"

namespace af::ssd {

// --- StripeTracker -----------------------------------------------------------

StripeTracker::StripeTracker(std::uint32_t width) : width_(width) {
  AF_CHECK_MSG(width_ >= 2, "a parity stripe needs at least one member");
}

void StripeTracker::note_member(Ppn ppn) {
  AF_CHECK_MSG(!open_full(), "member pushed into a full stripe");
  open_.push_back(ppn);
}

StripeTracker::OpenStripe StripeTracker::take_open() {
  AF_CHECK_MSG(open_full(), "sealing a stripe that is not full");
  OpenStripe out{open_id_, std::move(open_)};
  open_.clear();
  open_id_ = next_id_++;
  return out;
}

void StripeTracker::seal(std::uint64_t id, std::vector<Ppn> members,
                         Ppn parity) {
  AF_CHECK_MSG(stripes_.find(id) == stripes_.end(), "stripe sealed twice");
  for (const Ppn m : members) {
    const auto [it, inserted] = member_of_.emplace(m.get(), id);
    (void)it;
    AF_CHECK_MSG(inserted, "page is a member of two stripes");
  }
  const auto [pit, pinserted] = parity_of_.emplace(parity.get(), id);
  (void)pit;
  AF_CHECK_MSG(pinserted, "page carries parity for two stripes");
  stripes_.emplace(id, Stripe{std::move(members), parity});
}

const StripeTracker::Stripe* StripeTracker::stripe_of(Ppn ppn) const {
  const auto mem = member_of_.find(ppn.get());
  if (mem == member_of_.end()) return nullptr;
  const auto it = stripes_.find(mem->second);
  AF_CHECK_MSG(it != stripes_.end(), "stripe index points at no stripe");
  return &it->second;
}

const StripeTracker::Stripe* StripeTracker::stripe_by_parity(Ppn ppn) const {
  const auto par = parity_of_.find(ppn.get());
  if (par == parity_of_.end()) return nullptr;
  const auto it = stripes_.find(par->second);
  AF_CHECK_MSG(it != stripes_.end(), "stripe index points at no stripe");
  return &it->second;
}

void StripeTracker::on_parity_moved(Ppn from, Ppn to) {
  const auto par = parity_of_.find(from.get());
  AF_CHECK_MSG(par != parity_of_.end(), "moved page carried no parity");
  const std::uint64_t id = par->second;
  parity_of_.erase(par);
  const auto [it, inserted] = parity_of_.emplace(to.get(), id);
  (void)it;
  AF_CHECK_MSG(inserted, "parity moved onto another stripe's parity page");
  stripes_.at(id).parity = to;
}

void StripeTracker::drop(std::uint64_t id) {
  const auto it = stripes_.find(id);
  if (it == stripes_.end()) return;
  for (const Ppn m : it->second.members) member_of_.erase(m.get());
  parity_of_.erase(it->second.parity.get());
  stripes_.erase(it);
}

std::uint64_t StripeTracker::rebuild(const nand::FlashArray& array) {
  open_.clear();
  stripes_.clear();
  member_of_.clear();
  parity_of_.clear();

  // Regroup by stripe id from the durable stamps. Ordered maps: the sealing
  // order below feeds deterministic rebuild-read sequences later.
  std::map<std::uint64_t, std::vector<Ppn>> members;
  std::map<std::uint64_t, Ppn> parity;
  std::uint64_t max_id = 0;
  const std::uint64_t total = array.geometry().total_pages();
  for (std::uint64_t raw = 0; raw < total; ++raw) {
    const Ppn ppn{raw};
    const nand::OobRecord& oob = array.oob(ppn);
    if (!oob.written() || oob.torn || oob.stripe == 0) continue;
    max_id = std::max(max_id, oob.stripe);
    if (oob.owner.kind == nand::PageOwner::Kind::kParity) {
      // GC/scrub relocation leaves a stale invalid parity copy whose OOB
      // still claims the stripe; newest seq wins, like every other replay.
      const auto it = parity.find(oob.stripe);
      if (it == parity.end() || array.oob(it->second).seq < oob.seq) {
        parity[oob.stripe] = ppn;
      }
    } else {
      members[oob.stripe].push_back(ppn);
    }
  }
  for (const auto& [id, parity_ppn] : parity) {
    const auto mem = members.find(id);
    // Width must check out exactly: fewer members means a block erase broke
    // the stripe before the crash (parity is stale), more is impossible.
    if (mem == members.end() || mem->second.size() + 1 != width_) continue;
    seal(id, mem->second, parity_ppn);
  }
  // Never reuse an id a durable stamp already carries.
  open_id_ = max_id + 1;
  next_id_ = max_id + 2;
  return stripes_.size();
}

// --- ScrubScheduler ----------------------------------------------------------

ScrubScheduler::ScrubScheduler(Engine& engine,
                               const SsdConfig::IntegrityConfig& config)
    : engine_(engine), cfg_(config) {
  AF_CHECK_MSG(cfg_.scrub_enabled(), "ScrubScheduler with scrubbing off");
}

void ScrubScheduler::note_request(SimTime now) {
  if (++since_tick_ < cfg_.scrub_interval_requests) return;
  since_tick_ = 0;
  tick(now);
}

void ScrubScheduler::tick(SimTime now) {
  // Read-only degradation conserves the remaining spare capacity for GC;
  // refresh writes would eat it, so scrubbing stands down.
  if (engine_.read_only()) return;
  ++engine_.stats().faults().scrub_ticks;
  const nand::FlashArray& array = engine_.array();
  const std::uint64_t total = array.geometry().total_pages();
  std::uint32_t budget = std::max(1u, cfg_.scrub_pages_per_tick);
  SimTime clock = now;
  // One full lap at most per tick; the cursor persists across ticks so the
  // sweep eventually visits every resident page no matter the budget.
  for (std::uint64_t step = 0; step < total && budget > 0; ++step) {
    const Ppn ppn{cursor_};
    cursor_ = (cursor_ + 1) % total;
    if (array.state(ppn) != nand::PageState::kValid) continue;
    --budget;
    ++engine_.stats().faults().scrub_scans;
    clock = engine_.scrub_read(ppn, clock);
    if (array.page_ber(ppn) >= cfg_.scrub_ber_watermark) {
      clock = engine_.scrub_relocate(ppn, clock);
    }
  }
}

}  // namespace af::ssd

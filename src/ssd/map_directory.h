// Cached mapping directory (CMT), DFTL-style.
//
// All three FTL schemes keep their logical tables in flash "translation
// pages" and cache a subset in DRAM (§4.2.2: both MRSM and Across-FTL
// "sometimes need loading the expected part of the mapping table into the
// DRAM cache"). A scheme addresses its table as a flat array of map-page
// ids; this class charges a DRAM access per touch, performs flash reads on
// misses and flash write-backs on dirty evictions, and tracks the footprint
// of the table for Figure 12a.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "nand/flash_array.h"
#include "ssd/serialize.h"

namespace af::ssd {

/// Flash/DRAM services the directory needs; implemented by Engine.
class MapIo {
 public:
  virtual ~MapIo() = default;
  [[nodiscard]] virtual SimTime map_flash_read(Ppn ppn, SimTime ready) = 0;
  /// Programs a new version of a translation page; returns its location and
  /// completion time.
  [[nodiscard]] virtual std::pair<Ppn, SimTime> map_flash_program(
      std::uint64_t map_page, SimTime ready) = 0;
  virtual void map_flash_invalidate(Ppn ppn) = 0;
  virtual void map_dram_access(std::uint64_t n) = 0;
};

class MapDirectory {
 public:
  /// `num_map_pages` is the scheme's table size in translation pages;
  /// `cache_pages` is the DRAM budget.
  MapDirectory(MapIo& io, std::uint64_t num_map_pages, std::uint64_t cache_pages);

  /// Brings `map_page` into the CMT (charging flash ops on a miss and on a
  /// dirty eviction), marks it dirty if `dirty`, and returns the advanced
  /// ready time. The caller serialises its data ops behind this.
  [[nodiscard]] SimTime touch(std::uint64_t map_page, bool dirty,
                              SimTime ready);

  /// GC moved the flash copy of `map_page`.
  void on_relocated(std::uint64_t map_page, Ppn new_ppn);

  /// Current flash location of a translation page (invalid if it has never
  /// been written back).
  [[nodiscard]] Ppn flash_location(std::uint64_t map_page) const;

  /// Distinct translation pages ever touched — the allocated-on-demand size
  /// of the mapping table.
  [[nodiscard]] std::uint64_t touched_pages() const { return touched_count_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t cached_pages() const { return lru_.size(); }
  [[nodiscard]] std::uint64_t capacity_pages() const { return cache_pages_; }
  [[nodiscard]] std::uint64_t num_map_pages() const { return num_map_pages_; }

  // --- Crash consistency ----------------------------------------------------

  /// With journaling on, GTD changes (dirty-eviction write-backs, GC
  /// relocations) are tracked so checkpoint deltas can persist them —
  /// without this, a checkpoint's GTD would go stale the moment GC moved a
  /// translation page whose move predates the next snapshot.
  void enable_journal(bool on) { journal_ = on; }
  /// Map-page ids whose GTD entry changed since the last drain, sorted and
  /// deduplicated; clears the set.
  [[nodiscard]] std::vector<std::uint64_t> drain_dirty_gtd();
  /// Serializes every valid GTD entry (snapshot payload).
  void serialize_gtd(ByteSink& sink) const;
  /// Mount-time restore of one GTD entry (checkpoint replay and kMap OOB
  /// claims; later calls win, matching seq order).
  void recover_set_location(std::uint64_t map_page, Ppn ppn);
  /// Walks valid GTD entries: `fn(map_page, ppn)`. Reconciliation uses this
  /// to enumerate the translation pages the recovered state references.
  template <typename Fn>
  void for_each_flash_location(Fn&& fn) const {
    for (std::uint64_t p = 0; p < num_map_pages_; ++p) {
      if (flash_loc_[p].valid()) fn(p, flash_loc_[p]);
    }
  }

 private:
  struct CacheEntry {
    std::list<std::uint64_t>::iterator lru_pos;
    bool dirty = false;
  };

  [[nodiscard]] SimTime evict_one(SimTime ready);
  void note_gtd_change(std::uint64_t map_page) {
    if (journal_) dirty_gtd_.push_back(map_page);
  }

  MapIo& io_;
  std::uint64_t num_map_pages_;
  std::uint64_t cache_pages_;
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::vector<Ppn> flash_loc_;    // GTD: map page -> current flash copy
  std::vector<bool> touched_;
  std::uint64_t touched_count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  bool journal_ = false;
  std::vector<std::uint64_t> dirty_gtd_;
};

}  // namespace af::ssd

// Mount-time crash recovery (DESIGN.md §7).
//
// RAM mapping state — PMT, AMT, MRSM sub-tables, the GTD, GC weight caches —
// is a cache over what flash durably knows: the per-page OOB records
// (nand::OobRecord) and the checkpoint journal. After a power cut, Recovery
// rebuilds the whole stack from those two sources:
//
//   1. load the newest complete checkpoint (snapshot + delta chain) named by
//      the array's MountRoot — this restores the mapping tables and GTD as
//      of `journal_seq`;
//   2. scan the OOB of every block whose max_seq exceeds `journal_seq`
//      (bounded scan — the whole point of checkpointing), collecting claims;
//   3. replay claims in seq order, newest-wins, into the scheme's RAM tables
//      and the GTD (torn pages are detected and skipped);
//   4. reconcile: flash validity is RAM-fiction, so re-derive it — pages not
//      referenced by any recovered mapping entry are invalidated (orphans),
//      referenced-but-invalid pages are revived;
//   5. rebuild the engine's GC victim-weight caches and heaps.
//
// The scheme-specific halves (what a claim means, what the checkpoint
// serializes) live behind the RecoverableMapping interface, implemented by
// ftl::FtlScheme's three schemes.
#pragma once

#include <cstdint>
#include <functional>

#include "common/interval.h"
#include "common/types.h"
#include "nand/flash_array.h"
#include "ssd/serialize.h"

namespace af::ssd {

class Engine;

/// The durable-mapping contract an FTL scheme implements so the checkpoint
/// journal can persist its tables and Recovery can rebuild them. Declared
/// here (not in src/ftl) to keep the layering acyclic: ssd knows the
/// interface, ftl provides the implementations.
class RecoverableMapping {
 public:
  virtual ~RecoverableMapping() = default;

  // --- Checkpoint side (no-crash path) -------------------------------------

  /// Serializes the full mapping state (snapshot journal entry).
  virtual void serialize_mapping(ByteSink& sink) const = 0;
  /// Serializes and drains the entries dirtied since the last serialize call
  /// (delta journal entry). Only meaningful with journaling enabled.
  virtual void serialize_delta(ByteSink& sink) = 0;
  /// Turns dirty-entry tracking on/off. Off (the default) keeps the
  /// no-journal hot path free of bookkeeping.
  virtual void enable_journal(bool on) = 0;

  // --- Mount side -----------------------------------------------------------

  /// Restores the full mapping state from a snapshot payload.
  virtual void deserialize_mapping(ByteSource& src) = 0;
  /// Applies one delta payload on top of the current tables.
  virtual void apply_delta(ByteSource& src) = 0;
  /// Replays one OOB claim: page `ppn` was durably programmed with this
  /// record, newer (by seq) than anything applied before it. RAM tables
  /// only — flash validity is reconciled afterwards in one pass.
  virtual void recover_claim(const nand::OobRecord& oob, Ppn ppn) = 0;
  /// Replays one durable TRIM tombstone, ordered against claims by seq:
  /// clears the mapping of every logical page fully covered by `range`.
  /// RAM tables only — the flash pages it orphans are reconciled afterwards
  /// like any other unreferenced page.
  virtual void recover_trim(SectorRange range) = 0;
  /// Enumerates every flash page the recovered tables reference, with the
  /// owner it should carry (reconciliation's ground truth).
  virtual void recover_enumerate(
      const std::function<void(Ppn, nand::PageOwner)>& fn) const = 0;
  /// Rebuilds derived scheme state (free lists, FIFOs, packed directories'
  /// counters) once checkpoint + claims are fully applied.
  virtual void recover_finalize() = 0;
};

/// What a mount cost and found. `mount_time_ns` is simulated time: the
/// checkpoint reads plus the OOB scan, serialized on the device timeline.
struct RecoveryReport {
  bool used_checkpoint = false;
  std::uint64_t checkpoint_seq = 0;        // journal_seq recovery started from
  std::uint64_t checkpoint_pages_read = 0; // snapshot + delta chunk reads
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;        // max_seq <= journal_seq
  std::uint64_t pages_scanned = 0;         // OOB reads issued by the scan
  std::uint64_t claims_applied = 0;
  std::uint64_t trims_replayed = 0;        // durable tombstones re-applied
  std::uint64_t torn_pages = 0;            // interrupted programs detected
  std::uint64_t orphans_invalidated = 0;
  std::uint64_t pages_revived = 0;
  /// Parity stripes regrouped from OOB stripe stamps (0 with parity off).
  std::uint64_t stripes_recovered = 0;
  std::uint64_t flash_reads = 0;           // checkpoint_pages_read + pages_scanned
  std::uint64_t mount_time_ns = 0;
};

class Recovery {
 public:
  /// Rebuilds `scheme`'s mapping, the GTD and the engine's GC state from the
  /// engine's (adopted) flash image. The scheme must be freshly constructed
  /// on this engine (empty tables, init_map_space done).
  [[nodiscard]] static RecoveryReport mount(Engine& engine,
                                            RecoverableMapping& scheme);
};

}  // namespace af::ssd

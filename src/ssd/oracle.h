// Correctness oracle: a shadow copy of the logical address space at sector
// granularity. Every write stamps its sectors with a fresh version number;
// flash pages store stamps alongside the simulation state; every read is
// checked against the shadow. A remapping bug anywhere — across-area merge,
// rollback, GC migration, MRSM compaction — surfaces as a stamp mismatch.
#pragma once

#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "common/types.h"

namespace af::ssd {

class Oracle {
 public:
  explicit Oracle(std::uint64_t logical_sectors);

  /// Assigns fresh (globally unique) stamps to every sector in `range` and
  /// returns nothing; the per-sector values are then read via expected().
  void on_write(SectorRange range);

  /// TRIM: the sectors of every logical page fully covered by `range` revert
  /// to stamp 0 — "undefined but stable", the same deterministic value a
  /// never-written sector reads. Partial head/tail pages keep their data
  /// (the device unmaps whole pages only). `sectors_per_page` supplies the
  /// alignment.
  void on_trim(SectorRange range, std::uint32_t sectors_per_page);

  /// The stamp the most recent write left on this sector; 0 = never written.
  [[nodiscard]] std::uint64_t expected(SectorAddr sector) const;

  /// Recovery fixup: pins a sector back to a previously issued stamp. A
  /// power cut may legitimately lose the one in-flight (never-acknowledged)
  /// request; after verifying the device serves the pre-request data, the
  /// harness re-aligns the shadow with what flash actually holds.
  void force(SectorAddr sector, std::uint64_t stamp);

  [[nodiscard]] std::uint64_t logical_sectors() const {
    return static_cast<std::uint64_t>(shadow_.size());
  }

 private:
  std::vector<std::uint64_t> shadow_;
  std::uint64_t next_stamp_ = 1;
};

}  // namespace af::ssd

#include "ssd/oracle.h"

#include "common/check.h"

namespace af::ssd {

Oracle::Oracle(std::uint64_t logical_sectors) {
  shadow_.assign(static_cast<std::size_t>(logical_sectors), 0);
}

void Oracle::on_write(SectorRange range) {
  AF_CHECK_MSG(range.end <= shadow_.size(), "write beyond logical space");
  for (SectorAddr s = range.begin; s < range.end; ++s) {
    shadow_[static_cast<std::size_t>(s)] = next_stamp_++;
  }
}

void Oracle::on_trim(SectorRange range, std::uint32_t sectors_per_page) {
  AF_CHECK_MSG(range.end <= shadow_.size(), "trim beyond logical space");
  AF_CHECK(sectors_per_page > 0);
  // Round inward to whole pages: only fully covered pages are unmapped.
  const SectorAddr first =
      (range.begin + sectors_per_page - 1) / sectors_per_page * sectors_per_page;
  const SectorAddr last = range.end / sectors_per_page * sectors_per_page;
  for (SectorAddr s = first; s < last; ++s) {
    shadow_[static_cast<std::size_t>(s)] = 0;
  }
}

std::uint64_t Oracle::expected(SectorAddr sector) const {
  AF_CHECK(sector < shadow_.size());
  return shadow_[static_cast<std::size_t>(sector)];
}

void Oracle::force(SectorAddr sector, std::uint64_t stamp) {
  AF_CHECK(sector < shadow_.size());
  AF_CHECK_MSG(stamp < next_stamp_, "forced stamp was never issued");
  shadow_[static_cast<std::size_t>(sector)] = stamp;
}

}  // namespace af::ssd

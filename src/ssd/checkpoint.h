// Periodic checkpoint journal (DESIGN.md §7).
//
// Every `interval_requests` accepted writes, the Checkpointer serializes
// mapping state — a full snapshot every `snapshot_every`-th entry, the
// dirtied entries (scheme tables + GTD) otherwise — splits the bytes into
// page-sized chunks, and programs them through the normal map-stream write
// path (owner kCkpt, OpKind::kCkptWrite), so journal traffic competes for
// the same flash the host uses and is priced by the same timeline. The
// array's MountRoot is repointed only after a journal entry is completely
// programmed: a power cut mid-entry leaves the previous complete chain in
// force and the partial chunks as orphans for reconciliation to reap.
//
// Recovery (ssd/recovery.h) consumes the chain: restore snapshot, apply
// deltas in order, then replay only OOB records newer than `journal_seq`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "ssd/config.h"
#include "ssd/recovery.h"

namespace af::ssd {

class Engine;

class Checkpointer {
 public:
  struct Counters {
    std::uint64_t journal_writes = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t deltas = 0;
    std::uint64_t pages_written = 0;
    /// Entries skipped under capacity pressure (device read-only, or a
    /// snapshot larger than the free pool) — retried next interval.
    std::uint64_t deferred = 0;
  };

  /// Enables journaling on the scheme and the GTD; registers for GC
  /// relocation callbacks of checkpoint pages. The scheme must already have
  /// called init_map_space on this engine.
  Checkpointer(Engine& engine, RecoverableMapping& scheme,
               SsdConfig::CheckpointPolicy policy);
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Counts one accepted write request; when the interval elapses, writes a
  /// journal entry whose programs ride the device timeline behind `now`
  /// (background work, like GC — request latency is not extended).
  void note_write(SimTime now);

  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  /// Returns false when the entry was deferred by the capacity gate (a
  /// snapshot that does not fit the free pool); all state is left untouched.
  [[nodiscard]] bool write_journal(SimTime now, bool snapshot);
  void on_ckpt_moved(Ppn from, Ppn to);

  Engine& engine_;
  RecoverableMapping& scheme_;
  SsdConfig::CheckpointPolicy policy_;
  std::uint64_t since_last_ = 0;
  std::uint64_t entries_ = 0;
  std::uint64_t next_chunk_id_ = 0;
  /// Chunk list of the entry being programmed right now: GC can relocate an
  /// earlier chunk while a later one's program triggers a pass.
  std::vector<Ppn>* pending_ = nullptr;
  Counters counters_;
};

}  // namespace af::ssd

// Device-level measurement state. Every number reported in the paper's
// figures (flash op counts split map/data, per-class latencies, erase counts,
// DRAM accesses, across-page event classification) is accumulated here.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace af::ssd {

/// Why a flash operation was issued; drives the Map/Data split of Figure 10
/// and the GC accounting.
enum class OpKind : std::uint8_t {
  kDataRead = 0,
  kDataWrite,
  kMapRead,
  kMapWrite,
  kGcRead,
  kGcWrite,
  kCkptWrite,   // checkpoint-journal page programs (crash consistency)
  kMountRead,   // spare-area scan reads during mount-time recovery
  kScrubRead,   // background scrub health-check sensings
  kRebuildRead, // stripe peer + parity reads during a parity rebuild
  kParityWrite, // parity-page programs closing a stripe
  kKindCount
};

/// Request classification (Figure 4 splits all metrics along this axis).
enum class ReqClass : std::uint8_t {
  kNormalRead = 0,
  kNormalWrite,
  kAcrossRead,
  kAcrossWrite,
  kClassCount
};

[[nodiscard]] constexpr bool is_write(ReqClass c) {
  return c == ReqClass::kNormalWrite || c == ReqClass::kAcrossWrite;
}
[[nodiscard]] constexpr bool is_across(ReqClass c) {
  return c == ReqClass::kAcrossRead || c == ReqClass::kAcrossWrite;
}

const char* to_string(OpKind kind);
const char* to_string(ReqClass c);

/// Counters specific to the Across-FTL mechanism (Figure 8 and §4.2.1).
struct AcrossStats {
  std::uint64_t direct_writes = 0;        // fresh across-area creations
  std::uint64_t profitable_amerge = 0;    // AMerge triggered by across request
  std::uint64_t unprofitable_amerge = 0;  // AMerge triggered by other updates
  std::uint64_t rollbacks = 0;            // ARollback events
  std::uint64_t area_shrinks = 0;         // metadata-only partial invalidation
  std::uint64_t direct_reads = 0;         // reads fully inside an area
  std::uint64_t merged_reads = 0;         // reads spilling out of an area
  std::uint64_t merged_read_flash_reads = 0;
  std::uint64_t areas_created = 0;
  std::uint64_t peak_live_areas = 0;
  /// Across-page writes serviced through the normal path because the device
  /// was too full to afford another remapped area (space-pressure valve).
  std::uint64_t bypassed_writes = 0;
  /// Areas rolled back by the valve to drain space pressure.
  std::uint64_t pressure_evictions = 0;

  [[nodiscard]] std::uint64_t total_across_writes() const {
    return direct_writes + profitable_amerge + unprofitable_amerge;
  }
};

/// Recovery-path accounting for injected NAND faults (fault model &
/// recovery, DESIGN.md). Benches report these to price fault overhead;
/// zero-fault runs keep every counter at zero.
struct FaultRecoveryStats {
  std::uint64_t program_faults = 0;   // torn pages (program failed mid-write)
  std::uint64_t program_retries = 0;  // re-programs on a fresh block
  std::uint64_t erase_faults = 0;     // failed erases (each retires a block)
  std::uint64_t read_retries = 0;     // extra read ops for transient failures
  std::uint64_t retired_blocks = 0;   // grown bad blocks pulled from service
  std::uint64_t read_only_entries = 0;  // drops into read-only degradation
  std::uint64_t rejected_writes = 0;  // writes refused while read-only

  // --- Data-integrity subsystem (DESIGN.md §8) -----------------------------
  // All zero unless the BER model / scrub / parity are configured on.
  std::uint64_t read_disturb_reads = 0;  // sensings aging their block's cells
  std::uint64_t raw_bit_errors = 0;      // total raw bit errors drawn
  std::uint64_t ecc_retry_steps = 0;     // extra ladder sensings issued
  std::uint64_t ecc_retry_recoveries = 0;  // reads the ladder rescued
  std::uint64_t uncorrectable_reads = 0;   // ladder exhausted
  std::uint64_t parity_writes = 0;       // parity programs closing stripes
  std::uint64_t parity_rebuilds = 0;     // uncorrectables rebuilt from peers
  std::uint64_t parity_rebuild_reads = 0;  // peer+parity reads those cost
  std::uint64_t stripes_broken = 0;      // stripes whose protection lapsed
  std::uint64_t scrub_ticks = 0;         // scrub scheduler invocations
  std::uint64_t scrub_scans = 0;         // pages health-checked by scrub
  std::uint64_t scrub_relocations = 0;   // pages refreshed past the watermark
  std::uint64_t lost_pages = 0;          // uncorrectable with no intact stripe

  // --- Capacity pressure (DESIGN.md §9) ------------------------------------
  // All zero unless the host issues trims or config.capacity arms the
  // throttle valve / wear leveler.
  std::uint64_t trims = 0;                 // TRIM commands serviced
  std::uint64_t trimmed_pages = 0;         // logical pages unmapped by them
  std::uint64_t no_space_rejections = 0;   // writes refused with kNoSpace
  std::uint64_t throttle_stalls = 0;       // host programs the valve delayed
  std::uint64_t throttle_stall_ns = 0;     // total simulated stall injected
  std::uint64_t wear_level_migrations = 0; // cold blocks recycled by leveling
  std::uint64_t wear_spread = 0;           // gauge: max-min erase count seen

  [[nodiscard]] std::uint64_t total_faults() const {
    return program_faults + erase_faults + read_retries;
  }
};

/// Tail-latency subsystem accounting (DESIGN.md §11). All zero unless
/// config.deadline arms the ledger / preemption / hedging / quarantine, so a
/// default-config run carries no trace of the subsystem.
struct TailStats {
  std::uint64_t erase_suspends = 0;    // background erases preempted
  std::uint64_t program_suspends = 0;  // background programs preempted
  std::uint64_t resume_overhead_ns = 0;  // total re-ramp cost charged
  std::uint64_t suspend_ceiling_hits = 0;  // preemptions refused (starvation guard)
  std::uint64_t suspend_nesting_hits = 0;  // preemptions refused (stack cap)
  std::uint64_t hedged_reads = 0;      // parity-reconstruct hedges fired
  std::uint64_t hedge_wins = 0;        // hedges that beat the primary sensing
  std::uint64_t deadline_misses = 0;   // flash reads finishing past the ledger
  std::uint64_t deadline_retries = 0;  // retry-ladder re-issues
  std::uint64_t deadline_exceeded = 0; // requests escalated to kDeadlineExceeded
  std::uint64_t quarantines = 0;       // dies steered away from
  std::uint64_t unquarantines = 0;     // dies readmitted after episodes end
};

/// Per-tenant accounting for the multi-tenant QoS subsystem (DESIGN.md §12).
/// Only allocated when config.qos names more than one tenant, so the
/// single-tenant default carries no trace of it.
struct TenantStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_sectors = 0;
  std::uint64_t write_sectors = 0;
  /// Data-page programs issued on the tenant's behalf (host writes).
  std::uint64_t host_pages = 0;
  /// The tenant's pages relocated by GC — its share of write amplification,
  /// charged to the page's owner, not to whoever triggered the collection.
  std::uint64_t gc_pages = 0;
  std::uint64_t throttle_stalls = 0;    // token-bucket admission stalls
  std::uint64_t throttle_stall_ns = 0;  // total simulated stall injected
  std::uint64_t rejected_writes = 0;    // capacity-share kNoSpace rejections
  LatencyRecorder read_latency;
  LatencyRecorder write_latency;

  /// Per-tenant write amplification: (host + GC programs) / host programs.
  [[nodiscard]] double waf() const {
    return host_pages != 0 ? static_cast<double>(host_pages + gc_pages) /
                                 static_cast<double>(host_pages)
                           : 0.0;
  }
};

class DeviceStats {
 public:
  // --- Flash operations ----------------------------------------------------
  void count_flash_op(OpKind kind) { ++flash_ops_[idx(kind)]; }
  [[nodiscard]] std::uint64_t flash_ops(OpKind kind) const {
    return flash_ops_[idx(kind)];
  }
  [[nodiscard]] std::uint64_t flash_reads() const {
    return flash_ops(OpKind::kDataRead) + flash_ops(OpKind::kMapRead) +
           flash_ops(OpKind::kGcRead) + flash_ops(OpKind::kMountRead) +
           flash_ops(OpKind::kScrubRead) + flash_ops(OpKind::kRebuildRead);
  }
  [[nodiscard]] std::uint64_t flash_writes() const {
    return flash_ops(OpKind::kDataWrite) + flash_ops(OpKind::kMapWrite) +
           flash_ops(OpKind::kGcWrite) + flash_ops(OpKind::kCkptWrite) +
           flash_ops(OpKind::kParityWrite);
  }

  void count_erase() { ++erases_; }
  [[nodiscard]] std::uint64_t erases() const { return erases_; }

  void count_dram_access(std::uint64_t n = 1) { dram_accesses_ += n; }
  [[nodiscard]] std::uint64_t dram_accesses() const { return dram_accesses_; }

  /// Reads issued only to preserve unmodified sectors during an update
  /// (read-modify-write); §4.2.2 reports Across-FTL removing 62.2% of these.
  void count_rmw_read() { ++rmw_reads_; }
  [[nodiscard]] std::uint64_t rmw_reads() const { return rmw_reads_; }

  // --- Per-request-class accounting (Figure 4) ------------------------------
  void record_request(ReqClass c, SimDuration latency_ns, SectorCount sectors) {
    recorders_[cidx(c)].record(latency_ns, sectors);
  }
  [[nodiscard]] const LatencyRecorder& requests(ReqClass c) const {
    return recorders_[cidx(c)];
  }
  /// Page programs attributed to the request class being serviced.
  void count_class_flush(ReqClass c) { ++class_flushes_[cidx(c)]; }
  [[nodiscard]] std::uint64_t class_flushes(ReqClass c) const {
    return class_flushes_[cidx(c)];
  }

  // --- Mapping footprint (Figure 12a) ----------------------------------------
  void note_map_bytes(std::uint64_t bytes) {
    if (bytes > peak_map_bytes_) peak_map_bytes_ = bytes;
  }
  [[nodiscard]] std::uint64_t peak_map_bytes() const { return peak_map_bytes_; }

  AcrossStats& across() { return across_; }
  [[nodiscard]] const AcrossStats& across() const { return across_; }

  FaultRecoveryStats& faults() { return faults_; }
  [[nodiscard]] const FaultRecoveryStats& faults() const { return faults_; }

  TailStats& tail() { return tail_; }
  [[nodiscard]] const TailStats& tail() const { return tail_; }

  // --- Multi-tenant QoS (DESIGN.md §12) -------------------------------------
  /// Sizes the per-tenant table; reset() preserves the sizing so aging
  /// warm-up can be discarded without losing the tenant layout.
  void init_tenants(std::size_t n) { tenants_.assign(n, TenantStats{}); }
  TenantStats& tenant(std::size_t i) { return tenants_[i]; }
  [[nodiscard]] const std::vector<TenantStats>& tenants() const {
    return tenants_;
  }

  /// Per-op-kind simulated service-time histogram (ready → done of the
  /// scheduled flash op). Feeds perf_replay's op-kind latency section; never
  /// printed by the legacy tables, so recording is output-neutral for them.
  void note_op_latency(OpKind kind, SimDuration ns) {
    op_latency_[idx(kind)].add(ns);
  }
  [[nodiscard]] const LogHistogram& op_latency(OpKind kind) const {
    return op_latency_[idx(kind)];
  }

  /// Aggregate latency across all request classes.
  [[nodiscard]] LatencyRecorder all_reads() const;
  [[nodiscard]] LatencyRecorder all_writes() const;
  [[nodiscard]] double total_io_time_ns() const;

  /// Zeroes the measurement state (called after device aging so warm-up ops
  /// do not pollute reported numbers).
  void reset();

 private:
  static constexpr std::size_t idx(OpKind kind) {
    return static_cast<std::size_t>(kind);
  }
  static constexpr std::size_t cidx(ReqClass c) {
    return static_cast<std::size_t>(c);
  }

  std::array<std::uint64_t, static_cast<std::size_t>(OpKind::kKindCount)>
      flash_ops_{};
  std::array<LatencyRecorder, static_cast<std::size_t>(ReqClass::kClassCount)>
      recorders_{};
  std::array<std::uint64_t, static_cast<std::size_t>(ReqClass::kClassCount)>
      class_flushes_{};
  std::uint64_t erases_ = 0;
  std::uint64_t dram_accesses_ = 0;
  std::uint64_t rmw_reads_ = 0;
  std::uint64_t peak_map_bytes_ = 0;
  AcrossStats across_;
  FaultRecoveryStats faults_;
  TailStats tail_;
  std::array<LogHistogram, static_cast<std::size_t>(OpKind::kKindCount)>
      op_latency_{};
  std::vector<TenantStats> tenants_;
};

}  // namespace af::ssd

#include "ssd/checkpoint.h"

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>

#include "common/check.h"
#include "ssd/engine.h"
#include "ssd/serialize.h"

namespace af::ssd {

Checkpointer::Checkpointer(Engine& engine, RecoverableMapping& scheme,
                           SsdConfig::CheckpointPolicy policy)
    : engine_(engine), scheme_(scheme), policy_(policy) {
  AF_CHECK_MSG(engine_.map_directory_mut() != nullptr,
               "Checkpointer before init_map_space");
  scheme_.enable_journal(true);
  engine_.map_directory_mut()->enable_journal(true);
  engine_.set_ckpt_moved(
      [this](Ppn from, Ppn to) { on_ckpt_moved(from, to); });
}

Checkpointer::~Checkpointer() { engine_.set_ckpt_moved(nullptr); }

void Checkpointer::note_write(SimTime now) {
  if (!policy_.enabled()) return;
  if (++since_last_ < policy_.interval_requests) return;
  since_last_ = 0;
  if (engine_.read_only()) {
    // The device stopped taking writes; a journal entry's map-stream burst
    // is not admission-checked and would eat the free blocks GC still needs
    // for its own relocations. Recovery stays correct without the entry —
    // the OOB scan replays everything past the last committed one.
    ++counters_.deferred;
    return;
  }
  const std::uint32_t cadence = std::max<std::uint32_t>(1, policy_.snapshot_every);
  const bool snapshot = entries_ % cadence == 0;
  if (!write_journal(now, snapshot)) {
    // Not enough free headroom for the entry right now. entries_ stays put,
    // so the retry next interval attempts the same (snapshot/delta) kind —
    // in particular the first-ever entry is always a snapshot, and deltas
    // never land without a root to hang off.
    ++counters_.deferred;
    return;
  }
  ++entries_;
  ++counters_.journal_writes;
  if (snapshot) {
    ++counters_.snapshots;
  } else {
    ++counters_.deltas;
  }
}

bool Checkpointer::write_journal(SimTime now, bool snapshot) {
  nand::FlashArray& array = engine_.array();
  MapDirectory& dir = *engine_.map_directory_mut();

  // Everything with seq <= journal_seq is covered by this entry; the entry's
  // own programs (and any GC they trigger) get larger seqs and are replayed
  // from OOB on top of it at mount.
  const std::uint64_t seq_at = array.last_seq();

  ByteSink sink;
  if (snapshot) {
    scheme_.serialize_mapping(sink);
    dir.serialize_gtd(sink);
    // Capacity gate, checked before anything is drained (serialization above
    // is const): a full snapshot is the one burst that can exceed the free
    // pool outright at deep end-of-life, when erase faults have eaten most
    // spares and GC can no longer backfill behind the chunk programs. Defer
    // it — nothing is lost, the dirty state simply rides to the next try.
    const std::uint64_t page_bytes = engine_.geometry().page_bytes;
    const std::uint64_t need =
        (sink.bytes().size() + page_bytes - 1) / page_bytes;
    if (engine_.free_headroom_pages() < need) {
      return false;
    }
    // A snapshot supersedes all prior dirty state: drain it into the void so
    // the next delta carries only post-snapshot changes.
    ByteSink scratch;
    scheme_.serialize_delta(scratch);
    (void)dir.drain_dirty_gtd();
  } else {
    scheme_.serialize_delta(sink);
    const std::vector<std::uint64_t> dirty = dir.drain_dirty_gtd();
    sink.u64(dirty.size());
    for (const std::uint64_t map_page : dirty) {
      sink.u64(map_page);
      sink.u64(dir.flash_location(map_page).get());
    }
  }

  // Chunk the payload into page-sized pieces and program them through the
  // map stream. GC may fire mid-entry and relocate earlier chunks; pending_
  // lets on_ckpt_moved repoint them before they reach the root.
  const std::vector<std::uint8_t> bytes = sink.take();
  const std::uint64_t page_bytes = engine_.geometry().page_bytes;
  std::vector<Ppn> pages;
  pending_ = &pages;
  SimTime clock = now;
  std::size_t offset = 0;
  do {
    const std::size_t len = std::min<std::size_t>(page_bytes, bytes.size() - offset);
    const Engine::Programmed prog =
        engine_.flash_program(Stream::kMap, nand::PageOwner::ckpt(next_chunk_id_++),
                              OpKind::kCkptWrite, clock);
    clock = prog.done;
    array.set_ckpt_blob(
        prog.ppn, std::vector<std::uint8_t>(bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                                            bytes.begin() + static_cast<std::ptrdiff_t>(offset + len)));
    pages.push_back(prog.ppn);
    ++counters_.pages_written;
    offset += len;
  } while (offset < bytes.size());
  pending_ = nullptr;

  // Commit: repoint the root only now that the entry is fully on flash. Read
  // the root fresh — GC during the chunk programs may have moved old journal
  // pages and updated it.
  nand::MountRoot root = array.mount_root();
  if (snapshot) {
    std::vector<Ppn> superseded;
    if (root.valid) {
      superseded = root.snapshot_pages;
      for (const std::vector<Ppn>& delta : root.delta_pages) {
        superseded.insert(superseded.end(), delta.begin(), delta.end());
      }
    }
    nand::MountRoot fresh;
    fresh.valid = true;
    fresh.snapshot_seq = seq_at;
    fresh.journal_seq = seq_at;
    fresh.snapshot_pages = std::move(pages);
    array.set_mount_root(std::move(fresh));
    for (const Ppn ppn : superseded) {
      engine_.invalidate(ppn);
    }
  } else {
    AF_CHECK_MSG(root.valid, "delta journal entry with no snapshot");
    root.journal_seq = seq_at;
    root.delta_pages.push_back(std::move(pages));
    array.set_mount_root(std::move(root));
  }
  // Trims dirty their mapping entries like writes do, so every tombstone at
  // or below seq_at is folded into the entry just committed; recovery skips
  // that span (tomb.seq <= journal_seq). Drop them so the log stays bounded.
  array.prune_trim_log(seq_at);
  return true;
}

void Checkpointer::on_ckpt_moved(Ppn from, Ppn to) {
  const auto replace = [&](std::vector<Ppn>& v) {
    for (Ppn& p : v) {
      if (p == from) {
        p = to;
        return true;
      }
    }
    return false;
  };
  if (pending_ != nullptr && replace(*pending_)) return;
  nand::MountRoot root = engine_.array().mount_root();
  bool hit = replace(root.snapshot_pages);
  for (std::size_t i = 0; !hit && i < root.delta_pages.size(); ++i) {
    hit = replace(root.delta_pages[i]);
  }
  AF_CHECK_MSG(hit, "relocated checkpoint page not in the journal");
  engine_.array().set_mount_root(std::move(root));
}

}  // namespace af::ssd

// The SSD engine: page allocation, garbage collection, flash-op timing and
// accounting. FTL schemes are policies layered on top of this mechanism —
// they decide *what* to read, program and remap; the engine decides *where*
// pages land, *when* operations complete, and keeps every figure's counters.
//
// Threading: deliberately unsynchronized. Under the concurrent pipeline
// (DESIGN.md §10) the engine is device-stage-confined — exactly one thread
// at a time calls into it, serialized by the pipeline mutex — and on the
// serial path it is owned by the caller. Nothing here may block or spawn.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "nand/flash_array.h"
#include "ssd/config.h"
#include "ssd/map_directory.h"
#include "ssd/stats.h"
#include "ssd/status.h"
#include "ssd/timeline.h"

namespace af::ssd {

/// Write streams keep unlike data apart: host writes, GC migrations,
/// translation pages and parity pages each fill their own active block per
/// plane (parity separated so a stripe's members and its parity never share
/// a block — one block failure must not take both).
///
/// The enum names the four fixed streams; under multi-tenant QoS
/// (config.qos.streams_enabled(), DESIGN.md §12) the engine grows a runtime
/// stream table past them — one (or two, hot/cold) data slots per tenant —
/// and Stream::kData programs are routed to the current tenant's slot, so
/// schemes keep passing the enum and never learn about tenants.
enum class Stream : std::uint8_t { kData = 0, kGc, kMap, kParity, kStreamCount };
constexpr std::size_t kStreamCount =
    static_cast<std::size_t>(Stream::kStreamCount);

/// "No tenant" marker for engine-internal attribution (map/ckpt/parity
/// pages, single-tenant builds).
inline constexpr std::uint16_t kNoTenant = 0xffff;

class StripeTracker;

/// How a flash read's data came back (DESIGN.md §8). Everything except kLost
/// returned correct data; the grades price what it cost. kLost means the ECC
/// ladder was exhausted and no intact parity stripe covered the page — the
/// caller must treat the payload as gone (the sim surfaces it via counters
/// and Completion::data_lost; stamps stay intact so the oracle keeps running).
enum class ReadStatus : std::uint8_t {
  kOk = 0,      // first sensing decoded (or BER model off)
  kEccRetried,  // rescued by the read-retry ladder
  kRebuilt,     // uncorrectable, rebuilt from stripe peers + parity
  kLost         // uncorrectable, no intact stripe
};

struct ReadResult {
  SimTime done = 0;
  ReadStatus status = ReadStatus::kOk;
  [[nodiscard]] bool data_lost() const { return status == ReadStatus::kLost; }
};

class Engine final : private MapIo {
 public:
  explicit Engine(const SsdConfig& config);
  /// Mount path: adopts a flash image that survived power loss. Free lists,
  /// retirement counts and the read-only floor are rebuilt from the image;
  /// active blocks start empty (partially-written blocks become GC
  /// candidates), and the victim-weight caches stay zero until Recovery has
  /// re-derived page liveness and calls rebuild_victim_state().
  Engine(const SsdConfig& config, nand::FlashArray image);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Scheme services ------------------------------------------------------

  /// Reads a flash page; returns completion time plus the integrity grade.
  /// With the BER model on, the read draws raw bit errors and may climb the
  /// ECC read-retry ladder, rebuild from a parity stripe, or come back
  /// kLost — callers must consume the status (enforced by [[nodiscard]] and
  /// the af_lint integrity-status rule).
  [[nodiscard]] ReadResult flash_read(Ppn ppn, OpKind kind, SimTime ready);

  struct Programmed {
    Ppn ppn;
    SimTime done = 0;
  };

  /// Allocates the next page of `stream`, programs it, and returns its
  /// address and completion time (threshold GC may run behind the program).
  /// `oob` carries the spare-area mapping payload for across/packed pages;
  /// plain data/map/ckpt pages derive theirs from the owner alone. `stamps`
  /// is the page's payload (slots [0, stamps->size())), written atomically
  /// with the program — on real flash data and spare land in one operation,
  /// so under power-cut injection a completed program must never be
  /// separable from its payload.
  [[nodiscard]] Programmed flash_program(
      Stream stream, nand::PageOwner owner, OpKind kind, SimTime ready,
      const nand::OobExtra* oob = nullptr,
      const std::vector<std::uint64_t>* stamps = nullptr);

  /// Marks a page stale. No timing cost: invalidation is a metadata action.
  void invalidate(Ppn ppn);

  // --- Capacity admission & pacing (DESIGN.md §9) ---------------------------

  /// Admission check for a host write needing up to `pages` fresh data
  /// pages. Pure arithmetic over the array counters — no RNG, no timing, no
  /// state change — so arming it costs default runs nothing. kReadOnly once
  /// degradation engaged; kNoSpace when the projected valid-page population
  /// would eat into the per-plane GC reserve plus
  /// config.capacity.no_space_margin_blocks (a device that full can no
  /// longer turn blocks over). Never fires while exported_fraction leaves
  /// the stock over-provisioning in place.
  [[nodiscard]] Status admit_write(std::uint64_t pages) const;

  /// GC-debt pacing valve: simulated stall (ns) to charge a host data
  /// program landing on `plane`. Zero with the valve unconfigured or while
  /// the plane's free-block count clears trigger + throttle_window_blocks;
  /// below that, ns_per_block per missing block — deeper debt, longer stall.
  [[nodiscard]] SimDuration throttle_delay(std::uint64_t plane) const;

  /// Accesses one translation page of the scheme's mapping table through the
  /// CMT. Must be preceded by init_map_space(). Returns advanced ready time.
  [[nodiscard]] SimTime map_touch(std::uint64_t map_page, bool dirty,
                                  SimTime ready);

  /// Charges `n` DRAM accesses (mapping-structure walks beyond the CMT touch
  /// itself, e.g. MRSM's tree descent).
  void dram_access(std::uint64_t n = 1);

  /// Declares the scheme's mapping-table size in translation pages and
  /// builds the CMT with the configured DRAM budget.
  void init_map_space(std::uint64_t num_map_pages);

  // --- GC plumbing ----------------------------------------------------------

  /// The scheme's relocation callback: move the live page `victim` (owned by
  /// `owner`) to a fresh location and update the scheme's mapping. Data must
  /// be programmed through gc_program(). `clock` is the GC time cursor.
  using Relocator =
      std::function<void(Ppn victim, const nand::PageOwner& owner, SimTime& clock)>;
  void set_relocator(Relocator relocator) { relocator_ = std::move(relocator); }

  /// End-of-GC hook, called once per GC pass after the last victim was
  /// erased, with GC allowances still in force. Schemes that stage sub-page
  /// chunks during relocation (MRSM's cross-page repacking) drain their
  /// buffers here.
  using GcFlush = std::function<void(std::uint64_t plane, SimTime& clock)>;
  void set_gc_flush(GcFlush flush) { gc_flush_ = std::move(flush); }

  /// Weight of a fully-live valid page in victim scoring.
  static constexpr std::uint32_t kFullPageWeight = 256;

  /// Victim-scoring oracle: how much of a valid page is actually live, in
  /// [0, kFullPageWeight]. Sub-page schemes (MRSM, Across-FTL's area mode)
  /// install this so that page-level-valid but slot-level-dead blocks remain
  /// GC victims; without it, fragmentation wedges the device.
  ///
  /// The hot path never calls this: victim selection reads the incremental
  /// per-block weight cache, which the scheme keeps in sync by pushing
  /// note_page_weight() at every slot-liveness change. The callback is the
  /// pull-style ground truth behind block_weight(), used by the debug
  /// consistency checks and tests to validate the pushed weights.
  using VictimWeight = std::function<std::uint32_t(Ppn)>;
  void set_victim_weight(VictimWeight weight) {
    victim_weight_ = std::move(weight);
  }

  /// Weight-delta push: declares that valid page `ppn` now carries
  /// `live_weight` (≤ kFullPageWeight) of live data. Programs start at
  /// kFullPageWeight; schemes with sub-page liveness (MRSM slots, Across-FTL
  /// areas) push the real weight right after programming and again whenever
  /// slot-level liveness changes. O(1): updates the page and block weight
  /// caches and re-indexes the block in its plane's victim heap.
  void note_page_weight(Ppn ppn, std::uint32_t live_weight);

  /// Program dedicated to relocation: writes into the GC stream of the
  /// victim's plane.
  [[nodiscard]] Programmed gc_program(std::uint64_t plane,
                                      nand::PageOwner owner, SimTime ready,
                                      const nand::OobExtra* oob = nullptr);

  /// Notification that GC moved a checkpoint-journal page, so the journal
  /// owner (ssd::Checkpointer) can repoint the mount root at the new copy.
  using CkptMoved = std::function<void(Ppn from, Ppn to)>;
  void set_ckpt_moved(CkptMoved moved) { ckpt_moved_ = std::move(moved); }

  // --- Data integrity (DESIGN.md §8) ----------------------------------------

  /// Scrub health-check sensing: charges one read (no ECC ladder — the
  /// scrubber acts on the page's *expected* BER, not a sampled draw, so the
  /// sweep itself stays deterministic and draw-free).
  [[nodiscard]] SimTime scrub_read(Ppn ppn, SimTime ready);

  /// Relocates one valid page through the GC machinery (mapping updates, OOB
  /// stamps and victim-weight caches all follow the normal relocation path),
  /// refreshing its retention clock. Must not be called during GC.
  [[nodiscard]] SimTime scrub_relocate(Ppn ppn, SimTime ready);

  /// Mount-time parity-state rebuild from the OOB stripe stamps; returns the
  /// number of sealed stripes recovered. No-op (0) with parity off. A pure
  /// metadata pass: real firmware would persist a stripe directory in its
  /// checkpoints, so mount charges no extra reads here.
  std::uint64_t rebuild_parity_state();

  /// Sealed-stripe directory, or nullptr with parity off. Recovery marks
  /// parity pages as referenced through this.
  [[nodiscard]] const StripeTracker* stripes() const { return stripes_.get(); }

  // --- Payload stamps (oracle) ----------------------------------------------

  [[nodiscard]] bool tracks_payload() const { return array_.tracks_payload(); }
  void write_stamp(Ppn ppn, std::uint32_t sector_in_page, std::uint64_t stamp);
  [[nodiscard]] std::uint64_t read_stamp(Ppn ppn,
                                         std::uint32_t sector_in_page) const;
  /// Copies all sector stamps from one page to another (GC migration).
  void copy_stamps(Ppn from, Ppn to);

  // --- Introspection ----------------------------------------------------------

  [[nodiscard]] const SsdConfig& config() const { return config_; }
  [[nodiscard]] const nand::Geometry& geometry() const {
    return config_.geometry;
  }
  [[nodiscard]] nand::FlashArray& array() { return array_; }
  [[nodiscard]] const nand::FlashArray& array() const { return array_; }
  [[nodiscard]] DeviceStats& stats() { return stats_; }
  [[nodiscard]] const DeviceStats& stats() const { return stats_; }
  [[nodiscard]] const MapDirectory* map_directory() const { return map_.get(); }
  /// Mutable directory access for the checkpoint/recovery machinery (GTD
  /// serialization and mount-time restore).
  [[nodiscard]] MapDirectory* map_directory_mut() { return map_.get(); }
  [[nodiscard]] ResourceTimeline& timeline() { return timeline_; }

  // --- Mount/recovery support -----------------------------------------------

  /// Spare-area scan read during mount: charges one flash read (OOB reads
  /// ride the page-read latency here) without the valid-page assertion —
  /// recovery reads invalid and torn pages too.
  [[nodiscard]] SimTime mount_read(Ppn ppn, SimTime ready);

  /// Surrenders the flash image (e.g. after a power cut, to hand it to a
  /// freshly mounted engine). The engine must not be used afterwards.
  [[nodiscard]] nand::FlashArray release_array() { return std::move(array_); }

  /// Recomputes per-page/per-block live-weight caches from the array and the
  /// installed victim-weight oracle, then rebuilds every plane's victim
  /// heap. Recovery calls this once the scheme's tables are back.
  void rebuild_victim_state();

  /// Free blocks currently available in a plane (excluding active blocks).
  [[nodiscard]] std::uint64_t free_blocks(std::uint64_t plane) const;

  /// Device-wide free capacity in pages (free blocks only — active-block
  /// frontiers are excluded). The checkpointer sizes journal entries against
  /// this so a snapshot burst never eats the free blocks GC still needs.
  [[nodiscard]] std::uint64_t free_headroom_pages() const;

  /// Per-plane free-block floor below which GC engages. Public because
  /// schemes derive their space-pressure watermarks from it. The effective
  /// per-plane trigger adds a small deterministic stagger (see
  /// plane_trigger_blocks) so plane GC waves do not synchronise.
  [[nodiscard]] std::uint32_t gc_trigger_blocks() const;
  [[nodiscard]] std::uint32_t plane_trigger_blocks(std::uint64_t plane) const;

  /// Attribute subsequent data programs to this request class (Figure 4c).
  void set_request_class(std::optional<ReqClass> c) { current_class_ = c; }

  // --- Multi-tenant QoS (DESIGN.md §12) -------------------------------------

  /// Attribute subsequent host data programs to this tenant: they allocate
  /// from the tenant's stream slot (config.qos.streams_enabled()) and are
  /// stamped into page/OOB tenant bookkeeping. Ignored — cheap store only —
  /// unless config.qos.enabled(). The facade sets it per request, mirroring
  /// set_request_class.
  void set_tenant(std::uint16_t tenant) { current_tenant_ = tenant; }

  /// Per-tenant capacity-share admission on top of admit_write(): kNoSpace
  /// once the tenant's live footprint plus `pages` would exceed its share of
  /// logical pages (config.qos.capacity_share_millis). kOk whenever quotas
  /// are unconfigured — pure arithmetic, no state change.
  [[nodiscard]] Status admit_tenant_write(std::uint16_t tenant,
                                          std::uint64_t pages) const;

  /// Live data pages currently attributed to `tenant` (0 with QoS off).
  [[nodiscard]] std::uint64_t tenant_live_pages(std::uint16_t tenant) const {
    return tenant < tenant_live_pages_.size() ? tenant_live_pages_[tenant] : 0;
  }

  /// Returns and clears the pages GC relocated on `tenant`'s behalf since
  /// the last drain. The facade converts this into a token-bucket surcharge
  /// (config.qos.gc_debt_sectors_per_page) so the tenant that dirtied the
  /// blocks pays for their reclamation.
  std::uint64_t drain_gc_debt_pages(std::uint16_t tenant);

  /// Total stream slots (fixed streams + tenant data slots).
  [[nodiscard]] std::uint32_t stream_slot_count() const { return stream_slots_; }
  /// Slot a host data program of `tenant` allocates from.
  [[nodiscard]] std::uint32_t data_slot(std::uint16_t tenant) const;
  /// Tenant attributed to a valid page, or kNoTenant (engine-owned pages,
  /// QoS off). Exposed for tests and recovery verification.
  [[nodiscard]] std::uint16_t page_tenant(Ppn ppn) const {
    return page_tenant_.empty() ? kNoTenant : page_tenant_[ppn.get()];
  }

  /// Mount-time QoS rebuild from OOB stamps: re-derives page→tenant
  /// attribution and per-tenant live-page counts, and re-adopts
  /// partially-written blocks as their stream slot's active frontier (the
  /// stamped slot of the block's newest page). Recovery calls this before
  /// rebuild_victim_state() so adopted frontiers leave the victim heaps.
  /// No-op unless config.qos.enabled().
  void rebuild_qos_state();

  // --- Tail-latency subsystem (DESIGN.md §11) -------------------------------

  /// In-simulated-time deadline ledger for the request currently being
  /// serviced. While set, foreground reads that would otherwise finish past
  /// `deadline` may suspend in-flight background erase/program ops
  /// (config.deadline.preempt) and fire hedged parity-reconstruct reads once
  /// they slip past `hedge_at` (config.deadline.hedging()); reads finishing
  /// late are counted as misses and feed die quarantine. Cleared between
  /// requests; never set unless config.deadline.enabled().
  struct DeadlineLedger {
    SimTime deadline = 0;
    SimTime hedge_at = 0;  ///< 0 = hedging off for this request
  };
  void set_deadline_ledger(std::optional<DeadlineLedger> ledger) {
    ledger_ = ledger;
  }
  [[nodiscard]] const std::optional<DeadlineLedger>& deadline_ledger() const {
    return ledger_;
  }

  /// Dies currently quarantined (allocation steered away). Empty unless
  /// config.deadline.quarantine_misses > 0 and misses accumulated.
  [[nodiscard]] std::uint64_t quarantined_dies() const;
  /// True when `die` (flat index, chip-major) is quarantined right now.
  [[nodiscard]] bool die_quarantined(std::uint64_t die) const;

  /// Total GC passes run.
  [[nodiscard]] std::uint64_t gc_runs() const { return gc_runs_; }

  /// Graceful degradation: true once block retirement has eaten into the
  /// spare capacity some plane needs to keep GC viable. The device then
  /// refuses new writes (the facade surfaces the rejection) but keeps
  /// serving reads and internal housekeeping.
  [[nodiscard]] bool read_only() const { return read_only_; }

  /// Blocks retired in `plane` so far (grown bad blocks).
  [[nodiscard]] std::uint32_t retired_blocks(std::uint64_t plane) const {
    return planes_[plane].retired;
  }

  /// Sum of live weights over a block's valid pages, recomputed from scratch
  /// through the VictimWeight oracle (brute force; public for tests and the
  /// debug consistency checks).
  [[nodiscard]] std::uint64_t block_weight(std::uint64_t flat_block) const;

  /// The incrementally-maintained live weight of a block — what victim
  /// selection actually reads. Invariant: equals block_weight() whenever the
  /// scheme's note_page_weight() pushes are correct.
  [[nodiscard]] std::uint64_t cached_block_weight(std::uint64_t flat_block) const {
    return cached_weight_[flat_block];
  }

  /// Cross-validates the weight caches against a brute-force recompute of
  /// every block (and the per-page weights against the oracle). Aborts
  /// loudly on any drift; O(pages), for tests and debugging only.
  void verify_victim_accounting() const;

  /// Victim-selection work counters (perf trajectory; see bench/perf_replay).
  struct GcPerf {
    std::uint64_t victim_picks = 0;     // pick_victim calls
    std::uint64_t heap_pops = 0;        // stale index entries discarded
    std::uint64_t heap_pushes = 0;      // index entries (re-)inserted
    std::uint64_t heap_rebuilds = 0;    // compactions of a plane's index
    std::uint64_t scan_picks = 0;       // reference-path picks (debug/bench)
    std::uint64_t scan_blocks = 0;      // blocks visited by the scan path
  };
  [[nodiscard]] const GcPerf& gc_perf() const { return gc_perf_; }

  static constexpr std::uint32_t kNoBlock = UINT32_MAX;
  static constexpr std::uint64_t kNoPlane = UINT64_MAX;

  /// Greedy victim choice off the plane's weight-indexed heap; returns
  /// kNoBlock when nothing is reclaimable. Public (with pick_victim_scan)
  /// so benches and tests can compare the indexed and scan paths. Lazily
  /// discards stale index entries, hence non-const.
  std::uint32_t pick_victim(std::uint64_t plane);

  /// Reference implementation: the original full scan over the plane's
  /// blocks, rescoring each through block_weight(). Kept as the verification
  /// oracle for the indexed path and as the microbenchmark baseline.
  [[nodiscard]] std::uint32_t pick_victim_scan(std::uint64_t plane) const;

 private:
  struct PlaneState {
    std::vector<std::uint32_t> free_blocks;  // block ids within plane
    // Active (partially filled) block per stream slot (stream_slots_
    // entries: the four fixed streams plus any tenant data slots);
    // kNoBlock when none.
    std::vector<std::uint32_t> active;
    // Victim currently being drained by resumable partial GC.
    std::uint32_t gc_victim;
    // Grown bad blocks no longer in service (spare-capacity accounting).
    std::uint32_t retired;
    // Lazy min-heap of victim_key() entries over this plane's non-active,
    // non-retired blocks. Entries are snapshots: a block's key is re-pushed
    // on every weight/frontier change and stale snapshots are discarded at
    // pick time (or swept wholesale by rebuild_victim_heap).
    std::vector<std::uint64_t> victim_heap;
  };

  // MapIo implementation (directory's view of the engine).
  [[nodiscard]] SimTime map_flash_read(Ppn ppn, SimTime ready) override;
  std::pair<Ppn, SimTime> map_flash_program(std::uint64_t map_page,
                                            SimTime ready) override;
  void map_flash_invalidate(Ppn ppn) override;
  void map_dram_access(std::uint64_t n) override;

  /// Fixed-stream slot index (tenant routing happens in the callers that
  /// hold the tenant: flash_program and gc_program).
  [[nodiscard]] static constexpr std::uint32_t slot_of(Stream stream) {
    return static_cast<std::uint32_t>(stream);
  }
  /// Slot a GC relocation of `tenant`'s page programs into: the tenant's
  /// cold slot under hot_cold_split, the shared kGc slot otherwise.
  [[nodiscard]] std::uint32_t gc_slot(std::uint16_t tenant) const;

  /// Returns the PPN to program next for (plane, slot); opens a new active
  /// block from the free list when needed.
  Ppn take_frontier(std::uint64_t plane, std::uint32_t slot);

  /// Program with bounded retry-with-reallocation: a failed (torn) program
  /// abandons the active block, charges the wasted program time, and
  /// re-programs on a fresh block — spilling to another plane if this one
  /// runs dry. Shared by host/map programs and GC migrations. `tenant`
  /// (kNoTenant for engine-owned pages) feeds the OOB stamp and the
  /// per-tenant live-page accounting.
  [[nodiscard]] Programmed program_on(std::uint64_t plane, std::uint32_t slot,
                                      nand::PageOwner owner, OpKind kind,
                                      SimTime ready, const nand::OobExtra* oob,
                                      std::uint16_t tenant = kNoTenant);

  /// Shared body of the two constructors; `adopted` distinguishes a fresh
  /// array from a crash-survivor image.
  Engine(const SsdConfig& config, nand::FlashArray image, bool adopted);

  /// Spare-capacity bookkeeping after a block retirement in `plane`; drops
  /// the device to read-only mode when the plane's usable blocks fall below
  /// the degradation floor.
  void note_retirement(std::uint64_t plane);

  /// Closes the open parity stripe: programs its parity page (kParity
  /// stream) and seals the directory entry.
  void seal_stripe(SimTime ready);

  /// Stripe bookkeeping before a block's pages are destroyed (erase or
  /// retirement): breaks affected stripes and invalidates orphaned parity
  /// pages so GC reclaims them.
  void break_stripes_in(std::uint64_t flat_block);

  /// Relocates one live page during GC/scrub, dispatching on its owner kind
  /// (map / checkpoint / parity pages are engine-owned; everything else goes
  /// through the scheme's relocator).
  void relocate_page(Ppn live, std::uint64_t plane, SimTime& clock);

  /// Picks the plane for the next allocation of `slot`: round-robin over
  /// planes with usable space. Pure striping balances *capacity* across
  /// planes — load-aware policies starve busy planes of writes and let
  /// per-plane occupancy skew until GC cannot reclaim them.
  std::uint64_t pick_plane(std::uint32_t slot);

  [[nodiscard]] bool plane_has_space(std::uint64_t plane,
                                     std::uint32_t slot) const;

  /// Runs GC on `plane` until its free-block count clears the threshold.
  [[nodiscard]] SimTime run_gc(std::uint64_t plane, SimTime ready);

  /// Static wear leveling (end-of-GC hook, in_gc_ still set): when the
  /// array-wide erase spread reaches config.capacity.wear_spread_threshold,
  /// recycle up to wear_migrate_per_pass of the plane's coldest blocks —
  /// migrate their long-lived data to the hot frontier and erase them, so
  /// they rejoin the rotation. Also refreshes the wear_spread gauge.
  [[nodiscard]] SimTime wear_level(std::uint64_t plane, SimTime clock);
  /// Least-erased recyclable block of `plane` (not active, not retired, not
  /// the in-flight GC victim, written at least once), or kNoBlock.
  [[nodiscard]] std::uint32_t pick_cold_block(std::uint64_t plane) const;
  [[nodiscard]] bool is_active_block(std::uint64_t plane,
                                     std::uint32_t block) const;

  /// Victim-index key: lexicographic (weight, not-full, block id) packed so
  /// the heap minimum reproduces the scan path's greedy choice bit-for-bit —
  /// least live weight first, fully-written blocks before partial ones at
  /// equal weight, lowest block id among remaining ties.
  [[nodiscard]] static constexpr std::uint64_t victim_key(std::uint64_t weight,
                                                          bool full,
                                                          std::uint32_t block) {
    return (weight << 33) | (std::uint64_t{full ? 0u : 1u} << 32) | block;
  }
  /// Re-indexes `block` in its plane's victim heap with its current key.
  /// No-op for blocks that cannot be victims right now (active, retired,
  /// never written) — each of those states re-pushes on exit.
  void push_victim_key(std::uint64_t plane, std::uint32_t block);

  // --- Tail-latency helpers (DESIGN.md §11) ---------------------------------

  /// Flat die index (chip-major) of a physical address.
  [[nodiscard]] std::uint64_t die_of(const nand::PhysAddr& a) const {
    return config_.geometry.chip_index(a) * config_.geometry.dies_per_chip +
           a.die;
  }
  /// Fail-slow latency multiplier for `a` at the array's current op-clock.
  /// Exactly 1.0 — and query-free, so the lazy episode schedules never
  /// materialize — with the model unconfigured.
  [[nodiscard]] double slow_of(const nand::PhysAddr& a);
  /// Deadline-aware read scheduling: applies the fail-slow multiplier, may
  /// suspend an armed background erase/program when queueing behind it would
  /// miss the ledger, records the op-kind service time, and (when `account`)
  /// books a deadline miss against the page's die. With no ledger set this
  /// degrades to a plain schedule_read.
  [[nodiscard]] SimTime sched_read(Ppn ppn, OpKind kind, SimTime ready,
                                   bool account = true);
  /// Hedged parity-reconstruct read racing a primary whose completion
  /// slipped past the ledger's hedge point; returns the winner's completion.
  [[nodiscard]] SimTime maybe_hedge(Ppn ppn, SimTime done);
  void note_deadline_miss(std::uint64_t die);
  /// Re-evaluates one die's quarantine verdict against its episode state:
  /// quarantines a sick die whose miss count reached the threshold, readmits
  /// a quarantined die whose episode ended.
  void update_quarantine(std::uint64_t die);
  /// Compacts a plane's victim heap back to one fresh entry per candidate
  /// block (stale snapshots accumulate between GC passes).
  void rebuild_victim_heap(std::uint64_t plane);

  SsdConfig config_;
  nand::FlashArray array_;
  ResourceTimeline timeline_;
  DeviceStats stats_;
  std::unique_ptr<MapDirectory> map_;
  std::vector<PlaneState> planes_;
  // Incremental victim accounting: per-page live weight (kFullPageWeight on
  // program unless the scheme pushes less) and its per-block sum.
  std::vector<std::uint16_t> page_weight_;
  std::vector<std::uint32_t> cached_weight_;
  mutable GcPerf gc_perf_;  // mutable: the const scan path counts its work
  std::uint64_t rr_plane_ = 0;
  Relocator relocator_;
  GcFlush gc_flush_;
  CkptMoved ckpt_moved_;
  VictimWeight victim_weight_;
  // Parity-stripe state (null when integrity.parity_enabled() is false, so
  // the default config allocates and touches nothing).
  std::unique_ptr<StripeTracker> stripes_;
  bool in_parity_ = false;  // a parity-page program is in flight
  std::uint64_t sealing_stripe_ = 0;  // stripe id that program stamps
  bool in_gc_ = false;
  // While the wear-leveling migration loop runs, gc_program overrides its
  // caller's plane with this target: schemes re-home relocated pages on the
  // victim's own plane, which would preserve the very per-plane population
  // skew the migration exists to drain.
  std::uint64_t wear_target_ = kNoPlane;
  bool read_only_ = false;
  std::uint64_t gc_runs_ = 0;
  std::optional<ReqClass> current_class_;
  // Multi-tenant QoS state (DESIGN.md §12). stream_slots_ is kStreamCount on
  // single-tenant builds; the per-page tenant map and per-tenant counters
  // stay empty unless config_.qos.enabled() — default runs allocate and
  // touch nothing.
  std::uint32_t stream_slots_ = static_cast<std::uint32_t>(kStreamCount);
  std::uint16_t current_tenant_ = 0;
  // Tenant whose page is being relocated right now (GC/scrub), so the
  // relocation program lands in that tenant's (cold) slot and is re-stamped
  // with the same tenant; kNoTenant outside relocation.
  std::uint16_t gc_relocating_tenant_ = kNoTenant;
  std::vector<std::uint16_t> page_tenant_;
  std::vector<std::uint64_t> tenant_live_pages_;
  std::vector<std::uint64_t> tenant_gc_debt_;
  // Tail-latency state (DESIGN.md §11): the per-request deadline ledger and
  // the per-die quarantine book. The ledger is only ever set by the facade
  // when config_.deadline.enabled(); the quarantine vectors stay empty unless
  // quarantine_misses is configured — default runs allocate and touch nothing.
  std::optional<DeadlineLedger> ledger_;
  std::vector<std::uint32_t> die_misses_;
  std::vector<std::uint8_t> die_quarantined_;
  std::uint64_t quarantined_count_ = 0;
};

}  // namespace af::ssd

// Tiny byte-stream helpers for the checkpoint journal. Fixed-width
// little-endian encoding: the blobs live inside one simulated device, so
// there is no cross-machine format concern — only determinism (identical
// state must serialize to identical bytes, which benches compare).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace af::ssd {

class ByteSink {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteSource {
 public:
  explicit ByteSource(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    AF_CHECK_MSG(pos_ < bytes_.size(), "checkpoint blob underrun");
    return bytes_[pos_++];
  }
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }
  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace af::ssd

// Resource-timeline scheduler, the timing core of the simulator.
//
// SSDsim charges every flash command against two contended resources: the
// chip executing the cell operation and the channel moving data between the
// controller and the chip. We keep a busy-until timestamp per chip and per
// channel; scheduling an operation picks the earliest legal start and
// advances both clocks. Requests arriving from a trace are replayed in
// arrival order, so this per-resource model yields the same completion times
// a full discrete-event queue would for this workload shape.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "nand/geometry.h"
#include "nand/timing.h"

namespace af::nand {
struct SuspendSlot;
}  // namespace af::nand

namespace af::ssd {

class ResourceTimeline {
 public:
  ResourceTimeline(const nand::Geometry& geometry, const nand::Timing& timing);

  /// A scheduled op's occupancy window on its chip: [start, done).
  struct Span {
    SimTime start = 0;
    SimTime done = 0;
  };

  /// Read: chip senses the page, then the channel streams it out.
  /// Returns completion time of the data transfer. `slow` (>= 1.0) scales
  /// the cell-sensing time — the fail-slow model's latency multiplier; the
  /// channel transfer is unaffected. 1.0 (the default) reproduces the
  /// pre-fail-slow arithmetic exactly.
  [[nodiscard]] SimTime schedule_read(const nand::PhysAddr& addr,
                                      SimTime ready, double slow = 1.0);

  /// Program: channel streams data in, then the chip programs the cells.
  /// Returns completion time of the program.
  [[nodiscard]] SimTime schedule_program(const nand::PhysAddr& addr,
                                         SimTime ready, double slow = 1.0);

  /// Erase occupies only the chip.
  [[nodiscard]] SimTime schedule_erase(const nand::PhysAddr& addr,
                                       SimTime ready, double slow = 1.0);

  /// Span-returning variants for callers that arm suspend slots: the window
  /// [start, done) is what a preempting read slices into.
  [[nodiscard]] Span schedule_program_span(const nand::PhysAddr& addr,
                                           SimTime ready, double slow = 1.0);
  [[nodiscard]] Span schedule_erase_span(const nand::PhysAddr& addr,
                                         SimTime ready, double slow = 1.0);

  /// Foreground read preempting the suspendable background op recorded in
  /// `slot` (which must still be in flight: ready < slot.end). The read
  /// senses at max(ready, slot.front) instead of waiting for slot.end; the
  /// victim's completion is pushed out by the sensing time plus
  /// `resume_overhead`, and the chip's busy-until follows the victim. The
  /// caller counts the suspension and enforces ceiling/nesting caps.
  struct PreemptedRead {
    SimTime done = 0;         ///< transfer completion of the foreground read
    SimTime victim_done = 0;  ///< pushed-out completion of the suspended op
  };
  [[nodiscard]] PreemptedRead schedule_preempting_read(
      const nand::PhysAddr& addr, SimTime ready, double slow,
      nand::SuspendSlot& slot, SimDuration resume_overhead);

  [[nodiscard]] SimTime chip_free_at(std::uint64_t chip_idx) const {
    return chip_busy_until_[chip_idx];
  }
  [[nodiscard]] SimTime channel_free_at(std::uint32_t channel) const {
    return channel_busy_until_[channel];
  }

  /// Earliest completion the plane's chip could offer for a program issued at
  /// `ready` — used by allocation policies that prefer idle chips.
  [[nodiscard]] SimTime chip_backlog(std::uint64_t chip_idx, SimTime now) const;

  void reset();

 private:
  nand::Geometry geom_;
  nand::Timing timing_;
  std::vector<SimTime> chip_busy_until_;
  std::vector<SimTime> channel_busy_until_;
};

}  // namespace af::ssd

// Resource-timeline scheduler, the timing core of the simulator.
//
// SSDsim charges every flash command against two contended resources: the
// chip executing the cell operation and the channel moving data between the
// controller and the chip. We keep a busy-until timestamp per chip and per
// channel; scheduling an operation picks the earliest legal start and
// advances both clocks. Requests arriving from a trace are replayed in
// arrival order, so this per-resource model yields the same completion times
// a full discrete-event queue would for this workload shape.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "nand/geometry.h"
#include "nand/timing.h"

namespace af::ssd {

class ResourceTimeline {
 public:
  ResourceTimeline(const nand::Geometry& geometry, const nand::Timing& timing);

  /// Read: chip senses the page, then the channel streams it out.
  /// Returns completion time of the data transfer.
  [[nodiscard]] SimTime schedule_read(const nand::PhysAddr& addr,
                                      SimTime ready);

  /// Program: channel streams data in, then the chip programs the cells.
  /// Returns completion time of the program.
  [[nodiscard]] SimTime schedule_program(const nand::PhysAddr& addr,
                                         SimTime ready);

  /// Erase occupies only the chip.
  [[nodiscard]] SimTime schedule_erase(const nand::PhysAddr& addr,
                                       SimTime ready);

  [[nodiscard]] SimTime chip_free_at(std::uint64_t chip_idx) const {
    return chip_busy_until_[chip_idx];
  }
  [[nodiscard]] SimTime channel_free_at(std::uint32_t channel) const {
    return channel_busy_until_[channel];
  }

  /// Earliest completion the plane's chip could offer for a program issued at
  /// `ready` — used by allocation policies that prefer idle chips.
  [[nodiscard]] SimTime chip_backlog(std::uint64_t chip_idx, SimTime now) const;

  void reset();

 private:
  nand::Geometry geom_;
  nand::Timing timing_;
  std::vector<SimTime> chip_busy_until_;
  std::vector<SimTime> channel_busy_until_;
};

}  // namespace af::ssd

// Sharded per-LPN-range lock table for the in-flight request pipeline
// (DESIGN.md §10).
//
// Each logical-page region keeps a FIFO of outstanding tickets in submission
// order. A ticket covers every region its sector extent touches and is either
// shared (reads — many may verify the same region at once) or exclusive
// (writes — nothing may observe the region until the write's oracle/shadow
// update is visible). Barrier tickets (trims, flushes) conflict with every
// region without enumerating them: a trim may cover half the device, and
// fairness demands it simply waits for everything older and blocks
// everything younger.
//
// Eligibility — not blocking — is the table's job: the pipeline asks whether
// the *oldest unserviced* request may enter the device stage, and workers
// sleep on the pipeline's own condition variable between release() calls.
// That keeps the lock-ordering story trivial: the pipeline mutex is always
// acquired before any shard mutex, and shard mutexes are never held across a
// wait (see the lock-ordering rules in DESIGN.md §10).
//
// The table also carries the happens-before edge that makes out-of-order
// read verification race-free: a writer releases its exclusive ticket
// (shard mutex release) before any overlapping reader's eligibility check
// (shard mutex acquire) can succeed, so the oracle-shadow cells the verifier
// compares are published by the mutex pair, with no atomics on the data.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/interval.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace af::ssd {

class RangeLockTable {
 public:
  /// `region_sectors`: sectors per lock region (page-aligned granularity).
  /// `shards`: power-of-two count of independently locked region maps.
  explicit RangeLockTable(std::uint64_t region_sectors,
                          std::uint32_t shards = 16)
      : region_sectors_(region_sectors), shards_(shards) {
    AF_CHECK_MSG(region_sectors_ > 0, "range lock needs a region size");
    AF_CHECK_MSG(shards_ > 0 && (shards_ & (shards_ - 1)) == 0,
                 "shard count must be a power of two");
  }

  RangeLockTable(const RangeLockTable&) = delete;
  RangeLockTable& operator=(const RangeLockTable&) = delete;

  /// One outstanding request's claim on its regions. Value-moved between the
  /// pipeline's queues; the table only reads it after acquire().
  struct Ticket {
    std::uint64_t seq = 0;
    bool exclusive = false;
    bool barrier = false;
    std::vector<std::uint64_t> regions;  // empty for barrier tickets

    [[nodiscard]] bool valid() const { return barrier || !regions.empty(); }
  };

  struct Stats {
    std::uint64_t acquisitions = 0;
    std::uint64_t barrier_acquisitions = 0;
    std::uint64_t region_entries = 0;  // region FIFO pushes
  };

  /// Enqueues a ticket for `range` behind every older ticket that touches
  /// the same regions. Must be called with strictly increasing `seq` (the
  /// pipeline's submission order) from one thread at a time.
  [[nodiscard]] Ticket acquire(std::uint64_t seq, SectorRange range,
                               bool exclusive) {
    Ticket t;
    t.seq = seq;
    t.exclusive = exclusive;
    const std::uint64_t first = range.begin / region_sectors_;
    const std::uint64_t last = (range.end - 1) / region_sectors_;
    t.regions.reserve(last - first + 1);
    for (std::uint64_t r = first; r <= last; ++r) t.regions.push_back(r);
    for (std::uint64_t r : t.regions) {
      Shard& s = shard_of(r);
      MutexLock lock(s.mu);
      s.queues[r].push_back(Entry{seq, exclusive});
    }
    {
      MutexLock lock(order_mu_);
      outstanding_.push_back(seq);
      stats_.acquisitions += 1;
      stats_.region_entries += t.regions.size();
    }
    return t;
  }

  /// Enqueues a whole-device barrier (trim/flush): eligible only once every
  /// older ticket has been released, and blocks every younger ticket until
  /// released itself.
  [[nodiscard]] Ticket acquire_barrier(std::uint64_t seq) {
    Ticket t;
    t.seq = seq;
    t.exclusive = true;
    t.barrier = true;
    MutexLock lock(order_mu_);
    outstanding_.push_back(seq);
    barriers_.push_back(seq);
    stats_.acquisitions += 1;
    stats_.barrier_acquisitions += 1;
    return t;
  }

  /// True when nothing older conflicts: a shared ticket sees no older
  /// exclusive in any of its regions, an exclusive ticket is the oldest in
  /// all of its regions, and a barrier is the oldest ticket outright. Any
  /// ticket younger than an outstanding barrier is ineligible.
  [[nodiscard]] bool eligible(const Ticket& t) const {
    {
      MutexLock lock(order_mu_);
      if (t.barrier) {
        return !outstanding_.empty() && outstanding_.front() == t.seq;
      }
      if (!barriers_.empty() && barriers_.front() < t.seq) return false;
    }
    for (std::uint64_t r : t.regions) {
      const Shard& s = shard_of(r);
      MutexLock lock(s.mu);
      const auto it = s.queues.find(r);
      AF_CHECK_MSG(it != s.queues.end(), "eligible() on a released ticket");
      for (const Entry& e : it->second) {
        if (e.seq >= t.seq) break;  // FIFO: the rest is younger
        if (e.exclusive || t.exclusive) return false;
      }
    }
    return true;
  }

  /// Removes the ticket from its region FIFOs. Safe from any thread; the
  /// caller notifies the pipeline's condition variable afterwards so waiting
  /// workers re-check eligibility.
  void release(const Ticket& t) {
    for (std::uint64_t r : t.regions) {
      Shard& s = shard_of(r);
      MutexLock lock(s.mu);
      const auto it = s.queues.find(r);
      AF_CHECK_MSG(it != s.queues.end(), "release() of an unknown region");
      auto& q = it->second;
      bool erased = false;
      for (auto e = q.begin(); e != q.end(); ++e) {
        if (e->seq == t.seq) {
          q.erase(e);
          erased = true;
          break;
        }
      }
      AF_CHECK_MSG(erased, "release() of a ticket not in its region FIFO");
      if (q.empty()) s.queues.erase(it);
    }
    MutexLock lock(order_mu_);
    bool erased = false;
    for (auto it = outstanding_.begin(); it != outstanding_.end(); ++it) {
      if (*it == t.seq) {
        outstanding_.erase(it);
        erased = true;
        break;
      }
    }
    AF_CHECK_MSG(erased, "release() of an unknown ticket");
    if (t.barrier) {
      AF_CHECK(!barriers_.empty() && barriers_.front() == t.seq);
      barriers_.pop_front();
    }
  }

  [[nodiscard]] Stats stats() const {
    MutexLock lock(order_mu_);
    return stats_;
  }
  [[nodiscard]] std::uint64_t region_sectors() const {
    return region_sectors_;
  }
  [[nodiscard]] std::uint32_t shards() const { return shards_; }

 private:
  struct Entry {
    std::uint64_t seq = 0;
    bool exclusive = false;
  };
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::uint64_t, std::deque<Entry>> queues
        AF_GUARDED_BY(mu);
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t region) {
    return shards_store_[region & (shards_ - 1)];
  }
  [[nodiscard]] const Shard& shard_of(std::uint64_t region) const {
    return shards_store_[region & (shards_ - 1)];
  }

  const std::uint64_t region_sectors_;
  const std::uint32_t shards_;
  // af_lint: allow(pipeline-guarded-state) — the vector itself is immutable
  // after construction (sized once, never resized); all mutable state lives
  // inside each Shard under its own mutex.
  std::vector<Shard> shards_store_{shards_};
  // Submission-ordered seqs of outstanding tickets plus the barrier subset;
  // both deques stay sorted because acquire() is called in seq order.
  mutable Mutex order_mu_;
  std::deque<std::uint64_t> outstanding_ AF_GUARDED_BY(order_mu_);
  std::deque<std::uint64_t> barriers_ AF_GUARDED_BY(order_mu_);
  Stats stats_ AF_GUARDED_BY(order_mu_);
};

}  // namespace af::ssd

#include "ssd/timeline.h"

#include <algorithm>

namespace af::ssd {

ResourceTimeline::ResourceTimeline(const nand::Geometry& geometry,
                                   const nand::Timing& timing)
    : geom_(geometry), timing_(timing) {
  chip_busy_until_.assign(geom_.total_chips(), 0);
  channel_busy_until_.assign(geom_.channels, 0);
}

SimTime ResourceTimeline::schedule_read(const nand::PhysAddr& addr,
                                        SimTime ready) {
  SimTime& chip = chip_busy_until_[addr.channel * geom_.chips_per_channel +
                                   addr.chip];
  SimTime& chan = channel_busy_until_[addr.channel];

  const SimTime sense_start = std::max(ready, chip);
  const SimTime sense_end = sense_start + timing_.read_ns;
  const SimTime xfer_start = std::max(sense_end, chan);
  const SimTime done = xfer_start + timing_.transfer_ns_per_page;
  // The chip's page register holds the data until the transfer drains it.
  chip = done;
  chan = done;
  return done;
}

SimTime ResourceTimeline::schedule_program(const nand::PhysAddr& addr,
                                           SimTime ready) {
  SimTime& chip = chip_busy_until_[addr.channel * geom_.chips_per_channel +
                                   addr.chip];
  SimTime& chan = channel_busy_until_[addr.channel];

  const SimTime xfer_start = std::max({ready, chip, chan});
  const SimTime xfer_end = xfer_start + timing_.transfer_ns_per_page;
  const SimTime done = xfer_end + timing_.program_ns;
  chan = xfer_end;  // channel freed once data is latched in the chip
  chip = done;
  return done;
}

SimTime ResourceTimeline::schedule_erase(const nand::PhysAddr& addr,
                                         SimTime ready) {
  SimTime& chip = chip_busy_until_[addr.channel * geom_.chips_per_channel +
                                   addr.chip];
  const SimTime start = std::max(ready, chip);
  const SimTime done = start + timing_.erase_ns;
  chip = done;
  return done;
}

SimTime ResourceTimeline::chip_backlog(std::uint64_t chip_idx,
                                       SimTime now) const {
  const SimTime busy = chip_busy_until_[chip_idx];
  return busy > now ? busy - now : 0;
}

void ResourceTimeline::reset() {
  std::fill(chip_busy_until_.begin(), chip_busy_until_.end(), SimTime{0});
  std::fill(channel_busy_until_.begin(), channel_busy_until_.end(), SimTime{0});
}

}  // namespace af::ssd

#include "ssd/timeline.h"

#include <algorithm>

#include "nand/flash_array.h"

namespace af::ssd {

namespace {
/// Cell-time scaling for the fail-slow model. `slow <= 1.0` returns the
/// duration untouched (not a float round-trip), so default-config runs are
/// bit-identical to the pre-fail-slow arithmetic.
SimDuration scaled(SimDuration ns, double slow) {
  if (slow <= 1.0) return ns;
  return static_cast<SimDuration>(static_cast<double>(ns) * slow);
}
}  // namespace

ResourceTimeline::ResourceTimeline(const nand::Geometry& geometry,
                                   const nand::Timing& timing)
    : geom_(geometry), timing_(timing) {
  chip_busy_until_.assign(geom_.total_chips(), 0);
  channel_busy_until_.assign(geom_.channels, 0);
}

SimTime ResourceTimeline::schedule_read(const nand::PhysAddr& addr,
                                        SimTime ready, double slow) {
  SimTime& chip = chip_busy_until_[addr.channel * geom_.chips_per_channel +
                                   addr.chip];
  SimTime& chan = channel_busy_until_[addr.channel];

  const SimTime sense_start = std::max(ready, chip);
  const SimTime sense_end = sense_start + scaled(timing_.read_ns, slow);
  const SimTime xfer_start = std::max(sense_end, chan);
  const SimTime done = xfer_start + timing_.transfer_ns_per_page;
  // The chip's page register holds the data until the transfer drains it.
  chip = done;
  chan = done;
  return done;
}

SimTime ResourceTimeline::schedule_program(const nand::PhysAddr& addr,
                                           SimTime ready, double slow) {
  return schedule_program_span(addr, ready, slow).done;
}

ResourceTimeline::Span ResourceTimeline::schedule_program_span(
    const nand::PhysAddr& addr, SimTime ready, double slow) {
  SimTime& chip = chip_busy_until_[addr.channel * geom_.chips_per_channel +
                                   addr.chip];
  SimTime& chan = channel_busy_until_[addr.channel];

  const SimTime xfer_start = std::max({ready, chip, chan});
  const SimTime xfer_end = xfer_start + timing_.transfer_ns_per_page;
  const SimTime done = xfer_end + scaled(timing_.program_ns, slow);
  chan = xfer_end;  // channel freed once data is latched in the chip
  chip = done;
  // The suspendable window is the cell-programming phase only: preempting
  // the bus transfer buys nothing (it is short and holds the channel).
  return Span{xfer_end, done};
}

SimTime ResourceTimeline::schedule_erase(const nand::PhysAddr& addr,
                                         SimTime ready, double slow) {
  return schedule_erase_span(addr, ready, slow).done;
}

ResourceTimeline::Span ResourceTimeline::schedule_erase_span(
    const nand::PhysAddr& addr, SimTime ready, double slow) {
  SimTime& chip = chip_busy_until_[addr.channel * geom_.chips_per_channel +
                                   addr.chip];
  const SimTime start = std::max(ready, chip);
  const SimTime done = start + scaled(timing_.erase_ns, slow);
  chip = done;
  return Span{start, done};
}

ResourceTimeline::PreemptedRead ResourceTimeline::schedule_preempting_read(
    const nand::PhysAddr& addr, SimTime ready, double slow,
    nand::SuspendSlot& slot, SimDuration resume_overhead) {
  SimTime& chip = chip_busy_until_[addr.channel * geom_.chips_per_channel +
                                   addr.chip];
  SimTime& chan = channel_busy_until_[addr.channel];

  // The chip pauses the background op: the read senses as soon as both the
  // request and the suspension front allow, not at slot.end. Preempting
  // reads serialize against each other through slot.front.
  const SimTime sense_start = std::max(ready, slot.front);
  const SimDuration cell = scaled(timing_.read_ns, slow);
  const SimTime sense_end = sense_start + cell;
  const SimTime xfer_start = std::max(sense_end, chan);
  const SimTime done = xfer_start + timing_.transfer_ns_per_page;
  chan = done;

  // The victim op loses the chip for the sensing window and pays the resume
  // re-ramp on top; its completion — and the chip's busy-until, which
  // ordinary (non-preempting) ops queue behind — moves out by that much.
  slot.front = sense_end;
  slot.end += cell + resume_overhead;
  chip = std::max(chip, slot.end);
  return PreemptedRead{done, slot.end};
}

SimTime ResourceTimeline::chip_backlog(std::uint64_t chip_idx,
                                       SimTime now) const {
  const SimTime busy = chip_busy_until_[chip_idx];
  return busy > now ? busy - now : 0;
}

void ResourceTimeline::reset() {
  std::fill(chip_busy_until_.begin(), chip_busy_until_.end(), SimTime{0});
  std::fill(channel_busy_until_.begin(), channel_busy_until_.end(), SimTime{0});
}

}  // namespace af::ssd

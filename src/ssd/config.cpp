#include "ssd/config.h"

#include "common/check.h"

namespace af::ssd {

SsdConfig SsdConfig::paper(std::uint32_t page_kb, std::uint32_t blocks_per_plane) {
  AF_CHECK(page_kb == 4 || page_kb == 8 || page_kb == 16);
  SsdConfig cfg;
  cfg.geometry.channels = 4;
  cfg.geometry.chips_per_channel = 2;
  cfg.geometry.dies_per_chip = 2;
  cfg.geometry.planes_per_die = 2;
  cfg.geometry.blocks_per_plane = blocks_per_plane;
  cfg.geometry.pages_per_block = 64;  // Table 1
  cfg.geometry.page_bytes = page_kb * 1024;
  cfg.timing = nand::Timing::preset(nand::CellType::kTlc, cfg.geometry.page_bytes);
  cfg.gc_threshold = 0.10;  // Table 1
  // DRAM mapping-cache budget: one baseline-table's worth of entries. The
  // hot footprint of FTL's table (and Across-FTL's ~1.5x-denser one) fits;
  // MRSM's ~4x sub-page table does not (§4.2.4: only 42.1% of MRSM entries
  // stay cached), which is where its map-traffic penalty comes from.
  cfg.map_cache_bytes = cfg.logical_pages() * 28 / 10;
  return cfg;
}

SsdConfig SsdConfig::tiny() {
  SsdConfig cfg;
  cfg.geometry.channels = 2;
  cfg.geometry.chips_per_channel = 1;
  cfg.geometry.dies_per_chip = 1;
  cfg.geometry.planes_per_die = 2;
  cfg.geometry.blocks_per_plane = 32;
  cfg.geometry.pages_per_block = 8;
  cfg.geometry.page_bytes = 8192;
  cfg.timing = nand::Timing::preset(nand::CellType::kTlc, cfg.geometry.page_bytes);
  cfg.gc_threshold = 0.15;
  cfg.gc_reserve_blocks = 2;
  cfg.exported_fraction = 0.75;
  cfg.map_cache_bytes = 16 * cfg.geometry.page_bytes;
  cfg.track_payload = true;
  return cfg;
}

}  // namespace af::ssd

// NAND operation latencies.
//
// The paper's Table 1 gives read = 0.075 ms and program = 2 ms for TLC cells
// and a 0.001 ms DRAM/cache access; erase time is not listed, so we use the
// 15 ms figure common to SSDsim TLC configurations. Channel transfer time is
// derived from an ONFI-style bus rate.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace af::nand {

enum class CellType { kSlc, kMlc, kTlc };

struct Timing {
  SimDuration read_ns = 75'000;         // cell sensing
  SimDuration program_ns = 2'000'000;   // cell programming
  SimDuration erase_ns = 15'000'000;    // block erase
  /// Channel occupancy for moving one page between controller and chip.
  SimDuration transfer_ns_per_page = 20'000;  // 8 KiB over ~400 MB/s
  SimDuration dram_access_ns = 1'000;   // Table 1 "cache access" 0.001 ms
  /// Overhead added to a suspended program/erase each time it resumes
  /// (ONFI erase/program-suspend re-ramp cost). Only charged when the
  /// deadline subsystem actually preempts an op, so the default pipeline is
  /// unaffected by the value.
  SimDuration suspend_resume_ns = 50'000;

  /// Presets matching common SSDsim cell configurations. `page_bytes` scales
  /// the bus transfer window.
  static Timing preset(CellType cell, std::uint32_t page_bytes);
};

}  // namespace af::nand

#include "nand/faults.h"

namespace af::nand {

FaultModel::FaultModel(const FaultConfig& config)
    : cfg_(config), rng_(config.seed) {}

double FaultModel::wear_ramped(double base, std::uint64_t erase_count) const {
  double p = base;
  if (cfg_.wear_slope > 0.0 && erase_count > cfg_.wear_onset) {
    p += cfg_.wear_slope * static_cast<double>(erase_count - cfg_.wear_onset);
  }
  return p < 1.0 ? p : 1.0;
}

bool FaultModel::draw(double p) {
  // Zero-probability classes never touch the RNG: a disabled fault class
  // cannot perturb the schedule of an enabled one, and an all-zero config
  // makes the model completely inert.
  if (p <= 0.0) return false;
  return rng_.chance(p);
}

bool FaultModel::program_fails(std::uint64_t erase_count) {
  return draw(wear_ramped(cfg_.program_fail, erase_count));
}

bool FaultModel::erase_fails(std::uint64_t erase_count) {
  return draw(wear_ramped(cfg_.erase_fail, erase_count));
}

std::uint32_t FaultModel::read_retries() {
  if (cfg_.read_fail <= 0.0) return 0;
  std::uint32_t n = 0;
  while (n < cfg_.max_read_retries && rng_.chance(cfg_.read_fail)) ++n;
  return n;
}

}  // namespace af::nand

#include "nand/faults.h"

#include <cmath>

namespace af::nand {

FaultModel::FaultModel(const FaultConfig& config)
    : cfg_(config),
      rng_(config.seed),
      // Fixed-constant derivation, not a second config knob: one seed keeps
      // the "same seed, same outcome" contract a single value.
      ber_rng_(config.seed ^ 0xB17E770Au) {}

double FaultModel::wear_ramped(double base, std::uint64_t erase_count) const {
  double p = base;
  if (cfg_.wear_slope > 0.0 && erase_count > cfg_.wear_onset) {
    p += cfg_.wear_slope * static_cast<double>(erase_count - cfg_.wear_onset);
  }
  return p < 1.0 ? p : 1.0;
}

bool FaultModel::draw(double p) {
  // Zero-probability classes never touch the RNG: a disabled fault class
  // cannot perturb the schedule of an enabled one, and an all-zero config
  // makes the model completely inert.
  if (p <= 0.0) return false;
  return rng_.chance(p);
}

bool FaultModel::program_fails(std::uint64_t erase_count) {
  return draw(wear_ramped(cfg_.program_fail, erase_count));
}

bool FaultModel::erase_fails(std::uint64_t erase_count) {
  return draw(wear_ramped(cfg_.erase_fail, erase_count));
}

std::uint32_t FaultModel::read_retries() {
  if (cfg_.read_fail <= 0.0) return 0;
  std::uint32_t n = 0;
  while (n < cfg_.max_read_retries && rng_.chance(cfg_.read_fail)) ++n;
  return n;
}

double FaultModel::page_ber(std::uint64_t retention_ops,
                            std::uint64_t block_reads,
                            std::uint64_t erase_count) const {
  double lambda = cfg_.ber_base;
  lambda += cfg_.ber_retention * (static_cast<double>(retention_ops) / 1000.0);
  lambda += cfg_.ber_read_disturb * (static_cast<double>(block_reads) / 100.0);
  if (cfg_.ber_wear > 0.0 && erase_count > cfg_.wear_onset) {
    lambda += cfg_.ber_wear * static_cast<double>(erase_count - cfg_.wear_onset);
  }
  return lambda;
}

std::uint32_t FaultModel::raw_bit_errors(double lambda) {
  // Same inertness rule as draw(): a zero-intensity sensing consumes no RNG
  // state, so pages with no error exposure cannot shift later draws.
  if (lambda <= 0.0) return 0;
  // Poisson by CDF inversion — one uniform per sensing keeps the stream's
  // consumption independent of lambda, which is what makes seeded runs with
  // different scrub/parity policies comparable draw-for-draw.
  const double u = ber_rng_.uniform();
  double p = std::exp(-lambda);
  // A lambda big enough to underflow exp(-lambda) saturates every sensing.
  if (p <= 0.0) return cfg_.ber_cap;
  double cdf = p;
  std::uint32_t k = 0;
  while (u > cdf && k < cfg_.ber_cap) {
    ++k;
    p *= lambda / static_cast<double>(k);
    cdf += p;
  }
  return k;
}

}  // namespace af::nand

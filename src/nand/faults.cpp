#include "nand/faults.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace af::nand {

FaultModel::FaultModel(const FaultConfig& config)
    : cfg_(config),
      rng_(config.seed),
      // Fixed-constant derivation, not a second config knob: one seed keeps
      // the "same seed, same outcome" contract a single value.
      ber_rng_(config.seed ^ 0xB17E770Au) {}

double FaultModel::wear_ramped(double base, std::uint64_t erase_count) const {
  double p = base;
  if (cfg_.wear_slope > 0.0 && erase_count > cfg_.wear_onset) {
    p += cfg_.wear_slope * static_cast<double>(erase_count - cfg_.wear_onset);
  }
  return p < 1.0 ? p : 1.0;
}

bool FaultModel::draw(double p) {
  // Zero-probability classes never touch the RNG: a disabled fault class
  // cannot perturb the schedule of an enabled one, and an all-zero config
  // makes the model completely inert.
  if (p <= 0.0) return false;
  return rng_.chance(p);
}

bool FaultModel::program_fails(std::uint64_t erase_count) {
  return draw(wear_ramped(cfg_.program_fail, erase_count));
}

bool FaultModel::erase_fails(std::uint64_t erase_count) {
  return draw(wear_ramped(cfg_.erase_fail, erase_count));
}

std::uint32_t FaultModel::read_retries() {
  if (cfg_.read_fail <= 0.0) return 0;
  std::uint32_t n = 0;
  while (n < cfg_.max_read_retries && rng_.chance(cfg_.read_fail)) ++n;
  return n;
}

double FaultModel::page_ber(std::uint64_t retention_ops,
                            std::uint64_t block_reads,
                            std::uint64_t erase_count) const {
  double lambda = cfg_.ber_base;
  lambda += cfg_.ber_retention * (static_cast<double>(retention_ops) / 1000.0);
  lambda += cfg_.ber_read_disturb * (static_cast<double>(block_reads) / 100.0);
  if (cfg_.ber_wear > 0.0 && erase_count > cfg_.wear_onset) {
    lambda += cfg_.ber_wear * static_cast<double>(erase_count - cfg_.wear_onset);
  }
  return lambda;
}

std::uint32_t FaultModel::raw_bit_errors(double lambda) {
  // Same inertness rule as draw(): a zero-intensity sensing consumes no RNG
  // state, so pages with no error exposure cannot shift later draws.
  if (lambda <= 0.0) return 0;
  // Poisson by CDF inversion — one uniform per sensing keeps the stream's
  // consumption independent of lambda, which is what makes seeded runs with
  // different scrub/parity policies comparable draw-for-draw.
  const double u = ber_rng_.uniform();
  double p = std::exp(-lambda);
  // A lambda big enough to underflow exp(-lambda) saturates every sensing.
  if (p <= 0.0) return cfg_.ber_cap;
  double cdf = p;
  std::uint32_t k = 0;
  while (u > cdf && k < cfg_.ber_cap) {
    ++k;
    p *= lambda / static_cast<double>(k);
    cdf += p;
  }
  return k;
}

void FaultModel::init_slow(std::uint64_t total_dies) {
  if (!cfg_.slow_enabled() || total_dies == 0) return;
  slow_.assign(static_cast<std::size_t>(total_dies), DieSlowState{});
  // The afflicted set is a contiguous window of `slow_dies` dies at a seeded
  // rotation of the die index space: exact count, deterministic in the seed,
  // and independent of query order.
  std::uint64_t h = cfg_.seed ^ 0x51C4D1E5u;
  slow_rotation_ = splitmix64(h) % total_dies;
}

bool FaultModel::slow_die(std::uint64_t die) const {
  if (slow_.empty()) return false;
  const std::uint64_t total = slow_.size();
  const std::uint64_t pos = (die + total - slow_rotation_ % total) % total;
  return pos < std::min<std::uint64_t>(cfg_.slow_dies, total);
}

void FaultModel::advance_slow(DieSlowState& die, std::uint64_t die_index,
                              std::uint64_t clock) {
  if (!die.init) {
    // Die-keyed stream: two models with the same config agree on every die's
    // schedule no matter which dies are queried first, and the op/BER
    // streams are never touched.
    std::uint64_t h = cfg_.seed ^ 0xFA11510Bu ^ die_index;
    die.rng = Rng(splitmix64(h));
    die.sick = false;
    die.next_edge = 0;
    die.init = true;
  }
  while (clock >= die.next_edge) {
    die.sick = !die.sick && cfg_.slow_episodes_enabled();
    const std::uint64_t mean =
        die.sick ? cfg_.slow_episode_ops
                 : std::max<std::uint64_t>(1, cfg_.slow_gap_ops);
    // Exponential interval lengths, minimum one op so the schedule advances.
    const double u = std::max(1e-12, die.rng.uniform());
    const auto len = static_cast<std::uint64_t>(
        std::max(1.0, -std::log(u) * static_cast<double>(mean)));
    die.next_edge += len;
  }
}

bool FaultModel::die_sick(std::uint64_t die, std::uint64_t clock) {
  if (!cfg_.slow_episodes_enabled() || !slow_die(die)) return false;
  AF_CHECK(die < slow_.size());
  DieSlowState& state = slow_[static_cast<std::size_t>(die)];
  advance_slow(state, die, clock);
  return state.sick;
}

double FaultModel::slow_factor(std::uint64_t die, std::uint64_t clock) {
  if (slow_.empty() || !slow_die(die)) return 1.0;
  double factor = die_sick(die, clock) ? cfg_.slow_multiplier : 1.0;
  if (cfg_.slow_ramp_enabled() && clock > cfg_.slow_onset_ops) {
    const double ramp =
        1.0 + cfg_.slow_ramp_per_1k *
                  (static_cast<double>(clock - cfg_.slow_onset_ops) / 1000.0);
    factor *= std::min(ramp, cfg_.slow_ramp_cap);
  }
  return factor;
}

}  // namespace af::nand

#include "nand/timing.h"

namespace af::nand {

Timing Timing::preset(CellType cell, std::uint32_t page_bytes) {
  Timing t;
  switch (cell) {
    case CellType::kSlc:
      t.read_ns = 25'000;
      t.program_ns = 300'000;
      t.erase_ns = 2'000'000;
      break;
    case CellType::kMlc:
      t.read_ns = 50'000;
      t.program_ns = 900'000;
      t.erase_ns = 5'000'000;
      break;
    case CellType::kTlc:
      // Table 1 of the paper.
      t.read_ns = 75'000;
      t.program_ns = 2'000'000;
      t.erase_ns = 15'000'000;
      break;
  }
  // ~400 MB/s ONFI bus: ns per page = bytes / 0.4 bytes-per-ns.
  t.transfer_ns_per_page = static_cast<SimDuration>(page_bytes) * 10 / 4;
  return t;
}

}  // namespace af::nand

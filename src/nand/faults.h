// Deterministic NAND fault injection.
//
// Real flash fails: programs tear pages, erases brick blocks, reads need
// retry as cells age. The FaultModel decides — reproducibly, from a seed —
// whether each physical operation succeeds, so the recovery machinery above
// it (retry-with-reallocation, bad-block retirement, read-retry, read-only
// degradation) can be exercised and measured. With all rates at zero the
// model never draws from its RNG and the simulator is bit-for-bit identical
// to a fault-free build.
//
// This layer is policy-free: it only answers "does this op fail?". The
// FlashArray applies the state consequences (torn page, retired block); the
// engine owns recovery and timing.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace af::nand {

/// Per-operation fault probabilities plus an optional wear-dependent ramp.
/// All rates default to zero (faults disabled).
struct FaultConfig {
  /// Probability a page program fails, leaving a torn (unreadable) page.
  double program_fail = 0.0;
  /// Probability a block erase fails; a failed erase retires the block.
  double erase_fail = 0.0;
  /// Probability a single read attempt needs a retry (transient; bounded
  /// retries always recover the data — unrecoverable reads would be data
  /// loss, which the recovery layer is designed to prevent, not model).
  double read_fail = 0.0;

  /// Wear ramp: once a block's erase count exceeds `wear_onset`, program and
  /// erase fault probabilities grow by `wear_slope` per additional erase
  /// (clamped to 1.0). Models grown bad blocks on aged devices.
  double wear_slope = 0.0;
  std::uint64_t wear_onset = 0;

  /// Cap on read retries drawn for one page read.
  std::uint32_t max_read_retries = 4;
  /// Cap on program-with-reallocation attempts for one logical program.
  std::uint32_t max_program_retries = 8;

  std::uint64_t seed = 0x5EEDFA17u;

  [[nodiscard]] bool enabled() const {
    return program_fail > 0.0 || erase_fail > 0.0 || read_fail > 0.0 ||
           wear_slope > 0.0;
  }
};

/// Seeded fault schedule. Two models built from the same config answer an
/// identical query sequence identically (the determinism contract benches
/// and tests rely on). Draws happen only when the effective probability is
/// nonzero, so disabled fault classes cost nothing and perturb nothing.
class FaultModel {
 public:
  explicit FaultModel(const FaultConfig& config);

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] bool enabled() const { return cfg_.enabled(); }

  /// Does programming a page of a block with this erase count fail?
  [[nodiscard]] bool program_fails(std::uint64_t erase_count);

  /// Does erasing a block with this erase count fail (retiring it)?
  [[nodiscard]] bool erase_fails(std::uint64_t erase_count);

  /// Number of extra read attempts (0 = clean first read). Each attempt
  /// fails independently with `read_fail`; capped at `max_read_retries`,
  /// after which the read is deemed recovered.
  std::uint32_t read_retries();

  /// Effective probability after the wear ramp, clamped to [0, 1]. Exposed
  /// for tests and for benches that want to report the ramp they configured.
  [[nodiscard]] double wear_ramped(double base, std::uint64_t erase_count) const;

 private:
  [[nodiscard]] bool draw(double p);

  FaultConfig cfg_;
  Rng rng_;
};

}  // namespace af::nand

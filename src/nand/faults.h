// Deterministic NAND fault injection.
//
// Real flash fails: programs tear pages, erases brick blocks, reads need
// retry as cells age. The FaultModel decides — reproducibly, from a seed —
// whether each physical operation succeeds, so the recovery machinery above
// it (retry-with-reallocation, bad-block retirement, read-retry, read-only
// degradation) can be exercised and measured. With all rates at zero the
// model never draws from its RNG and the simulator is bit-for-bit identical
// to a fault-free build.
//
// Two independent failure families live here:
//  - transient op failures (program/erase/read_fail + wear ramp), drawn from
//    the primary RNG stream — bounded retries always recover these;
//  - latent raw bit errors (ber_* rates), drawn from a second, independent
//    RNG stream so enabling one family never perturbs the other's schedule.
//    Bit errors grow with retention (op-count clock since program),
//    read disturb (block reads since erase) and wear (block erase count);
//    whether they are correctable is the ECC layer's decision (ssd::Engine),
//    not this one's — past the ECC ladder a read is *uncorrectable* and the
//    data is gone unless parity can rebuild it.
//
// This layer is policy-free: it only answers "does this op fail?" and "how
// many raw bit errors does this sensing see?". The FlashArray applies the
// state consequences (torn page, retired block, per-page error history); the
// engine owns recovery and timing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace af::nand {

/// Per-operation fault probabilities plus an optional wear-dependent ramp.
/// All rates default to zero (faults disabled).
struct FaultConfig {
  /// Probability a page program fails, leaving a torn (unreadable) page.
  double program_fail = 0.0;
  /// Probability a block erase fails; a failed erase retires the block.
  double erase_fail = 0.0;
  /// Probability a single read attempt needs a retry (transient; bounded
  /// retries always recover the data). Persistent cell damage is the bit
  /// error model's job (`ber_*` below), which *can* lose data once the ECC
  /// ladder above it is exhausted.
  double read_fail = 0.0;

  /// Wear ramp: once a block's erase count exceeds `wear_onset`, program and
  /// erase fault probabilities grow by `wear_slope` per additional erase
  /// (clamped to 1.0). Models grown bad blocks on aged devices.
  double wear_slope = 0.0;
  std::uint64_t wear_onset = 0;

  /// Cap on read retries drawn for one page read.
  std::uint32_t max_read_retries = 4;
  /// Cap on program-with-reallocation attempts for one logical program.
  std::uint32_t max_program_retries = 8;

  // --- Latent bit-error model (data-integrity subsystem, DESIGN.md §8) ----
  // Expected raw bit errors per sensing of a page, as a Poisson intensity
  // composed from the page's history. All-zero (the default) keeps the model
  // inert: no per-page draws, counters bit-identical to a BER-free build.

  /// Baseline expected raw bit errors of a fresh, unread, unworn page.
  double ber_base = 0.0;
  /// Added expected bit errors per 1000 physical ops of retention — the
  /// op-count clock since the page was programmed (the simulator's proxy
  /// for elapsed time).
  double ber_retention = 0.0;
  /// Added expected bit errors per 100 reads of the page's block since its
  /// last erase (read disturb).
  double ber_read_disturb = 0.0;
  /// Added expected bit errors per block erase beyond `wear_onset` (wear
  /// shares the transient ramp's onset so "aged" means one thing).
  double ber_wear = 0.0;
  /// Cap on raw bit errors drawn for a single sensing attempt.
  std::uint32_t ber_cap = 64;

  // --- Fail-slow model (tail-latency subsystem, DESIGN.md §11) -------------
  // Dies that are not broken, merely slow: transient "sick die" episodes
  // multiply cell-op latencies for a bounded op-count window, and an optional
  // permanent ramp models progressive fail-slow degradation. The schedule is
  // drawn from a third, independent RNG stream keyed per die, so zero-config
  // runs stay bit-identical and enabling fail-slow never perturbs the op- or
  // bit-error-fault schedules.

  /// Latency multiplier applied to cell time (sense/program/erase, not the
  /// channel transfer) while a die is inside a sick episode. Values > 1.0
  /// together with `slow_episode_ops` > 0 arm the transient model.
  double slow_multiplier = 1.0;
  /// Mean sick-episode length, in flash ops of the global op clock.
  std::uint64_t slow_episode_ops = 0;
  /// Mean healthy gap between episodes of one afflicted die, in flash ops.
  std::uint64_t slow_gap_ops = 0;
  /// Number of afflicted dies (chosen deterministically from the seed).
  std::uint32_t slow_dies = 1;
  /// Permanent fail-slow ramp: multiplier grows by `slow_ramp_per_1k` per
  /// 1000 ops past `slow_onset_ops`, on afflicted dies only, clamped to
  /// `slow_ramp_cap`. Zero keeps the ramp off.
  double slow_ramp_per_1k = 0.0;
  std::uint64_t slow_onset_ops = 0;
  double slow_ramp_cap = 8.0;

  std::uint64_t seed = 0x5EEDFA17u;

  [[nodiscard]] bool ber_enabled() const {
    return ber_base > 0.0 || ber_retention > 0.0 || ber_read_disturb > 0.0 ||
           ber_wear > 0.0;
  }

  [[nodiscard]] bool slow_episodes_enabled() const {
    return slow_multiplier > 1.0 && slow_episode_ops > 0 && slow_dies > 0;
  }

  [[nodiscard]] bool slow_ramp_enabled() const {
    return slow_ramp_per_1k > 0.0 && slow_dies > 0;
  }

  [[nodiscard]] bool slow_enabled() const {
    return slow_episodes_enabled() || slow_ramp_enabled();
  }

  [[nodiscard]] bool enabled() const {
    return program_fail > 0.0 || erase_fail > 0.0 || read_fail > 0.0 ||
           wear_slope > 0.0 || ber_enabled() || slow_enabled();
  }
};

/// Seeded fault schedule. Two models built from the same config answer an
/// identical query sequence identically (the determinism contract benches
/// and tests rely on). Draws happen only when the effective probability is
/// nonzero, so disabled fault classes cost nothing and perturb nothing.
class FaultModel {
 public:
  explicit FaultModel(const FaultConfig& config);

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] bool enabled() const { return cfg_.enabled(); }

  /// Does programming a page of a block with this erase count fail?
  [[nodiscard]] bool program_fails(std::uint64_t erase_count);

  /// Does erasing a block with this erase count fail (retiring it)?
  [[nodiscard]] bool erase_fails(std::uint64_t erase_count);

  /// Number of extra read attempts (0 = clean first read). Each attempt
  /// fails independently with `read_fail`; capped at `max_read_retries`,
  /// after which the read is deemed recovered.
  std::uint32_t read_retries();

  /// Effective probability after the wear ramp, clamped to [0, 1]. Exposed
  /// for tests and for benches that want to report the ramp they configured.
  [[nodiscard]] double wear_ramped(double base, std::uint64_t erase_count) const;

  // --- Latent bit errors ----------------------------------------------------

  /// Expected raw bit errors (Poisson intensity) for one sensing of a page
  /// with this history. Pure — no RNG state is consumed.
  [[nodiscard]] double page_ber(std::uint64_t retention_ops,
                                std::uint64_t block_reads,
                                std::uint64_t erase_count) const;

  /// Draws the raw bit-error count of one sensing at intensity `lambda`
  /// (Poisson by inversion, capped at `ber_cap`). Zero intensity draws
  /// nothing, so a BER-free run never touches this stream either.
  [[nodiscard]] std::uint32_t raw_bit_errors(double lambda);

  // --- Fail-slow ------------------------------------------------------------

  /// Lays out the per-die episode schedules. Called once by the FlashArray
  /// when the slow model is armed; a no-op (and never called) otherwise.
  void init_slow(std::uint64_t total_dies);

  /// Is this die one of the `slow_dies` afflicted dies? Pure in (config,
  /// die) — the afflicted set is a seeded rotation of the die index space.
  [[nodiscard]] bool slow_die(std::uint64_t die) const;

  /// Is the die inside a sick episode at this op-clock instant? Queries must
  /// be per-die monotonic in `clock` (the global op clock is), because the
  /// episode schedule advances lazily. Pure in (config, die, clock).
  [[nodiscard]] bool die_sick(std::uint64_t die, std::uint64_t clock);

  /// Latency multiplier (>= 1.0) for a cell op on `die` at `clock`:
  /// episode multiplier times the permanent ramp. 1.0 when the model is off
  /// or the die is healthy; consumes no RNG from the op/BER streams.
  [[nodiscard]] double slow_factor(std::uint64_t die, std::uint64_t clock);

 private:
  [[nodiscard]] bool draw(double p);

  /// Alternating healthy-gap / sick-episode schedule of one afflicted die,
  /// generated lazily along the op-clock axis from a die-keyed stream.
  struct DieSlowState {
    Rng rng{0};
    std::uint64_t next_edge = 0;  // clock at which `sick` flips
    bool sick = false;
    bool init = false;
  };

  void advance_slow(DieSlowState& die, std::uint64_t die_index,
                    std::uint64_t clock);

  FaultConfig cfg_;
  Rng rng_;
  /// Dedicated stream for bit-error draws: the op-failure schedule above is
  /// bit-identical whether or not the BER model is on, and vice versa.
  Rng ber_rng_;
  /// Per-die fail-slow schedules; empty unless init_slow() armed the model.
  std::vector<DieSlowState> slow_;
  std::uint64_t slow_rotation_ = 0;  // seeded offset of the afflicted window
};

}  // namespace af::nand

// Deterministic sudden-power-off injection.
//
// A PowerCutPlan names the exact flash operation (program, erase or read —
// counted from the moment the plan is armed) at which power dies. The
// FlashArray checks the plan on every physical op and, when the counter
// reaches the cut point, throws PowerLoss after applying exactly the state a
// real power cut would leave behind: a program in flight tears its page
// (spare area marked torn, no readable data), an erase or read changes
// nothing. Everything that lived only in RAM — mapping tables, caches,
// buffered writes — is gone; only FlashArray state survives into the next
// mount.
//
// Same determinism contract as nand/faults.*: the plan is plain data, the
// cut point is an op index, and harnesses that want a "random" crash sample
// `at_op` themselves from `seed` so the same seed always kills the same op.
#pragma once

#include <cstdint>

namespace af::nand {

/// Thrown by FlashArray when an armed power cut fires. Deliberately not a
/// std::exception: power loss is not an error the op's caller can handle —
/// only the harness that armed the plan catches it, at the mount boundary.
struct PowerLoss {
  /// 1-based index (since arming) of the op that was interrupted.
  std::uint64_t op_index = 0;
};

/// Schedule for one sudden power-off. `at_op` is 1-based and counts every
/// physical flash operation after arming; 0 leaves the plan disarmed (ops
/// are still counted, which lets harnesses measure a run's op horizon).
struct PowerCutPlan {
  std::uint64_t at_op = 0;
  /// Not consumed by the array itself: harnesses derive `at_op` from this
  /// seed (e.g. uniformly over a measured op horizon) so crash-point fuzzing
  /// stays reproducible.
  std::uint64_t seed = 0x0FFC0DEu;

  [[nodiscard]] bool armed() const { return at_op != 0; }
};

}  // namespace af::nand
